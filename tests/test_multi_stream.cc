/**
 * @file
 * Tests for the event-driven multi-stream engine: determinism of
 * co-run streams across repeat executions, equivalence of the
 * single-stream overload with a one-element multi-stream run,
 * cross-tenant contention visibility, aggregate accounting, and the
 * Simulation facade's tenant API.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/core/simulation.hh"

namespace conduit
{
namespace
{

SsdConfig
testCfg()
{
    return SsdConfig::scaled(1.0 / 256.0);
}

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(const std::string &name, std::size_t n,
             OpCode op = OpCode::Add)
{
    auto prog = std::make_shared<Program>();
    prog->name = name;
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = op;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

std::vector<sched::StreamSpec>
twoStreams()
{
    std::vector<sched::StreamSpec> streams(2);
    streams[0].name = "tenantA";
    streams[0].program = chainProgram("a", 24, OpCode::Add);
    streams[0].policy = makePolicy("Conduit");
    streams[1].name = "tenantB";
    streams[1].program = chainProgram("b", 24, OpCode::Xor);
    streams[1].policy = makePolicy("DM-Offloading");
    return streams;
}

void
expectSameResult(const RunResult &x, const RunResult &y)
{
    EXPECT_EQ(x.workload, y.workload);
    EXPECT_EQ(x.policy, y.policy);
    EXPECT_EQ(x.execTime, y.execTime);
    EXPECT_EQ(x.instrCount, y.instrCount);
    EXPECT_EQ(x.perResource, y.perResource);
    EXPECT_EQ(x.latencyUs.count(), y.latencyUs.count());
    EXPECT_DOUBLE_EQ(x.latencyUs.percentile(99),
                     y.latencyUs.percentile(99));
    EXPECT_DOUBLE_EQ(x.dmEnergyJ, y.dmEnergyJ);
    EXPECT_DOUBLE_EQ(x.computeEnergyJ, y.computeEnergyJ);
    EXPECT_EQ(x.coherenceCommits, y.coherenceCommits);
    EXPECT_EQ(x.latchEvictions, y.latchEvictions);
}

TEST(MultiStream, TwoStreamRunsDeterministicAcrossRepeats)
{
    Engine a(testCfg()), b(testCfg());
    auto r1 = a.run(twoStreams());
    auto r2 = b.run(twoStreams());
    ASSERT_EQ(r1.streams.size(), 2u);
    ASSERT_EQ(r2.streams.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i)
        expectSameResult(r1.streams[i], r2.streams[i]);
    EXPECT_EQ(r1.makespan, r2.makespan);
    EXPECT_EQ(r1.eventsFired, r2.eventsFired);
}

TEST(MultiStream, OneStreamRunMatchesSingleStreamOverload)
{
    auto prog = chainProgram("solo", 32);
    Engine single(testCfg()), multi(testCfg());
    ConduitPolicy pol;
    RunResult s = single.run(*prog, pol);

    std::vector<sched::StreamSpec> streams(1);
    streams[0].program = prog;
    streams[0].policy = makePolicy("Conduit");
    auto m = multi.run(std::move(streams));
    ASSERT_EQ(m.streams.size(), 1u);
    expectSameResult(s, m.streams.front());
    EXPECT_EQ(m.makespan, s.execTime);
}

TEST(MultiStream, ColocationSlowsStreamsViaSharedCalendars)
{
    auto prog = chainProgram("hot", 32);
    Engine iso(testCfg());
    ConduitPolicy pol;
    const RunResult alone = iso.run(*prog, pol);

    std::vector<sched::StreamSpec> streams(2);
    streams[0].name = "first";
    streams[0].program = prog;
    streams[0].policy = makePolicy("Conduit");
    streams[1].name = "second";
    streams[1].program = prog;
    streams[1].policy = makePolicy("Conduit");
    Engine colo(testCfg());
    auto m = colo.run(std::move(streams));

    // Contention can only delay a stream, never speed it up — and
    // with two identical tenants on one device at least one must
    // queue behind the other.
    EXPECT_GE(m.streams[0].execTime, alone.execTime);
    EXPECT_GE(m.streams[1].execTime, alone.execTime);
    EXPECT_GT(m.makespan, alone.execTime);
}

TEST(MultiStream, PoliciesSeeCrossTenantContention)
{
    // The queue/bandwidth CostFeatures are live calendar views, so a
    // co-run changes what a cost-based policy observes; at minimum
    // the per-stream latency tail shifts versus isolation.
    auto prog = chainProgram("tail", 48);
    Engine iso(testCfg());
    ConduitPolicy pol;
    const RunResult alone = iso.run(*prog, pol);

    std::vector<sched::StreamSpec> streams(2);
    streams[0].program = prog;
    streams[0].policy = makePolicy("Conduit");
    streams[1].program = prog;
    streams[1].policy = makePolicy("Conduit");
    Engine colo(testCfg());
    auto m = colo.run(std::move(streams));
    const double isoP99 = alone.latencyUs.percentile(99);
    const double coloP99 =
        std::max(m.streams[0].latencyUs.percentile(99),
                 m.streams[1].latencyUs.percentile(99));
    EXPECT_GE(coloP99, isoP99);
}

TEST(MultiStream, AggregateSumsPerStreamCounters)
{
    Engine eng(testCfg());
    auto m = eng.run(twoStreams());
    const RunResult &agg = m.aggregate;
    EXPECT_EQ(agg.instrCount,
              m.streams[0].instrCount + m.streams[1].instrCount);
    EXPECT_EQ(agg.latencyUs.count(), m.streams[0].latencyUs.count() +
                                         m.streams[1].latencyUs.count());
    for (std::size_t i = 0; i < kNumTargets; ++i)
        EXPECT_EQ(agg.perResource[i], m.streams[0].perResource[i] +
                                          m.streams[1].perResource[i]);
    EXPECT_DOUBLE_EQ(agg.energyJ(),
                     m.streams[0].energyJ() + m.streams[1].energyJ());
    EXPECT_EQ(agg.execTime, m.makespan);
    EXPECT_EQ(agg.workload, "tenantA+tenantB");
}

TEST(MultiStream, StreamsOccupyDisjointPageRegions)
{
    // Two streams writing "their" page 0 must not alias: each
    // stream's results are those of its own program, so both
    // complete all instructions and report independent counters.
    std::vector<sched::StreamSpec> streams(2);
    streams[0].program = chainProgram("x", 8);
    streams[0].policy = makePolicy("Conduit");
    streams[1].program = chainProgram("y", 16);
    streams[1].policy = makePolicy("Conduit");
    Engine eng(testCfg());
    auto m = eng.run(std::move(streams));
    EXPECT_EQ(m.streams[0].instrCount, 8u);
    EXPECT_EQ(m.streams[1].instrCount, 16u);
}

TEST(MultiStream, CombinedFootprintBeyondCapacityRejected)
{
    SsdConfig cfg = testCfg();
    auto prog = std::make_shared<Program>();
    *prog = *chainProgram("big", 2);
    prog->footprintPages = cfg.nand.totalPages() / 2 + 1;
    std::vector<sched::StreamSpec> streams(2);
    streams[0].program = prog;
    streams[0].policy = makePolicy("Conduit");
    streams[1].program = prog;
    streams[1].policy = makePolicy("Conduit");
    Engine eng(cfg);
    EXPECT_THROW(eng.run(std::move(streams)), std::invalid_argument);
}

TEST(MultiStream, MissingProgramOrPolicyRejected)
{
    Engine eng(testCfg());
    std::vector<sched::StreamSpec> none;
    EXPECT_THROW(eng.run(std::move(none)), std::invalid_argument);

    std::vector<sched::StreamSpec> broken(1);
    broken[0].program = chainProgram("z", 2);
    EXPECT_THROW(eng.run(std::move(broken)), std::invalid_argument);
}

TEST(MultiStream, FacadeTenantsRunDeterministically)
{
    SimOptions opts;
    opts.workload.scale = 1.0 / 64.0;
    const std::vector<Simulation::Tenant> tenants = {
        {WorkloadId::Aes, "Conduit"},
        {WorkloadId::Jacobi1d, "DM-Offloading"},
    };
    Simulation sim1(opts), sim2(opts);
    auto m1 = sim1.runMulti(tenants);
    auto m2 = sim2.runMulti(tenants);
    ASSERT_EQ(m1.streams.size(), 2u);
    for (std::size_t i = 0; i < m1.streams.size(); ++i)
        expectSameResult(m1.streams[i], m2.streams[i]);
    EXPECT_EQ(m1.makespan, m2.makespan);
}

} // namespace
} // namespace conduit
