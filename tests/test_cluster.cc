/**
 * @file
 * Fleet-simulation tests for src/cluster.
 *
 * The contracts under test: a single-device Cluster is byte-identical
 * to the bare Device it wraps (for probe-free and probe-observing
 * policies alike); fleet sweeps emit byte-identical rows at any
 * worker-thread count and across repeats; backlog-observing policies
 * actually route differently from blind ones under a skewed tenant
 * mix; an aged fleet builds one shared warm image per distinct age
 * rung; and the DeviceProbe host-visible state is coherent.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/cluster/cluster.hh"
#include "src/cluster/placement.hh"
#include "src/core/device.hh"
#include "src/runner/sweep_result.hh"
#include "src/runner/sweep_runner.hh"

namespace conduit
{
namespace
{

using cluster::Cluster;
using cluster::ClusterOptions;
using cluster::ClusterSnapshot;
using cluster::makePlacement;
using runner::ClusterRunSpec;
using runner::ClusterTenant;
using runner::SweepOptions;
using runner::SweepRunner;

/** Small device with GC pressure (mirrors test_device_image). */
SsdConfig
gcCfg()
{
    SsdConfig cfg = SsdConfig::scaled(1.0 / 256.0);
    cfg.nand.channels = 2;
    cfg.nand.diesPerChannel = 2;
    cfg.nand.planesPerDie = 1;
    cfg.nand.blocksPerPlane = 8;
    cfg.nand.pagesPerBlock = 32;
    cfg.gcThreshold = 0.30;
    return cfg;
}

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(const std::string &name, std::size_t n)
{
    auto prog = std::make_shared<Program>();
    prog->name = name;
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

DeviceOptions
fleetDeviceOptions()
{
    DeviceOptions d;
    d.config = gcCfg();
    d.retire = RetirePolicy::OnComplete;
    d.capacityPages = 600;
    d.engine.dramStagingFraction = 0.3;
    return d;
}

/** The open-loop stream both sides of an equivalence test submit. */
std::vector<JobSpec>
testStream(const std::shared_ptr<const Program> &prog,
           std::size_t jobs)
{
    std::vector<JobSpec> stream;
    Tick at = 0;
    for (std::size_t i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.name = "job" + std::to_string(i);
        spec.program = prog;
        spec.arrival = at;
        stream.push_back(spec);
        at += usToTicks(40.0 * static_cast<double>(i % 3));
    }
    return stream;
}

void
expectSameResults(const DeviceSnapshot &bare,
                  const DeviceSnapshot &fleet)
{
    ASSERT_EQ(bare.jobs.size(), fleet.jobs.size());
    for (std::size_t i = 0; i < bare.jobs.size(); ++i) {
        EXPECT_EQ(bare.jobs[i].arrival, fleet.jobs[i].arrival) << i;
        EXPECT_EQ(bare.jobs[i].admitted, fleet.jobs[i].admitted) << i;
        EXPECT_EQ(bare.jobs[i].end, fleet.jobs[i].end) << i;
        EXPECT_EQ(bare.jobs[i].basePage, fleet.jobs[i].basePage) << i;
    }
    EXPECT_EQ(bare.makespan, fleet.makespan);
    EXPECT_EQ(bare.eventsFired, fleet.eventsFired);
}

/**
 * A fleet of one device is byte-identical to the bare Device: same
 * per-job arrival/admission/completion ticks, same event count —
 * with a probe-free policy (round-robin) and with a probe-observing
 * one (least-backlog; a single-device fleet skips the probe path by
 * construction, so both stay on the bare submission path).
 */
TEST(Cluster, SingleDeviceMatchesBareDevice)
{
    const auto prog = chainProgram("eq", 12);
    const auto stream = testStream(prog, 10);

    Device bare(fleetDeviceOptions());
    for (const JobSpec &spec : stream)
        bare.submit(spec);
    const DeviceSnapshot bareSnap = bare.drain();

    for (const char *policy : {"round-robin", "least-backlog"}) {
        ClusterOptions opts;
        opts.devices.push_back({fleetDeviceOptions(), nullptr});
        Cluster fleet(std::move(opts), makePlacement(policy));
        for (const JobSpec &spec : stream)
            fleet.submit(spec);
        const ClusterSnapshot snap = fleet.drain();
        ASSERT_EQ(snap.devices.size(), 1u) << policy;
        expectSameResults(bareSnap, snap.devices[0]);
        for (const cluster::RoutedJob &r : snap.routed)
            EXPECT_EQ(r.device, 0u) << policy;
    }
}

/**
 * Under a skewed arrival mix on two devices, a backlog-observing
 * policy routes differently from blind round-robin: least-backlog
 * sees the long tenant's jobs pile up and steers short jobs away,
 * so the routed-device sequences diverge.
 */
TEST(Cluster, LeastBacklogDivergesFromRoundRobin)
{
    const auto heavy = chainProgram("heavy", 24);
    const auto light = chainProgram("light", 3);

    const auto route = [&](const char *policy) {
        ClusterOptions opts;
        opts.devices.push_back({fleetDeviceOptions(), nullptr});
        opts.devices.push_back({fleetDeviceOptions(), nullptr});
        Cluster fleet(std::move(opts), makePlacement(policy));
        Tick at = 0;
        // Bursty skew: three heavy jobs back-to-back, then light
        // ones, repeatedly — round-robin alternates regardless,
        // least-backlog sees the pile-up.
        for (std::size_t i = 0; i < 12; ++i) {
            JobSpec spec;
            spec.program = i % 4 == 3 ? light : heavy;
            spec.arrival = at;
            fleet.submit(spec, i % 4 == 3 ? 1 : 0);
            at += usToTicks(5.0);
        }
        std::vector<std::size_t> devices;
        const ClusterSnapshot snap = fleet.drain();
        for (const cluster::RoutedJob &r : snap.routed)
            devices.push_back(r.device);
        return devices;
    };

    const auto rr = route("round-robin");
    const auto lb = route("least-backlog");
    ASSERT_EQ(rr.size(), lb.size());
    EXPECT_NE(rr, lb);

    // And the probe path is deterministic: replaying least-backlog
    // routes identically.
    EXPECT_EQ(lb, route("least-backlog"));
}

/** Every policy accepted by makePlacement routes in-range. */
TEST(Cluster, AllPoliciesRouteInRange)
{
    const auto prog = chainProgram("p", 6);
    for (const std::string &name : cluster::placementNames()) {
        ClusterOptions opts;
        for (int d = 0; d < 3; ++d)
            opts.devices.push_back({fleetDeviceOptions(), nullptr});
        Cluster fleet(std::move(opts), makePlacement(name, 7));
        for (std::size_t i = 0; i < 9; ++i) {
            JobSpec spec;
            spec.program = prog;
            spec.arrival = usToTicks(10.0 * static_cast<double>(i));
            const cluster::RoutedJob r = fleet.submit(spec, i % 2);
            EXPECT_LT(r.device, 3u) << name;
        }
        const ClusterSnapshot snap = fleet.drain();
        EXPECT_EQ(snap.routed.size(), 9u) << name;
        for (std::size_t r = 0; r < snap.routed.size(); ++r)
            EXPECT_GT(snap.result(r).end, 0u) << name;
    }
}

ClusterRunSpec
fleetSpec(const std::string &placement,
          const std::shared_ptr<const Program> &heavy,
          const std::shared_ptr<const Program> &light)
{
    ClusterRunSpec spec;
    spec.label = "test/" + placement;
    spec.placement = placement;
    spec.config = gcCfg();
    spec.devices = 2;
    spec.jobs = 24;
    spec.jobsPerSec = 20000.0;
    spec.arrivalSeed = 3;
    // The tiny gcCfg device can't hold the whole job set at once;
    // a bounded pool recycles regions between jobs instead.
    spec.capacityPages = 600;
    ClusterTenant a;
    a.name = "heavy";
    a.program = heavy;
    a.sloMs = 1.0;
    a.weight = 3.0;
    ClusterTenant b;
    b.name = "light";
    b.program = light;
    b.sloMs = 0.5;
    b.weight = 1.0;
    spec.tenants = {a, b};
    return spec;
}

/**
 * Fleet sweeps are thread-count invariant and repeatable: the
 * emitted CSV (every row, every column) is byte-identical between a
 * serial and a parallel sweep, and across back-to-back runs.
 */
TEST(Cluster, SweepRowsAreThreadInvariant)
{
    const auto heavy = chainProgram("heavy", 16);
    const auto light = chainProgram("light", 4);
    std::vector<ClusterRunSpec> specs;
    for (const std::string &p : cluster::placementNames())
        specs.push_back(fleetSpec(p, heavy, light));

    const auto sweepCsv = [&](unsigned threads) {
        SweepOptions opts;
        opts.threads = threads;
        SweepRunner runner(opts);
        const auto snaps = runner.runClusterAll(specs);
        std::vector<runner::ClusterRow> rows;
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const auto r = runner::makeClusterRows(specs[i], snaps[i]);
            rows.insert(rows.end(), r.begin(), r.end());
        }
        std::ostringstream os;
        runner::writeClusterCsv(os, rows);
        return os.str();
    };

    const std::string serial = sweepCsv(1);
    EXPECT_EQ(serial, sweepCsv(4));
    EXPECT_EQ(serial, sweepCsv(1));
    EXPECT_NE(serial.find("\"fleet\""), std::string::npos);
    EXPECT_NE(serial.find("\"heavy\""), std::string::npos);
}

/**
 * An aged warm fleet builds one shared image per distinct age rung,
 * not one per device or per cell: 4 devices x {fresh, worn} x 2
 * policies = 2 images.
 */
TEST(Cluster, AgedFleetSharesWarmImagesPerRung)
{
    const auto heavy = chainProgram("heavy", 12);
    const auto light = chainProgram("light", 4);
    std::vector<ClusterRunSpec> specs;
    for (const std::string &p : {std::string("round-robin"),
                                 std::string("least-backlog")}) {
        ClusterRunSpec spec = fleetSpec(p, heavy, light);
        spec.devices = 4;
        spec.jobs = 8;
        spec.ageMix = {0, 1500};
        spec.retentionDaysPerKCycle = 20.0;
        spec.warmupJobs = 3;
        spec.capacityPages = 600;
        specs.push_back(std::move(spec));
    }

    SweepRunner runner(SweepOptions{});
    const auto snaps = runner.runClusterAll(specs);
    EXPECT_EQ(runner.lastPerf().warmupImages, 2u);
    for (const auto &snap : snaps) {
        ASSERT_EQ(snap.devices.size(), 4u);
        // Worn devices (odd indices) lived through reliability
        // traffic; fresh ones (even) have no reliability state.
        EXPECT_EQ(snap.devices[0].reliability.retriedReads, 0u);
        EXPECT_GT(snap.base, 0u);
    }
}

/** DeviceProbe reports coherent host-visible backlog state. */
TEST(Cluster, DeviceProbeTracksBacklog)
{
    const auto prog = chainProgram("probe", 10);
    Device dev(fleetDeviceOptions());

    DeviceProbe idle = dev.probe();
    EXPECT_EQ(idle.now, 0u);
    EXPECT_EQ(idle.pendingJobs, 0u);
    EXPECT_EQ(idle.admittedPages, 0u);
    EXPECT_EQ(idle.dieBusyFraction, 0.0);

    for (std::size_t i = 0; i < 4; ++i) {
        JobSpec spec;
        spec.program = prog;
        spec.arrival = usToTicks(20.0 * static_cast<double>(i));
        dev.submit(spec);
    }
    dev.advanceTo(usToTicks(1.0));
    DeviceProbe busy = dev.probe();
    EXPECT_EQ(busy.pendingJobs, 4u);
    EXPECT_GT(busy.admittedPages, 0u);
    EXPECT_EQ(busy.capacityPages, 600u);
    EXPECT_GE(busy.dieBusyFraction, 0.0);
    EXPECT_LE(busy.dieBusyFraction, 1.0);

    dev.drain();
    DeviceProbe done = dev.probe();
    EXPECT_EQ(done.pendingJobs, 0u);
    EXPECT_EQ(done.admittedPages, 0u);
}

} // namespace
} // namespace conduit
