/**
 * @file
 * Unit tests for the FTL: preload striping, out-of-place writes,
 * mapping cache behaviour, garbage collection and wear-leveling.
 */

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <thread>

#include "src/ftl/ftl.hh"

namespace conduit
{
namespace
{

SsdConfig
smallCfg()
{
    SsdConfig cfg;
    cfg.nand.channels = 2;
    cfg.nand.diesPerChannel = 2;
    cfg.nand.planesPerDie = 1;
    cfg.nand.blocksPerPlane = 16;
    cfg.nand.pagesPerBlock = 8;
    return cfg;
}

TEST(Ftl, PreloadMapsSequentialLpnsStriped)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(8);
    std::set<std::uint32_t> dies;
    for (Lpn l = 0; l < 8; ++l) {
        const Ppn p = ftl.physicalOf(l);
        ASSERT_NE(p, kNoPpn);
        dies.insert(nand.dieIndex(nand.decode(p)));
    }
    // CWDP striping spreads consecutive pages over all four dies.
    EXPECT_EQ(dies.size(), 4u);
}

TEST(Ftl, UnmappedPagesReportNoPpn)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(2);
    EXPECT_NE(ftl.physicalOf(0), kNoPpn);
    EXPECT_EQ(ftl.physicalOf(5), kNoPpn);
    EXPECT_THROW(ftl.physicalOf(ftl.logicalPages()), std::out_of_range);
}

TEST(Ftl, WriteRelocatesAndInvalidates)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(4);
    const Ppn before = ftl.physicalOf(1);
    auto wr = ftl.writePage(1, 0);
    EXPECT_NE(wr.ppn, before);          // out-of-place
    EXPECT_EQ(ftl.physicalOf(1), wr.ppn);
    EXPECT_GT(wr.readyAt, 0u);          // program latency charged
}

TEST(Ftl, MappingCacheHitsAndMisses)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(64);
    ftl.setMappingCacheCapacity(16);
    // First touches are cold misses.
    auto c1 = ftl.translate(0, 0);
    EXPECT_FALSE(c1.cacheHit);
    EXPECT_EQ(c1.latency, cfg.overhead.l2pLookupFlash);
    auto c2 = ftl.translate(0, 0);
    EXPECT_TRUE(c2.cacheHit);
    EXPECT_EQ(c2.latency, cfg.overhead.l2pLookupDram);
    // Sweep past capacity evicts lpn 0 again.
    for (Lpn l = 1; l < 40; ++l)
        ftl.translate(l, 0);
    auto c3 = ftl.translate(0, 0);
    EXPECT_FALSE(c3.cacheHit);
}

TEST(Ftl, StatSetAgreesWithMemberCountersOnBothPaths)
{
    // The write path (writePage) touches the mapping cache exactly
    // like the read path (translate); the StatSet counters used to
    // miss every write-path touch and under-report cache traffic.
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    StatSet stats;
    Ftl ftl(nand, cfg, &stats);
    ftl.preload(64);
    ftl.setMappingCacheCapacity(16);

    Tick t = 0;
    std::uint64_t touches = 0;
    for (Lpn l = 0; l < 32; ++l) {
        ftl.translate(l, t);
        ++touches;
    }
    for (Lpn l = 0; l < 24; ++l) {
        t = ftl.writePage(l, t).readyAt;
        ++touches;
    }
    for (Lpn l = 8; l < 16; ++l) {
        ftl.translate(l, t);
        ++touches;
    }

    EXPECT_GT(ftl.mapHits(), 0u);
    EXPECT_GT(ftl.mapMisses(), 0u);
    EXPECT_EQ(stats.counter("ftl.map_hits").value(), ftl.mapHits());
    EXPECT_EQ(stats.counter("ftl.map_misses").value(),
              ftl.mapMisses());
    EXPECT_EQ(ftl.mapHits() + ftl.mapMisses(), touches);
}

TEST(Ftl, HonorsMappingCacheCapacityBelowSixteen)
{
    // §5.4-style DRAM-pressure experiments size the cache very
    // small; a silent 16-entry floor would inflate the hit rate.
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(32);

    ftl.setMappingCacheCapacity(2);
    EXPECT_EQ(ftl.mappingCacheCapacity(), 2u);
    EXPECT_FALSE(ftl.translate(0, 0).cacheHit); // cold
    EXPECT_FALSE(ftl.translate(1, 0).cacheHit); // cold
    EXPECT_TRUE(ftl.translate(0, 0).cacheHit);  // both resident
    EXPECT_FALSE(ftl.translate(2, 0).cacheHit); // evicts lpn 1 (LRU)
    EXPECT_TRUE(ftl.translate(0, 0).cacheHit);
    EXPECT_FALSE(ftl.translate(1, 0).cacheHit); // was evicted

    // A 3-entry reuse loop thrashes a 2-entry cache: every touch
    // misses, exactly what the configured capacity implies.
    ftl.setMappingCacheCapacity(2);
    for (int round = 0; round < 3; ++round) {
        for (Lpn l = 4; l < 7; ++l)
            EXPECT_FALSE(ftl.translate(l, 0).cacheHit);
    }

    // Zero clamps to one resident entry, and shrinking evicts down
    // to the new capacity (MRU survives).
    ftl.setMappingCacheCapacity(0);
    EXPECT_EQ(ftl.mappingCacheCapacity(), 1u);
    EXPECT_FALSE(ftl.translate(9, 0).cacheHit);
    EXPECT_TRUE(ftl.translate(9, 0).cacheHit);
    EXPECT_FALSE(ftl.translate(10, 0).cacheHit);
    EXPECT_FALSE(ftl.translate(9, 0).cacheHit);
}

TEST(Ftl, ReadPageChargesTranslationPlusSensing)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(2);
    ftl.translate(0, 0); // warm the mapping entry
    const Tick done = ftl.readPage(0, 0);
    EXPECT_GE(done, cfg.overhead.l2pLookupDram + cfg.nand.readTicks);
}

TEST(Ftl, GarbageCollectionReclaimsBlocks)
{
    SsdConfig cfg = smallCfg();
    cfg.gcThreshold = 0.30; // trigger early
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    const std::uint64_t lpns = 24;
    ftl.preload(lpns);
    // Rewrite a small set of pages many times: invalidated copies
    // accumulate until GC must reclaim.
    Tick t = 0;
    for (int round = 0; round < 60; ++round) {
        for (Lpn l = 0; l < lpns; ++l) {
            auto wr = ftl.writePage(l, t);
            t = wr.readyAt;
        }
    }
    EXPECT_GT(ftl.gcRuns(), 0u);
    EXPECT_GT(ftl.freeBlocks(), 0u);
    // All lpns still mapped and distinct.
    std::set<Ppn> ppns;
    for (Lpn l = 0; l < lpns; ++l)
        ppns.insert(ftl.physicalOf(l));
    EXPECT_EQ(ppns.size(), lpns);
}

TEST(Ftl, WearLevelingBoundsEraseSkew)
{
    SsdConfig cfg = smallCfg();
    cfg.gcThreshold = 0.30;
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    ftl.preload(24);
    Tick t = 0;
    for (int round = 0; round < 120; ++round) {
        for (Lpn l = 0; l < 24; ++l)
            t = ftl.writePage(l, t).readyAt;
    }
    // Wear-aware free-block selection keeps the erase-count spread
    // modest relative to the maximum.
    EXPECT_GT(ftl.maxErase(), 0u);
    EXPECT_LE(ftl.maxErase() - ftl.minEraseOfUsed(),
              ftl.maxErase());
}

TEST(Ftl, GcUnderWritePressureIsDeterministic)
{
    // The same write-pressure schedule must produce identical GC
    // activity and wear state on every run — and on concurrent runs
    // over private devices, since nothing in the FTL may depend on
    // shared mutable state.
    const auto pressure = [] {
        SsdConfig cfg = smallCfg();
        cfg.gcThreshold = 0.30;
        NandArray nand(cfg.nand);
        Ftl ftl(nand, cfg);
        ftl.preload(24);
        Tick t = 0;
        for (int round = 0; round < 60; ++round) {
            for (Lpn l = 0; l < 24; ++l)
                t = ftl.writePage(l, t).readyAt;
        }
        return std::array<std::uint64_t, 4>{
            ftl.gcRuns(), ftl.maxErase(), ftl.freeBlocks(), t};
    };

    const auto reference = pressure();
    EXPECT_GT(reference[0], 0u); // GC actually ran
    EXPECT_EQ(pressure(), reference); // repeat run

    std::array<std::array<std::uint64_t, 4>, 4> results{};
    {
        std::vector<std::thread> workers;
        for (auto &slot : results)
            workers.emplace_back([&slot, &pressure] {
                slot = pressure();
            });
        for (auto &w : workers)
            w.join();
    }
    for (const auto &r : results)
        EXPECT_EQ(r, reference);
}

TEST(Ftl, PreloadBeyondCapacityThrows)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    EXPECT_THROW(ftl.preload(ftl.logicalPages() + 1),
                 std::invalid_argument);
}

TEST(Ftl, OverProvisioningHidesCapacity)
{
    SsdConfig cfg = smallCfg();
    NandArray nand(cfg.nand);
    Ftl ftl(nand, cfg);
    EXPECT_LT(ftl.logicalPages(), cfg.nand.totalPages());
    EXPECT_GT(ftl.logicalPages(),
              cfg.nand.totalPages() * 9 / 10);
}

} // namespace
} // namespace conduit
