/**
 * @file
 * Unit tests for the IR layer: opcode property tables, operand
 * arithmetic, instruction printing, and loop-program helpers.
 */

#include <gtest/gtest.h>

#include "src/ir/instruction.hh"
#include "src/ir/loop_ir.hh"
#include "src/ir/opcode.hh"

namespace conduit
{
namespace
{

TEST(Opcode, LatencyClassesMatchTable3Taxonomy)
{
    EXPECT_EQ(latencyClass(OpCode::And), LatencyClass::Low);
    EXPECT_EQ(latencyClass(OpCode::Xor), LatencyClass::Low);
    EXPECT_EQ(latencyClass(OpCode::ShiftL), LatencyClass::Low);
    EXPECT_EQ(latencyClass(OpCode::Add), LatencyClass::Medium);
    EXPECT_EQ(latencyClass(OpCode::Select), LatencyClass::Medium);
    EXPECT_EQ(latencyClass(OpCode::Mul), LatencyClass::High);
    EXPECT_EQ(latencyClass(OpCode::Exp), LatencyClass::High);
    EXPECT_EQ(latencyClass(OpCode::Gather), LatencyClass::High);
}

TEST(Opcode, SupportMatricesAreConsistent)
{
    int pud = 0, ifp = 0;
    for (std::size_t i = 0; i < kNumOpCodes; ++i) {
        const auto op = static_cast<OpCode>(i);
        // ISP is the universal fallback.
        EXPECT_TRUE(ispSupports(op));
        pud += pudSupports(op);
        ifp += ifpSupports(op);
        // MWS array-operand ops are a subset of IFP support.
        if (ifpRequiresArrayOperands(op))
            EXPECT_TRUE(ifpSupports(op));
    }
    // PuD-SSD supports a wider set than IFP (16+ vs 9+ ops, §4.3.2).
    EXPECT_GT(pud, ifp);
    EXPECT_GE(ifp, 9);
}

TEST(Opcode, EveryOpHasANameAndFamily)
{
    for (std::size_t i = 0; i < kNumOpCodes; ++i) {
        const auto op = static_cast<OpCode>(i);
        EXPECT_NE(opName(op), "invalid");
        // opFamily is total (no throw, returns some family).
        (void)opFamily(op);
    }
}

TEST(Operand, OverlapAndContainment)
{
    Operand a{10, 4}; // pages [10, 14)
    Operand b{13, 2}; // pages [13, 15)
    Operand c{14, 1};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c));
    EXPECT_TRUE(a.contains(10));
    EXPECT_TRUE(a.contains(13));
    EXPECT_FALSE(a.contains(14));
}

TEST(VecInstruction, ByteAccounting)
{
    VecInstruction vi;
    vi.lanes = 16384;
    vi.elemBits = 8;
    vi.srcs.resize(3);
    vi.dst = {0, 4};
    EXPECT_EQ(vi.srcBytes(), 3u * 16384u);
    EXPECT_EQ(vi.dstBytes(), 16384u);
    vi.elemBits = 32;
    EXPECT_EQ(vi.dstBytes(), 65536u);
    vi.dst.pageCount = 0;
    EXPECT_EQ(vi.dstBytes(), 0u);
}

TEST(VecInstruction, ToStringRoundsUpTheFacts)
{
    VecInstruction vi;
    vi.id = 7;
    vi.op = OpCode::Mac;
    vi.lanes = 4096;
    vi.elemBits = 8;
    vi.srcs = {Operand{3, 2}};
    vi.dst = Operand{9, 1};
    vi.deps = {4, 5};
    vi.vectorized = false;
    const std::string s = vi.toString();
    EXPECT_NE(s.find("#7"), std::string::npos);
    EXPECT_NE(s.find("mac"), std::string::npos);
    EXPECT_NE(s.find("p3+2"), std::string::npos);
    EXPECT_NE(s.find("-> p9+1"), std::string::npos);
    EXPECT_NE(s.find("[scalar]"), std::string::npos);
    EXPECT_NE(s.find("deps{4,5}"), std::string::npos);
}

TEST(LoopProgram, ArrayAccountingAndBytes)
{
    LoopProgram lp;
    const ArrayId a = lp.addArray("a", 1000, 8);
    const ArrayId b = lp.addArray("b", 1000, 32);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(lp.arrays[a].bytes(), 1000u);
    EXPECT_EQ(lp.arrays[b].bytes(), 4000u);
    EXPECT_EQ(lp.totalBytes(), 5000u);
}

TEST(Program, FootprintBytes)
{
    Program p;
    p.footprintPages = 10;
    p.pageBytes = 4096;
    EXPECT_EQ(p.footprintBytes(), 40960u);
}

} // namespace
} // namespace conduit
