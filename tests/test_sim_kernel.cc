/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * cancellation, tick conversions, statistics, servers, and the RNG.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include <list>

#include "src/sim/event_queue.hh"
#include "src/sim/flat_lru.hh"
#include "src/sim/rank_lru.hh"
#include "src/sim/rng.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit
{
namespace
{

TEST(Types, Conversions)
{
    EXPECT_EQ(nsToTicks(1), kPsPerNs);
    EXPECT_EQ(usToTicks(1), kPsPerUs);
    EXPECT_EQ(msToTicks(1), kPsPerMs);
    EXPECT_DOUBLE_EQ(ticksToNs(kPsPerNs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(kPsPerUs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kPsPerS), 1.0);
    EXPECT_EQ(nsToTicks(22.5), 22500u);
}

TEST(Types, TransferTicks)
{
    // 1 GB/s: 1 byte = 1 ns (+1 tick rounding).
    EXPECT_NEAR(static_cast<double>(transferTicks(4096, 1e9)),
                4096.0 * kPsPerNs, 2.0);
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
    EXPECT_EQ(transferTicks(100, 0.0), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); }, 1);
    q.schedule(5, [&] { order.push_back(2); }, 1);
    q.schedule(5, [&] { order.push_back(0); }, 0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventId id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double-cancel is a no-op
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] {
        ++count;
        q.schedule(q.now() + 1, [&] { ++count; });
    });
    q.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 2u);
}

TEST(EventQueue, SchedulingInPastThrows)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilBound)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    EXPECT_EQ(q.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, CancelHeavyMemoryStaysBounded)
{
    // Open-loop device workloads schedule and cancel events at a
    // sustained rate. Cancelled entries must not accumulate: slots
    // are free-listed for reuse and the heap compacts lazily once
    // dead entries outnumber the live half.
    EventQueue q;
    std::deque<EventId> window;
    constexpr int kPairs = 1'000'000;
    constexpr std::size_t kWindow = 1024;
    for (int i = 0; i < kPairs; ++i) {
        window.push_back(
            q.schedule(static_cast<Tick>(kPairs + i), [] {}));
        if (window.size() > kWindow) {
            ASSERT_TRUE(q.cancel(window.front()));
            window.pop_front();
        }
    }
    EXPECT_EQ(q.pending(), kWindow);
    // Slab footprint tracks peak outstanding events, not the 1M
    // schedule/cancel pairs; the heap stays within a small factor
    // of the live set.
    EXPECT_LE(q.slabSlots(), 4 * kWindow);
    EXPECT_LE(q.heapEntries(), 4 * kWindow);
    EXPECT_LE(q.cancelledEntries(), q.heapEntries() / 2 + 1);
    // The survivors all fire, in order.
    EXPECT_EQ(q.run(), kWindow);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.heapEntries(), 0u);
}

TEST(EventQueue, StaleIdCannotCancelReusedSlot)
{
    // Firing or cancelling releases an event's slab slot for reuse;
    // the generation stamp in the id must keep stale handles from
    // cancelling the slot's next occupant.
    EventQueue q;
    int fired = 0;
    const EventId a = q.schedule(10, [&] { ++fired; });
    ASSERT_TRUE(q.cancel(a));
    const EventId b = q.schedule(20, [&] { ++fired; });
    EXPECT_NE(a, b);
    EXPECT_FALSE(q.cancel(a)); // stale handle, reused slot
    q.run();
    EXPECT_EQ(fired, 1);
    // After b fired, its id is stale too.
    EXPECT_FALSE(q.cancel(b));
    const EventId c = q.scheduleAfter(5, [&] { ++fired; });
    EXPECT_FALSE(q.cancel(b));
    ASSERT_TRUE(q.cancel(c));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyCallbackIsCancellableAndFiresAsNoOp)
{
    EventQueue q;
    const EventId a = q.schedule(5, EventQueue::Callback{});
    EXPECT_TRUE(q.cancel(a));
    q.schedule(6, EventQueue::Callback{});
    EXPECT_EQ(q.run(), 1u);
    EXPECT_EQ(q.eventsFired(), 1u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingConservationHoldsAcrossTierTransitions)
{
    // pending() must equal the recount of generation-matching
    // entries across the calendar and overflow tiers at every point
    // of a workload that forces tier transitions: near-future
    // appends, far-future overflow, re-anchoring, lazy sorts,
    // cancellation, and compaction.
    EventQueue q;
    ASSERT_TRUE(q.auditPendingConservation()); // empty queue
    std::deque<EventId> window;
    std::uint64_t fired = 0;
    for (std::uint64_t i = 0; i < 3'000; ++i) {
        // Spread: same-tick, near-future, and far-future entries.
        const Tick when = (i % 3 == 0) ? q.now()
            : (i % 3 == 1)             ? q.now() + (i * 7919) % 4096
                                       : q.now() + 1'000'000 + i;
        window.push_back(
            q.schedule(when, [&fired] { ++fired; },
                       static_cast<int>(i & 3)));
        if (window.size() > 64) {
            q.cancel(window.front());
            window.pop_front();
        }
        if (i % 7 == 0)
            q.runOne();
        if (i % 256 == 0)
            ASSERT_TRUE(q.auditPendingConservation()) << "i=" << i;
    }
    ASSERT_TRUE(q.auditPendingConservation());
    q.run();
    EXPECT_TRUE(q.empty());
    ASSERT_TRUE(q.auditPendingConservation()); // drained queue
}

TEST(FlatLru, RecencyOrderAndEviction)
{
    FlatLru lru;
    lru.reset(8);
    EXPECT_FALSE(lru.touch(3)); // miss inserts
    EXPECT_FALSE(lru.touch(5));
    EXPECT_TRUE(lru.touch(3)); // hit moves to front
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.keyOf(lru.head()), 3u);
    EXPECT_EQ(lru.keyOf(lru.tail()), 5u);
    EXPECT_EQ(lru.popTail(), 5u);
    EXPECT_EQ(lru.size(), 1u);
    lru.eraseKey(3);
    EXPECT_TRUE(lru.empty());
    // Freed nodes are recycled; keys beyond the index grow it.
    EXPECT_FALSE(lru.touch(7));
    EXPECT_FALSE(lru.touch(100));
    EXPECT_TRUE(lru.touch(100));
    EXPECT_EQ(lru.keyOf(lru.tail()), 7u);
}

TEST(EventQueue, LargeCaptureCallbackTakesHeapPath)
{
    // Captures beyond SmallFn's inline buffer (48 bytes) fall back
    // to the heap; the event must still fire, cancel, and destroy
    // cleanly (ASan covers the cleanup).
    EventQueue q;
    struct Big
    {
        std::uint64_t pad[12]; // 96 bytes > kInlineBytes
    };
    static_assert(sizeof(Big) > SmallFn::kInlineBytes);
    Big big{};
    big.pad[11] = 7;
    std::uint64_t seen = 0;
    q.schedule(1, [big, &seen] { seen = big.pad[11]; });
    const EventId cancelled = q.schedule(2, [big, &seen] { seen = 0; });
    EXPECT_TRUE(q.cancel(cancelled));
    q.run();
    EXPECT_EQ(seen, 7u);
}

TEST(RankLru, GrowsWindowWhenLiveSetExceedsCapacityHint)
{
    // A caller whose live set outgrows 4x the capacity hint must get
    // a widened timestamp window, not an overflow: touch far more
    // distinct keys than the hinted capacity and verify order.
    RankLru lru;
    lru.reset(128, 1); // window starts at max(64, 4) = 64
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(lru.touch(k));
    EXPECT_EQ(lru.size(), 100u);
    EXPECT_EQ(lru.keyAtRankFromTail(0), 0u);  // least recent
    EXPECT_EQ(lru.keyAtRankFromTail(99), 99u); // most recent
    EXPECT_TRUE(lru.touch(0)); // 0 moves to the front...
    EXPECT_EQ(lru.keyAtRankFromTail(0), 1u); // ...1 is now LRU
    EXPECT_EQ(lru.keyAtRankFromTail(99), 0u);
}

TEST(RankLru, EraseAbsentKeyIsNoOp)
{
    RankLru lru;
    lru.reset(16, 4);
    lru.eraseKey(3); // never inserted
    EXPECT_TRUE(lru.empty());
    EXPECT_FALSE(lru.touch(3));
    lru.eraseKey(3);
    lru.eraseKey(3); // double erase
    EXPECT_TRUE(lru.empty());
    EXPECT_FALSE(lru.contains(3));
    EXPECT_FALSE(lru.touch(3)); // reinsert after erase is a miss
    EXPECT_EQ(lru.size(), 1u);
}

TEST(RankLru, MatchesReferenceListWalk)
{
    // RankLru must reproduce a move-to-front list byte for byte: the
    // same hit/miss sequence and, for every eviction, the same
    // victim a skip-step walk from the tail would reach. Drive both
    // against a random touch stream and compare every decision.
    constexpr std::uint64_t kKeys = 96;
    constexpr std::uint64_t kCapacity = 24;
    std::list<std::uint64_t> ref; // front = most recent
    RankLru lru;
    lru.reset(kKeys, kCapacity);
    Rng touches(11), skips(12);

    for (int step = 0; step < 20000; ++step) {
        const std::uint64_t key = touches.below(kKeys);
        const auto it = std::find(ref.begin(), ref.end(), key);
        const bool ref_hit = it != ref.end();
        if (ref_hit)
            ref.erase(it);
        ref.push_front(key);
        ASSERT_EQ(lru.touch(key), ref_hit) << "step " << step;
        ASSERT_EQ(lru.size(), ref.size());
        if (ref.size() > kCapacity) {
            const std::uint64_t skip =
                skips.below(std::max<std::uint64_t>(1, ref.size() / 2));
            auto vit = std::prev(ref.end());
            for (std::uint64_t i = 0;
                 i < skip && vit != ref.begin(); ++i)
                --vit;
            const std::uint64_t rank = std::min<std::uint64_t>(
                skip, lru.size() - 1);
            ASSERT_EQ(lru.keyAtRankFromTail(rank), *vit)
                << "step " << step;
            lru.eraseKey(*vit);
            ref.erase(vit);
        }
    }
}

TEST(Server, FcfsQueueing)
{
    Server s("t");
    auto a = s.acquire(0, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 10u);
    // Second request queues behind the first.
    auto b = s.acquire(0, 5);
    EXPECT_EQ(b.start, 10u);
    EXPECT_EQ(b.end, 15u);
    EXPECT_EQ(b.queueDelay(0), 10u);
    // A request in the future starts on time.
    auto c = s.acquire(100, 5);
    EXPECT_EQ(c.start, 100u);
    EXPECT_EQ(s.backlog(50), 55u);
    EXPECT_EQ(s.busyTime(), 20u);
}

TEST(ServerGroup, LeastLoadedDispatch)
{
    ServerGroup g("g", 2);
    auto a = g.acquire(0, 10);
    auto b = g.acquire(0, 10);
    // Both units busy until 10; third request queues on one.
    auto c = g.acquire(0, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
    EXPECT_EQ(c.start, 10u);
    EXPECT_EQ(g.busyTime(), 30u);
}

TEST(Histogram, ExactPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, TailPercentileOfSkewedData)
{
    Histogram h;
    for (int i = 0; i < 9999; ++i)
        h.add(1.0);
    h.add(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.995), 1000.0);
}

TEST(Histogram, PercentileCacheTracksInterleavedMutations)
{
    // percentile() sorts into a mutable cache; every mutation path
    // (add, merge, clear) must invalidate it, or a later percentile
    // would read the stale order.
    Histogram h;
    h.add(10.0);
    h.add(20.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 20.0); // populates cache
    h.add(5.0); // add after a percentile read
    EXPECT_DOUBLE_EQ(h.percentile(0), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 20.0);

    Histogram other;
    other.add(40.0);
    other.add(1.0);
    h.merge(other); // merge after a percentile read
    EXPECT_DOUBLE_EQ(h.percentile(100), 40.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 76.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 40.0);

    h.clear(); // clear after a percentile read
    EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    h.add(7.0); // reuse after clear
    EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(Histogram, RunningAggregatesMatchSampleScan)
{
    // The running sum/min/max must equal what a full re-scan of the
    // samples would produce, through any add/merge interleaving.
    Rng rng(77);
    Histogram h;
    std::vector<double> all;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 100; ++i) {
            const double v = rng.uniform() * 1e3 - 500.0;
            h.add(v);
            all.push_back(v);
        }
        Histogram part;
        for (int i = 0; i < 50; ++i) {
            const double v = rng.uniform() * 10.0;
            part.add(v);
            all.push_back(v);
        }
        h.merge(part);
    }
    double sum = 0.0;
    for (double v : all)
        sum += v;
    EXPECT_DOUBLE_EQ(h.sum(), sum);
    EXPECT_DOUBLE_EQ(h.min(), *std::min_element(all.begin(), all.end()));
    EXPECT_DOUBLE_EQ(h.max(), *std::max_element(all.begin(), all.end()));
    EXPECT_EQ(h.count(), all.size());
}

TEST(Histogram, MergeIntoEmptySetsExtrema)
{
    Histogram h, other;
    other.add(-3.0);
    other.add(9.0);
    h.merge(other);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.sum(), 6.0);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(StatSet, CountersAndDump)
{
    StatSet s;
    s.counter("a.b").inc();
    s.counter("a.b").inc(4);
    EXPECT_EQ(s.counter("a.b").value(), 5u);
    s.histogram("h").add(2.0);
    const std::string d = s.dump();
    EXPECT_NE(d.find("a.b 5"), std::string::npos);
}

} // namespace
} // namespace conduit
