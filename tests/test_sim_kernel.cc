/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * cancellation, tick conversions, statistics, servers, and the RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit
{
namespace
{

TEST(Types, Conversions)
{
    EXPECT_EQ(nsToTicks(1), kPsPerNs);
    EXPECT_EQ(usToTicks(1), kPsPerUs);
    EXPECT_EQ(msToTicks(1), kPsPerMs);
    EXPECT_DOUBLE_EQ(ticksToNs(kPsPerNs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToUs(kPsPerUs), 1.0);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kPsPerS), 1.0);
    EXPECT_EQ(nsToTicks(22.5), 22500u);
}

TEST(Types, TransferTicks)
{
    // 1 GB/s: 1 byte = 1 ns (+1 tick rounding).
    EXPECT_NEAR(static_cast<double>(transferTicks(4096, 1e9)),
                4096.0 * kPsPerNs, 2.0);
    EXPECT_EQ(transferTicks(0, 1e9), 0u);
    EXPECT_EQ(transferTicks(100, 0.0), 0u);
}

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(1); }, 1);
    q.schedule(5, [&] { order.push_back(2); }, 1);
    q.schedule(5, [&] { order.push_back(0); }, 0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    EventId id = q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)); // double-cancel is a no-op
    q.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue q;
    int count = 0;
    q.schedule(1, [&] {
        ++count;
        q.schedule(q.now() + 1, [&] { ++count; });
    });
    q.run();
    EXPECT_EQ(count, 2);
    EXPECT_EQ(q.now(), 2u);
}

TEST(EventQueue, SchedulingInPastThrows)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, RunUntilBound)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(20, [&] { ++fired; });
    q.schedule(30, [&] { ++fired; });
    EXPECT_EQ(q.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(Server, FcfsQueueing)
{
    Server s("t");
    auto a = s.acquire(0, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(a.end, 10u);
    // Second request queues behind the first.
    auto b = s.acquire(0, 5);
    EXPECT_EQ(b.start, 10u);
    EXPECT_EQ(b.end, 15u);
    EXPECT_EQ(b.queueDelay(0), 10u);
    // A request in the future starts on time.
    auto c = s.acquire(100, 5);
    EXPECT_EQ(c.start, 100u);
    EXPECT_EQ(s.backlog(50), 55u);
    EXPECT_EQ(s.busyTime(), 20u);
}

TEST(ServerGroup, LeastLoadedDispatch)
{
    ServerGroup g("g", 2);
    auto a = g.acquire(0, 10);
    auto b = g.acquire(0, 10);
    // Both units busy until 10; third request queues on one.
    auto c = g.acquire(0, 10);
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
    EXPECT_EQ(c.start, 10u);
    EXPECT_EQ(g.busyTime(), 30u);
}

TEST(Histogram, ExactPercentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_DOUBLE_EQ(h.percentile(50), 50.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, TailPercentileOfSkewedData)
{
    Histogram h;
    for (int i = 0; i < 9999; ++i)
        h.add(1.0);
    h.add(1000.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(99.995), 1000.0);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(StatSet, CountersAndDump)
{
    StatSet s;
    s.counter("a.b").inc();
    s.counter("a.b").inc(4);
    EXPECT_EQ(s.counter("a.b").value(), 5u);
    s.histogram("h").add(2.0);
    const std::string d = s.dump();
    EXPECT_NE(d.find("a.b 5"), std::string::npos);
}

} // namespace
} // namespace conduit
