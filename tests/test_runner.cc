/**
 * @file
 * Unit tests for the parallel sweep-runner subsystem and the
 * event-queue determinism its reproducibility contract rests on.
 *
 * The headline property: a sweep executed on 1 thread and on N
 * threads produces identical RunResults per spec — verified both
 * field-by-field and on the byte level through the CSV emitter.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "src/core/simulation.hh"
#include "src/runner/sweep_cli.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"

namespace conduit
{
namespace
{

using runner::HostKind;
using runner::ProgramCache;
using runner::RunMatrix;
using runner::RunSpec;
using runner::SweepOptions;
using runner::SweepResult;
using runner::SweepRunner;

/** A small but real matrix: 2 workloads x (host + 2 policies). */
RunMatrix
smallMatrix()
{
    RunMatrix m;
    m.workloads({WorkloadId::Aes, WorkloadId::Jacobi1d})
        .technique("CPU")
        .techniques({"ISP", "Conduit"});
    return m;
}

void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.instrCount, b.instrCount);
    EXPECT_EQ(a.perResource, b.perResource);
    EXPECT_EQ(a.dmEnergyJ, b.dmEnergyJ);
    EXPECT_EQ(a.computeEnergyJ, b.computeEnergyJ);
    EXPECT_EQ(a.computeBusy, b.computeBusy);
    EXPECT_EQ(a.internalDmBusy, b.internalDmBusy);
    EXPECT_EQ(a.flashReadBusy, b.flashReadBusy);
    EXPECT_EQ(a.hostDmBusy, b.hostDmBusy);
    EXPECT_EQ(a.offloaderBusy, b.offloaderBusy);
    EXPECT_EQ(a.coherenceCommits, b.coherenceCommits);
    EXPECT_EQ(a.latchEvictions, b.latchEvictions);
    EXPECT_EQ(a.latencyUs.count(), b.latencyUs.count());
    if (a.latencyUs.count()) {
        EXPECT_EQ(a.latencyUs.percentile(50), b.latencyUs.percentile(50));
        EXPECT_EQ(a.latencyUs.percentile(99.99),
                  b.latencyUs.percentile(99.99));
    }
}

TEST(SweepRunner, OneThreadAndManyThreadsProduceIdenticalResults)
{
    SweepRunner serial(SweepOptions{1});
    SweepRunner parallel(SweepOptions{4});

    const SweepResult a = serial.run(smallMatrix().build());
    const SweepResult b = parallel.run(smallMatrix().build());

    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    EXPECT_EQ(a.threads(), 1u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.spec(i).workload, b.spec(i).workload);
        EXPECT_EQ(a.spec(i).technique, b.spec(i).technique);
        expectSameResult(a.result(i), b.result(i));
    }
}

TEST(SweepRunner, CsvRowsAreByteIdenticalAcrossThreadCounts)
{
    SweepRunner serial(SweepOptions{1});
    SweepRunner parallel(SweepOptions{4});

    std::ostringstream csv1, csvN, json1, jsonN;
    serial.run(smallMatrix().build()).writeCsv(csv1);
    parallel.run(smallMatrix().build()).writeCsv(csvN);
    serial.run(smallMatrix().build()).writeJson(json1);
    parallel.run(smallMatrix().build()).writeJson(jsonN);

    EXPECT_EQ(csv1.str(), csvN.str());
    EXPECT_EQ(json1.str(), jsonN.str());
    EXPECT_NE(csv1.str().find("\"AES\",\"Conduit\""),
              std::string::npos);
}

TEST(SweepRunner, RepeatedSweepsAreDeterministic)
{
    SweepRunner runner(SweepOptions{0}); // hardware concurrency
    const SweepResult a = runner.run(smallMatrix().build());
    const SweepResult b = runner.run(smallMatrix().build());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSameResult(a.result(i), b.result(i));
}

TEST(SweepRunner, MatchesTheSimulationFacade)
{
    // The runner path and the facade path must agree run-for-run.
    Simulation sim;
    const RunResult facade = sim.run(WorkloadId::Aes, "Conduit");

    RunMatrix m;
    m.workload(WorkloadId::Aes).technique("Conduit");
    const SweepResult sweep = SweepRunner().run(m.build());
    expectSameResult(facade, sweep.at("AES", "Conduit"));
}

TEST(SweepRunner, HostKindRunsBaselineUnderCustomLabel)
{
    RunMatrix m;
    m.workload(WorkloadId::Aes).hostTechnique("OSP", false);
    const SweepResult sweep = SweepRunner().run(m.build());
    // Would throw inside makePolicy("OSP") if the host flag were
    // ignored; instead it must match the CPU baseline's numbers.
    Simulation sim;
    const RunResult cpu = sim.runHost(WorkloadId::Aes, false);
    EXPECT_EQ(sweep.at("AES", "OSP").execTime, cpu.execTime);
}

TEST(SweepRunner, SpecWithoutProgramOrWorkloadThrows)
{
    RunSpec bad;
    bad.workload = "broken";
    bad.technique = "Conduit";
    SweepRunner runner;
    EXPECT_THROW(runner.run({bad}), std::invalid_argument);
}

TEST(RunMatrix, CrossProductIsWorkloadMajorAndFilterable)
{
    RunMatrix m;
    m.workloads({WorkloadId::Aes, WorkloadId::XorFilter})
        .techniques({"CPU", "Conduit"});
    const auto specs = m.build();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].workload, "AES");
    EXPECT_EQ(specs[0].technique, "CPU");
    EXPECT_EQ(specs[1].workload, "AES");
    EXPECT_EQ(specs[1].technique, "Conduit");
    EXPECT_EQ(specs[2].workload, "XOR Filter");

    m.filterWorkloads("AES");
    m.filterTechniques("Conduit");
    const auto filtered = m.build();
    ASSERT_EQ(filtered.size(), 1u);
    EXPECT_EQ(filtered[0].workload, "AES");
    EXPECT_EQ(filtered[0].technique, "Conduit");
}

TEST(ProgramCache, CompilesOnceAndSharesAcrossThreads)
{
    ProgramCache cache;
    const SsdConfig cfg = runner::defaultSweepConfig();
    const WorkloadParams params;

    std::vector<std::shared_ptr<const VectorizedProgram>> got(8);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < got.size(); ++t)
        threads.emplace_back([&, t] {
            got[t] = cache.get(WorkloadId::Jacobi1d, params, cfg);
        });
    for (auto &t : threads)
        t.join();

    for (std::size_t t = 1; t < got.size(); ++t)
        EXPECT_EQ(got[0].get(), got[t].get());
    EXPECT_EQ(cache.size(), 1u);

    WorkloadParams bigger;
    bigger.scale = 2.0;
    EXPECT_NE(cache.get(WorkloadId::Jacobi1d, bigger, cfg).get(),
              got[0].get());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(SweepResult, LookupAndLabels)
{
    const SweepResult sweep =
        SweepRunner(SweepOptions{2}).run(smallMatrix().build());
    EXPECT_EQ(sweep.workloadLabels(),
              (std::vector<std::string>{"AES", "jacobi-1d"}));
    EXPECT_EQ(sweep.techniqueLabels(),
              (std::vector<std::string>{"CPU", "ISP", "Conduit"}));
    EXPECT_NE(sweep.find("AES", "ISP"), nullptr);
    EXPECT_EQ(sweep.find("AES", "nope"), nullptr);
    EXPECT_THROW(sweep.at("AES", "nope"), std::out_of_range);
    EXPECT_GT(sweep.at("AES", "CPU").execTime, 0u);
}

// ----------------------------------------------------------------
// EventQueue determinism: the (tick, priority, sequence) ordering
// and cancel semantics the runner's reproducibility claim rests on.
// ----------------------------------------------------------------

TEST(EventQueueDeterminism, SequenceBreaksTiesInSchedulingOrder)
{
    EventQueue q;
    std::vector<int> order;
    // Same tick, same priority: must fire in scheduling order even
    // when scheduled interleaved with other ticks.
    q.schedule(50, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(0); });
    q.schedule(50, [&] { order.push_back(2); });
    q.schedule(50, [&] { order.push_back(3); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueDeterminism, PriorityDominatesSequenceWithinTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(2); }, 1);
    q.schedule(5, [&] { order.push_back(0); }, -1);
    q.schedule(5, [&] { order.push_back(3); }, 1);
    q.schedule(5, [&] { order.push_back(1); }, 0);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueDeterminism, StressOrderingIsReproducible)
{
    // Two queues fed the same pseudo-random schedule must fire the
    // same sequence, including same-tick/priority ties.
    const auto drive = [](EventQueue &q, std::vector<int> &fired) {
        Rng rng(2026);
        for (int i = 0; i < 500; ++i) {
            const Tick when = rng.below(64);
            const int prio = static_cast<int>(rng.below(3));
            q.schedule(when, [&fired, i] { fired.push_back(i); },
                       prio);
        }
        q.run();
    };
    EventQueue q1, q2;
    std::vector<int> f1, f2;
    drive(q1, f1);
    drive(q2, f2);
    EXPECT_EQ(f1.size(), 500u);
    EXPECT_EQ(f1, f2);
}

TEST(EventQueueDeterminism, CancelSemantics)
{
    EventQueue q;
    std::vector<int> order;
    const EventId a = q.schedule(10, [&] { order.push_back(1); });
    const EventId b = q.schedule(10, [&] { order.push_back(2); });
    EventId c = 0;
    c = q.schedule(20, [&] { order.push_back(3); });

    // Cancelling a pending event succeeds once; the slot never fires
    // and does not perturb the ordering of its same-tick peers.
    EXPECT_TRUE(q.cancel(a));
    EXPECT_FALSE(q.cancel(a));
    // Cancelling from inside a callback cancels not-yet-fired events.
    q.schedule(15, [&] { EXPECT_TRUE(q.cancel(c)); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{2}));
    EXPECT_TRUE(q.empty());
    // After firing, an id is no longer cancellable.
    EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueueDeterminism, PendingAccountsForCancellations)
{
    EventQueue q;
    const EventId a = q.schedule(10, [] {});
    q.schedule(20, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.run();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.eventsFired(), 1u);
}

} // namespace
} // namespace conduit
