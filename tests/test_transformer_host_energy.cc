/**
 * @file
 * Unit tests for the instruction transformation unit, the host
 * CPU/GPU baselines, and energy accounting.
 */

#include <gtest/gtest.h>

#include "src/core/transformer.hh"
#include "src/energy/energy_model.hh"
#include "src/host/host_model.hh"

namespace conduit
{
namespace
{

VecInstruction
vecInstr(OpCode op, std::uint32_t lanes = 16384,
         std::uint16_t bits = 8)
{
    VecInstruction vi;
    vi.op = op;
    vi.lanes = lanes;
    vi.elemBits = bits;
    vi.srcs.resize(2);
    return vi;
}

TEST(Transformer, NativeWidthsPerResource)
{
    InstructionTransformer tx(4096, 8192, 32);
    EXPECT_EQ(tx.nativeLanes(Target::Ifp, 8), 4096u);
    EXPECT_EQ(tx.nativeLanes(Target::Pud, 8), 8192u);
    EXPECT_EQ(tx.nativeLanes(Target::Isp, 8), 32u);
    EXPECT_EQ(tx.nativeLanes(Target::Isp, 32), 8u);
}

TEST(Transformer, VectorWidthAdaptationSplitsSubOps)
{
    InstructionTransformer tx(4096, 8192, 32);
    // A 16384-lane INT8 vector maps to 4 page-wide IFP sub-ops,
    // 2 row-wide PuD sub-ops, and 512 MVE issues (§4.3.2).
    auto ifp = tx.transform(vecInstr(OpCode::Add), Target::Ifp);
    EXPECT_EQ(ifp.subOps, 4u);
    auto pud = tx.transform(vecInstr(OpCode::Add), Target::Pud);
    EXPECT_EQ(pud.subOps, 2u);
    auto isp = tx.transform(vecInstr(OpCode::Add), Target::Isp);
    EXPECT_EQ(isp.subOps, 512u);
}

TEST(Transformer, MnemonicsMatchSubstrateIsas)
{
    InstructionTransformer tx(4096, 8192, 32);
    EXPECT_EQ(tx.transform(vecInstr(OpCode::Xor), Target::Isp).mnemonic,
              "veor");
    EXPECT_EQ(tx.transform(vecInstr(OpCode::Xor), Target::Pud).mnemonic,
              "bbop_xor");
    EXPECT_EQ(tx.transform(vecInstr(OpCode::And), Target::Ifp).mnemonic,
              "mws_and");
    EXPECT_EQ(tx.transform(vecInstr(OpCode::Mul), Target::Ifp).mnemonic,
              "shift_and_add.mul");
    EXPECT_EQ(tx.transform(vecInstr(OpCode::Copy), Target::Pud).mnemonic,
              "rowclone_aap");
    EXPECT_EQ(
        tx.transform(vecInstr(OpCode::Select), Target::Isp).mnemonic,
        "vpsel");
}

TEST(Transformer, TableFitsReportedBudget)
{
    // §4.5: the translation table consumes ~1.5 KiB of SSD DRAM.
    EXPECT_LE(InstructionTransformer::tableBytes(), 2048u);
    EXPECT_GE(InstructionTransformer::tableBytes(), 1024u);
}

Program
hostProgram(OpCode op, std::size_t n, bool indirect = false)
{
    Program prog;
    prog.name = "host";
    prog.pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = op;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{(i * 4) % 512, 4}, Operand{512, 4}};
        vi.dst = Operand{520 + (i * 4) % 256, 4};
        vi.indirect = indirect;
        prog.instrs.push_back(vi);
    }
    prog.footprintPages = 800;
    return prog;
}

TEST(HostModel, GpuFasterOnComputeHeavyWork)
{
    SsdConfig cfg;
    HostModel cpu(cfg, HostModel::Kind::Cpu);
    HostModel gpu(cfg, HostModel::Kind::Gpu);
    auto prog = hostProgram(OpCode::Mul, 200);
    auto rc = cpu.run(prog);
    auto rg = gpu.run(prog);
    EXPECT_LT(rg.totalTime, rc.totalTime);
    EXPECT_LT(rg.computeTime, rc.computeTime);
}

TEST(HostModel, TransfersReflectCacheMisses)
{
    SsdConfig cfg;
    HostModel cpu(cfg, HostModel::Kind::Cpu);
    auto prog = hostProgram(OpCode::Add, 100);
    auto r = cpu.run(prog);
    EXPECT_GT(r.pcieBytes, 0u);
    EXPECT_GT(r.transferTime, 0u);
    EXPECT_GT(r.dmEnergyJ, 0.0);
    EXPECT_GT(r.computeEnergyJ, 0.0);
}

TEST(HostModel, IndirectGatherCostsMore)
{
    SsdConfig cfg;
    HostModel cpu(cfg, HostModel::Kind::Cpu);
    auto seq = cpu.run(hostProgram(OpCode::Add, 100, false));
    auto gat = cpu.run(hostProgram(OpCode::Add, 100, true));
    EXPECT_GT(gat.pcieBytes, seq.pcieBytes);
    EXPECT_GT(gat.totalTime, seq.totalTime);
}

TEST(HostModel, ComputeAndTransferOverlap)
{
    SsdConfig cfg;
    HostModel cpu(cfg, HostModel::Kind::Cpu);
    auto r = cpu.run(hostProgram(OpCode::Mul, 50));
    EXPECT_LE(r.totalTime,
              r.computeTime + r.transferTime + usToTicks(10));
    EXPECT_GE(r.totalTime, std::max(r.computeTime, r.transferTime));
}

TEST(EnergyModel, BucketsSeparateDmFromCompute)
{
    EnergyConfig e;
    EnergyModel m(e);
    m.flashRead(2);
    m.dma(1);
    m.channelTransfer(4096);
    EXPECT_GT(m.dataMovementJ(), 0.0);
    EXPECT_DOUBLE_EQ(m.computeJ(), 0.0);
    m.pudOp(100);
    m.ispBusy(usToTicks(10));
    m.ifpOp(OpCode::Xor, 4096);
    m.ifpSense(1);
    EXPECT_GT(m.computeJ(), 0.0);
    const double dm = m.dataMovementJ();
    const double comp = m.computeJ();
    EXPECT_DOUBLE_EQ(m.totalJ(), dm + comp);
    m.reset();
    EXPECT_DOUBLE_EQ(m.totalJ(), 0.0);
}

TEST(EnergyModel, TableTwoConstantsApplied)
{
    EnergyConfig e;
    EnergyModel m(e);
    m.flashRead(1);
    EXPECT_DOUBLE_EQ(m.dataMovementJ(), e.readJPerChannel);
    m.reset();
    m.pudOp(1);
    EXPECT_DOUBLE_EQ(m.computeJ(), e.bbopJ);
    m.reset();
    // XOR is twice the AND/OR per-KB energy (Table 2).
    m.ifpOp(OpCode::Xor, 1024);
    const double xor_j = m.computeJ();
    m.reset();
    m.ifpOp(OpCode::And, 1024);
    EXPECT_NEAR(xor_j, 2.0 * m.computeJ(), 1e-15);
}

} // namespace
} // namespace conduit
