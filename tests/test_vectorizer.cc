/**
 * @file
 * Unit tests for the compile-time auto-vectorization stage:
 * legality analysis, strip-mining, dependence wiring, if-conversion,
 * reductions, and the Table 3 characterization metrics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "src/vectorizer/vectorizer.hh"

namespace conduit
{
namespace
{

VectorizeOptions
smallOpts()
{
    VectorizeOptions o;
    o.vectorLanes = 4096;
    o.pageBytes = 4096;
    return o;
}

LoopProgram
simpleProgram(std::uint64_t n)
{
    LoopProgram lp;
    lp.name = "simple";
    const ArrayId a = lp.addArray("a", n);
    const ArrayId b = lp.addArray("b", n);
    const ArrayId c = lp.addArray("c", n);
    Loop loop;
    loop.label = "l0";
    loop.tripCount = n;
    loop.body.push_back({OpCode::Add, {{a, 0, 1}, {b, 0, 1}},
                         {c, 0, 1}});
    lp.loops.push_back(loop);
    return lp;
}

TEST(Vectorizer, StripMinesToVectorWidth)
{
    Vectorizer v(smallOpts());
    auto vp = v.run(simpleProgram(4096 * 3));
    ASSERT_EQ(vp.program.instrs.size(), 3u);
    for (const auto &vi : vp.program.instrs) {
        EXPECT_EQ(vi.lanes, 4096u);
        EXPECT_TRUE(vi.vectorized);
        EXPECT_EQ(vi.op, OpCode::Add);
        EXPECT_EQ(vi.srcs.size(), 2u);
    }
}

TEST(Vectorizer, TailChunkGetsResidualLanes)
{
    Vectorizer v(smallOpts());
    auto vp = v.run(simpleProgram(4096 + 100));
    ASSERT_EQ(vp.program.instrs.size(), 2u);
    EXPECT_EQ(vp.program.instrs[0].lanes, 4096u);
    EXPECT_EQ(vp.program.instrs[1].lanes, 100u);
}

TEST(Vectorizer, CarriedDependencePreventsVectorization)
{
    LoopProgram lp = simpleProgram(4096);
    lp.loops[0].carriedDependence = true;
    Vectorizer v(smallOpts());
    auto vp = v.run(lp);
    ASSERT_EQ(vp.program.instrs.size(), 1u);
    EXPECT_FALSE(vp.program.instrs[0].vectorized);
    EXPECT_EQ(vp.report.vectorInstrs, 0u);
    EXPECT_EQ(vp.report.scalarInstrs, 1u);
    // The -Rpass-style remark names the cause.
    bool found = false;
    for (const auto &r : vp.report.remarks)
        found |= r.find("loop-carried") != std::string::npos;
    EXPECT_TRUE(found);
}

TEST(Vectorizer, MultipleExitsAndAtomicsPreventVectorization)
{
    for (int mode = 0; mode < 2; ++mode) {
        LoopProgram lp = simpleProgram(4096);
        if (mode == 0)
            lp.loops[0].multipleExits = true;
        else
            lp.loops[0].atomics = true;
        auto vp = Vectorizer(smallOpts()).run(lp);
        EXPECT_FALSE(vp.program.instrs[0].vectorized);
    }
}

TEST(Vectorizer, IndirectStatementStaysScalarOthersVectorize)
{
    LoopProgram lp = simpleProgram(4096);
    // Second statement gathers through a data-dependent index.
    lp.loops[0].body.push_back(
        {OpCode::Add, {{0, 0, 1, true}, {1, 0, 1}}, {2, 0, 1}});
    auto vp = Vectorizer(smallOpts()).run(lp);
    ASSERT_EQ(vp.program.instrs.size(), 2u);
    EXPECT_TRUE(vp.program.instrs[0].vectorized);
    EXPECT_FALSE(vp.program.instrs[1].vectorized);
    EXPECT_TRUE(vp.program.instrs[1].indirect);
    EXPECT_DOUBLE_EQ(vp.report.vectorizableFraction, 0.5);
}

TEST(Vectorizer, RawDependencesWired)
{
    LoopProgram lp;
    const ArrayId a = lp.addArray("a", 4096);
    const ArrayId b = lp.addArray("b", 4096);
    Loop loop;
    loop.tripCount = 4096;
    loop.body.push_back({OpCode::Add, {{a, 0, 1}, {a, 0, 1}},
                         {b, 0, 1}});
    loop.body.push_back({OpCode::Mul, {{b, 0, 1}, {a, 0, 1}},
                         {b, 0, 1}});
    lp.loops.push_back(loop);
    auto vp = Vectorizer(smallOpts()).run(lp);
    ASSERT_EQ(vp.program.instrs.size(), 2u);
    // The multiply reads b, produced by the add (RAW).
    const auto &mul = vp.program.instrs[1];
    ASSERT_EQ(mul.deps.size(), 1u);
    EXPECT_EQ(mul.deps[0], vp.program.instrs[0].id);
}

TEST(Vectorizer, WawOrderingRecorded)
{
    LoopProgram lp;
    const ArrayId a = lp.addArray("a", 4096);
    const ArrayId b = lp.addArray("b", 4096);
    Loop loop;
    loop.tripCount = 4096;
    loop.body.push_back({OpCode::Add, {{a, 0, 1}}, {b, 0, 1}});
    loop.body.push_back({OpCode::Sub, {{a, 0, 1}}, {b, 0, 1}});
    lp.loops.push_back(loop);
    auto vp = Vectorizer(smallOpts()).run(lp);
    // Second write to b must order after the first (WAW).
    EXPECT_EQ(vp.program.instrs[1].deps.size(), 1u);
}

TEST(Vectorizer, IfConversionEmitsComparePlusSelect)
{
    LoopProgram lp = simpleProgram(4096);
    lp.loops[0].body[0].conditional = true;
    auto vp = Vectorizer(smallOpts()).run(lp);
    // cmp + op + select, all vectorized.
    ASSERT_EQ(vp.program.instrs.size(), 3u);
    EXPECT_EQ(vp.program.instrs[0].op, OpCode::CmpLt);
    EXPECT_EQ(vp.program.instrs[1].op, OpCode::Add);
    EXPECT_EQ(vp.program.instrs[2].op, OpCode::Select);
    for (const auto &vi : vp.program.instrs)
        EXPECT_TRUE(vi.vectorized);
    // The select depends on both mask and value producers.
    EXPECT_GE(vp.program.instrs[2].deps.size(), 2u);
}

TEST(Vectorizer, ReductionBuildsPartialsAndCombineTree)
{
    LoopProgram lp;
    const ArrayId a = lp.addArray("a", 4096 * 8);
    const ArrayId s = lp.addArray("sum", 16);
    Loop loop;
    loop.tripCount = 4096 * 8;
    LoopStmt red{OpCode::Add, {{a, 0, 1}}, {s, 0, 1}};
    red.reduction = true;
    loop.body.push_back(red);
    lp.loops.push_back(loop);
    VectorizeOptions o = smallOpts();
    o.reductionPartials = 4;
    auto vp = Vectorizer(o).run(lp);
    // 8 chunk accumulations + 3 tree combines + 1 final fold.
    ASSERT_EQ(vp.program.instrs.size(), 12u);
    // The final fold is the only scalar step.
    EXPECT_FALSE(vp.program.instrs.back().vectorized);
    std::size_t scalar = 0;
    for (const auto &vi : vp.program.instrs)
        scalar += vi.vectorized ? 0 : 1;
    EXPECT_EQ(scalar, 1u);
}

TEST(Vectorizer, ReductionMulBecomesMac)
{
    LoopProgram lp;
    const ArrayId a = lp.addArray("a", 4096);
    const ArrayId s = lp.addArray("sum", 16);
    Loop loop;
    loop.tripCount = 4096;
    LoopStmt red{OpCode::Mul, {{a, 0, 1}, {a, 0, 1}}, {s, 0, 1}};
    red.reduction = true;
    loop.body.push_back(red);
    lp.loops.push_back(loop);
    auto vp = Vectorizer(smallOpts()).run(lp);
    EXPECT_EQ(vp.program.instrs.front().op, OpCode::Mac);
}

TEST(Vectorizer, SmallArrayRefsClampToBounds)
{
    // Regression: a 256-entry table referenced from chunk offsets far
    // beyond its size must produce a 1-page operand, not an unsigned
    // underflow.
    LoopProgram lp;
    const ArrayId big = lp.addArray("big", 4096 * 64);
    const ArrayId lut = lp.addArray("lut", 256);
    Loop loop;
    loop.tripCount = 4096 * 64;
    loop.body.push_back({OpCode::Xor, {{big, 0, 1}, {lut, 0, 0}},
                         {big, 0, 1}});
    lp.loops.push_back(loop);
    auto vp = Vectorizer(smallOpts()).run(lp);
    for (const auto &vi : vp.program.instrs) {
        ASSERT_EQ(vi.srcs.size(), 2u);
        EXPECT_EQ(vi.srcs[1].pageCount, 1u);
    }
}

TEST(Vectorizer, BroadcastStrideZeroTouchesOnePage)
{
    LoopProgram lp = simpleProgram(4096 * 4);
    lp.loops[0].body[0].srcs[1].stride = 0;
    auto vp = Vectorizer(smallOpts()).run(lp);
    for (const auto &vi : vp.program.instrs)
        EXPECT_EQ(vi.srcs[1].pageCount, 1u);
}

TEST(Vectorizer, RepeatMultipliesDynamicWork)
{
    LoopProgram lp = simpleProgram(4096);
    lp.loops[0].repeat = 5;
    auto vp = Vectorizer(smallOpts()).run(lp);
    EXPECT_EQ(vp.program.instrs.size(), 5u);
    // Static code fraction counts the statement once.
    EXPECT_DOUBLE_EQ(vp.report.vectorizableFraction, 1.0);
}

TEST(Vectorizer, OpMixFractionsSumToOne)
{
    LoopProgram lp = simpleProgram(4096 * 2);
    lp.loops[0].body.push_back(
        {OpCode::Xor, {{0, 0, 1}, {1, 0, 1}}, {2, 0, 1}});
    lp.loops[0].body.push_back(
        {OpCode::Mul, {{0, 0, 1}, {1, 0, 1}}, {2, 0, 1}});
    auto vp = Vectorizer(smallOpts()).run(lp);
    const auto &r = vp.report;
    EXPECT_NEAR(r.lowFraction + r.medFraction + r.highFraction, 1.0,
                1e-9);
    EXPECT_NEAR(r.lowFraction, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(r.highFraction, 1.0 / 3.0, 1e-9);
}

TEST(Vectorizer, FootprintCoversAllArrays)
{
    LoopProgram lp = simpleProgram(4096 * 4);
    auto vp = Vectorizer(smallOpts()).run(lp);
    // Three 16 KiB arrays = 12 pages minimum.
    EXPECT_GE(vp.program.footprintPages, 12u);
    // Every operand stays within the footprint.
    for (const auto &vi : vp.program.instrs) {
        for (const auto &s : vi.srcs) {
            EXPECT_LE(s.basePage + s.pageCount,
                      vp.program.footprintPages);
        }
    }
}

TEST(Vectorizer, DeterministicAcrossRuns)
{
    LoopProgram lp = simpleProgram(4096 * 7);
    auto a = Vectorizer(smallOpts()).run(lp);
    auto b = Vectorizer(smallOpts()).run(lp);
    ASSERT_EQ(a.program.instrs.size(), b.program.instrs.size());
    for (std::size_t i = 0; i < a.program.instrs.size(); ++i) {
        EXPECT_EQ(a.program.instrs[i].toString(),
                  b.program.instrs[i].toString());
    }
}

/** Property sweep: deps always reference earlier instructions. */
class DepOrdering : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DepOrdering, ProducersPrecedeConsumers)
{
    LoopProgram lp = simpleProgram(GetParam());
    lp.loops[0].repeat = 3;
    lp.loops[0].body.push_back(
        {OpCode::Mul, {{2, 0, 1}, {0, 0, 1}}, {1, 0, 1}});
    auto vp = Vectorizer(smallOpts()).run(lp);
    for (const auto &vi : vp.program.instrs) {
        for (InstrId d : vi.deps)
            ASSERT_LT(d, vi.id);
    }
}

INSTANTIATE_TEST_SUITE_P(Trips, DepOrdering,
                         ::testing::Values(1, 100, 4096, 4097, 40960));

} // namespace
} // namespace conduit
