/**
 * @file
 * Fork-equivalence tests for the DeviceImage snapshot subsystem.
 *
 * The contract under test: Device::snapshot() at quiescence captures
 * every piece of mutable simulated state, and a device forked from
 * the image (Device::fromImage) behaves byte-identically to the
 * device that lived through the history — same job results, same
 * event counts, same RNG stream positions — under any subsequent
 * traffic. Snapshots are exercised mid-life (after GC has run, and
 * after aged-device block retirement), forks are shown to be
 * mutually independent, and the sweep-runner fork mode is shown to
 * emit byte-identical rows to cold sweeps at any thread count.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/arrival.hh"
#include "src/core/device.hh"
#include "src/core/simulation.hh"
#include "src/runner/sweep_result.hh"
#include "src/runner/sweep_runner.hh"

namespace conduit
{
namespace
{

using runner::AgingRunSpec;
using runner::LoadRunSpec;
using runner::SweepOptions;
using runner::SweepRunner;

/**
 * A small device with GC pressure: a handful of small blocks and an
 * early GC trigger, so a handful of jobs already churns the FTL
 * through whole garbage-collection cycles.
 */
SsdConfig
gcCfg()
{
    SsdConfig cfg = SsdConfig::scaled(1.0 / 256.0);
    cfg.nand.channels = 2;
    cfg.nand.diesPerChannel = 2;
    cfg.nand.planesPerDie = 1;
    cfg.nand.blocksPerPlane = 8;
    cfg.nand.pagesPerBlock = 32;
    cfg.gcThreshold = 0.30;
    return cfg;
}

/**
 * gcCfg() fast-forwarded past rated life, with extra spare blocks:
 * the base RBER sits just under the retry ladder's reach, so only
 * the high-jitter tail of blocks soft-decodes, accumulates
 * retirement votes, and retires at its next GC erase — real
 * retirement churn without collapsing the free pool.
 */
SsdConfig
agedCfg()
{
    SsdConfig cfg = gcCfg();
    // Extra spare blocks absorb the retirements, and a higher GC
    // trigger keeps the collector erasing despite the bigger pool
    // (retirement only happens at erase time).
    cfg.nand.blocksPerPlane = 12;
    cfg.gcThreshold = 0.45;
    cfg.reliability.enabled = true;
    cfg.reliability.preWearCycles = 3250;
    cfg.reliability.retentionDays = 90.0;
    // Two soft-decoded reads are enough to condemn a block: the
    // handful of high-jitter blocks retire within the short test
    // run instead of needing a long vote history.
    cfg.reliability.retireSoftThreshold = 2;
    return cfg;
}

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(const std::string &name, std::size_t n)
{
    auto prog = std::make_shared<Program>();
    prog->name = name;
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

DeviceOptions
imageTestOptions(const SsdConfig &cfg)
{
    DeviceOptions d;
    d.config = cfg;
    // Open-loop shape: eager retirement recycles a bounded page pool
    // between jobs — the write churn that makes GC (and on an aged
    // device, block retirement) actually happen mid-history.
    d.retire = RetirePolicy::OnComplete;
    d.capacityPages = 600;
    // Bound the DRAM staging pool too, so eviction victim selection
    // draws from the engine RNG and the stream position is
    // mid-sequence when snapshots capture it.
    d.engine.dramStagingFraction = 0.3;
    return d;
}

/**
 * Offer @p jobs jobs of @p prog with deterministic pseudo-Poisson
 * gaps, continuing @p at (the caller threads one arrival clock
 * through warm and measured phases, exactly like the sweep runner).
 */
void
offerJobs(Device &dev, const std::shared_ptr<const Program> &prog,
          std::size_t jobs, ArrivalProcess &gaps, Tick &at)
{
    for (std::size_t i = 0; i < jobs; ++i) {
        at += gaps.next();
        JobSpec job;
        job.name = prog->name;
        job.program = prog;
        job.policyObj =
            std::shared_ptr<OffloadPolicy>(makePolicy("Conduit"));
        job.arrival = at;
        dev.submit(job);
    }
}

/** Mean arrival gap that keeps the device busy but not saturated. */
constexpr double kGapPs = 4.0e8;

void
expectSameJob(const JobResult &x, const JobResult &y)
{
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.arrival, y.arrival);
    EXPECT_EQ(x.admitted, y.admitted);
    EXPECT_EQ(x.end, y.end);
    EXPECT_EQ(x.basePage, y.basePage);
    EXPECT_EQ(x.pages, y.pages);
    EXPECT_EQ(x.result.execTime, y.result.execTime);
    EXPECT_EQ(x.result.instrCount, y.result.instrCount);
    EXPECT_EQ(x.result.perResource, y.result.perResource);
    EXPECT_EQ(x.result.latencyUs.count(), y.result.latencyUs.count());
    EXPECT_EQ(x.result.latencyUs.max(), y.result.latencyUs.max());
    EXPECT_EQ(x.result.coherenceCommits, y.result.coherenceCommits);
    EXPECT_EQ(x.result.latchEvictions, y.result.latchEvictions);
    EXPECT_DOUBLE_EQ(x.result.dmEnergyJ, y.result.dmEnergyJ);
    EXPECT_DOUBLE_EQ(x.result.computeEnergyJ,
                     y.result.computeEnergyJ);
}

void
expectSameSnapshot(const DeviceSnapshot &x, const DeviceSnapshot &y)
{
    EXPECT_EQ(x.makespan, y.makespan);
    ASSERT_EQ(x.jobs.size(), y.jobs.size());
    for (std::size_t i = 0; i < x.jobs.size(); ++i)
        expectSameJob(x.jobs[i], y.jobs[i]);
    EXPECT_EQ(x.aggregate.execTime, y.aggregate.execTime);
    EXPECT_EQ(x.aggregate.latencyUs.count(),
              y.aggregate.latencyUs.count());
    EXPECT_EQ(x.reliability.eccRetries, y.reliability.eccRetries);
    EXPECT_EQ(x.reliability.softDecodes, y.reliability.softDecodes);
    EXPECT_EQ(x.reliability.retiredBlocks,
              y.reliability.retiredBlocks);
    EXPECT_EQ(x.reliability.scrubRefreshes,
              y.reliability.scrubRefreshes);
}

/**
 * The core experiment: warm a device with @p warm jobs, snapshot,
 * then offer @p measured more jobs to (a) the continued original and
 * (b) a fork of the image — with identical arrival clocks — and
 * require byte-identical outcomes, including the post-run RNG
 * stream positions and event totals of a second snapshot of each.
 */
void
forkEqualsContinued(const SsdConfig &cfg, std::size_t warm,
                    std::size_t measured)
{
    auto prog = chainProgram("img", 24);

    Device dev(imageTestOptions(cfg));
    auto gaps = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    Tick at = 0;
    offerJobs(dev, prog, warm, *gaps, at);
    const DeviceImage img = dev.snapshot();
    EXPECT_EQ(img.jobs.size(), warm);

    // Continue the original.
    at = dev.now();
    offerJobs(dev, prog, measured, *gaps, at);
    const DeviceSnapshot contSnap = dev.drain();
    const DeviceImage contImg = dev.snapshot();

    // Fork, replaying the same arrival clock (burn the warm gaps).
    Device fork = Device::fromImage(img);
    auto gaps2 = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    for (std::size_t i = 0; i < warm; ++i)
        gaps2->next();
    Tick at2 = fork.now();
    EXPECT_EQ(at2, img.engine.queueNow);
    offerJobs(fork, prog, measured, *gaps2, at2);
    const DeviceSnapshot forkSnap = fork.drain();
    const DeviceImage forkImg = fork.snapshot();

    expectSameSnapshot(contSnap, forkSnap);
    EXPECT_EQ(contSnap.eventsFired, forkSnap.eventsFired);
    EXPECT_EQ(contImg.engine.queueNow, forkImg.engine.queueNow);
    EXPECT_EQ(contImg.engine.queueFired, forkImg.engine.queueFired);
    EXPECT_TRUE(contImg.engine.rng == forkImg.engine.rng);
    EXPECT_EQ(contImg.engine.ftl.nextSlot, forkImg.engine.ftl.nextSlot);
    EXPECT_EQ(contImg.engine.ftl.freeBlockCount,
              forkImg.engine.ftl.freeBlockCount);
    EXPECT_EQ(contImg.engine.ftl.gcRuns, forkImg.engine.ftl.gcRuns);
    EXPECT_EQ(contImg.engine.ftl.retiredBlocks,
              forkImg.engine.ftl.retiredBlocks);
}

// ------------------------------------------------ fork equivalence

TEST(DeviceImage, ForkEqualsContinuedAfterGc)
{
    forkEqualsContinued(gcCfg(), 8, 4);
}

TEST(DeviceImage, ForkEqualsContinuedAfterBlockRetirement)
{
    forkEqualsContinued(agedCfg(), 8, 4);
}

TEST(DeviceImage, SnapshotCapturesMidLifeFtlState)
{
    auto prog = chainProgram("gc", 24);
    Device dev(imageTestOptions(gcCfg()));
    auto gaps = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    Tick at = 0;
    offerJobs(dev, prog, 8, *gaps, at);
    const DeviceImage img = dev.snapshot();

    // The snapshot must land mid-life, after real FTL churn: GC has
    // run and the mapping table is populated — the state whose loss
    // a warm-from-scratch rebuild could never hide.
    EXPECT_GT(img.engine.ftl.gcRuns, 0u);
    EXPECT_GT(img.engine.ftl.mapHits + img.engine.ftl.mapMisses, 0u);
    EXPECT_LT(img.engine.ftl.freeBlockCount,
              img.engine.ftl.blocks.size());
    EXPECT_EQ(img.capacityPages, 600u);
}

TEST(DeviceImage, SnapshotCapturesBlockRetirement)
{
    auto prog = chainProgram("aged", 24);
    Device dev(imageTestOptions(agedCfg()));
    auto gaps = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    Tick at = 0;
    offerJobs(dev, prog, 8, *gaps, at);
    const DeviceImage img = dev.snapshot();

    // End-of-life wear: the retry ladder fired and blocks retired
    // before the snapshot, so the image carries a shrunken
    // over-provisioning pool and per-block wear state.
    EXPECT_GT(img.engine.rel.stats.eccRetries, 0u);
    EXPECT_GT(img.engine.ftl.retiredBlocks, 0u);
}

TEST(DeviceImage, RngStreamRestoredExactly)
{
    auto prog = chainProgram("rng", 16);
    Device dev(imageTestOptions(gcCfg()));
    auto gaps = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    Tick at = 0;
    offerJobs(dev, prog, 4, *gaps, at);
    const DeviceImage img = dev.snapshot();

    // An immediate re-snapshot of a fork reproduces the exact RNG
    // stream position (not just a fresh seed).
    Device fork = Device::fromImage(img);
    const DeviceImage again = fork.snapshot();
    EXPECT_TRUE(img.engine.rng == again.engine.rng);

    // And the position is mid-stream: a fresh device's RNG differs.
    Device fresh(imageTestOptions(gcCfg()));
    fresh.submit([&] {
        JobSpec job;
        job.program = prog;
        job.policyObj =
            std::shared_ptr<OffloadPolicy>(makePolicy("Conduit"));
        return job;
    }());
    const DeviceImage freshImg = fresh.snapshot();
    EXPECT_TRUE(img.engine.rng != freshImg.engine.rng);
}

TEST(DeviceImage, ForksAreMutuallyIndependent)
{
    auto prog = chainProgram("indep", 24);
    Device dev(imageTestOptions(gcCfg()));
    auto gaps = makeArrivals(ArrivalKind::Poisson, kGapPs, 1);
    Tick at = 0;
    offerJobs(dev, prog, 6, *gaps, at);
    const DeviceImage img = dev.snapshot();

    const auto runFork = [&](std::uint64_t seed, std::size_t jobs) {
        Device f = Device::fromImage(img);
        auto g = makeArrivals(ArrivalKind::Poisson, kGapPs, seed);
        Tick a = f.now();
        offerJobs(f, prog, jobs, *g, a);
        return f.drain();
    };

    // Three forks, interleaved with a fork running different
    // traffic: equal traffic keeps producing equal outcomes, so no
    // fork mutates the shared image.
    const DeviceSnapshot first = runFork(7, 3);
    const DeviceSnapshot other = runFork(99, 5);
    const DeviceSnapshot second = runFork(7, 3);
    const DeviceSnapshot third = runFork(7, 3);
    expectSameSnapshot(first, second);
    expectSameSnapshot(first, third);
    EXPECT_NE(other.jobs.size(), first.jobs.size());
}

// -------------------------------------------- sweep-runner fork mode

/** A tiny aging ladder crossed with two policies. */
std::vector<AgingRunSpec>
agingMatrix(bool steadyState)
{
    std::vector<AgingRunSpec> cells;
    for (const char *policy : {"Conduit", "DM-Offloading"}) {
        for (std::uint32_t age : {0u, 1500u, 3000u}) {
            AgingRunSpec cell;
            cell.load.workload = "AES";
            cell.load.technique = policy;
            cell.load.workloadId = WorkloadId::Aes;
            cell.load.params.scale = 1.0 / 64.0;
            cell.load.jobs = 2;
            cell.load.jobsPerSec = 2000.0;
            cell.load.warmupJobs = 3;
            cell.load.steadyState = steadyState;
            cell.preWearCycles = age;
            cell.retentionDays = age * 0.03;
            cells.push_back(cell);
        }
    }
    return cells;
}

std::string
agingCsv(SweepRunner &runner, const std::vector<AgingRunSpec> &cells)
{
    const std::vector<DeviceSnapshot> snaps = runner.runAgingAll(cells);
    std::vector<runner::AgingRow> rows;
    for (std::size_t i = 0; i < cells.size(); ++i)
        rows.push_back(runner::makeAgingRow(cells[i], snaps[i]));
    std::ostringstream os;
    runner::writeAgingCsv(os, rows);
    return os.str();
}

TEST(DeviceImage, ForkModeSweepMatchesColdSweepByteForByte)
{
    SweepRunner runner;
    const std::string cold = agingCsv(runner, agingMatrix(false));
    const std::string fork = agingCsv(runner, agingMatrix(true));
    EXPECT_EQ(cold, fork);

    // Fork mode built one warm image per age rung, shared across the
    // two policies; cold mode built none.
    EXPECT_EQ(runner.lastPerf().warmupImages, 3u);
}

TEST(DeviceImage, ForkModeSweepIsThreadCountInvariant)
{
    SweepRunner serial(SweepOptions{1});
    SweepRunner pooled(SweepOptions{4});
    const std::string one = agingCsv(serial, agingMatrix(true));
    const std::string four = agingCsv(pooled, agingMatrix(true));
    EXPECT_EQ(one, four);
}

// ------------------------------------------------ snapshot guards

TEST(DeviceImage, SnapshotRejectsGeometryMismatch)
{
    auto prog = chainProgram("geom", 8);
    Device dev(imageTestOptions(gcCfg()));
    JobSpec job;
    job.program = prog;
    job.policyObj =
        std::shared_ptr<OffloadPolicy>(makePolicy("Conduit"));
    dev.submit(job);
    DeviceImage img = dev.snapshot();

    // A fork must be built against the image's own geometry: images
    // restore into a same-config engine, never reinterpret state.
    img.options.config.nand.blocksPerPlane /= 2;
    EXPECT_THROW(Device::fromImage(img), std::invalid_argument);
}

} // namespace
} // namespace conduit
