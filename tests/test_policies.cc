/**
 * @file
 * Unit tests for the offloading policies: the Conduit cost function
 * (Eqn. 1/2), the prior-work baselines, and the factory.
 */

#include <gtest/gtest.h>

#include "src/offload/policy.hh"

namespace conduit
{
namespace
{

VecInstruction
vecInstr(OpCode op, bool vectorized = true)
{
    VecInstruction vi;
    vi.op = op;
    vi.lanes = 4096;
    vi.vectorized = vectorized;
    vi.srcs.resize(2);
    return vi;
}

CostFeatures
baseFeatures()
{
    CostFeatures f;
    f.supported = {true, true, true};
    f.comp = {usToTicks(10), usToTicks(10), usToTicks(10)};
    return f;
}

TEST(CostFeatures, Equation1Arithmetic)
{
    CostFeatures f;
    f.comp[0] = 100;
    f.dm[0] = 50;
    f.queue[0] = 30;
    f.depDelay = 80;
    // comp + dm + max(dep, queue) = 100 + 50 + 80.
    EXPECT_EQ(f.totalLatency(Target::Isp), 230u);
    f.queue[0] = 200;
    EXPECT_EQ(f.totalLatency(Target::Isp), 350u);
}

TEST(ConduitPolicy, PicksArgminOfTotalLatency)
{
    ConduitPolicy p;
    auto f = baseFeatures();
    f.comp = {usToTicks(30), usToTicks(5), usToTicks(50)};
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Pud);
    // A large PuD queueing delay flips the decision.
    f.queue[static_cast<int>(Target::Pud)] = usToTicks(100);
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Isp);
}

TEST(ConduitPolicy, DataMovementShiftsChoice)
{
    ConduitPolicy p;
    auto f = baseFeatures();
    f.comp = {usToTicks(12), usToTicks(10), usToTicks(11)};
    f.dm = {usToTicks(0), usToTicks(50), usToTicks(0)};
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Ifp);
}

TEST(ConduitPolicy, DependenceDelayOverlapsQueueDelay)
{
    ConduitPolicy p;
    auto f = baseFeatures();
    // Queue delays differ, but a dominating dependence delay masks
    // them (max(dep, queue)); choice falls back to compute latency.
    f.comp = {usToTicks(9), usToTicks(10), usToTicks(11)};
    f.queue = {usToTicks(40), usToTicks(1), usToTicks(1)};
    f.depDelay = usToTicks(500);
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Isp);
}

TEST(ConduitPolicy, SkipsUnsupportedResources)
{
    ConduitPolicy p;
    auto f = baseFeatures();
    f.comp = {usToTicks(100), usToTicks(1), usToTicks(1)};
    f.supported = {true, false, false};
    EXPECT_EQ(p.select(vecInstr(OpCode::Shuffle), f), Target::Isp);
}

TEST(ConduitPolicy, ScalarCodeForcedToIsp)
{
    ConduitPolicy p;
    auto f = baseFeatures();
    f.comp = {usToTicks(100), usToTicks(1), usToTicks(1)};
    EXPECT_EQ(p.select(vecInstr(OpCode::Add, false), f), Target::Isp);
}

TEST(ConduitPolicy, AblationsDropFeatures)
{
    auto f = baseFeatures();
    f.comp = {usToTicks(10), usToTicks(9), usToTicks(50)};
    f.queue = {0, usToTicks(100), 0};
    // Full Conduit avoids the congested PuD.
    EXPECT_EQ(ConduitPolicy().select(vecInstr(OpCode::Add), f),
              Target::Isp);
    // Without queue awareness it walks into the congestion.
    ConduitPolicy::Ablation ab;
    ab.useQueueDelay = false;
    EXPECT_EQ(ConduitPolicy(ab).select(vecInstr(OpCode::Add), f),
              Target::Pud);
    EXPECT_EQ(ConduitPolicy(ab).name(), "Conduit-noQueue");
}

TEST(DmPolicy, MinimizesBytesPrefersIfpOnTies)
{
    DmOffloadPolicy p;
    auto f = baseFeatures();
    f.dmBytes = {4096, 0, 0}; // PuD and IFP tie at zero
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Ifp);
    f.dmBytes = {0, 0, 4096};
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Pud);
}

TEST(DmPolicy, IgnoresQueueDelays)
{
    DmOffloadPolicy p;
    auto f = baseFeatures();
    f.dmBytes = {4096, 4096, 0};
    f.queue = {0, 0, usToTicks(10000)}; // IFP badly congested
    // DM-Offloading cannot see the congestion (its flaw, §3.2).
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Ifp);
}

TEST(BwPolicy, PicksLowestUtilization)
{
    BwOffloadPolicy p;
    auto f = baseFeatures();
    f.bwUtil = {0.9, 0.2, 0.5};
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Pud);
    f.bwUtil = {5.0, 7.0, 3.0}; // beyond saturation still compares
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Ifp);
}

TEST(IdealPolicy, PicksLowestComputeAndFlagsIdeal)
{
    IdealPolicy p;
    auto f = baseFeatures();
    f.comp = {usToTicks(3), usToTicks(2), usToTicks(1)};
    f.dm = {0, 0, usToTicks(1000)};   // ignored
    f.queue = {0, 0, usToTicks(1000)}; // ignored
    EXPECT_EQ(p.select(vecInstr(OpCode::Add), f), Target::Ifp);
    EXPECT_TRUE(p.ideal());
    EXPECT_FALSE(ConduitPolicy().ideal());
}

TEST(StaticPolicies, RespectSubstrateCapabilities)
{
    auto f = baseFeatures();
    f.supported = {true, pudSupports(OpCode::Shuffle),
                   ifpSupports(OpCode::Shuffle)};
    EXPECT_EQ(IspOnlyPolicy().select(vecInstr(OpCode::Add), f),
              Target::Isp);
    // Shuffle is PuD/IFP-unsupported: falls back to the core.
    EXPECT_EQ(PudOnlyPolicy().select(vecInstr(OpCode::Shuffle), f),
              Target::Isp);
    EXPECT_EQ(AresFlashPolicy().select(vecInstr(OpCode::Shuffle), f),
              Target::Isp);

    auto f2 = baseFeatures();
    EXPECT_EQ(PudOnlyPolicy().select(vecInstr(OpCode::Mul), f2),
              Target::Pud);
    EXPECT_EQ(AresFlashPolicy().select(vecInstr(OpCode::Mul), f2),
              Target::Ifp);
    // Flash-Cosmos offloads bulk-bitwise only; arithmetic goes to
    // the controller core.
    EXPECT_EQ(FlashCosmosPolicy().select(vecInstr(OpCode::And), f2),
              Target::Ifp);
    EXPECT_EQ(FlashCosmosPolicy().select(vecInstr(OpCode::Add), f2),
              Target::Isp);
}

TEST(PolicyFactory, BuildsEveryEvaluatedTechnique)
{
    for (const char *name :
         {"Conduit", "DM-Offloading", "BW-Offloading", "Ideal", "ISP",
          "PuD-SSD", "Flash-Cosmos", "Ares-Flash"}) {
        auto p = makePolicy(name);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), name);
    }
    EXPECT_THROW(makePolicy("nonsense"), std::invalid_argument);
}

TEST(Targets, NamesStable)
{
    EXPECT_EQ(targetName(Target::Isp), "ISP");
    EXPECT_EQ(targetName(Target::Pud), "PuD-SSD");
    EXPECT_EQ(targetName(Target::Ifp), "IFP");
}

} // namespace
} // namespace conduit
