/**
 * @file
 * Differential test: the calendar/ladder EventQueue against the
 * pre-calendar binary-heap kernel, kept here verbatim as
 * ReferenceEventQueue. Randomized workloads — schedule, cancel,
 * reschedule, same-tick self-scheduling, cancel-heavy open-loop
 * windows — must produce identical (tick, priority, seq) fire
 * orders, identical cancel() results, and identical pending()
 * trajectories, and the calendar queue must hold its pending()
 * conservation invariant throughout.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_queue.hh"
#include "src/sim/types.hh"

namespace conduit
{
namespace
{

/**
 * The binary-heap event kernel this PR replaced, preserved as the
 * ordering oracle. Same contract: (tick, priority, seq) fire order,
 * generation-stamped ids, lazy cancellation with compaction.
 */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void()>;

    EventId
    schedule(Tick when, Callback cb, int priority = 0)
    {
        if (when < now_)
            throw std::logic_error(
                "ReferenceEventQueue: scheduling event in the past");
        const std::uint32_t slot = acquireSlot(std::move(cb));
        const std::uint32_t gen = slots_[slot].gen;
        heap_.push_back(Entry{when, nextSeq_++, slot, gen, priority});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
        ++live_;
        return (static_cast<EventId>(gen) << 32) | slot;
    }

    EventId
    scheduleAfter(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    bool
    cancel(EventId id)
    {
        const auto slot = static_cast<std::uint32_t>(id);
        const auto gen = static_cast<std::uint32_t>(id >> 32);
        if (slot >= slots_.size() || slots_[slot].gen != gen)
            return false;
        releaseSlot(slot);
        --live_;
        ++cancelled_;
        if (cancelled_ * 2 > heap_.size() && heap_.size() >= 64)
            compact();
        return true;
    }

    bool
    runOne()
    {
        if (!skimCancelled())
            return false;
        const Entry e = heap_.front();
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        Callback cb = std::move(slots_[e.slot].cb);
        releaseSlot(e.slot);
        --live_;
        now_ = e.when;
        ++fired_;
        if (cb)
            cb();
        return true;
    }

    std::uint64_t
    run(Tick until = kMaxTick)
    {
        std::uint64_t n = 0;
        while (skimCancelled()) {
            if (heap_.front().when > until)
                break;
            if (runOne())
                ++n;
        }
        return n;
    }

    Tick now() const { return now_; }
    std::size_t pending() const { return live_; }
    bool empty() const { return live_ == 0; }
    std::uint64_t eventsFired() const { return fired_; }

  private:
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1;
        std::uint32_t nextFree = ~std::uint32_t{0};
    };

    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        int priority;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::uint32_t
    acquireSlot(Callback cb)
    {
        if (freeHead_ != ~std::uint32_t{0}) {
            const std::uint32_t slot = freeHead_;
            freeHead_ = slots_[slot].nextFree;
            slots_[slot].cb = std::move(cb);
            return slot;
        }
        slots_.push_back(Slot{std::move(cb), 1, ~std::uint32_t{0}});
        return static_cast<std::uint32_t>(slots_.size() - 1);
    }

    void
    releaseSlot(std::uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.cb = nullptr;
        ++s.gen;
        s.nextFree = freeHead_;
        freeHead_ = slot;
    }

    bool
    liveEntry(const Entry &e) const
    {
        return slots_[e.slot].gen == e.gen;
    }

    void
    compact()
    {
        heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                                   [this](const Entry &e) {
                                       return !liveEntry(e);
                                   }),
                    heap_.end());
        std::make_heap(heap_.begin(), heap_.end(), Later{});
        cancelled_ = 0;
    }

    bool
    skimCancelled()
    {
        while (!heap_.empty() && !liveEntry(heap_.front())) {
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            heap_.pop_back();
            --cancelled_;
        }
        return !heap_.empty();
    }

    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = ~std::uint32_t{0};
    std::vector<Entry> heap_;
    std::size_t live_ = 0;
    std::size_t cancelled_ = 0;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t fired_ = 0;
};

/** xorshift64* — deterministic workload generator. */
struct Rng
{
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed * 2685821657736338717ull | 1) {}
    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 2685821657736338717ull;
    }
    std::uint64_t below(std::uint64_t n) { return next() % n; }
};

/** Check the conservation invariant — only the calendar queue has
 *  the audit; the reference is the oracle, not the subject. */
void audit(EventQueue &q) { ASSERT_TRUE(q.auditPendingConservation()); }
void audit(ReferenceEventQueue &) {}

/**
 * One deterministic workload applied to either kernel. Everything a
 * callback does is derived from its label, so as long as fire order
 * matches, both runs make identical decisions. Returns the full
 * observable trace: fire log, cancel results, pending trajectory.
 */
template <typename Q>
std::vector<std::uint64_t>
runWorkload(std::uint64_t seed, std::size_t ops, bool cancelHeavy,
            bool sameTickHeavy)
{
    Q q;
    Rng rng(seed);
    std::vector<std::uint64_t> trace;
    std::vector<std::pair<std::uint64_t, EventId>> outstanding;
    std::uint64_t nextLabel = 1;

    // Fired callbacks append to the trace and may self-schedule
    // children (possibly same-tick) whose shape depends only on the
    // parent label.
    std::function<void(std::uint64_t)> onFire = [&](std::uint64_t label) {
        trace.push_back(label);
        trace.push_back(q.now());
        if (label % 5 == 0) { // spawner: 1-2 children
            const int kids = 1 + static_cast<int>(label % 2);
            for (int c = 0; c < kids; ++c) {
                const Tick delta = sameTickHeavy
                    ? (label + c) % 2       // mostly same-tick
                    : (label * 31 + c) % 977;
                const int prio =
                    static_cast<int>((label + c) % 5) - 2;
                const std::uint64_t kid = nextLabel++;
                const EventId id = q.scheduleAfter(
                    delta, [&onFire, kid] { onFire(kid); }, prio);
                if (kid % 7 == 0)
                    outstanding.emplace_back(kid, id);
            }
        }
        if (label % 11 == 0 && !outstanding.empty()) {
            // cancel from inside a callback
            const auto [l, id] =
                outstanding[label % outstanding.size()];
            trace.push_back(q.cancel(id) ? 1 : 0);
        }
    };

    for (std::size_t op = 0; op < ops; ++op) {
        const std::uint64_t roll = rng.below(100);
        const std::uint64_t cancelCut = cancelHeavy ? 45 : 15;
        if (roll < 50) {
            const Tick delta = sameTickHeavy && roll < 25
                ? 0
                : rng.below(1 << (1 + rng.below(14)));
            const int prio = static_cast<int>(rng.below(5)) - 2;
            const std::uint64_t label = nextLabel++;
            const EventId id = q.schedule(
                q.now() + delta, [&onFire, label] { onFire(label); },
                prio);
            outstanding.emplace_back(label, id);
        } else if (roll < 50 + cancelCut) {
            if (!outstanding.empty()) {
                const std::size_t pick =
                    rng.below(outstanding.size());
                trace.push_back(
                    q.cancel(outstanding[pick].second) ? 1 : 0);
                outstanding.erase(outstanding.begin() +
                                  static_cast<std::ptrdiff_t>(pick));
            }
        } else if (roll < 90) {
            const std::uint64_t burst = 1 + rng.below(8);
            for (std::uint64_t i = 0; i < burst; ++i)
                if (!q.runOne())
                    break;
            trace.push_back(q.now());
        } else {
            trace.push_back(q.run(q.now() + rng.below(4096)));
        }
        trace.push_back(q.pending());
        if (op % 64 == 0)
            audit(q);
    }
    trace.push_back(q.run());
    trace.push_back(q.now());
    trace.push_back(q.eventsFired());
    EXPECT_TRUE(q.empty());
    audit(q);
    return trace;
}

TEST(EventQueueDifferential, RandomizedMatchesReference)
{
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        const auto cal = runWorkload<EventQueue>(seed, 1500, false, false);
        const auto ref =
            runWorkload<ReferenceEventQueue>(seed, 1500, false, false);
        ASSERT_EQ(cal, ref) << "seed " << seed;
    }
}

TEST(EventQueueDifferential, SameTickSelfSchedulingMatches)
{
    for (std::uint64_t seed = 100; seed <= 108; ++seed) {
        const auto cal = runWorkload<EventQueue>(seed, 1200, false, true);
        const auto ref =
            runWorkload<ReferenceEventQueue>(seed, 1200, false, true);
        ASSERT_EQ(cal, ref) << "seed " << seed;
    }
}

TEST(EventQueueDifferential, CancelHeavyOpenLoopMatches)
{
    for (std::uint64_t seed = 200; seed <= 208; ++seed) {
        const auto cal = runWorkload<EventQueue>(seed, 1500, true, false);
        const auto ref =
            runWorkload<ReferenceEventQueue>(seed, 1500, true, false);
        ASSERT_EQ(cal, ref) << "seed " << seed;
    }
}

/** The exact open-loop Device shape: pre-populated arrivals, rolling
 *  timeout window, drained with interleaved cancels. */
TEST(EventQueueDifferential, PrePopulatedArrivalWindowMatches)
{
    const auto drive = [](auto &q) {
        std::vector<std::uint64_t> trace;
        std::deque<EventId> window;
        std::uint64_t fired = 0;
        for (std::uint64_t i = 0; i < 30'000; ++i) {
            window.push_back(q.schedule(
                (i * 7919) % 30'000, [&fired] { ++fired; },
                static_cast<int>(i & 3)));
            if (window.size() > 256) {
                trace.push_back(q.cancel(window.front()) ? 1 : 0);
                window.pop_front();
            }
        }
        trace.push_back(q.run());
        trace.push_back(fired);
        trace.push_back(q.now());
        return trace;
    };
    EventQueue cal;
    ReferenceEventQueue ref;
    const auto a = drive(cal);
    const auto b = drive(ref);
    EXPECT_TRUE(cal.auditPendingConservation());
    ASSERT_EQ(a, b);
}

/** Re-running a seed must reproduce the identical trace (the bench
 *  digests rely on the kernel being repeat-invariant). */
TEST(EventQueueDifferential, RepeatInvariant)
{
    const auto a = runWorkload<EventQueue>(42, 1500, true, true);
    const auto b = runWorkload<EventQueue>(42, 1500, true, true);
    ASSERT_EQ(a, b);
}

} // namespace
} // namespace conduit
