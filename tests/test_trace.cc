/**
 * @file
 * Tests for the simulated-time tracing subsystem (src/trace).
 *
 * The contracts under test, in order of importance:
 *
 *  1. Observation is free of side effects: a traced sweep's simulated
 *     outputs (CSV and JSON result rows) are byte-identical to the
 *     untraced sweep's.
 *  2. Trace files themselves are deterministic: bit-identical across
 *     host thread counts and across repeats.
 *  3. Spans are well-formed: end >= start everywhere, job admission
 *     inside the job span, instruction targets in range.
 *  4. Trace buffers are not simulated state: a DeviceImage never
 *     carries a tracer, so a forked device starts with an empty
 *     trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "src/core/arrival.hh"
#include "src/core/device.hh"
#include "src/core/simulation.hh"
#include "src/runner/sweep_cli.hh"
#include "src/trace/export.hh"
#include "src/trace/trace.hh"

namespace conduit
{
namespace
{

using runner::RunMatrix;
using runner::SweepOptions;
using runner::SweepResult;
using runner::SweepRunner;

/** A small real matrix, host baseline included (untraceable cell). */
RunMatrix
traceMatrix()
{
    RunMatrix m;
    m.workloads({WorkloadId::Aes, WorkloadId::Jacobi1d})
        .technique("CPU")
        .techniques({"ISP", "Conduit"});
    return m;
}

SweepOptions
tracedOptions(unsigned threads)
{
    SweepOptions opts;
    opts.threads = threads;
    opts.trace.categories = trace::kAllCategories;
    return opts;
}

/** The sweep's result rows rendered to bytes (CSV + JSON). */
std::string
resultBytes(const SweepResult &sweep)
{
    std::ostringstream csv, json;
    sweep.writeCsv(csv);
    sweep.writeJson(json);
    return csv.str() + "" + json.str();
}

// --------------------------------------- observation is side-effect-free

TEST(Trace, TracedSweepOutputsAreByteIdenticalToUntraced)
{
    SweepRunner plain(SweepOptions{});
    SweepRunner traced(tracedOptions(0));

    const std::string without = resultBytes(plain.run(traceMatrix().build()));
    const std::string with = resultBytes(traced.run(traceMatrix().build()));
    EXPECT_EQ(without, with);

    // And the traced run actually recorded something.
    std::size_t events = 0;
    for (const trace::TraceCell &c : traced.lastTraces())
        if (c.tracer)
            events += c.tracer->events().size();
    EXPECT_GT(events, 0u);
}

// ----------------------------------------------- trace determinism

TEST(Trace, TraceFilesAreBitIdenticalAcrossThreadCounts)
{
    SweepRunner serial(tracedOptions(1));
    SweepRunner pooled(tracedOptions(4));

    serial.run(traceMatrix().build());
    pooled.run(traceMatrix().build());

    EXPECT_EQ(trace::toCsv(serial.lastTraces()),
              trace::toCsv(pooled.lastTraces()));
    EXPECT_EQ(trace::toJson(serial.lastTraces()),
              trace::toJson(pooled.lastTraces()));
}

TEST(Trace, TraceFilesAreBitIdenticalAcrossRepeats)
{
    SweepRunner runner(tracedOptions(0));
    runner.run(traceMatrix().build());
    const std::string first = trace::toCsv(runner.lastTraces());
    const std::string firstJson = trace::toJson(runner.lastTraces());
    runner.run(traceMatrix().build());
    EXPECT_EQ(first, trace::toCsv(runner.lastTraces()));
    EXPECT_EQ(firstJson, trace::toJson(runner.lastTraces()));
}

TEST(Trace, FilterKeepsOnlyRequestedCategories)
{
    // Occupancy only: every event must carry that category (plain
    // run() cells have no job admission, so Job would be empty).
    SweepOptions opts;
    opts.trace.categories =
        static_cast<std::uint32_t>(trace::Category::Occupancy);
    SweepRunner runner(opts);
    runner.run(traceMatrix().build());

    std::size_t instrs = 0;
    for (const trace::TraceCell &c : runner.lastTraces()) {
        if (!c.tracer)
            continue;
        for (const trace::Event &e : c.tracer->events()) {
            EXPECT_EQ(e.cat, trace::Category::Occupancy);
            instrs += e.kind == trace::EventKind::Instr;
        }
    }
    EXPECT_GT(instrs, 0u);
}

TEST(Trace, ParseCategoriesRoundTripsAndRejectsUnknown)
{
    EXPECT_EQ(trace::parseCategories(""), trace::kAllCategories);
    EXPECT_EQ(trace::parseCategories("job"),
              static_cast<std::uint32_t>(trace::Category::Job));
    EXPECT_EQ(trace::parseCategories("job,queue"),
              static_cast<std::uint32_t>(trace::Category::Job) |
                  static_cast<std::uint32_t>(trace::Category::Queue));
    EXPECT_FALSE(trace::parseCategories("job,nope").has_value());
}

// ------------------------------------------------- well-formedness

TEST(Trace, SpansAreWellFormed)
{
    SweepRunner runner(tracedOptions(0));
    runner.run(traceMatrix().build());

    std::size_t spans = 0;
    for (const trace::TraceCell &c : runner.lastTraces()) {
        if (!c.tracer)
            continue;
        for (const trace::Event &e : c.tracer->events()) {
            ++spans;
            EXPECT_GE(e.end, e.start);
            switch (e.kind) {
              case trace::EventKind::Job:
                // Admission happens inside the job's lifecycle span.
                EXPECT_GE(e.b, e.start);
                EXPECT_LE(e.b, e.end);
                break;
              case trace::EventKind::Instr:
                // c = target resource (Isp/Pud/Ifp).
                EXPECT_LT(e.c, 3u);
                break;
              case trace::EventKind::Scrub:
              case trace::EventKind::BacklogSample:
              case trace::EventKind::JobQueueSample:
              case trace::EventKind::Placement:
                // Instants carry start == end.
                EXPECT_EQ(e.start, e.end);
                break;
              default:
                break;
            }
            // Every tag index resolves (intern table is complete).
            EXPECT_LT(e.str, c.tracer->strings().size());
        }
    }
    EXPECT_GT(spans, 0u);
}

// --------------------------------------- snapshots exclude tracing

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(std::size_t n)
{
    auto prog = std::make_shared<Program>();
    prog->name = "trace";
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

JobSpec
traceJob(const std::shared_ptr<const Program> &prog, Tick arrival)
{
    JobSpec job;
    job.name = prog->name;
    job.program = prog;
    job.policyObj =
        std::shared_ptr<OffloadPolicy>(makePolicy("Conduit"));
    job.arrival = arrival;
    return job;
}

TEST(Trace, DeviceImageCarriesNoTracerAndForkStartsEmpty)
{
    auto prog = chainProgram(8);

    trace::TraceConfig cfg;
    cfg.categories = trace::kAllCategories;

    DeviceOptions opts;
    opts.config = SsdConfig::scaled(1.0 / 256.0);
    opts.tracer = std::make_shared<trace::Tracer>(cfg);

    Device dev(opts);
    dev.submit(traceJob(prog, 0));
    dev.drain();
    EXPECT_GT(opts.tracer->events().size(), 0u);

    // The image must not capture the tracer: trace buffers are
    // observation, not simulated state.
    const DeviceImage img = dev.snapshot();
    EXPECT_EQ(img.options.tracer, nullptr);

    // A fork therefore records nothing...
    const std::size_t before = opts.tracer->events().size();
    Device fork = Device::fromImage(img);
    fork.submit(traceJob(prog, fork.now()));
    fork.drain();
    EXPECT_EQ(opts.tracer->events().size(), before);

    // ...until its own (fresh, empty) tracer is attached.
    auto forkTracer = std::make_shared<trace::Tracer>(cfg);
    Device fork2 = Device::fromImage(img);
    fork2.setTracer(forkTracer, 0);
    EXPECT_TRUE(forkTracer->events().empty());
    fork2.submit(traceJob(prog, fork2.now()));
    fork2.drain();
    EXPECT_GT(forkTracer->events().size(), 0u);
}

TEST(Trace, UntracedCellsExportNothing)
{
    SweepRunner runner(SweepOptions{});
    runner.run(traceMatrix().build());
    // Tracing disabled: the per-cell slots exist (indices line up
    // with the sweep) but hold no tracers, and the exporters emit
    // only their fixed headers.
    for (const trace::TraceCell &c : runner.lastTraces())
        EXPECT_EQ(c.tracer, nullptr);
    EXPECT_EQ(trace::toCsv(runner.lastTraces()),
              "cell,device,cat,kind,lane,start_ps,end_ps,a,b,c,tag\n");
}

} // namespace
} // namespace conduit
