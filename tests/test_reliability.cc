/**
 * @file
 * Tests for the reliability & device-aging subsystem: RBER/ECC
 * determinism and monotonicity, pre-wear fast-forward equivalence,
 * bad-block retirement and its GC interaction, reliability-off
 * byte-identity, aging-sweep thread determinism, and the NandArray
 * hot-path fast paths (decode strides, dieOf, incremental min-die
 * backlog) against their reference formulations.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/reliability/reliability.hh"
#include "src/runner/sweep_runner.hh"
#include "src/sim/rng.hh"

namespace conduit
{
namespace
{

SsdConfig
smallCfg()
{
    SsdConfig cfg;
    cfg.nand.channels = 2;
    cfg.nand.diesPerChannel = 2;
    cfg.nand.planesPerDie = 1;
    cfg.nand.blocksPerPlane = 16;
    cfg.nand.pagesPerBlock = 8;
    return cfg;
}

Program
chainProgram(std::size_t n, OpCode op = OpCode::Add)
{
    Program prog;
    prog.name = "chain";
    prog.pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = op;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog.instrs.push_back(vi);
    }
    prog.footprintPages = 12 * n + 4;
    return prog;
}

// ----------------------------------------------------- RBER model

TEST(RberModel, MonotoneInWearAndRetention)
{
    ReliabilityConfig cfg;
    reliability::RberModel m(cfg, 42, 8);
    double prev = 0.0;
    for (std::uint32_t pe = 0; pe <= 6000; pe += 500) {
        const double r = m.rber(0, pe, 0.0);
        EXPECT_GT(r, prev);
        prev = r;
    }
    prev = 0.0;
    for (int days = 0; days <= 365; days += 30) {
        const double r = m.rber(0, 1000, days * 86400.0);
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(RberModel, DeterministicPerSeedWithBoundedJitter)
{
    ReliabilityConfig cfg;
    reliability::RberModel a(cfg, 7, 64);
    reliability::RberModel b(cfg, 7, 64);
    reliability::RberModel c(cfg, 8, 64);
    bool any_differs = false;
    for (std::uint64_t blk = 0; blk < 64; ++blk) {
        EXPECT_DOUBLE_EQ(a.rber(blk, 1000, 3600.0),
                         b.rber(blk, 1000, 3600.0));
        EXPECT_GE(a.jitterOf(blk), 1.0 - cfg.blockJitter);
        EXPECT_LE(a.jitterOf(blk), 1.0 + cfg.blockJitter);
        if (a.jitterOf(blk) != c.jitterOf(blk))
            any_differs = true;
    }
    EXPECT_TRUE(any_differs); // different seeds, different devices
}

// ----------------------------------------------------- ECC ladder

TEST(EccEngine, LadderIsMonotoneAndTiered)
{
    ReliabilityConfig cfg;
    reliability::EccEngine ecc(cfg);

    // Below the hard-decode budget: free.
    EXPECT_EQ(ecc.plan(cfg.hardDecodeRber * 0.5).extraTicks, 0u);
    EXPECT_EQ(ecc.plan(cfg.hardDecodeRber).retries, 0u);

    // Just past it: exactly one retry.
    const auto one = ecc.plan(cfg.hardDecodeRber * 1.01);
    EXPECT_EQ(one.retries, 1u);
    EXPECT_EQ(one.extraTicks, cfg.retryTicks);
    EXPECT_FALSE(one.soft);

    // Monotone latency across six decades of RBER.
    Tick prev = 0;
    std::uint32_t prev_retries = 0;
    for (double rber = 1e-6; rber < 1.0; rber *= 1.3) {
        const auto p = ecc.plan(rber);
        EXPECT_GE(p.extraTicks, prev);
        EXPECT_GE(p.retries, prev_retries);
        prev = p.extraTicks;
        prev_retries = p.retries;
    }

    // Past the ladder: capped retries plus a soft decode.
    const auto deep = ecc.plan(0.05);
    EXPECT_EQ(deep.retries, cfg.maxReadRetries);
    EXPECT_TRUE(deep.soft);
    EXPECT_EQ(deep.extraTicks,
              cfg.maxReadRetries * cfg.retryTicks +
                  cfg.softDecodeTicks);
    EXPECT_FALSE(deep.uncorrectable);
    EXPECT_TRUE(ecc.plan(cfg.uncorrectableRber * 1.5).uncorrectable);
}

// ------------------------------------------- fast-forward (aging)

TEST(ReliabilityModel, PreWearEqualsSimulatedErases)
{
    const SsdConfig cfg = smallCfg();
    ReliabilityConfig fresh;
    fresh.enabled = true;
    ReliabilityConfig aged = fresh;
    aged.preWearCycles = 250;

    reliability::ReliabilityModel ff(cfg.nand, aged, cfg.seed);
    reliability::ReliabilityModel sim(cfg.nand, fresh, cfg.seed);
    for (std::uint64_t blk = 0; blk < sim.blocks(); ++blk)
        for (int e = 0; e < 250; ++e)
            sim.noteErase(blk, 0);

    ASSERT_EQ(ff.blocks(), sim.blocks());
    for (std::uint64_t blk = 0; blk < ff.blocks(); ++blk) {
        EXPECT_EQ(ff.wearOf(blk), sim.wearOf(blk));
        EXPECT_DOUBLE_EQ(ff.rberOf(blk, usToTicks(50)),
                         sim.rberOf(blk, usToTicks(50)));
    }
    EXPECT_EQ(ff.typicalReadPenalty(0), sim.typicalReadPenalty(0));
}

TEST(ReliabilityModel, RetentionFastForwardRaisesReadPenalty)
{
    const SsdConfig cfg = smallCfg();
    ReliabilityConfig young;
    young.enabled = true;
    young.preWearCycles = 1500;
    ReliabilityConfig old_dev = young;
    old_dev.retentionDays = 180.0;

    reliability::ReliabilityModel a(cfg.nand, young, cfg.seed);
    reliability::ReliabilityModel b(cfg.nand, old_dev, cfg.seed);
    EXPECT_GT(b.typicalReadPenalty(0), a.typicalReadPenalty(0));
    // An erase refreshes the block: its retention offset clears.
    b.noteErase(3, usToTicks(10));
    EXPECT_LT(b.rberOf(3, usToTicks(10)), a.rberOf(3, usToTicks(10)) *
                  (1.0 + young.blockJitter) /
                  (1.0 - young.blockJitter));
}

// ------------------------------- NAND read path + wear accounting

TEST(Reliability, AgedReadsChargeTheLadderOnTheDie)
{
    SsdConfig cfg = smallCfg();
    cfg.reliability.enabled = true;
    cfg.reliability.preWearCycles = 3000;
    cfg.reliability.retentionDays = 90.0;

    StatSet stats;
    NandArray nand(cfg.nand, &stats);
    reliability::ReliabilityModel rel(cfg.nand, cfg.reliability,
                                      cfg.seed, &stats);
    nand.setReliability(&rel);

    NandArray plain(cfg.nand);
    const FlashAddress a = plain.decode(0);
    const Tick base = plain.readPage(a, 0).end;
    const Tick aged = nand.readPage(a, 0).end;
    EXPECT_GT(aged, base);
    EXPECT_GE(rel.stats().retriedReads, 1u);
    EXPECT_EQ(aged - base,
              rel.ecc().plan(rel.rberOf(0, 0)).extraTicks);
}

TEST(Reliability, BadBlockRetirementShrinksPoolAndGcSurvives)
{
    SsdConfig cfg = smallCfg();
    cfg.reliability.enabled = true;
    // An age where only jitter-weak blocks exhaust the retry ladder:
    // those accumulate soft-decode votes and retire at their next
    // erase, while the rest of the pool keeps the device serviceable.
    cfg.reliability.preWearCycles = 3100;
    cfg.reliability.retentionDays = 120.0;
    cfg.reliability.retireSoftThreshold = 2;

    StatSet stats;
    NandArray nand(cfg.nand, &stats);
    Ftl ftl(nand, cfg, &stats);
    reliability::ReliabilityModel rel(cfg.nand, cfg.reliability,
                                      cfg.seed, &stats);
    nand.setReliability(&rel);
    ftl.setReliability(&rel);

    const std::uint64_t pages = ftl.logicalPages() / 2;
    ftl.preload(pages);
    const std::uint64_t total = ftl.totalBlocks();

    // Read (voting for retirement), then overwrite (forcing GC to
    // erase voted blocks). Repeat until retirement shows up; a
    // worn-to-death device throwing plane-dry is an acceptable end
    // state, but not before at least one block retired.
    Tick t = 0;
    bool device_died = false;
    try {
        for (int round = 0;
             round < 6 && rel.stats().retiredBlocks == 0; ++round) {
            for (Lpn l = 0; l < pages; ++l)
                t = ftl.readPage(l, t);
            for (Lpn l = 0; l < pages; ++l)
                t = ftl.writePage(l, t).readyAt;
        }
    } catch (const std::runtime_error &) {
        device_died = true;
    }
    EXPECT_GE(ftl.retiredBlocks(), 1u);
    EXPECT_EQ(ftl.retiredBlocks(), rel.stats().retiredBlocks);
    EXPECT_GE(ftl.gcRuns(), 1u);
    // The pool shrank: retired blocks are gone for good.
    EXPECT_LT(ftl.freeBlocks() + ftl.retiredBlocks(), total);
    if (!device_died) {
        // ... yet the FTL still serves traffic.
        const auto wr = ftl.writePage(0, t);
        EXPECT_NE(wr.ppn, kNoPpn);
    }
}

// ------------------------------------------------- engine-level

TEST(Reliability, DisabledKnobsAreInertAndFreshAgedMatchesBaseline)
{
    const Program prog = chainProgram(24);

    auto run = [&](const SsdConfig &cfg) {
        Engine engine(cfg);
        auto policy = makePolicy("Conduit");
        return engine.run(prog, *policy);
    };

    SsdConfig base = smallCfg();
    SsdConfig knobs = smallCfg();
    knobs.reliability.preWearCycles = 5000; // enabled == false!
    knobs.reliability.retentionDays = 365.0;
    knobs.reliability.retryTicks = usToTicks(1000);

    const RunResult a = run(base);
    const RunResult b = run(knobs);
    EXPECT_EQ(a.execTime, b.execTime);
    EXPECT_EQ(a.latencyUs.count(), b.latencyUs.count());
    EXPECT_DOUBLE_EQ(a.latencyUs.sum(), b.latencyUs.sum());
    EXPECT_EQ(a.perResource, b.perResource);
    EXPECT_DOUBLE_EQ(a.dmEnergyJ, b.dmEnergyJ);

    // Enabled on a factory-fresh device: zero RBER penalty, so the
    // simulated results still match the baseline (only maintenance
    // events differ, and a fresh device never scrubs).
    SsdConfig fresh_on = smallCfg();
    fresh_on.reliability.enabled = true;
    const RunResult c = run(fresh_on);
    EXPECT_EQ(a.execTime, c.execTime);
    EXPECT_DOUBLE_EQ(a.latencyUs.sum(), c.latencyUs.sum());
    EXPECT_EQ(a.perResource, c.perResource);
}

TEST(Reliability, AgingStretchesEngineExecution)
{
    const Program prog = chainProgram(24);
    auto run = [&](std::uint32_t pe, double days) {
        SsdConfig cfg = smallCfg();
        cfg.reliability.enabled = true;
        cfg.reliability.preWearCycles = pe;
        cfg.reliability.retentionDays = days;
        Engine engine(cfg);
        // Fixed-substrate policy: every operand stages through real
        // flash reads, so the ECC ladder is squarely on the path
        // (decision-adaptive policies can sidestep it via IFP's
        // raw-bit in-place computation).
        auto policy = makePolicy("ISP");
        return engine.run(prog, *policy);
    };

    const RunResult fresh = run(0, 0.0);
    const RunResult mid = run(2000, 60.0);
    const RunResult old_dev = run(3600, 120.0);
    EXPECT_LT(fresh.execTime, mid.execTime);
    EXPECT_LT(mid.execTime, old_dev.execTime);
}

TEST(Reliability, AgingSweepIsThreadCountInvariant)
{
    auto cells = [] {
        std::vector<runner::AgingRunSpec> specs;
        for (std::uint32_t age : {0u, 1500u, 3000u}) {
            runner::AgingRunSpec s;
            s.load.workloadId = WorkloadId::Aes;
            s.load.technique = "Conduit";
            s.load.jobs = 3;
            s.load.jobsPerSec = 400.0;
            s.load.arrivalSeed = 1;
            s.preWearCycles = age;
            s.retentionDays = age * 0.03;
            specs.push_back(std::move(s));
        }
        return specs;
    }();

    runner::SweepRunner serial({1});
    runner::SweepRunner pooled({4});
    const auto a = serial.runAgingAll(cells);
    const auto b = pooled.runAgingAll(cells);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].makespan, b[i].makespan);
        EXPECT_EQ(a[i].eventsFired, b[i].eventsFired);
        EXPECT_EQ(a[i].jobs.size(), b[i].jobs.size());
        EXPECT_DOUBLE_EQ(a[i].aggregate.latencyUs.percentile(99),
                         b[i].aggregate.latencyUs.percentile(99));
        EXPECT_EQ(a[i].reliability.eccRetries,
                  b[i].reliability.eccRetries);
        EXPECT_EQ(a[i].reliability.retiredBlocks,
                  b[i].reliability.retiredBlocks);
        EXPECT_EQ(a[i].reliability.scrubRefreshes,
                  b[i].reliability.scrubRefreshes);
    }
    // And the ladder actually ages: more correction work each rung.
    EXPECT_EQ(a[0].reliability.eccRetries, 0u);
    EXPECT_GT(a[2].reliability.eccRetries,
              a[1].reliability.eccRetries);
}

// -------------------------------------- NandArray hot-path caches

TEST(NandFastPaths, DecodeMatchesReferenceOnOddGeometries)
{
    for (std::uint32_t ppb : {7u, 8u, 196u}) {
        NandConfig n;
        n.channels = 3;
        n.diesPerChannel = 2;
        n.planesPerDie = 2;
        n.blocksPerPlane = 5;
        n.pagesPerBlock = ppb;
        NandArray nand(n);
        const std::uint64_t total = n.totalPages();
        for (Ppn p = 0; p < total; p += 11) {
            const FlashAddress a = nand.decode(p);
            // Reference: pure div/mod peel, innermost first.
            Ppn rest = p;
            EXPECT_EQ(a.page, rest % n.pagesPerBlock);
            rest /= n.pagesPerBlock;
            EXPECT_EQ(a.block, rest % n.blocksPerPlane);
            rest /= n.blocksPerPlane;
            EXPECT_EQ(a.plane, rest % n.planesPerDie);
            rest /= n.planesPerDie;
            EXPECT_EQ(a.die, rest % n.diesPerChannel);
            rest /= n.diesPerChannel;
            EXPECT_EQ(a.channel, rest);
            EXPECT_EQ(nand.encode(a), p);
            EXPECT_EQ(nand.dieOf(p), nand.dieIndex(a));
        }
        EXPECT_THROW(nand.decode(total), std::out_of_range);
        EXPECT_THROW(nand.dieOf(total), std::out_of_range);
    }
}

TEST(NandFastPaths, MinDieBacklogTracksBruteForce)
{
    NandConfig n;
    n.channels = 2;
    n.diesPerChannel = 4;
    NandArray nand(n);
    Rng rng(99);

    const auto brute = [&](Tick now) {
        Tick best = kMaxTick;
        for (std::uint32_t d = 0; d < nand.numDies(); ++d)
            best = std::min(best, nand.dieBacklog(d, now));
        return best;
    };

    Tick now = 0;
    for (int step = 0; step < 2000; ++step) {
        const auto die = static_cast<std::uint32_t>(
            rng.below(nand.numDies()));
        nand.occupyDie(die, now, rng.below(5000) + 1);
        if (rng.chance(0.3))
            now += rng.below(2000);
        ASSERT_EQ(nand.minDieBacklog(now), brute(now));
    }
    nand.reset();
    EXPECT_EQ(nand.minDieBacklog(0), 0u);
    nand.occupyDie(1, 0, 100);
    EXPECT_EQ(nand.minDieBacklog(0), brute(0));
}

} // namespace
} // namespace conduit
