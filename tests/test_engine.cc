/**
 * @file
 * Integration tests for the Conduit runtime engine: dispatch and
 * dependence ordering, coherence (owner/dirty/version), latch
 * management, fault handling, Ideal mode, and result accounting.
 */

#include <gtest/gtest.h>

#include "src/core/engine.hh"
#include "src/trace/trace.hh"

namespace conduit
{
namespace
{

SsdConfig
testCfg()
{
    return SsdConfig::scaled(1.0 / 256.0);
}

/** An occupancy-only tracer (the instruction-timeline source). */
trace::Tracer
occupancyTracer()
{
    trace::TraceConfig cfg;
    cfg.categories =
        static_cast<std::uint32_t>(trace::Category::Occupancy);
    return trace::Tracer(cfg);
}

/**
 * Hand-build a tiny program over disjoint page-sized vectors; with
 * @p serial, instruction i depends on i-1 (pure ordering edges).
 */
Program
chainProgram(std::size_t n, OpCode op = OpCode::Add,
             bool serial = true)
{
    Program prog;
    prog.name = "chain";
    prog.pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = op;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (serial && i > 0)
            vi.deps = {i - 1};
        prog.instrs.push_back(vi);
    }
    prog.footprintPages = 12 * n + 4;
    return prog;
}

TEST(Engine, RunsAndProducesMonotoneChainCompletions)
{
    Engine eng(testCfg());
    trace::Tracer tracer = occupancyTracer();
    eng.setTracer(&tracer);
    ConduitPolicy pol;
    auto r = eng.run(chainProgram(16), pol);
    EXPECT_EQ(r.instrCount, 16u);
    EXPECT_GT(r.execTime, 0u);
    const trace::InstructionTimeline tl =
        trace::instructionTimeline(tracer);
    ASSERT_EQ(tl.completion.size(), 16u);
    // Serial RAW chain: completions strictly increase.
    for (std::size_t i = 1; i < tl.completion.size(); ++i)
        EXPECT_GT(tl.completion[i], tl.completion[i - 1]);
}

TEST(Engine, IndependentInstructionsOverlap)
{
    Engine s(testCfg()), p(testCfg());
    ConduitPolicy pol;
    auto serial = s.run(chainProgram(24, OpCode::Add, true), pol);
    auto parallel = p.run(chainProgram(24, OpCode::Add, false), pol);
    // Removing the dependence chain shortens execution.
    EXPECT_LT(parallel.execTime, serial.execTime);
}

TEST(Engine, PerResourceCountsCoverAllInstructions)
{
    Engine eng(testCfg());
    ConduitPolicy pol;
    auto r = eng.run(chainProgram(20), pol);
    EXPECT_EQ(r.perResource[0] + r.perResource[1] + r.perResource[2],
              r.instrCount);
}

TEST(Engine, ScalarInstructionsRunOnIsp)
{
    Program prog = chainProgram(6);
    for (auto &vi : prog.instrs)
        vi.vectorized = false;
    Engine eng(testCfg());
    ConduitPolicy pol;
    auto r = eng.run(prog, pol);
    EXPECT_EQ(r.perResource[static_cast<int>(Target::Isp)],
              prog.instrs.size());
}

TEST(Engine, UnsupportedOpsNeverReachNarrowSubstrates)
{
    Program prog = chainProgram(8, OpCode::Gather);
    Engine eng(testCfg());
    ConduitPolicy pol;
    auto r = eng.run(prog, pol);
    // Gather is ISP-only.
    EXPECT_EQ(r.perResource[static_cast<int>(Target::Isp)], 8u);
}

TEST(Engine, FootprintBeyondCapacityRejected)
{
    SsdConfig cfg = testCfg();
    Engine eng(cfg);
    Program prog = chainProgram(2);
    prog.footprintPages = cfg.nand.totalPages() * 2;
    ConduitPolicy pol;
    EXPECT_THROW(eng.run(prog, pol), std::invalid_argument);
}

TEST(Engine, IdealModeSkipsOverheadAndMovement)
{
    Program prog = chainProgram(32);
    Engine a(testCfg()), b(testCfg());
    ConduitPolicy conduit;
    IdealPolicy ideal;
    auto real = a.run(prog, conduit);
    auto id = b.run(prog, ideal);
    EXPECT_LT(id.execTime, real.execTime);
    EXPECT_EQ(id.offloaderBusy, 0u);
    EXPECT_EQ(id.internalDmBusy, 0u);
    EXPECT_EQ(id.flashReadBusy, 0u);
    EXPECT_EQ(id.dmEnergyJ, 0.0);
    EXPECT_GT(id.computeEnergyJ, 0.0);
}

TEST(Engine, FaultInjectionReplaysAndStillCompletes)
{
    Program prog = chainProgram(64);
    Engine eng(testCfg());
    ConduitPolicy pol;
    EngineOptions opts;
    opts.transientFaultRate = 0.25;
    auto r = eng.run(prog, pol, opts);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_EQ(r.replays, r.faultsInjected);
    EXPECT_EQ(r.latencyUs.count(), prog.instrs.size());
    // Replays lengthen execution versus a fault-free run.
    Engine clean(testCfg());
    auto c = clean.run(prog, pol);
    EXPECT_GT(r.execTime, c.execTime);
}

TEST(Engine, FaultFreeRunInjectsNothing)
{
    Engine eng(testCfg());
    ConduitPolicy pol;
    auto r = eng.run(chainProgram(32), pol);
    EXPECT_EQ(r.faultsInjected, 0u);
    EXPECT_EQ(r.replays, 0u);
}

TEST(Engine, VersionCounterFlushesBeforeWrap)
{
    // One page rewritten far more times than the flush threshold.
    Program prog;
    prog.name = "rewrite";
    prog.footprintPages = 16;
    const std::size_t writes = 40;
    for (std::size_t i = 0; i < writes; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 4096;
        vi.srcs = {Operand{0, 1}};
        vi.dst = Operand{1, 1};
        if (i > 0)
            vi.deps = {i - 1};
        prog.instrs.push_back(vi);
    }
    Engine eng(testCfg());
    ConduitPolicy pol;
    EngineOptions opts;
    opts.versionFlushThreshold = 8;
    auto r = eng.run(prog, pol, opts);
    // 40 writes with threshold 8 force several coherence commits.
    EXPECT_GE(r.coherenceCommits, writes / 8 - 1);
}

TEST(Engine, LatchPressureForcesEvictions)
{
    // Bitwise chain writing many distinct pages through IFP.
    Program prog;
    prog.name = "latchstorm";
    const std::size_t n = 96;
    prog.footprintPages = 4 * n + 8;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Xor;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{0, 4}, Operand{4, 4}};
        vi.dst = Operand{8 + 4 * i, 4};
        prog.instrs.push_back(vi);
    }
    SsdConfig cfg = testCfg();
    // Tiny device: few dies, so latch capacity is scarce.
    cfg.nand.channels = 1;
    cfg.nand.diesPerChannel = 2;
    Engine eng(cfg);
    AresFlashPolicy pol; // everything to IFP
    EngineOptions opts;
    opts.latchPagesPerDie = 2;
    auto r = eng.run(prog, pol, opts);
    EXPECT_GT(r.latchEvictions, 0u);
    EXPECT_GE(r.coherenceCommits, r.latchEvictions);
}

TEST(Engine, DramStagingPressureForcesWritebacks)
{
    // Many distinct destination pages staged in SSD DRAM through the
    // PuD path; a tiny staging fraction forces the LRU to evict
    // dirty pages, each eviction committing the victim to flash
    // (coherence trigger iii) and charging internal data movement.
    Program prog;
    prog.name = "dramstorm";
    const std::size_t n = 96;
    prog.footprintPages = 4 * n + 8;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{0, 4}, Operand{4, 4}};
        vi.dst = Operand{8 + 4 * i, 4};
        prog.instrs.push_back(vi);
    }
    auto pud = makePolicy("PuD-SSD"); // everything staged in DRAM
    // Disable the final result drain so execution time is compared
    // without the end-of-run commit of whatever stayed resident.
    EngineOptions relaxed; // default: staging far exceeds footprint
    relaxed.drainResults = false;
    Engine a(testCfg());
    auto free = a.run(prog, *pud, relaxed);

    EngineOptions pressured;
    pressured.drainResults = false;
    pressured.dramStagingFraction = 0.05; // 64-page floor applies
    Engine b(testCfg());
    auto tight = b.run(prog, *pud, pressured);

    EXPECT_GT(tight.coherenceCommits, free.coherenceCommits);
    EXPECT_GT(tight.internalDmBusy, free.internalDmBusy);
    EXPECT_GE(tight.execTime, free.execTime);
}

TEST(Engine, AmpleStagingNeverEvicts)
{
    // The same program with the default (over-provisioned) staging
    // fraction stays resident: no capacity-driven commits at all.
    Program prog = chainProgram(32);
    auto pud = makePolicy("PuD-SSD");
    Engine eng(testCfg());
    auto r = eng.run(prog, *pud);
    EXPECT_EQ(r.coherenceCommits, 0u);
}

TEST(Engine, LatchSpillScalesWithCapacity)
{
    // Shrinking per-die latch capacity strictly increases spills to
    // the array; generous capacity eliminates them.
    Program prog;
    prog.name = "latchscale";
    const std::size_t n = 48;
    prog.footprintPages = 4 * n + 8;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Xor;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{0, 4}, Operand{4, 4}};
        vi.dst = Operand{8 + 4 * i, 4};
        prog.instrs.push_back(vi);
    }
    SsdConfig cfg = testCfg();
    cfg.nand.channels = 1;
    cfg.nand.diesPerChannel = 2;

    AresFlashPolicy pol;
    EngineOptions tiny, roomy;
    tiny.latchPagesPerDie = 2;
    roomy.latchPagesPerDie = 4096;
    Engine a(cfg), b(cfg);
    auto spills = a.run(prog, pol, tiny);
    auto clean = b.run(prog, pol, roomy);
    EXPECT_GT(spills.latchEvictions, 0u);
    EXPECT_EQ(clean.latchEvictions, 0u);
    EXPECT_LT(clean.latchEvictions, spills.latchEvictions);
}

TEST(Engine, DrainChargesHostTransfer)
{
    Program prog = chainProgram(8);
    Engine a(testCfg()), b(testCfg());
    ConduitPolicy pol;
    EngineOptions with, without;
    without.drainResults = false;
    auto rw = a.run(prog, pol, with);
    auto ro = b.run(prog, pol, without);
    EXPECT_GT(rw.hostDmBusy, 0u);
    EXPECT_EQ(ro.hostDmBusy, 0u);
    EXPECT_GE(rw.execTime, ro.execTime);
}

TEST(Engine, FeatureVectorMatchesSubstrateSupport)
{
    Engine eng(testCfg());
    Program prog = chainProgram(1, OpCode::Mul);
    ConduitPolicy pol;
    eng.run(prog, pol); // prepare state
    VecInstruction vi = prog.instrs[0];
    // A fresh engine is required for feature probing mid-state; use
    // the same one (pages already preloaded).
    CostFeatures f = eng.features(vi, 0);
    EXPECT_TRUE(f.supported[static_cast<int>(Target::Isp)]);
    EXPECT_TRUE(f.supported[static_cast<int>(Target::Pud)]);
    EXPECT_TRUE(f.supported[static_cast<int>(Target::Ifp)]);
    EXPECT_GT(f.comp[static_cast<int>(Target::Pud)], 0u);
    EXPECT_LT(f.comp[static_cast<int>(Target::Pud)], kMaxTick);
}

TEST(Engine, FeatureProbeSeesDependenceDelayAfterRun)
{
    // features() after a run consults the run's completion state:
    // an instruction depending on a completed producer reports the
    // producer's completion tick as dependence delay at now=0.
    Program prog = chainProgram(4);
    Engine eng(testCfg());
    ConduitPolicy pol;
    eng.run(prog, pol);
    CostFeatures f = eng.features(prog.instrs[3], 0);
    EXPECT_GT(f.depDelay, 0u);
}

TEST(Engine, DeterministicAcrossIdenticalRuns)
{
    Program prog = chainProgram(40);
    Engine a(testCfg()), b(testCfg());
    ConduitPolicy p1, p2;
    auto r1 = a.run(prog, p1);
    auto r2 = b.run(prog, p2);
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_EQ(r1.perResource, r2.perResource);
    EXPECT_DOUBLE_EQ(r1.energyJ(), r2.energyJ());
}

TEST(Engine, LatencyHistogramCoversEveryInstruction)
{
    Program prog = chainProgram(25);
    Engine eng(testCfg());
    DmOffloadPolicy pol;
    auto r = eng.run(prog, pol);
    EXPECT_EQ(r.latencyUs.count(), 25u);
    EXPECT_GT(r.latencyUs.min(), 0.0);
    EXPECT_GE(r.latencyUs.percentile(99.99), r.latencyUs.percentile(99));
}

/** Every policy completes the same program (parameterized). */
class EveryPolicy : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EveryPolicy, CompletesMixedProgram)
{
    Program prog;
    prog.name = "mixed";
    const OpCode ops[] = {OpCode::Xor, OpCode::Add, OpCode::Mul,
                          OpCode::Select, OpCode::Copy, OpCode::Gather};
    std::size_t id = 0;
    for (OpCode op : ops) {
        for (int i = 0; i < 4; ++i) {
            VecInstruction vi;
            vi.id = id++;
            vi.op = op;
            vi.elemBits = 8;
            vi.lanes = 16384;
            vi.srcs = {Operand{0, 4}, Operand{4, 4}};
            vi.dst = Operand{8 + 4 * (id % 8), 4};
            vi.vectorized = op != OpCode::Gather;
            prog.instrs.push_back(vi);
        }
    }
    prog.footprintPages = 48;
    Engine eng(testCfg());
    auto pol = makePolicy(GetParam());
    auto r = eng.run(prog, *pol);
    EXPECT_EQ(r.instrCount, prog.instrs.size());
    EXPECT_GT(r.execTime, 0u);
    EXPECT_GT(r.energyJ(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryPolicy,
    ::testing::Values("Conduit", "DM-Offloading", "BW-Offloading",
                      "Ideal", "ISP", "PuD-SSD", "Flash-Cosmos",
                      "Ares-Flash"));

} // namespace
} // namespace conduit
