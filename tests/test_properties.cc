/**
 * @file
 * Randomized property tests: invariants that must hold for any
 * traffic pattern — FCFS calendars never overlap, event queues never
 * reorder time, randomly generated programs always complete with
 * consistent accounting, and policy choices always respect substrate
 * capabilities.
 */

#include <gtest/gtest.h>

#include <vector>

#include "src/core/engine.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/rng.hh"
#include "src/sim/server.hh"
#include "src/trace/trace.hh"

namespace conduit
{
namespace
{

class RandomSeeds : public ::testing::TestWithParam<std::uint64_t>
{
};

/** An occupancy-only tracer (the instruction-timeline source). */
trace::Tracer
occupancyTracer()
{
    trace::TraceConfig cfg;
    cfg.categories =
        static_cast<std::uint32_t>(trace::Category::Occupancy);
    return trace::Tracer(cfg);
}

TEST_P(RandomSeeds, ServerIntervalsNeverOverlapAndFcfsHolds)
{
    Rng rng(GetParam());
    Server s("prop");
    Tick prev_start = 0;
    Tick prev_end = 0;
    for (int i = 0; i < 2000; ++i) {
        const Tick earliest = rng.below(1000000);
        const Tick duration = 1 + rng.below(5000);
        auto iv = s.acquire(earliest, duration);
        // Service starts no earlier than requested...
        ASSERT_GE(iv.start, earliest);
        // ...lasts exactly the requested duration...
        ASSERT_EQ(iv.end - iv.start, duration);
        // ...and never overlaps or reorders prior grants (FCFS).
        ASSERT_GE(iv.start, prev_end);
        ASSERT_GE(iv.start, prev_start);
        prev_start = iv.start;
        prev_end = iv.end;
    }
    // Busy time equals the sum of durations (no lost work).
    ASSERT_EQ(s.requests(), 2000u);
}

TEST_P(RandomSeeds, ServerGroupConservesWork)
{
    Rng rng(GetParam());
    ServerGroup g("prop", 1 + rng.below(8));
    Tick total = 0;
    for (int i = 0; i < 1000; ++i) {
        const Tick d = 1 + rng.below(1000);
        total += d;
        g.acquire(rng.below(100000), d);
    }
    ASSERT_EQ(g.busyTime(), total);
}

TEST_P(RandomSeeds, EventQueueNeverTravelsBack)
{
    Rng rng(GetParam());
    EventQueue q;
    Tick last = 0;
    bool ok = true;
    int fired = 0;
    for (int i = 0; i < 500; ++i) {
        q.schedule(rng.below(100000), [&] {
            ok = ok && q.now() >= last;
            last = q.now();
            ++fired;
            // Occasionally chain a future event.
            if (fired % 7 == 0)
                q.schedule(q.now() + 1 + (fired % 13), [&] {
                    ok = ok && q.now() >= last;
                    last = q.now();
                });
        });
    }
    q.run();
    EXPECT_TRUE(ok);
    EXPECT_TRUE(q.empty());
}

/** Build a random but well-formed program. */
Program
randomProgram(std::uint64_t seed, std::size_t n)
{
    Rng rng(seed);
    const OpCode ops[] = {OpCode::And,    OpCode::Xor,  OpCode::Add,
                          OpCode::Sub,    OpCode::Mul,  OpCode::Select,
                          OpCode::Copy,   OpCode::Min,  OpCode::CmpLt,
                          OpCode::Gather, OpCode::Shuffle};
    Program prog;
    prog.name = "random";
    const std::uint64_t region = 64;
    prog.footprintPages = region * 8;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = ops[rng.below(std::size(ops))];
        vi.elemBits = 8;
        vi.lanes = 1024u << rng.below(5); // 1K..16K lanes
        const auto nsrc = 1 + rng.below(2);
        for (std::uint64_t s = 0; s < nsrc; ++s) {
            vi.srcs.push_back(
                Operand{rng.below(region * 7),
                        1 + static_cast<std::uint32_t>(rng.below(4))});
        }
        vi.dst = Operand{region * 7 + rng.below(region - 4),
                         1 + static_cast<std::uint32_t>(rng.below(4))};
        vi.vectorized = rng.uniform() > 0.15;
        // Random back-edges to earlier instructions.
        if (i > 0 && rng.chance(0.5))
            vi.deps.push_back(rng.below(i));
        prog.instrs.push_back(vi);
    }
    return prog;
}

TEST_P(RandomSeeds, RandomProgramsCompleteWithConsistentAccounting)
{
    const Program prog = randomProgram(GetParam(), 120);
    Engine eng(SsdConfig::scaled(1.0 / 256.0));
    trace::Tracer tracer = occupancyTracer();
    eng.setTracer(&tracer);
    ConduitPolicy pol;
    auto r = eng.run(prog, pol);

    // Everything executed exactly once, somewhere.
    ASSERT_EQ(r.instrCount, prog.instrs.size());
    ASSERT_EQ(r.perResource[0] + r.perResource[1] + r.perResource[2],
              r.instrCount);
    ASSERT_EQ(r.latencyUs.count(), prog.instrs.size());
    const trace::InstructionTimeline tl =
        trace::instructionTimeline(tracer);
    ASSERT_EQ(tl.completion.size(), prog.instrs.size());

    // Dependence ordering: a consumer never completes before its
    // producers.
    for (const auto &vi : prog.instrs) {
        for (InstrId d : vi.deps) {
            ASSERT_GE(tl.completion[vi.id], tl.completion[d]);
        }
    }

    // Execution time covers the last completion; energy is positive
    // and split across the two buckets.
    Tick last = 0;
    for (Tick t : tl.completion)
        last = std::max(last, t);
    ASSERT_GE(r.execTime, last);
    ASSERT_GT(r.energyJ(), 0.0);

    // Scalar instructions only ever ran on the controller core.
    for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
        if (!prog.instrs[i].vectorized) {
            ASSERT_EQ(static_cast<Target>(tl.resource[i]),
                      Target::Isp);
        }
    }
}

TEST_P(RandomSeeds, PolicyChoicesAlwaysRespectCapabilities)
{
    const Program prog = randomProgram(GetParam() ^ 0xABCD, 80);
    Engine eng(SsdConfig::scaled(1.0 / 256.0));
    trace::Tracer tracer = occupancyTracer();
    eng.setTracer(&tracer);
    auto pol = makePolicy(GetParam() % 2 == 0 ? "Conduit"
                                              : "DM-Offloading");
    (void)eng.run(prog, *pol);
    const trace::InstructionTimeline tl =
        trace::instructionTimeline(tracer);
    ASSERT_EQ(tl.resource.size(), prog.instrs.size());
    for (std::size_t i = 0; i < prog.instrs.size(); ++i) {
        const auto t = static_cast<Target>(tl.resource[i]);
        const OpCode op = prog.instrs[i].op;
        if (t == Target::Pud)
            ASSERT_TRUE(pudSupports(op)) << opName(op);
        if (t == Target::Ifp)
            ASSERT_TRUE(ifpSupports(op)) << opName(op);
    }
}

TEST_P(RandomSeeds, FaultReplayPreservesOrderingInvariants)
{
    const Program prog = randomProgram(GetParam() ^ 0x5EED, 100);
    Engine eng(SsdConfig::scaled(1.0 / 256.0));
    trace::Tracer tracer = occupancyTracer();
    eng.setTracer(&tracer);
    ConduitPolicy pol;
    EngineOptions opts;
    opts.transientFaultRate = 0.2;
    auto r = eng.run(prog, pol, opts);
    ASSERT_EQ(r.replays, r.faultsInjected);
    const trace::InstructionTimeline tl =
        trace::instructionTimeline(tracer);
    for (const auto &vi : prog.instrs) {
        for (InstrId d : vi.deps)
            ASSERT_GE(tl.completion[vi.id], tl.completion[d]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeeds,
                         ::testing::Values(1, 7, 42, 1337, 0xDEAD,
                                           99991, 2026, 31415));

} // namespace
} // namespace conduit
