/**
 * @file
 * Unit tests for the NAND flash array: address codec, die/channel
 * timing, FCFS contention, and geometry sweeps.
 */

#include <gtest/gtest.h>

#include "src/nand/nand.hh"

namespace conduit
{
namespace
{

NandConfig
smallNand()
{
    NandConfig n;
    n.channels = 2;
    n.diesPerChannel = 2;
    n.planesPerDie = 2;
    n.blocksPerPlane = 8;
    n.pagesPerBlock = 16;
    return n;
}

TEST(NandCodec, RoundTripAllFields)
{
    NandArray nand(smallNand());
    FlashAddress a{1, 1, 1, 7, 15};
    EXPECT_EQ(nand.decode(nand.encode(a)), a);
    FlashAddress b{0, 0, 0, 0, 0};
    EXPECT_EQ(nand.decode(nand.encode(b)), b);
    EXPECT_EQ(nand.encode(b), 0u);
}

TEST(NandCodec, DenseAndInRange)
{
    NandArray nand(smallNand());
    const std::uint64_t total = smallNand().totalPages();
    // Every ppn decodes and re-encodes to itself (bijection).
    for (Ppn p = 0; p < total; ++p)
        ASSERT_EQ(nand.encode(nand.decode(p)), p);
    EXPECT_THROW(nand.decode(total), std::out_of_range);
}

TEST(NandTiming, ReadOccupiesDieForTr)
{
    NandConfig n = smallNand();
    NandArray nand(n);
    FlashAddress a{0, 0, 0, 0, 0};
    auto iv = nand.readPage(a, 0);
    EXPECT_EQ(iv.start, 0u);
    EXPECT_EQ(iv.end, n.cmdTicks + n.readTicks);
    // Same die: second read queues behind the first.
    auto iv2 = nand.readPage(a, 0);
    EXPECT_EQ(iv2.start, iv.end);
    // Different die: starts immediately.
    FlashAddress b{0, 1, 0, 0, 0};
    auto iv3 = nand.readPage(b, 0);
    EXPECT_EQ(iv3.start, 0u);
}

TEST(NandTiming, ProgramAndEraseDurations)
{
    NandConfig n = smallNand();
    NandArray nand(n);
    FlashAddress a{1, 0, 1, 3, 2};
    auto pw = nand.programPage(a, 100);
    EXPECT_EQ(pw.end - pw.start, n.cmdTicks + n.programTicks);
    auto er = nand.eraseBlock(a, pw.end);
    EXPECT_EQ(er.start, pw.end);
    EXPECT_EQ(er.end - er.start, n.cmdTicks + n.eraseTicks);
}

TEST(NandTiming, ChannelTransferSerializes)
{
    NandConfig n = smallNand();
    NandArray nand(n);
    auto x1 = nand.transferOut(0, n.pageBytes, 0);
    auto x2 = nand.transferOut(0, n.pageBytes, 0);
    EXPECT_EQ(x2.start, x1.end);
    // Other channel is independent.
    auto x3 = nand.transferOut(1, n.pageBytes, 0);
    EXPECT_EQ(x3.start, 0u);
    // Duration = DMA + serialization at channel bandwidth.
    const Tick expect =
        n.dmaTicks + transferTicks(n.pageBytes, n.channelBytesPerSec);
    EXPECT_EQ(x1.end - x1.start, expect);
}

TEST(NandStats, CountersAccumulate)
{
    StatSet stats;
    NandArray nand(smallNand(), &stats);
    FlashAddress a{0, 0, 0, 0, 0};
    nand.readPage(a, 0);
    nand.readPage(a, 0);
    nand.programPage(a, 0);
    nand.transferOut(0, 4096, 0);
    EXPECT_EQ(stats.counter("nand.reads").value(), 2u);
    EXPECT_EQ(stats.counter("nand.programs").value(), 1u);
    EXPECT_EQ(stats.counter("nand.xfer_out_bytes").value(), 4096u);
}

TEST(NandBacklog, TracksPendingWork)
{
    NandConfig n = smallNand();
    NandArray nand(n);
    EXPECT_EQ(nand.minDieBacklog(0), 0u);
    FlashAddress a{0, 0, 0, 0, 0};
    nand.readPage(a, 0);
    EXPECT_GT(nand.dieBacklog(0, 0), 0u);
    // Min over dies is still zero (other dies idle).
    EXPECT_EQ(nand.minDieBacklog(0), 0u);
    EXPECT_EQ(nand.channelBacklog(0, 0), 0u);
}

TEST(NandUtilization, GrowsWithTraffic)
{
    NandConfig n = smallNand();
    NandArray nand(n);
    EXPECT_DOUBLE_EQ(nand.channelUtilization(0), 0.0);
    auto iv = nand.transferOut(0, n.pageBytes, 0);
    const double u = nand.channelUtilization(iv.end);
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

/** Geometry property sweep: codec bijectivity across shapes. */
class NandGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(NandGeometry, CodecBijective)
{
    auto [ch, dies, planes] = GetParam();
    NandConfig n;
    n.channels = ch;
    n.diesPerChannel = dies;
    n.planesPerDie = planes;
    n.blocksPerPlane = 4;
    n.pagesPerBlock = 8;
    NandArray nand(n);
    const std::uint64_t total = n.totalPages();
    for (Ppn p = 0; p < total; p += 7)
        ASSERT_EQ(nand.encode(nand.decode(p)), p);
    FlashAddress last = nand.decode(total - 1);
    EXPECT_EQ(last.channel, n.channels - 1);
    EXPECT_EQ(last.page, n.pagesPerBlock - 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, NandGeometry,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(2, 4, 2),
                                           std::make_tuple(8, 8, 2),
                                           std::make_tuple(3, 5, 4)));

} // namespace
} // namespace conduit
