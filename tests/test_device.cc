/**
 * @file
 * Tests for the persistent-device job API: byte-identical equivalence
 * of tick-0 Device runs with the batch engine (and of the rebuilt
 * facade wrappers), arrival semantics (staggered-arrival determinism
 * across repeats and thread counts, causality of late arrivals),
 * region allocation/reclamation across job lifetimes, wait()
 * semantics, admission queueing under a bounded page pool, and the
 * deterministic arrival processes.
 */

#include <gtest/gtest.h>

#include "src/core/arrival.hh"
#include "src/core/device.hh"
#include "src/core/simulation.hh"
#include "src/runner/sweep_runner.hh"

namespace conduit
{
namespace
{

SsdConfig
testCfg()
{
    return SsdConfig::scaled(1.0 / 256.0);
}

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(const std::string &name, std::size_t n,
             OpCode op = OpCode::Add)
{
    auto prog = std::make_shared<Program>();
    prog->name = name;
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = op;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

void
expectSameResult(const RunResult &x, const RunResult &y)
{
    EXPECT_EQ(x.workload, y.workload);
    EXPECT_EQ(x.policy, y.policy);
    EXPECT_EQ(x.execTime, y.execTime);
    EXPECT_EQ(x.instrCount, y.instrCount);
    EXPECT_EQ(x.perResource, y.perResource);
    EXPECT_EQ(x.latencyUs.count(), y.latencyUs.count());
    EXPECT_DOUBLE_EQ(x.latencyUs.percentile(99),
                     y.latencyUs.percentile(99));
    EXPECT_DOUBLE_EQ(x.dmEnergyJ, y.dmEnergyJ);
    EXPECT_DOUBLE_EQ(x.computeEnergyJ, y.computeEnergyJ);
    EXPECT_EQ(x.coherenceCommits, y.coherenceCommits);
    EXPECT_EQ(x.latchEvictions, y.latchEvictions);
}

DeviceOptions
testDeviceOptions()
{
    DeviceOptions d;
    d.config = testCfg();
    return d;
}

// ------------------------------------------- equivalence contract

TEST(Device, TickZeroJobsReproduceRunMultiByteIdentically)
{
    std::vector<sched::StreamSpec> streams(2);
    streams[0].name = "tenantA";
    streams[0].program = chainProgram("a", 24, OpCode::Add);
    streams[0].policy = makePolicy("Conduit");
    streams[1].name = "tenantB";
    streams[1].program = chainProgram("b", 24, OpCode::Xor);
    streams[1].policy = makePolicy("DM-Offloading");

    Device dev(testDeviceOptions());
    for (const auto &s : streams) {
        JobSpec job;
        job.name = s.name;
        job.program = s.program;
        job.policyObj = s.policy;
        dev.submit(job);
    }
    const DeviceSnapshot snap = dev.drain();

    Engine eng(testCfg());
    const sched::MultiRunResult mr = eng.run(std::move(streams));

    ASSERT_EQ(snap.jobs.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        expectSameResult(snap.jobs[i].result, mr.streams[i]);
        EXPECT_EQ(snap.jobs[i].arrival, 0u);
        EXPECT_EQ(snap.jobs[i].admitted, 0u);
    }
    EXPECT_EQ(snap.makespan, mr.makespan);
    EXPECT_EQ(snap.eventsFired, mr.eventsFired);
    expectSameResult(snap.aggregate, mr.aggregate);
    // Regions laid out in submission order, like spec order.
    EXPECT_EQ(snap.jobs[0].basePage, 0u);
    EXPECT_EQ(snap.jobs[1].basePage, snap.jobs[0].pages);
}

TEST(Device, SingleJobReproducesSingleStreamEngineRun)
{
    auto prog = chainProgram("solo", 32);
    Engine eng(testCfg());
    ConduitPolicy pol;
    const RunResult direct = eng.run(*prog, pol);

    Device dev(testDeviceOptions());
    JobSpec job;
    job.program = prog;
    job.policy = "Conduit";
    const JobId id = dev.submit(job);
    expectSameResult(dev.wait(id).result, direct);
}

TEST(Device, FacadeWrappersStayByteIdenticalToEngine)
{
    // Simulation::run / runMulti are thin wrappers over Device; they
    // must reproduce a direct engine run exactly.
    SimOptions so;
    so.workload.scale = 0.25;
    Simulation sim(so);
    const RunResult viaFacade = sim.run(WorkloadId::Aes, "Conduit");

    const VectorizedProgram &vp = sim.compile(WorkloadId::Aes);
    Engine eng(so.config);
    auto policy = makePolicy("Conduit");
    RunResult direct = eng.run(vp.program, *policy);
    direct.workload = viaFacade.workload; // facade labels by workload
    expectSameResult(viaFacade, direct);
}

TEST(Device, IdealPolicyJobMatchesEngineRun)
{
    auto prog = chainProgram("ideal", 16);
    Engine eng(testCfg());
    IdealPolicy pol;
    const RunResult direct = eng.run(*prog, pol);

    Device dev(testDeviceOptions());
    JobSpec job;
    job.program = prog;
    job.policy = "Ideal";
    const JobId id = dev.submit(job);
    expectSameResult(dev.wait(id).result, direct);
}

// ------------------------------------------------ arrival semantics

TEST(Device, StaggeredArrivalsAreDeterministicAcrossRepeats)
{
    const auto runOnce = [] {
        Device dev(testDeviceOptions());
        auto prog = chainProgram("j", 16);
        for (int i = 0; i < 4; ++i) {
            JobSpec job;
            job.program = prog;
            job.arrival = static_cast<Tick>(i) * usToTicks(200);
            dev.submit(job);
        }
        return dev.drain();
    };
    const DeviceSnapshot a = runOnce();
    const DeviceSnapshot b = runOnce();
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        expectSameResult(a.jobs[i].result, b.jobs[i].result);
        EXPECT_EQ(a.jobs[i].end, b.jobs[i].end);
    }
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
}

TEST(Device, LoadSweepIsThreadCountInvariant)
{
    std::vector<runner::LoadRunSpec> cells;
    for (double rate : {500.0, 2000.0}) {
        runner::LoadRunSpec cell;
        cell.workload = "AES";
        cell.technique = "Conduit";
        cell.config = testCfg();
        cell.params.scale = 0.25;
        cell.workloadId = WorkloadId::Aes;
        cell.jobs = 3;
        cell.jobsPerSec = rate;
        cells.push_back(cell);
    }
    runner::SweepRunner serial({1}), parallel({4});
    const auto r1 = serial.runLoadAll(cells);
    const auto rN = parallel.runLoadAll(cells);
    ASSERT_EQ(r1.size(), rN.size());
    for (std::size_t c = 0; c < r1.size(); ++c) {
        ASSERT_EQ(r1[c].jobs.size(), rN[c].jobs.size());
        for (std::size_t j = 0; j < r1[c].jobs.size(); ++j)
            expectSameResult(r1[c].jobs[j].result,
                             rN[c].jobs[j].result);
        EXPECT_EQ(r1[c].makespan, rN[c].makespan);
        EXPECT_EQ(r1[c].eventsFired, rN[c].eventsFired);
    }
}

TEST(Device, LateArrivalNeverStartsBeforeItsTick)
{
    Device dev(testDeviceOptions());
    auto prog = chainProgram("late", 8);
    JobSpec early;
    early.program = prog;
    dev.submit(early);
    JobSpec late;
    late.program = prog;
    late.arrival = msToTicks(5);
    const JobId lateId = dev.submit(late);
    const JobResult &r = dev.wait(lateId);
    EXPECT_EQ(r.arrival, msToTicks(5));
    EXPECT_GE(r.admitted, r.arrival);
    EXPECT_GT(r.end, r.arrival);
}

TEST(Device, ColocatedArrivalsContendButBothComplete)
{
    // An overlapping arrival inflates the first job's tail vs its
    // isolated run (shared calendars), while both still finish.
    auto prog = chainProgram("hot", 32);
    Device iso(testDeviceOptions());
    JobSpec job;
    job.program = prog;
    const JobId a = iso.submit(job);
    const Tick aloneEnd = iso.wait(a).end;

    Device dev(testDeviceOptions());
    dev.submit(job);
    JobSpec second = job;
    second.arrival = 1; // joins one tick in: full contention
    dev.submit(second);
    const DeviceSnapshot snap = dev.drain();
    EXPECT_GE(snap.jobs[0].end, aloneEnd);
    EXPECT_EQ(snap.jobs.size(), 2u);
}

// ------------------------------------- regions, wait(), admission

TEST(Device, RegionReclamationLetsLaterJobsReusePages)
{
    auto prog = chainProgram("re", 8);
    DeviceOptions opts = testDeviceOptions();
    opts.capacityPages = prog->footprintPages; // exactly one job fits
    Device dev(opts);
    JobSpec job;
    job.program = prog;
    const JobId first = dev.submit(job);
    EXPECT_EQ(dev.wait(first).basePage, 0u);

    // The first job retired, so its region is free again — a job
    // submitted after the simulation advanced reuses page 0.
    const JobId second = dev.submit(job);
    const JobResult &r2 = dev.wait(second);
    EXPECT_EQ(r2.basePage, 0u);
    EXPECT_GT(r2.arrival, 0u); // clamped to the advanced clock
    EXPECT_GT(r2.end, dev.wait(first).end);
}

TEST(Device, BoundedPoolQueuesAdmissionUntilSpaceFrees)
{
    auto prog = chainProgram("q", 8);
    DeviceOptions opts = testDeviceOptions();
    opts.capacityPages = prog->footprintPages;
    opts.retire = RetirePolicy::OnComplete;
    Device dev(opts);
    JobSpec job;
    job.program = prog;
    dev.submit(job);
    dev.submit(job); // cannot fit until the first retires
    const DeviceSnapshot snap = dev.drain();
    ASSERT_EQ(snap.jobs.size(), 2u);
    EXPECT_EQ(snap.jobs[0].basePage, 0u);
    EXPECT_EQ(snap.jobs[1].basePage, 0u); // reused the freed region
    EXPECT_GT(snap.jobs[1].admitted, snap.jobs[1].arrival);
    // The region frees only once the first job's result drain
    // finishes in simulated time — the successor cannot run on
    // pages whose previous contents are still streaming out.
    EXPECT_GE(snap.jobs[1].admitted, snap.jobs[0].end);
    EXPECT_GT(snap.jobs[1].end, snap.jobs[0].end);
}

TEST(Device, WaitOnCompletedJobReturnsImmediatelyAndStably)
{
    Device dev(testDeviceOptions());
    JobSpec job;
    job.program = chainProgram("w", 8);
    const JobId id = dev.submit(job);
    const JobResult r1 = dev.wait(id);
    const Tick before = dev.now();
    const JobResult r2 = dev.wait(id); // already retired: no advance
    EXPECT_EQ(dev.now(), before);
    expectSameResult(r1.result, r2.result);
    EXPECT_EQ(r1.end, r2.end);

    dev.drain(); // drain after wait is fine too
    const JobResult r3 = dev.wait(id);
    EXPECT_EQ(r3.end, r1.end);
}

TEST(Device, WaitOnUnknownJobThrows)
{
    Device dev(testDeviceOptions());
    EXPECT_THROW(dev.wait(0), std::out_of_range);
    EXPECT_THROW(dev.wait(7), std::out_of_range);
}

TEST(Device, JobThatCanNeverFitThrows)
{
    auto prog = chainProgram("big", 8);
    DeviceOptions opts = testDeviceOptions();
    opts.capacityPages = prog->footprintPages / 2;
    Device dev(opts);
    JobSpec job;
    job.program = prog;
    const JobId id = dev.submit(job);
    EXPECT_THROW(dev.wait(id), std::runtime_error);
}

TEST(Device, SubmitWithoutWorkloadOrProgramThrows)
{
    Device dev(testDeviceOptions());
    EXPECT_THROW(dev.submit(JobSpec{}), std::invalid_argument);
}

TEST(Device, WorkloadJobsCompileThroughTheDeviceCache)
{
    DeviceOptions opts = testDeviceOptions();
    opts.workload.scale = 0.25;
    Device dev(opts);
    JobSpec job;
    job.workload = WorkloadId::Aes;
    const JobId id = dev.submit(job);
    const JobResult &r = dev.wait(id);
    EXPECT_EQ(r.result.workload, workloadName(WorkloadId::Aes));
    EXPECT_GT(r.result.execTime, 0u);
}

// -------------------------------------------------- RegionAllocator

TEST(RegionAllocator, FirstFitAndCoalescing)
{
    RegionAllocator alloc(100);
    const auto a = alloc.allocate(40);
    const auto b = alloc.allocate(40);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a, 0u);
    EXPECT_EQ(*b, 40u);
    EXPECT_FALSE(alloc.allocate(40)); // only 20 left
    alloc.release(*a, 40);
    const auto c = alloc.allocate(30);
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, 0u); // first fit reuses the freed head
    alloc.release(*b, 40);
    alloc.release(*c, 30);
    // Everything free again and coalesced: a full-size region fits.
    const auto d = alloc.allocate(100);
    ASSERT_TRUE(d);
    EXPECT_EQ(*d, 0u);
    EXPECT_EQ(alloc.inUse(), 100u);
}

TEST(RegionAllocator, DoubleFreeThrows)
{
    RegionAllocator alloc(10);
    const auto a = alloc.allocate(4);
    ASSERT_TRUE(a);
    alloc.release(*a, 4);
    EXPECT_THROW(alloc.release(*a, 4), std::logic_error);
}

// ------------------------------------------------ arrival processes

TEST(Arrivals, PoissonIsDeterministicPerSeed)
{
    PoissonArrivals a(1e6, 42), b(1e6, 42), c(1e6, 43);
    const auto sa = a.schedule(64);
    const auto sb = b.schedule(64);
    EXPECT_EQ(sa, sb);
    EXPECT_NE(sa, c.schedule(64));
    for (std::size_t i = 1; i < sa.size(); ++i)
        EXPECT_GE(sa[i], sa[i - 1]); // cumulative times are monotone
}

TEST(Arrivals, PoissonMeanApproximatesRate)
{
    PoissonArrivals p = PoissonArrivals::fromRate(1000.0, 7);
    const auto times = p.schedule(4000);
    const double meanGap = ticksToSeconds(times.back()) / 4000.0;
    EXPECT_NEAR(meanGap, 1.0 / 1000.0, 0.1 / 1000.0);
}

TEST(Arrivals, FixedUniformAndTraceBehave)
{
    FixedArrivals f(100);
    EXPECT_EQ(f.next(), 100u);
    EXPECT_EQ(f.schedule(3), (std::vector<Tick>{100, 200, 300}));

    UniformArrivals u(50, 150, 9);
    for (int i = 0; i < 100; ++i) {
        const Tick g = u.next();
        EXPECT_GE(g, 50u);
        EXPECT_LE(g, 150u);
    }

    TraceArrivals t({10, 20});
    EXPECT_EQ(t.next(), 10u);
    EXPECT_EQ(t.next(), 20u);
    EXPECT_EQ(t.next(), 10u); // cycles
    EXPECT_THROW(TraceArrivals({}), std::invalid_argument);
}

TEST(Arrivals, KindNamesRoundTrip)
{
    for (ArrivalKind k : {ArrivalKind::Fixed, ArrivalKind::Uniform,
                          ArrivalKind::Poisson}) {
        ArrivalKind parsed;
        ASSERT_TRUE(parseArrivalKind(arrivalKindName(k), parsed));
        EXPECT_EQ(parsed, k);
    }
    ArrivalKind out;
    EXPECT_FALSE(parseArrivalKind("bursty", out));
}

} // namespace
} // namespace conduit
