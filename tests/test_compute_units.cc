/**
 * @file
 * Unit tests for the three NDP compute models: PuD (DRAM), IFP
 * (flash), and ISP (controller core), plus the DRAM timing model.
 */

#include <gtest/gtest.h>

#include "src/dram/dram.hh"
#include "src/dram/pud_unit.hh"
#include "src/isp/isp_core.hh"
#include "src/nand/ifp_unit.hh"

namespace conduit
{
namespace
{

TEST(Dram, BankParallelBusSerial)
{
    DramConfig d;
    DramModel dram(d);
    auto a = dram.access(0, 4096, 0);
    auto b = dram.access(1, 4096, 0);
    // Different banks activate in parallel...
    EXPECT_EQ(a.start, 0u);
    EXPECT_EQ(b.start, 0u);
    // ...but the shared bus serializes the bursts.
    EXPECT_GE(b.end, a.end);
    // Same bank queues.
    auto c = dram.access(0, 4096, 0);
    EXPECT_GT(c.start, 0u);
}

TEST(Pud, SupportsSixteenOpSubsetOnly)
{
    EXPECT_TRUE(PudUnit::supports(OpCode::Add));
    EXPECT_TRUE(PudUnit::supports(OpCode::Mul));
    EXPECT_TRUE(PudUnit::supports(OpCode::Select));
    EXPECT_TRUE(PudUnit::supports(OpCode::Copy));
    EXPECT_FALSE(PudUnit::supports(OpCode::Shuffle));
    EXPECT_FALSE(PudUnit::supports(OpCode::Gather));
    EXPECT_FALSE(PudUnit::supports(OpCode::Exp));
    EXPECT_FALSE(PudUnit::supports(OpCode::Div));
}

TEST(Pud, LatencyScalesWithBbopSequence)
{
    DramConfig d;
    DramModel dram(d);
    ComputeModelConfig m;
    PudUnit pud(dram, m);
    // One row: bitwise is cheaper than add is cheaper than multiply.
    const std::uint32_t lanes = d.rowBytes; // exactly one row, 8-bit
    const Tick bw = pud.estimate(OpCode::Xor, 8, lanes);
    const Tick add = pud.estimate(OpCode::Add, 8, lanes);
    const Tick mul = pud.estimate(OpCode::Mul, 8, lanes);
    EXPECT_LT(bw, add);
    EXPECT_LT(add, mul);
    EXPECT_EQ(bw, static_cast<Tick>(m.pudBitwiseBbops) * d.bbopTicks);
}

TEST(Pud, RowsSpreadAcrossBanks)
{
    DramConfig d;
    DramModel dram(d);
    ComputeModelConfig m;
    PudUnit pud(dram, m);
    // 8 rows over 8 banks: same estimate as 1 row (one wave).
    const std::uint32_t one_row = d.rowBytes;
    EXPECT_EQ(pud.estimate(OpCode::Add, 8, one_row),
              pud.estimate(OpCode::Add, 8, one_row * d.banks));
    // 9 rows need a second wave.
    EXPECT_GT(pud.estimate(OpCode::Add, 8, one_row * (d.banks + 1)),
              pud.estimate(OpCode::Add, 8, one_row));
}

TEST(Pud, WiderElementsCostMore)
{
    DramConfig d;
    DramModel dram(d);
    PudUnit pud(dram, ComputeModelConfig{});
    EXPECT_GT(pud.bbopCount(OpCode::Add, 32),
              pud.bbopCount(OpCode::Add, 8));
    // Multiplication scales quadratically with width.
    const auto m8 = pud.bbopCount(OpCode::Mul, 8);
    const auto m32 = pud.bbopCount(OpCode::Mul, 32);
    EXPECT_GE(m32, m8 * 10);
}

TEST(Pud, UnsupportedThrows)
{
    DramConfig d;
    DramModel dram(d);
    PudUnit pud(dram, ComputeModelConfig{});
    EXPECT_THROW(pud.execute(OpCode::Gather, 8, 64, 0, 0),
                 std::invalid_argument);
    EXPECT_EQ(pud.estimate(OpCode::Gather, 8, 64), kMaxTick);
}

TEST(Ifp, SupportsNinePlusLatchOps)
{
    EXPECT_TRUE(IfpUnit::supports(OpCode::And));
    EXPECT_TRUE(IfpUnit::supports(OpCode::Xor));
    EXPECT_TRUE(IfpUnit::supports(OpCode::Add));
    EXPECT_TRUE(IfpUnit::supports(OpCode::Mul));
    EXPECT_FALSE(IfpUnit::supports(OpCode::Select));
    EXPECT_FALSE(IfpUnit::supports(OpCode::CmpLt));
    EXPECT_FALSE(IfpUnit::supports(OpCode::Gather));
    EXPECT_FALSE(IfpUnit::supports(OpCode::Div));
}

TEST(Ifp, MwsAndIsSingleSensing)
{
    NandConfig n;
    NandArray nand(n);
    IfpUnit ifp(nand, ComputeModelConfig{});
    // AND of 2 and of 48 operands both take one multi-WL sensing.
    const Tick and2 = ifp.estimate(OpCode::And, 8, 2, 2, n.pageBytes);
    const Tick and48 =
        ifp.estimate(OpCode::And, 8, 48, 48, n.pageBytes);
    EXPECT_EQ(and2, and48);
    // 49 operands exceed the MWS fan-in: a second sensing.
    const Tick and49 =
        ifp.estimate(OpCode::And, 8, 49, 49, n.pageBytes);
    EXPECT_GT(and49, and48);
}

TEST(Ifp, LatchResidentOperandsSkipSensing)
{
    NandConfig n;
    NandArray nand(n);
    IfpUnit ifp(nand, ComputeModelConfig{});
    const Tick cold = ifp.estimate(OpCode::Xor, 8, 2, 2, n.pageBytes);
    const Tick warm = ifp.estimate(OpCode::Xor, 8, 2, 0, n.pageBytes);
    EXPECT_GT(cold, warm);
    // Sensing dominates: warm op costs only the latch logic.
    EXPECT_LT(warm, usToTicks(1));
    EXPECT_GT(cold, usToTicks(40)); // two sensings
}

TEST(Ifp, MultiplyShuttlesOccupyChannel)
{
    NandConfig n;
    NandArray nand(n);
    ComputeModelConfig m;
    IfpUnit ifp(nand, m);
    const Tick before = nand.channel(0).busyTime();
    ifp.execute(OpCode::Mul, 8, 2, 0, {{0, n.pageBytes}}, 0);
    EXPECT_GT(nand.channel(0).busyTime(), before);
    // Addition does not shuttle.
    const Tick after_mul = nand.channel(0).busyTime();
    ifp.execute(OpCode::Add, 8, 2, 0, {{0, n.pageBytes}}, 0);
    EXPECT_EQ(nand.channel(0).busyTime(), after_mul);
}

TEST(Ifp, FragmentsRunInParallelAcrossDies)
{
    NandConfig n;
    NandArray nand(n);
    IfpUnit ifp(nand, ComputeModelConfig{});
    std::vector<IfpFragment> one = {{0, n.pageBytes}};
    std::vector<IfpFragment> four = {
        {0, n.pageBytes}, {1, n.pageBytes},
        {2, n.pageBytes}, {3, n.pageBytes}};
    auto iv1 = ifp.execute(OpCode::Xor, 8, 2, 2, one, 0);
    NandArray nand2(n);
    IfpUnit ifp2(nand2, ComputeModelConfig{});
    auto iv4 = ifp2.execute(OpCode::Xor, 8, 2, 2, four, 0);
    // Four dies finish in the same wall-clock as one.
    EXPECT_EQ(iv4.end - iv4.start, iv1.end - iv1.start);
}

TEST(Ifp, UnsupportedThrows)
{
    NandConfig n;
    NandArray nand(n);
    IfpUnit ifp(nand, ComputeModelConfig{});
    EXPECT_THROW(ifp.execute(OpCode::Select, 8, 3, 3, {{0, 4096}}, 0),
                 std::invalid_argument);
    EXPECT_EQ(ifp.estimate(OpCode::Select, 8, 3, 3, 4096), kMaxTick);
}

TEST(Isp, StreamBoundForBulkVectors)
{
    IspConfig c;
    ComputeModelConfig m;
    IspCore isp(c, m);
    // Large low-latency vector: bounded by streaming bandwidth.
    const std::uint32_t lanes = 16384;
    const Tick t = isp.estimate(OpCode::Xor, 8, lanes, 2, true);
    const Tick stream = transferTicks(
        static_cast<std::uint64_t>(lanes) * 3, c.streamBytesPerSec);
    EXPECT_NEAR(static_cast<double>(t), static_cast<double>(stream),
                static_cast<double>(stream) * 0.05);
}

TEST(Isp, HighClassOpsStreamMore)
{
    IspCore isp(IspConfig{}, ComputeModelConfig{});
    EXPECT_GT(isp.estimate(OpCode::Mul, 8, 16384, 2, true),
              isp.estimate(OpCode::Add, 8, 16384, 2, true));
}

TEST(Isp, ScalarFallbackCostsPerElement)
{
    IspConfig c;
    ComputeModelConfig m;
    IspCore isp(c, m);
    const Tick scalar = isp.estimate(OpCode::Add, 8, 1000, 2, false);
    const double cycles = 1000.0 * m.ispScalarCyclesPerElem;
    const double expect_ps = cycles * (kPsPerS / c.clockHz);
    EXPECT_NEAR(static_cast<double>(scalar), expect_ps,
                expect_ps * 0.05);
}

TEST(Isp, SingleCoreSerializes)
{
    IspCore isp(IspConfig{}, ComputeModelConfig{});
    auto a = isp.execute(OpCode::Add, 8, 16384, 2, true, 0);
    auto b = isp.execute(OpCode::Add, 8, 16384, 2, true, 0);
    EXPECT_EQ(b.start, a.end);
    EXPECT_GT(isp.backlog(0), 0u);
    isp.reset();
    EXPECT_EQ(isp.backlog(0), 0u);
}

/** Property sweep: all units' estimates are monotone in lanes. */
class MonotoneLanes : public ::testing::TestWithParam<OpCode>
{
};

TEST_P(MonotoneLanes, EstimatesNonDecreasing)
{
    const OpCode op = GetParam();
    DramConfig d;
    DramModel dram(d);
    PudUnit pud(dram, ComputeModelConfig{});
    NandConfig n;
    NandArray nand(n);
    IfpUnit ifp(nand, ComputeModelConfig{});
    IspCore isp(IspConfig{}, ComputeModelConfig{});

    Tick prev_pud = 0, prev_isp = 0, prev_ifp = 0;
    for (std::uint32_t lanes = 1024; lanes <= 65536; lanes *= 2) {
        if (pudSupports(op)) {
            const Tick t = pud.estimate(op, 8, lanes);
            ASSERT_GE(t, prev_pud);
            prev_pud = t;
        }
        if (ifpSupports(op)) {
            const Tick t = ifp.estimate(op, 8, 2, 2, lanes);
            ASSERT_GE(t, prev_ifp);
            prev_ifp = t;
        }
        const Tick t = isp.estimate(op, 8, lanes, 2, true);
        ASSERT_GE(t, prev_isp);
        prev_isp = t;
    }
}

INSTANTIATE_TEST_SUITE_P(Ops, MonotoneLanes,
                         ::testing::Values(OpCode::And, OpCode::Xor,
                                           OpCode::Add, OpCode::Mul,
                                           OpCode::Select,
                                           OpCode::Copy));

} // namespace
} // namespace conduit
