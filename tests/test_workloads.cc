/**
 * @file
 * Tests for the workload generators: every kernel compiles through
 * the vectorizer, and its characterization approximates Table 3.
 */

#include <gtest/gtest.h>

#include "src/vectorizer/vectorizer.hh"
#include "src/workloads/workloads.hh"

namespace conduit
{
namespace
{

VectorizedProgram
compileWorkload(WorkloadId id, double scale = 0.5)
{
    WorkloadParams p;
    p.scale = scale;
    VectorizeOptions vo;
    vo.vectorLanes = 16384;
    return Vectorizer(vo).run(buildWorkload(id, p));
}

TEST(Workloads, AllSixBuildAndVectorize)
{
    for (WorkloadId id : allWorkloads()) {
        auto vp = compileWorkload(id);
        EXPECT_GT(vp.program.instrs.size(), 50u) << workloadName(id);
        EXPECT_GT(vp.program.footprintPages, 0u) << workloadName(id);
        EXPECT_GT(vp.report.vectorizableFraction, 0.0)
            << workloadName(id);
    }
}

TEST(Workloads, NamesMatchPaper)
{
    EXPECT_EQ(workloadName(WorkloadId::Aes), "AES");
    EXPECT_EQ(workloadName(WorkloadId::XorFilter), "XOR Filter");
    EXPECT_EQ(workloadName(WorkloadId::Heat3d), "heat-3d");
    EXPECT_EQ(workloadName(WorkloadId::Jacobi1d), "jacobi-1d");
    EXPECT_EQ(workloadName(WorkloadId::LlamaInference),
              "LlaMA2 Inference");
    EXPECT_EQ(workloadName(WorkloadId::LlmTraining), "LLM Training");
}

TEST(Workloads, AesIsBitwiseDominatedAndHighReuse)
{
    auto vp = compileWorkload(WorkloadId::Aes);
    // Table 3: 65% vectorizable code, 87% low-latency ops, reuse 15.2.
    EXPECT_NEAR(vp.report.vectorizableFraction, 0.65, 0.12);
    EXPECT_GT(vp.report.lowFraction, 0.75);
    EXPECT_LT(vp.report.highFraction, 0.05);
    EXPECT_GT(vp.report.avgReuse, 10.0);
}

TEST(Workloads, XorFilterIsMostlyScalarMediumOps)
{
    auto vp = compileWorkload(WorkloadId::XorFilter);
    // Table 3: 16% vectorizable, 98% medium ops.
    EXPECT_LT(vp.report.vectorizableFraction, 0.35);
    EXPECT_GT(vp.report.medFraction, 0.90);
    EXPECT_LT(vp.report.avgReuse, 6.0);
}

TEST(Workloads, StencilsAreHighlyVectorizable)
{
    auto heat = compileWorkload(WorkloadId::Heat3d);
    EXPECT_GT(heat.report.vectorizableFraction, 0.85);
    EXPECT_NEAR(heat.report.medFraction, 0.60, 0.12);
    EXPECT_NEAR(heat.report.highFraction, 0.40, 0.12);

    auto jac = compileWorkload(WorkloadId::Jacobi1d);
    EXPECT_GT(jac.report.vectorizableFraction, 0.70);
    EXPECT_NEAR(jac.report.medFraction, 0.67, 0.12);
    EXPECT_NEAR(jac.report.highFraction, 0.33, 0.12);
    EXPECT_LT(jac.report.avgReuse, heat.report.avgReuse);
}

TEST(Workloads, LlmKernelsMixMediumAndHighOps)
{
    auto inf = compileWorkload(WorkloadId::LlamaInference, 0.25);
    EXPECT_NEAR(inf.report.medFraction, 0.53, 0.15);
    EXPECT_NEAR(inf.report.highFraction, 0.47, 0.15);
    EXPECT_GT(inf.report.vectorizableFraction, 0.60);

    auto tr = compileWorkload(WorkloadId::LlmTraining, 0.25);
    EXPECT_GT(tr.report.medFraction, 0.75);
    EXPECT_LT(tr.report.highFraction, 0.25);
}

TEST(Workloads, ScaleGrowsFootprintAndWork)
{
    auto small = compileWorkload(WorkloadId::Aes, 0.25);
    auto big = compileWorkload(WorkloadId::Aes, 1.0);
    EXPECT_GT(big.program.footprintPages,
              small.program.footprintPages);
    EXPECT_GT(big.program.instrs.size(), small.program.instrs.size());
}

TEST(CaseStudies, ThreeClassesBuild)
{
    for (CaseStudyClass c :
         {CaseStudyClass::IoIntensive, CaseStudyClass::ComputeIntensive,
          CaseStudyClass::Mixed}) {
        WorkloadParams p;
        p.scale = 0.25;
        LoopProgram lp = buildCaseStudy(c, p);
        VectorizeOptions vo;
        vo.vectorLanes = 16384;
        auto vp = Vectorizer(vo).run(lp);
        EXPECT_GT(vp.program.instrs.size(), 10u) << caseStudyName(c);
    }
}

TEST(CaseStudies, IoIntensiveIsBitwiseSinglePass)
{
    WorkloadParams p;
    p.scale = 0.25;
    VectorizeOptions vo;
    vo.vectorLanes = 16384;
    auto vp = Vectorizer(vo).run(
        buildCaseStudy(CaseStudyClass::IoIntensive, p));
    EXPECT_GT(vp.report.lowFraction, 0.9);
    EXPECT_LT(vp.report.avgReuse, 3.0);
}

TEST(CaseStudies, ComputeIntensiveHasHighLatencyOps)
{
    WorkloadParams p;
    p.scale = 0.25;
    VectorizeOptions vo;
    vo.vectorLanes = 16384;
    auto vp = Vectorizer(vo).run(
        buildCaseStudy(CaseStudyClass::ComputeIntensive, p));
    EXPECT_GT(vp.report.highFraction, 0.15);
    EXPECT_GT(vp.report.avgReuse, 3.0);
}

/** Determinism across builds (parameterized over workloads). */
class WorkloadDeterminism
    : public ::testing::TestWithParam<WorkloadId>
{
};

TEST_P(WorkloadDeterminism, SameScaleSameProgram)
{
    auto a = compileWorkload(GetParam(), 0.3);
    auto b = compileWorkload(GetParam(), 0.3);
    ASSERT_EQ(a.program.instrs.size(), b.program.instrs.size());
    EXPECT_EQ(a.program.footprintPages, b.program.footprintPages);
    EXPECT_DOUBLE_EQ(a.report.avgReuse, b.report.avgReuse);
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadDeterminism,
                         ::testing::ValuesIn(allWorkloads()));

} // namespace
} // namespace conduit
