/**
 * @file
 * End-to-end tests through the Simulation facade: the headline
 * orderings the paper reports must hold on the simulated system.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/simulation.hh"

namespace conduit
{
namespace
{

SimOptions
fastOptions()
{
    SimOptions so;
    so.workload.scale = 0.25;
    return so;
}

TEST(Simulation, CompileCachesPrograms)
{
    Simulation sim(fastOptions());
    const auto &a = sim.compile(WorkloadId::Aes);
    const auto &b = sim.compile(WorkloadId::Aes);
    EXPECT_EQ(&a, &b);
}

TEST(Simulation, EveryPolicyRunsEveryWorkload)
{
    Simulation sim(fastOptions());
    for (WorkloadId id :
         {WorkloadId::Aes, WorkloadId::Jacobi1d}) {
        for (const char *pol :
             {"Conduit", "DM-Offloading", "BW-Offloading", "Ideal",
              "ISP", "PuD-SSD", "Flash-Cosmos", "Ares-Flash"}) {
            auto r = sim.run(id, pol);
            EXPECT_GT(r.execTime, 0u) << pol;
            EXPECT_GT(r.energyJ(), 0.0) << pol;
            EXPECT_EQ(r.policy, pol);
        }
        auto cpu = sim.runHost(id, false);
        auto gpu = sim.runHost(id, true);
        EXPECT_GT(cpu.execTime, 0u);
        EXPECT_GT(gpu.execTime, 0u);
    }
}

TEST(Simulation, IdealUpperBoundsAllRealizablePolicies)
{
    Simulation sim(fastOptions());
    for (WorkloadId id : allWorkloads()) {
        const Tick ideal = sim.run(id, "Ideal").execTime;
        for (const char *pol :
             {"Conduit", "DM-Offloading", "BW-Offloading", "ISP"}) {
            EXPECT_LE(ideal, sim.run(id, pol).execTime)
                << workloadName(id) << " " << pol;
        }
    }
}

TEST(Simulation, ConduitBeatsPriorOffloadingOnAverage)
{
    Simulation sim(fastOptions());
    double log_dm = 0.0, log_bw = 0.0, log_isp = 0.0;
    int n = 0;
    for (WorkloadId id : allWorkloads()) {
        const double conduit =
            static_cast<double>(sim.run(id, "Conduit").execTime);
        log_dm += std::log(
            static_cast<double>(sim.run(id, "DM-Offloading").execTime) /
            conduit);
        log_bw += std::log(
            static_cast<double>(sim.run(id, "BW-Offloading").execTime) /
            conduit);
        log_isp += std::log(
            static_cast<double>(sim.run(id, "ISP").execTime) / conduit);
        ++n;
    }
    // Geometric-mean slowdowns of the baselines vs Conduit (Fig. 7a:
    // paper reports 1.8x vs DM, 2.0x vs BW, 3.3x vs ISP).
    EXPECT_GT(std::exp(log_dm / n), 1.2);
    EXPECT_GT(std::exp(log_bw / n), 1.2);
    EXPECT_GT(std::exp(log_isp / n), 1.5);
}

TEST(Simulation, ConduitBeatsHostCpuOnAverage)
{
    Simulation sim(fastOptions());
    double acc = 0.0;
    int n = 0;
    for (WorkloadId id : allWorkloads()) {
        const double cpu =
            static_cast<double>(sim.runHost(id, false).execTime);
        const double conduit =
            static_cast<double>(sim.run(id, "Conduit").execTime);
        acc += std::log(cpu / conduit);
        ++n;
    }
    // Fig. 7a: 4.2x average speedup over CPU; require a clear win.
    EXPECT_GT(std::exp(acc / n), 2.0);
}

TEST(Simulation, ConduitReducesEnergyVsHost)
{
    Simulation sim(fastOptions());
    double acc = 0.0;
    int n = 0;
    for (WorkloadId id : allWorkloads()) {
        const double cpu = sim.runHost(id, false).energyJ();
        const double conduit = sim.run(id, "Conduit").energyJ();
        acc += std::log(cpu / conduit);
        ++n;
    }
    // Fig. 7b: 78.2% average energy reduction vs CPU.
    EXPECT_GT(std::exp(acc / n), 2.0);
}

TEST(Simulation, DmOffloadingOverusesIfpOnComputeWork)
{
    // §6.4: DM-Offloading pins arithmetic to flash; Conduit spreads.
    Simulation sim(fastOptions());
    auto dm = sim.run(WorkloadId::LlmTraining, "DM-Offloading");
    auto conduit = sim.run(WorkloadId::LlmTraining, "Conduit");
    const auto ifp = static_cast<int>(Target::Ifp);
    EXPECT_GT(dm.perResource[ifp] * 2,
              dm.instrCount); // DM sends the majority to IFP
    EXPECT_LT(conduit.perResource[ifp], dm.perResource[ifp]);
    EXPECT_LT(conduit.execTime, dm.execTime);
}

TEST(Simulation, LlamaAvoidsIfpMultiplication)
{
    // Fig. 9: Conduit and Ideal avoid IFP for LlaMA2's multiplies.
    Simulation sim(fastOptions());
    auto conduit = sim.run(WorkloadId::LlamaInference, "Conduit");
    auto ideal = sim.run(WorkloadId::LlamaInference, "Ideal");
    const auto ifp = static_cast<int>(Target::Ifp);
    EXPECT_LT(static_cast<double>(conduit.perResource[ifp]),
              0.10 * static_cast<double>(conduit.instrCount));
    EXPECT_LT(static_cast<double>(ideal.perResource[ifp]),
              0.10 * static_cast<double>(ideal.instrCount));
}

TEST(Simulation, MemoryBoundWorkloadsBarelyUseIsp)
{
    // Fig. 9: AES/XOR Filter offload well under a few percent of
    // vector instructions to the controller core.
    Simulation sim(fastOptions());
    auto aes = sim.run(WorkloadId::Aes, "Conduit");
    const auto isp = static_cast<int>(Target::Isp);
    EXPECT_LT(static_cast<double>(aes.perResource[isp]),
              0.10 * static_cast<double>(aes.instrCount));
}

TEST(Simulation, ConduitTailLatencyBeatsBwOffloading)
{
    // Fig. 8 shape: contention-aware offloading shortens the tail.
    Simulation sim(fastOptions());
    auto conduit = sim.run(WorkloadId::LlamaInference, "Conduit");
    auto bw = sim.run(WorkloadId::LlamaInference, "BW-Offloading");
    EXPECT_LT(conduit.latencyUs.percentile(99),
              bw.latencyUs.percentile(99));
    EXPECT_LT(conduit.latencyUs.percentile(99.99),
              bw.latencyUs.percentile(99.99));
}

TEST(Simulation, RunsAreReproducible)
{
    Simulation a(fastOptions()), b(fastOptions());
    auto r1 = a.run(WorkloadId::Heat3d, "Conduit");
    auto r2 = b.run(WorkloadId::Heat3d, "Conduit");
    EXPECT_EQ(r1.execTime, r2.execTime);
    EXPECT_EQ(r1.perResource, r2.perResource);
}

TEST(Simulation, CustomPolicyObjectsWork)
{
    // Public-API extensibility: user-defined policy (always-PuD with
    // ISP fallback) plugs into the same run path.
    class MyPolicy : public OffloadPolicy
    {
      public:
        Target
        select(const VecInstruction &vi, const CostFeatures &f) override
        {
            if (!vi.vectorized ||
                !f.supported[static_cast<int>(Target::Pud)])
                return Target::Isp;
            return Target::Pud;
        }
        std::string name() const override { return "my-policy"; }
    };
    Simulation sim(fastOptions());
    MyPolicy pol;
    auto r = sim.run(WorkloadId::Jacobi1d, pol);
    EXPECT_EQ(r.policy, "my-policy");
    EXPECT_GT(r.execTime, 0u);
}

} // namespace
} // namespace conduit
