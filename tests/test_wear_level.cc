/**
 * @file
 * Background wear-leveler tests.
 *
 * The contracts under test: with wearLevelEnabled=false (the
 * default) the subsystem is inert — zero migrations, and the device
 * behaves byte-identically to a run where the leveler's knobs never
 * existed (same knobs, different gap, same results); with it
 * enabled, cold full blocks migrate out of low wear during scrub
 * passes and the migrations are deterministic across repeats.
 */

#include <gtest/gtest.h>

#include "src/core/device.hh"

namespace conduit
{
namespace
{

/** Serial chain over disjoint page-sized vectors (see test_engine). */
std::shared_ptr<const Program>
chainProgram(const std::string &name, std::size_t n)
{
    auto prog = std::make_shared<Program>();
    prog->name = name;
    prog->pageBytes = 4096;
    for (std::size_t i = 0; i < n; ++i) {
        VecInstruction vi;
        vi.id = i;
        vi.op = OpCode::Add;
        vi.elemBits = 8;
        vi.lanes = 16384;
        vi.srcs = {Operand{12 * i, 4}, Operand{12 * i + 4, 4}};
        vi.dst = Operand{12 * i + 8, 4};
        if (i > 0)
            vi.deps = {i - 1};
        prog->instrs.push_back(vi);
    }
    prog->footprintPages = 12 * n + 4;
    return prog;
}

/**
 * A small device under GC churn with frequent scrub passes: a
 * bounded page pool recycles regions job after job, so the FTL
 * erases churn blocks repeatedly while blocks holding the live
 * tail stay cold — exactly the erase-count spread the leveler
 * closes.
 */
DeviceOptions
churnOptions(bool wearLevel)
{
    SsdConfig cfg = SsdConfig::scaled(1.0 / 256.0);
    cfg.nand.channels = 2;
    cfg.nand.diesPerChannel = 2;
    cfg.nand.planesPerDie = 1;
    cfg.nand.blocksPerPlane = 8;
    cfg.nand.pagesPerBlock = 32;
    cfg.gcThreshold = 0.30;
    cfg.reliability.enabled = true;
    cfg.reliability.scrubIntervalTicks = usToTicks(200.0);
    cfg.reliability.wearLevelEnabled = wearLevel;
    cfg.reliability.wearLevelGap = 2;

    DeviceOptions d;
    d.config = cfg;
    d.retire = RetirePolicy::OnComplete;
    d.capacityPages = 600;
    d.engine.dramStagingFraction = 0.3;
    return d;
}

DeviceSnapshot
runChurn(bool wearLevel)
{
    const auto prog = chainProgram("churn", 24);
    Device dev(churnOptions(wearLevel));
    Tick at = 0;
    for (std::size_t i = 0; i < 24; ++i) {
        JobSpec spec;
        spec.program = prog;
        spec.arrival = at;
        dev.submit(spec);
        at += usToTicks(120.0);
    }
    return dev.drain();
}

TEST(WearLevel, DisabledIsInert)
{
    const DeviceSnapshot snap = runChurn(false);
    EXPECT_EQ(snap.reliability.wearLevelMigrations, 0u);
    EXPECT_GT(snap.reliability.scrubPasses, 0u);
}

TEST(WearLevel, EnabledMigratesColdBlocks)
{
    const DeviceSnapshot snap = runChurn(true);
    EXPECT_GT(snap.reliability.wearLevelMigrations, 0u);
}

TEST(WearLevel, MigrationsAreDeterministic)
{
    const DeviceSnapshot a = runChurn(true);
    const DeviceSnapshot b = runChurn(true);
    EXPECT_EQ(a.reliability.wearLevelMigrations,
              b.reliability.wearLevelMigrations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
}

/**
 * The enabled/disabled runs share every input except the wear-level
 * switch; migrations rewrite cold blocks, so the simulated history
 * (event count) must differ once migrations happen — the leveler is
 * observable — while the disabled run matches a second disabled run
 * exactly — the switch is the only coupling.
 */
TEST(WearLevel, DisabledRunsAreByteStable)
{
    const DeviceSnapshot a = runChurn(false);
    const DeviceSnapshot b = runChurn(false);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i)
        EXPECT_EQ(a.jobs[i].end, b.jobs[i].end) << i;
}

} // namespace
} // namespace conduit
