/**
 * @file
 * Offloading policies: Conduit's holistic cost function and the prior
 * approaches it is evaluated against (§5.3).
 *
 * Every policy sees the same per-instruction feature vector (the six
 * features of Table 1, precomputed by the engine) and returns a
 * target resource. Differences between techniques therefore come
 * only from the decision rule, mirroring the paper's methodology
 * where all baselines run on the same simulator.
 */

#ifndef CONDUIT_OFFLOAD_POLICY_HH
#define CONDUIT_OFFLOAD_POLICY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ir/instruction.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** SSD computation resources (the three NDP paradigms). */
enum class Target : std::uint8_t { Isp = 0, Pud = 1, Ifp = 2 };

constexpr std::size_t kNumTargets = 3;

constexpr std::string_view
targetName(Target t)
{
    switch (t) {
      case Target::Isp: return "ISP";
      case Target::Pud: return "PuD-SSD";
      case Target::Ifp: return "IFP";
    }
    return "?";
}

/**
 * The per-instruction feature vector (Table 1) as computed by the
 * engine at decision time.
 */
struct CostFeatures
{
    /** Expected computation latency per resource (latency_comp). */
    std::array<Tick, kNumTargets> comp{};

    /** Data-movement latency per resource (latency_dm, static). */
    std::array<Tick, kNumTargets> dm{};

    /** Resource queueing delay per resource (delay_queue). */
    std::array<Tick, kNumTargets> queue{};

    /** Data-dependence delay (delay_dd, operand availability). */
    Tick depDelay = 0;

    /** Operation supported by the resource's native ISA. */
    std::array<bool, kNumTargets> supported{};

    /** Bytes that would move if the resource were chosen. */
    std::array<std::uint64_t, kNumTargets> dmBytes{};

    /** Cumulative bandwidth utilization of the resource's bus. */
    std::array<double, kNumTargets> bwUtil{};

    /** Eqn. 1: total offloading latency for resource @p t. */
    Tick
    totalLatency(Target t) const
    {
        const auto i = static_cast<std::size_t>(t);
        return comp[i] + dm[i] + std::max(depDelay, queue[i]);
    }
};

/**
 * Abstract offloading policy.
 */
class OffloadPolicy
{
  public:
    virtual ~OffloadPolicy() = default;

    /** Pick the execution target for @p instr. */
    virtual Target select(const VecInstruction &instr,
                          const CostFeatures &f) = 0;

    /** Display name used in bench tables. */
    virtual std::string name() const = 0;

    /**
     * True if the engine should run in idealized mode for this
     * policy (no contention, zero data-movement latency, §5.3).
     */
    virtual bool ideal() const { return false; }
};

/**
 * Conduit's holistic cost function (Eqn. 1/2): argmin over supported
 * resources of comp + dm + max(dep, queue). Feature-ablation flags
 * support the ablation bench.
 */
class ConduitPolicy : public OffloadPolicy
{
  public:
    struct Ablation
    {
        bool useQueueDelay = true;
        bool useDmLatency = true;
        bool useDepDelay = true;
    };

    ConduitPolicy() = default;
    explicit ConduitPolicy(Ablation ab) : ab_(ab) {}

    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;

    std::string name() const override;

  private:
    Ablation ab_;
};

/**
 * DM-Offloading: minimize operand data movement (ALP-style). Ties
 * break toward IFP (data is flash-resident), then PuD — the bias the
 * paper observes pushes this policy into flash contention.
 */
class DmOffloadPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "DM-Offloading"; }
};

/**
 * BW-Offloading: pick the resource whose bus/compute path has the
 * lowest bandwidth utilization (TOM-style), ignoring movement cost.
 */
class BwOffloadPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "BW-Offloading"; }
};

/**
 * Ideal: no contention, zero movement latency, lowest computation
 * latency (upper bound, not realizable; §5.3).
 */
class IdealPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "Ideal"; }
    bool ideal() const override { return true; }
};

/** All computation on the controller core (Active-Flash-style ISP). */
class IspOnlyPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &,
                  const CostFeatures &) override
    {
        return Target::Isp;
    }
    std::string name() const override { return "ISP"; }
};

/** PuD for every supported op, controller core otherwise (MIMDRAM). */
class PudOnlyPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "PuD-SSD"; }
};

/** Flash-Cosmos: bulk-bitwise in flash, everything else on ISP. */
class FlashCosmosPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "Flash-Cosmos"; }
};

/** Ares-Flash: bitwise + integer arithmetic in flash, rest on ISP. */
class AresFlashPolicy : public OffloadPolicy
{
  public:
    Target select(const VecInstruction &instr,
                  const CostFeatures &f) override;
    std::string name() const override { return "Ares-Flash"; }
};

/** Factory by display name (used by benches/examples). */
std::unique_ptr<OffloadPolicy> makePolicy(const std::string &name);

/** Every display name makePolicy() accepts, in evaluation order. */
const std::vector<std::string> &policyNames();

} // namespace conduit

#endif // CONDUIT_OFFLOAD_POLICY_HH
