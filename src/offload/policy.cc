#include "src/offload/policy.hh"

#include <limits>
#include <stdexcept>

namespace conduit
{

namespace
{

constexpr std::array<Target, kNumTargets> kAllTargets = {
    Target::Isp, Target::Pud, Target::Ifp};

/** Residual scalar code can only run on the general-purpose core. */
bool
forcedToIsp(const VecInstruction &instr)
{
    return !instr.vectorized;
}

} // namespace

Target
ConduitPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    Tick best_cost = kMaxTick;
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        Tick cost = f.comp[i];
        if (ab_.useDmLatency)
            cost += f.dm[i];
        const Tick dep = ab_.useDepDelay ? f.depDelay : 0;
        const Tick queue = ab_.useQueueDelay ? f.queue[i] : 0;
        cost += std::max(dep, queue);
        if (cost < best_cost) {
            best_cost = cost;
            best = t;
        }
    }
    return best;
}

std::string
ConduitPolicy::name() const
{
    std::string n = "Conduit";
    if (!ab_.useQueueDelay)
        n += "-noQueue";
    if (!ab_.useDmLatency)
        n += "-noDM";
    if (!ab_.useDepDelay)
        n += "-noDep";
    return n;
}

Target
DmOffloadPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    // Minimize bytes moved; prefer IFP then PuD on ties, since data
    // begins flash-resident and this class of techniques chases
    // movement reduction above all else.
    static constexpr std::array<Target, kNumTargets> kPreference = {
        Target::Ifp, Target::Pud, Target::Isp};
    Target best = Target::Isp;
    std::uint64_t best_bytes = ~0ULL;
    for (Target t : kPreference) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.dmBytes[i] < best_bytes) {
            best_bytes = f.dmBytes[i];
            best = t;
        }
    }
    return best;
}

Target
BwOffloadPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    double best_util = std::numeric_limits<double>::infinity();
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.bwUtil[i] < best_util) {
            best_util = f.bwUtil[i];
            best = t;
        }
    }
    return best;
}

Target
IdealPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    Tick best_cost = kMaxTick;
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.comp[i] < best_cost) {
            best_cost = f.comp[i];
            best = t;
        }
    }
    return best;
}

Target
PudOnlyPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    return f.supported[static_cast<std::size_t>(Target::Pud)]
        ? Target::Pud
        : Target::Isp;
}

Target
FlashCosmosPolicy::select(const VecInstruction &instr,
                          const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    const bool bitwise = opFamily(instr.op) == OpFamily::Bitwise &&
        instr.op != OpCode::ShiftL && instr.op != OpCode::ShiftR;
    if (bitwise && f.supported[static_cast<std::size_t>(Target::Ifp)])
        return Target::Ifp;
    return Target::Isp;
}

Target
AresFlashPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    return f.supported[static_cast<std::size_t>(Target::Ifp)]
        ? Target::Ifp
        : Target::Isp;
}

std::unique_ptr<OffloadPolicy>
makePolicy(const std::string &name)
{
    if (name == "Conduit")
        return std::make_unique<ConduitPolicy>();
    if (name == "DM-Offloading")
        return std::make_unique<DmOffloadPolicy>();
    if (name == "BW-Offloading")
        return std::make_unique<BwOffloadPolicy>();
    if (name == "Ideal")
        return std::make_unique<IdealPolicy>();
    if (name == "ISP")
        return std::make_unique<IspOnlyPolicy>();
    if (name == "PuD-SSD")
        return std::make_unique<PudOnlyPolicy>();
    if (name == "Flash-Cosmos")
        return std::make_unique<FlashCosmosPolicy>();
    if (name == "Ares-Flash")
        return std::make_unique<AresFlashPolicy>();
    throw std::invalid_argument("makePolicy: unknown policy " + name);
}

} // namespace conduit
