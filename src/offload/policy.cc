#include "src/offload/policy.hh"

#include <limits>
#include <stdexcept>
#include <utility>

namespace conduit
{

namespace
{

constexpr std::array<Target, kNumTargets> kAllTargets = {
    Target::Isp, Target::Pud, Target::Ifp};

/** Residual scalar code can only run on the general-purpose core. */
bool
forcedToIsp(const VecInstruction &instr)
{
    return !instr.vectorized;
}

} // namespace

Target
ConduitPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    Tick best_cost = kMaxTick;
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        Tick cost = f.comp[i];
        if (ab_.useDmLatency)
            cost += f.dm[i];
        const Tick dep = ab_.useDepDelay ? f.depDelay : 0;
        const Tick queue = ab_.useQueueDelay ? f.queue[i] : 0;
        cost += std::max(dep, queue);
        if (cost < best_cost) {
            best_cost = cost;
            best = t;
        }
    }
    return best;
}

std::string
ConduitPolicy::name() const
{
    std::string n = "Conduit";
    if (!ab_.useQueueDelay)
        n += "-noQueue";
    if (!ab_.useDmLatency)
        n += "-noDM";
    if (!ab_.useDepDelay)
        n += "-noDep";
    return n;
}

Target
DmOffloadPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    // Minimize bytes moved; prefer IFP then PuD on ties, since data
    // begins flash-resident and this class of techniques chases
    // movement reduction above all else.
    static constexpr std::array<Target, kNumTargets> kPreference = {
        Target::Ifp, Target::Pud, Target::Isp};
    Target best = Target::Isp;
    std::uint64_t best_bytes = ~0ULL;
    for (Target t : kPreference) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.dmBytes[i] < best_bytes) {
            best_bytes = f.dmBytes[i];
            best = t;
        }
    }
    return best;
}

Target
BwOffloadPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    double best_util = std::numeric_limits<double>::infinity();
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.bwUtil[i] < best_util) {
            best_util = f.bwUtil[i];
            best = t;
        }
    }
    return best;
}

Target
IdealPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    Target best = Target::Isp;
    Tick best_cost = kMaxTick;
    for (Target t : kAllTargets) {
        const auto i = static_cast<std::size_t>(t);
        if (!f.supported[i])
            continue;
        if (f.comp[i] < best_cost) {
            best_cost = f.comp[i];
            best = t;
        }
    }
    return best;
}

Target
PudOnlyPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    return f.supported[static_cast<std::size_t>(Target::Pud)]
        ? Target::Pud
        : Target::Isp;
}

Target
FlashCosmosPolicy::select(const VecInstruction &instr,
                          const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    const bool bitwise = opFamily(instr.op) == OpFamily::Bitwise &&
        instr.op != OpCode::ShiftL && instr.op != OpCode::ShiftR;
    if (bitwise && f.supported[static_cast<std::size_t>(Target::Ifp)])
        return Target::Ifp;
    return Target::Isp;
}

Target
AresFlashPolicy::select(const VecInstruction &instr, const CostFeatures &f)
{
    if (forcedToIsp(instr))
        return Target::Isp;
    return f.supported[static_cast<std::size_t>(Target::Ifp)]
        ? Target::Ifp
        : Target::Isp;
}

namespace
{

/**
 * Single source of truth for the policy registry: makePolicy() and
 * policyNames() both read this table, so a new policy registers its
 * name and factory in one place. Evaluation order.
 */
using PolicyFactoryFn = std::unique_ptr<OffloadPolicy> (*)();

const std::vector<std::pair<std::string, PolicyFactoryFn>> &
policyTable()
{
    static const std::vector<std::pair<std::string, PolicyFactoryFn>>
        table = {
            {"ISP", [] { return std::unique_ptr<OffloadPolicy>(
                             std::make_unique<IspOnlyPolicy>()); }},
            {"PuD-SSD", [] { return std::unique_ptr<OffloadPolicy>(
                                 std::make_unique<PudOnlyPolicy>()); }},
            {"Flash-Cosmos",
             [] { return std::unique_ptr<OffloadPolicy>(
                      std::make_unique<FlashCosmosPolicy>()); }},
            {"Ares-Flash",
             [] { return std::unique_ptr<OffloadPolicy>(
                      std::make_unique<AresFlashPolicy>()); }},
            {"BW-Offloading",
             [] { return std::unique_ptr<OffloadPolicy>(
                      std::make_unique<BwOffloadPolicy>()); }},
            {"DM-Offloading",
             [] { return std::unique_ptr<OffloadPolicy>(
                      std::make_unique<DmOffloadPolicy>()); }},
            {"Conduit", [] { return std::unique_ptr<OffloadPolicy>(
                                 std::make_unique<ConduitPolicy>()); }},
            {"Ideal", [] { return std::unique_ptr<OffloadPolicy>(
                               std::make_unique<IdealPolicy>()); }},
        };
    return table;
}

} // namespace

std::unique_ptr<OffloadPolicy>
makePolicy(const std::string &name)
{
    for (const auto &[label, make] : policyTable()) {
        if (label == name)
            return make();
    }
    std::string known;
    for (const auto &n : policyNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    throw std::invalid_argument("makePolicy: unknown policy '" + name +
                                "'; known policies: " + known);
}

const std::vector<std::string> &
policyNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto &entry : policyTable())
            n.push_back(entry.first);
        return n;
    }();
    return names;
}

} // namespace conduit
