#include "src/ftl/ftl.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "src/reliability/reliability.hh"

namespace conduit
{

namespace
{
/** Fraction of physical blocks hidden as over-provisioning. */
constexpr double kOverProvision = 0.07;
} // namespace

Ftl::Ftl(NandArray &nand, const SsdConfig &cfg, StatSet *stats)
    : nand_(nand), cfg_(cfg), stats_(stats)
{
    const NandConfig &n = cfg_.nand;
    const std::uint64_t total_blocks = n.totalBlocks();
    blocks_.resize(total_blocks);
    for (auto &b : blocks_) {
        b.valid.assign(n.pagesPerBlock, false);
        b.owner.assign(n.pagesPerBlock, kNoLpn);
    }
    freeBlockCount_ = total_blocks;

    logicalPages_ = static_cast<std::uint64_t>(
        static_cast<double>(n.totalPages()) * (1.0 - kOverProvision));
    l2p_.assign(logicalPages_, kNoPpn);

    const std::uint64_t plane_slots = static_cast<std::uint64_t>(
        n.channels) * n.diesPerChannel * n.planesPerDie;
    openBlock_.assign(plane_slots, ~0ULL);

    mapCacheCapacity_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(logicalPages_) *
                cfg_.mappingCacheCoverage));
    mapLru_.reset(logicalPages_);

    if (stats_) {
        statMapHits_ = &stats_->counter("ftl.map_hits");
        statMapMisses_ = &stats_->counter("ftl.map_misses");
        statGcRuns_ = &stats_->counter("ftl.gc_runs");
        statGcMigrations_ = &stats_->counter("ftl.gc_migrations");
    }
}

std::uint64_t
Ftl::blockIndex(const FlashAddress &a) const
{
    return nand_.blockIndexOf(a);
}

bool
Ftl::isOpenBlock(std::uint64_t bi) const
{
    // A plane's current write target stays referenced by openBlock_
    // even once full (it is only replaced on the slot's next
    // allocation). Collecting it would reset writePtr under that
    // live reference and the next allocation would program into a
    // freed — or retired — block.
    const std::uint64_t slot = bi / cfg_.nand.blocksPerPlane;
    return openBlock_[slot] == bi;
}

FlashAddress
Ftl::blockAddress(std::uint64_t bi) const
{
    const NandConfig &n = cfg_.nand;
    FlashAddress a;
    a.block = static_cast<std::uint32_t>(bi % n.blocksPerPlane);
    bi /= n.blocksPerPlane;
    a.plane = static_cast<std::uint32_t>(bi % n.planesPerDie);
    bi /= n.planesPerDie;
    a.die = static_cast<std::uint32_t>(bi % n.diesPerChannel);
    bi /= n.diesPerChannel;
    a.channel = static_cast<std::uint32_t>(bi);
    a.page = 0;
    return a;
}

std::uint64_t
Ftl::openBlockOn(std::uint64_t plane_slot)
{
    const NandConfig &n = cfg_.nand;
    // Wear-aware selection: the free block with the fewest erases on
    // this plane becomes the new open block (static wear-leveling).
    // If the plane ran dry, collect garbage on it first.
    const std::uint64_t base = plane_slot * n.blocksPerPlane;
    // Collect until a free block appears or no victim remains: one
    // collection need not free anything (the victim may retire), so
    // a single attempt would give up while reclaimable blocks still
    // sit on the plane. Each pass consumes one victim, so the loop
    // is bounded by the plane's block count.
    for (;;) {
        std::uint64_t best = ~0ULL;
        for (std::uint64_t b = base; b < base + n.blocksPerPlane;
             ++b) {
            if (!blocks_[b].free)
                continue;
            if (best == ~0ULL ||
                blocks_[b].eraseCount < blocks_[best].eraseCount) {
                best = b;
            }
        }
        if (best != ~0ULL) {
            blocks_[best].free = false;
            blocks_[best].writePtr = 0;
            --freeBlockCount_;
            return best;
        }
        if (!collectPlane(plane_slot, lastGcTick_))
            break;
    }
    throw std::runtime_error("Ftl: plane out of free blocks");
}

Ppn
Ftl::allocatePage(Tick now)
{
    const NandConfig &n = cfg_.nand;
    const std::uint64_t slots = openBlock_.size();
    // CWDP round-robin striping: consecutive writes land on
    // different channels/dies to maximize internal parallelism.
    const std::uint64_t slot = nextSlot_;
    nextSlot_ = (nextSlot_ + 1) % slots;
    if (openBlock_[slot] == ~0ULL ||
        blocks_[openBlock_[slot]].writePtr >= n.pagesPerBlock) {
        openBlock_[slot] = openBlockOn(slot);
    }
    BlockState &b = blocks_[openBlock_[slot]];
    FlashAddress a = blockAddress(openBlock_[slot]);
    a.page = b.writePtr++;
    (void)now;
    return nand_.encode(a);
}

void
Ftl::touchMapCache(Lpn lpn, bool &hit)
{
    // Both the member tallies and the StatSet counters are bumped
    // here, so the read path (translate) and the write path
    // (writePage) report mapping-cache traffic identically — the
    // StatSet used to miss every write-path touch.
    if (mapLru_.touch(lpn)) {
        hit = true;
        ++mapHits_;
        if (statMapHits_)
            statMapHits_->inc();
        return;
    }
    hit = false;
    ++mapMisses_;
    if (statMapMisses_)
        statMapMisses_->inc();
    if (mapLru_.size() > mapCacheCapacity_)
        mapLru_.popTail();
}

Ftl::Lookup
Ftl::translate(Lpn lpn, Tick now)
{
    (void)now;
    if (lpn >= logicalPages_)
        throw std::out_of_range("Ftl::translate: lpn out of range");
    Lookup r;
    bool hit = false;
    touchMapCache(lpn, hit);
    r.cacheHit = hit;
    r.latency = hit ? cfg_.overhead.l2pLookupDram
                    : cfg_.overhead.l2pLookupFlash;
    r.ppn = l2p_[lpn];
    return r;
}

Ppn
Ftl::physicalOf(Lpn lpn) const
{
    if (lpn >= logicalPages_)
        throw std::out_of_range("Ftl::physicalOf: lpn out of range");
    return l2p_[lpn];
}

Tick
Ftl::readPage(Lpn lpn, Tick now)
{
    Lookup lk = translate(lpn, now);
    if (lk.ppn == kNoPpn)
        throw std::logic_error("Ftl::readPage: unmapped lpn");
    auto iv = nand_.readPage(nand_.decode(lk.ppn), now + lk.latency);
    return iv.end;
}

void
Ftl::invalidate(Ppn ppn)
{
    if (ppn == kNoPpn)
        return;
    const FlashAddress a = nand_.decode(ppn);
    BlockState &b = blocks_[blockIndex(a)];
    if (b.valid[a.page]) {
        b.valid[a.page] = false;
        b.owner[a.page] = kNoLpn;
        --b.validCount;
    }
}

Ftl::WriteResult
Ftl::writePage(Lpn lpn, Tick now)
{
    if (lpn >= logicalPages_)
        throw std::out_of_range("Ftl::writePage: lpn out of range");
    bool hit = false;
    touchMapCache(lpn, hit);
    const Tick map_latency = hit ? cfg_.overhead.l2pLookupDram
                                 : cfg_.overhead.l2pLookupFlash;

    invalidate(l2p_[lpn]);
    const Ppn ppn = allocatePage(now);
    const FlashAddress a = nand_.decode(ppn);
    BlockState &b = blocks_[blockIndex(a)];
    b.valid[a.page] = true;
    b.owner[a.page] = lpn;
    ++b.validCount;
    l2p_[lpn] = ppn;

    auto iv = nand_.programPage(a, now + map_latency);
    maybeGc(iv.end);
    return {ppn, iv.end};
}

void
Ftl::preload(std::uint64_t pages)
{
    if (pages > logicalPages_)
        throw std::invalid_argument("Ftl::preload: exceeds capacity");
    for (Lpn lpn = 0; lpn < pages; ++lpn) {
        const Ppn ppn = allocatePage(0);
        const FlashAddress a = nand_.decode(ppn);
        BlockState &b = blocks_[blockIndex(a)];
        b.valid[a.page] = true;
        b.owner[a.page] = lpn;
        ++b.validCount;
        l2p_[lpn] = ppn;
    }
}

bool
Ftl::collectBlock(std::uint64_t victim, Tick now, bool scrub)
{
    const NandConfig &n = cfg_.nand;
    if (!scrub) {
        ++gcRuns_;
        if (statGcRuns_)
            statGcRuns_->inc();
    }

    BlockState &vb = blocks_[victim];
    vb.collecting = true;
    FlashAddress va = blockAddress(victim);
    Tick t = now;
    for (std::uint32_t p = 0; p < n.pagesPerBlock; ++p) {
        if (!vb.valid[p])
            continue;
        const Lpn lpn = vb.owner[p];
        va.page = p;
        // Migrate: sense the valid page, then program a fresh copy.
        auto rd = nand_.readPage(va, t);
        const Ppn dst = allocatePage(rd.end);
        const FlashAddress da = nand_.decode(dst);
        BlockState &db = blocks_[blockIndex(da)];
        db.valid[da.page] = true;
        db.owner[da.page] = lpn;
        ++db.validCount;
        auto wr = nand_.programPage(da, rd.end);
        l2p_[lpn] = dst;
        vb.valid[p] = false;
        vb.owner[p] = kNoLpn;
        --vb.validCount;
        t = wr.end;
        if (statGcMigrations_)
            statGcMigrations_->inc();
    }
    va.page = 0;
    nand_.eraseBlock(va, t);
    ++vb.eraseCount;
    vb.collecting = false;
    if (rel_) {
        rel_->noteErase(victim, t);
        if (rel_->retirePending(victim)) {
            // Bad-block management: the erase was this block's last.
            // It leaves the pool for good — over-provisioning
            // shrinks, so GC triggers earlier from here on.
            rel_->markRetired(victim);
            vb.bad = true;
            vb.free = false;
            vb.writePtr = 0;
            ++retiredBlocks_;
            return true;
        }
    }
    vb.free = true;
    vb.writePtr = 0;
    ++freeBlockCount_;
    return true;
}

bool
Ftl::scrubBlock(std::uint64_t block, Tick now)
{
    const NandConfig &n = cfg_.nand;
    const BlockState &b = blocks_.at(block);
    // Only full, closed blocks are refreshable: a plane's active
    // write target (even when full, it stays the slot's open block
    // until the next allocation) cannot be erased under it.
    if (b.free || b.bad || b.collecting ||
        b.writePtr < n.pagesPerBlock || isOpenBlock(block))
        return false;
    return collectBlock(block, now, /*scrub=*/true);
}

std::int64_t
Ftl::wearLevelCandidate(std::uint32_t gap) const
{
    const NandConfig &n = cfg_.nand;
    std::uint64_t coldest = ~0ULL;
    std::uint32_t maxErase = 0;
    for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
        const BlockState &bs = blocks_[b];
        if (bs.bad)
            continue;
        maxErase = std::max(maxErase, bs.eraseCount);
        // Eligibility mirrors scrubBlock: only a full, closed,
        // non-collecting block can be refreshed under itself.
        if (bs.free || bs.collecting ||
            bs.writePtr < n.pagesPerBlock || isOpenBlock(b))
            continue;
        if (coldest == ~0ULL ||
            bs.eraseCount < blocks_[coldest].eraseCount)
            coldest = b;
    }
    if (coldest == ~0ULL ||
        maxErase - blocks_[coldest].eraseCount <= gap)
        return -1;
    return static_cast<std::int64_t>(coldest);
}

bool
Ftl::collectPlane(std::uint64_t plane_slot, Tick now)
{
    // Reclaim the cheapest full, closed victim on this plane. Open
    // blocks (incl. the plane's current write target) are skipped.
    const NandConfig &n = cfg_.nand;
    const std::uint64_t base = plane_slot * n.blocksPerPlane;
    std::uint64_t victim = ~0ULL;
    for (std::uint64_t b = base; b < base + n.blocksPerPlane; ++b) {
        const BlockState &bs = blocks_[b];
        if (bs.free || bs.collecting ||
            bs.writePtr < n.pagesPerBlock || isOpenBlock(b))
            continue;
        if (bs.validCount >= n.pagesPerBlock)
            continue; // nothing reclaimable
        if (victim == ~0ULL ||
            bs.validCount < blocks_[victim].validCount) {
            victim = b;
        }
    }
    if (victim == ~0ULL)
        return false;
    return collectBlock(victim, now);
}

void
Ftl::maybeGc(Tick now)
{
    lastGcTick_ = now;
    const NandConfig &n = cfg_.nand;
    // Reclaim until the free pool recovers or no victim remains.
    for (int iter = 0; iter < 8; ++iter) {
        const double free_fraction =
            static_cast<double>(freeBlockCount_) /
            static_cast<double>(blocks_.size());
        if (free_fraction >= cfg_.gcThreshold)
            return;

        // Greedy victim selection: the full block with the fewest
        // valid pages costs the least migration work.
        std::uint64_t victim = ~0ULL;
        for (std::uint64_t bi = 0; bi < blocks_.size(); ++bi) {
            const BlockState &b = blocks_[bi];
            if (b.free || b.collecting ||
                b.writePtr < n.pagesPerBlock || isOpenBlock(bi))
                continue; // only full, closed blocks
            if (b.validCount >= n.pagesPerBlock)
                continue;
            if (victim == ~0ULL ||
                b.validCount < blocks_[victim].validCount) {
                victim = bi;
            }
        }
        if (victim == ~0ULL)
            return;
        collectBlock(victim, now);
    }
}

Ftl::Image
Ftl::capture() const
{
    Image img;
    img.l2p = l2p_;
    img.blocks = blocks_;
    img.openBlock = openBlock_;
    img.nextSlot = nextSlot_;
    img.freeBlockCount = freeBlockCount_;
    img.retiredBlocks = retiredBlocks_;
    img.gcRuns = gcRuns_;
    img.lastGcTick = lastGcTick_;
    img.mapCacheCapacity = mapCacheCapacity_;
    img.mapLru = mapLru_;
    img.mapHits = mapHits_;
    img.mapMisses = mapMisses_;
    return img;
}

void
Ftl::restore(const Image &img)
{
    if (img.l2p.size() != l2p_.size() ||
        img.blocks.size() != blocks_.size() ||
        img.openBlock.size() != openBlock_.size()) {
        throw std::invalid_argument(
            "Ftl::restore: image geometry mismatch");
    }
    l2p_ = img.l2p;
    blocks_ = img.blocks;
    openBlock_ = img.openBlock;
    nextSlot_ = img.nextSlot;
    freeBlockCount_ = img.freeBlockCount;
    retiredBlocks_ = img.retiredBlocks;
    gcRuns_ = img.gcRuns;
    lastGcTick_ = img.lastGcTick;
    mapCacheCapacity_ = img.mapCacheCapacity;
    mapLru_ = img.mapLru;
    mapHits_ = img.mapHits;
    mapMisses_ = img.mapMisses;
}

std::uint32_t
Ftl::maxErase() const
{
    std::uint32_t m = 0;
    for (const auto &b : blocks_)
        m = std::max(m, b.eraseCount);
    return m;
}

std::uint32_t
Ftl::minEraseOfUsed() const
{
    std::uint32_t m = ~0U;
    for (const auto &b : blocks_) {
        if (!b.free)
            m = std::min(m, b.eraseCount);
    }
    return m == ~0U ? 0 : m;
}

} // namespace conduit
