/**
 * @file
 * Flash Translation Layer.
 *
 * Implements the FTL functions the paper's simulator inherits from
 * MQSim (§5.1): logical-to-physical mapping with a demand-based
 * mapping cache (DFTL), page allocation striped across channels,
 * dies, and planes for parallelism, greedy garbage collection, and
 * wear-aware free-block selection.
 *
 * Conduit consults the L2P table on every offloading decision to
 * locate operands (§4.3.2 feature 2), so translate() models the
 * mapping-cache hit/miss latencies of §4.5 (100 ns hit in SSD DRAM,
 * 30 µs miss serviced from flash).
 */

#ifndef CONDUIT_FTL_FTL_HH
#define CONDUIT_FTL_FTL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/nand/nand.hh"
#include "src/sim/config.hh"
#include "src/sim/flat_lru.hh"
#include "src/sim/stats.hh"

namespace conduit
{

/** Logical page number. */
using Lpn = std::uint64_t;

constexpr Ppn kNoPpn = ~static_cast<Ppn>(0);
constexpr Lpn kNoLpn = ~static_cast<Lpn>(0);

/**
 * Page-mapping FTL with demand mapping cache, GC, wear awareness and
 * (when a reliability model is attached) bad-block management.
 */
class Ftl
{
  public:
    Ftl(NandArray &nand, const SsdConfig &cfg, StatSet *stats = nullptr);

    /**
     * Attach the reliability model (null detaches). With it set, a
     * collected block whose correction history demands retirement is
     * permanently removed from the free pool after its erase —
     * over-provisioning shrinks, GC runs hotter — and every erase
     * advances the model's wear state.
     */
    void setReliability(reliability::ReliabilityModel *rel)
    {
        rel_ = rel;
    }

    /**
     * Background scrub: refresh @p block by migrating its valid
     * pages to fresh locations and erasing it (resetting its
     * retention age in the reliability model). Only full, closed,
     * non-retired blocks are eligible.
     * @return true if the block was refreshed.
     */
    bool scrubBlock(std::uint64_t block, Tick now);

    /**
     * Background wear-leveling candidate: the lowest-erase-count
     * full, closed, non-retired block, provided its erase count
     * trails the pool's hottest block by more than @p gap. Cold
     * data sits in exactly these blocks — refreshing one
     * (scrubBlock) migrates the cold pages and returns the young
     * block to write service. Ties break on the lowest block index,
     * so the scan is deterministic.
     * @return The block index, or -1 when the pool is level enough
     *         (or no eligible block exists).
     */
    std::int64_t wearLevelCandidate(std::uint32_t gap) const;

    /** Result of an L2P lookup. */
    struct Lookup
    {
        Ppn ppn = kNoPpn;
        Tick latency = 0;
        bool cacheHit = true;
    };

    /** Result of a page write. */
    struct WriteResult
    {
        Ppn ppn = kNoPpn;
        Tick readyAt = 0;
    };

    /**
     * Translate @p lpn, modelling the mapping-cache. Never performs
     * media operations for the data itself.
     */
    Lookup translate(Lpn lpn, Tick now);

    /**
     * Current physical location without charging lookup latency.
     * Used for modelling decisions where the information is already
     * resident (e.g. precomputed feature tables).
     */
    Ppn physicalOf(Lpn lpn) const;

    /**
     * Read the data page at @p lpn: translation + die sensing.
     * @return Completion time of the sensing (data in page buffer).
     */
    Tick readPage(Lpn lpn, Tick now);

    /**
     * Write @p lpn out-of-place: allocate a fresh physical page,
     * program it, invalidate the old copy, and run GC if needed.
     */
    WriteResult writePage(Lpn lpn, Tick now);

    /**
     * Install the initial dataset: map @p pages logical pages to
     * physical pages (striped for maximum parallelism) without
     * charging simulated time, per the §4.4 assumption that all
     * application data resides in the SSD at start.
     */
    void preload(std::uint64_t pages);

    /** Number of logical pages exposed (with over-provisioning). */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /**
     * Resize the demand mapping cache (entries). The engine sizes it
     * relative to the workload footprint so that, as in §5.4, the
     * working set pressures the SSD DRAM. Capacities down to a
     * single entry are honored — a DRAM-pressure experiment sizing
     * the cache below 16 entries gets exactly the hit rate that
     * capacity implies (the old 16-entry floor silently inflated
     * it). Zero is clamped to 1: the DFTL model always keeps the
     * entry it is translating resident.
     */
    void
    setMappingCacheCapacity(std::uint64_t entries)
    {
        mapCacheCapacity_ = std::max<std::uint64_t>(1, entries);
        while (mapLru_.size() > mapCacheCapacity_)
            mapLru_.popTail();
    }

    std::uint64_t
    mappingCacheCapacity() const
    {
        return mapCacheCapacity_;
    }

    /** @name Introspection for tests and stats @{ */
    std::uint64_t freeBlocks() const { return freeBlockCount_; }
    std::uint64_t totalBlocks() const { return blocks_.size(); }
    std::uint64_t retiredBlocks() const { return retiredBlocks_; }
    std::uint64_t gcRuns() const { return gcRuns_; }
    std::uint64_t mapHits() const { return mapHits_; }
    std::uint64_t mapMisses() const { return mapMisses_; }
    std::uint32_t maxErase() const;
    std::uint32_t minEraseOfUsed() const;
    /** @} */

  private:
    struct BlockState
    {
        std::vector<bool> valid;     // per page
        std::vector<Lpn> owner;      // reverse map per page
        std::uint32_t validCount = 0;
        std::uint32_t writePtr = 0;  // next free page, == pagesPerBlock
                                     // when full
        std::uint32_t eraseCount = 0;
        bool free = true;
        bool bad = false; // retired: never free, never a GC victim

        /**
         * Mid-collection reentrancy guard: migrating a victim's
         * pages allocates fresh ones, which can GC other planes —
         * the victim itself (fewest valid pages by construction)
         * must not be re-picked while its collection is in flight.
         */
        bool collecting = false;
    };

    /** Dense block index over (channel, die, plane, block). */
    std::uint64_t blockIndex(const FlashAddress &a) const;
    FlashAddress blockAddress(std::uint64_t bi) const;

    /** Is @p bi some plane slot's current write target? */
    bool isOpenBlock(std::uint64_t bi) const;

    /** Pick the next open block slot in CWDP-striped order. */
    Ppn allocatePage(Tick now);

    /** Open a fresh (wear-min) free block on the given plane. */
    std::uint64_t openBlockOn(std::uint64_t plane_slot);

    void invalidate(Ppn ppn);
    void maybeGc(Tick now);
    bool collectBlock(std::uint64_t victim, Tick now,
                      bool scrub = false);
    bool collectPlane(std::uint64_t plane_slot, Tick now);
    void touchMapCache(Lpn lpn, bool &hit);

    // lint: transient-begin(wiring: references into the owning Engine, re-bound by its constructor on restore)
    NandArray &nand_;
    SsdConfig cfg_;
    StatSet *stats_;
    reliability::ReliabilityModel *rel_ = nullptr;
    // lint: transient-end

    std::vector<Ppn> l2p_;
    std::vector<BlockState> blocks_;

    /** One open block per (channel, die, plane) slot. */
    std::vector<std::uint64_t> openBlock_;
    std::uint64_t nextSlot_ = 0; // round-robin stripe pointer

    // lint: transient(pure function of config geometry, recomputed by the constructor)
    std::uint64_t logicalPages_ = 0;
    std::uint64_t freeBlockCount_ = 0;
    std::uint64_t retiredBlocks_ = 0;
    std::uint64_t gcRuns_ = 0;
    Tick lastGcTick_ = 0;

    // Demand mapping cache (DFTL): flat intrusive LRU over cached
    // L2P entries (preallocated nodes, direct-mapped lookup).
    std::uint64_t mapCacheCapacity_ = 0;
    FlatLru mapLru_;
    std::uint64_t mapHits_ = 0;
    std::uint64_t mapMisses_ = 0;

    // Hot-path counters resolved once: StatSet lookup costs a string
    // construction plus a map walk, far too much per translate.
    // lint: transient-begin(cached StatSet pointers; the counters they mirror live in stats_ and survive via StatSet::restoreFrom)
    Counter *statMapHits_ = nullptr;
    Counter *statMapMisses_ = nullptr;
    Counter *statGcRuns_ = nullptr;
    Counter *statGcMigrations_ = nullptr;
    // lint: transient-end

  public:
    /**
     * Deep copy of every mutable FTL quantity, for DeviceImage
     * snapshots: L2P mappings, per-block state (validity, reverse
     * maps, wear, open/bad/collecting flags), open-block cursors and
     * the stripe pointer, GC/OP accounting, and the demand
     * mapping-cache contents. Geometry-derived members (config,
     * logicalPages) are reproduced by constructing the restoring FTL
     * from the same SsdConfig and are deliberately not captured.
     */
    struct Image
    {
        std::vector<Ppn> l2p;
        std::vector<BlockState> blocks;
        std::vector<std::uint64_t> openBlock;
        std::uint64_t nextSlot = 0;
        std::uint64_t freeBlockCount = 0;
        std::uint64_t retiredBlocks = 0;
        std::uint64_t gcRuns = 0;
        Tick lastGcTick = 0;
        std::uint64_t mapCacheCapacity = 0;
        FlatLru mapLru;
        std::uint64_t mapHits = 0;
        std::uint64_t mapMisses = 0;
    };

    Image capture() const;
    void restore(const Image &img);
};

} // namespace conduit

#endif // CONDUIT_FTL_FTL_HH
