/**
 * @file
 * Shared command-line surface for the sweep benches.
 *
 * Every bench accepts the same flags:
 *
 *   --threads N        worker threads (0 = hardware concurrency)
 *   --scale X          workload dataset-scale multiplier
 *   --workloads a,b    keep only the named workload rows
 *   --techniques a,b   keep only the named technique columns
 *   --csv PATH         write machine-readable rows as CSV
 *   --json PATH        write machine-readable rows as JSON
 *   --cell-perf PATH   write per-cell wall-clock attribution as CSV
 *   --trace PATH       write a simulated-time trace of every cell
 *                      (.csv = compact CSV, else Perfetto JSON)
 *   --trace-filter c,c limit tracing to the named categories
 *                      (job,occupancy,reliability,queue,placement)
 *   --list-workloads   print the workload names --workloads accepts
 *   --list-techniques  print the technique names --techniques accepts
 *   --list-policies    print every name makePolicy() accepts
 *
 * Benches with cell shapes beyond the workload x technique matrix
 * (e.g. bench_saturation's offered-load axis) register their extra
 * flags through parse()'s handler hook, so every bench still rejects
 * unknown flags and shares one usage surface.
 *
 * Sweep timing goes to stderr so stdout stays byte-identical across
 * thread counts (the reproducibility contract tests rely on).
 */

#ifndef CONDUIT_RUNNER_SWEEP_CLI_HH
#define CONDUIT_RUNNER_SWEEP_CLI_HH

#include <functional>
#include <string>

#include "src/runner/sweep_runner.hh"

namespace conduit::runner
{

/** Parsed common bench flags. */
struct SweepCli
{
    unsigned threads = 0;
    double scale = 1.0;
    std::string workloadFilter;
    std::string techniqueFilter;
    std::string csvPath;
    std::string jsonPath;
    /**
     * --cell-perf PATH: per-cell wall-seconds / events-fired rows
     * (SweepPerf::perCell) as CSV. Off by default — wall-clock
     * attribution is nondeterministic, so it never lands in the
     * default outputs the byte-identity contract covers.
     */
    std::string cellPerfPath;

    /**
     * --trace PATH: write the sweep's per-cell simulated-time traces
     * (SweepRunner::lastTraces()). Tracing never perturbs simulated
     * results, and the trace file itself is bit-identical across
     * thread counts and repeats.
     */
    std::string tracePath;

    /** --trace-filter: category list for --trace (empty = all). */
    std::string traceFilter;

    /**
     * --list-workloads / --list-techniques: defer the listing until
     * the bench's matrix exists so the printed names are exactly the
     * labels its filters accept (custom axes included). configure()
     * services them; matrix-less benches call listAndExit directly.
     */
    bool listWorkloads = false;
    bool listTechniques = false;

    /**
     * Bench-specific flag hook: called with each flag the shared
     * parser does not recognize, plus a thunk that consumes and
     * returns the flag's value (exits with usage if none is left).
     * Return true when the flag was handled; false falls through to
     * the unknown-flag error.
     */
    using FlagHandler = std::function<bool(
        const std::string &flag,
        const std::function<std::string()> &value)>;

    /**
     * Parse argv; prints usage and exits on --help or bad flags.
     * Unknown flags are an error unless @p extra claims them;
     * @p extra_usage (one "  --flag X  description" line per extra
     * flag, newline-terminated) is appended to the usage text.
     * --list-policies is serviced here — the policy table is global,
     * unlike the per-bench matrix labels behind --list-workloads.
     */
    static SweepCli parse(int argc, char **argv,
                          const FlagHandler &extra = {},
                          const char *extra_usage = nullptr);

    /** SweepRunner options implied by the flags (tracing included). */
    SweepOptions runnerOptions() const;

    /**
     * Apply the row/column filters and scale to a matrix. A
     * non-empty @p baseline names a technique the caller normalizes
     * every row to; it stays in the matrix even when --techniques
     * omits it, since dropping it could only crash the caller.
     */
    void configure(RunMatrix &matrix,
                   const std::string &baseline = "") const;

    /**
     * Post-sweep bookkeeping: write the requested CSV/JSON files
     * and report wall-clock + thread count on stderr.
     *
     * @return Process exit status: 0 on success, 1 when a requested
     *         output file could not be written (benches return this
     *         from main so scripted pipelines see the failure).
     *
     * Pass the sweep's SweepPerf (runner.lastPerf()) to service
     * --cell-perf; benches that cannot attribute per-cell perf leave
     * it null and the flag reports itself unsupported. Likewise pass
     * @p runner to service --trace (lastTraces()); benches that
     * collect results outside a SweepRunner sweep call writeTraces()
     * themselves instead.
     */
    int finish(const SweepResult &sweep,
               const SweepPerf *perf = nullptr,
               const SweepRunner *runner = nullptr) const;

    /**
     * Service --trace against @p runner's lastTraces(): no-op without
     * the flag, else write the trace file.
     * @return Process exit status contribution (0 ok, 1 on failure).
     */
    int writeTraces(const SweepRunner &runner) const;

    /**
     * Write @p perf's per-cell rows to @p path as CSV
     * (label,wall_seconds,events_fired,events_per_sec).
     * @return false when the file could not be written.
     */
    static bool writeCellPerfCsv(const std::string &path,
                                 const SweepPerf &perf);
};

/** Print @p labels one per line (deduplicated, in order), exit 0. */
[[noreturn]] void
listAndExit(const std::vector<std::string> &labels);

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_SWEEP_CLI_HH
