#include "src/runner/sweep_result.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "src/sim/types.hh"

namespace conduit::runner
{

namespace
{

/**
 * Shortest decimal that round-trips a double, so emitted rows are
 * byte-stable across runs and thread counts.
 */
std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    double parsed = 0.0;
    for (int prec = 1; prec <= 16; ++prec) {
        char probe[64];
        std::snprintf(probe, sizeof probe, "%.*g", prec, v);
        if (std::sscanf(probe, "%lf", &parsed) == 1 && parsed == v)
            return probe;
    }
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** One row's emitted fields, shared by the CSV and JSON writers. */
struct Field
{
    const char *name;
    std::string value;
    bool quoted;
};

std::vector<Field>
rowFields(const RunSpec &spec, const RunResult &r)
{
    const auto u64 = [](std::uint64_t v) { return std::to_string(v); };
    const auto &h = r.latencyUs;
    return {
        {"workload", spec.workload, true},
        {"technique", spec.technique, true},
        {"exec_time_ps", u64(r.execTime), false},
        {"instr_count", u64(r.instrCount), false},
        {"isp_instrs", u64(r.perResource[0]), false},
        {"pud_instrs", u64(r.perResource[1]), false},
        {"ifp_instrs", u64(r.perResource[2]), false},
        {"dm_energy_j", fmtDouble(r.dmEnergyJ), false},
        {"compute_energy_j", fmtDouble(r.computeEnergyJ), false},
        {"latency_count", u64(h.count()), false},
        {"latency_p50_us",
         fmtDouble(h.count() ? h.percentile(50) : 0.0), false},
        {"latency_p99_us",
         fmtDouble(h.count() ? h.percentile(99) : 0.0), false},
        {"latency_p9999_us",
         fmtDouble(h.count() ? h.percentile(99.99) : 0.0), false},
        {"latency_max_us", fmtDouble(h.max()), false},
        {"compute_busy_ps", u64(r.computeBusy), false},
        {"internal_dm_busy_ps", u64(r.internalDmBusy), false},
        {"flash_read_busy_ps", u64(r.flashReadBusy), false},
        {"host_dm_busy_ps", u64(r.hostDmBusy), false},
        {"offloader_busy_ps", u64(r.offloaderBusy), false},
        {"faults_injected", u64(r.faultsInjected), false},
        {"replays", u64(r.replays), false},
        {"coherence_commits", u64(r.coherenceCommits), false},
        {"latch_evictions", u64(r.latchEvictions), false},
    };
}

/** CSV writer over pre-built field rows (header from the first). */
void
writeFieldCsv(std::ostream &os,
              const std::vector<std::vector<Field>> &rows)
{
    bool header_done = false;
    for (const auto &fields : rows) {
        if (!header_done) {
            for (std::size_t f = 0; f < fields.size(); ++f)
                os << (f ? "," : "") << fields[f].name;
            os << "\n";
            header_done = true;
        }
        for (std::size_t f = 0; f < fields.size(); ++f) {
            if (f)
                os << ",";
            if (fields[f].quoted)
                os << '"' << fields[f].value << '"';
            else
                os << fields[f].value;
        }
        os << "\n";
    }
}

/** JSON array-of-objects writer over pre-built field rows. */
void
writeFieldJson(std::ostream &os,
               const std::vector<std::vector<Field>> &rows)
{
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &fields = rows[i];
        os << "  {";
        for (std::size_t f = 0; f < fields.size(); ++f) {
            if (f)
                os << ", ";
            os << '"' << fields[f].name << "\": ";
            if (fields[f].quoted)
                os << '"' << jsonEscape(fields[f].value) << '"';
            else
                os << fields[f].value;
        }
        os << (i + 1 < rows.size() ? "},\n" : "}\n");
    }
    os << "]\n";
}

} // namespace

SweepResult::SweepResult(std::vector<RunSpec> specs,
                         std::vector<RunResult> results,
                         double wall_seconds, unsigned threads)
    : specs_(std::move(specs)), results_(std::move(results)),
      wallSeconds_(wall_seconds), threads_(threads)
{
    if (specs_.size() != results_.size())
        throw std::logic_error("SweepResult: specs/results mismatch");
}

const RunResult *
SweepResult::find(const std::string &workload,
                  const std::string &technique) const
{
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].workload == workload &&
            specs_[i].technique == technique)
            return &results_[i];
    }
    return nullptr;
}

const RunResult &
SweepResult::at(const std::string &workload,
                const std::string &technique) const
{
    if (const RunResult *r = find(workload, technique))
        return *r;
    throw std::out_of_range("SweepResult: no row for (" + workload +
                            ", " + technique + ")");
}

namespace
{

std::vector<std::string>
uniqueLabels(const std::vector<RunSpec> &specs,
             std::string RunSpec::*field)
{
    std::vector<std::string> out;
    for (const auto &s : specs) {
        const std::string &label = s.*field;
        if (std::find(out.begin(), out.end(), label) == out.end())
            out.push_back(label);
    }
    return out;
}

} // namespace

std::vector<std::string>
SweepResult::workloadLabels() const
{
    return uniqueLabels(specs_, &RunSpec::workload);
}

std::vector<std::string>
SweepResult::techniqueLabels() const
{
    return uniqueLabels(specs_, &RunSpec::technique);
}

void
SweepResult::writeCsv(std::ostream &os) const
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(results_.size());
    for (std::size_t i = 0; i < results_.size(); ++i)
        fields.push_back(rowFields(specs_[i], results_[i]));
    writeFieldCsv(os, fields);
}

void
SweepResult::writeJson(std::ostream &os) const
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(results_.size());
    for (std::size_t i = 0; i < results_.size(); ++i)
        fields.push_back(rowFields(specs_[i], results_[i]));
    writeFieldJson(os, fields);
}

bool
SweepResult::writeCsvFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeCsv(os);
    return static_cast<bool>(os);
}

bool
SweepResult::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeJson(os);
    return static_cast<bool>(os);
}

namespace
{

std::vector<Field>
loadRowFields(const LoadRow &r)
{
    return {
        {"workload", r.workload, true},
        {"technique", r.technique, true},
        {"jobs_per_sec", fmtDouble(r.jobsPerSec), false},
        {"jobs", std::to_string(r.jobs), false},
        {"makespan_ms", fmtDouble(r.makespanMs), false},
        {"throughput_jobs_per_sec",
         fmtDouble(r.throughputJobsPerSec), false},
        {"mean_sojourn_ms", fmtDouble(r.meanSojournMs), false},
        {"latency_p50_us", fmtDouble(r.p50Us), false},
        {"latency_p99_us", fmtDouble(r.p99Us), false},
        {"latency_p9999_us", fmtDouble(r.p9999Us), false},
    };
}

std::vector<Field>
agingRowFields(const AgingRow &r)
{
    std::vector<Field> fields = loadRowFields(r.load);
    // The age axis sits right after the identity columns so grouped
    // (workload, technique) blocks read as age ladders.
    const std::vector<Field> age = {
        {"pre_wear_cycles", std::to_string(r.preWearCycles), false},
        {"retention_days", fmtDouble(r.retentionDays), false},
    };
    fields.insert(fields.begin() + 2, age.begin(), age.end());
    const reliability::ReliabilityStats &s = r.rel;
    fields.push_back({"retried_reads",
                      std::to_string(s.retriedReads), false});
    fields.push_back({"ecc_retries",
                      std::to_string(s.eccRetries), false});
    fields.push_back({"soft_decodes",
                      std::to_string(s.softDecodes), false});
    fields.push_back({"uncorrectable_reads",
                      std::to_string(s.uncorrectableReads), false});
    fields.push_back({"retired_blocks",
                      std::to_string(s.retiredBlocks), false});
    fields.push_back({"scrub_passes",
                      std::to_string(s.scrubPasses), false});
    fields.push_back({"scrub_refreshes",
                      std::to_string(s.scrubRefreshes), false});
    return fields;
}

} // namespace

LoadRow
makeLoadRow(const LoadRunSpec &spec, const DeviceSnapshot &snap)
{
    LoadRow r;
    r.workload = !spec.workload.empty() ? spec.workload
        : spec.workloadId              ? workloadName(*spec.workloadId)
        : spec.program                 ? spec.program->name
                                       : std::string();
    r.technique = spec.technique;
    r.jobsPerSec = spec.jobsPerSec;

    // With a warm phase, report the measured phase only: the first
    // warmupJobs entries (submission-ordered) exist to reach steady
    // state. Both warm-phase modes carry identical warm JobResults
    // — in-place replay retires them, a fork inherits them from the
    // image — so rows diff clean between cold and fork sweeps.
    const std::size_t warm =
        std::min<std::size_t>(spec.warmupJobs, snap.jobs.size());
    const std::size_t measured = snap.jobs.size() - warm;
    Tick warmEnd = 0;
    for (std::size_t i = 0; i < warm; ++i)
        warmEnd = std::max(warmEnd, snap.jobs[i].end);
    const Tick span =
        snap.makespan > warmEnd ? snap.makespan - warmEnd : 0;

    r.jobs = measured;
    r.makespanMs = ticksToUs(span) / 1000.0;
    r.throughputJobsPerSec = span == 0
        ? 0.0
        : static_cast<double>(measured) / ticksToSeconds(span);
    double sojourn = 0.0;
    for (std::size_t i = warm; i < snap.jobs.size(); ++i)
        sojourn += ticksToUs(snap.jobs[i].sojourn()) / 1000.0;
    r.meanSojournMs = measured == 0
        ? 0.0
        : sojourn / static_cast<double>(measured);
    Histogram measuredLat;
    if (warm > 0)
        for (std::size_t i = warm; i < snap.jobs.size(); ++i)
            measuredLat.merge(snap.jobs[i].result.latencyUs);
    const Histogram &h =
        warm > 0 ? measuredLat : snap.aggregate.latencyUs;
    r.p50Us = h.count() ? h.percentile(50) : 0.0;
    r.p99Us = h.count() ? h.percentile(99) : 0.0;
    r.p9999Us = h.count() ? h.percentile(99.99) : 0.0;
    return r;
}

void
writeLoadCsv(std::ostream &os, const std::vector<LoadRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const LoadRow &row : rows)
        fields.push_back(loadRowFields(row));
    writeFieldCsv(os, fields);
}

void
writeLoadJson(std::ostream &os, const std::vector<LoadRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const LoadRow &row : rows)
        fields.push_back(loadRowFields(row));
    writeFieldJson(os, fields);
}

bool
writeLoadCsvFile(const std::string &path,
                 const std::vector<LoadRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeLoadCsv(os, rows);
    return static_cast<bool>(os);
}

bool
writeLoadJsonFile(const std::string &path,
                  const std::vector<LoadRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeLoadJson(os, rows);
    return static_cast<bool>(os);
}

AgingRow
makeAgingRow(const AgingRunSpec &spec, const DeviceSnapshot &snap)
{
    AgingRow r;
    r.load = makeLoadRow(spec.load, snap);
    r.preWearCycles = spec.preWearCycles;
    r.retentionDays = spec.retentionDays;
    r.rel = snap.reliability;
    return r;
}

void
writeAgingCsv(std::ostream &os, const std::vector<AgingRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const AgingRow &row : rows)
        fields.push_back(agingRowFields(row));
    writeFieldCsv(os, fields);
}

void
writeAgingJson(std::ostream &os, const std::vector<AgingRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const AgingRow &row : rows)
        fields.push_back(agingRowFields(row));
    writeFieldJson(os, fields);
}

bool
writeAgingCsvFile(const std::string &path,
                  const std::vector<AgingRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeAgingCsv(os, rows);
    return static_cast<bool>(os);
}

bool
writeAgingJsonFile(const std::string &path,
                   const std::vector<AgingRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeAgingJson(os, rows);
    return static_cast<bool>(os);
}

namespace
{

std::vector<Field>
clusterRowFields(const ClusterRow &r)
{
    return {
        {"label", r.label, true},
        {"placement", r.placement, true},
        {"devices", std::to_string(r.devices), false},
        {"tenant", r.tenant, true},
        {"jobs_per_sec", fmtDouble(r.jobsPerSec), false},
        {"jobs", std::to_string(r.jobs), false},
        {"makespan_ms", fmtDouble(r.makespanMs), false},
        {"throughput_jobs_per_sec",
         fmtDouble(r.throughputJobsPerSec), false},
        {"mean_sojourn_ms", fmtDouble(r.meanSojournMs), false},
        {"latency_p50_us", fmtDouble(r.p50Us), false},
        {"latency_p99_us", fmtDouble(r.p99Us), false},
        {"latency_p9999_us", fmtDouble(r.p9999Us), false},
        {"sojourn_p99_ms", fmtDouble(r.sojournP99Ms), false},
        {"slo_ms", fmtDouble(r.sloMs), false},
        {"slo_attainment", fmtDouble(r.sloAttainment), false},
        {"util_mean", fmtDouble(r.utilMean), false},
        {"util_max", fmtDouble(r.utilMax), false},
        {"imbalance", fmtDouble(r.imbalance), false},
    };
}

/** Nearest-rank percentile of an unsorted sample (copies & sorts). */
double
nearestRank(std::vector<double> xs, double pct)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const double rank =
        std::ceil(pct / 100.0 * static_cast<double>(xs.size()));
    const std::size_t idx = rank < 1.0
        ? 0
        : std::min(xs.size() - 1, static_cast<std::size_t>(rank) - 1);
    return xs[idx];
}

} // namespace

std::vector<ClusterRow>
makeClusterRows(const ClusterRunSpec &spec,
                const cluster::ClusterSnapshot &snap)
{
    using cluster::RoutedJob;

    // Warm traffic lives in the per-device histories (forked from
    // the warm images); snap.routed holds exactly the measured jobs,
    // so every reduction below is over the routed record.
    Tick maxEnd = snap.base;
    for (std::size_t r = 0; r < snap.routed.size(); ++r)
        maxEnd = std::max(maxEnd, snap.result(r).end);
    const Tick span = maxEnd - snap.base;
    const double spanSec = ticksToSeconds(span);

    ClusterRow proto;
    proto.label = spec.label;
    proto.placement = spec.placement;
    proto.devices = snap.devices.size();
    proto.makespanMs = ticksToUs(span) / 1000.0;

    // Fleet-level balance: per-device job residency and routed-job
    // counts over the measured span.
    std::vector<double> residency(snap.devices.size(), 0.0);
    std::vector<std::uint64_t> perDev(snap.devices.size(), 0);
    for (std::size_t r = 0; r < snap.routed.size(); ++r) {
        const RoutedJob &j = snap.routed[r];
        const JobResult &jr = snap.result(r);
        const Tick busy =
            jr.end > jr.admitted ? jr.end - jr.admitted : 0;
        residency[j.device] += ticksToSeconds(busy);
        ++perDev[j.device];
    }
    std::uint64_t maxRouted = 0;
    for (std::size_t d = 0; d < perDev.size(); ++d) {
        maxRouted = std::max(maxRouted, perDev[d]);
        const double util =
            spanSec > 0.0 ? residency[d] / spanSec : 0.0;
        proto.utilMean += util;
        proto.utilMax = std::max(proto.utilMax, util);
    }
    proto.utilMean /= static_cast<double>(snap.devices.size());
    proto.imbalance = snap.routed.empty()
        ? 0.0
        : static_cast<double>(snap.devices.size()) *
            static_cast<double>(maxRouted) /
            static_cast<double>(snap.routed.size());

    // Per-scope reductions: index 0 is the fleet, 1.. the tenants.
    const std::size_t scopes = 1 + spec.tenants.size();
    std::vector<ClusterRow> rows(scopes, proto);
    std::vector<Histogram> lat(scopes);
    std::vector<std::vector<double>> sojournsMs(scopes);
    std::vector<double> sojournSum(scopes, 0.0);
    std::vector<std::uint64_t> attained(scopes, 0);

    for (std::size_t r = 0; r < snap.routed.size(); ++r) {
        const RoutedJob &j = snap.routed[r];
        const JobResult &jr = snap.result(r);
        const double sojournMs = ticksToUs(jr.sojourn()) / 1000.0;
        const double sloMs = j.tenant < spec.tenants.size()
            ? spec.tenants[j.tenant].sloMs
            : 0.0;
        const bool ok = sloMs <= 0.0 || sojournMs <= sloMs;
        const std::size_t scope = 1 + j.tenant;
        for (std::size_t s : {std::size_t{0}, scope}) {
            if (s >= scopes)
                continue;
            ++rows[s].jobs;
            lat[s].merge(jr.result.latencyUs);
            sojournsMs[s].push_back(sojournMs);
            sojournSum[s] += sojournMs;
            if (ok)
                ++attained[s];
        }
    }

    double weightSum = 0.0;
    for (const ClusterTenant &t : spec.tenants)
        weightSum += t.weight;

    for (std::size_t s = 0; s < scopes; ++s) {
        ClusterRow &row = rows[s];
        if (s == 0) {
            row.tenant = "fleet";
            row.jobsPerSec = spec.jobsPerSec;
        } else {
            const ClusterTenant &t = spec.tenants[s - 1];
            row.tenant = !t.name.empty() ? t.name
                : t.workloadId           ? workloadName(*t.workloadId)
                : t.program              ? t.program->name
                                         : std::string();
            row.jobsPerSec = weightSum > 0.0
                ? spec.jobsPerSec * t.weight / weightSum
                : 0.0;
            row.sloMs = t.sloMs;
        }
        row.throughputJobsPerSec = spanSec > 0.0
            ? static_cast<double>(row.jobs) / spanSec
            : 0.0;
        row.meanSojournMs = row.jobs == 0
            ? 0.0
            : sojournSum[s] / static_cast<double>(row.jobs);
        row.p50Us = lat[s].count() ? lat[s].percentile(50) : 0.0;
        row.p99Us = lat[s].count() ? lat[s].percentile(99) : 0.0;
        row.p9999Us =
            lat[s].count() ? lat[s].percentile(99.99) : 0.0;
        row.sojournP99Ms = nearestRank(sojournsMs[s], 99.0);
        row.sloAttainment = row.jobs == 0
            ? 1.0
            : static_cast<double>(attained[s]) /
                static_cast<double>(row.jobs);
    }
    return rows;
}

void
writeClusterCsv(std::ostream &os, const std::vector<ClusterRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const ClusterRow &row : rows)
        fields.push_back(clusterRowFields(row));
    writeFieldCsv(os, fields);
}

void
writeClusterJson(std::ostream &os,
                 const std::vector<ClusterRow> &rows)
{
    std::vector<std::vector<Field>> fields;
    fields.reserve(rows.size());
    for (const ClusterRow &row : rows)
        fields.push_back(clusterRowFields(row));
    writeFieldJson(os, fields);
}

bool
writeClusterCsvFile(const std::string &path,
                    const std::vector<ClusterRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeClusterCsv(os, rows);
    return static_cast<bool>(os);
}

bool
writeClusterJsonFile(const std::string &path,
                     const std::vector<ClusterRow> &rows)
{
    std::ofstream os(path);
    if (!os)
        return false;
    writeClusterJson(os, rows);
    return static_cast<bool>(os);
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

void
printHeader(const std::vector<std::string> &columns)
{
    std::printf("%-18s", "workload");
    for (const auto &c : columns)
        std::printf(" %14s", c.c_str());
    std::printf("\n");
}

} // namespace conduit::runner
