#include "src/runner/run_spec.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace conduit::runner
{

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream is(csv);
    std::string item;
    while (std::getline(is, item, ',')) {
        // Trim surrounding whitespace.
        const auto b = item.find_first_not_of(" \t");
        const auto e = item.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(item.substr(b, e - b + 1));
    }
    return out;
}

std::string
joinLabels(const std::vector<std::string> &labels)
{
    std::string joined;
    for (const auto &l : labels) {
        if (!joined.empty())
            joined += ", ";
        joined += l;
    }
    return joined;
}

const std::string *
findUnknown(const std::vector<std::string> &filter,
            const std::vector<std::string> &labels)
{
    for (const auto &f : filter) {
        if (std::find(labels.begin(), labels.end(), f) == labels.end())
            return &f;
    }
    return nullptr;
}

bool
reportUnknown(const std::vector<std::string> &filter,
              const std::vector<std::string> &labels, const char *axis)
{
    const std::string *f = findUnknown(filter, labels);
    if (!f)
        return true;
    std::fprintf(stderr, "unknown %s '%s'; accepted: %s\n", axis,
                 f->c_str(), joinLabels(labels).c_str());
    return false;
}

namespace
{

bool
keeps(const std::vector<std::string> &filter, const std::string &label)
{
    return filter.empty() ||
        std::find(filter.begin(), filter.end(), label) != filter.end();
}

/**
 * Reject filter entries naming no axis label: a typo would otherwise
 * silently drop rows/columns. The error lists what this matrix
 * accepts (mirroring --list-workloads / --list-techniques).
 */
void
validateFilter(const std::vector<std::string> &filter,
               const std::vector<std::string> &labels,
               const char *axis)
{
    if (const std::string *f = findUnknown(filter, labels))
        throw std::invalid_argument(std::string("RunMatrix: unknown ") +
                                    axis + " '" + *f +
                                    "'; accepted: " + joinLabels(labels));
}

} // namespace

RunMatrix &
RunMatrix::config(const SsdConfig &cfg)
{
    config_ = cfg;
    return *this;
}

RunMatrix &
RunMatrix::engine(const EngineOptions &opts)
{
    engine_ = opts;
    return *this;
}

RunMatrix &
RunMatrix::params(const WorkloadParams &p)
{
    params_ = p;
    return *this;
}

RunMatrix &
RunMatrix::workload(WorkloadId id)
{
    workloads_.push_back({workloadName(id), id, nullptr});
    return *this;
}

RunMatrix &
RunMatrix::workloads(const std::vector<WorkloadId> &ids)
{
    for (WorkloadId id : ids)
        workload(id);
    return *this;
}

RunMatrix &
RunMatrix::program(const std::string &label,
                   std::shared_ptr<const Program> prog)
{
    workloads_.push_back({label, std::nullopt, std::move(prog)});
    return *this;
}

RunMatrix &
RunMatrix::technique(const std::string &name)
{
    techniques_.push_back({name, nullptr, HostKind::None});
    return *this;
}

RunMatrix &
RunMatrix::techniques(const std::vector<std::string> &names)
{
    for (const auto &n : names)
        technique(n);
    return *this;
}

RunMatrix &
RunMatrix::technique(const std::string &label, PolicyFactory make)
{
    techniques_.push_back({label, std::move(make), HostKind::None});
    return *this;
}

RunMatrix &
RunMatrix::hostTechnique(const std::string &label, bool gpu)
{
    techniques_.push_back(
        {label, nullptr, gpu ? HostKind::Gpu : HostKind::Cpu});
    return *this;
}

RunMatrix &
RunMatrix::filterWorkloads(const std::string &csv)
{
    workloadFilter_ = splitCsv(csv);
    return *this;
}

RunMatrix &
RunMatrix::filterTechniques(const std::string &csv)
{
    techniqueFilter_ = splitCsv(csv);
    return *this;
}

RunMatrix &
RunMatrix::add(RunSpec spec)
{
    extras_.push_back(std::move(spec));
    return *this;
}

std::vector<std::string>
RunMatrix::workloadLabels() const
{
    std::vector<std::string> labels;
    for (const auto &w : workloads_)
        labels.push_back(w.label);
    for (const auto &e : extras_)
        labels.push_back(e.workload);
    return labels;
}

std::vector<std::string>
RunMatrix::techniqueLabels() const
{
    std::vector<std::string> labels;
    for (const auto &t : techniques_)
        labels.push_back(t.label);
    for (const auto &e : extras_)
        labels.push_back(e.technique);
    return labels;
}

std::vector<RunSpec>
RunMatrix::build() const
{
    validateFilter(workloadFilter_, workloadLabels(), "workload");
    validateFilter(techniqueFilter_, techniqueLabels(), "technique");

    std::vector<RunSpec> specs;
    for (const auto &w : workloads_) {
        if (!keeps(workloadFilter_, w.label))
            continue;
        for (const auto &t : techniques_) {
            if (!keeps(techniqueFilter_, t.label))
                continue;
            RunSpec s;
            s.workload = w.label;
            s.technique = t.label;
            s.config = config_;
            s.engine = engine_;
            s.params = params_;
            s.workloadId = w.id;
            s.program = w.program;
            s.policy = t.policy;
            s.host = t.host;
            specs.push_back(std::move(s));
        }
    }
    for (const auto &e : extras_) {
        if (keeps(workloadFilter_, e.workload) &&
            keeps(techniqueFilter_, e.technique))
            specs.push_back(e);
    }
    return specs;
}

} // namespace conduit::runner
