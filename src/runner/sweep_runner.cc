#include "src/runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "src/host/host_model.hh"

namespace conduit::runner
{

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

RunResult
SweepRunner::runOne(const RunSpec &spec)
{
    // Resolve the program: explicit > generated workload.
    std::shared_ptr<const Program> prog = spec.program;
    std::shared_ptr<const VectorizedProgram> compiled;
    if (!prog) {
        if (!spec.workloadId)
            throw std::invalid_argument(
                "RunSpec has neither a program nor a workload: " +
                spec.workload + "/" + spec.technique);
        compiled = cache_.get(*spec.workloadId, spec.params,
                              spec.config);
        prog = std::shared_ptr<const Program>(compiled,
                                              &compiled->program);
    }

    // Host baselines bypass the SSD engine entirely.
    HostKind host = spec.host;
    if (host == HostKind::None && !spec.policy) {
        if (spec.technique == "CPU")
            host = HostKind::Cpu;
        else if (spec.technique == "GPU")
            host = HostKind::Gpu;
    }
    if (host != HostKind::None) {
        const bool gpu = host == HostKind::Gpu;
        HostModel model(spec.config, gpu ? HostModel::Kind::Gpu
                                         : HostModel::Kind::Cpu);
        const HostResult hr = model.run(*prog);
        RunResult r;
        r.workload = spec.workload;
        r.policy = spec.technique;
        r.execTime = hr.totalTime;
        r.instrCount = prog->instrs.size();
        r.computeBusy = hr.computeTime;
        r.hostDmBusy = hr.transferTime;
        r.dmEnergyJ = hr.dmEnergyJ;
        r.computeEnergyJ = hr.computeEnergyJ;
        return r;
    }

    auto policy = spec.policy ? spec.policy()
                              : makePolicy(spec.technique);
    Engine engine(spec.config);
    RunResult r = engine.run(*prog, *policy, spec.engine);
    // Label with the spec's display names (a custom policy object's
    // own name may differ, e.g. ablation variants).
    r.workload = spec.workload;
    r.policy = spec.technique;
    return r;
}

SweepResult
SweepRunner::run(std::vector<RunSpec> specs)
{
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t n = specs.size();
    std::vector<RunResult> results(n);
    std::vector<std::exception_ptr> errors(n);

    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(n, 1)));

    // Workers pull the next unclaimed spec index; results land at
    // that index, so output order never depends on scheduling.
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                results[i] = runOne(specs[i]);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);

    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return SweepResult(std::move(specs), std::move(results), wall,
                       threads);
}

} // namespace conduit::runner
