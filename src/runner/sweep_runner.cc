#include "src/runner/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/host/host_model.hh"

namespace conduit::runner
{

namespace
{

/**
 * Index-parallel for over [0, n) on @p threads workers (pre-clamped
 * via SweepRunner::workerCount): workers pull the next unclaimed
 * index, so each body(i) runs exactly once and output order never
 * depends on scheduling. Exceptions are captured per index and the
 * lowest-index one rethrown after the pool drains.
 */
template <typename Body>
void
parallelFor(unsigned threads, std::size_t n, const Body &body)
{
    std::vector<std::exception_ptr> errors(n);
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
    };

    if (threads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < n; ++i)
        if (errors[i])
            std::rethrow_exception(errors[i]);
}

/** Seconds elapsed since @p t0. */
double
sinceSeconds(const std::chrono::steady_clock::time_point &t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Attribution label of an offered-load cell. */
std::string
loadCellLabel(const LoadRunSpec &spec)
{
    const std::string workload = !spec.workload.empty()
        ? spec.workload
        : spec.workloadId ? workloadName(*spec.workloadId)
        : spec.program    ? spec.program->name
                          : std::string("load");
    char rate[48];
    std::snprintf(rate, sizeof rate, "@%gjobs/s", spec.jobsPerSec);
    return workload + "/" + spec.technique + rate;
}

/** Attribution label of an aging cell. */
std::string
agingCellLabel(const AgingRunSpec &spec)
{
    char age[64];
    std::snprintf(age, sizeof age, "+w%lu+d%g",
                  static_cast<unsigned long>(spec.preWearCycles),
                  spec.retentionDays);
    return loadCellLabel(spec.load) + age;
}

/** Resolve an offered-load cell's program (explicit > workload). */
std::shared_ptr<const Program>
resolveLoadProgram(ProgramCache &cache, const LoadRunSpec &spec)
{
    if (spec.program)
        return spec.program;
    if (!spec.workloadId)
        throw std::invalid_argument(
            "LoadRunSpec has neither a program nor a workload: " +
            spec.workload + "/" + spec.technique);
    auto compiled =
        cache.get(*spec.workloadId, spec.params, spec.config);
    return std::shared_ptr<const Program>(compiled,
                                          &compiled->program);
}

/** Display name the cell's jobs are submitted under. */
std::string
loadJobName(const LoadRunSpec &spec,
            const std::shared_ptr<const Program> &prog)
{
    return !spec.workload.empty() ? spec.workload
        : spec.workloadId ? workloadName(*spec.workloadId)
                          : prog->name;
}

/** Device options of an offered-load cell. */
DeviceOptions
loadDeviceOptions(const LoadRunSpec &spec)
{
    DeviceOptions dopts =
        makeDeviceOptions(spec.config, spec.engine, spec.params);
    dopts.capacityPages = spec.capacityPages;
    // Open-loop cells retire eagerly so page regions recycle while
    // later arrivals are still in flight.
    dopts.retire = RetirePolicy::OnComplete;
    return dopts;
}

/** Fresh arrival process of the cell (null at zero rate). */
std::unique_ptr<ArrivalProcess>
loadArrivals(const LoadRunSpec &spec)
{
    if (spec.jobsPerSec <= 0.0)
        return nullptr;
    return makeArrivals(spec.arrivals,
                        static_cast<double>(kPsPerS) / spec.jobsPerSec,
                        spec.arrivalSeed);
}

/**
 * Submit @p count jobs to @p dev, each advancing @p at by the next
 * arrival gap. Warm-phase jobs run under spec.warmupTechnique (by
 * name — custom policy factories apply to measured jobs only, so
 * warm phases stay shareable across a factory-varied sweep).
 */
void
submitLoadJobs(Device &dev, const LoadRunSpec &spec,
               const std::shared_ptr<const Program> &prog,
               const std::string &name, std::size_t count, bool warm,
               ArrivalProcess *arrivals, Tick &at)
{
    for (std::size_t i = 0; i < count; ++i) {
        if (arrivals)
            at += arrivals->next();
        JobSpec job;
        job.name = name;
        job.program = prog;
        // Fresh policy object per job (policies may carry state).
        job.policyObj = !warm && spec.policy
            ? std::shared_ptr<OffloadPolicy>(spec.policy())
            : std::shared_ptr<OffloadPolicy>(makePolicy(
                  warm ? spec.warmupTechnique : spec.technique));
        job.arrival = at;
        dev.submit(job);
    }
}

/**
 * Warm-image sharing key: every spec field the warm phase's
 * simulation reads. Equal keys mean byte-identical warm phases, so
 * runLoadSweep builds the image once and lets every matching cell
 * fork it. Covers the axes the benches and the aging transform vary
 * (technique and measured-job count are deliberately absent — the
 * warm phase runs under warmupTechnique before any measured job).
 */
std::string
warmImageKey(const LoadRunSpec &spec)
{
    char buf[448];
    std::snprintf(
        buf, sizeof buf,
        "|p%p|i%d|w%zu|r%.17g|a%d|as%llu|cap%llu|sc%.17g"
        "|sd%llu|mc%.17g|gc%.17g|ds%.17g|mf%.17g"
        "|re%d|pw%lu|rd%.17g|wl%d|wg%lu|wm%lu",
        static_cast<const void *>(spec.program.get()),
        spec.workloadId ? static_cast<int>(*spec.workloadId) : -1,
        spec.warmupJobs, spec.jobsPerSec,
        static_cast<int>(spec.arrivals),
        static_cast<unsigned long long>(spec.arrivalSeed),
        static_cast<unsigned long long>(spec.capacityPages),
        spec.params.scale,
        static_cast<unsigned long long>(spec.config.seed),
        spec.config.mappingCacheCoverage, spec.config.gcThreshold,
        spec.engine.dramStagingFraction,
        spec.engine.mappingCacheFraction,
        spec.config.reliability.enabled ? 1 : 0,
        static_cast<unsigned long>(
            spec.config.reliability.preWearCycles),
        spec.config.reliability.retentionDays,
        spec.config.reliability.wearLevelEnabled ? 1 : 0,
        static_cast<unsigned long>(spec.config.reliability.wearLevelGap),
        static_cast<unsigned long>(
            spec.config.reliability.wearLevelMaxPerPass));
    return spec.workload + "/" + spec.warmupTechnique + buf;
}

/** Age rung of fleet device @p d (ageMix cycles round-robin). */
std::uint32_t
clusterRung(const ClusterRunSpec &spec, std::size_t d)
{
    return spec.ageMix.empty()
        ? 0u
        : spec.ageMix[d % spec.ageMix.size()];
}

/**
 * Per-device recipe of a fleet cell: the offered-load spec one
 * device of the fleet would see — the first tenant's workload as
 * warm traffic at the per-device share of the fleet rate, with the
 * age rung folded into the reliability config. Equal recipes hash to
 * equal warmImageKeys, so a fleet of one age rung forks one image.
 */
LoadRunSpec
clusterDeviceRecipe(const ClusterRunSpec &spec, std::uint32_t rung)
{
    const ClusterTenant &t0 = spec.tenants.front();
    LoadRunSpec r;
    r.workload = !t0.name.empty() ? t0.name
        : t0.workloadId           ? workloadName(*t0.workloadId)
        : t0.program              ? t0.program->name
                                  : std::string();
    r.technique = spec.warmupTechnique;
    r.config = spec.config;
    r.engine = spec.engine;
    r.params = spec.params;
    r.workloadId = t0.workloadId;
    r.program = t0.program;
    r.jobsPerSec =
        spec.jobsPerSec / static_cast<double>(spec.devices);
    r.arrivals = spec.arrivals;
    r.arrivalSeed = spec.arrivalSeed;
    r.capacityPages = spec.capacityPages;
    r.warmupJobs = spec.warmupJobs;
    r.warmupTechnique = spec.warmupTechnique;
    r.steadyState = spec.warmupJobs > 0;
    if (rung > 0) {
        r.config.reliability.enabled = true;
        r.config.reliability.preWearCycles = rung;
        r.config.reliability.retentionDays =
            spec.retentionDaysPerKCycle * rung / 1000.0;
    }
    return r;
}

/** Attribution label of a fleet cell. */
std::string
clusterCellLabel(const ClusterRunSpec &spec)
{
    if (!spec.label.empty())
        return spec.label;
    char buf[96];
    std::snprintf(buf, sizeof buf, "fleet%zu/%s@%gjobs/s",
                  spec.devices, spec.placement.c_str(),
                  spec.jobsPerSec);
    return buf;
}

} // namespace

SweepRunner::SweepRunner(SweepOptions opts) : opts_(opts) {}

SweepPerf
SweepRunner::lastPerf() const
{
    SweepPerf p;
    p.wallSeconds = perfWall_;
    p.cells = perfCells_;
    p.eventsFired = perfEvents_.load(std::memory_order_relaxed);
    p.perCell = perfPerCell_;
    p.warmupSeconds = perfWarmWall_;
    p.warmupImages = perfWarmImages_;
    return p;
}

template <typename Body>
void
SweepRunner::timedSweep(std::size_t cells, const Body &body)
{
    perfCells_ = cells;
    perfEvents_.store(0, std::memory_order_relaxed);
    perfPerCell_.assign(cells, {});
    perfWarmWall_ = 0.0;
    perfWarmImages_ = 0;
    traceCells_.assign(cells, {});
    const auto t0 = std::chrono::steady_clock::now();
    body();
    perfWall_ = sinceSeconds(t0);
}

void
SweepRunner::recordCell(std::size_t i, std::string label,
                        double wallSeconds, std::uint64_t events)
{
    SweepPerf::CellPerf &cp = perfPerCell_[i];
    cp.label = std::move(label);
    cp.wallSeconds = wallSeconds;
    cp.eventsFired = events;
    perfEvents_.fetch_add(events, std::memory_order_relaxed);
}

unsigned
SweepRunner::workerCount(std::size_t jobs) const
{
    unsigned threads = opts_.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    return static_cast<unsigned>(
        std::min<std::size_t>(threads, std::max<std::size_t>(jobs, 1)));
}

RunResult
SweepRunner::runOne(const RunSpec &spec)
{
    return runOneCell(spec, nullptr);
}

RunResult
SweepRunner::runOneCell(const RunSpec &spec,
                        const std::shared_ptr<trace::Tracer> &tracer)
{
    // Resolve the program: explicit > generated workload.
    std::shared_ptr<const Program> prog = spec.program;
    std::shared_ptr<const VectorizedProgram> compiled;
    if (!prog) {
        if (!spec.workloadId)
            throw std::invalid_argument(
                "RunSpec has neither a program nor a workload: " +
                spec.workload + "/" + spec.technique);
        compiled = cache_.get(*spec.workloadId, spec.params,
                              spec.config);
        prog = std::shared_ptr<const Program>(compiled,
                                              &compiled->program);
    }

    // Host baselines bypass the SSD engine entirely.
    HostKind host = spec.host;
    if (host == HostKind::None && !spec.policy) {
        if (spec.technique == "CPU")
            host = HostKind::Cpu;
        else if (spec.technique == "GPU")
            host = HostKind::Gpu;
    }
    if (host != HostKind::None) {
        const bool gpu = host == HostKind::Gpu;
        HostModel model(spec.config, gpu ? HostModel::Kind::Gpu
                                         : HostModel::Kind::Cpu);
        const HostResult hr = model.run(*prog);
        RunResult r;
        r.workload = spec.workload;
        r.policy = spec.technique;
        r.execTime = hr.totalTime;
        r.instrCount = prog->instrs.size();
        r.computeBusy = hr.computeTime;
        r.hostDmBusy = hr.transferTime;
        r.dmEnergyJ = hr.dmEnergyJ;
        r.computeEnergyJ = hr.computeEnergyJ;
        return r;
    }

    auto policy = spec.policy ? spec.policy()
                              : makePolicy(spec.technique);
    Engine engine(spec.config);
    if (tracer)
        engine.setTracer(tracer.get());
    RunResult r = engine.run(*prog, *policy, spec.engine);
    // Label with the spec's display names (a custom policy object's
    // own name may differ, e.g. ablation variants).
    r.workload = spec.workload;
    r.policy = spec.technique;
    return r;
}

sched::MultiRunResult
SweepRunner::runMulti(const MultiRunSpec &spec)
{
    return runMultiCell(spec, nullptr);
}

sched::MultiRunResult
SweepRunner::runMultiCell(const MultiRunSpec &spec,
                          const std::shared_ptr<trace::Tracer> &tracer)
{
    if (spec.streams.empty())
        throw std::invalid_argument(
            "MultiRunSpec has no streams: " + spec.label);
    std::vector<sched::StreamSpec> streams;
    streams.reserve(spec.streams.size());
    for (const StreamSlot &slot : spec.streams) {
        if (slot.technique == "CPU" || slot.technique == "GPU")
            throw std::invalid_argument(
                "multi-stream cells run on the SSD engine; host "
                "baseline '" + slot.technique +
                "' cannot be a stream: " + spec.label);
        sched::StreamSpec s;
        if (slot.program) {
            s.program = slot.program;
        } else if (slot.workloadId) {
            auto compiled = cache_.get(*slot.workloadId, spec.params,
                                       spec.config);
            s.program = std::shared_ptr<const Program>(
                compiled, &compiled->program);
        } else {
            throw std::invalid_argument(
                "StreamSlot has neither a program nor a workload: " +
                spec.label + "/" + slot.workload);
        }
        s.policy = slot.policy ? slot.policy()
                               : makePolicy(slot.technique);
        s.name = !slot.workload.empty() ? slot.workload
            : slot.workloadId ? workloadName(*slot.workloadId)
                              : s.program->name;
        streams.push_back(std::move(s));
    }

    sched::MultiRunResult mr;
    if (spec.viaDevice) {
        // Same cell through the persistent-device job API: every
        // stream a tick-0 job on one fresh Device. Byte-identical to
        // the direct engine run (the Device equivalence contract —
        // CI diffs the two paths).
        DeviceOptions dopts =
            makeDeviceOptions(spec.config, spec.engine, spec.params);
        dopts.tracer = tracer;
        mr = runStreamsOnDevice(std::move(dopts), std::move(streams));
    } else {
        Engine engine(spec.config);
        if (tracer)
            engine.setTracer(tracer.get());
        mr = engine.run(std::move(streams), spec.engine);
    }
    // Label per-stream results with the slot's display technique (a
    // custom policy object's own name may differ), and rebuild the
    // aggregate's joined label so both agree.
    std::string joined;
    for (std::size_t i = 0; i < mr.streams.size(); ++i) {
        if (!spec.streams[i].technique.empty())
            mr.streams[i].policy = spec.streams[i].technique;
        if (i > 0)
            joined += "+";
        joined += mr.streams[i].policy;
    }
    mr.aggregate.policy = joined;
    return mr;
}

std::vector<sched::MultiRunResult>
SweepRunner::runMultiAll(const std::vector<MultiRunSpec> &specs)
{
    std::vector<sched::MultiRunResult> results(specs.size());
    timedSweep(specs.size(), [&] {
        parallelFor(workerCount(specs.size()), specs.size(),
                    [&](std::size_t i) {
                        const auto c0 =
                            std::chrono::steady_clock::now();
                        auto tracer = makeTracer(opts_.trace);
                        results[i] = runMultiCell(specs[i], tracer);
                        traceCells_[i] = {specs[i].label,
                                          std::move(tracer)};
                        recordCell(i, specs[i].label,
                                   sinceSeconds(c0),
                                   results[i].eventsFired);
                    });
    });
    return results;
}

DeviceImage
SweepRunner::buildWarmImage(const LoadRunSpec &spec)
{
    if (spec.warmupJobs == 0)
        throw std::invalid_argument(
            "buildWarmImage: spec.warmupJobs is 0: " + spec.workload);
    auto prog = resolveLoadProgram(cache_, spec);
    const std::string name = loadJobName(spec, prog);
    Device dev(loadDeviceOptions(spec));
    auto arrivals = loadArrivals(spec);
    Tick at = 0;
    submitLoadJobs(dev, spec, prog, name, spec.warmupJobs,
                   /*warm=*/true, arrivals.get(), at);
    return dev.snapshot();
}

DeviceSnapshot
SweepRunner::runLoadCell(const LoadRunSpec &spec,
                         const DeviceImage *warm,
                         const std::shared_ptr<trace::Tracer> &tracer)
{
    if (spec.technique == "CPU" || spec.technique == "GPU")
        throw std::invalid_argument(
            "offered-load cells run on the SSD engine; host baseline "
            "'" + spec.technique + "' cannot serve jobs: " +
            spec.workload);
    if (spec.steadyState && spec.warmupJobs == 0)
        throw std::invalid_argument(
            "LoadRunSpec: steadyState needs warmupJobs > 0: " +
            spec.workload);
    auto prog = resolveLoadProgram(cache_, spec);
    const std::string name = loadJobName(spec, prog);
    auto arrivals = loadArrivals(spec);

    std::optional<Device> dev;
    Tick at = 0;
    if (spec.steadyState) {
        // Fork: the warm phase already ran inside the image. Burn
        // its arrival gaps so the measured phase continues the same
        // arrival process a cold two-phase run sees.
        if (warm) {
            dev.emplace(*warm);
        } else {
            const DeviceImage own = buildWarmImage(spec);
            dev.emplace(own);
        }
        if (arrivals)
            for (std::size_t i = 0; i < spec.warmupJobs; ++i)
                arrivals->next();
        at = dev->now();
    } else {
        dev.emplace(loadDeviceOptions(spec));
        if (spec.warmupJobs > 0) {
            // Cold two-phase: replay the warm phase in place, with
            // the same quiescence barrier snapshot() applies, then
            // resume the arrival clock from the drained device.
            submitLoadJobs(*dev, spec, prog, name, spec.warmupJobs,
                           /*warm=*/true, arrivals.get(), at);
            dev->drain();
            at = dev->now();
        }
    }
    // Attach the tracer only now — after the fork (forks start
    // traceless) or the in-place warm replay — so both steady-state
    // modes trace exactly the measured phase.
    if (tracer)
        dev->setTracer(tracer);
    submitLoadJobs(*dev, spec, prog, name, spec.jobs,
                   /*warm=*/false, arrivals.get(), at);
    return dev->drain();
}

DeviceSnapshot
SweepRunner::runLoad(const LoadRunSpec &spec)
{
    return runLoadCell(spec, nullptr, nullptr);
}

DeviceSnapshot
SweepRunner::runAging(const AgingRunSpec &spec)
{
    LoadRunSpec cell = spec.load;
    cell.config.reliability.enabled = true;
    cell.config.reliability.preWearCycles = spec.preWearCycles;
    cell.config.reliability.retentionDays = spec.retentionDays;
    return runLoad(cell);
}

std::vector<DeviceSnapshot>
SweepRunner::runLoadSweep(const std::vector<LoadRunSpec> &specs,
                          const std::vector<std::string> &labels)
{
    const std::size_t n = specs.size();

    // Phase 1: build each distinct warm image once, in parallel.
    // Cells whose warm-phase inputs agree share one image read-only
    // (forking deep-copies), so an A-policies x B-ages sweep builds
    // B images, not A*B.
    std::vector<std::shared_ptr<const DeviceImage>> cellImage(n);
    double warmWall = 0.0;
    std::size_t warmBuilt = 0;
    {
        std::unordered_map<std::string, std::size_t> slots;
        std::vector<std::size_t> slotOf(n, n);
        std::vector<std::size_t> builder;
        for (std::size_t i = 0; i < n; ++i) {
            if (!specs[i].steadyState || specs[i].warmupJobs == 0)
                continue;
            const auto [it, fresh] =
                slots.emplace(warmImageKey(specs[i]), builder.size());
            if (fresh)
                builder.push_back(i);
            slotOf[i] = it->second;
        }
        if (!builder.empty()) {
            std::vector<std::shared_ptr<const DeviceImage>> images(
                builder.size());
            const auto w0 = std::chrono::steady_clock::now();
            parallelFor(workerCount(builder.size()), builder.size(),
                        [&](std::size_t j) {
                            images[j] =
                                std::make_shared<const DeviceImage>(
                                    buildWarmImage(specs[builder[j]]));
                        });
            warmWall = sinceSeconds(w0);
            warmBuilt = builder.size();
            for (std::size_t i = 0; i < n; ++i)
                if (slotOf[i] < n)
                    cellImage[i] = images[slotOf[i]];
        }
    }

    // Phase 2: the measured cells, forking from the shared images.
    std::vector<DeviceSnapshot> results(n);
    timedSweep(n, [&] {
        parallelFor(workerCount(n), n, [&](std::size_t i) {
            const auto c0 = std::chrono::steady_clock::now();
            auto tracer = makeTracer(opts_.trace);
            results[i] =
                runLoadCell(specs[i], cellImage[i].get(), tracer);
            traceCells_[i] = {labels[i], std::move(tracer)};
            recordCell(i, labels[i], sinceSeconds(c0),
                       results[i].eventsFired);
        });
    });
    perfWarmWall_ = warmWall;
    perfWarmImages_ = warmBuilt;
    return results;
}

std::vector<DeviceSnapshot>
SweepRunner::runAgingAll(const std::vector<AgingRunSpec> &specs)
{
    // Fold the aging knobs into offered-load specs up front so the
    // warm-image dedup sees the final per-cell configs (cells of one
    // age rung share a warm image across policies).
    std::vector<LoadRunSpec> cells;
    std::vector<std::string> labels;
    cells.reserve(specs.size());
    labels.reserve(specs.size());
    for (const AgingRunSpec &spec : specs) {
        LoadRunSpec cell = spec.load;
        cell.config.reliability.enabled = true;
        cell.config.reliability.preWearCycles = spec.preWearCycles;
        cell.config.reliability.retentionDays = spec.retentionDays;
        cells.push_back(std::move(cell));
        labels.push_back(agingCellLabel(spec));
    }
    return runLoadSweep(cells, labels);
}

std::vector<DeviceSnapshot>
SweepRunner::runLoadAll(const std::vector<LoadRunSpec> &specs)
{
    std::vector<std::string> labels;
    labels.reserve(specs.size());
    for (const LoadRunSpec &spec : specs)
        labels.push_back(loadCellLabel(spec));
    return runLoadSweep(specs, labels);
}

cluster::ClusterSnapshot
SweepRunner::runClusterCell(
    const ClusterRunSpec &spec,
    const std::vector<std::shared_ptr<const DeviceImage>> &images,
    const std::shared_ptr<trace::Tracer> &tracer)
{
    if (spec.devices == 0)
        throw std::invalid_argument(
            "ClusterRunSpec: zero devices: " + spec.label);
    if (spec.tenants.empty())
        throw std::invalid_argument(
            "ClusterRunSpec has no tenants: " + spec.label);
    for (const ClusterTenant &t : spec.tenants)
        if (t.technique == "CPU" || t.technique == "GPU")
            throw std::invalid_argument(
                "fleet cells run on the SSD engine; host baseline "
                "'" + t.technique + "' cannot be a tenant: " +
                spec.label);

    // Resolve each tenant's program and display name once.
    const std::size_t nt = spec.tenants.size();
    std::vector<std::shared_ptr<const Program>> progs(nt);
    std::vector<std::string> names(nt);
    for (std::size_t t = 0; t < nt; ++t) {
        const ClusterTenant &ten = spec.tenants[t];
        LoadRunSpec slot;
        slot.workload = ten.name;
        slot.technique = ten.technique;
        slot.workloadId = ten.workloadId;
        slot.program = ten.program;
        slot.params = spec.params;
        slot.config = spec.config;
        progs[t] = resolveLoadProgram(cache_, slot);
        names[t] = !ten.name.empty() ? ten.name
            : ten.workloadId ? workloadName(*ten.workloadId)
                             : progs[t]->name;
    }

    // Merged arrival schedule: jobs split across tenants by weight
    // (floor, then remainder round-robin), each tenant walking its
    // own arrival process (seed offset by tenant index). Merge order
    // is (arrival, per-tenant index, tenant) — a total order, so the
    // stream is identical on every run, and a tick-0 burst (rate 0)
    // interleaves tenants round-robin instead of tenant-major.
    double weightSum = 0.0;
    for (const ClusterTenant &t : spec.tenants)
        weightSum += std::max(t.weight, 0.0);
    std::vector<std::size_t> quota(nt, 0);
    std::size_t assigned = 0;
    for (std::size_t t = 0; t < nt; ++t) {
        const double share = weightSum > 0.0
            ? std::max(spec.tenants[t].weight, 0.0) / weightSum
            : 1.0 / static_cast<double>(nt);
        quota[t] = static_cast<std::size_t>(
            static_cast<double>(spec.jobs) * share);
        assigned += quota[t];
    }
    for (std::size_t t = 0; assigned < spec.jobs; t = (t + 1) % nt) {
        ++quota[t];
        ++assigned;
    }

    struct Slot
    {
        Tick at;
        std::size_t idx;
        std::size_t tenant;
    };
    std::vector<Slot> schedule;
    schedule.reserve(spec.jobs);
    for (std::size_t t = 0; t < nt; ++t) {
        const double share = weightSum > 0.0
            ? std::max(spec.tenants[t].weight, 0.0) / weightSum
            : 1.0 / static_cast<double>(nt);
        const double rate = spec.jobsPerSec * share;
        std::unique_ptr<ArrivalProcess> arr;
        if (rate > 0.0)
            arr = makeArrivals(spec.arrivals,
                               static_cast<double>(kPsPerS) / rate,
                               spec.arrivalSeed + t);
        Tick at = 0;
        for (std::size_t i = 0; i < quota[t]; ++i) {
            if (arr)
                at += arr->next();
            schedule.push_back({at, i, t});
        }
    }
    std::sort(schedule.begin(), schedule.end(),
              [](const Slot &a, const Slot &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.idx != b.idx)
                      return a.idx < b.idx;
                  return a.tenant < b.tenant;
              });

    // Fleet construction: device d forks its shared warm image when
    // one was built, else starts fresh from its age rung's recipe.
    // Fresh devices default to a pool fitting every measured job at
    // once — the fleet-wide footprint sum, which with one device is
    // exactly the auto-size a bare Device computes (the probe path
    // starts sessions before submissions, so auto-sizing can't see
    // the jobs itself).
    std::uint64_t defaultCap = spec.capacityPages;
    if (defaultCap == 0)
        for (std::size_t t = 0; t < nt; ++t)
            defaultCap += static_cast<std::uint64_t>(quota[t]) *
                progs[t]->footprintPages;
    cluster::ClusterOptions copts;
    copts.tracer = tracer;
    copts.devices.resize(spec.devices);
    for (std::size_t d = 0; d < spec.devices; ++d) {
        if (d < images.size() && images[d]) {
            copts.devices[d].image = images[d];
            continue;
        }
        DeviceOptions dopts = loadDeviceOptions(
            clusterDeviceRecipe(spec, clusterRung(spec, d)));
        dopts.capacityPages = defaultCap;
        copts.devices[d].options = std::move(dopts);
    }
    cluster::Cluster fleet(
        std::move(copts),
        cluster::makePlacement(spec.placement, spec.placementSeed));

    for (const Slot &s : schedule) {
        JobSpec job;
        job.name = names[s.tenant];
        job.program = progs[s.tenant];
        // Fresh policy object per job (policies may carry state).
        job.policyObj = std::shared_ptr<OffloadPolicy>(
            makePolicy(spec.tenants[s.tenant].technique));
        job.arrival = s.at;
        fleet.submit(job, s.tenant);
    }
    return fleet.drain();
}

std::vector<cluster::ClusterSnapshot>
SweepRunner::runClusterAll(const std::vector<ClusterRunSpec> &specs)
{
    const std::size_t n = specs.size();

    // Phase 1: build each distinct warm device image once, in
    // parallel. The dedup key is the per-device recipe — config, age
    // rung, warm traffic — so it collapses equal rungs both within a
    // fleet and across cells (a P-policies x R-rungs sweep builds R
    // images, not P*R*devices).
    std::vector<std::vector<std::shared_ptr<const DeviceImage>>>
        cellImages(n);
    double warmWall = 0.0;
    std::size_t warmBuilt = 0;
    {
        std::unordered_map<std::string, std::size_t> slots;
        std::vector<LoadRunSpec> recipes;
        std::vector<std::vector<std::size_t>> slotOf(n);
        for (std::size_t i = 0; i < n; ++i) {
            cellImages[i].assign(specs[i].devices, nullptr);
            if (specs[i].warmupJobs == 0 || specs[i].devices == 0 ||
                specs[i].tenants.empty())
                continue;
            slotOf[i].assign(specs[i].devices, 0);
            for (std::size_t d = 0; d < specs[i].devices; ++d) {
                LoadRunSpec recipe = clusterDeviceRecipe(
                    specs[i], clusterRung(specs[i], d));
                const auto [it, fresh] = slots.emplace(
                    warmImageKey(recipe), recipes.size());
                if (fresh)
                    recipes.push_back(std::move(recipe));
                slotOf[i][d] = it->second;
            }
        }
        if (!recipes.empty()) {
            std::vector<std::shared_ptr<const DeviceImage>> images(
                recipes.size());
            const auto w0 = std::chrono::steady_clock::now();
            parallelFor(workerCount(recipes.size()), recipes.size(),
                        [&](std::size_t j) {
                            images[j] =
                                std::make_shared<const DeviceImage>(
                                    buildWarmImage(recipes[j]));
                        });
            warmWall = sinceSeconds(w0);
            warmBuilt = recipes.size();
            for (std::size_t i = 0; i < n; ++i)
                for (std::size_t d = 0; d < slotOf[i].size(); ++d)
                    cellImages[i][d] = images[slotOf[i][d]];
        }
    }

    // Phase 2: the fleet cells, forking from the shared images.
    std::vector<cluster::ClusterSnapshot> results(n);
    timedSweep(n, [&] {
        parallelFor(workerCount(n), n, [&](std::size_t i) {
            const auto c0 = std::chrono::steady_clock::now();
            // A cell-level trace config overrides the sweep-wide one.
            auto tracer = makeTracer(specs[i].trace.enabled()
                                         ? specs[i].trace
                                         : opts_.trace);
            results[i] =
                runClusterCell(specs[i], cellImages[i], tracer);
            traceCells_[i] = {clusterCellLabel(specs[i]),
                              std::move(tracer)};
            recordCell(i, clusterCellLabel(specs[i]),
                       sinceSeconds(c0), results[i].eventsFired);
        });
    });
    perfWarmWall_ = warmWall;
    perfWarmImages_ = warmBuilt;
    return results;
}

cluster::ClusterSnapshot
SweepRunner::runCluster(const ClusterRunSpec &spec)
{
    std::vector<cluster::ClusterSnapshot> snaps =
        runClusterAll({spec});
    return std::move(snaps.front());
}

SweepResult
SweepRunner::run(std::vector<RunSpec> specs)
{
    const std::size_t n = specs.size();
    std::vector<RunResult> results(n);
    const unsigned threads = workerCount(n);
    timedSweep(n, [&] {
        parallelFor(threads, n, [&](std::size_t i) {
            const auto c0 = std::chrono::steady_clock::now();
            auto tracer = makeTracer(opts_.trace);
            results[i] = runOneCell(specs[i], tracer);
            traceCells_[i] = {
                specs[i].workload + "/" + specs[i].technique,
                std::move(tracer)};
            recordCell(i,
                       specs[i].workload + "/" + specs[i].technique,
                       sinceSeconds(c0), results[i].eventsFired);
        });
    });
    return SweepResult(std::move(specs), std::move(results), perfWall_,
                       threads);
}

} // namespace conduit::runner
