/**
 * @file
 * Thread-pooled sweep execution.
 *
 * SweepRunner executes a vector of RunSpecs across worker threads.
 * Every run is fully independent — its own Engine (fresh simulated
 * SSD), its own policy object, and a deterministic seed derived only
 * from the spec — so the result of spec i is bit-identical whether
 * the sweep runs on 1 thread or N, and whatever order the scheduler
 * interleaves the workers in. Compiled programs are shared through
 * an immutable ProgramCache.
 */

#ifndef CONDUIT_RUNNER_SWEEP_RUNNER_HH
#define CONDUIT_RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <string>
#include <vector>

#include "src/core/device.hh"
#include "src/runner/program_cache.hh"
#include "src/runner/run_spec.hh"
#include "src/runner/sweep_result.hh"

namespace conduit::runner
{

/** Runner knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;
};

/**
 * Wall-clock self-performance of one sweep call (bench_selfperf's
 * raw material): how long the sweep took, how many cells it ran, and
 * how many simulated events the engine cells fired. Events come from
 * the event kernel only — host-baseline cells contribute cells but
 * no events.
 */
struct SweepPerf
{
    /**
     * Per-cell attribution: how long one cell took on its worker
     * and how many simulated events it fired, so a kernel
     * regression localizes to a workload instead of hiding in the
     * sweep total. Host-baseline cells report zero events.
     */
    struct CellPerf
    {
        std::string label;
        double wallSeconds = 0.0;
        std::uint64_t eventsFired = 0;

        double
        eventsPerSec() const
        {
            return wallSeconds > 0.0
                ? static_cast<double>(eventsFired) / wallSeconds
                : 0.0;
        }
    };

    double wallSeconds = 0.0;
    std::size_t cells = 0;
    std::uint64_t eventsFired = 0;
    /** One entry per cell, in spec order. */
    std::vector<CellPerf> perCell;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(eventsFired) / wallSeconds
            : 0.0;
    }
};

/** Executes sweep matrices in parallel. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /**
     * Execute every spec and return results in spec order. Throws
     * the first (by spec index) exception any run raised, after all
     * workers have stopped.
     */
    SweepResult run(std::vector<RunSpec> specs);

    /**
     * Execute one spec synchronously (also the per-worker body, so
     * serial and parallel execution are the same code path).
     */
    RunResult runOne(const RunSpec &spec);

    /**
     * Execute one multi-tenant cell: all of @p spec's streams co-run
     * on one fresh simulated SSD. Deterministic for equal specs.
     */
    sched::MultiRunResult runMulti(const MultiRunSpec &spec);

    /**
     * Execute every multi-tenant cell across the worker pool and
     * return results in spec order (cells are independent engine
     * runs, so results are thread-count invariant like run()).
     */
    std::vector<sched::MultiRunResult>
    runMultiAll(const std::vector<MultiRunSpec> &specs);

    /**
     * Execute one offered-load cell: a fresh persistent Device,
     * @p spec.jobs jobs submitted open-loop at the spec's arrival
     * rate, run to completion (eager retirement, so regions recycle
     * under sustained load). Deterministic for equal specs.
     */
    DeviceSnapshot runLoad(const LoadRunSpec &spec);

    /**
     * Execute every offered-load cell across the worker pool and
     * return snapshots in spec order (cells are independent device
     * lifetimes, so results are thread-count invariant like run()).
     */
    std::vector<DeviceSnapshot>
    runLoadAll(const std::vector<LoadRunSpec> &specs);

    /**
     * Execute one aging cell: the spec's offered-load cell on a
     * device with the reliability subsystem enabled and fast-
     * forwarded to (preWearCycles, retentionDays). Deterministic for
     * equal specs.
     */
    DeviceSnapshot runAging(const AgingRunSpec &spec);

    /**
     * Execute every aging cell across the worker pool and return
     * snapshots in spec order (thread-count invariant like run()).
     */
    std::vector<DeviceSnapshot>
    runAgingAll(const std::vector<AgingRunSpec> &specs);

    /**
     * Worker threads a sweep of @p jobs cells would use: the
     * --threads option (0 = hardware concurrency) clamped to the
     * job count.
     */
    unsigned workerCount(std::size_t jobs) const;

    /** The shared compile cache (shared across run() calls too). */
    ProgramCache &cache() { return cache_; }

    /**
     * Self-performance of the most recent run()/runMultiAll()/
     * runLoadAll() call (not updated by the single-cell entry
     * points). Read it after the sweep returns — not concurrently.
     */
    SweepPerf lastPerf() const;

  private:
    /** Time @p body, tallying cells/events into lastPerf(). */
    template <typename Body>
    void timedSweep(std::size_t cells, const Body &body);

    /**
     * Record cell @p i's attribution (workers own disjoint slots,
     * so no synchronization is needed beyond the pool join).
     */
    void recordCell(std::size_t i, std::string label,
                    double wallSeconds, std::uint64_t events);

    SweepOptions opts_;
    ProgramCache cache_;

    double perfWall_ = 0.0;
    std::size_t perfCells_ = 0;
    std::atomic<std::uint64_t> perfEvents_{0};
    std::vector<SweepPerf::CellPerf> perfPerCell_;
};

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_SWEEP_RUNNER_HH
