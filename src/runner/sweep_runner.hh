/**
 * @file
 * Thread-pooled sweep execution.
 *
 * SweepRunner executes a vector of RunSpecs across worker threads.
 * Every run is fully independent — its own Engine (fresh simulated
 * SSD), its own policy object, and a deterministic seed derived only
 * from the spec — so the result of spec i is bit-identical whether
 * the sweep runs on 1 thread or N, and whatever order the scheduler
 * interleaves the workers in. Compiled programs are shared through
 * an immutable ProgramCache.
 */

#ifndef CONDUIT_RUNNER_SWEEP_RUNNER_HH
#define CONDUIT_RUNNER_SWEEP_RUNNER_HH

#include <atomic>
#include <string>
#include <vector>

#include "src/cluster/cluster.hh"
#include "src/core/device.hh"
#include "src/core/program_cache.hh"
#include "src/runner/run_spec.hh"
#include "src/runner/sweep_result.hh"
#include "src/trace/export.hh"

namespace conduit::runner
{

/** The compile-once cache lives in src/core (PR 3); the runner-facing
 *  name stays available so existing call sites keep reading. */
using conduit::ProgramCache;

/** Runner knobs. */
struct SweepOptions
{
    /** Worker threads; 0 = std::thread::hardware_concurrency(). */
    unsigned threads = 0;

    /**
     * Tracing config applied to every cell of a sweep (disabled by
     * default). Each traced cell gets its own Tracer — cells stay
     * independent, so traces are thread-count invariant like the
     * results — collected via lastTraces(). Warm-image builds never
     * trace: only the measured phase records events.
     */
    trace::TraceConfig trace;
};

/**
 * Wall-clock self-performance of one sweep call (bench_selfperf's
 * raw material): how long the sweep took, how many cells it ran, and
 * how many simulated events the engine cells fired. Events come from
 * the event kernel only — host-baseline cells contribute cells but
 * no events.
 */
struct SweepPerf
{
    /**
     * Per-cell attribution: how long one cell took on its worker
     * and how many simulated events it fired, so a kernel
     * regression localizes to a workload instead of hiding in the
     * sweep total. Host-baseline cells report zero events.
     */
    struct CellPerf
    {
        std::string label;
        double wallSeconds = 0.0;
        std::uint64_t eventsFired = 0;

        double
        eventsPerSec() const
        {
            return wallSeconds > 0.0
                ? static_cast<double>(eventsFired) / wallSeconds
                : 0.0;
        }
    };

    double wallSeconds = 0.0;
    std::size_t cells = 0;
    std::uint64_t eventsFired = 0;
    /** One entry per cell, in spec order. */
    std::vector<CellPerf> perCell;

    /**
     * Warm-phase attribution of a steady-state sweep: wall spent
     * building the distinct warm DeviceImages (paid once, before the
     * cells fork) and how many distinct images were built. Zero for
     * cold sweeps. Not folded into wallSeconds — report it once,
     * beside the sweep time.
     */
    double warmupSeconds = 0.0;
    std::size_t warmupImages = 0;

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
            ? static_cast<double>(eventsFired) / wallSeconds
            : 0.0;
    }
};

/** Executes sweep matrices in parallel. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /**
     * Execute every spec and return results in spec order. Throws
     * the first (by spec index) exception any run raised, after all
     * workers have stopped.
     */
    SweepResult run(std::vector<RunSpec> specs);

    /**
     * Execute one spec synchronously (also the per-worker body, so
     * serial and parallel execution are the same code path).
     */
    RunResult runOne(const RunSpec &spec);

    /**
     * Execute one multi-tenant cell: all of @p spec's streams co-run
     * on one fresh simulated SSD. Deterministic for equal specs.
     */
    sched::MultiRunResult runMulti(const MultiRunSpec &spec);

    /**
     * Execute every multi-tenant cell across the worker pool and
     * return results in spec order (cells are independent engine
     * runs, so results are thread-count invariant like run()).
     */
    std::vector<sched::MultiRunResult>
    runMultiAll(const std::vector<MultiRunSpec> &specs);

    /**
     * Execute one offered-load cell: a fresh persistent Device,
     * @p spec.jobs jobs submitted open-loop at the spec's arrival
     * rate, run to completion (eager retirement, so regions recycle
     * under sustained load). Deterministic for equal specs.
     */
    DeviceSnapshot runLoad(const LoadRunSpec &spec);

    /**
     * Execute every offered-load cell across the worker pool and
     * return snapshots in spec order (cells are independent device
     * lifetimes, so results are thread-count invariant like run()).
     */
    std::vector<DeviceSnapshot>
    runLoadAll(const std::vector<LoadRunSpec> &specs);

    /**
     * Build the warm DeviceImage of @p spec: a fresh device carried
     * through spec.warmupJobs jobs of warm traffic (the same arrival
     * process the cell uses, under spec.warmupTechnique) and
     * snapshotted at quiescence. Cells whose warm-phase inputs are
     * equal produce byte-identical images, so one image can serve
     * every such cell read-only (Device::fromImage deep-copies).
     */
    DeviceImage buildWarmImage(const LoadRunSpec &spec);

    /**
     * Execute one aging cell: the spec's offered-load cell on a
     * device with the reliability subsystem enabled and fast-
     * forwarded to (preWearCycles, retentionDays). Deterministic for
     * equal specs.
     */
    DeviceSnapshot runAging(const AgingRunSpec &spec);

    /**
     * Execute every aging cell across the worker pool and return
     * snapshots in spec order (thread-count invariant like run()).
     */
    std::vector<DeviceSnapshot>
    runAgingAll(const std::vector<AgingRunSpec> &specs);

    /**
     * Execute one fleet cell: a cluster::Cluster of spec.devices
     * devices behind the spec's placement policy, serving the merged
     * open-loop tenant streams. One sequential deterministic
     * simulation — identical results on any thread count. Updates
     * lastPerf() (a fleet cell is a one-cell sweep).
     */
    cluster::ClusterSnapshot runCluster(const ClusterRunSpec &spec);

    /**
     * Execute every fleet cell across the worker pool and return
     * snapshots in spec order. Warm fleets share per-rung
     * DeviceImages: each distinct warm recipe (config, age rung,
     * warm traffic) builds once — lastPerf().warmupImages — and
     * every matching device in every cell forks it.
     */
    std::vector<cluster::ClusterSnapshot>
    runClusterAll(const std::vector<ClusterRunSpec> &specs);

    /**
     * Worker threads a sweep of @p jobs cells would use: the
     * --threads option (0 = hardware concurrency) clamped to the
     * job count.
     */
    unsigned workerCount(std::size_t jobs) const;

    /** The shared compile cache (shared across run() calls too). */
    ProgramCache &cache() { return cache_; }

    /**
     * Self-performance of the most recent run()/runMultiAll()/
     * runLoadAll() call (not updated by the single-cell entry
     * points). Read it after the sweep returns — not concurrently.
     */
    SweepPerf lastPerf() const;

    /**
     * Per-cell traces of the most recent sweep call, in spec order
     * (tracer null when tracing was disabled — host-baseline cells
     * keep an empty tracer so cell indices line up). Not updated by
     * the single-cell entry points except runCluster. Read after the
     * sweep returns — not concurrently.
     */
    const std::vector<trace::TraceCell> &
    lastTraces() const
    {
        return traceCells_;
    }

  private:
    /** Fresh per-cell tracer, or null when @p cfg is disabled. */
    static std::shared_ptr<trace::Tracer>
    makeTracer(const trace::TraceConfig &cfg)
    {
        return cfg.enabled() ? std::make_shared<trace::Tracer>(cfg)
                             : nullptr;
    }

    /** The shared single-spec body of run()/runOne(). */
    RunResult runOneCell(const RunSpec &spec,
                         const std::shared_ptr<trace::Tracer> &tracer);

    /** The shared multi-tenant body of runMultiAll()/runMulti(). */
    sched::MultiRunResult
    runMultiCell(const MultiRunSpec &spec,
                 const std::shared_ptr<trace::Tracer> &tracer);
    /**
     * The shared single-cell body: runLoad with an optional
     * pre-built warm image. With spec.steadyState set, the cell
     * forks from @p warm (building its own image when null — the
     * standalone entry points); otherwise the warm phase, if any,
     * replays in place. Either way the measured phase is the same
     * code on the same device state, so fork and cold cells are
     * byte-identical.
     */
    DeviceSnapshot
    runLoadCell(const LoadRunSpec &spec, const DeviceImage *warm,
                const std::shared_ptr<trace::Tracer> &tracer);

    /**
     * Sweep @p specs with warm-image sharing: distinct warm images
     * (deduplicated by warm-phase inputs) build once in parallel,
     * then every cell forks its image. Labels are per-cell
     * attribution strings, in spec order.
     */
    std::vector<DeviceSnapshot>
    runLoadSweep(const std::vector<LoadRunSpec> &specs,
                 const std::vector<std::string> &labels);

    /**
     * The shared fleet-cell body: construct the cluster (device d
     * forking @p images[d] when non-null), merge the tenant arrival
     * streams, route every job, drain. @p images must have one entry
     * per device (null = fresh device).
     */
    cluster::ClusterSnapshot runClusterCell(
        const ClusterRunSpec &spec,
        const std::vector<std::shared_ptr<const DeviceImage>>
            &images,
        const std::shared_ptr<trace::Tracer> &tracer);

    /** Time @p body, tallying cells/events into lastPerf(). */
    template <typename Body>
    void timedSweep(std::size_t cells, const Body &body);

    /**
     * Record cell @p i's attribution (workers own disjoint slots,
     * so no synchronization is needed beyond the pool join).
     */
    void recordCell(std::size_t i, std::string label,
                    double wallSeconds, std::uint64_t events);

    SweepOptions opts_;
    ProgramCache cache_;

    double perfWall_ = 0.0;
    std::size_t perfCells_ = 0;
    std::atomic<std::uint64_t> perfEvents_{0};
    std::vector<SweepPerf::CellPerf> perfPerCell_;
    double perfWarmWall_ = 0.0;
    std::size_t perfWarmImages_ = 0;

    /** Per-cell traces of the last sweep (see lastTraces()). */
    std::vector<trace::TraceCell> traceCells_;
};

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_SWEEP_RUNNER_HH
