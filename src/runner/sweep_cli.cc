#include "src/runner/sweep_cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/offload/policy.hh"

namespace conduit::runner
{

namespace
{

[[noreturn]] void
usage(const char *prog, int code, const char *extra_usage = nullptr)
{
    std::fprintf(
        stderr,
        "usage: %s [--threads N] [--scale X] [--workloads a,b]\n"
        "          [--techniques a,b] [--csv PATH] [--json PATH]\n"
        "          [--cell-perf PATH] [--trace PATH]\n"
        "          [--trace-filter cat,cat] [--list-workloads]\n"
        "          [--list-techniques] [--list-policies]\n",
        prog);
    if (extra_usage)
        std::fputs(extra_usage, stderr);
    std::exit(code);
}

[[noreturn]] void
badValue(const char *prog, const std::string &flag,
         const std::string &value)
{
    std::fprintf(stderr, "%s: invalid value for %s: '%s'\n", prog,
                 flag.c_str(), value.c_str());
    usage(prog, 2);
}

/** Whole-string unsigned parse; rejects trailing garbage. */
unsigned
parseUnsigned(const char *prog, const std::string &flag,
              const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0' ||
        value[0] == '-')
        badValue(prog, flag, value);
    return static_cast<unsigned>(v);
}

/** Whole-string double parse; rejects trailing garbage. */
double
parseDouble(const char *prog, const std::string &flag,
            const std::string &value)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == value.c_str() || *end != '\0')
        badValue(prog, flag, value);
    return v;
}

} // namespace

SweepCli
SweepCli::parse(int argc, char **argv, const FlagHandler &extra,
                const char *extra_usage)
{
    SweepCli cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::function<std::string()> value =
            [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n",
                             argv[0], arg.c_str());
                usage(argv[0], 2, extra_usage);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h")
            usage(argv[0], 0, extra_usage);
        else if (arg == "--list-workloads")
            cli.listWorkloads = true;
        else if (arg == "--list-techniques")
            cli.listTechniques = true;
        else if (arg == "--list-policies")
            listAndExit(policyNames());
        else if (arg == "--threads")
            cli.threads = parseUnsigned(argv[0], arg, value());
        else if (arg == "--scale")
            cli.scale = parseDouble(argv[0], arg, value());
        else if (arg == "--workloads")
            cli.workloadFilter = value();
        else if (arg == "--techniques")
            cli.techniqueFilter = value();
        else if (arg == "--csv")
            cli.csvPath = value();
        else if (arg == "--json")
            cli.jsonPath = value();
        else if (arg == "--cell-perf")
            cli.cellPerfPath = value();
        else if (arg == "--trace")
            cli.tracePath = value();
        else if (arg == "--trace-filter") {
            cli.traceFilter = value();
            if (!trace::parseCategories(cli.traceFilter))
                badValue(argv[0], arg, cli.traceFilter);
        }
        else if (extra && extra(arg, value))
            continue;
        else {
            std::fprintf(stderr, "%s: unknown flag %s\n", argv[0],
                         arg.c_str());
            usage(argv[0], 2, extra_usage);
        }
    }
    return cli;
}

SweepOptions
SweepCli::runnerOptions() const
{
    SweepOptions opts;
    opts.threads = threads;
    if (!tracePath.empty()) {
        // parse() already validated the filter, so the optional is
        // always engaged here; empty filter means every category.
        opts.trace.categories =
            traceFilter.empty()
                ? trace::kAllCategories
                : *trace::parseCategories(traceFilter);
    }
    return opts;
}

void
listAndExit(const std::vector<std::string> &labels)
{
    std::vector<std::string> seen;
    for (const auto &l : labels) {
        if (std::find(seen.begin(), seen.end(), l) != seen.end())
            continue;
        seen.push_back(l);
        std::printf("%s\n", l.c_str());
    }
    std::exit(0);
}

void
SweepCli::configure(RunMatrix &matrix,
                    const std::string &baseline) const
{
    if (listWorkloads)
        listAndExit(matrix.workloadLabels());
    if (listTechniques)
        listAndExit(matrix.techniqueLabels());
    WorkloadParams p;
    p.scale = scale;
    matrix.params(p);
    if (!reportUnknown(splitCsv(workloadFilter),
                       matrix.workloadLabels(), "workload") ||
        !reportUnknown(splitCsv(techniqueFilter),
                       matrix.techniqueLabels(), "technique"))
        std::exit(2);
    matrix.filterWorkloads(workloadFilter);
    std::string techniques = techniqueFilter;
    if (!techniques.empty() && !baseline.empty()) {
        const auto labels = splitCsv(techniques);
        if (std::find(labels.begin(), labels.end(), baseline) ==
            labels.end())
            techniques += "," + baseline;
    }
    matrix.filterTechniques(techniques);
}

bool
SweepCli::writeCellPerfCsv(const std::string &path,
                           const SweepPerf &perf)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "label,wall_seconds,events_fired,events_per_sec\n");
    for (const SweepPerf::CellPerf &c : perf.perCell)
        std::fprintf(f, "%s,%.6f,%llu,%.0f\n", c.label.c_str(),
                     c.wallSeconds,
                     static_cast<unsigned long long>(c.eventsFired),
                     c.eventsPerSec());
    return std::fclose(f) == 0;
}

int
SweepCli::writeTraces(const SweepRunner &runner) const
{
    if (tracePath.empty())
        return 0;
    if (!trace::writeTraceFile(tracePath, runner.lastTraces())) {
        std::fprintf(stderr, "error: could not write %s\n",
                     tracePath.c_str());
        return 1;
    }
    return 0;
}

int
SweepCli::finish(const SweepResult &sweep, const SweepPerf *perf,
                 const SweepRunner *runner) const
{
    int status = 0;
    if (!csvPath.empty() && !sweep.writeCsvFile(csvPath)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     csvPath.c_str());
        status = 1;
    }
    if (!jsonPath.empty() && !sweep.writeJsonFile(jsonPath)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     jsonPath.c_str());
        status = 1;
    }
    if (!cellPerfPath.empty()) {
        if (!perf) {
            std::fprintf(stderr,
                         "error: this bench does not attribute "
                         "per-cell perf; --cell-perf ignored\n");
            status = 1;
        } else if (!writeCellPerfCsv(cellPerfPath, *perf)) {
            std::fprintf(stderr, "error: could not write %s\n",
                         cellPerfPath.c_str());
            status = 1;
        }
    }
    if (!tracePath.empty()) {
        if (!runner) {
            std::fprintf(stderr,
                         "error: this bench does not run through a "
                         "SweepRunner sweep; --trace ignored\n");
            status = 1;
        } else {
            status |= writeTraces(*runner);
        }
    }
    std::fprintf(stderr,
                 "[sweep] %zu runs on %u thread%s in %.2fs\n",
                 sweep.size(), sweep.threads(),
                 sweep.threads() == 1 ? "" : "s",
                 sweep.wallSeconds());
    return status;
}

} // namespace conduit::runner
