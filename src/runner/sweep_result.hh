/**
 * @file
 * Sweep result aggregation and emission.
 *
 * SweepResult pairs every RunSpec with its RunResult in spec order
 * (independent of how the sweep was scheduled across threads) and
 * owns the result-emission layer the benches share: machine-readable
 * CSV / JSON rows plus the table-formatting helpers that used to be
 * copy-pasted into bench/common.hh.
 */

#ifndef CONDUIT_RUNNER_SWEEP_RESULT_HH
#define CONDUIT_RUNNER_SWEEP_RESULT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "src/cluster/cluster.hh"
#include "src/core/device.hh"
#include "src/runner/run_spec.hh"

namespace conduit::runner
{

/** All rows of one executed sweep, in matrix (spec) order. */
class SweepResult
{
  public:
    SweepResult() = default;
    SweepResult(std::vector<RunSpec> specs,
                std::vector<RunResult> results, double wall_seconds,
                unsigned threads);

    std::size_t size() const { return results_.size(); }

    const std::vector<RunSpec> &specs() const { return specs_; }
    const std::vector<RunResult> &results() const { return results_; }

    const RunSpec &spec(std::size_t i) const { return specs_.at(i); }
    const RunResult &result(std::size_t i) const
    {
        return results_.at(i);
    }

    /** First row matching the labels, or nullptr. */
    const RunResult *find(const std::string &workload,
                          const std::string &technique) const;

    /** Like find(), but throws std::out_of_range when absent. */
    const RunResult &at(const std::string &workload,
                        const std::string &technique) const;

    /** Distinct workload labels in first-appearance order. */
    std::vector<std::string> workloadLabels() const;

    /** Distinct technique labels in first-appearance order. */
    std::vector<std::string> techniqueLabels() const;

    /** Host wall-clock the sweep took (not simulated time). */
    double wallSeconds() const { return wallSeconds_; }

    /** Worker threads the sweep actually used. */
    unsigned threads() const { return threads_; }

    /**
     * Emit one CSV row per run (stable header, spec order). Output
     * is byte-identical for identical specs regardless of the
     * thread count the sweep ran with.
     */
    void writeCsv(std::ostream &os) const;

    /** Emit a JSON array of row objects (same fields as the CSV). */
    void writeJson(std::ostream &os) const;

    /** @name Convenience file variants @{ */
    bool writeCsvFile(const std::string &path) const;
    bool writeJsonFile(const std::string &path) const;
    /** @} */

  private:
    std::vector<RunSpec> specs_;
    std::vector<RunResult> results_;
    double wallSeconds_ = 0.0;
    unsigned threads_ = 1;
};

/**
 * One emitted row of an offered-load (saturation) sweep: a cell's
 * operating point plus its throughput and latency-tail outcomes.
 */
struct LoadRow
{
    std::string workload;
    std::string technique;

    /** Offered load (jobs per simulated second; 0 = all at t=0). */
    double jobsPerSec = 0.0;

    /** Jobs the cell completed. */
    std::uint64_t jobs = 0;

    double makespanMs = 0.0;

    /** Achieved completion rate: jobs / makespan. */
    double throughputJobsPerSec = 0.0;

    /** Mean job arrival-to-completion time. */
    double meanSojournMs = 0.0;

    /** Per-request (instruction) latency tail, device-wide. */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p9999Us = 0.0;
};

/** Reduce an executed cell's snapshot to its emitted row. */
LoadRow makeLoadRow(const LoadRunSpec &spec,
                    const DeviceSnapshot &snap);

/** @name Offered-load row emission (same contract as SweepResult's:
 *  byte-identical output for identical specs, any thread count) @{ */
void writeLoadCsv(std::ostream &os, const std::vector<LoadRow> &rows);
void writeLoadJson(std::ostream &os, const std::vector<LoadRow> &rows);
bool writeLoadCsvFile(const std::string &path,
                      const std::vector<LoadRow> &rows);
bool writeLoadJsonFile(const std::string &path,
                       const std::vector<LoadRow> &rows);
/** @} */

/**
 * One emitted row of a device-aging sweep: the offered-load row
 * fields plus the device's age and its reliability outcomes.
 */
struct AgingRow
{
    /** The traffic cell's operating point and outcomes. */
    LoadRow load;

    /** Device age the cell ran at. */
    std::uint32_t preWearCycles = 0;
    double retentionDays = 0.0;

    /** Reliability outcomes of the cell's device lifetime. */
    reliability::ReliabilityStats rel;
};

/** Reduce an executed aging cell's snapshot to its emitted row. */
AgingRow makeAgingRow(const AgingRunSpec &spec,
                      const DeviceSnapshot &snap);

/** @name Aging row emission (byte-identical for identical specs,
 *  any thread count) @{ */
void writeAgingCsv(std::ostream &os,
                   const std::vector<AgingRow> &rows);
void writeAgingJson(std::ostream &os,
                    const std::vector<AgingRow> &rows);
bool writeAgingCsvFile(const std::string &path,
                       const std::vector<AgingRow> &rows);
bool writeAgingJsonFile(const std::string &path,
                        const std::vector<AgingRow> &rows);
/** @} */

/**
 * One emitted row of a fleet sweep. A cell emits one "fleet" row
 * (fleet-wide throughput, tails, utilization spread, imbalance)
 * followed by one row per tenant (its share of the load, its tail,
 * its SLO attainment). Fleet-level columns repeat on tenant rows so
 * every row is self-describing.
 */
struct ClusterRow
{
    /** Cell label (ClusterRunSpec::label). */
    std::string label;

    /** Placement policy the cell routed with. */
    std::string placement;

    /** Fleet size (devices). */
    std::size_t devices = 0;

    /** "fleet" for the aggregate row, else the tenant's name. */
    std::string tenant;

    /** Offered load for this row's scope (jobs per simulated sec). */
    double jobsPerSec = 0.0;

    /** Jobs this row's scope completed (measured phase only). */
    std::uint64_t jobs = 0;

    /** Fleet measured span (first arrival epoch to last job end). */
    double makespanMs = 0.0;

    /** Achieved completion rate for this row's scope. */
    double throughputJobsPerSec = 0.0;

    /** Mean job arrival-to-completion time for this row's scope. */
    double meanSojournMs = 0.0;

    /** Per-request (instruction) latency tail for this scope. */
    double p50Us = 0.0;
    double p99Us = 0.0;
    double p9999Us = 0.0;

    /** Job-sojourn tail for this scope (SLOs are sojourn-based). */
    double sojournP99Ms = 0.0;

    /** Tenant SLO (ms); 0 on the fleet row and SLO-less tenants. */
    double sloMs = 0.0;

    /** Fraction of jobs meeting their SLO (1.0 when none is set;
     *  the fleet row weights tenants by completed jobs). */
    double sloAttainment = 1.0;

    /** @name Fleet-level balance (same values on every row) @{ */

    /** Mean/max per-device occupancy: sum of per-job residency
     *  (end - admitted) over the measured span. */
    double utilMean = 0.0;
    double utilMax = 0.0;

    /** Routing imbalance: devices * max routed / total routed
     *  (1.0 = perfectly even). */
    double imbalance = 0.0;

    /** @} */
};

/** Reduce an executed fleet cell to its rows (fleet + tenants). */
std::vector<ClusterRow>
makeClusterRows(const ClusterRunSpec &spec,
                const cluster::ClusterSnapshot &snap);

/** @name Fleet row emission (byte-identical for identical specs,
 *  any thread count) @{ */
void writeClusterCsv(std::ostream &os,
                     const std::vector<ClusterRow> &rows);
void writeClusterJson(std::ostream &os,
                      const std::vector<ClusterRow> &rows);
bool writeClusterCsvFile(const std::string &path,
                         const std::vector<ClusterRow> &rows);
bool writeClusterJsonFile(const std::string &path,
                          const std::vector<ClusterRow> &rows);
/** @} */

/** Geometric mean of a vector of ratios (0 if empty). */
double gmean(const std::vector<double> &xs);

/** Print a header row for a workload-major table to stdout. */
void printHeader(const std::vector<std::string> &columns);

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_SWEEP_RESULT_HH
