/**
 * @file
 * Compatibility alias: the compile-once ProgramCache moved to
 * src/core so the Simulation facade and the persistent core::Device
 * share the same cache type as the sweep runner. Existing
 * runner-facing includes and the conduit::runner::ProgramCache name
 * keep working through this header.
 */

#ifndef CONDUIT_RUNNER_PROGRAM_CACHE_HH
#define CONDUIT_RUNNER_PROGRAM_CACHE_HH

#include "src/core/program_cache.hh"

namespace conduit::runner
{

using conduit::ProgramCache;

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_PROGRAM_CACHE_HH
