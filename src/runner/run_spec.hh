/**
 * @file
 * Declarative description of a simulation sweep.
 *
 * A RunSpec names one (workload, technique, config, engine-options)
 * combination; a RunMatrix crosses workload and technique axes into a
 * vector of specs. The benches express each paper figure's evaluation
 * matrix this way and hand it to SweepRunner instead of hand-rolling
 * nested loops around Simulation::run.
 */

#ifndef CONDUIT_RUNNER_RUN_SPEC_HH
#define CONDUIT_RUNNER_RUN_SPEC_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/arrival.hh"
#include "src/core/engine.hh"
#include "src/offload/policy.hh"
#include "src/sim/config.hh"
#include "src/trace/trace.hh"
#include "src/workloads/workloads.hh"

namespace conduit::runner
{

/** Creates a fresh policy object for one run (must be reentrant). */
using PolicyFactory =
    std::function<std::unique_ptr<OffloadPolicy>()>;

/** Which host baseline (if any) a spec runs on. */
enum class HostKind { None, Cpu, Gpu };

/** Split a comma-separated filter list into trimmed labels. */
std::vector<std::string> splitCsv(const std::string &csv);

/** Comma-join labels for "accepted: …" error messages. */
std::string joinLabels(const std::vector<std::string> &labels);

/** First @p filter entry naming no @p labels entry, or nullptr. */
const std::string *findUnknown(const std::vector<std::string> &filter,
                               const std::vector<std::string> &labels);

/**
 * CLI-grade filter validation: report the first @p filter entry
 * naming no @p labels entry to stderr ("unknown <axis> '…';
 * accepted: …") and return false; true when every entry is known.
 */
bool reportUnknown(const std::vector<std::string> &filter,
                   const std::vector<std::string> &labels,
                   const char *axis);

/**
 * The device every sweep runs on unless overridden: the Table 2
 * geometry scaled for seconds-long benches, matching SimOptions'
 * default so runner-driven benches reproduce the facade's numbers.
 */
inline SsdConfig
defaultSweepConfig()
{
    return SsdConfig::scaled(1.0 / 128.0);
}

/**
 * One cell of a sweep: everything needed to execute a single
 * independent run and label its result row.
 */
struct RunSpec
{
    /** Row label; defaults to the workload's display name. */
    std::string workload;

    /**
     * Column label. "CPU" and "GPU" select the host baselines; any
     * other name is resolved through makePolicy() unless @ref policy
     * is set.
     */
    std::string technique;

    /** Device configuration (seed included — see SweepRunner). */
    SsdConfig config = defaultSweepConfig();

    /** Engine options for this run. */
    EngineOptions engine;

    /** Workload-generator knobs (ignored with a custom program). */
    WorkloadParams params;

    /** Workload to build and compile (via the shared cache). */
    std::optional<WorkloadId> workloadId;

    /** Pre-compiled program overriding @ref workloadId. */
    std::shared_ptr<const Program> program;

    /**
     * Custom policy constructor overriding makePolicy(technique)
     * (used by the ablation bench for ConduitPolicy variants).
     */
    PolicyFactory policy;

    /**
     * Run on the host instead of the SSD engine. Left at None, the
     * technique labels "CPU" and "GPU" still select the baselines;
     * set it explicitly to run a host baseline under another label
     * (e.g. Fig. 4's "OSP").
     */
    HostKind host = HostKind::None;
};

/**
 * One tenant stream of a multi-stream cell: which workload it runs
 * and under which policy. Host baselines do not apply — streams
 * execute on the SSD engine by definition.
 */
struct StreamSlot
{
    /** Stream label; defaults to the workload's display name. */
    std::string workload;

    /** Policy name resolved via makePolicy() unless @ref policy. */
    std::string technique;

    /** Workload to build and compile (via the shared cache). */
    std::optional<WorkloadId> workloadId;

    /** Pre-compiled program overriding @ref workloadId. */
    std::shared_ptr<const Program> program;

    /** Custom policy constructor overriding makePolicy(technique). */
    PolicyFactory policy;
};

/**
 * One multi-tenant cell: N streams co-running on one simulated SSD.
 * The whole cell is a single deterministic engine run; cells are
 * independent of each other, so a set of them can be swept across
 * worker threads exactly like single-stream RunSpecs.
 */
struct MultiRunSpec
{
    /** Cell label for reporting (e.g. "AES+jacobi-1d"). */
    std::string label;

    /** Device configuration the tenants share. */
    SsdConfig config = defaultSweepConfig();

    /** Engine options (device-wide) for this cell. */
    EngineOptions engine;

    /** Workload-generator knobs shared by the streams. */
    WorkloadParams params;

    /** The co-running tenants, in result order. */
    std::vector<StreamSlot> streams;

    /**
     * Execute the cell through the persistent-device job API
     * (core::Device, every stream a tick-0 job) instead of the
     * direct batch engine run. Results are byte-identical by the
     * Device equivalence contract — this switch exists so CI can
     * diff the two paths against each other.
     */
    bool viaDevice = false;
};

/**
 * One offered-load cell: an open-loop stream of identical jobs
 * offered to a persistent Device at a given arrival rate. The cell
 * is one deterministic device lifetime (arrivals included), so a
 * set of cells sweeps across worker threads exactly like RunSpecs.
 */
struct LoadRunSpec
{
    /**
     * Row label; left empty it defaults to the workload's display
     * name (or the program's own name) in runLoad and makeLoadRow.
     */
    std::string workload;

    /** Policy every job runs under (resolved via makePolicy). */
    std::string technique = "Conduit";

    /** Custom policy constructor overriding makePolicy(technique). */
    PolicyFactory policy;

    /** Device configuration for the cell. */
    SsdConfig config = defaultSweepConfig();

    /** Engine options (device-wide). */
    EngineOptions engine;

    /** Workload-generator knobs. */
    WorkloadParams params;

    /** Workload each job executes (via the shared compile cache). */
    std::optional<WorkloadId> workloadId;

    /** Pre-compiled program overriding @ref workloadId. */
    std::shared_ptr<const Program> program;

    /** Jobs offered over the cell's lifetime. */
    std::size_t jobs = 8;

    /**
     * Offered load in jobs per simulated second. 0 submits every
     * job at tick 0 (the closed-form batch degenerate case).
     */
    double jobsPerSec = 0.0;

    /** Arrival-process family (mean spacing is 1 / jobsPerSec). */
    ArrivalKind arrivals = ArrivalKind::Poisson;

    /** Seed for the randomized arrival processes. */
    std::uint64_t arrivalSeed = 1;

    /**
     * Device logical-page pool; 0 auto-sizes to the whole offered
     * job set (every job admitted on arrival; queueing then happens
     * only on device resources, not admission).
     */
    std::uint64_t capacityPages = 0;

    /**
     * @name Steady-state (warm-device) measurement
     *
     * With warmupJobs > 0 the cell runs two phases: warmupJobs jobs
     * of warm traffic drive the device to quiescence, then the
     * measured @ref jobs run on the warmed device (arrival gaps
     * continue the same process; result rows report the measured
     * phase). steadyState selects how the warm phase executes:
     * false replays it in place (cold two-phase), true forks the
     * device from a warm DeviceImage — byte-identical by the
     * fork-equivalence contract, but the image is built once and
     * shared across every cell with identical warm-phase inputs.
     * @{
     */

    /** Warm-traffic jobs before the measured phase (0 = cold run). */
    std::size_t warmupJobs = 0;

    /**
     * Policy the warm traffic runs under. Fixed per rung — not the
     * cell's technique — so cells differing only by policy share one
     * warmed image.
     */
    std::string warmupTechnique = "Conduit";

    /** Fork from a warm DeviceImage instead of replaying the warm
     *  phase in place. Requires warmupJobs > 0. */
    bool steadyState = false;

    /** @} */
};

/**
 * One device-aging cell: an offered-load cell executed on a device
 * fast-forwarded to a given age. The runner enables the reliability
 * subsystem on the cell's config and applies the fast-forward knobs,
 * so a ladder of AgingRunSpecs sweeps latency/throughput vs device
 * age under identical traffic. Cells are independent device
 * lifetimes and sweep across worker threads like every other cell
 * shape.
 */
struct AgingRunSpec
{
    /** The traffic offered to the aged device. */
    LoadRunSpec load;

    /** P/E cycles every block has absorbed before tick 0. */
    std::uint32_t preWearCycles = 0;

    /** Retention age of the resident data at tick 0, in days. */
    double retentionDays = 0.0;
};

/**
 * One tenant of a fleet cell: who is offering jobs to the cluster.
 * Each tenant is an independent open-loop arrival stream; the fleet
 * merges the streams in arrival order and the placement policy picks
 * a device per job.
 */
struct ClusterTenant
{
    /** Tenant label for reporting (defaults to the workload name). */
    std::string name;

    /** Workload every job of this tenant executes. */
    std::optional<WorkloadId> workloadId;

    /** Pre-compiled program overriding @ref workloadId. */
    std::shared_ptr<const Program> program;

    /** Policy the tenant's jobs run under (via makePolicy). */
    std::string technique = "Conduit";

    /**
     * Per-job latency objective in milliseconds; a job attains its
     * SLO when (end - arrival) <= sloMs. 0 disables attainment
     * accounting for this tenant (reported as 1.0).
     */
    double sloMs = 0.0;

    /**
     * Relative share of the offered load (jobs and rate split
     * proportionally across tenants; weights need not sum to 1).
     */
    double weight = 1.0;
};

/**
 * One fleet cell: N devices behind a placement policy, serving the
 * merged open-loop job streams of the tenants. The whole cell is one
 * sequential deterministic simulation — arrivals, routing decisions,
 * and per-device execution included — so a grid of fleet cells
 * sweeps across worker threads exactly like every other cell shape.
 */
struct ClusterRunSpec
{
    /** Cell label for reporting (e.g. "fleet4/least-backlog"). */
    std::string label;

    /** Placement policy name (resolved via cluster::makePlacement). */
    std::string placement = "round-robin";

    /** Seed for randomized placement policies. */
    std::uint64_t placementSeed = 1;

    /** Device configuration shared by the fleet. */
    SsdConfig config = defaultSweepConfig();

    /** Engine options (device-wide). */
    EngineOptions engine;

    /** Workload-generator knobs shared by the tenants. */
    WorkloadParams params;

    /** The tenants offering jobs, in reporting order. */
    std::vector<ClusterTenant> tenants;

    /** Fleet size (devices). */
    std::size_t devices = 1;

    /**
     * Device ages, in P/E cycles, assigned round-robin across the
     * fleet (device d gets ageMix[d % ageMix.size()]). Empty — or
     * all zero — runs a fresh fleet. Non-zero rungs enable the
     * reliability subsystem on those devices and pre-warm them via
     * shared per-rung DeviceImages (one image per distinct recipe).
     */
    std::vector<std::uint32_t> ageMix;

    /** Retention age applied with pre-wear: days per 1000 cycles. */
    double retentionDaysPerKCycle = 0.0;

    /** Jobs offered fleet-wide over the cell's lifetime. */
    std::size_t jobs = 64;

    /**
     * Offered fleet-wide load in jobs per simulated second. 0
     * submits every job at tick 0.
     */
    double jobsPerSec = 0.0;

    /** Arrival-process family (per tenant stream). */
    ArrivalKind arrivals = ArrivalKind::Poisson;

    /** Base seed for the randomized arrival processes (tenant t
     *  offsets it by t so streams are independent). */
    std::uint64_t arrivalSeed = 1;

    /** Per-device logical-page pool; 0 auto-sizes per device. */
    std::uint64_t capacityPages = 0;

    /**
     * Warm-traffic jobs per device before the measured phase (0 =
     * cold fleet). Warm devices are forked from shared DeviceImages
     * (one per distinct warm recipe — age rung included), so a sweep
     * builds each image once no matter how many cells share it.
     */
    std::size_t warmupJobs = 0;

    /** Policy the warm traffic runs under (fixed per image). */
    std::string warmupTechnique = "Conduit";

    /**
     * Cell-level tracing config; when enabled it overrides the
     * sweep-wide SweepOptions::trace for this cell. The fleet shares
     * one Tracer across its devices (device index = trace device id),
     * so placement decisions and per-device activity land in one
     * trace.
     */
    trace::TraceConfig trace;
};

/**
 * Builder crossing workload and technique axes into RunSpecs.
 *
 * Axis order is preserved: build() emits workload-major rows in the
 * exact order the axes were given, so result tables are stable
 * regardless of how the sweep is scheduled.
 */
class RunMatrix
{
  public:
    RunMatrix &config(const SsdConfig &cfg);
    RunMatrix &engine(const EngineOptions &opts);
    RunMatrix &params(const WorkloadParams &p);

    RunMatrix &workload(WorkloadId id);
    RunMatrix &workloads(const std::vector<WorkloadId> &ids);

    /** Add a custom-program row axis entry (e.g. a case study). */
    RunMatrix &program(const std::string &label,
                       std::shared_ptr<const Program> prog);

    RunMatrix &technique(const std::string &name);
    RunMatrix &techniques(const std::vector<std::string> &names);

    /** Add a custom-policy column axis entry (e.g. an ablation). */
    RunMatrix &technique(const std::string &label, PolicyFactory make);

    /** Add a host-baseline column under a custom label. */
    RunMatrix &hostTechnique(const std::string &label, bool gpu);

    /**
     * Keep only workloads / techniques whose display name appears in
     * the comma-separated list; an empty list keeps everything.
     * Used by the bench CLI to run reduced matrices (CI smoke).
     */
    RunMatrix &filterWorkloads(const std::string &csv);
    RunMatrix &filterTechniques(const std::string &csv);

    /** Append a fully explicit spec (bypasses the cross product). */
    RunMatrix &add(RunSpec spec);

    /** @name Axis labels (including extras), in axis order @{ */
    std::vector<std::string> workloadLabels() const;
    std::vector<std::string> techniqueLabels() const;
    /** @} */

    /** Cross product (workload-major), then explicit extras. */
    std::vector<RunSpec> build() const;

  private:
    struct WorkloadAxis
    {
        std::string label;
        std::optional<WorkloadId> id;
        std::shared_ptr<const Program> program;
    };

    struct TechniqueAxis
    {
        std::string label;
        PolicyFactory policy; // null → resolve by label
        HostKind host = HostKind::None;
    };

    SsdConfig config_ = defaultSweepConfig();
    EngineOptions engine_;
    WorkloadParams params_;
    std::vector<WorkloadAxis> workloads_;
    std::vector<TechniqueAxis> techniques_;
    std::vector<RunSpec> extras_;
    std::vector<std::string> workloadFilter_;
    std::vector<std::string> techniqueFilter_;
};

} // namespace conduit::runner

#endif // CONDUIT_RUNNER_RUN_SPEC_HH
