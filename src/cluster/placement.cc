#include "src/cluster/placement.hh"

#include <stdexcept>
#include <unordered_map>

#include "src/sim/rng.hh"

namespace conduit::cluster
{

namespace
{

/** Cycles the fleet in submission order, blind to device state. */
class RoundRobinPlacement final : public PlacementPolicy
{
  public:
    const char *name() const override { return "round-robin"; }

    std::size_t
    place(const JobView &, const std::vector<DeviceProbe> &probes)
        override
    {
        return next_++ % probes.size();
    }

  private:
    std::size_t next_ = 0;
};

/** Uniform seeded choice (the classic randomized load balancer). */
class RandomPlacement final : public PlacementPolicy
{
  public:
    explicit RandomPlacement(std::uint64_t seed) : rng_(seed) {}

    const char *name() const override { return "random"; }

    std::size_t
    place(const JobView &, const std::vector<DeviceProbe> &probes)
        override
    {
        return static_cast<std::size_t>(rng_.below(probes.size()));
    }

  private:
    Rng rng_;
};

/**
 * Least-backlog index at @p probes: fewest pending jobs, then fewest
 * admitted pages, then the lowest device index — a total order, so
 * ties never depend on anything but the probes themselves.
 */
std::size_t
leastBacklog(const std::vector<DeviceProbe> &probes)
{
    std::size_t best = 0;
    for (std::size_t d = 1; d < probes.size(); ++d) {
        const DeviceProbe &p = probes[d];
        const DeviceProbe &b = probes[best];
        if (p.pendingJobs < b.pendingJobs ||
            (p.pendingJobs == b.pendingJobs &&
             p.admittedPages < b.admittedPages))
            best = d;
    }
    return best;
}

/** Joins the shortest queue at each arrival tick. */
class LeastBacklogPlacement final : public PlacementPolicy
{
  public:
    const char *name() const override { return "least-backlog"; }
    bool needsProbes() const override { return true; }

    std::size_t
    place(const JobView &, const std::vector<DeviceProbe> &probes)
        override
    {
        return leastBacklog(probes);
    }
};

/**
 * Tenant-sticky with backlog spill: each tenant gets a home device
 * (first placement joins the shortest queue) and keeps it — warm FTL
 * mappings, staging, and latch state stay tenant-local — unless the
 * home's pending backlog exceeds the fleet minimum by more than
 * kSpillMargin jobs, in which case the job spills to the shortest
 * queue (without moving the tenant's home).
 */
class AffinityPlacement final : public PlacementPolicy
{
  public:
    const char *name() const override { return "affinity"; }
    bool needsProbes() const override { return true; }

    std::size_t
    place(const JobView &job, const std::vector<DeviceProbe> &probes)
        override
    {
        const auto it = home_.find(job.tenant);
        if (it == home_.end()) {
            const std::size_t h = leastBacklog(probes);
            home_.emplace(job.tenant, h);
            return h;
        }
        const std::size_t h = it->second;
        const std::size_t least = leastBacklog(probes);
        if (probes[h].pendingJobs >
            probes[least].pendingJobs + kSpillMargin)
            return least;
        return h;
    }

  private:
    /** Backlog lead (jobs) the home may hold before spilling. */
    static constexpr std::size_t kSpillMargin = 4;

    std::unordered_map<std::size_t, std::size_t> home_;
};

} // namespace

std::unique_ptr<PlacementPolicy>
makePlacement(const std::string &name, std::uint64_t seed)
{
    if (name == "round-robin")
        return std::make_unique<RoundRobinPlacement>();
    if (name == "random")
        return std::make_unique<RandomPlacement>(seed);
    if (name == "least-backlog")
        return std::make_unique<LeastBacklogPlacement>();
    if (name == "affinity")
        return std::make_unique<AffinityPlacement>();
    throw std::invalid_argument("unknown placement policy: " + name);
}

const std::vector<std::string> &
placementNames()
{
    static const std::vector<std::string> names = {
        "round-robin", "random", "least-backlog", "affinity"};
    return names;
}

} // namespace conduit::cluster
