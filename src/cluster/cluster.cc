#include "src/cluster/cluster.hh"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "src/trace/trace.hh"

namespace conduit::cluster
{

Cluster::Cluster(ClusterOptions opts,
                 std::unique_ptr<PlacementPolicy> policy)
    : policy_(std::move(policy))
{
    if (opts.devices.empty())
        throw std::invalid_argument("Cluster: empty fleet");
    if (!policy_)
        throw std::invalid_argument("Cluster: null placement policy");

    devices_.reserve(opts.devices.size());
    for (DeviceSeed &seed : opts.devices) {
        devices_.push_back(seed.image
                               ? std::make_unique<Device>(*seed.image)
                               : std::make_unique<Device>(
                                     std::move(seed.options)));
        base_ = std::max(base_, devices_.back()->now());
    }

    // Idle probes for the probe-free path: device identity only, no
    // simulated state — policies that declared needsProbes()==false
    // never look past .size() anyway.
    idleProbes_.resize(devices_.size());

    // Attach the fleet tracer after construction, so image-forked
    // devices (which always start traceless) pick it up too.
    tracer_ = std::move(opts.tracer);
    if (tracer_) {
        for (std::size_t d = 0; d < devices_.size(); ++d)
            devices_[d]->setTracer(
                tracer_, static_cast<std::uint32_t>(d));
    }
}

RoutedJob
Cluster::submit(const JobSpec &spec, std::size_t tenant)
{
    if (spec.arrival < lastArrival_)
        throw std::invalid_argument(
            "Cluster::submit: arrivals must be non-decreasing");
    lastArrival_ = spec.arrival;

    RoutedJob r;
    r.tenant = tenant;
    r.arrival = base_ + spec.arrival;

    JobView view;
    view.index = routed_.size();
    view.tenant = tenant;
    view.footprintPages = spec.program ? spec.program->footprintPages
                                       : 0;
    view.arrival = spec.arrival;

    // Probe-free policies (and trivially-placed single-device
    // fleets) keep every device on the bare upfront-submission path
    // a standalone Device runs — nothing simulates until drain(), so
    // same-tick event ordering matches the bare device exactly.
    std::size_t dev;
    const bool probed = policy_->needsProbes() && devices_.size() > 1;
    std::vector<DeviceProbe> probes;
    if (probed) {
        probes = probe(r.arrival);
        dev = policy_->place(view, probes);
    } else {
        dev = policy_->place(view, idleProbes_);
    }
    if (dev >= devices_.size())
        throw std::logic_error(
            "Cluster: placement returned an out-of-range device");
    r.device = dev;

    JobSpec placed = spec;
    placed.arrival = r.arrival;
    r.id = devices_[dev]->submit(placed);
    if (tracer_ && tracer_->wants(trace::Category::Placement)) {
        trace::Event e;
        e.cat = trace::Category::Placement;
        e.kind = trace::EventKind::Placement;
        e.device = static_cast<std::uint32_t>(dev);
        e.start = r.arrival;
        e.end = r.arrival;
        e.a = tenant;
        e.b = r.id;
        e.c = probed ? probes[dev].pendingJobs : 0;
        // Decision record: policy name plus the probe snapshot it saw
        // (comma-free so the CSV exporter's tag column stays intact).
        std::string why = policy_->name();
        if (probed) {
            char buf[64];
            for (std::size_t d = 0; d < probes.size(); ++d) {
                std::snprintf(buf, sizeof buf,
                              " d%zu:p%zu/w%zu/u%.4f", d,
                              probes[d].pendingJobs,
                              probes[d].waitingJobs,
                              probes[d].dieBusyFraction);
                why += buf;
            }
        }
        e.str = tracer_->intern(why);
        tracer_->record(e);
    }
    routed_.push_back(r);
    return r;
}

std::vector<DeviceProbe>
Cluster::probe(Tick t)
{
    std::vector<DeviceProbe> probes;
    probes.reserve(devices_.size());
    for (auto &dev : devices_) {
        dev->advanceTo(t);
        probes.push_back(dev->probe());
    }
    return probes;
}

ClusterSnapshot
Cluster::drain()
{
    ClusterSnapshot snap;
    snap.base = base_;
    snap.routed = routed_;
    snap.devices.reserve(devices_.size());
    for (auto &dev : devices_) {
        snap.devices.push_back(dev->drain());
        const DeviceSnapshot &ds = snap.devices.back();
        snap.makespan = std::max(snap.makespan, ds.makespan);
        snap.eventsFired += ds.eventsFired;
    }
    return snap;
}

} // namespace conduit::cluster
