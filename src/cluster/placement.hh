/**
 * @file
 * Host-level placement policies for a device fleet.
 *
 * A PlacementPolicy picks the device an arriving job runs on. The
 * determinism contract mirrors the rest of the repository: a policy
 * may observe only (a) the job being routed, (b) its own state
 * accumulated from previous decisions, and (c) the per-device
 * DeviceProbes the cluster hands it — host-visible backlog state at
 * the job's arrival tick. Nothing wall-clock-dependent ever enters a
 * decision, so a fleet run is bit-identical across host thread
 * counts and repeats.
 *
 * Policies that never read the probes (round-robin, seeded random)
 * declare so via needsProbes(); the cluster then skips advancing
 * every device to each arrival tick, which keeps those fleets on
 * exactly the bare open-loop submission path a single Device runs
 * (the single-device equivalence contract).
 */

#ifndef CONDUIT_CLUSTER_PLACEMENT_HH
#define CONDUIT_CLUSTER_PLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/device.hh"

namespace conduit::cluster
{

/** What a placement policy may know about the job being routed. */
struct JobView
{
    /** Fleet-wide submission index (0-based, arrival order). */
    std::size_t index = 0;

    /** Tenant slot the job belongs to (affinity key). */
    std::size_t tenant = 0;

    /** Logical-page footprint the job will occupy. */
    std::uint64_t footprintPages = 0;

    /** Arrival tick on the fleet clock. */
    Tick arrival = 0;
};

/** Routes arriving jobs to devices (host-visible state only). */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Display name (the one makePlacement resolves). */
    virtual const char *name() const = 0;

    /**
     * Does place() read the probes? When false the cluster skips
     * advancing devices to each arrival tick and passes idle
     * probes — the probe-free fast path.
     */
    virtual bool needsProbes() const { return false; }

    /**
     * Pick a device for @p job. @p probes has one entry per device,
     * taken at the job's arrival tick (idle defaults for probe-free
     * policies). Must return an index < probes.size().
     */
    virtual std::size_t
    place(const JobView &job,
          const std::vector<DeviceProbe> &probes) = 0;
};

/**
 * Construct a placement policy by display name: "round-robin",
 * "random", "least-backlog", or "affinity".
 * @throws std::invalid_argument for an unknown name.
 */
std::unique_ptr<PlacementPolicy>
makePlacement(const std::string &name, std::uint64_t seed = 1);

/** Every display name makePlacement() accepts, in table order. */
const std::vector<std::string> &placementNames();

} // namespace conduit::cluster

#endif // CONDUIT_CLUSTER_PLACEMENT_HH
