/**
 * @file
 * A fleet of simulated SSDs behind one host-level placement policy.
 *
 * One core::Device simulates one drive exquisitely well; production
 * serving puts a *rack* of mixed-age drives behind a host scheduler.
 * Cluster owns N Devices (heterogeneous configs and ages allowed,
 * each optionally forked from a shared warm/pre-worn DeviceImage),
 * routes an open-loop stream of jobs across them through a pluggable
 * PlacementPolicy, and reports the fleet-level outcome: per-device
 * snapshots plus the fleet routing record that row emitters reduce
 * to throughput, utilization/imbalance, per-tenant SLO attainment,
 * and the fleet latency tails.
 *
 *   cluster::ClusterOptions opts;
 *   opts.devices.resize(4, {devOpts, nullptr});
 *   cluster::Cluster fleet(std::move(opts),
 *                          cluster::makePlacement("least-backlog"));
 *   JobSpec spec; spec.program = prog; spec.arrival = t;  // fleet tick
 *   fleet.submit(spec, 0);                                // tenant 0
 *   cluster::ClusterSnapshot snap = fleet.drain();
 *
 * Determinism: a cluster is one sequential discrete-event program.
 * Jobs must be submitted in non-decreasing arrival order (open loop:
 * arrivals never depend on completions); for probe-observing
 * policies the cluster advances every device to the job's arrival
 * tick and probes it, so routing decisions see exactly the simulated
 * state at that tick — the same state on every host thread count and
 * repeat. Probe-free policies (and single-device fleets) skip the
 * advancement entirely, leaving each device on the bare open-loop
 * submission path a standalone Device runs: a single-device Cluster
 * is byte-identical to the equivalent bare Device run.
 */

#ifndef CONDUIT_CLUSTER_CLUSTER_HH
#define CONDUIT_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "src/cluster/placement.hh"
#include "src/core/device.hh"

namespace conduit::cluster
{

/** Per-device construction recipe: options, or a shared image. */
struct DeviceSeed
{
    /** Options for a fresh device (ignored when @ref image set). */
    DeviceOptions options;

    /**
     * Fork the device from this image instead (Device::fromImage
     * deep-copies, so one image may seed any number of devices —
     * one warm/pre-worn image per age rung serves the whole fleet).
     */
    std::shared_ptr<const DeviceImage> image;
};

/** Fleet construction recipe. */
struct ClusterOptions
{
    /** One seed per device, in device-index order. */
    std::vector<DeviceSeed> devices;

    /**
     * Fleet-wide trace sink; null disables tracing. Attached to every
     * device after construction (device index = trace device id), so
     * image-forked devices trace too — forking strips per-device
     * tracers, never a fleet's.
     */
    std::shared_ptr<trace::Tracer> tracer;
};

/** One routed job's fleet-level record. */
struct RoutedJob
{
    /** Tenant slot the job belonged to. */
    std::size_t tenant = 0;

    /** Device the placement policy picked. */
    std::size_t device = 0;

    /** Device-local job handle (index into the device snapshot). */
    JobId id = 0;

    /** Arrival tick (absolute device time). */
    Tick arrival = 0;
};

/** drain()'s view of the fleet. */
struct ClusterSnapshot
{
    /** Per-device snapshots, in device-index order. */
    std::vector<DeviceSnapshot> devices;

    /** Every routed job, in fleet submission (arrival) order. */
    std::vector<RoutedJob> routed;

    /** Fleet clock epoch: max device clock at construction (warm
     *  images leave forked devices mid-life; fresh fleets start 0). */
    Tick base = 0;

    /** Latest routed-job end tick (absolute device time). */
    Tick makespan = 0;

    /** Events fired across the fleet (per-device counters summed;
     *  forked devices count from their image's total). */
    std::uint64_t eventsFired = 0;

    /** Result of routed job @p r (lives in the device snapshots). */
    const JobResult &
    result(std::size_t r) const
    {
        const RoutedJob &j = routed.at(r);
        return devices.at(j.device).jobs.at(j.id - 1);
    }
};

/**
 * N simulated SSDs behind one placement policy.
 *
 * Not thread-safe — a cluster advances one interleaved simulation;
 * drive it from one thread and sweep across clusters for parallelism
 * (SweepRunner::runClusterAll).
 */
class Cluster
{
  public:
    /** @throws std::invalid_argument on an empty fleet / null policy. */
    Cluster(ClusterOptions opts,
            std::unique_ptr<PlacementPolicy> policy);

    std::size_t size() const { return devices_.size(); }

    Device &device(std::size_t i) { return *devices_.at(i); }
    const Device &device(std::size_t i) const
    {
        return *devices_.at(i);
    }

    PlacementPolicy &policy() { return *policy_; }

    /** Fleet clock epoch (see ClusterSnapshot::base). */
    Tick base() const { return base_; }

    /**
     * Route one job. @p spec.arrival is a tick on the fleet clock
     * (relative to base()); submissions must come in non-decreasing
     * arrival order. The placement policy decides the device —
     * observing per-device probes at the arrival tick when it needs
     * them — and the job is submitted there.
     */
    RoutedJob submit(const JobSpec &spec, std::size_t tenant = 0);

    /**
     * Probes of every device, each advanced through tick @p t
     * (absolute device time) first. What a probe-observing policy
     * sees at an arrival.
     */
    std::vector<DeviceProbe> probe(Tick t);

    /** Drain every device and collect the fleet snapshot. */
    ClusterSnapshot drain();

  private:
    std::vector<std::unique_ptr<Device>> devices_;
    std::unique_ptr<PlacementPolicy> policy_;
    std::vector<RoutedJob> routed_;
    std::vector<DeviceProbe> idleProbes_; // probe-free path
    std::shared_ptr<trace::Tracer> tracer_;
    Tick base_ = 0;
    Tick lastArrival_ = 0;
};

} // namespace conduit::cluster

#endif // CONDUIT_CLUSTER_CLUSTER_HH
