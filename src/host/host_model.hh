/**
 * @file
 * Host CPU / GPU baselines (outside-storage processing).
 *
 * Following the paper's methodology (§5.3), host baselines combine a
 * roofline compute model (standing in for real-system measurements)
 * with simulated SSD-to-host data transfers over PCIe 4.0. The host
 * retains a configurable fraction of the working set in its DRAM;
 * every miss streams a page from the SSD over NVMe/PCIe. Compute and
 * transfer overlap (double-buffered streaming), so runtime is the
 * maximum of the two plus a cold-start ramp.
 */

#ifndef CONDUIT_HOST_HOST_MODEL_HH
#define CONDUIT_HOST_HOST_MODEL_HH

#include <cstdint>

#include "src/ir/instruction.hh"
#include "src/sim/config.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Outcome of a host-side execution. */
struct HostResult
{
    Tick totalTime = 0;
    Tick computeTime = 0;
    Tick transferTime = 0;

    std::uint64_t pcieBytes = 0;
    std::uint64_t flashPagesRead = 0;

    double computeEnergyJ = 0.0;
    double dmEnergyJ = 0.0;

    double energyJ() const { return computeEnergyJ + dmEnergyJ; }
};

/**
 * Analytical host baseline evaluator.
 */
class HostModel
{
  public:
    enum class Kind { Cpu, Gpu };

    HostModel(const SsdConfig &cfg, Kind kind)
        : cfg_(cfg), kind_(kind)
    {
    }

    /** Evaluate the whole program on the host. */
    HostResult run(const Program &prog) const;

  private:
    double opsPerSec(LatencyClass lc) const;

    SsdConfig cfg_;
    Kind kind_;
};

} // namespace conduit

#endif // CONDUIT_HOST_HOST_MODEL_HH
