#include "src/host/host_model.hh"

#include <algorithm>

#include "src/sim/rank_lru.hh"
#include "src/sim/rng.hh"

namespace conduit
{

double
HostModel::opsPerSec(LatencyClass lc) const
{
    const HostConfig &h = cfg_.host;
    if (kind_ == Kind::Cpu) {
        switch (lc) {
          case LatencyClass::Low:
            return h.cpuLowOpsPerSec;
          case LatencyClass::Medium:
            return h.cpuMedOpsPerSec;
          case LatencyClass::High:
            return h.cpuHighOpsPerSec;
        }
    }
    switch (lc) {
      case LatencyClass::Low:
        return h.gpuLowOpsPerSec;
      case LatencyClass::Medium:
        return h.gpuMedOpsPerSec;
      case LatencyClass::High:
        return h.gpuHighOpsPerSec;
    }
    return h.cpuMedOpsPerSec;
}

HostResult
HostModel::run(const Program &prog) const
{
    const HostConfig &h = cfg_.host;
    HostResult r;

    // Host-side page cache: LRU over a fraction of the footprint.
    const double frac = kind_ == Kind::Cpu ? h.cpuCacheFraction
                                           : h.gpuCacheFraction;
    const std::uint64_t capacity = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(prog.footprintPages) * frac));
    RankLru lru;
    lru.reset(prog.footprintPages, capacity);
    // lint: allow(seed-plumbing, fixed seed is the host-cache model itself: every replay of a program must see the identical synthetic access pattern, independent of device config)
    Rng rng(0xC0FFEE);

    auto touch = [&](std::uint64_t page) -> bool {
        if (lru.touch(page))
            return true;
        if (lru.size() > capacity) {
            // CLOCK-like randomized victim selection: pure LRU
            // degenerates on the cyclic sweeps of these kernels.
            // The victim sits `skip` recency steps from the LRU
            // end (a tail walk stops at the head, hence the rank
            // clamp); RankLru finds it in O(log n) instead of a
            // skip-step list walk.
            const std::uint64_t skip =
                rng.below(std::max<std::uint64_t>(1, lru.size() / 2));
            const std::uint64_t rank = std::min<std::uint64_t>(
                skip, lru.size() - 1);
            lru.eraseKey(lru.keyAtRankFromTail(rank));
        }
        return false;
    };

    // Per-operand aggregation over the page loops. Two observations
    // keep this exactly equivalent to touching every page:
    //  - Re-touching the current MRU page is a guaranteed hit that
    //    leaves the recency order unchanged, and the randomized
    //    victim (rank <= size-2 from the tail) can never be the MRU,
    //    so those touches are observable no-ops and are skipped.
    //  - An operand whose page range equals the immediately previous
    //    operand's, where that previous pass was all hits, replays a
    //    pure-hit walk: no rng draws, no evictions, and the walk
    //    restores the identical recency order it started from. The
    //    whole range is skipped. These kernels re-read the same
    //    operand back to back constantly (e.g. state in AES rounds),
    //    which is what made the per-page walk the top cost of
    //    host-baseline cells.
    std::uint64_t mruPage = ~std::uint64_t{0};
    std::uint64_t lastBase = ~std::uint64_t{0};
    std::uint64_t lastCount = 0;
    bool lastAllHit = false;

    // Misses are returned per operand and charged in one aggregate
    // update instead of per page.
    auto touchRange = [&](std::uint64_t base,
                          std::uint64_t count) -> std::uint64_t {
        if (count == 0)
            return 0; // touches nothing; keep the replay tracking
        if (base == lastBase && count == lastCount && lastAllHit)
            return 0; // all-hit replay of the previous operand
        std::uint64_t misses = 0;
        for (std::uint64_t p = base; p < base + count; ++p) {
            if (p == mruPage)
                continue; // MRU re-touch: observable no-op
            if (!touch(p))
                ++misses;
            mruPage = p;
        }
        lastBase = base;
        lastCount = count;
        lastAllHit = misses == 0;
        return misses;
    };

    // opsPerSec is loop-invariant per latency class; indexed by the
    // LatencyClass enum value.
    const double opsTab[3] = {opsPerSec(LatencyClass::Low),
                              opsPerSec(LatencyClass::Medium),
                              opsPerSec(LatencyClass::High)};

    double compute_s = 0.0;
    std::uint64_t dirty_pages = 0;
    std::uint64_t gather_bytes = 0;

    for (const auto &vi : prog.instrs) {
        compute_s += static_cast<double>(vi.lanes) /
            opsTab[static_cast<std::size_t>(latencyClass(vi.op))];
        if (vi.indirect) {
            // Data-dependent gather: every lane is an independent
            // random access; misses fetch a cache line's worth from
            // the SSD (batched into page-sized NVMe reads).
            gather_bytes += static_cast<std::uint64_t>(
                static_cast<double>(vi.lanes) * (1.0 - frac) * 64.0);
        }
        for (const auto &src : vi.srcs) {
            const std::uint64_t misses =
                touchRange(src.basePage, src.pageCount);
            r.pcieBytes += misses * prog.pageBytes;
            r.flashPagesRead += misses;
        }
        touchRange(vi.dst.basePage, vi.dst.pageCount);
        dirty_pages += vi.dst.pageCount;
    }

    // Results written back to the SSD once (page granularity,
    // bounded by the distinct output pages actually produced).
    const std::uint64_t writeback_pages =
        std::min<std::uint64_t>(dirty_pages, prog.footprintPages);
    r.pcieBytes += writeback_pages * prog.pageBytes;
    r.pcieBytes += gather_bytes;

    r.computeTime = static_cast<Tick>(
        compute_s * static_cast<double>(kPsPerS));
    const std::uint64_t miss_pages = r.pcieBytes / prog.pageBytes;
    r.transferTime =
        transferTicks(r.pcieBytes, h.pcieBytesPerSec) +
        miss_pages * h.ioOverheadPerPage;

    // Streaming pipeline: compute overlaps transfer; the cold-start
    // ramp is one average page fetch.
    const Tick ramp = transferTicks(prog.pageBytes, h.pcieBytesPerSec);
    r.totalTime = std::max(r.computeTime, r.transferTime) + ramp;

    const double watts = kind_ == Kind::Cpu ? h.cpuWatts : h.gpuWatts;
    r.computeEnergyJ = watts * ticksToSeconds(r.computeTime);
    const EnergyConfig &e = cfg_.energy;
    r.dmEnergyJ = h.pcieJoulesPerByte * static_cast<double>(r.pcieBytes) +
        e.readJPerChannel * static_cast<double>(r.flashPagesRead) +
        e.channelJPerByte * static_cast<double>(r.pcieBytes);
    return r;
}

} // namespace conduit
