#include "src/host/host_model.hh"

#include <algorithm>

#include "src/sim/rank_lru.hh"
#include "src/sim/rng.hh"

namespace conduit
{

double
HostModel::opsPerSec(LatencyClass lc) const
{
    const HostConfig &h = cfg_.host;
    if (kind_ == Kind::Cpu) {
        switch (lc) {
          case LatencyClass::Low:
            return h.cpuLowOpsPerSec;
          case LatencyClass::Medium:
            return h.cpuMedOpsPerSec;
          case LatencyClass::High:
            return h.cpuHighOpsPerSec;
        }
    }
    switch (lc) {
      case LatencyClass::Low:
        return h.gpuLowOpsPerSec;
      case LatencyClass::Medium:
        return h.gpuMedOpsPerSec;
      case LatencyClass::High:
        return h.gpuHighOpsPerSec;
    }
    return h.cpuMedOpsPerSec;
}

HostResult
HostModel::run(const Program &prog) const
{
    const HostConfig &h = cfg_.host;
    HostResult r;

    // Host-side page cache: LRU over a fraction of the footprint.
    const double frac = kind_ == Kind::Cpu ? h.cpuCacheFraction
                                           : h.gpuCacheFraction;
    const std::uint64_t capacity = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(prog.footprintPages) * frac));
    RankLru lru;
    lru.reset(prog.footprintPages, capacity);
    Rng rng(0xC0FFEE);

    auto touch = [&](std::uint64_t page) -> bool {
        if (lru.touch(page))
            return true;
        if (lru.size() > capacity) {
            // CLOCK-like randomized victim selection: pure LRU
            // degenerates on the cyclic sweeps of these kernels.
            // The victim sits `skip` recency steps from the LRU
            // end (a tail walk stops at the head, hence the rank
            // clamp); RankLru finds it in O(log n) instead of a
            // skip-step list walk.
            const std::uint64_t skip =
                rng.below(std::max<std::uint64_t>(1, lru.size() / 2));
            const std::uint64_t rank = std::min<std::uint64_t>(
                skip, lru.size() - 1);
            lru.eraseKey(lru.keyAtRankFromTail(rank));
        }
        return false;
    };

    double compute_s = 0.0;
    std::uint64_t dirty_pages = 0;
    std::uint64_t gather_bytes = 0;

    for (const auto &vi : prog.instrs) {
        compute_s += static_cast<double>(vi.lanes) /
            opsPerSec(latencyClass(vi.op));
        if (vi.indirect) {
            // Data-dependent gather: every lane is an independent
            // random access; misses fetch a cache line's worth from
            // the SSD (batched into page-sized NVMe reads).
            gather_bytes += static_cast<std::uint64_t>(
                static_cast<double>(vi.lanes) * (1.0 - frac) * 64.0);
        }
        for (const auto &src : vi.srcs) {
            for (std::uint64_t p = src.basePage;
                 p < src.basePage + src.pageCount; ++p) {
                if (!touch(p)) {
                    r.pcieBytes += prog.pageBytes;
                    ++r.flashPagesRead;
                }
            }
        }
        for (std::uint64_t p = vi.dst.basePage;
             p < vi.dst.basePage + vi.dst.pageCount; ++p) {
            touch(p);
            ++dirty_pages;
        }
    }

    // Results written back to the SSD once (page granularity,
    // bounded by the distinct output pages actually produced).
    const std::uint64_t writeback_pages =
        std::min<std::uint64_t>(dirty_pages, prog.footprintPages);
    r.pcieBytes += writeback_pages * prog.pageBytes;
    r.pcieBytes += gather_bytes;

    r.computeTime = static_cast<Tick>(
        compute_s * static_cast<double>(kPsPerS));
    const std::uint64_t miss_pages = r.pcieBytes / prog.pageBytes;
    r.transferTime =
        transferTicks(r.pcieBytes, h.pcieBytesPerSec) +
        miss_pages * h.ioOverheadPerPage;

    // Streaming pipeline: compute overlaps transfer; the cold-start
    // ramp is one average page fetch.
    const Tick ramp = transferTicks(prog.pageBytes, h.pcieBytesPerSec);
    r.totalTime = std::max(r.computeTime, r.transferTime) + ramp;

    const double watts = kind_ == Kind::Cpu ? h.cpuWatts : h.gpuWatts;
    r.computeEnergyJ = watts * ticksToSeconds(r.computeTime);
    const EnergyConfig &e = cfg_.energy;
    r.dmEnergyJ = h.pcieJoulesPerByte * static_cast<double>(r.pcieBytes) +
        e.readJPerChannel * static_cast<double>(r.flashPagesRead) +
        e.channelJPerByte * static_cast<double>(r.pcieBytes);
    return r;
}

} // namespace conduit
