#include "src/sched/stream_scheduler.hh"

#include <algorithm>

namespace conduit::sched
{

StreamScheduler::StreamScheduler(StreamDispatcher &dispatcher,
                                 EventQueue &queue)
    : dispatcher_(dispatcher), queue_(queue)
{
}

void
StreamScheduler::add(ExecContext &ctx, Tick arrival)
{
    ctx.arrival = arrival;
    if (ctx.done()) {
        // Empty program: nothing to dispatch, finished on arrival.
        ctx.finished = true;
        return;
    }
    // Same-tick first dispatches fire in add() order (the queue's
    // sequence numbers give streams their first offloader slots in
    // registration order), after which simulated time takes over.
    // A future arrival tick simply schedules the stream's first
    // dispatch there — the arrival event of an open-loop run.
    queue_.schedule(
        std::max(queue_.now(), arrival),
        [this, &ctx] { onDispatch(ctx); }, kDispatchPriority);
}

void
StreamScheduler::onDispatch(ExecContext &ctx)
{
    const DispatchOutcome out = dispatcher_.dispatchNext(ctx, queue_.now());

    const Tick done = std::max(queue_.now(), out.completion);
    ++ctx.outstanding;
    queue_.schedule(
        done,
        [this, &ctx, done] {
            ctx.execEnd = std::max(ctx.execEnd, done);
            --ctx.outstanding;
            if (ctx.done() && ctx.outstanding == 0) {
                ctx.finished = true;
                if (streamDone_)
                    streamDone_(ctx);
            }
        },
        kCompletionPriority);

    if (!ctx.done()) {
        queue_.schedule(
            std::max(queue_.now(), out.nextDispatch),
            [this, &ctx] { onDispatch(ctx); }, kDispatchPriority);
    }
}

void
StreamScheduler::run()
{
    queue_.run();
}

} // namespace conduit::sched
