#include "src/sched/stream_scheduler.hh"

#include <algorithm>

namespace conduit::sched
{

StreamScheduler::StreamScheduler(StreamDispatcher &dispatcher,
                                 EventQueue &queue)
    : dispatcher_(dispatcher), queue_(queue)
{
}

void
StreamScheduler::add(ExecContext &ctx)
{
    if (ctx.done())
        return; // empty program: nothing to dispatch
    // All first dispatches land on tick 0; the queue's sequence
    // numbers give streams their first offloader slots in add()
    // order, after which simulated time takes over.
    queue_.schedule(
        0, [this, &ctx] { onDispatch(ctx); }, kDispatchPriority);
}

void
StreamScheduler::onDispatch(ExecContext &ctx)
{
    const DispatchOutcome out = dispatcher_.dispatchNext(ctx);

    const Tick done = std::max(queue_.now(), out.completion);
    queue_.schedule(
        done,
        [&ctx, done] { ctx.execEnd = std::max(ctx.execEnd, done); },
        kCompletionPriority);

    if (!ctx.done()) {
        queue_.schedule(
            std::max(queue_.now(), out.nextDispatch),
            [this, &ctx] { onDispatch(ctx); }, kDispatchPriority);
    }
}

void
StreamScheduler::run()
{
    queue_.run();
}

} // namespace conduit::sched
