/**
 * @file
 * Per-stream execution state for the event-driven engine.
 *
 * A production SSD serves many tenants at once: the scheduler co-runs
 * N independent instruction streams ("tenants") on one simulated
 * device. Each stream gets an ExecContext — its program counter,
 * per-stream completion vector, energy accumulator, and RunResult —
 * while all streams share the device substrate (flash dies, DRAM
 * banks, the controller cores, the offloader pipeline). Contention
 * between streams emerges from the shared FCFS reservation calendars
 * (§4.3–4.5), exactly as single-stream contention does.
 *
 * Streams occupy disjoint logical-page regions: a stream's operand
 * pages are offset by @ref ExecContext::base, so coherence metadata
 * and FTL mappings never alias across tenants even though they live
 * in the same device-wide tables.
 */

#ifndef CONDUIT_SCHED_EXEC_CONTEXT_HH
#define CONDUIT_SCHED_EXEC_CONTEXT_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/run_result.hh"
#include "src/energy/energy_model.hh"
#include "src/ir/instruction.hh"
#include "src/offload/policy.hh"

namespace conduit::sched
{

/** One tenant of a multi-stream run. */
struct StreamSpec
{
    /** Result label; defaults to the program's name. */
    std::string name;

    /** Compiled instruction stream to execute. */
    std::shared_ptr<const Program> program;

    /** Offloading policy deciding this stream's targets. */
    std::shared_ptr<OffloadPolicy> policy;
};

/**
 * Live execution state of one stream.
 *
 * Owned by Engine::run for the duration of a multi-stream run; the
 * StreamScheduler holds references and drives the stream's dispatch
 * chain as events.
 */
struct ExecContext
{
    explicit ExecContext(const EnergyConfig &ecfg) : energy(ecfg) {}

    /** @name Immutable per-run wiring @{ */
    std::string name;
    const Program *prog = nullptr;
    OffloadPolicy *policy = nullptr;
    bool ideal = false;

    /** First absolute logical page of this stream's region. */
    std::uint64_t base = 0;

    /** Logical pages in the region (the program's footprint). */
    std::uint64_t pages = 0;

    /** Simulated tick the stream joined the device (first dispatch). */
    Tick arrival = 0;
    /** @} */

    /** @name Live state @{ */

    /** Next instruction to dispatch (index into prog->instrs). */
    std::size_t pc = 0;

    /** Completion tick per instruction id (RAW dependence lookups). */
    std::vector<Tick> completion;

    /** Latest completion seen so far (stream makespan, pre-drain). */
    Tick execEnd = 0;

    /** Completion events scheduled but not yet fired. */
    std::uint32_t outstanding = 0;

    /**
     * Every instruction dispatched AND every completion event fired.
     * Set by the scheduler inside the last completion event (or at
     * add() for an empty program); a persistent device retires the
     * stream's job once this flips.
     */
    bool finished = false;

    /** Aggregate per-resource compute time in Ideal mode. */
    std::array<Tick, kNumTargets> idealBusy{};
    /** @} */

    /** Per-stream energy attribution. */
    EnergyModel energy;

    /** Per-stream result under construction. */
    RunResult result;

    bool done() const { return prog && pc >= prog->instrs.size(); }
};

/** Outcome of a multi-stream run. */
struct MultiRunResult
{
    /** Per-stream results, in StreamSpec order. */
    std::vector<RunResult> streams;

    /**
     * Device-level aggregate: sums of the per-stream counters and
     * busy times, the merged latency histogram, and the makespan as
     * execTime. The workload/policy labels join the stream labels.
     */
    RunResult aggregate;

    /** Latest stream completion (including result drains). */
    Tick makespan = 0;

    /** Events the scheduler fired (dispatches + completions). */
    std::uint64_t eventsFired = 0;
};

} // namespace conduit::sched

#endif // CONDUIT_SCHED_EXEC_CONTEXT_HH
