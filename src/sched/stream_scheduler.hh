/**
 * @file
 * Event-driven multi-stream scheduler.
 *
 * StreamScheduler turns the engine's per-instruction pipeline into
 * discrete events on an EventQueue. Each stream advances through a
 * chain of dispatch events: a dispatch event asks the dispatcher
 * (the Engine) to run one instruction's pipeline — offloader stage,
 * feature collection, policy decision, operand movement, and resource
 * reservation on the shared FCFS calendars — and reports back when
 * the instruction will complete and when the stream's next dispatch
 * may fire. The scheduler then enqueues the completion event and the
 * next dispatch event.
 *
 * Ordering is what makes co-running deterministic AND single-stream
 * runs byte-identical to the old serial loop:
 *
 *  - The EventQueue fires events by (tick, priority, sequence), so
 *    two streams' dispatches interleave in simulated-time order with
 *    scheduling order breaking ties — never host-thread order.
 *  - A single stream's dispatch chain is strictly sequential (each
 *    dispatch schedules the next), so the engine observes exactly
 *    the call sequence of the old `for (instr : prog.instrs)` loop.
 *
 * Completion events fire after same-tick dispatches (lower priority)
 * and only advance the stream's observed end time; all resource
 * state was already reserved at dispatch, mirroring the paper's
 * reservation-calendar contention model (§4.3.2).
 */

#ifndef CONDUIT_SCHED_STREAM_SCHEDULER_HH
#define CONDUIT_SCHED_STREAM_SCHEDULER_HH

#include <functional>

#include "src/sched/exec_context.hh"
#include "src/sim/event_queue.hh"

namespace conduit::sched
{

/** What one dispatched instruction implies for the event chain. */
struct DispatchOutcome
{
    /** Earliest tick the stream's next dispatch event may fire. */
    Tick nextDispatch = 0;

    /** Tick at which the dispatched instruction completes. */
    Tick completion = 0;
};

/**
 * The scheduler's view of the engine: dispatch one instruction of a
 * stream through the full decision/movement/reservation pipeline.
 * Implemented by Engine; the scheduler needs nothing else from it.
 */
class StreamDispatcher
{
  public:
    virtual ~StreamDispatcher() = default;

    /**
     * Execute the pipeline for @p ctx's next instruction (advancing
     * ctx.pc) and return the resulting event times. @p now is the
     * simulated time of the dispatch event, which gates shared-
     * resource acquisition so a stream that joined the device at a
     * later tick cannot consume capacity from before its arrival.
     */
    virtual DispatchOutcome dispatchNext(ExecContext &ctx, Tick now) = 0;
};

/** Drives N streams' dispatch chains as events on one queue. */
class StreamScheduler
{
  public:
    /** Dispatch events outrank completion events at the same tick. */
    static constexpr int kDispatchPriority = 0;
    static constexpr int kCompletionPriority = 1;

    /** Invoked inside a stream's final completion event. */
    using StreamDone = std::function<void(ExecContext &)>;

    StreamScheduler(StreamDispatcher &dispatcher, EventQueue &queue);

    /**
     * Register a stream and schedule its first dispatch at tick
     * @p arrival (default: tick 0, the classic batch run). Streams
     * may join at any future simulated tick — the arrival event
     * model behind open-loop job submission. An empty program is
     * marked finished immediately and never dispatches.
     *
     * The context must outlive the scheduler's run() — the event
     * callbacks hold references.
     */
    void add(ExecContext &ctx, Tick arrival = 0);

    /**
     * Register a callback fired when a stream finishes (all
     * instructions dispatched and every completion event fired).
     * Runs inside the final completion event, so a persistent device
     * can retire the job — drain results, reclaim its page region,
     * admit queued jobs — at a deterministic point in simulated time.
     */
    void setStreamDone(StreamDone cb) { streamDone_ = std::move(cb); }

    /** Run the event loop until every stream's chain has drained. */
    void run();

  private:
    void onDispatch(ExecContext &ctx);

    StreamDispatcher &dispatcher_;
    EventQueue &queue_;
    StreamDone streamDone_;
};

} // namespace conduit::sched

#endif // CONDUIT_SCHED_STREAM_SCHEDULER_HH
