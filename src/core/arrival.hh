/**
 * @file
 * Arrival processes for open-loop job submission.
 *
 * An open-loop experiment offers jobs to the device at a rate the
 * device cannot push back on — the "heavy traffic from millions of
 * users" regime where saturation curves and SLO tails live. An
 * ArrivalProcess generates the inter-arrival gaps of such a stream
 * deterministically: every generator draws from the repository's
 * fully specified Rng, so a (kind, rate, seed) triple reproduces the
 * same arrival schedule on every platform, thread count, and repeat
 * run.
 */

#ifndef CONDUIT_CORE_ARRIVAL_HH
#define CONDUIT_CORE_ARRIVAL_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Generator of job inter-arrival gaps (simulated ticks). */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;

    /** Gap between the previous arrival and the next one. */
    virtual Tick next() = 0;

    /**
     * Absolute arrival ticks of the next @p n jobs: the cumulative
     * sums of next(), starting from the first gap (the classic
     * renewal-process convention — the first job arrives one gap
     * after t = 0).
     */
    std::vector<Tick> schedule(std::size_t n);
};

/** Replays an explicit gap trace, cycling when exhausted. */
class TraceArrivals final : public ArrivalProcess
{
  public:
    /** @param gaps Inter-arrival gaps to replay; must be non-empty. */
    explicit TraceArrivals(std::vector<Tick> gaps);

    Tick next() override;

  private:
    std::vector<Tick> gaps_;
    std::size_t pos_ = 0;
};

/** Deterministic constant spacing (a perfectly paced load source). */
class FixedArrivals final : public ArrivalProcess
{
  public:
    explicit FixedArrivals(Tick gap) : gap_(gap) {}

    Tick next() override { return gap_; }

  private:
    Tick gap_;
};

/** Uniform-random gaps in [lo, hi] (bounded jitter around a rate). */
class UniformArrivals final : public ArrivalProcess
{
  public:
    UniformArrivals(Tick lo, Tick hi, std::uint64_t seed = 1);

    Tick next() override;

  private:
    Tick lo_;
    Tick hi_;
    Rng rng_;
};

/**
 * Deterministic pseudo-Poisson arrivals: exponential gaps with the
 * given mean, inverse-transform sampled from the repository Rng.
 * The memoryless bursts of a Poisson stream are what expose tail
 * latency under offered load (cf. open-loop load generators).
 */
class PoissonArrivals final : public ArrivalProcess
{
  public:
    PoissonArrivals(double mean_gap_ticks, std::uint64_t seed = 1);

    /** Construct from an offered load in jobs per simulated second. */
    static PoissonArrivals fromRate(double jobs_per_sec,
                                    std::uint64_t seed = 1);

    Tick next() override;

  private:
    double meanGap_;
    Rng rng_;
};

/** The generator families the load sweeps can name. */
enum class ArrivalKind
{
    Fixed,
    Uniform,
    Poisson,
};

/** Display names accepted by parseArrivalKind, in enum order. */
const std::vector<std::string> &arrivalKindNames();

/** Display name of @p kind ("fixed", "uniform", "poisson"). */
std::string arrivalKindName(ArrivalKind kind);

/**
 * Parse a display name.
 * @return true and set @p out on success; false on an unknown name.
 */
bool parseArrivalKind(const std::string &name, ArrivalKind &out);

/**
 * Build a process of @p kind with mean gap @p mean_gap_ticks:
 * Fixed at exactly the mean, Uniform jittered in [mean/2, 3*mean/2],
 * Poisson exponential. All three offer the same average load, so a
 * rate sweep can vary burstiness without moving the operating point.
 */
std::unique_ptr<ArrivalProcess> makeArrivals(ArrivalKind kind,
                                             double mean_gap_ticks,
                                             std::uint64_t seed = 1);

} // namespace conduit

#endif // CONDUIT_CORE_ARRIVAL_HH
