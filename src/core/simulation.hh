/**
 * @file
 * Top-level facade: the public API a downstream user drives.
 *
 * A Simulation owns a device configuration, compiles workloads
 * through the compile-time preprocessing stage (auto-vectorization +
 * metadata embedding), and executes them under any offloading policy
 * or host baseline — returning the RunResult records the benches and
 * examples consume.
 */

#ifndef CONDUIT_CORE_SIMULATION_HH
#define CONDUIT_CORE_SIMULATION_HH

#include <map>
#include <mutex>
#include <string>

#include "src/core/engine.hh"
#include "src/host/host_model.hh"
#include "src/vectorizer/vectorizer.hh"
#include "src/workloads/workloads.hh"

namespace conduit
{

/** Facade options. */
struct SimOptions
{
    /** Device configuration (defaults: Table 2 geometry, scaled). */
    SsdConfig config = SsdConfig::scaled(1.0 / 128.0);

    /** Engine options shared by all runs. */
    EngineOptions engine;

    /** Workload dataset scale. */
    WorkloadParams workload;
};

/**
 * End-to-end simulation driver.
 */
class Simulation
{
  public:
    explicit Simulation(SimOptions opts = {});

    /**
     * Compile-time preprocessing for a workload (cached).
     *
     * Thread-safe: the returned reference stays valid for the
     * lifetime of the Simulation and entries are immutable once
     * inserted. Concurrent first calls for the same workload may
     * both compile (the loser's result is discarded); use
     * runner::ProgramCache for guaranteed compile-once sharing
     * across sweep workers.
     */
    const VectorizedProgram &compile(WorkloadId id);

    /** Compile an arbitrary loop program (not cached). */
    VectorizedProgram compileProgram(const LoopProgram &lp) const;

    /**
     * Run @p id on the SSD under the named policy ("Conduit",
     * "DM-Offloading", "BW-Offloading", "Ideal", "ISP", "PuD-SSD",
     * "Flash-Cosmos", "Ares-Flash").
     */
    RunResult run(WorkloadId id, const std::string &policy_name);

    /** Run with an externally constructed policy object. */
    RunResult run(WorkloadId id, OffloadPolicy &policy);

    /** Run a pre-compiled program under a policy. */
    RunResult runProgram(const Program &prog, OffloadPolicy &policy);

    /** One tenant of a multi-stream run: workload + policy name. */
    struct Tenant
    {
        WorkloadId id;
        std::string policy;
    };

    /**
     * Co-run several tenants concurrently on ONE simulated SSD (the
     * event-driven multi-stream engine): each tenant's instruction
     * stream executes under its own policy while all streams contend
     * for the shared device. Returns per-stream results in tenant
     * order plus the device aggregate.
     */
    sched::MultiRunResult runMulti(const std::vector<Tenant> &tenants);

    /** Multi-stream run over explicit stream specs. */
    sched::MultiRunResult
    runStreams(std::vector<sched::StreamSpec> streams);

    /** Host baseline ("CPU" or "GPU") for a workload. */
    RunResult runHost(WorkloadId id, bool gpu);

    /** Host baseline for a pre-compiled program. */
    RunResult runHostProgram(const Program &prog, bool gpu) const;

    const SimOptions &options() const { return opts_; }

  private:
    SimOptions opts_;
    Vectorizer vectorizer_;
    std::mutex cacheMu_;
    std::map<WorkloadId, VectorizedProgram> cache_;
};

} // namespace conduit

#endif // CONDUIT_CORE_SIMULATION_HH
