/**
 * @file
 * Top-level facade: the public API a downstream user drives.
 *
 * A Simulation owns a device configuration, compiles workloads
 * through the compile-time preprocessing stage (auto-vectorization +
 * metadata embedding), and executes them under any offloading policy
 * or host baseline — returning the RunResult records the benches and
 * examples consume.
 *
 * Every SSD entry point is a thin wrapper over core::Device: run()
 * submits one job to a fresh device, runMulti()/runStreams() submit
 * N jobs arriving simultaneously at tick 0. The wrappers exist for
 * the paper's closed-form methodology (every technique starts from
 * the same cold SSD); hold a Device directly for open-loop arrivals,
 * dynamic submission, and long-lived device state.
 */

#ifndef CONDUIT_CORE_SIMULATION_HH
#define CONDUIT_CORE_SIMULATION_HH

#include <string>

#include "src/core/device.hh"
#include "src/core/engine.hh"
#include "src/core/program_cache.hh"
#include "src/host/host_model.hh"
#include "src/vectorizer/vectorizer.hh"
#include "src/workloads/workloads.hh"

namespace conduit
{

/** Facade options. */
struct SimOptions
{
    /** Device configuration (defaults: Table 2 geometry, scaled). */
    SsdConfig config = SsdConfig::scaled(1.0 / 128.0);

    /** Engine options shared by all runs. */
    EngineOptions engine;

    /** Workload dataset scale. */
    WorkloadParams workload;
};

/**
 * End-to-end simulation driver.
 */
class Simulation
{
  public:
    explicit Simulation(SimOptions opts = {});

    /**
     * Compile-time preprocessing for a workload (cached).
     *
     * Thread-safe and compile-once: concurrent first calls for the
     * same workload block on one shared compilation instead of
     * racing (the facade cache is a core::ProgramCache, the same
     * compile-once path the sweep runner uses). The returned
     * reference stays valid for the lifetime of the Simulation and
     * entries are immutable once inserted.
     */
    const VectorizedProgram &compile(WorkloadId id);

    /** Compile an arbitrary loop program (not cached). */
    VectorizedProgram compileProgram(const LoopProgram &lp) const;

    /**
     * Run @p id on the SSD under the named policy ("Conduit",
     * "DM-Offloading", "BW-Offloading", "Ideal", "ISP", "PuD-SSD",
     * "Flash-Cosmos", "Ares-Flash").
     */
    RunResult run(WorkloadId id, const std::string &policy_name);

    /** Run with an externally constructed policy object. */
    RunResult run(WorkloadId id, OffloadPolicy &policy);

    /**
     * Run a pre-compiled program under a policy: one job on a fresh
     * Device (wrapper — byte-identical to the pre-Device engine).
     */
    RunResult runProgram(const Program &prog, OffloadPolicy &policy);

    /** One tenant of a multi-stream run: workload + policy name. */
    struct Tenant
    {
        WorkloadId id;
        std::string policy;
    };

    /**
     * Co-run several tenants concurrently on ONE simulated SSD (the
     * event-driven multi-stream engine): each tenant's instruction
     * stream executes under its own policy while all streams contend
     * for the shared device. A wrapper over core::Device with every
     * job arriving at tick 0. Returns per-stream results in tenant
     * order plus the device aggregate.
     */
    sched::MultiRunResult runMulti(const std::vector<Tenant> &tenants);

    /** Multi-stream run over explicit stream specs. */
    sched::MultiRunResult
    runStreams(std::vector<sched::StreamSpec> streams);

    /** Host baseline ("CPU" or "GPU") for a workload. */
    RunResult runHost(WorkloadId id, bool gpu);

    /** Host baseline for a pre-compiled program. */
    RunResult runHostProgram(const Program &prog, bool gpu) const;

    /**
     * A fresh persistent device under this facade's options, for
     * callers graduating from batch runs to dynamic job submission.
     */
    Device makeDevice() const;

    const SimOptions &options() const { return opts_; }

  private:
    SimOptions opts_;
    Vectorizer vectorizer_;
    ProgramCache cache_;
};

} // namespace conduit

#endif // CONDUIT_CORE_SIMULATION_HH
