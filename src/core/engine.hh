/**
 * @file
 * The Conduit runtime engine (§4.3.2, §4.4).
 *
 * Executes a vectorized program on the simulated SSD under a given
 * offloading policy. Per instruction, the engine:
 *
 *  1. services the offloader pipeline stage (feature collection +
 *     instruction transformation, charged per §4.5 on a dedicated
 *     controller core),
 *  2. computes the six cost-function features of Table 1 and asks
 *     the policy for a target resource,
 *  3. moves operands to the target (lazy coherence: flash / page
 *     buffer latches / SSD DRAM, with owner/dirty/version metadata
 *     at logical-page granularity),
 *  4. reserves the target's execution resources (dies, banks, the
 *     compute core) FCFS — contention and queueing emerge from the
 *     reservation calendars, and
 *  5. records completion, energy, and trace data.
 *
 * The Ideal mode (§5.3) bypasses movement, queueing and overheads,
 * providing the unrealizable upper bound.
 */

#ifndef CONDUIT_CORE_ENGINE_HH
#define CONDUIT_CORE_ENGINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/transformer.hh"
#include "src/dram/dram.hh"
#include "src/dram/pud_unit.hh"
#include "src/energy/energy_model.hh"
#include "src/ftl/ftl.hh"
#include "src/ir/instruction.hh"
#include "src/isp/isp_core.hh"
#include "src/nand/ifp_unit.hh"
#include "src/nand/nand.hh"
#include "src/offload/policy.hh"
#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"

namespace conduit
{

/** Sentinel: let recordWrite derive the latch die per page. */
constexpr std::uint32_t kAutoDie = ~0U;

/** Engine run options. */
struct EngineOptions
{
    /** Record per-instruction target/op traces (Fig. 10). */
    bool recordTimeline = false;

    /** Probability of a transient fault per executed instruction. */
    double transientFaultRate = 0.0;

    /** Detection timeout charged when a transient fault hits. */
    Tick faultTimeout = usToTicks(50);

    /** Coherence version-counter flush threshold (§4.4). */
    std::uint8_t versionFlushThreshold = 255;

    /**
     * Per-die page-buffer latch capacity in pages: planes x the
     * S/D/cache latch planes Ares-Flash exposes per plane. Results
     * beyond this spill to the array via SLC programming.
     */
    std::uint32_t latchPagesPerDie = 16;

    /** Drain dirty result pages to the host when the run ends. */
    bool drainResults = true;

    /**
     * SSD-DRAM staging capacity as a fraction of the workload
     * footprint. The default is effectively unbounded (the SSD DRAM
     * data region holds gigabytes, far beyond the scaled working
     * sets simulated here); lowering it forces capacity-driven
     * writebacks for the DRAM-pressure ablation.
     */
    double dramStagingFraction = 4.0;

    /**
     * Mapping-cache coverage as a fraction of the footprint's L2P
     * entries (demand-based DFTL cache, §5.1).
     */
    double mappingCacheFraction = 1.0;
};

/** Everything a run produces. */
struct RunResult
{
    std::string workload;
    std::string policy;

    Tick execTime = 0;
    std::uint64_t instrCount = 0;
    std::array<std::uint64_t, kNumTargets> perResource{};

    /** Per-instruction latency (dispatch to completion), in us. */
    Histogram latencyUs;

    double dmEnergyJ = 0.0;
    double computeEnergyJ = 0.0;
    double energyJ() const { return dmEnergyJ + computeEnergyJ; }

    /** @name Attributed busy time (Fig. 4 breakdown inputs) @{ */
    Tick computeBusy = 0;
    Tick internalDmBusy = 0;
    Tick flashReadBusy = 0;
    Tick hostDmBusy = 0;
    Tick offloaderBusy = 0;
    /** @} */

    std::uint64_t faultsInjected = 0;
    std::uint64_t replays = 0;
    std::uint64_t coherenceCommits = 0;
    std::uint64_t latchEvictions = 0;

    /** Per-instruction traces (only with recordTimeline). */
    std::vector<std::uint8_t> resourceTrace;
    std::vector<std::uint8_t> opTrace;
    std::vector<Tick> completionTrace;
};

/**
 * The runtime engine. One Engine instance executes one run over a
 * fresh simulated SSD.
 */
class Engine
{
  public:
    explicit Engine(const SsdConfig &cfg);

    /** Execute @p prog under @p policy. */
    RunResult run(const Program &prog, OffloadPolicy &policy,
                  const EngineOptions &opts = {});

    /** Feature vector for @p instr at time @p now (testable). */
    CostFeatures features(const VecInstruction &instr, Tick now);

    /** Access to substrate stats after a run. */
    const StatSet &stats() const { return stats_; }

  private:
    /** Where the freshest copy of a logical page lives. */
    enum class Loc : std::uint8_t { Flash, Latch, Dram };

    /** Lazy-coherence metadata (§4.4): owner, state, version. */
    struct PageMeta
    {
        Loc loc = Loc::Flash;
        bool dirty = false;
        std::uint8_t version = 0;
        bool dramCached = false;  // clean copy staged in SSD DRAM
        std::uint32_t latchDie = 0;
    };

    /** Outcome of moving operands for one instruction. */
    struct MoveResult
    {
        Tick readyAt = 0;
        std::uint64_t bytesMoved = 0;
    };

    void prepare(const Program &prog, const EngineOptions &opts);

    Tick offloadOverhead(const VecInstruction &instr, Tick now);

    /** Dies of @p instr's compute fragments (first operand's pages). */
    std::vector<IfpFragment> fragmentsFor(const VecInstruction &instr);

    /** Source operands that require array sensing on IFP. */
    std::uint32_t sensedOperands(const VecInstruction &instr) const;

    /** @name Data movement (coherence-aware) @{ */
    MoveResult moveForIsp(const VecInstruction &instr, Tick earliest);
    MoveResult moveForPud(const VecInstruction &instr, Tick earliest);
    MoveResult moveForIfp(const VecInstruction &instr, Tick earliest);
    /** @} */

    /** Static (contention-free) movement estimate per target. */
    Tick dmEstimate(const VecInstruction &instr, Target t,
                    std::uint64_t &bytes) const;

    /** Commit a dirty DRAM/latch page to the flash array. */
    Tick commitPage(Lpn page, Tick earliest);

    /**
     * Record DRAM residency of @p page, evicting LRU pages beyond
     * the staging capacity (clean copies are dropped, dirty pages
     * are committed in the background — coherence trigger iii).
     */
    void dramTouch(Lpn page, Tick now);

    /** Mark @p page written by @p target at @p when. */
    void recordWrite(Lpn page, Target target, std::uint32_t die,
                     Tick when);

    /** Execute on a specific resource; returns completion time. */
    Tick executeOn(const VecInstruction &instr, Target target,
                   Tick earliest);

    /** Final result drain to the host over PCIe (§4.4 trigger ii). */
    Tick drainResults(Tick after);

    PageMeta &meta(Lpn page) { return pageMeta_.at(page); }

    SsdConfig cfg_;
    StatSet stats_;
    NandArray nand_;
    Ftl ftl_;
    DramModel dram_;
    PudUnit pud_;
    IspCore isp_;
    IfpUnit ifp_;
    EnergyModel energy_;
    InstructionTransformer transformer_;
    Rng rng_;

    Server offloader_{"conduit.offloader"};
    Server pcie_{"host.pcie"};

    EngineOptions opts_;
    std::vector<PageMeta> pageMeta_;
    std::vector<Tick> completion_;
    std::vector<std::deque<Lpn>> latchFifo_; // per die
    RunResult *result_ = nullptr;
    bool ideal_ = false;

    /** Aggregate per-resource compute time in Ideal mode. */
    std::array<Tick, kNumTargets> idealBusy_{};

    // DRAM staging region LRU (capacity-limited page residency).
    std::uint64_t dramCapacityPages_ = 0;
    std::list<Lpn> dramLru_;
    std::unordered_map<Lpn, std::list<Lpn>::iterator> dramPos_;
};

} // namespace conduit

#endif // CONDUIT_CORE_ENGINE_HH
