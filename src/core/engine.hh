/**
 * @file
 * The Conduit runtime engine (§4.3.2, §4.4).
 *
 * Executes one or more vectorized programs ("streams", tenants) on
 * the simulated SSD under per-stream offloading policies. Per
 * instruction, the engine:
 *
 *  1. services the offloader pipeline stage (feature collection +
 *     instruction transformation, charged per §4.5 on a dedicated
 *     controller core),
 *  2. computes the six cost-function features of Table 1 and asks
 *     the policy for a target resource,
 *  3. moves operands to the target (lazy coherence: flash / page
 *     buffer latches / SSD DRAM, with owner/dirty/version metadata
 *     at logical-page granularity),
 *  4. reserves the target's execution resources (dies, banks, the
 *     compute core) FCFS — contention and queueing emerge from the
 *     reservation calendars, and
 *  5. records completion, energy, and trace data.
 *
 * Execution is event-driven: a sched::StreamScheduler sequences the
 * dispatch pipeline of every stream as events on an EventQueue, and
 * the engine implements sched::StreamDispatcher to run one
 * instruction's pipeline per dispatch event. With a single stream the
 * event chain degenerates to the exact call sequence of a serial
 * instruction loop, so single-stream results are byte-identical to
 * the pre-scheduler engine. With N streams, the queue interleaves
 * dispatches across tenants in simulated-time order, and the
 * CostFeatures queue/bandwidth terms — live reads of the shared
 * Server/ServerGroup calendars — automatically expose cross-tenant
 * contention to every policy.
 *
 * The Ideal mode (§5.3) bypasses movement, queueing and overheads,
 * providing the unrealizable upper bound.
 */

#ifndef CONDUIT_CORE_ENGINE_HH
#define CONDUIT_CORE_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/core/run_result.hh"
#include "src/core/transformer.hh"
#include "src/dram/dram.hh"
#include "src/dram/pud_unit.hh"
#include "src/energy/energy_model.hh"
#include "src/ftl/ftl.hh"
#include "src/ir/instruction.hh"
#include "src/isp/isp_core.hh"
#include "src/nand/ifp_unit.hh"
#include "src/nand/nand.hh"
#include "src/offload/policy.hh"
#include "src/reliability/reliability.hh"
#include "src/sched/exec_context.hh"
#include "src/sched/stream_scheduler.hh"
#include "src/sim/config.hh"
#include "src/sim/flat_lru.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"

namespace conduit
{

namespace trace
{
class Tracer;
}

/** Sentinel: let recordWrite derive the latch die per page. */
constexpr std::uint32_t kAutoDie = ~0U;

/**
 * The runtime engine. One Engine instance executes one run — single-
 * or multi-stream — over a fresh simulated SSD.
 */
class Engine : public sched::StreamDispatcher
{
  public:
    explicit Engine(const SsdConfig &cfg);

    /** Execute @p prog under @p policy (single-stream). */
    RunResult run(const Program &prog, OffloadPolicy &policy,
                  const EngineOptions &opts = {});

    /**
     * Execute N streams concurrently on this one simulated SSD.
     *
     * Streams are laid out in disjoint logical-page regions (in spec
     * order) and co-scheduled by a StreamScheduler on one event
     * queue; they contend for every shared device resource. Results
     * come back in spec order, plus a device-level aggregate.
     *
     * Deterministic: repeat runs with equal specs produce identical
     * results, and a one-stream call matches the single-stream
     * overload exactly.
     */
    sched::MultiRunResult run(std::vector<sched::StreamSpec> streams,
                              const EngineOptions &opts = {});

    /**
     * @name Persistent-session API
     *
     * The long-lived device mode behind core::Device: one prepared
     * SSD accepts streams ("jobs") over its lifetime instead of all
     * at prepare() time. Streams attach at arbitrary simulated ticks
     * into caller-assigned page regions, the shared event queue
     * persists between job submissions, and a finished stream's
     * region can be reclaimed for later jobs. Engine::run() is the
     * batch special case: one session, every stream attached at tick
     * 0, finished in attach order at quiescence.
     * @{
     */

    /**
     * Open a session: prepare a fresh device whose logical-page pool
     * spans @p capacity_pages, with a fresh event queue + scheduler.
     * Invalidates all streams of any previous session.
     */
    void sessionBegin(std::uint64_t capacity_pages,
                      const EngineOptions &opts);

    /**
     * Attach a stream whose first dispatch fires at @p arrival, in
     * the region [base_page, base_page + footprint). The returned
     * context stays valid (stable address) until the next
     * sessionBegin(). The caller owns region assignment — regions of
     * concurrently attached streams must not overlap.
     */
    sched::ExecContext &sessionAttach(const sched::StreamSpec &spec,
                                      std::uint64_t base_page,
                                      Tick arrival);

    /**
     * Finish one stream: apply the Ideal aggregate-capacity clamp or
     * drain dirty result pages to the host, then finalize its
     * RunResult (instruction count, execTime, energy). Call once per
     * stream, after its last completion event fired.
     * @return The stream's end tick (drain included).
     */
    Tick sessionFinish(sched::ExecContext &ctx);

    /**
     * Return a finished stream's page region to a reusable state:
     * coherence metadata reset, DRAM-staging and latch residency
     * purged. The FTL keeps its mappings (a later job's writes go
     * out-of-place as usual) and wear state — the device has
     * history, unlike a fresh Engine.
     */
    void sessionReclaim(std::uint64_t base_page, std::uint64_t pages);

    /** The session's event queue (valid after sessionBegin). */
    EventQueue &sessionQueue() { return *queue_; }
    const EventQueue &sessionQueue() const { return *queue_; }

    /** The session's scheduler (valid after sessionBegin). */
    sched::StreamScheduler &sessionScheduler() { return *scheduler_; }

    /** @} */

    /**
     * Feature vector for @p instr at time @p now (testable). The
     * queue/bandwidth terms are live views of the shared resource
     * calendars; during a multi-stream run they include every other
     * tenant's outstanding reservations. After a run, probes are
     * evaluated in the first stream's context (page region and
     * completion state), matching the pre-scheduler engine.
     */
    CostFeatures features(const VecInstruction &instr, Tick now);

    /** Access to substrate stats after a run. */
    const StatSet &stats() const { return stats_; }

    /**
     * The reliability model, or null when the subsystem is disabled
     * (cfg.reliability.enabled == false, the default).
     */
    const reliability::ReliabilityModel *
    reliability() const
    {
        return rel_.get();
    }

    /**
     * Fraction of NAND dies with outstanding sensing backlog at
     * @p now — the device-utilization component of the host-visible
     * placement probe (Device::probe). A pure read of the die
     * calendars: no event is scheduled and no state changes.
     */
    double busyDieFraction(Tick now) const;

    /**
     * Attach a tracer (null detaches); @p device tags this engine's
     * events in multi-device traces. Tracing wiring is transient: it
     * survives sessionBegin/restoreImage but is never captured in an
     * Image, and hooks only record already-computed simulated
     * quantities — a traced run's simulated outputs are byte-
     * identical to the untraced run's.
     */
    void
    setTracer(trace::Tracer *t, std::uint32_t device = 0)
    {
        tracer_ = t;
        traceDevice_ = device;
        nextTraceSampleAt_ = 0;
        nand_.setTracer(t, device);
    }

  private:
    /** Where the freshest copy of a logical page lives. */
    enum class Loc : std::uint8_t { Flash, Latch, Dram };

    /** Lazy-coherence metadata (§4.4): owner, state, version. */
    struct PageMeta
    {
        Loc loc = Loc::Flash;
        bool dirty = false;
        std::uint8_t version = 0;
        bool dramCached = false;  // clean copy staged in SSD DRAM
        std::uint32_t latchDie = 0;
    };

    /** Outcome of moving operands for one instruction. */
    struct MoveResult
    {
        Tick readyAt = 0;
        std::uint64_t bytesMoved = 0;
    };

    /**
     * One dispatch-pipeline step for @p ctx's next instruction:
     * offloader stage, decision, movement, reservation, recording.
     * Invoked by the StreamScheduler per dispatch event; @p now (the
     * event's tick) floors shared-resource acquisition so streams
     * arriving mid-run cannot claim pre-arrival capacity.
     */
    sched::DispatchOutcome dispatchNext(sched::ExecContext &ctx,
                                        Tick now) override;

    void prepare(std::uint64_t total_pages, const EngineOptions &opts);

    Tick offloadOverhead(const VecInstruction &instr, Tick now);

    /** Dies of @p instr's compute fragments (first operand's pages). */
    std::vector<IfpFragment> fragmentsFor(const VecInstruction &instr);

    /** Source operands that require array sensing on IFP. */
    std::uint32_t sensedOperands(const VecInstruction &instr) const;

    /** @name Data movement (coherence-aware) @{ */
    MoveResult moveForIsp(const VecInstruction &instr, Tick earliest);
    MoveResult moveForPud(const VecInstruction &instr, Tick earliest);
    MoveResult moveForIfp(const VecInstruction &instr, Tick earliest);
    /** @} */

    /**
     * Static (contention-free) movement estimate per target.
     * @p aging_read is the expected ECC penalty per flash read at
     * the device's current age (0 with reliability disabled), so
     * offload decisions account for worn-device read latency.
     */
    Tick dmEstimate(const VecInstruction &instr, Target t,
                    std::uint64_t &bytes, Tick aging_read) const;

    /** @name Background scrub (reliability subsystem) @{ */

    /** Scrub events fire after same-tick dispatch/completion/retire. */
    static constexpr int kScrubPriority = 3;

    /**
     * Arm the next scrub event if none is pending. Called from the
     * dispatch path, so scrub activity tracks foreground traffic and
     * the event queue still drains at quiescence (a scrub event
     * never reschedules itself).
     */
    void maybeScheduleScrub(Tick now);

    /** One scrub pass: examine a bounded block window, refresh the
     *  blocks whose RBER crossed the scrub threshold. */
    void runScrubPass();
    /** @} */

    /** Commit a dirty DRAM/latch page to the flash array. */
    Tick commitPage(Lpn page, Tick earliest);

    /**
     * Record DRAM residency of @p page, evicting LRU pages beyond
     * the staging capacity (clean copies are dropped, dirty pages
     * are committed in the background — coherence trigger iii).
     */
    void dramTouch(Lpn page, Tick now);

    /** Mark @p page written by @p target at @p when. */
    void recordWrite(Lpn page, Target target, std::uint32_t die,
                     Tick when);

    /** Execute on a specific resource; returns completion time. */
    Tick executeOn(const VecInstruction &instr, Target target,
                   Tick earliest);

    /**
     * Record a Queue backlog sample if the sample cadence elapsed.
     * Piggybacks on dispatch events — pure calendar reads, no
     * scheduling — so sampling never perturbs the simulation.
     */
    void maybeSampleBacklog(Tick now);

    /**
     * Final result drain for one stream's page region, to the host
     * over PCIe (§4.4 trigger ii). The PCIe link is shared: drains
     * of co-run streams serialize on its calendar.
     */
    Tick drainStream(sched::ExecContext &ctx, Tick after);

    PageMeta &meta(Lpn page) { return pageMeta_.at(page); }

    /** @name Active-stream page addressing @{ */

    /** First absolute LPN of the dispatching stream's region. */
    Lpn
    streamBase() const
    {
        return ctx_ ? static_cast<Lpn>(ctx_->base) : 0;
    }

    /** One-past-last absolute LPN of the dispatching stream. */
    Lpn
    streamEnd() const
    {
        return ctx_ ? static_cast<Lpn>(ctx_->base + ctx_->pages)
                    : static_cast<Lpn>(pageMeta_.size());
    }
    /** @} */

    SsdConfig cfg_;
    StatSet stats_;

    /**
     * Reliability & aging model; null when disabled. Declared before
     * the substrates that hold raw pointers into it (nand_, ftl_),
     * so it outlives them on destruction.
     */
    std::unique_ptr<reliability::ReliabilityModel> rel_;

    NandArray nand_;
    Ftl ftl_;
    DramModel dram_;
    // lint: transient(stateless latency model derived from config; isp_ carries the mutable core Server)
    PudUnit pud_;
    IspCore isp_;
    // lint: transient(stateless latency model derived from config; die/channel calendars live in nand_)
    IfpUnit ifp_;
    // lint: transient(pure function of config; no mutable state)
    InstructionTransformer transformer_;
    Rng rng_;

    Server offloader_{"conduit.offloader"};
    Server pcie_{"host.pcie"};

    EngineOptions opts_;
    std::vector<PageMeta> pageMeta_;
    std::vector<std::deque<Lpn>> latchFifo_; // per die

    /**
     * The session's execution contexts, in attach order; a deque so
     * addresses stay stable while a persistent session keeps
     * attaching streams. Kept after a run so feature probes can
     * consult completion state.
     */
    // lint: transient(captureImage requires quiescence: every context is complete and its results already live in the Device's retired jobs)
    std::deque<sched::ExecContext> streamCtxs_;

    /** Session event queue + scheduler (created by sessionBegin). */
    std::unique_ptr<EventQueue> queue_;
    // lint: transient(rebuilt by sessionBegin on restore; holds no state beyond the contexts it schedules)
    std::unique_ptr<sched::StreamScheduler> scheduler_;

    /** @name Scrub-task state (inert with reliability disabled) @{ */
    Tick nextScrubAt_ = 0;
    std::uint64_t scrubCursor_ = 0;
    bool scrubScheduled_ = false;
    /** @} */

    /**
     * Stream whose dispatch (or drain) is currently being serviced;
     * movement/coherence helpers attribute results, energy, and page
     * addressing through it. Between dispatches it is null; after a
     * completed run it points at the first stream (feature probes).
     */
    sched::ExecContext *ctx_ = nullptr;

    /** @name Tracing wiring (never part of an Image) @{ */
    // lint: transient-begin(passive observer wiring re-attached by the owner; trace buffers are not simulated state)
    trace::Tracer *tracer_ = nullptr;
    std::uint32_t traceDevice_ = 0;
    Tick nextTraceSampleAt_ = 0;
    // lint: transient-end
    /** @} */

    // DRAM staging region LRU (capacity-limited page residency,
    // shared by all streams — capacity pressure is device-wide).
    // FlatLru, not RankLru: with the default (near-unbounded)
    // staging fraction evictions are rare, so O(1) touches beat
    // paying a Fenwick update per touch for a cheaper walk that
    // almost never runs — measured ~35% slower on the open-loop
    // saturation scenario with RankLru here. HostModel's cache is
    // the opposite regime (constant evictions) and uses RankLru.
    std::uint64_t dramCapacityPages_ = 0;
    FlatLru dramLru_;

  public:
    /**
     * Deep snapshot of a quiescent session — every mutable simulated
     * quantity, so a restored engine's subsequent simulation is
     * byte-identical to one that lived through the captured history:
     * substrate images (FTL, NAND, DRAM, ISP, reliability), coherence
     * metadata and latch FIFOs, the DRAM-staging LRU, the RNG stream
     * position, the offloader/PCIe calendars, scrub-task state, the
     * event-queue clock, and the full StatSet. Capture requires
     * quiescence (empty queue, no stream mid-dispatch), so no event
     * or borrowed context ever crosses the snapshot boundary.
     */
    struct Image
    {
        EngineOptions opts;
        std::uint64_t capacityPages = 0;

        Ftl::Image ftl;
        NandArray::Image nand;
        DramModel::Image dram;
        IspCore::Image isp;
        /** Present exactly when cfg.reliability.enabled. */
        bool hasReliability = false;
        reliability::ReliabilityModel::Image rel;

        StatSet stats;
        Rng rng;
        Server offloader;
        Server pcie;
        std::vector<PageMeta> pageMeta;
        std::vector<std::deque<Lpn>> latchFifo;
        std::uint64_t dramCapacityPages = 0;
        FlatLru dramLru;
        Tick nextScrubAt = 0;
        std::uint64_t scrubCursor = 0;
        Tick queueNow = 0;
        std::uint64_t queueFired = 0;
    };

    /**
     * Capture the session's complete mutable state. Only valid at
     * quiescence: the event queue must be empty (every attached
     * stream finished and drained).
     */
    Image captureImage() const;

    /**
     * Reopen this engine as an exact continuation of @p img. Must be
     * called on a freshly constructed Engine built from the same
     * SsdConfig the image was captured under (geometry, seed, and
     * reliability enablement are construction-derived and must
     * match). Internally begins a session and then overwrites every
     * mutable quantity with the image's.
     */
    void restoreImage(const Image &img);
};

/**
 * Fold @p r into @p agg: label joining ("+"), counter and busy-time
 * sums, latency-histogram merge. Shared by Engine::run's aggregate
 * and core::Device snapshots so both report identically.
 */
void accumulateResult(RunResult &agg, const RunResult &r);

/** Device-level aggregate over per-stream results, in order. */
RunResult aggregateResults(const std::vector<RunResult> &streams);

} // namespace conduit

#endif // CONDUIT_CORE_ENGINE_HH
