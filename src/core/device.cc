#include "src/core/device.hh"

#include <stdexcept>

#include "src/trace/trace.hh"

namespace conduit
{

// --------------------------------------------------- RegionAllocator

void
RegionAllocator::reset(std::uint64_t pages)
{
    free_.clear();
    capacity_ = pages;
    inUse_ = 0;
    if (pages > 0)
        free_[0] = pages;
}

std::optional<std::uint64_t>
RegionAllocator::allocate(std::uint64_t pages)
{
    if (pages == 0)
        return 0; // zero-footprint jobs occupy nothing
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < pages)
            continue;
        const std::uint64_t base = it->first;
        const std::uint64_t len = it->second;
        free_.erase(it);
        if (len > pages)
            free_[base + pages] = len - pages;
        inUse_ += pages;
        return base;
    }
    return std::nullopt;
}

void
RegionAllocator::release(std::uint64_t base, std::uint64_t pages)
{
    if (pages == 0)
        return;
    auto [it, inserted] = free_.emplace(base, pages);
    if (!inserted)
        throw std::logic_error("RegionAllocator: double free");
    inUse_ -= pages;
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
}

// ------------------------------------------------------------ Device

Device::Device(DeviceOptions opts)
    : opts_(std::move(opts)), engine_(opts_.config)
{
    if (opts_.tracer)
        setTracer(opts_.tracer, opts_.traceDevice);
}

Device::Device(const DeviceImage &img)
    : opts_(img.options), engine_(opts_.config)
{
    // Forked devices start with an empty trace: a tracer is live
    // observer wiring, not simulated state, so it never crosses the
    // snapshot boundary. (snapshot() strips it too — this reset
    // guards images built by hand.)
    opts_.tracer.reset();
    engine_.restoreImage(img.engine);
    regions_.reset(img.capacityPages);
    engine_.sessionScheduler().setStreamDone(
        [this](sched::ExecContext &ctx) { onStreamDone(ctx); });
    session_ = true;

    // Rebuild the retired-job history so drain() reports it exactly
    // as the captured device would, and new submissions continue the
    // JobId sequence. Retired jobs reference no context, program, or
    // policy — only their results — so plain records suffice.
    for (const JobResult &r : img.jobs) {
        Job job;
        job.footprint = r.pages;
        job.requestedArrival = r.arrival;
        job.state = Job::State::Retired;
        job.result = r;
        jobs_.push_back(std::move(job));
    }
    retired_ = jobs_.size();
    makespan_ = img.makespan;
}

DeviceImage
Device::snapshot()
{
    ensureSession();
    advanceToQuiescence();

    DeviceImage img;
    img.options = opts_;
    img.options.tracer.reset(); // trace buffers are not device state
    img.capacityPages = regions_.capacity();
    img.engine = engine_.captureImage();
    img.makespan = makespan_;
    img.jobs.reserve(jobs_.size());
    for (const Job &job : jobs_)
        img.jobs.push_back(job.result);
    return img;
}

JobId
Device::submit(const JobSpec &spec)
{
    Job job;
    if (spec.program) {
        job.spec.program = spec.program;
    } else if (spec.workload) {
        auto vp =
            cache_.get(*spec.workload, opts_.workload, opts_.config);
        // Alias the cache entry: it stays alive inside the shared_ptr
        // control block for as long as any job references it.
        job.spec.program =
            std::shared_ptr<const Program>(vp, &vp->program);
    } else {
        throw std::invalid_argument(
            "Device::submit: JobSpec needs a workload or a program");
    }
    job.spec.policy = spec.policyObj
        ? spec.policyObj
        : std::shared_ptr<OffloadPolicy>(makePolicy(spec.policy));
    job.spec.name = !spec.name.empty() ? spec.name
        : spec.workload ? workloadName(*spec.workload)
                        : std::string();
    job.footprint = job.spec.program->footprintPages;
    job.requestedArrival = spec.arrival;

    jobs_.push_back(std::move(job));
    Job &j = jobs_.back();
    j.result.id = static_cast<JobId>(jobs_.size());
    j.result.arrival = j.requestedArrival;
    if (session_)
        scheduleArrival(j);
    return j.result.id;
}

void
Device::ensureSession()
{
    if (session_)
        return;
    std::uint64_t cap = opts_.capacityPages;
    if (cap == 0) {
        // Auto-size the pool to the jobs pending right now — the
        // footprint sum Engine::run prepares for, which keeps
        // simultaneous-arrival runs byte-identical to runMulti.
        for (const Job &j : jobs_)
            cap += j.footprint;
    }
    engine_.sessionBegin(cap, opts_.engine);
    regions_.reset(cap);
    engine_.sessionScheduler().setStreamDone(
        [this](sched::ExecContext &ctx) { onStreamDone(ctx); });
    session_ = true;

    // Tick-0 jobs admit directly (no arrival event), in submission
    // order — exactly the spec-order attach sequence of Engine::run.
    // Future arrivals become events on the shared queue.
    for (Job &job : jobs_) {
        if (job.requestedArrival == 0) {
            job.result.arrival = 0;
            admit(job);
        } else {
            scheduleArrival(job);
        }
    }
}

void
Device::scheduleArrival(Job &job)
{
    EventQueue &q = engine_.sessionQueue();
    const Tick at = std::max(q.now(), job.requestedArrival);
    job.result.arrival = at;
    // jobs_ is a deque: the captured reference stays valid.
    q.schedule(
        at, [this, &job] { admit(job); },
        sched::StreamScheduler::kDispatchPriority);
}

void
Device::admit(Job &job)
{
    if (tracer_)
        sampleQueues();
    if (auto base = regions_.allocate(job.footprint)) {
        attach(job, *base);
        return;
    }
    job.state = Job::State::Waiting;
    waiting_.push_back(job.result.id);
}

void
Device::attach(Job &job, std::uint64_t base)
{
    const Tick at = engine_.sessionQueue().now();
    job.result.basePage = base;
    job.result.pages = job.footprint;
    job.result.admitted = at;
    job.ctx = &engine_.sessionAttach(job.spec, base, at);
    byCtx_[job.ctx] = job.result.id;
    job.state = Job::State::Running;
    if (job.ctx->finished) {
        // Empty program: finished on arrival, no completion event
        // will ever fire for it.
        job.state = Job::State::Finished;
        if (opts_.retire == RetirePolicy::OnComplete)
            retire(job);
    }
}

void
Device::onStreamDone(sched::ExecContext &ctx)
{
    Job &job = jobs_[byCtx_.at(&ctx) - 1];
    job.state = Job::State::Finished;
    if (opts_.retire == RetirePolicy::OnComplete)
        retire(job);
}

void
Device::retire(Job &job)
{
    const Tick end = engine_.sessionFinish(*job.ctx);
    job.result.end = end;
    job.result.result = std::move(job.ctx->result);
    job.state = Job::State::Retired;
    ++retired_;
    makespan_ = std::max(makespan_, end);

    if (tracer_) {
        if (tracer_->wants(trace::Category::Job)) {
            trace::Event e;
            e.cat = trace::Category::Job;
            e.kind = trace::EventKind::Job;
            e.device = traceDevice_;
            e.start = job.result.arrival;
            e.end = end;
            e.a = job.result.id;
            e.b = job.result.admitted;
            e.c = job.result.pages;
            e.str = tracer_->intern(job.result.result.workload);
            tracer_->record(e);
        }
        sampleQueues();
    }

    // Drop everything the retired job no longer needs, so a
    // long-lived device serving an unbounded job stream holds per
    // retired job only its JobResult: the program/policy refs, the
    // ctx-pointer index, and the context's live state all go (no
    // event references the finished stream anymore).
    byCtx_.erase(job.ctx);
    job.ctx->prog = nullptr;
    job.ctx->policy = nullptr;
    job.ctx->completion = {};
    job.spec = sched::StreamSpec{};

    const std::uint64_t base = job.result.basePage;
    const std::uint64_t pages = job.result.pages;
    EventQueue &q = engine_.sessionQueue();
    if (opts_.retire == RetirePolicy::OnComplete && end > q.now()) {
        // The result drain extends past the completion event that
        // triggered this retirement: the pages are still streaming
        // out over PCIe until `end`, so the region joins the pool
        // (and queued jobs admit) only then. Retire events fire
        // after same-tick dispatches and completions.
        q.schedule(
            end, [this, base, pages] { releaseRegion(base, pages); },
            kRetirePriority);
    } else {
        // Quiescence-mode retirement happens outside simulated time
        // (the batch semantics of Engine::run); release in place.
        releaseRegion(base, pages);
    }
}

void
Device::releaseRegion(std::uint64_t base, std::uint64_t pages)
{
    // Free the region for later jobs and admit whoever was queued
    // for capacity, FIFO (head-of-line: preserves admission order).
    regions_.release(base, pages);
    engine_.sessionReclaim(base, pages);
    while (!waiting_.empty()) {
        Job &w = jobs_[waiting_.front() - 1];
        const auto at = regions_.allocate(w.footprint);
        if (!at)
            break;
        waiting_.pop_front();
        attach(w, *at);
    }
}

bool
Device::retireFinished()
{
    bool progress = false;
    for (Job &job : jobs_) {
        if (job.state == Job::State::Finished) {
            retire(job);
            progress = true;
        }
    }
    return progress;
}

void
Device::advanceToQuiescence()
{
    EventQueue &q = engine_.sessionQueue();
    for (;;) {
        q.run();
        // Quiescence: retire finished jobs in submission order
        // (OnComplete mode already retired them in-loop). Retiring
        // frees regions and may admit queued jobs — which can wake
        // the queue back up, or finish instantly (empty programs) —
        // so keep going until a pass makes no progress at all.
        if (retireFinished())
            continue;
        if (!q.empty())
            continue;
        if (!waiting_.empty())
            throw std::runtime_error(
                "Device: job footprint can never be admitted; raise "
                "DeviceOptions::capacityPages or shrink the job");
        return;
    }
}

const JobResult &
Device::wait(JobId id)
{
    if (id == 0 || id > jobs_.size())
        throw std::out_of_range("Device::wait: unknown job id");
    ensureSession();
    Job &job = jobs_[id - 1];
    EventQueue &q = engine_.sessionQueue();
    while (job.state != Job::State::Retired) {
        if (q.runOne())
            continue;
        if (retireFinished())
            continue;
        throw std::runtime_error(
            "Device::wait: job can never complete; raise "
            "DeviceOptions::capacityPages or shrink the job");
    }
    return job.result;
}

DeviceSnapshot
Device::drain()
{
    ensureSession();
    advanceToQuiescence();

    DeviceSnapshot snap;
    snap.makespan = makespan_;
    snap.eventsFired = engine_.sessionQueue().eventsFired();
    snap.jobs.reserve(jobs_.size());
    for (const Job &job : jobs_)
        snap.jobs.push_back(job.result);
    for (const Job &job : jobs_)
        accumulateResult(snap.aggregate, job.result.result);
    snap.aggregate.execTime = snap.makespan;
    if (const auto *rel = engine_.reliability())
        snap.reliability = rel->stats();
    return snap;
}

void
Device::advanceTo(Tick t)
{
    ensureSession();
    engine_.sessionQueue().run(t);
}

DeviceProbe
Device::probe() const
{
    DeviceProbe p;
    p.now = now();
    p.pendingJobs = unfinishedJobs();
    p.waitingJobs = waiting_.size();
    p.admittedPages = regions_.inUse();
    p.capacityPages = regions_.capacity();
    if (session_)
        p.dieBusyFraction = engine_.busyDieFraction(p.now);
    return p;
}

Tick
Device::now() const
{
    return session_ ? engine_.sessionQueue().now() : 0;
}

void
Device::setTracer(std::shared_ptr<trace::Tracer> t,
                  std::uint32_t device)
{
    tracer_ = std::move(t);
    traceDevice_ = device;
    nextQueueSampleAt_ = 0;
    engine_.setTracer(tracer_.get(), device);
}

void
Device::sampleQueues()
{
    if (!tracer_->wants(trace::Category::Queue))
        return;
    const Tick t = now();
    if (t < nextQueueSampleAt_)
        return;
    const Tick step = std::max<Tick>(1, tracer_->sampleInterval());
    while (nextQueueSampleAt_ <= t)
        nextQueueSampleAt_ += step;
    trace::Event e;
    e.cat = trace::Category::Queue;
    e.kind = trace::EventKind::JobQueueSample;
    e.device = traceDevice_;
    e.start = t;
    e.end = t;
    e.a = unfinishedJobs();
    e.b = waiting_.size();
    e.c = regions_.inUse();
    tracer_->record(e);
}

sched::MultiRunResult
runStreamsOnDevice(const DeviceOptions &opts,
                   std::vector<sched::StreamSpec> streams)
{
    if (streams.empty())
        throw std::invalid_argument("Engine: no streams to run");
    Device dev(opts);
    for (sched::StreamSpec &s : streams) {
        JobSpec job;
        job.name = s.name;
        job.program = std::move(s.program);
        job.policyObj = std::move(s.policy);
        dev.submit(job);
    }
    DeviceSnapshot snap = dev.drain();

    sched::MultiRunResult mr;
    mr.makespan = snap.makespan;
    mr.eventsFired = snap.eventsFired;
    mr.aggregate = std::move(snap.aggregate);
    mr.streams.reserve(snap.jobs.size());
    for (JobResult &jr : snap.jobs)
        mr.streams.push_back(std::move(jr.result));
    return mr;
}

} // namespace conduit
