#include "src/core/arrival.hh"

#include <cmath>
#include <stdexcept>

namespace conduit
{

std::vector<Tick>
ArrivalProcess::schedule(std::size_t n)
{
    std::vector<Tick> times;
    times.reserve(n);
    Tick t = 0;
    for (std::size_t i = 0; i < n; ++i) {
        t += next();
        times.push_back(t);
    }
    return times;
}

TraceArrivals::TraceArrivals(std::vector<Tick> gaps)
    : gaps_(std::move(gaps))
{
    if (gaps_.empty())
        throw std::invalid_argument(
            "TraceArrivals: the gap trace must be non-empty");
}

Tick
TraceArrivals::next()
{
    const Tick gap = gaps_[pos_];
    pos_ = (pos_ + 1) % gaps_.size();
    return gap;
}

UniformArrivals::UniformArrivals(Tick lo, Tick hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), rng_(seed)
{
    if (hi_ < lo_)
        throw std::invalid_argument(
            "UniformArrivals: hi must be >= lo");
}

Tick
UniformArrivals::next()
{
    return lo_ + rng_.below(hi_ - lo_ + 1);
}

PoissonArrivals::PoissonArrivals(double mean_gap_ticks,
                                 std::uint64_t seed)
    : meanGap_(mean_gap_ticks), rng_(seed)
{
    if (!(meanGap_ >= 0.0))
        throw std::invalid_argument(
            "PoissonArrivals: mean gap must be non-negative");
}

PoissonArrivals
PoissonArrivals::fromRate(double jobs_per_sec, std::uint64_t seed)
{
    if (!(jobs_per_sec > 0.0))
        throw std::invalid_argument(
            "PoissonArrivals: rate must be positive");
    return PoissonArrivals(static_cast<double>(kPsPerS) / jobs_per_sec,
                           seed);
}

Tick
PoissonArrivals::next()
{
    // Inverse transform: gap = -mean * ln(1 - U), U in [0, 1).
    const double u = rng_.uniform();
    return static_cast<Tick>(-meanGap_ * std::log1p(-u));
}

const std::vector<std::string> &
arrivalKindNames()
{
    static const std::vector<std::string> names = {"fixed", "uniform",
                                                   "poisson"};
    return names;
}

std::string
arrivalKindName(ArrivalKind kind)
{
    return arrivalKindNames().at(static_cast<std::size_t>(kind));
}

bool
parseArrivalKind(const std::string &name, ArrivalKind &out)
{
    const auto &names = arrivalKindNames();
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name) {
            out = static_cast<ArrivalKind>(i);
            return true;
        }
    }
    return false;
}

std::unique_ptr<ArrivalProcess>
makeArrivals(ArrivalKind kind, double mean_gap_ticks,
             std::uint64_t seed)
{
    const Tick mean = static_cast<Tick>(mean_gap_ticks);
    switch (kind) {
      case ArrivalKind::Fixed:
        return std::make_unique<FixedArrivals>(mean);
      case ArrivalKind::Uniform:
        return std::make_unique<UniformArrivals>(mean / 2,
                                                 mean + mean / 2, seed);
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonArrivals>(mean_gap_ticks, seed);
    }
    throw std::invalid_argument("makeArrivals: unknown kind");
}

} // namespace conduit
