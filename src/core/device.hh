/**
 * @file
 * The persistent simulated SSD with dynamic job submission.
 *
 * The batch facade (Simulation::run / runMulti) answers "what if
 * these N programs start together on a cold device?". A production
 * SSD instead serves a *stream* of arriving requests: jobs show up
 * over time, occupy logical-page regions while they run, and leave.
 * Device is that long-lived object — it owns one simulated SSD for
 * its whole lifetime and accepts jobs dynamically:
 *
 *   Device dev(opts);
 *   JobSpec spec;
 *   spec.workload = WorkloadId::Aes;
 *   JobId a = dev.submit(spec);
 *   spec.workload = WorkloadId::Jacobi1d;
 *   spec.policy = "DM-Offloading";
 *   spec.arrival = usToTicks(500);
 *   JobId b = dev.submit(spec);
 *   const JobResult &ra = dev.wait(a);   // advance sim until a retires
 *   DeviceSnapshot all = dev.drain();    // run everything submitted
 *
 * Jobs arrive at their simulated arrival tick (arrival events on the
 * shared EventQueue), get a logical-page region from a first-fit
 * allocator, co-run with whatever else is on the device, and retire:
 * results drain to the host and the region is reclaimed for later
 * jobs. Submission is open-loop — arrival times never depend on
 * completion times — so offered-load experiments (saturation curves,
 * SLO tails under churn) are first-class.
 *
 * Equivalence contract: a Device whose jobs all arrive at tick 0
 * reproduces Engine::run / Simulation::runMulti byte-identically
 * (same regions, same event sequence, same retire order), and a
 * single job reproduces Simulation::run. The batch facade is
 * re-implemented as a thin wrapper over this class.
 *
 * Everything is deterministic: arrivals, admission, retirement and
 * reclamation all happen at defined points in simulated time, so
 * repeat runs — on any host thread count — are bit-identical.
 */

#ifndef CONDUIT_CORE_DEVICE_HH
#define CONDUIT_CORE_DEVICE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/engine.hh"
#include "src/core/program_cache.hh"
#include "src/workloads/workloads.hh"

namespace conduit
{

/** Identifies a submitted job (sequential from 1; 0 is invalid). */
using JobId = std::uint64_t;

/**
 * First-fit allocator over the device's logical-page pool.
 *
 * Jobs occupy contiguous regions; freeing coalesces with neighbours.
 * Allocation order is deterministic (lowest free base wins), so jobs
 * admitted in submission order from an empty pool land exactly where
 * Engine::run's spec-order layout puts them.
 */
class RegionAllocator
{
  public:
    explicit RegionAllocator(std::uint64_t pages = 0) { reset(pages); }

    /** Drop all allocations and resize the pool to @p pages. */
    void reset(std::uint64_t pages);

    /** First-fit allocate @p pages; nullopt when nothing fits. */
    std::optional<std::uint64_t> allocate(std::uint64_t pages);

    /** Return [base, base + pages), coalescing with free neighbours. */
    void release(std::uint64_t base, std::uint64_t pages);

    std::uint64_t capacity() const { return capacity_; }
    std::uint64_t inUse() const { return inUse_; }

  private:
    std::map<std::uint64_t, std::uint64_t> free_; // base -> length
    std::uint64_t capacity_ = 0;
    std::uint64_t inUse_ = 0;
};

/** When a finished job's results drain and its region frees. */
enum class RetirePolicy
{
    /**
     * At device quiescence, in submission order — the batch
     * semantics of Engine::run, byte-compatible with the facade's
     * runMulti for simultaneous arrivals.
     */
    OnQuiesce,

    /**
     * Inside the job's final completion event — open-loop mode:
     * regions recycle while other jobs are still running, so a
     * bounded device can serve an unbounded job stream.
     */
    OnComplete,
};

/** Device-wide knobs (fixed for the device's lifetime). */
struct DeviceOptions
{
    /** Device configuration (defaults: Table 2 geometry, scaled). */
    SsdConfig config = SsdConfig::scaled(1.0 / 128.0);

    /** Engine options shared by every job. */
    EngineOptions engine;

    /** Workload dataset scale for JobSpec::workload compilation. */
    WorkloadParams workload;

    /**
     * Logical-page pool backing job regions. 0 sizes the pool to the
     * jobs pending at the first advance — exactly the footprint sum
     * Engine::run prepares for, which is what makes simultaneous-
     * arrival runs byte-identical to runMulti. Set it explicitly for
     * open-ended operation with admission control.
     */
    std::uint64_t capacityPages = 0;

    /** Retirement policy (see RetirePolicy). */
    RetirePolicy retire = RetirePolicy::OnQuiesce;

    /**
     * Trace sink shared with the caller; null disables tracing. Never
     * captured into a DeviceImage — snapshot() strips it and a forked
     * device starts with no tracer (empty trace).
     */
    std::shared_ptr<trace::Tracer> tracer;

    /** Device id tagging this device's events in shared traces. */
    std::uint32_t traceDevice = 0;
};

/**
 * DeviceOptions carrying a run's device-wide knobs — the one place
 * the facade and the sweep runner's device paths build their options
 * from (config, engine, workload) triples.
 */
inline DeviceOptions
makeDeviceOptions(const SsdConfig &config, const EngineOptions &engine,
                  const WorkloadParams &workload)
{
    DeviceOptions d;
    d.config = config;
    d.engine = engine;
    d.workload = workload;
    return d;
}

/** One unit of work offered to the device. */
struct JobSpec
{
    /** Result label; defaults to the workload/program name. */
    std::string name;

    /** Workload to compile via the device's compile-once cache. */
    std::optional<WorkloadId> workload;

    /** Pre-compiled program (overrides @ref workload). */
    std::shared_ptr<const Program> program;

    /** Policy name resolved via makePolicy(). */
    std::string policy = "Conduit";

    /** Externally constructed policy (overrides @ref policy). */
    std::shared_ptr<OffloadPolicy> policyObj;

    /**
     * Simulated arrival tick. Clamped to the device's current time
     * when submitting after the simulation has advanced.
     */
    Tick arrival = 0;
};

/** Everything known about one retired (or in-flight) job. */
struct JobResult
{
    JobId id = 0;

    /** Tick the job arrived at the device. */
    Tick arrival = 0;

    /**
     * Tick the job was admitted (region allocated, stream attached).
     * Later than @ref arrival when the job queued for capacity.
     */
    Tick admitted = 0;

    /** Completion tick, result drain included. */
    Tick end = 0;

    /** Region the job occupied. */
    std::uint64_t basePage = 0;
    std::uint64_t pages = 0;

    /** The job's per-stream run result. */
    RunResult result;

    /** Arrival-to-completion time (queueing + service). */
    Tick sojourn() const { return end > arrival ? end - arrival : 0; }
};

/**
 * Host-visible utilization probe of a device at its current tick —
 * the backlog state a fleet placement policy (src/cluster) may
 * observe when routing a job, and nothing more. Taking a probe is
 * cheap and side-effect free: counters the device already tracks
 * plus one read of the NAND die calendars.
 */
struct DeviceProbe
{
    /** Device clock the probe was taken at. */
    Tick now = 0;

    /** Jobs submitted but not yet retired (queued + in service). */
    std::size_t pendingJobs = 0;

    /** Jobs queued for admission capacity (subset of pending). */
    std::size_t waitingJobs = 0;

    /** Logical pages held by admitted jobs. */
    std::uint64_t admittedPages = 0;

    /** Logical-page pool size (0 before the session starts). */
    std::uint64_t capacityPages = 0;

    /** Fraction of NAND dies with sensing backlog at @ref now. */
    double dieBusyFraction = 0.0;
};

/** drain()'s view of the device: every retired job plus aggregates. */
struct DeviceSnapshot
{
    /** Retired jobs, in submission order. */
    std::vector<JobResult> jobs;

    /** Device-level aggregate (same folding as runMulti's). */
    RunResult aggregate;

    /** Latest job end (drains included). */
    Tick makespan = 0;

    /** Events fired on the device's queue so far. */
    std::uint64_t eventsFired = 0;

    /**
     * Cumulative reliability counters (ECC retries, retired blocks,
     * scrub activity). All zero unless the device's config enables
     * the reliability subsystem.
     */
    reliability::ReliabilityStats reliability;
};

/**
 * A deep snapshot of a quiescent Device — everything needed to
 * construct a device whose subsequent simulation is byte-identical
 * to one that lived through the captured history (warmup, aging, GC,
 * retirements, the lot). A value type: copy it, share it read-only
 * across threads (`std::shared_ptr<const DeviceImage>`), and fork as
 * many independent devices from one image as you like — each
 * Device::fromImage() deep-copies on construction.
 */
struct DeviceImage
{
    /** The captured device's options (config, engine, workload). */
    DeviceOptions options;

    /**
     * The logical-page pool capacity in force at capture. Recorded
     * explicitly so images taken from auto-sized devices
     * (capacityPages == 0) fork with the pool the warmup actually
     * established, not a re-derived one.
     */
    std::uint64_t capacityPages = 0;

    /** Full engine-level state (substrates, RNG, clock, stats). */
    Engine::Image engine;

    /**
     * Results of every job retired before the capture, in submission
     * order. Forked devices carry these so drain() reports the full
     * history — byte-identical to the continued device's — and JobId
     * numbering continues from the right place.
     */
    std::vector<JobResult> jobs;

    /** Latest job end at capture. */
    Tick makespan = 0;
};

/**
 * A persistent simulated SSD accepting jobs over its lifetime.
 *
 * Not thread-safe: a Device advances one discrete-event simulation;
 * drive it from one thread (sweep across devices for parallelism,
 * as SweepRunner::runLoadAll does).
 */
class Device
{
  public:
    explicit Device(DeviceOptions opts = {});

    /**
     * Construct a device continuing exactly where @p img left off:
     * same simulated clock, same wear and mappings, same RNG stream
     * positions, same retired-job history. Equivalent to
     * fromImage(img).
     */
    explicit Device(const DeviceImage &img);

    /**
     * Non-copyable, non-movable: the engine's subsystems hold
     * references into each other and event callbacks hold addresses
     * of job records. (Returning a freshly constructed Device from a
     * factory still works — C++17 guaranteed elision.)
     */
    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Offer a job to the device. Compilation (for workload jobs) and
     * policy construction happen immediately; the job itself arrives
     * at max(arrival, now()) in simulated time. Returns the handle
     * for wait().
     */
    JobId submit(const JobSpec &spec);

    /**
     * Advance the simulation until @p id retires, then return its
     * result. Waiting on an already-retired job returns immediately.
     * @throws std::out_of_range on an unknown id.
     * @throws std::runtime_error when the job can never be admitted
     *         (its footprint exceeds what the pool could ever free).
     */
    const JobResult &wait(JobId id);

    /**
     * Advance the simulation until every submitted job has retired
     * and return the cumulative snapshot. The device stays usable —
     * more jobs may be submitted afterwards and drained again.
     */
    DeviceSnapshot drain();

    /**
     * Capture a deep image of the device: advance to quiescence
     * (every submitted job retired, queue empty), then copy all
     * mutable simulated state. The device stays usable afterwards.
     * Fork-equivalence contract: a Device built from the image and a
     * device that keeps living produce byte-identical simulated
     * results for identical subsequent submissions.
     */
    DeviceImage snapshot();

    /** Fork a fresh device from @p img (guaranteed-elision factory). */
    static Device fromImage(const DeviceImage &img)
    {
        return Device(img);
    }

    /**
     * Advance the simulation through every event at tick <= @p t
     * (arrivals, dispatches, completions, eager retirements). The
     * fleet layer uses this to bring a device to a job's arrival
     * tick before probing it; jobs submitted afterwards still arrive
     * at their requested tick (>= t by open-loop construction).
     */
    void advanceTo(Tick t);

    /**
     * Host-visible utilization probe at the device's current tick.
     * Const and side-effect free — callers wanting "state at tick t"
     * advanceTo(t) first.
     */
    DeviceProbe probe() const;

    /** Current simulated time of the device. */
    Tick now() const;

    /** Jobs submitted so far. */
    std::size_t jobCount() const { return jobs_.size(); }

    /** Jobs not yet retired. */
    std::size_t unfinishedJobs() const
    {
        return jobs_.size() - retired_;
    }

    /** The underlying engine (stats and feature probes). */
    Engine &engine() { return engine_; }
    const Engine &engine() const { return engine_; }

    const DeviceOptions &options() const { return opts_; }

    /**
     * Attach a tracer (null detaches); @p device tags this device's
     * events in multi-device traces. Replaces any tracer installed
     * via DeviceOptions.
     */
    void setTracer(std::shared_ptr<trace::Tracer> t,
                   std::uint32_t device = 0);

  private:
    struct Job
    {
        sched::StreamSpec spec; // owns the program + policy
        std::uint64_t footprint = 0;
        Tick requestedArrival = 0;
        enum class State
        {
            Submitted, // not yet offered to the event queue
            Waiting,   // arrived, queued for region capacity
            Running,   // region allocated, stream attached
            Finished,  // all completions fired, not yet retired
            Retired,
        } state = State::Submitted;
        sched::ExecContext *ctx = nullptr;
        JobResult result;
    };

    /** Start the engine session lazily, at the first advance. */
    void ensureSession();

    /** Post the job's arrival event (or admit it at session start). */
    void scheduleArrival(Job &job);

    /** Arrival: allocate a region and attach, or queue for space. */
    void admit(Job &job);

    /** Attach the job's stream in [base, base+footprint). */
    void attach(Job &job, std::uint64_t base);

    /** A stream finished — mark its job, retire in OnComplete mode. */
    void onStreamDone(sched::ExecContext &ctx);

    /**
     * Retire events (deferred region releases) fire after same-tick
     * dispatches and completions.
     */
    static constexpr int kRetirePriority = 2;

    /**
     * Drain results and finalize the job. In OnComplete mode the
     * region frees when the drain finishes in simulated time; in
     * OnQuiesce mode (batch semantics) it frees in place.
     */
    void retire(Job &job);

    /** Return a region to the pool and admit queued jobs, FIFO. */
    void releaseRegion(std::uint64_t base, std::uint64_t pages);

    /**
     * Quiescence: retire finished jobs in submission order.
     * @return true if any job retired (retiring can admit queued
     *         jobs — including empty-program ones that finish
     *         instantly — so callers must re-run until no progress).
     */
    bool retireFinished();

    /**
     * Run the event loop to quiescence, retiring and re-admitting
     * until no progress is possible.
     * @throws std::runtime_error if waiting jobs can never fit.
     */
    void advanceToQuiescence();

    /** Record a Queue admission-state sample if the cadence elapsed. */
    void sampleQueues();

    DeviceOptions opts_;
    Engine engine_;
    // lint: transient(memoized compiled programs; rebuilt on demand, never observable)
    ProgramCache cache_;
    RegionAllocator regions_;
    bool session_ = false;

    std::deque<Job> jobs_; // deque: stable addresses for callbacks
    // lint: transient(snapshot() drains to quiescence first, so the admission queue is empty at capture)
    std::deque<JobId> waiting_;
    // lint: transient(empty at quiescence; lookup-only map from live contexts to jobs)
    std::unordered_map<const sched::ExecContext *, JobId> byCtx_;
    std::size_t retired_ = 0;
    Tick makespan_ = 0;

    /** @name Tracing wiring (never part of a DeviceImage) @{ */
    // lint: transient-begin(passive observer wiring; stripped from snapshots so forks start with empty traces)
    std::shared_ptr<trace::Tracer> tracer_;
    std::uint32_t traceDevice_ = 0;
    Tick nextQueueSampleAt_ = 0;
    // lint: transient-end
    /** @} */
};

/**
 * Run @p streams as tick-0 jobs on a fresh Device under @p opts and
 * convert the snapshot to the batch result shape — the shared body
 * of the facade's runStreams and the sweep runner's via-device path
 * (byte-identical to Engine::run by the equivalence contract).
 */
sched::MultiRunResult
runStreamsOnDevice(const DeviceOptions &opts,
                   std::vector<sched::StreamSpec> streams);

} // namespace conduit

#endif // CONDUIT_CORE_DEVICE_HH
