#include "src/core/transformer.hh"

#include <algorithm>

namespace conduit
{

namespace
{

/** MVE/Helium mnemonic for the ISP path. */
std::string
mveMnemonic(OpCode op)
{
    switch (op) {
      case OpCode::And: return "vand";
      case OpCode::Or: return "vorr";
      case OpCode::Xor: return "veor";
      case OpCode::Not: return "vmvn";
      case OpCode::Nand: return "vand+vmvn";
      case OpCode::Nor: return "vorr+vmvn";
      case OpCode::ShiftL: return "vshl";
      case OpCode::ShiftR: return "vshr";
      case OpCode::Add: return "vadd";
      case OpCode::Sub: return "vsub";
      case OpCode::CmpLt: return "vcmp.lt";
      case OpCode::CmpEq: return "vcmp.eq";
      case OpCode::Select: return "vpsel";
      case OpCode::Min: return "vmin";
      case OpCode::Max: return "vmax";
      case OpCode::Copy: return "vldr+vstr";
      case OpCode::Mul: return "vmul";
      case OpCode::Div: return "sdiv(loop)";
      case OpCode::Mac: return "vmla";
      case OpCode::Shuffle: return "vtbl";
      case OpCode::Gather: return "vldr.gather";
      case OpCode::Scatter: return "vstr.scatter";
      case OpCode::Exp: return "poly.exp(loop)";
      case OpCode::Rsqrt: return "vrsqrte";
      default: return "nop";
    }
}

/** SIMDRAM/MIMDRAM/Proteus bbop for the PuD path. */
std::string
bbopMnemonic(OpCode op)
{
    switch (op) {
      case OpCode::And: return "bbop_and";
      case OpCode::Or: return "bbop_or";
      case OpCode::Xor: return "bbop_xor";
      case OpCode::Not: return "bbop_not";
      case OpCode::Nand: return "bbop_nand";
      case OpCode::Nor: return "bbop_nor";
      case OpCode::ShiftL: return "bbop_shl";
      case OpCode::ShiftR: return "bbop_shr";
      case OpCode::Add: return "bbop_add";
      case OpCode::Sub: return "bbop_sub";
      case OpCode::CmpLt: return "bbop_lt";
      case OpCode::CmpEq: return "bbop_eq";
      case OpCode::Select: return "bbop_sel";
      case OpCode::Min: return "bbop_min";
      case OpCode::Max: return "bbop_max";
      case OpCode::Copy: return "rowclone_aap";
      case OpCode::Mul: return "bbop_mul";
      case OpCode::Mac: return "bbop_mac";
      default: return "bbop_invalid";
    }
}

/** Flash-Cosmos / Ares-Flash primitive for the IFP path. */
std::string
ifpMnemonic(OpCode op)
{
    switch (op) {
      case OpCode::And: return "mws_and";
      case OpCode::Or: return "mws_or";
      case OpCode::Nand: return "mws_and+latch_inv";
      case OpCode::Nor: return "mws_or+latch_inv";
      case OpCode::Xor: return "latch_xor";
      case OpCode::Not: return "latch_inv";
      case OpCode::ShiftL: return "latch_shift_l";
      case OpCode::ShiftR: return "latch_shift_r";
      case OpCode::Copy: return "latch_copy";
      case OpCode::Add: return "shift_and_add.add";
      case OpCode::Sub: return "shift_and_add.sub";
      case OpCode::Mul: return "shift_and_add.mul";
      default: return "ifp_invalid";
    }
}

} // namespace

InstructionTransformer::InstructionTransformer(std::uint32_t page_bytes,
                                               std::uint32_t dram_row_bytes,
                                               std::uint32_t isp_simd_bytes)
    : pageBytes_(page_bytes), rowBytes_(dram_row_bytes),
      simdBytes_(isp_simd_bytes)
{
}

std::uint32_t
InstructionTransformer::nativeLanes(Target target,
                                    std::uint16_t elem_bits) const
{
    const std::uint32_t ebytes = std::max(1, elem_bits / 8);
    switch (target) {
      case Target::Ifp:
        return pageBytes_ / ebytes;
      case Target::Pud:
        return rowBytes_ / ebytes;
      case Target::Isp:
        return std::max<std::uint32_t>(1, simdBytes_ / ebytes);
    }
    return 1;
}

NativeInstruction
InstructionTransformer::transform(const VecInstruction &instr,
                                  Target target) const
{
    NativeInstruction out;
    out.target = target;
    out.nativeLanes = nativeLanes(target, instr.elemBits);
    out.subOps = (instr.lanes + out.nativeLanes - 1) / out.nativeLanes;
    switch (target) {
      case Target::Isp:
        out.mnemonic = mveMnemonic(instr.op);
        break;
      case Target::Pud:
        out.mnemonic = bbopMnemonic(instr.op);
        break;
      case Target::Ifp:
        out.mnemonic = ifpMnemonic(instr.op);
        break;
    }
    return out;
}

} // namespace conduit
