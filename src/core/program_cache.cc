#include "src/core/program_cache.hh"

namespace conduit
{

std::shared_ptr<const VectorizedProgram>
ProgramCache::get(WorkloadId id, const WorkloadParams &params,
                  const SsdConfig &cfg)
{
    const Key key{static_cast<int>(id), params.scale, cfg.vectorLanes,
                  cfg.nand.pageBytes};

    std::promise<std::shared_ptr<const VectorizedProgram>> promise;
    std::shared_future<std::shared_ptr<const VectorizedProgram>> fut;
    bool compile_here = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            compile_here = true;
        } else {
            fut = it->second;
        }
    }

    if (compile_here) {
        // Compile outside the lock; racers on the same key block on
        // the shared future instead of recompiling.
        try {
            VectorizeOptions vo;
            vo.vectorLanes = cfg.vectorLanes;
            vo.pageBytes = cfg.nand.pageBytes;
            const Vectorizer vectorizer(vo);
            promise.set_value(
                std::make_shared<const VectorizedProgram>(
                    vectorizer.run(buildWorkload(id, params))));
        } catch (...) {
            // Hand waiters the real error and drop the entry so a
            // later call can retry instead of seeing broken_promise.
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mu_);
            cache_.erase(key);
        }
    }
    return fut.get();
}

std::size_t
ProgramCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

} // namespace conduit
