/**
 * @file
 * Engine run options and per-run results.
 *
 * Split out of engine.hh so the scheduler subsystem (src/sched/) can
 * describe per-stream execution state without depending on the full
 * Engine definition: an ExecContext owns a RunResult, and the Engine
 * owns ExecContexts.
 */

#ifndef CONDUIT_CORE_RUN_RESULT_HH
#define CONDUIT_CORE_RUN_RESULT_HH

#include <array>
#include <cstdint>
#include <string>

#include "src/offload/policy.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Engine run options (device-wide; shared by all co-run streams). */
struct EngineOptions
{
    /** Probability of a transient fault per executed instruction. */
    double transientFaultRate = 0.0;

    /** Detection timeout charged when a transient fault hits. */
    Tick faultTimeout = usToTicks(50);

    /** Coherence version-counter flush threshold (§4.4). */
    std::uint8_t versionFlushThreshold = 255;

    /**
     * Per-die page-buffer latch capacity in pages: planes x the
     * S/D/cache latch planes Ares-Flash exposes per plane. Results
     * beyond this spill to the array via SLC programming.
     */
    std::uint32_t latchPagesPerDie = 16;

    /** Drain dirty result pages to the host when the run ends. */
    bool drainResults = true;

    /**
     * SSD-DRAM staging capacity as a fraction of the workload
     * footprint. The default is effectively unbounded (the SSD DRAM
     * data region holds gigabytes, far beyond the scaled working
     * sets simulated here); lowering it forces capacity-driven
     * writebacks for the DRAM-pressure ablation.
     */
    double dramStagingFraction = 4.0;

    /**
     * Mapping-cache coverage as a fraction of the footprint's L2P
     * entries (demand-based DFTL cache, §5.1).
     */
    double mappingCacheFraction = 1.0;
};

/** Everything a run (one instruction stream) produces. */
struct RunResult
{
    std::string workload;
    std::string policy;

    Tick execTime = 0;
    std::uint64_t instrCount = 0;
    std::array<std::uint64_t, kNumTargets> perResource{};

    /** Per-instruction latency (dispatch to completion), in us. */
    Histogram latencyUs;

    double dmEnergyJ = 0.0;
    double computeEnergyJ = 0.0;
    double energyJ() const { return dmEnergyJ + computeEnergyJ; }

    /** @name Attributed busy time (Fig. 4 breakdown inputs) @{ */
    Tick computeBusy = 0;
    Tick internalDmBusy = 0;
    Tick flashReadBusy = 0;
    Tick hostDmBusy = 0;
    Tick offloaderBusy = 0;
    /** @} */

    std::uint64_t faultsInjected = 0;
    std::uint64_t replays = 0;
    std::uint64_t coherenceCommits = 0;
    std::uint64_t latchEvictions = 0;

    /**
     * Events the kernel fired for this run. Only single-stream
     * engine runs report it here (multi-stream runs report the
     * device-wide count on MultiRunResult / DeviceSnapshot); host
     * baselines have no event kernel and leave it 0. Simulator
     * self-perf metadata — never part of the simulated results.
     */
    std::uint64_t eventsFired = 0;
};

} // namespace conduit

#endif // CONDUIT_CORE_RUN_RESULT_HH
