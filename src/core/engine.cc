#include "src/core/engine.hh"

#include <algorithm>
#include <stdexcept>

#include "src/sim/event_queue.hh"
#include "src/trace/trace.hh"

namespace conduit
{

Engine::Engine(const SsdConfig &cfg)
    : cfg_(cfg), nand_(cfg.nand, &stats_), ftl_(nand_, cfg, &stats_),
      dram_(cfg.dram, &stats_), pud_(dram_, cfg.compute, &stats_),
      isp_(cfg.isp, cfg.compute, &stats_),
      ifp_(nand_, cfg.compute, &stats_),
      transformer_(cfg.nand.pageBytes, cfg.dram.rowBytes,
                   cfg.isp.simdBytes),
      rng_(cfg.seed)
{
    if (cfg_.reliability.enabled) {
        rel_ = std::make_unique<reliability::ReliabilityModel>(
            cfg_.nand, cfg_.reliability, cfg_.seed, &stats_);
        nand_.setReliability(rel_.get());
        ftl_.setReliability(rel_.get());
    }
}

void
Engine::prepare(std::uint64_t total_pages, const EngineOptions &opts)
{
    opts_ = opts;
    if (total_pages > ftl_.logicalPages()) {
        throw std::invalid_argument(
            "Engine: program footprint exceeds SSD logical capacity; "
            "scale the workload or the device");
    }
    ftl_.preload(total_pages);
    ftl_.setMappingCacheCapacity(static_cast<std::uint64_t>(
        static_cast<double>(total_pages) *
        opts.mappingCacheFraction));
    pageMeta_.assign(total_pages, PageMeta{});
    latchFifo_.assign(nand_.numDies(), {});
    dramCapacityPages_ = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(
                static_cast<double>(total_pages) *
                opts.dramStagingFraction));
    dramLru_.reset(total_pages);
}

void
Engine::dramTouch(Lpn page, Tick now)
{
    if (dramLru_.touch(page))
        return;
    while (dramLru_.size() > dramCapacityPages_) {
        // Random-ish victim selection (CLOCK approximation): pure
        // LRU degenerates on the cyclic sweeps of stencil kernels,
        // evicting every page just before its reuse.
        FlatLru::Node vit = dramLru_.tail();
        const std::uint64_t skip =
            rng_.below(std::max<std::uint64_t>(1, dramLru_.size() / 2));
        for (std::uint64_t i = 0;
             i < skip && vit != dramLru_.head(); ++i) {
            vit = dramLru_.prev(vit);
        }
        const Lpn victim = dramLru_.keyOf(vit);
        if (victim == page)
            break;
        dramLru_.erase(vit);
        if (victim >= pageMeta_.size())
            continue;
        PageMeta &vm = pageMeta_[victim];
        if (vm.loc == Loc::Dram && vm.dirty) {
            // Background writeback (coherence trigger iii). The
            // victim may belong to another stream; the stream whose
            // allocation forced the eviction pays the writeback,
            // matching how a real device charges the triggering I/O.
            commitPage(victim, now);
        } else {
            vm.dramCached = false;
        }
    }
}

std::vector<IfpFragment>
Engine::fragmentsFor(const VecInstruction &instr)
{
    // Compute fragments follow the first operand's physical layout;
    // the extended FTL page-allocation policy (§4.4) co-locates the
    // other operands' corresponding pages in the same block.
    const Operand &lead = instr.srcs.empty() ? instr.dst
                                             : instr.srcs.front();
    const Lpn base = streamBase();
    std::vector<IfpFragment> frags;
    const std::uint64_t vec_bytes =
        static_cast<std::uint64_t>(instr.lanes) * instr.elemBits / 8;
    const std::uint64_t per_page =
        std::min<std::uint64_t>(vec_bytes, cfg_.nand.pageBytes);
    for (std::uint64_t p = base + lead.basePage;
         p < base + lead.basePage + lead.pageCount; ++p) {
        const Ppn ppn = ftl_.physicalOf(p);
        const std::uint32_t die = nand_.dieOf(ppn);
        bool merged = false;
        for (auto &f : frags) {
            if (f.dieIndex == die) {
                f.bytes += per_page;
                merged = true;
                break;
            }
        }
        if (!merged)
            frags.push_back({die, per_page});
    }
    if (frags.empty())
        frags.push_back({0, per_page});
    return frags;
}

std::uint32_t
Engine::sensedOperands(const VecInstruction &instr) const
{
    // Operands whose freshest copy already sits in the page-buffer
    // latches (a previous IFP result) fold into the next in-flash
    // operation without re-sensing the array (ParaBit-style
    // latch-combining applies to MWS results as well).
    const Lpn base = streamBase();
    const Lpn limit = streamEnd();
    std::uint32_t sensed = 0;
    for (const auto &src : instr.srcs) {
        bool latch_resident = src.pageCount > 0;
        for (Lpn p = base + src.basePage;
             p < base + src.basePage + src.pageCount; ++p) {
            if (p >= limit || pageMeta_[p].loc != Loc::Latch) {
                latch_resident = false;
                break;
            }
        }
        if (!latch_resident)
            ++sensed;
    }
    return sensed;
}

Tick
Engine::dmEstimate(const VecInstruction &instr, Target t,
                   std::uint64_t &bytes, Tick aging_read) const
{
    const NandConfig &n = cfg_.nand;
    const Tick page_xfer =
        n.dmaTicks + transferTicks(n.pageBytes, n.channelBytesPerSec);
    const Tick flash_stage =
        n.cmdTicks + n.readTicks + aging_read + page_xfer;
    const Tick dram_page =
        transferTicks(n.pageBytes, cfg_.dram.busBytesPerSec) +
        cfg_.dram.tRcd + cfg_.dram.tCas;

    std::uint64_t pages_moving = 0;
    Tick per_page = 0;
    bytes = 0;

    auto classify = [&](Lpn page) {
        const PageMeta &m = pageMeta_[page];
        switch (t) {
          case Target::Ifp:
            if (m.loc == Loc::Dram && m.dirty) {
                // Load the fresh copy into the die latches over the
                // channel (latch-operand computation).
                pages_moving++;
                per_page = std::max(per_page, page_xfer);
                bytes += n.pageBytes;
            }
            break;
          case Target::Pud:
            if (m.loc == Loc::Flash && !m.dramCached) {
                pages_moving++;
                per_page = std::max(per_page, flash_stage + dram_page);
                bytes += n.pageBytes;
            } else if (m.loc == Loc::Latch) {
                pages_moving++;
                per_page = std::max(per_page, page_xfer + dram_page);
                bytes += n.pageBytes;
            }
            break;
          case Target::Isp:
            if (m.loc == Loc::Dram || m.dramCached) {
                pages_moving++;
                per_page = std::max(per_page, dram_page);
                bytes += n.pageBytes;
            } else if (m.loc == Loc::Latch) {
                pages_moving++;
                per_page = std::max(per_page, page_xfer);
                bytes += n.pageBytes;
            } else {
                pages_moving++;
                per_page = std::max(per_page, flash_stage);
                bytes += n.pageBytes;
            }
        }
    };

    const Lpn base = streamBase();
    const Lpn limit = streamEnd();
    for (const auto &s : instr.srcs) {
        for (Lpn p = base + s.basePage;
             p < base + s.basePage + s.pageCount; ++p) {
            if (p < limit)
                classify(p);
        }
    }

    if (pages_moving == 0)
        return 0;
    // Transfers stripe over channels (the precomputed no-contention
    // table of §4.3.2 assumes ideal parallelism).
    const std::uint64_t waves =
        (pages_moving + n.channels - 1) / n.channels;
    return static_cast<Tick>(waves) * per_page;
}

CostFeatures
Engine::features(const VecInstruction &instr, Tick now)
{
    CostFeatures f;

    f.supported[static_cast<std::size_t>(Target::Isp)] = true;
    f.supported[static_cast<std::size_t>(Target::Pud)] =
        pudSupports(instr.op);
    f.supported[static_cast<std::size_t>(Target::Ifp)] =
        ifpSupports(instr.op);

    // (6) Expected computation latency.
    const auto frags = fragmentsFor(instr);
    std::uint64_t bytes_per_die = 0;
    for (const auto &fr : frags)
        bytes_per_die = std::max(bytes_per_die, fr.bytes);
    f.comp[static_cast<std::size_t>(Target::Isp)] = isp_.estimate(
        instr.op, instr.elemBits, instr.lanes,
        static_cast<std::uint32_t>(instr.srcs.size()),
        instr.vectorized);
    f.comp[static_cast<std::size_t>(Target::Pud)] =
        pud_.estimate(instr.op, instr.elemBits, instr.lanes);
    f.comp[static_cast<std::size_t>(Target::Ifp)] = ifp_.estimate(
        instr.op, instr.elemBits,
        static_cast<std::uint32_t>(instr.srcs.size()),
        sensedOperands(instr), bytes_per_die);

    // (5) Data movement latency (static, no-contention table). With
    // reliability enabled the flash-read stage carries the expected
    // ECC penalty at the device's current age, so offload decisions
    // shift as the device wears. (IFP computes on raw latched bits
    // without the inline ECC pipeline, so its in-place operands pay
    // no decode penalty — a fidelity note documented in README.)
    const Tick aging_read =
        rel_ ? rel_->typicalReadPenalty(now) : 0;
    for (Target t : {Target::Isp, Target::Pud, Target::Ifp}) {
        const auto i = static_cast<std::size_t>(t);
        f.dm[i] = dmEstimate(instr, t, f.dmBytes[i], aging_read);
    }

    // (4) Resource queueing delay: live reads of the shared
    // calendars, so co-run streams see each other's backlog.
    f.queue[static_cast<std::size_t>(Target::Isp)] = isp_.backlog(now);
    f.queue[static_cast<std::size_t>(Target::Pud)] =
        dram_.bankBacklog(now);
    Tick die_backlog = 0;
    for (const auto &fr : frags)
        die_backlog =
            std::max(die_backlog, nand_.dieBacklog(fr.dieIndex, now));
    f.queue[static_cast<std::size_t>(Target::Ifp)] = die_backlog;

    // (3) Data dependence delay (within the dispatching stream).
    Tick dep_ready = 0;
    if (ctx_) {
        for (InstrId d : instr.deps) {
            if (d < ctx_->completion.size())
                dep_ready = std::max(dep_ready, ctx_->completion[d]);
        }
    }
    f.depDelay = dep_ready > now ? dep_ready - now : 0;

    // Bandwidth utilization (BW-Offloading's sole input): pending
    // work over a short window approximates the utilization samples
    // a TOM-style monitor would read.
    const double window = static_cast<double>(usToTicks(200));
    f.bwUtil[static_cast<std::size_t>(Target::Isp)] =
        static_cast<double>(isp_.backlog(now)) / window;
    f.bwUtil[static_cast<std::size_t>(Target::Pud)] =
        static_cast<double>(dram_.bankBacklog(now)) / window;
    f.bwUtil[static_cast<std::size_t>(Target::Ifp)] =
        static_cast<double>(nand_.minDieBacklog(now)) / window;

    return f;
}

Tick
Engine::offloadOverhead(const VecInstruction &instr, Tick now)
{
    // §4.5 feature-collection + transformation accounting. Operand
    // location comes from real L2P lookups (so DFTL misses produce
    // the up-to-33us outliers the paper reports).
    const OverheadConfig &o = cfg_.overhead;
    const Lpn base = streamBase();
    Tick t = 0;
    for (const auto &s : instr.srcs) {
        auto lk = ftl_.translate(base + s.basePage, now);
        t += lk.latency;
    }
    if (!instr.deps.empty())
        t += o.depTrackPerQueue;
    t += o.queueTrackPerResource;
    t += o.dmTableLookup + o.compTableLookup + o.translationLookup;
    return t;
}

Tick
Engine::commitPage(Lpn page, Tick earliest)
{
    PageMeta &m = pageMeta_[page];
    Tick ready = earliest;
    if (m.loc == Loc::Dram) {
        // DRAM -> controller -> channel -> program.
        const Ppn ppn = ftl_.physicalOf(page);
        const std::uint32_t ch = nand_.decode(ppn).channel;
        auto x = nand_.transferIn(ch, cfg_.nand.pageBytes, earliest);
        ctx_->result.internalDmBusy += x.end - x.start;
        ctx_->energy.dma(1);
        ctx_->energy.channelTransfer(cfg_.nand.pageBytes);
        ready = x.end;
    } else if (m.loc == Loc::Latch) {
        // Latch contents program directly from the page buffer.
        ready = earliest;
    }
    auto wr = ftl_.writePage(page, ready);
    ctx_->result.internalDmBusy += wr.readyAt - ready;
    ctx_->energy.flashProgram(1);
    ++ctx_->result.coherenceCommits;
    m.loc = Loc::Flash;
    m.dirty = false;
    m.version = 0;
    m.dramCached = false;
    return wr.readyAt;
}

void
Engine::recordWrite(Lpn page, Target target, std::uint32_t die,
                    Tick when)
{
    if (page >= streamEnd())
        return;
    PageMeta &m = pageMeta_[page];
    if (m.version >= opts_.versionFlushThreshold) {
        // Flush before the one-byte counter wraps (§4.4).
        commitPage(page, when);
    }
    ++m.version;
    m.dirty = true;
    switch (target) {
      case Target::Isp:
      case Target::Pud:
        m.loc = Loc::Dram;
        m.dramCached = true;
        dramTouch(page, when);
        break;
      case Target::Ifp: {
        m.loc = Loc::Latch;
        // The page's latch lives on the die holding its physical
        // page, spreading latch pressure with the striped layout.
        const Ppn ppn = ftl_.physicalOf(page);
        m.latchDie = die == kAutoDie ? nand_.dieOf(ppn) : die;
        m.dramCached = false;
        auto &fifo = latchFifo_[m.latchDie];
        // Refresh on rewrite: one latch slot per resident page.
        auto it = std::find(fifo.begin(), fifo.end(), page);
        if (it != fifo.end())
            fifo.erase(it);
        fifo.push_back(page);
        while (fifo.size() > opts_.latchPagesPerDie) {
            const Lpn victim = fifo.front();
            fifo.pop_front();
            if (victim < pageMeta_.size() &&
                pageMeta_[victim].loc == Loc::Latch &&
                pageMeta_[victim].dirty) {
                commitPage(victim, when);
                ++ctx_->result.latchEvictions;
            }
        }
        break;
      }
    }
}

Engine::MoveResult
Engine::moveForIsp(const VecInstruction &instr, Tick earliest)
{
    MoveResult r;
    r.readyAt = earliest;
    const NandConfig &n = cfg_.nand;
    const Lpn base = streamBase();
    const Lpn limit = streamEnd();
    for (const auto &s : instr.srcs) {
        for (Lpn p = base + s.basePage;
             p < base + s.basePage + s.pageCount; ++p) {
            if (p >= limit)
                continue;
            PageMeta &m = pageMeta_[p];
            Tick end = earliest;
            if (m.loc == Loc::Dram || m.dramCached) {
                // DRAM-resident operands stream directly through the
                // core's load path; the IspCore streaming bound
                // already covers this traffic, so only energy (not
                // extra bus serialization) is charged here.
                ctx_->energy.dramTransfer(n.pageBytes);
                dramTouch(p, earliest);
            } else if (m.loc == Loc::Latch) {
                const std::uint32_t ch =
                    m.latchDie / n.diesPerChannel;
                auto iv = nand_.transferOut(ch, n.pageBytes, earliest);
                ctx_->energy.dma(1);
                ctx_->energy.channelTransfer(n.pageBytes);
                ctx_->result.internalDmBusy += iv.end - iv.start;
                end = iv.end;
            } else {
                const Ppn ppn = ftl_.physicalOf(p);
                const FlashAddress a = nand_.decode(ppn);
                auto rd = nand_.readPage(a, earliest);
                auto iv =
                    nand_.transferOut(a.channel, n.pageBytes, rd.end);
                ctx_->energy.flashRead(1);
                ctx_->energy.dma(1);
                ctx_->energy.channelTransfer(n.pageBytes);
                ctx_->result.flashReadBusy += rd.end - rd.start;
                ctx_->result.internalDmBusy += iv.end - iv.start;
                m.dramCached = true; // staged via the DRAM buffer
                dramTouch(p, earliest);
                end = iv.end;
            }
            r.bytesMoved += n.pageBytes;
            r.readyAt = std::max(r.readyAt, end);
        }
    }
    return r;
}

Engine::MoveResult
Engine::moveForPud(const VecInstruction &instr, Tick earliest)
{
    MoveResult r;
    r.readyAt = earliest;
    const NandConfig &n = cfg_.nand;
    const Lpn base = streamBase();
    const Lpn limit = streamEnd();
    for (const auto &s : instr.srcs) {
        for (Lpn p = base + s.basePage;
             p < base + s.basePage + s.pageCount; ++p) {
            if (p >= limit)
                continue;
            PageMeta &m = pageMeta_[p];
            if (m.loc == Loc::Dram || m.dramCached) {
                dramTouch(p, earliest);
                continue; // already resident
            }
            Tick end = earliest;
            if (m.loc == Loc::Latch) {
                const std::uint32_t ch =
                    m.latchDie / n.diesPerChannel;
                auto x = nand_.transferOut(ch, n.pageBytes, earliest);
                auto w = dram_.access(static_cast<std::uint32_t>(p),
                                      n.pageBytes, x.end);
                ctx_->energy.dma(1);
                ctx_->energy.channelTransfer(n.pageBytes);
                ctx_->energy.dramTransfer(n.pageBytes);
                ctx_->result.internalDmBusy +=
                    (x.end - x.start) + (w.end - w.start);
                m.loc = Loc::Dram; // the fresh copy moves to DRAM
                dramTouch(p, earliest);
                end = w.end;
            } else {
                const Ppn ppn = ftl_.physicalOf(p);
                const FlashAddress a = nand_.decode(ppn);
                auto rd = nand_.readPage(a, earliest);
                auto x = nand_.transferOut(a.channel, n.pageBytes,
                                           rd.end);
                auto w = dram_.access(static_cast<std::uint32_t>(p),
                                      n.pageBytes, x.end);
                ctx_->energy.flashRead(1);
                ctx_->energy.dma(1);
                ctx_->energy.channelTransfer(n.pageBytes);
                ctx_->energy.dramTransfer(n.pageBytes);
                ctx_->result.flashReadBusy += rd.end - rd.start;
                ctx_->result.internalDmBusy +=
                    (x.end - x.start) + (w.end - w.start);
                m.dramCached = true;
                dramTouch(p, earliest);
                end = w.end;
            }
            r.bytesMoved += n.pageBytes;
            r.readyAt = std::max(r.readyAt, end);
        }
    }
    return r;
}

Engine::MoveResult
Engine::moveForIfp(const VecInstruction &instr, Tick earliest)
{
    MoveResult r;
    r.readyAt = earliest;
    const NandConfig &n = cfg_.nand;
    const Lpn base = streamBase();
    const Lpn limit = streamEnd();
    for (const auto &s : instr.srcs) {
        for (Lpn p = base + s.basePage;
             p < base + s.basePage + s.pageCount; ++p) {
            if (p >= limit)
                continue;
            PageMeta &m = pageMeta_[p];
            if (m.loc == Loc::Dram) {
                if (m.dirty) {
                    // Latch-class op: load the fresh copy into the
                    // owning die's page-buffer latch over the channel
                    // (latch-operand computation, Ares-Flash style) —
                    // far cheaper than programming the array.
                    const Ppn ppn = ftl_.physicalOf(p);
                    const FlashAddress a = nand_.decode(ppn);
                    auto x = nand_.transferIn(a.channel, n.pageBytes,
                                              earliest);
                    ctx_->energy.dma(1);
                    ctx_->energy.channelTransfer(n.pageBytes);
                    ctx_->result.internalDmBusy += x.end - x.start;
                    m.loc = Loc::Latch;
                    m.latchDie = nand_.dieIndex(a);
                    m.dramCached = false;
                    r.bytesMoved += n.pageBytes;
                    r.readyAt = std::max(r.readyAt, x.end);
                } else {
                    m.loc = Loc::Flash; // array copy is valid
                }
            }
            // Loc::Flash (and, for latch-class ops, Loc::Latch) is
            // usable in place: the extended FTL layout keeps
            // operands co-located (§4.4).
        }
    }
    return r;
}

Tick
Engine::executeOn(const VecInstruction &instr, Target target,
                  Tick earliest)
{
    const auto ti = static_cast<std::size_t>(target);
    RunResult &res = ctx_->result;
    EnergyModel &energy = ctx_->energy;
    ++res.perResource[ti];
    const Lpn base = streamBase();

    if (ctx_->ideal) {
        // No contention, zero movement, table-latency compute; the
        // per-resource aggregate capacity is enforced in run().
        Tick comp = 0;
        switch (target) {
          case Target::Isp:
            comp = isp_.estimate(
                instr.op, instr.elemBits, instr.lanes,
                static_cast<std::uint32_t>(instr.srcs.size()),
                instr.vectorized);
            energy.ispBusy(comp);
            break;
          case Target::Pud:
            comp = pud_.estimate(instr.op, instr.elemBits, instr.lanes);
            energy.pudOp(pud_.rowsFor(instr.elemBits, instr.lanes) *
                         pud_.bbopCount(instr.op, instr.elemBits));
            break;
          case Target::Ifp: {
            const auto frags = fragmentsFor(instr);
            std::uint64_t per_die = 0;
            for (const auto &fr : frags)
                per_die = std::max(per_die, fr.bytes);
            comp = ifp_.estimate(
                instr.op, instr.elemBits,
                static_cast<std::uint32_t>(instr.srcs.size()),
                sensedOperands(instr), per_die);
            energy.ifpOp(instr.op, instr.srcBytes());
            break;
          }
        }
        res.computeBusy += comp;
        ctx_->idealBusy[ti] += comp;
        // Track result location (only) so operand-reuse effects such
        // as latch-resident IFP operands shape Ideal's choices.
        for (Lpn p = base + instr.dst.basePage;
             p < base + instr.dst.basePage + instr.dst.pageCount;
             ++p) {
            if (p >= streamEnd())
                continue;
            PageMeta &m = pageMeta_[p];
            m.loc = target == Target::Ifp ? Loc::Latch : Loc::Dram;
        }
        return earliest + comp;
    }

    Tick done = earliest;
    switch (target) {
      case Target::Isp: {
        auto mv = moveForIsp(instr, earliest);
        auto iv = isp_.execute(
            instr.op, instr.elemBits, instr.lanes,
            static_cast<std::uint32_t>(instr.srcs.size()),
            instr.vectorized, mv.readyAt);
        energy.ispBusy(iv.end - iv.start);
        res.computeBusy += iv.end - iv.start;
        // Result streams into SSD DRAM.
        if (instr.dstBytes() > 0) {
            auto w = dram_.access(
                static_cast<std::uint32_t>(base + instr.dst.basePage),
                instr.dstBytes(), iv.end);
            energy.dramTransfer(instr.dstBytes());
            res.internalDmBusy += w.end - w.start;
            done = w.end;
        } else {
            done = iv.end;
        }
        for (Lpn p = base + instr.dst.basePage;
             p < base + instr.dst.basePage + instr.dst.pageCount; ++p)
            recordWrite(p, Target::Isp, 0, done);
        break;
      }
      case Target::Pud: {
        auto mv = moveForPud(instr, earliest);
        auto iv = pud_.execute(
            instr.op, instr.elemBits, instr.lanes,
            static_cast<std::uint32_t>(base + instr.dst.basePage),
            mv.readyAt);
        energy.pudOp(pud_.rowsFor(instr.elemBits, instr.lanes) *
                     pud_.bbopCount(instr.op, instr.elemBits));
        res.computeBusy += iv.end - iv.start;
        done = iv.end;
        for (Lpn p = base + instr.dst.basePage;
             p < base + instr.dst.basePage + instr.dst.pageCount; ++p)
            recordWrite(p, Target::Pud, 0, done);
        break;
      }
      case Target::Ifp: {
        const std::uint32_t sensed = sensedOperands(instr);
        auto mv = moveForIfp(instr, earliest);
        const auto frags = fragmentsFor(instr);
        auto iv = ifp_.execute(
            instr.op, instr.elemBits,
            static_cast<std::uint32_t>(instr.srcs.size()), sensed,
            frags, mv.readyAt);
        // Sensing energy: MWS activates the operand wordlines.
        std::uint64_t sensings = 0;
        if (sensed > 0) {
            switch (instr.op) {
              case OpCode::And:
              case OpCode::Nand:
                sensings = 1;
                break;
              case OpCode::Or:
              case OpCode::Nor:
                sensings = (sensed + cfg_.nand.maxOrOperands - 1) /
                    cfg_.nand.maxOrOperands;
                break;
              default:
                sensings = sensed;
                break;
            }
        }
        energy.ifpSense(sensings * frags.size());
        energy.ifpOp(instr.op, instr.srcBytes());
        res.computeBusy += iv.end - iv.start;
        done = iv.end;
        for (Lpn p = base + instr.dst.basePage;
             p < base + instr.dst.basePage + instr.dst.pageCount; ++p)
            recordWrite(p, Target::Ifp, kAutoDie, done);
        break;
      }
    }
    return done;
}

sched::DispatchOutcome
Engine::dispatchNext(sched::ExecContext &ctx, Tick event_now)
{
    ctx_ = &ctx;
    // Background scrub rides on foreground dispatch activity. Ideal
    // streams stay the unrealizable bound: they never trigger aging
    // maintenance (and bypass the media model entirely).
    if (rel_ && !ctx.ideal)
        maybeScheduleScrub(event_now);
    const VecInstruction &instr = ctx.prog->instrs[ctx.pc];
    ++ctx.pc;
    RunResult &result = ctx.result;

    // Offloader pipeline stage: the decision core issues one
    // instruction per issue interval, while the full feature-
    // collection latency (§4.5, ~3.77us average) is added to the
    // instruction's dispatch latency (lookups overlap). The
    // offloader is shared: co-run streams' dispatch events contend
    // for issue slots FCFS. The event tick floors the acquisition:
    // a stream whose arrival event fires at T starts no earlier
    // than T even if the offloader sat idle before it (for tick-0
    // batch runs the floor is a no-op — a chain's dispatch never
    // fires after the calendar's free point).
    Tick disp_start;
    Tick now;
    Tick next_dispatch = 0;
    if (ctx.ideal) {
        disp_start = ctx.arrival;
        now = ctx.arrival;
    } else {
        const Tick ovh = offloadOverhead(
            instr, std::max(event_now, offloader_.freeAt()));
        auto disp = offloader_.acquire(event_now,
                                       cfg_.overhead.issueTicks);
        result.offloaderBusy += ovh;
        disp_start = disp.start;
        now = disp.start + ovh;
        next_dispatch = disp.end;
    }

    CostFeatures f = features(instr, now);
    const Target target = ctx.policy->select(instr, f);
    (void)transformer_.transform(instr, target);

    // Operand availability (RAW) gates execution start.
    Tick dep_ready = now;
    for (InstrId d : instr.deps) {
        if (d < ctx.completion.size())
            dep_ready = std::max(dep_ready, ctx.completion[d]);
    }

    Tick done = executeOn(instr, target, dep_ready);

    // Transient-fault injection: detection timeout, then replay
    // on the general-purpose core with the latest data (§4.4).
    if (opts_.transientFaultRate > 0.0 &&
        rng_.chance(opts_.transientFaultRate)) {
        ++result.faultsInjected;
        const Tick retry_at = done + opts_.faultTimeout;
        const Target alt =
            target == Target::Isp ? Target::Pud : Target::Isp;
        const Target replay_target =
            (alt == Target::Pud && !pudSupports(instr.op))
                ? Target::Isp
                : alt;
        done = executeOn(instr, replay_target, retry_at);
        ++result.replays;
    }

    ctx.completion[instr.id] = done;
    // Request latency: from the instruction becoming ready
    // (dispatched and operands available) to completion — the
    // per-request latency Fig. 8 reports tails over.
    const Tick ready = std::max(disp_start, dep_ready);
    result.latencyUs.add(ticksToUs(done > ready ? done - ready : 0));

    if (tracer_) {
        if (tracer_->wants(trace::Category::Occupancy)) {
            trace::Event e;
            e.cat = trace::Category::Occupancy;
            e.kind = trace::EventKind::Instr;
            e.device = traceDevice_;
            e.start = ready;
            e.end = done;
            e.a = instr.id;
            e.b = static_cast<std::uint64_t>(instr.op);
            e.c = static_cast<std::uint64_t>(target);
            if (target == Target::Ifp)
                e.lane = fragmentsFor(instr).front().dieIndex;
            e.str = tracer_->intern(ctx.name);
            tracer_->record(e);
        }
        maybeSampleBacklog(done);
    }

    ctx_ = nullptr;
    return {next_dispatch, done};
}

Tick
Engine::drainStream(sched::ExecContext &ctx, Tick after)
{
    ctx_ = &ctx;
    const NandConfig &n = cfg_.nand;
    Tick end = after;
    std::uint64_t pages = 0;
    for (Lpn p = ctx.base; p < ctx.base + ctx.pages; ++p) {
        PageMeta &m = pageMeta_[p];
        if (!m.dirty)
            continue;
        Tick src_ready = after;
        if (m.loc == Loc::Latch) {
            const std::uint32_t ch = m.latchDie / n.diesPerChannel;
            auto x = nand_.transferOut(ch, n.pageBytes, after);
            ctx.energy.dma(1);
            ctx.energy.channelTransfer(n.pageBytes);
            src_ready = x.end;
        }
        auto iv = pcie_.acquire(
            src_ready,
            transferTicks(n.pageBytes, cfg_.host.pcieBytesPerSec));
        ctx.energy.dramTransfer(n.pageBytes);
        ctx.result.hostDmBusy += iv.end - iv.start;
        end = std::max(end, iv.end);
        m.dirty = false;
        ++pages;
    }
    if (tracer_ && pages > 0 &&
        tracer_->wants(trace::Category::Occupancy)) {
        trace::Event e;
        e.cat = trace::Category::Occupancy;
        e.kind = trace::EventKind::HostDrain;
        e.device = traceDevice_;
        e.start = after;
        e.end = end;
        e.a = pages;
        e.str = tracer_->intern(ctx.name);
        tracer_->record(e);
    }
    stats_.counter("engine.drained_pages").inc(pages);
    ctx_ = nullptr;
    return end;
}

RunResult
Engine::run(const Program &prog, OffloadPolicy &policy,
            const EngineOptions &opts)
{
    // Non-owning aliases: the single-stream entry point borrows the
    // caller's program and policy for the duration of the run.
    std::vector<sched::StreamSpec> streams(1);
    streams[0].program = std::shared_ptr<const Program>(
        std::shared_ptr<const void>(), &prog);
    streams[0].policy = std::shared_ptr<OffloadPolicy>(
        std::shared_ptr<void>(), &policy);
    sched::MultiRunResult mr = run(std::move(streams), opts);
    mr.streams.front().eventsFired = mr.eventsFired;
    return std::move(mr.streams.front());
}

void
Engine::sessionBegin(std::uint64_t capacity_pages,
                     const EngineOptions &opts)
{
    ctx_ = nullptr;
    streamCtxs_.clear();
    prepare(capacity_pages, opts);
    queue_ = std::make_unique<EventQueue>();
    scheduler_ = std::make_unique<sched::StreamScheduler>(*this, *queue_);
    nextScrubAt_ = cfg_.reliability.scrubIntervalTicks;
    scrubCursor_ = 0;
    scrubScheduled_ = false;
}

void
Engine::maybeSampleBacklog(Tick now)
{
    if (!tracer_->wants(trace::Category::Queue) ||
        now < nextTraceSampleAt_)
        return;
    const Tick step = std::max<Tick>(1, tracer_->sampleInterval());
    while (nextTraceSampleAt_ <= now)
        nextTraceSampleAt_ += step;
    Tick die_backlog = 0;
    for (std::uint32_t d = 0; d < nand_.numDies(); ++d)
        die_backlog = std::max(die_backlog, nand_.dieBacklog(d, now));
    trace::Event e;
    e.cat = trace::Category::Queue;
    e.kind = trace::EventKind::BacklogSample;
    e.device = traceDevice_;
    e.lane = static_cast<std::uint32_t>(busyDieFraction(now) * 1e6);
    e.start = now;
    e.end = now;
    e.a = isp_.backlog(now);
    e.b = dram_.bankBacklog(now);
    e.c = die_backlog;
    tracer_->record(e);
}

double
Engine::busyDieFraction(Tick now) const
{
    const std::uint32_t dies = nand_.numDies();
    if (dies == 0)
        return 0.0;
    std::uint32_t busy = 0;
    for (std::uint32_t d = 0; d < dies; ++d)
        if (nand_.dieBacklog(d, now) > 0)
            ++busy;
    return static_cast<double>(busy) / static_cast<double>(dies);
}

void
Engine::maybeScheduleScrub(Tick now)
{
    if (scrubScheduled_ || cfg_.reliability.scrubIntervalTicks == 0)
        return;
    // Catch up without bursting: an idle gap longer than the
    // interval yields one pass, not a backlog of them.
    while (nextScrubAt_ < now)
        nextScrubAt_ += cfg_.reliability.scrubIntervalTicks;
    scrubScheduled_ = true;
    queue_->schedule(
        nextScrubAt_, [this] { runScrubPass(); }, kScrubPriority);
}

void
Engine::runScrubPass()
{
    scrubScheduled_ = false;
    nextScrubAt_ += cfg_.reliability.scrubIntervalTicks;
    const Tick now = queue_->now();
    rel_->notePass();
    const std::uint64_t total = ftl_.totalBlocks();
    const std::uint64_t window = std::min<std::uint64_t>(
        cfg_.reliability.scrubBlocksPerPass, total);
    std::uint32_t refreshed = 0;
    for (std::uint64_t i = 0; i < window; ++i) {
        const std::uint64_t bi = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % total;
        if (!rel_->scrubDue(bi, now))
            continue;
        if (ftl_.scrubBlock(bi, now)) {
            // A block that retired during the scrub collection left
            // the pool rather than being refreshed — it counts
            // against the pass's migration budget but not as a
            // refresh in the reported counters.
            if (!rel_->retired(bi))
                rel_->noteRefresh();
            if (++refreshed >= cfg_.reliability.scrubMaxRefreshPerPass)
                break;
        }
    }
    // Wear-leveling rides the same pass budget: while the pool's
    // erase-count spread exceeds the gap, migrate the coldest full
    // block so its young erases rejoin the allocator's rotation.
    std::uint32_t migrations = 0;
    if (cfg_.reliability.wearLevelEnabled) {
        for (std::uint32_t m = 0;
             m < cfg_.reliability.wearLevelMaxPerPass; ++m) {
            const std::int64_t bi =
                ftl_.wearLevelCandidate(cfg_.reliability.wearLevelGap);
            if (bi < 0)
                break;
            if (!ftl_.scrubBlock(static_cast<std::uint64_t>(bi), now))
                break;
            rel_->noteLevelMigration();
            ++migrations;
        }
    }
    if (tracer_ && tracer_->wants(trace::Category::Reliability)) {
        trace::Event e;
        e.cat = trace::Category::Reliability;
        e.kind = trace::EventKind::Scrub;
        e.device = traceDevice_;
        e.start = now;
        e.end = now;
        e.a = refreshed;
        e.b = migrations;
        tracer_->record(e);
    }
    // No self-rescheduling: the next dispatch re-arms the task, so
    // the queue drains once foreground traffic stops.
}

sched::ExecContext &
Engine::sessionAttach(const sched::StreamSpec &spec,
                      std::uint64_t base_page, Tick arrival)
{
    if (!spec.program || !spec.policy)
        throw std::invalid_argument(
            "Engine: StreamSpec needs a program and a policy");
    if (base_page + spec.program->footprintPages > pageMeta_.size())
        throw std::invalid_argument(
            "Engine: stream region exceeds the session's prepared "
            "capacity");
    streamCtxs_.emplace_back(cfg_.energy);
    sched::ExecContext &ctx = streamCtxs_.back();
    ctx.name = spec.name.empty() ? spec.program->name : spec.name;
    ctx.prog = spec.program.get();
    ctx.policy = spec.policy.get();
    ctx.ideal = spec.policy->ideal();
    ctx.base = base_page;
    ctx.pages = spec.program->footprintPages;
    ctx.completion.assign(spec.program->instrs.size(), 0);
    ctx.result.workload = ctx.name;
    ctx.result.policy = spec.policy->name();
    scheduler_->add(ctx, arrival);
    return ctx;
}

Tick
Engine::sessionFinish(sched::ExecContext &ctx)
{
    Tick end = ctx.execEnd;
    if (ctx.ideal) {
        // "No resource contention" still cannot beat the aggregate
        // capacity of each resource class: one controller core, all
        // DRAM banks, all flash dies perfectly load-balanced.
        end = std::max(
            end, ctx.arrival +
                ctx.idealBusy[static_cast<std::size_t>(Target::Isp)]);
        end = std::max(
            end, ctx.arrival +
                ctx.idealBusy[static_cast<std::size_t>(Target::Pud)] /
                    dram_.numBanks());
        end = std::max(
            end, ctx.arrival +
                ctx.idealBusy[static_cast<std::size_t>(Target::Ifp)] /
                    nand_.numDies());
    } else if (opts_.drainResults) {
        end = drainStream(ctx, end);
    }
    ctx.result.instrCount = ctx.prog->instrs.size();
    ctx.result.execTime = end;
    ctx.result.dmEnergyJ = ctx.energy.dataMovementJ();
    ctx.result.computeEnergyJ = ctx.energy.computeJ();
    return end;
}

void
Engine::sessionReclaim(std::uint64_t base_page, std::uint64_t pages)
{
    const Lpn limit = std::min<std::uint64_t>(base_page + pages,
                                              pageMeta_.size());
    for (Lpn p = base_page; p < limit; ++p) {
        dramLru_.eraseKey(p);
        pageMeta_[p] = PageMeta{};
    }
    for (auto &fifo : latchFifo_) {
        fifo.erase(std::remove_if(fifo.begin(), fifo.end(),
                                  [&](Lpn p) {
                                      return p >= base_page &&
                                          p < limit;
                                  }),
                   fifo.end());
    }
}

sched::MultiRunResult
Engine::run(std::vector<sched::StreamSpec> streams,
            const EngineOptions &opts)
{
    if (streams.empty())
        throw std::invalid_argument("Engine: no streams to run");
    std::uint64_t total_pages = 0;
    for (const auto &s : streams) {
        if (!s.program || !s.policy)
            throw std::invalid_argument(
                "Engine: StreamSpec needs a program and a policy");
        total_pages += s.program->footprintPages;
    }

    // The batch run is one session: streams laid out in disjoint
    // page regions in spec order, all attached at tick 0. The
    // contexts are kept alive on the engine after the run so
    // post-run feature probes (features()) still see completion
    // state — matching the pre-scheduler engine, whose completion
    // vector persisted.
    sessionBegin(total_pages, opts);
    std::uint64_t base = 0;
    for (const auto &s : streams) {
        sessionAttach(s, base, 0);
        base += s.program->footprintPages;
    }
    queue_->run();

    sched::MultiRunResult mr;
    mr.eventsFired = queue_->eventsFired();
    for (auto &ctx : streamCtxs_) {
        const Tick end = sessionFinish(ctx);
        mr.makespan = std::max(mr.makespan, end);
        mr.streams.push_back(std::move(ctx.result));
    }

    mr.aggregate = aggregateResults(mr.streams);
    mr.aggregate.execTime = mr.makespan;
    // Leave the first stream active so external feature probes
    // address pages and dependence state exactly as that stream's
    // dispatches did (single-stream: the whole device). The program
    // and policy are borrowed from the caller and may die with this
    // call — null the borrows so nothing can dereference them later.
    for (auto &ctx : streamCtxs_) {
        ctx.prog = nullptr;
        ctx.policy = nullptr;
    }
    ctx_ = &streamCtxs_.front();
    return mr;
}

Engine::Image
Engine::captureImage() const
{
    if (!queue_)
        throw std::logic_error(
            "Engine::captureImage: no session open");
    if (!queue_->empty() || ctx_ != nullptr)
        throw std::logic_error(
            "Engine::captureImage: session not quiescent");

    Image img;
    img.opts = opts_;
    img.capacityPages = pageMeta_.size();
    img.ftl = ftl_.capture();
    img.nand = nand_.capture();
    img.dram = dram_.capture();
    img.isp = isp_.capture();
    if (rel_) {
        img.hasReliability = true;
        img.rel = rel_->capture();
    }
    img.stats = stats_;
    img.rng = rng_;
    img.offloader = offloader_;
    img.pcie = pcie_;
    img.pageMeta = pageMeta_;
    img.latchFifo = latchFifo_;
    img.dramCapacityPages = dramCapacityPages_;
    img.dramLru = dramLru_;
    img.nextScrubAt = nextScrubAt_;
    img.scrubCursor = scrubCursor_;
    img.queueNow = queue_->now();
    img.queueFired = queue_->eventsFired();
    return img;
}

void
Engine::restoreImage(const Image &img)
{
    if (img.hasReliability != (rel_ != nullptr))
        throw std::invalid_argument(
            "Engine::restoreImage: reliability enablement mismatch "
            "between the image and this engine's config");

    // Open a fresh session sized like the captured one. The FTL
    // preload inside prepare() performs only metadata writes (no
    // media or calendar operations), so every one of its side
    // effects is overwritten wholesale by the restores below.
    sessionBegin(img.capacityPages, img.opts);

    ftl_.restore(img.ftl);
    nand_.restore(img.nand);
    dram_.restore(img.dram);
    isp_.restore(img.isp);
    if (rel_)
        rel_->restore(img.rel);
    stats_.restoreFrom(img.stats);
    rng_ = img.rng;
    offloader_ = img.offloader;
    pcie_ = img.pcie;
    pageMeta_ = img.pageMeta;
    latchFifo_ = img.latchFifo;
    dramCapacityPages_ = img.dramCapacityPages;
    dramLru_ = img.dramLru;
    nextScrubAt_ = img.nextScrubAt;
    scrubCursor_ = img.scrubCursor;
    scrubScheduled_ = false; // quiescent capture: no pending event
    queue_->restore(img.queueNow, img.queueFired);
}

void
accumulateResult(RunResult &agg, const RunResult &r)
{
    if (!agg.workload.empty()) {
        agg.workload += "+";
        agg.policy += "+";
    }
    agg.workload += r.workload;
    agg.policy += r.policy;
    agg.instrCount += r.instrCount;
    for (std::size_t i = 0; i < kNumTargets; ++i)
        agg.perResource[i] += r.perResource[i];
    agg.latencyUs.merge(r.latencyUs);
    agg.dmEnergyJ += r.dmEnergyJ;
    agg.computeEnergyJ += r.computeEnergyJ;
    agg.computeBusy += r.computeBusy;
    agg.internalDmBusy += r.internalDmBusy;
    agg.flashReadBusy += r.flashReadBusy;
    agg.hostDmBusy += r.hostDmBusy;
    agg.offloaderBusy += r.offloaderBusy;
    agg.faultsInjected += r.faultsInjected;
    agg.replays += r.replays;
    agg.coherenceCommits += r.coherenceCommits;
    agg.latchEvictions += r.latchEvictions;
}

RunResult
aggregateResults(const std::vector<RunResult> &streams)
{
    RunResult agg;
    for (const RunResult &r : streams)
        accumulateResult(agg, r);
    return agg;
}

} // namespace conduit
