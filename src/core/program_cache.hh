/**
 * @file
 * Thread-safe, shared, immutable compile cache.
 *
 * Many consumers need the same compiled workload: the cells of a
 * sweep matrix, the jobs of a persistent Device, and the facade's
 * repeated run() calls. The cache compiles each distinct (workload,
 * scale, vectorizer-geometry) combination exactly once — even under
 * concurrent first requests, which block on a shared future instead
 * of recompiling — and hands every caller a shared pointer to the
 * immutable result, so concurrent runs share nothing mutable.
 */

#ifndef CONDUIT_CORE_PROGRAM_CACHE_HH
#define CONDUIT_CORE_PROGRAM_CACHE_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "src/sim/config.hh"
#include "src/vectorizer/vectorizer.hh"
#include "src/workloads/workloads.hh"

namespace conduit
{

/** Compile-once cache of vectorized workload programs. */
class ProgramCache
{
  public:
    /**
     * Compile @p id at @p params under @p cfg's vectorizer geometry,
     * or return the previously compiled program. Safe to call from
     * any number of threads; a given key is compiled exactly once.
     */
    std::shared_ptr<const VectorizedProgram>
    get(WorkloadId id, const WorkloadParams &params,
        const SsdConfig &cfg);

    /** Number of distinct programs compiled so far. */
    std::size_t size() const;

  private:
    /** (workload, scale, lanes, pageBytes) — what the output depends on. */
    using Key = std::tuple<int, double, std::uint32_t, std::uint32_t>;

    mutable std::mutex mu_;
    std::map<Key, std::shared_future<
                      std::shared_ptr<const VectorizedProgram>>>
        cache_;
};

} // namespace conduit

#endif // CONDUIT_CORE_PROGRAM_CACHE_HH
