#include "src/core/simulation.hh"

namespace conduit
{

namespace
{

VectorizeOptions
vecOptionsFor(const SsdConfig &cfg)
{
    VectorizeOptions vo;
    vo.vectorLanes = cfg.vectorLanes;
    vo.pageBytes = cfg.nand.pageBytes;
    return vo;
}

DeviceOptions
deviceOptionsFor(const SimOptions &opts)
{
    return makeDeviceOptions(opts.config, opts.engine, opts.workload);
}

} // namespace

Simulation::Simulation(SimOptions opts)
    : opts_(std::move(opts)), vectorizer_(vecOptionsFor(opts_.config))
{
}

const VectorizedProgram &
Simulation::compile(WorkloadId id)
{
    // Compile-once: concurrent first callers for the same workload
    // block on one shared compilation (no duplicate compile whose
    // loser is discarded). The cache keeps the entry alive for the
    // Simulation's lifetime, so handing out a reference is safe.
    return *cache_.get(id, opts_.workload, opts_.config);
}

VectorizedProgram
Simulation::compileProgram(const LoopProgram &lp) const
{
    return vectorizer_.run(lp);
}

RunResult
Simulation::run(WorkloadId id, const std::string &policy_name)
{
    auto policy = makePolicy(policy_name);
    return run(id, *policy);
}

RunResult
Simulation::run(WorkloadId id, OffloadPolicy &policy)
{
    return runProgram(compile(id).program, policy);
}

RunResult
Simulation::runProgram(const Program &prog, OffloadPolicy &policy)
{
    // One job, tick-0 arrival, fresh device — the paper's cold-SSD
    // methodology, expressed as the smallest possible Device use.
    // The program and policy are borrowed from the caller for the
    // duration of the call (non-owning aliases).
    Device dev(deviceOptionsFor(opts_));
    JobSpec job;
    job.program = std::shared_ptr<const Program>(
        std::shared_ptr<const void>(), &prog);
    job.policyObj = std::shared_ptr<OffloadPolicy>(
        std::shared_ptr<void>(), &policy);
    const JobId id = dev.submit(job);
    return dev.wait(id).result;
}

sched::MultiRunResult
Simulation::runMulti(const std::vector<Tenant> &tenants)
{
    std::vector<sched::StreamSpec> streams;
    streams.reserve(tenants.size());
    for (const Tenant &t : tenants) {
        sched::StreamSpec s;
        const VectorizedProgram &vp = compile(t.id);
        // Alias the cached program: the cache entry lives as long as
        // this Simulation, well beyond the run.
        s.program = std::shared_ptr<const Program>(
            std::shared_ptr<const void>(), &vp.program);
        s.policy = makePolicy(t.policy);
        s.name = workloadName(t.id);
        streams.push_back(std::move(s));
    }
    return runStreams(std::move(streams));
}

sched::MultiRunResult
Simulation::runStreams(std::vector<sched::StreamSpec> streams)
{
    // Fresh device, every stream submitted as a job arriving at tick
    // 0: byte-identical to the batch engine run (same region layout,
    // event sequence, and submission-order retirement).
    return runStreamsOnDevice(deviceOptionsFor(opts_),
                              std::move(streams));
}

RunResult
Simulation::runHost(WorkloadId id, bool gpu)
{
    return runHostProgram(compile(id).program, gpu);
}

RunResult
Simulation::runHostProgram(const Program &prog, bool gpu) const
{
    HostModel model(opts_.config, gpu ? HostModel::Kind::Gpu
                                      : HostModel::Kind::Cpu);
    const HostResult hr = model.run(prog);
    RunResult r;
    r.workload = prog.name;
    r.policy = gpu ? "GPU" : "CPU";
    r.execTime = hr.totalTime;
    r.instrCount = prog.instrs.size();
    r.computeBusy = hr.computeTime;
    r.hostDmBusy = hr.transferTime;
    r.dmEnergyJ = hr.dmEnergyJ;
    r.computeEnergyJ = hr.computeEnergyJ;
    return r;
}

Device
Simulation::makeDevice() const
{
    return Device(deviceOptionsFor(opts_));
}

} // namespace conduit
