#include "src/core/simulation.hh"

namespace conduit
{

namespace
{

VectorizeOptions
vecOptionsFor(const SsdConfig &cfg)
{
    VectorizeOptions vo;
    vo.vectorLanes = cfg.vectorLanes;
    vo.pageBytes = cfg.nand.pageBytes;
    return vo;
}

} // namespace

Simulation::Simulation(SimOptions opts)
    : opts_(std::move(opts)), vectorizer_(vecOptionsFor(opts_.config))
{
}

const VectorizedProgram &
Simulation::compile(WorkloadId id)
{
    // std::map never invalidates references on insert, so entries
    // can be handed out by reference while the lock is dropped.
    {
        std::lock_guard<std::mutex> lock(cacheMu_);
        auto it = cache_.find(id);
        if (it != cache_.end())
            return it->second;
    }
    const LoopProgram lp = buildWorkload(id, opts_.workload);
    VectorizedProgram vp = vectorizer_.run(lp);
    std::lock_guard<std::mutex> lock(cacheMu_);
    auto [pos, inserted] = cache_.emplace(id, std::move(vp));
    return pos->second;
}

VectorizedProgram
Simulation::compileProgram(const LoopProgram &lp) const
{
    return vectorizer_.run(lp);
}

RunResult
Simulation::run(WorkloadId id, const std::string &policy_name)
{
    auto policy = makePolicy(policy_name);
    return run(id, *policy);
}

RunResult
Simulation::run(WorkloadId id, OffloadPolicy &policy)
{
    return runProgram(compile(id).program, policy);
}

RunResult
Simulation::runProgram(const Program &prog, OffloadPolicy &policy)
{
    // Fresh engine (fresh device state) per run, as in the paper's
    // methodology: every technique starts from the same cold SSD.
    Engine engine(opts_.config);
    return engine.run(prog, policy, opts_.engine);
}

sched::MultiRunResult
Simulation::runMulti(const std::vector<Tenant> &tenants)
{
    std::vector<sched::StreamSpec> streams;
    streams.reserve(tenants.size());
    for (const Tenant &t : tenants) {
        sched::StreamSpec s;
        const VectorizedProgram &vp = compile(t.id);
        // Alias the cached program: the cache entry lives as long as
        // this Simulation, well beyond the run.
        s.program = std::shared_ptr<const Program>(
            std::shared_ptr<const void>(), &vp.program);
        s.policy = makePolicy(t.policy);
        s.name = workloadName(t.id);
        streams.push_back(std::move(s));
    }
    return runStreams(std::move(streams));
}

sched::MultiRunResult
Simulation::runStreams(std::vector<sched::StreamSpec> streams)
{
    // Fresh engine (fresh device state) per run, as in the paper's
    // methodology.
    Engine engine(opts_.config);
    return engine.run(std::move(streams), opts_.engine);
}

RunResult
Simulation::runHost(WorkloadId id, bool gpu)
{
    return runHostProgram(compile(id).program, gpu);
}

RunResult
Simulation::runHostProgram(const Program &prog, bool gpu) const
{
    HostModel model(opts_.config, gpu ? HostModel::Kind::Gpu
                                      : HostModel::Kind::Cpu);
    const HostResult hr = model.run(prog);
    RunResult r;
    r.workload = prog.name;
    r.policy = gpu ? "GPU" : "CPU";
    r.execTime = hr.totalTime;
    r.instrCount = prog.instrs.size();
    r.computeBusy = hr.computeTime;
    r.hostDmBusy = hr.transferTime;
    r.dmEnergyJ = hr.dmEnergyJ;
    r.computeEnergyJ = hr.computeEnergyJ;
    return r;
}

} // namespace conduit
