/**
 * @file
 * Instruction transformation unit (§4.3.2).
 *
 * Translates each vectorized instruction into the native ISA of the
 * chosen SSD computation resource: ARM M-Profile Vector Extension
 * (MVE/Helium) mnemonics for ISP, bbop_* extensions from
 * SIMDRAM/MIMDRAM/Proteus for PuD-SSD, and the MWS/latch primitives
 * of Flash-Cosmos and Ares-Flash for IFP. The translation table
 * lives in SSD DRAM (§4.5: four bytes per entry, ~1.5 KiB total);
 * the engine charges the 300 ns lookup on the offloader core.
 */

#ifndef CONDUIT_CORE_TRANSFORMER_HH
#define CONDUIT_CORE_TRANSFORMER_HH

#include <cstdint>
#include <string>

#include "src/ir/instruction.hh"
#include "src/offload/policy.hh"

namespace conduit
{

/** One native instruction emitted by the transformation unit. */
struct NativeInstruction
{
    Target target = Target::Isp;
    std::string mnemonic;

    /** Sub-operations after vector-width adaptation (§4.3.2). */
    std::uint32_t subOps = 1;

    /** Native lanes per sub-operation on the target. */
    std::uint32_t nativeLanes = 0;
};

/**
 * The translation table plus vector-width adaptation logic.
 */
class InstructionTransformer
{
  public:
    InstructionTransformer(std::uint32_t page_bytes,
                           std::uint32_t dram_row_bytes,
                           std::uint32_t isp_simd_bytes);

    /** Translate @p instr for execution on @p target. */
    NativeInstruction transform(const VecInstruction &instr,
                                Target target) const;

    /**
     * Native SIMD width (in lanes) of @p target for @p elem_bits
     * elements: full page for IFP, one DRAM row for PuD, the MVE
     * register for ISP.
     */
    std::uint32_t nativeLanes(Target target,
                              std::uint16_t elem_bits) const;

    /** Bytes of SSD DRAM consumed by the translation table (§4.5). */
    static std::uint64_t
    tableBytes()
    {
        // >300 operation types x 4-byte entries + per-resource
        // dispatch stubs; the paper reports 1.5 KiB.
        return 384 * 4;
    }

  private:
    std::uint32_t pageBytes_;
    std::uint32_t rowBytes_;
    std::uint32_t simdBytes_;
};

} // namespace conduit

#endif // CONDUIT_CORE_TRANSFORMER_HH
