/**
 * @file
 * Energy accounting (§5.2 energy modeling).
 *
 * Accumulates two buckets — data-movement energy and computation
 * energy — matching the red/grey breakdown of Fig. 7(b). Constants
 * come from Table 2 (Flash-Cosmos/ParaBit measurements for NAND,
 * DDR4 studies for DRAM, Cortex-R8 power models for the controller).
 */

#ifndef CONDUIT_ENERGY_ENERGY_MODEL_HH
#define CONDUIT_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "src/ir/opcode.hh"
#include "src/sim/config.hh"
#include "src/sim/types.hh"

namespace conduit
{

/**
 * Per-run energy accumulator.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &cfg) : cfg_(cfg) {}

    /** @name Data-movement events @{ */
    void
    flashRead(std::uint64_t pages)
    {
        dmJ_ += cfg_.readJPerChannel * static_cast<double>(pages);
    }

    void
    flashProgram(std::uint64_t pages)
    {
        dmJ_ += cfg_.programJPerChannel * static_cast<double>(pages);
    }

    void
    channelTransfer(std::uint64_t bytes)
    {
        dmJ_ += cfg_.channelJPerByte * static_cast<double>(bytes);
    }

    void
    dma(std::uint64_t ops)
    {
        dmJ_ += cfg_.dmaJPerChannel * static_cast<double>(ops);
    }

    void
    dramTransfer(std::uint64_t bytes)
    {
        dmJ_ += cfg_.dramJPerByte * static_cast<double>(bytes);
    }
    /** @} */

    /** @name Computation events @{ */

    /** IFP sensing for computation (charged as compute). */
    void
    ifpSense(std::uint64_t pages)
    {
        computeJ_ += cfg_.readJPerChannel * static_cast<double>(pages);
    }

    /** IFP logic on @p bytes of payload. */
    void
    ifpOp(OpCode op, std::uint64_t bytes)
    {
        const double kb = static_cast<double>(bytes) / 1024.0;
        double per_kb = cfg_.andOrJPerKb;
        if (op == OpCode::Xor)
            per_kb = cfg_.xorJPerKb;
        else if (latencyClass(op) != LatencyClass::Low)
            per_kb = cfg_.latchJPerKb * 4.0; // bit-serial latch traffic
        computeJ_ += per_kb * kb;
    }

    void
    pudOp(std::uint64_t bbops)
    {
        computeJ_ += cfg_.bbopJ * static_cast<double>(bbops);
    }

    void
    ispBusy(Tick duration)
    {
        computeJ_ += cfg_.ispWatts * ticksToSeconds(duration);
    }
    /** @} */

    double dataMovementJ() const { return dmJ_; }
    double computeJ() const { return computeJ_; }
    double totalJ() const { return dmJ_ + computeJ_; }

    void
    reset()
    {
        dmJ_ = 0.0;
        computeJ_ = 0.0;
    }

  private:
    EnergyConfig cfg_;
    double dmJ_ = 0.0;
    double computeJ_ = 0.0;
};

} // namespace conduit

#endif // CONDUIT_ENERGY_ENERGY_MODEL_HH
