/**
 * @file
 * Simulated-time tracing: structured events from Engine, Device and
 * Cluster, recorded in simulated time only.
 *
 * A Tracer is a passive event sink. Hook points in the simulation
 * call record() with already-computed simulated quantities; a hook
 * never acquires a resource calendar, never schedules an event, and
 * never reads a wall clock, so a traced run's simulated outputs are
 * byte-identical to the untraced run's. The disabled fast path is a
 * null-pointer check at each hook site.
 *
 * Categories gate whole event families (per-job lifecycle spans,
 * per-instruction resource occupancy, reliability events, queue-depth
 * samples, fleet placement decisions) so a trace of one concern stays
 * small. Events carry interned string tags (stream/tenant names,
 * placement snapshots) by index — a trace of 10^5 jobs of one tenant
 * stores the tenant name once.
 *
 * Snapshot semantics: trace buffers are never part of a DeviceImage.
 * Engine/Device/NandArray hold the tracer as transient wiring
 * (annotated for conduit-lint's snapshot check); a device forked from
 * an image starts with no tracer attached and therefore an empty
 * trace.
 */

#ifndef CONDUIT_TRACE_TRACE_HH
#define CONDUIT_TRACE_TRACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/types.hh"

namespace conduit::trace
{

/** Event families, combinable as a bitmask in TraceConfig. */
enum class Category : std::uint32_t
{
    /** Per-job lifecycle spans (arrival → admission → completion). */
    Job = 1u << 0,

    /** Per-instruction resource-occupancy intervals + host drains. */
    Occupancy = 1u << 1,

    /** ECC-retry stalls, scrub / wear-level passes. */
    Reliability = 1u << 2,

    /** Queue-depth and die-backlog samples at the sample cadence. */
    Queue = 1u << 3,

    /** Fleet placement decisions (policy, probe snapshot, device). */
    Placement = 1u << 4,
};

/** Every category bit. */
constexpr std::uint32_t kAllCategories = 0x1Fu;

/** Tracing knobs (plumbed through SweepOptions / ClusterRunSpec). */
struct TraceConfig
{
    /** Enabled categories (Category bits); 0 disables tracing. */
    std::uint32_t categories = 0;

    /**
     * Simulated-tick cadence of the Queue samples. Samples piggyback
     * on existing hook points (dispatch, admission, retirement), so
     * the cadence bounds sample density without scheduling events.
     */
    Tick sampleInterval = usToTicks(100);

    bool enabled() const { return categories != 0; }
};

/** Category display names, in bit order (CSV filter vocabulary). */
const std::vector<std::string> &categoryNames();

/**
 * Parse a comma-separated category list ("job,occupancy") into a
 * bitmask; empty input means every category. Returns nullopt on an
 * unknown name.
 */
std::optional<std::uint32_t> parseCategories(const std::string &csv);

/** What one trace event describes. */
enum class EventKind : std::uint8_t
{
    /** One job's lifecycle span. start=arrival, end=retire-end,
     *  a=job id, b=admitted tick, c=region pages, str=job name. */
    Job,

    /** One instruction's occupancy interval. start=ready (dispatched
     *  + operands available), end=completion, a=instruction id,
     *  b=opcode, c=target resource, lane=die (IFP targets),
     *  str=stream name. */
    Instr,

    /** One end-of-stream result drain to the host over PCIe.
     *  start=drain begin, end=last page landed, a=pages drained,
     *  str=stream name. */
    HostDrain,

    /** One ECC-retry-ladder stall charged as die-busy time.
     *  start/end=the stretched sense interval, lane=die, a=block
     *  index, b=penalty ticks beyond nominal tR. */
    EccStall,

    /** One background scrub pass (instant). a=blocks refreshed,
     *  b=wear-level migrations. */
    Scrub,

    /** Engine backlog sample (instant). a=ISP backlog ticks, b=DRAM
     *  bank backlog ticks, c=max die backlog ticks, lane=busy-die
     *  fraction in ppm. */
    BacklogSample,

    /** Device admission-queue sample (instant). a=pending jobs,
     *  b=jobs waiting for capacity, c=admitted pages. */
    JobQueueSample,

    /** One fleet placement decision (instant). device=chosen device,
     *  a=tenant, b=device-local job id, c=chosen device's pending
     *  jobs at the probe, str=policy name + probe snapshot. */
    Placement,
};

/**
 * One structured trace event. Instants carry start == end. All
 * times are simulated ticks; field meanings are per EventKind.
 */
struct Event
{
    Category cat = Category::Job;
    EventKind kind = EventKind::Job;
    std::uint32_t device = 0;
    std::uint32_t lane = 0;
    Tick start = 0;
    Tick end = 0;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
    /** Interned tag index (0 = the empty string). */
    std::uint32_t str = 0;
};

/**
 * The event sink. One Tracer records one cell's events, in the
 * deterministic order the (sequential) simulation produced them —
 * exporters preserve that order, so trace files are bit-identical
 * across host thread counts and repeats.
 *
 * Not thread-safe: attach one Tracer to one cell's simulation (the
 * sweep runner creates one per traced cell).
 */
class Tracer
{
  public:
    explicit Tracer(TraceConfig cfg = {}) : cfg_(cfg)
    {
        strings_.emplace_back(); // index 0: the empty tag
    }

    const TraceConfig &config() const { return cfg_; }

    /** Hook-site gate: is @p c's event family being recorded? */
    bool
    wants(Category c) const
    {
        return (cfg_.categories & static_cast<std::uint32_t>(c)) != 0;
    }

    /** Simulated cadence of the Queue samples. */
    Tick sampleInterval() const { return cfg_.sampleInterval; }

    void record(const Event &e) { events_.push_back(e); }

    /** Intern @p s, returning its stable tag index. */
    std::uint32_t
    intern(const std::string &s)
    {
        if (s.empty())
            return 0;
        const auto it = internIndex_.find(s);
        if (it != internIndex_.end())
            return it->second;
        const auto idx = static_cast<std::uint32_t>(strings_.size());
        strings_.push_back(s);
        internIndex_.emplace(s, idx);
        return idx;
    }

    const std::vector<Event> &events() const { return events_; }
    const std::vector<std::string> &strings() const { return strings_; }

    const std::string &
    tag(std::uint32_t idx) const
    {
        return strings_.at(idx);
    }

  private:
    TraceConfig cfg_;
    std::vector<Event> events_;
    /** Interned tags, index order (0 = ""). */
    std::vector<std::string> strings_;
    /** Lookup-only reverse index (never iterated). */
    std::unordered_map<std::string, std::uint32_t> internIndex_;
};

/**
 * Per-instruction timeline reconstructed from a Tracer's Instr
 * events, in recorded (dispatch) order — the drop-in successor of
 * RunResult's retired resourceTrace/opTrace/completionTrace vectors.
 * For a single-stream run, dispatch order equals instruction-id
 * order, so completion[i] is instruction i's completion tick.
 */
struct InstructionTimeline
{
    std::vector<std::uint8_t> resource;
    std::vector<std::uint8_t> op;
    std::vector<Tick> completion;

    std::size_t size() const { return resource.size(); }
};

/**
 * Collect @p t's Instr events into an InstructionTimeline. A
 * non-empty @p stream keeps only events tagged with that stream
 * name (multi-stream cells interleave dispatches).
 */
InstructionTimeline instructionTimeline(const Tracer &t,
                                        const std::string &stream = "");

} // namespace conduit::trace

#endif // CONDUIT_TRACE_TRACE_HH
