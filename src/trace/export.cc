#include "src/trace/export.hh"

#include <cstdarg>
#include <cstdio>
#include <map>

namespace conduit::trace
{

namespace
{

/** Display name of @p c (the CSV filter vocabulary). */
const char *
catName(Category c)
{
    switch (c) {
      case Category::Job: return "job";
      case Category::Occupancy: return "occupancy";
      case Category::Reliability: return "reliability";
      case Category::Queue: return "queue";
      case Category::Placement: return "placement";
    }
    return "?";
}

const char *
kindName(EventKind k)
{
    switch (k) {
      case EventKind::Job: return "job";
      case EventKind::Instr: return "instr";
      case EventKind::HostDrain: return "host-drain";
      case EventKind::EccStall: return "ecc-stall";
      case EventKind::Scrub: return "scrub";
      case EventKind::BacklogSample: return "backlog";
      case EventKind::JobQueueSample: return "job-queue";
      case EventKind::Placement: return "placement";
    }
    return "?";
}

/** printf-append; every numeric field goes through here. */
void
appendf(std::string &out, const char *fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    if (n > 0)
        out.append(buf, std::min<std::size_t>(
                            static_cast<std::size_t>(n),
                            sizeof buf - 1));
}

/**
 * Append @p t as an exact decimal microsecond value: integer us,
 * then the picosecond remainder as six fractional digits. Integer
 * arithmetic only — no rounding, so repeats render identically.
 */
void
appendUs(std::string &out, Tick t)
{
    appendf(out, "%llu.%06llu",
            static_cast<unsigned long long>(t / kPsPerUs),
            static_cast<unsigned long long>(t % kPsPerUs));
}

/** JSON string escape (quotes, backslashes, control chars). */
void
appendJsonString(std::string &out, const std::string &s)
{
    out += '"';
    for (const char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20)
                appendf(out, "\\u%04x",
                        static_cast<unsigned>(
                            static_cast<unsigned char>(ch)));
            else
                out += ch;
        }
    }
    out += '"';
}

/** Track-id layout within one cell's process. @{ */
constexpr std::uint32_t kTracksPerDevice = 4096;
constexpr std::uint32_t kTrackJobs = 0;
constexpr std::uint32_t kTrackIsp = 1;
constexpr std::uint32_t kTrackPud = 2;
constexpr std::uint32_t kTrackHost = 3;
constexpr std::uint32_t kTrackReliability = 4;
constexpr std::uint32_t kTrackPlacement = 6;
constexpr std::uint32_t kTrackDieBase = 16;
/** @} */

/** Track (tid) of @p e; samples ("C" events) carry no track. */
std::uint32_t
trackOf(const Event &e)
{
    const std::uint32_t base = e.device * kTracksPerDevice;
    switch (e.kind) {
      case EventKind::Job: return base + kTrackJobs;
      case EventKind::Instr:
        // Target enum order: Isp, Pud, Ifp (see src/sim/types /
        // offload policy); IFP occupancy lands on its die's track.
        if (e.c == 2)
            return base + kTrackDieBase + e.lane;
        return base + (e.c == 1 ? kTrackPud : kTrackIsp);
      case EventKind::HostDrain: return base + kTrackHost;
      case EventKind::EccStall: return base + kTrackDieBase + e.lane;
      case EventKind::Scrub: return base + kTrackReliability;
      case EventKind::Placement: return base + kTrackPlacement;
      case EventKind::BacklogSample:
      case EventKind::JobQueueSample: return base;
    }
    return base;
}

/** Human name of @p track within device @p dev. */
std::string
trackName(std::uint32_t dev, std::uint32_t track)
{
    char buf[48];
    const std::uint32_t local = track % kTracksPerDevice;
    const char *what = nullptr;
    switch (local) {
      case kTrackJobs: what = "jobs"; break;
      case kTrackIsp: what = "isp"; break;
      case kTrackPud: what = "pud"; break;
      case kTrackHost: what = "host"; break;
      case kTrackReliability: what = "reliability"; break;
      case kTrackPlacement: what = "placement"; break;
      default: break;
    }
    if (what)
        std::snprintf(buf, sizeof buf, "dev%u %s", dev, what);
    else
        std::snprintf(buf, sizeof buf, "dev%u die%u", dev,
                      local - kTrackDieBase);
    return buf;
}

/** Emit one "X"/"i" event's shared prefix (ph..ts). */
void
appendEventHead(std::string &out, const char *ph, std::size_t pid,
                std::uint32_t tid, const char *name, Category cat,
                Tick ts)
{
    appendf(out, "{\"ph\":\"%s\",\"pid\":%zu,\"tid\":%u,\"name\":",
            ph, pid, tid);
    appendJsonString(out, name);
    appendf(out, ",\"cat\":\"%s\",\"ts\":", catName(cat));
    appendUs(out, ts);
}

} // namespace

std::string
toCsv(const std::vector<TraceCell> &cells)
{
    std::string out =
        "cell,device,cat,kind,lane,start_ps,end_ps,a,b,c,tag\n";
    for (const TraceCell &cell : cells) {
        if (!cell.tracer)
            continue;
        for (const Event &e : cell.tracer->events()) {
            out += cell.label;
            appendf(out, ",%u,%s,%s,%u,%llu,%llu,%llu,%llu,%llu,",
                    e.device, catName(e.cat), kindName(e.kind),
                    e.lane, static_cast<unsigned long long>(e.start),
                    static_cast<unsigned long long>(e.end),
                    static_cast<unsigned long long>(e.a),
                    static_cast<unsigned long long>(e.b),
                    static_cast<unsigned long long>(e.c));
            out += cell.tracer->tag(e.str);
            out += '\n';
        }
    }
    return out;
}

std::string
toJson(const std::vector<TraceCell> &cells)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    const auto comma = [&] {
        if (!first)
            out += ",\n";
        else
            out += "\n";
        first = false;
    };

    for (std::size_t ci = 0; ci < cells.size(); ++ci) {
        const TraceCell &cell = cells[ci];
        if (!cell.tracer)
            continue;
        const std::size_t pid = ci + 1;
        const Tracer &t = *cell.tracer;

        comma();
        appendf(out,
                "{\"ph\":\"M\",\"pid\":%zu,\"name\":"
                "\"process_name\",\"args\":{\"name\":",
                pid);
        appendJsonString(out, cell.label);
        out += "}}";

        // Name every span/instant track the cell used, in track
        // order (std::map keeps the metadata deterministic).
        std::map<std::uint32_t, std::uint32_t> tracks; // tid -> dev
        for (const Event &e : t.events()) {
            if (e.kind == EventKind::BacklogSample ||
                e.kind == EventKind::JobQueueSample)
                continue;
            tracks.emplace(trackOf(e), e.device);
        }
        for (const auto &[tid, dev] : tracks) {
            comma();
            appendf(out,
                    "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%u,\"name\":"
                    "\"thread_name\",\"args\":{\"name\":",
                    pid, tid);
            appendJsonString(out, trackName(dev, tid));
            out += "}}";
        }

        for (const Event &e : t.events()) {
            const std::uint32_t tid = trackOf(e);
            comma();
            switch (e.kind) {
              case EventKind::Job:
                appendEventHead(out, "X", pid, tid,
                                t.tag(e.str).empty()
                                    ? "job"
                                    : t.tag(e.str).c_str(),
                                e.cat, e.start);
                out += ",\"dur\":";
                appendUs(out, e.end - e.start);
                appendf(out, ",\"args\":{\"job\":%llu,"
                             "\"admitted_us\":",
                        static_cast<unsigned long long>(e.a));
                appendUs(out, e.b);
                appendf(out, ",\"pages\":%llu}}",
                        static_cast<unsigned long long>(e.c));
                break;
              case EventKind::Instr: {
                const char *name = e.c == 2 ? "ifp"
                    : e.c == 1              ? "pud"
                                            : "isp";
                appendEventHead(out, "X", pid, tid, name, e.cat,
                                e.start);
                out += ",\"dur\":";
                appendUs(out, e.end - e.start);
                appendf(out, ",\"args\":{\"id\":%llu,\"op\":%llu,"
                             "\"stream\":",
                        static_cast<unsigned long long>(e.a),
                        static_cast<unsigned long long>(e.b));
                appendJsonString(out, t.tag(e.str));
                out += "}}";
                break;
              }
              case EventKind::HostDrain:
                appendEventHead(out, "X", pid, tid, "drain", e.cat,
                                e.start);
                out += ",\"dur\":";
                appendUs(out, e.end - e.start);
                appendf(out, ",\"args\":{\"pages\":%llu,\"stream\":",
                        static_cast<unsigned long long>(e.a));
                appendJsonString(out, t.tag(e.str));
                out += "}}";
                break;
              case EventKind::EccStall:
                appendEventHead(out, "X", pid, tid, "ecc", e.cat,
                                e.start);
                out += ",\"dur\":";
                appendUs(out, e.end - e.start);
                appendf(out, ",\"args\":{\"block\":%llu,"
                             "\"penalty_us\":",
                        static_cast<unsigned long long>(e.a));
                appendUs(out, e.b);
                out += "}}";
                break;
              case EventKind::Scrub:
                appendEventHead(out, "i", pid, tid, "scrub", e.cat,
                                e.start);
                appendf(out, ",\"s\":\"t\",\"args\":{"
                             "\"refreshed\":%llu,"
                             "\"migrations\":%llu}}",
                        static_cast<unsigned long long>(e.a),
                        static_cast<unsigned long long>(e.b));
                break;
              case EventKind::BacklogSample:
                appendf(out, "{\"ph\":\"C\",\"pid\":%zu,\"name\":"
                             "\"dev%u backlog\",\"ts\":",
                        pid, e.device);
                appendUs(out, e.start);
                out += ",\"args\":{\"isp_us\":";
                appendUs(out, e.a);
                out += ",\"pud_us\":";
                appendUs(out, e.b);
                out += ",\"die_us\":";
                appendUs(out, e.c);
                appendf(out, ",\"busy_ppm\":%u}}", e.lane);
                break;
              case EventKind::JobQueueSample:
                appendf(out, "{\"ph\":\"C\",\"pid\":%zu,\"name\":"
                             "\"dev%u queue\",\"ts\":",
                        pid, e.device);
                appendUs(out, e.start);
                appendf(out,
                        ",\"args\":{\"pending\":%llu,"
                        "\"waiting\":%llu,\"admitted_pages\":%llu}}",
                        static_cast<unsigned long long>(e.a),
                        static_cast<unsigned long long>(e.b),
                        static_cast<unsigned long long>(e.c));
                break;
              case EventKind::Placement:
                appendEventHead(out, "i", pid, tid, "place", e.cat,
                                e.start);
                appendf(out,
                        ",\"s\":\"t\",\"args\":{\"tenant\":%llu,"
                        "\"job\":%llu,\"pending\":%llu,\"probe\":",
                        static_cast<unsigned long long>(e.a),
                        static_cast<unsigned long long>(e.b),
                        static_cast<unsigned long long>(e.c));
                appendJsonString(out, t.tag(e.str));
                out += "}}";
                break;
            }
        }
    }
    out += "\n]}\n";
    return out;
}

bool
writeTraceFile(const std::string &path,
               const std::vector<TraceCell> &cells)
{
    const bool csv = path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    const std::string body = csv ? toCsv(cells) : toJson(cells);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::size_t n =
        std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = n == body.size();
    return std::fclose(f) == 0 && ok;
}

} // namespace conduit::trace
