#include "src/trace/trace.hh"

namespace conduit::trace
{

const std::vector<std::string> &
categoryNames()
{
    static const std::vector<std::string> names = {
        "job", "occupancy", "reliability", "queue", "placement"};
    return names;
}

std::optional<std::uint32_t>
parseCategories(const std::string &csv)
{
    if (csv.empty())
        return kAllCategories;
    const std::vector<std::string> &names = categoryNames();
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        std::size_t begin = pos;
        std::size_t end = comma;
        while (begin < end && csv[begin] == ' ')
            ++begin;
        while (end > begin && csv[end - 1] == ' ')
            --end;
        const std::string name = csv.substr(begin, end - begin);
        if (name == "all") {
            mask |= kAllCategories;
        } else if (!name.empty()) {
            bool known = false;
            for (std::size_t i = 0; i < names.size(); ++i) {
                if (names[i] == name) {
                    mask |= 1u << i;
                    known = true;
                    break;
                }
            }
            if (!known)
                return std::nullopt;
        }
        pos = comma + 1;
    }
    return mask == 0 ? std::optional<std::uint32_t>() : mask;
}

InstructionTimeline
instructionTimeline(const Tracer &t, const std::string &stream)
{
    InstructionTimeline tl;
    const std::uint32_t want =
        stream.empty() ? 0 : [&] {
            // A stream that never dispatched has no interned tag;
            // scan the tag table without mutating the tracer.
            const auto &tags = t.strings();
            for (std::size_t i = 1; i < tags.size(); ++i)
                if (tags[i] == stream)
                    return static_cast<std::uint32_t>(i);
            return ~0u;
        }();
    for (const Event &e : t.events()) {
        if (e.kind != EventKind::Instr)
            continue;
        if (!stream.empty() && e.str != want)
            continue;
        tl.resource.push_back(static_cast<std::uint8_t>(e.c));
        tl.op.push_back(static_cast<std::uint8_t>(e.b));
        tl.completion.push_back(e.end);
    }
    return tl;
}

} // namespace conduit::trace
