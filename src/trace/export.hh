/**
 * @file
 * Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and a
 * compact CSV.
 *
 * Both formats are rendered from the Tracer's recorded event order
 * with exact integer arithmetic (timestamps print as <us>.<ps-frac>
 * with no floating-point rounding), so a trace file is bit-identical
 * across host thread counts and repeats of the same sweep.
 *
 * JSON layout: one Perfetto "process" per sweep cell (pid = cell
 * index + 1, process_name = the cell label). Within a cell, tracks
 * (tids) encode device and resource: per-device job, ISP, PuD,
 * host/PCIe, reliability, placement tracks plus one track per NAND
 * die (IFP occupancy and ECC stalls land on the die that was busy).
 * Occupancy and job spans are complete ("X") events, scrub and
 * placement decisions are instants ("i"), queue samples are counter
 * ("C") series.
 */

#ifndef CONDUIT_TRACE_EXPORT_HH
#define CONDUIT_TRACE_EXPORT_HH

#include <memory>
#include <string>
#include <vector>

#include "src/trace/trace.hh"

namespace conduit::trace
{

/** One sweep cell's trace: attribution label + recorded events. */
struct TraceCell
{
    std::string label;
    /** Null for cells that did not trace (host baselines). */
    std::shared_ptr<Tracer> tracer;
};

/**
 * Render @p cells as compact CSV
 * (cell,device,cat,kind,lane,start_ps,end_ps,a,b,c,tag), one row per
 * event, cells in order. Returned as a string so tests can compare
 * traces without touching the filesystem.
 */
std::string toCsv(const std::vector<TraceCell> &cells);

/** Render @p cells as Chrome trace-event JSON (see file header). */
std::string toJson(const std::vector<TraceCell> &cells);

/**
 * Write @p cells to @p path: CSV when the path ends in ".csv",
 * Chrome trace-event JSON otherwise.
 * @return false when the file could not be written.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<TraceCell> &cells);

} // namespace conduit::trace

#endif // CONDUIT_TRACE_EXPORT_HH
