#include "src/workloads/workloads.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace conduit
{

namespace
{

std::uint64_t
scaled(double base, double scale, std::uint64_t minimum = 4096)
{
    return std::max<std::uint64_t>(
        minimum, static_cast<std::uint64_t>(base * scale));
}

/**
 * AES-256 encryption (CHStone-derived kernel, bit-sliced).
 *
 * 14 rounds over the state: AddRoundKey (XOR), a bit-sliced SubBytes
 * (the S-box expressed as AND/OR/NOT/XOR gate layers — the standard
 * formulation for bulk-bitwise substrates), ShiftRows (bulk copy
 * with rotation), and a branchless MixColumns built from xtime
 * (shift/mask/XOR). The key expansion and the block (de)formatting
 * loops carry loop-borne dependences / complex control flow and stay
 * scalar, giving the ~65% vectorizable-code coverage of Table 3.
 * The round kernel is almost entirely low-latency bitwise work with
 * high state reuse — the IFP-friendly profile.
 */
LoopProgram
buildAes(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "AES";
    const std::uint64_t n = scaled(1024 * 1024, p.scale);

    const ArrayId state = lp.addArray("state", n);
    const ArrayId tmp = lp.addArray("tmp", n);
    const ArrayId mask = lp.addArray("mask", n);
    const ArrayId rkey = lp.addArray("round_keys", 16 * 15);
    const ArrayId blocks = lp.addArray("blocks", n / 8);

    Loop round;
    round.label = "aes_round";
    round.tripCount = n;
    round.repeat = 14;

    // AddRoundKey: state ^= round_key (broadcast).
    round.body.push_back({OpCode::Xor,
                          {{state, 0, 1}, {rkey, 0, 0}},
                          {state, 0, 1}});
    // Bit-sliced SubBytes: representative gate layers of the
    // Boyar-Peralta S-box circuit (AND/OR/NOT/XOR over bit planes).
    round.body.push_back({OpCode::And,
                          {{state, 0, 1}, {state, 1, 1}},
                          {tmp, 0, 1}});
    round.body.push_back({OpCode::Or,
                          {{state, 2, 1}, {tmp, 0, 1}},
                          {mask, 0, 1}});
    round.body.push_back({OpCode::Not, {{mask, 0, 1}}, {mask, 0, 1}});
    round.body.push_back({OpCode::Xor,
                          {{tmp, 0, 1}, {mask, 0, 1}},
                          {state, 0, 1}});
    // ShiftRows: byte rotation within each 16B block (bulk copy).
    round.body.push_back({OpCode::Copy, {{state, 1, 1}}, {tmp, 0, 1}});
    // MixColumns via branchless xtime:
    //   mask = state >> 7 (AND 0x1b); tmp = (state << 1) ^ mask;
    //   state = tmp ^ state(rot).
    round.body.push_back({OpCode::ShiftR, {{tmp, 0, 1}},
                          {mask, 0, 1}});
    round.body.push_back({OpCode::And,
                          {{mask, 0, 1}, {rkey, 0, 0}},
                          {mask, 0, 1}});
    round.body.push_back({OpCode::ShiftL, {{tmp, 0, 1}}, {tmp, 0, 1}});
    round.body.push_back({OpCode::Xor,
                          {{tmp, 0, 1}, {mask, 0, 1}},
                          {tmp, 0, 1}});
    round.body.push_back({OpCode::Xor,
                          {{tmp, 0, 1}, {state, 2, 1}},
                          {state, 0, 1}});
    lp.loops.push_back(round);

    // Key expansion: sequential dependence chain over the schedule.
    Loop key_sched;
    key_sched.label = "aes_key_schedule";
    key_sched.tripCount = 16 * 15;
    key_sched.carriedDependence = true;
    key_sched.body.push_back({OpCode::Xor,
                              {{rkey, 0, 1}, {rkey, 16, 1}},
                              {rkey, 0, 1}});
    key_sched.body.push_back({OpCode::ShiftL, {{rkey, 0, 1}},
                              {rkey, 0, 1}});
    key_sched.body.push_back({OpCode::Xor,
                              {{rkey, 0, 1}, {rkey, 1, 1}},
                              {rkey, 0, 1}});
    lp.loops.push_back(key_sched);

    // Block (de)formatting with mode-dependent control flow.
    Loop fmt;
    fmt.label = "aes_block_format";
    fmt.tripCount = n / 8;
    fmt.multipleExits = true;
    fmt.body.push_back({OpCode::Xor,
                        {{blocks, 0, 1}, {state, 0, 8}},
                        {blocks, 0, 1}});
    fmt.body.push_back({OpCode::Or,
                        {{blocks, 0, 1}, {blocks, 1, 1}},
                        {blocks, 0, 1}});
    fmt.body.push_back({OpCode::Copy, {{blocks, 0, 1}},
                        {blocks, 0, 1}});
    lp.loops.push_back(fmt);
    return lp;
}

/**
 * XOR filter construction + membership queries.
 *
 * Fingerprint generation over the key stream vectorizes; the three
 * hash-table placements/probes are indirect accesses and stay scalar
 * — which is why only ~16% of the code vectorizes (Table 3). The op
 * mix is dominated by medium-latency arithmetic/predication.
 */
LoopProgram
buildXorFilter(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "XOR Filter";
    const std::uint64_t keys = scaled(1280 * 1024, p.scale);
    const std::uint64_t slots = keys + keys / 4;

    const ArrayId key = lp.addArray("keys", keys);
    const ArrayId fp = lp.addArray("fingerprints", keys);
    const ArrayId h = lp.addArray("hash", keys);
    const ArrayId table = lp.addArray("table", slots);
    const ArrayId result = lp.addArray("result", keys);

    // Vectorizable fingerprint computation (one of many stages).
    Loop hash;
    hash.label = "xf_fingerprint";
    hash.tripCount = keys;
    hash.body.push_back({OpCode::Add,
                         {{key, 0, 1}, {key, 1, 1}},
                         {fp, 0, 1}});
    lp.loops.push_back(hash);

    // Peeling/placement: the three hash positions per key are
    // data-dependent (indirect) and execute as residual scalar code.
    // Only keys on the current peeling frontier are processed per
    // pass, so the scalar dynamic volume is a fraction of the keys.
    Loop place;
    place.label = "xf_place";
    place.tripCount = keys / 4;
    place.repeat = 3;
    place.body.push_back({OpCode::Add,
                          {{h, 0, 1}, {fp, 0, 1, true}},
                          {h, 0, 1, true}});
    place.body.push_back({OpCode::Add,
                          {{table, 0, 1, true}, {fp, 0, 1}},
                          {table, 0, 1, true}});
    place.body.push_back({OpCode::Sub,
                          {{h, 0, 1}, {table, 0, 1, true}},
                          {h, 0, 1, true}});
    place.body.push_back({OpCode::Min,
                          {{table, 0, 1, true}, {h, 0, 1}},
                          {table, 0, 1, true}});
    lp.loops.push_back(place);

    // Queries: three indirect probes + membership compare (scalar),
    // one vector compare for the final verdict.
    Loop query;
    query.label = "xf_query";
    query.tripCount = keys / 4;
    query.body.push_back({OpCode::Add,
                          {{table, 0, 1, true}, {table, 1, 1, true}},
                          {result, 0, 1, true}});
    query.body.push_back({OpCode::Sub,
                          {{result, 0, 1, true}, {table, 2, 1, true}},
                          {result, 0, 1, true}});
    query.body.push_back({OpCode::Max,
                          {{result, 0, 1, true}, {fp, 0, 1, true}},
                          {result, 0, 1, true}});
    query.body.push_back({OpCode::Sub,
                          {{result, 0, 1, true}, {h, 0, 1, true}},
                          {result, 0, 1, true}});
    lp.loops.push_back(query);

    // Final vectorized membership verdict over all keys.
    Loop verdict;
    verdict.label = "xf_verdict";
    verdict.tripCount = keys;
    verdict.body.push_back({OpCode::CmpEq,
                            {{result, 0, 1}, {fp, 0, 1}},
                            {result, 0, 1}});
    lp.loops.push_back(verdict);
    return lp;
}

/**
 * heat-3d (Polybench): 3-D stencil over a ping-pong grid pair.
 * Six neighbor accumulations (medium) and four coefficient
 * multiplies (high) per point; fully vectorizable except a small
 * boundary-fix loop with complex control flow.
 */
LoopProgram
buildHeat3d(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "heat-3d";
    const std::uint64_t g = scaled(56, std::cbrt(p.scale), 24);
    const std::uint64_t points = g * g * g;
    const auto plane = static_cast<std::int64_t>(g * g);
    const auto row = static_cast<std::int64_t>(g);

    const ArrayId a = lp.addArray("A", points);
    const ArrayId b = lp.addArray("B", points);
    const ArrayId acc = lp.addArray("acc", points);

    Loop step;
    step.label = "heat_step";
    step.tripCount = points;
    step.repeat = 2;
    // acc = A[i-g^2] + A[i+g^2]; acc += A[i-g] + A[i+g]; ...
    step.body.push_back({OpCode::Add,
                         {{a, -plane, 1}, {a, plane, 1}},
                         {acc, 0, 1}});
    step.body.push_back({OpCode::Add,
                         {{acc, 0, 1}, {a, -row, 1}},
                         {acc, 0, 1}});
    step.body.push_back({OpCode::Add,
                         {{acc, 0, 1}, {a, row, 1}},
                         {acc, 0, 1}});
    step.body.push_back({OpCode::Add,
                         {{acc, 0, 1}, {a, -1, 1}},
                         {acc, 0, 1}});
    step.body.push_back({OpCode::Add,
                         {{acc, 0, 1}, {a, 1, 1}},
                         {acc, 0, 1}});
    // B = c0*A + c1*acc + c2*acc^2-ish (coefficient multiplies).
    step.body.push_back({OpCode::Mul,
                         {{a, 0, 1}, {a, 0, 0}},
                         {b, 0, 1}});
    step.body.push_back({OpCode::Mac,
                         {{acc, 0, 1}, {a, 0, 0}},
                         {b, 0, 1}});
    step.body.push_back({OpCode::Mul,
                         {{acc, 0, 1}, {acc, 0, 1}},
                         {acc, 0, 1}});
    step.body.push_back({OpCode::Mac,
                         {{acc, 0, 1}, {b, 0, 1}},
                         {b, 0, 1}});
    // Copy back for the next step (ping-pong fold).
    step.body.push_back({OpCode::Copy, {{b, 0, 1}}, {a, 0, 1}});
    lp.loops.push_back(step);

    // Boundary handling: small loop with multiple exits (scalar).
    Loop boundary;
    boundary.label = "heat_boundary";
    boundary.tripCount = 6 * g * g;
    boundary.multipleExits = true;
    boundary.repeat = 2;
    boundary.body.push_back({OpCode::Add,
                             {{b, 0, 1}, {a, 0, 1}},
                             {b, 0, 1}});
    lp.loops.push_back(boundary);
    return lp;
}

/**
 * jacobi-1d (Polybench): B[i] = c * (A[i-1] + A[i] + A[i+1]).
 * Two adds and one multiply per point — the 67%/33% medium/high mix
 * of Table 3 — with two sweeps and a scalar convergence check.
 */
LoopProgram
buildJacobi1d(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "jacobi-1d";
    const std::uint64_t n = scaled(640 * 1024, p.scale);

    const ArrayId a = lp.addArray("A", n);
    const ArrayId b = lp.addArray("B", n);

    Loop sweep;
    sweep.label = "jacobi_sweep";
    sweep.tripCount = n;
    sweep.repeat = 2;
    sweep.body.push_back({OpCode::Add,
                          {{a, -1, 1}, {a, 0, 1}},
                          {b, 0, 1}});
    sweep.body.push_back({OpCode::Add,
                          {{b, 0, 1}, {a, 1, 1}},
                          {b, 0, 1}});
    sweep.body.push_back({OpCode::Mul,
                          {{b, 0, 1}, {a, 0, 0}},
                          {b, 0, 1}});
    sweep.body.push_back({OpCode::Copy, {{b, 0, 1}}, {a, 0, 1}});
    lp.loops.push_back(sweep);

    // Convergence check with early exit (residual scalar region).
    Loop check;
    check.label = "jacobi_check";
    check.tripCount = n / 8;
    check.multipleExits = true;
    check.body.push_back({OpCode::Sub,
                          {{a, 0, 1}, {b, 0, 1}},
                          {b, 0, 1}});
    lp.loops.push_back(check);
    return lp;
}

/**
 * Shared LLM building blocks: a panel-decomposed INT8 GEMM plus
 * normalization/attention/softmax stages. Multiplies pair with
 * explicit accumulation adds, giving the ~50/50 medium/high split of
 * LLaMA2 inference; the transcendental stages (exp, rsqrt) and
 * sampling remain scalar, bounding vectorization coverage at ~70%.
 */
void
appendMatmul(LoopProgram &lp, const std::string &label, ArrayId weights,
             ArrayId in, ArrayId out, std::uint64_t dim,
             std::uint64_t panels)
{
    // Panel-decomposed GEMM, split along the output dimension: each
    // panel streams a distinct weight slice exactly once (weights
    // are not re-read, matching the low weight reuse of Table 3) and
    // produces an independent output slice, so panels execute in
    // parallel like real GEMM tiles.
    for (std::uint64_t panel = 0; panel < panels; ++panel) {
        Loop mm;
        mm.label = label + ".p" + std::to_string(panel);
        mm.tripCount = dim / panels;
        const auto w_off = static_cast<std::int64_t>(panel * dim);
        const auto o_off =
            static_cast<std::int64_t>(panel * (dim / panels));
        mm.body.push_back({OpCode::Mul,
                           {{weights, w_off, 1}, {in, 0, 0}},
                           {out, o_off, 1}});
        mm.body.push_back({OpCode::Add,
                           {{out, o_off, 1}, {in, o_off, 1}},
                           {out, o_off, 1}});
        lp.loops.push_back(mm);
    }
}

void
appendNorm(LoopProgram &lp, const std::string &label, ArrayId x,
           ArrayId tmp, std::uint64_t dim)
{
    // rmsnorm: sum of squares (reduction) + rsqrt (scalar) + scale.
    Loop norm;
    norm.label = label + "_ss";
    norm.tripCount = dim;
    LoopStmt sq{OpCode::Mul, {{x, 0, 1}, {x, 0, 1}}, {tmp, 0, 1}};
    sq.reduction = true;
    norm.body.push_back(sq);
    lp.loops.push_back(norm);

    Loop rs;
    rs.label = label + "_rsqrt";
    rs.tripCount = 64;
    rs.carriedDependence = true; // Newton iteration chain
    rs.body.push_back({OpCode::Rsqrt, {{tmp, 0, 1}}, {tmp, 0, 1}});
    lp.loops.push_back(rs);

    Loop scale;
    scale.label = label + "_scale";
    scale.tripCount = dim;
    scale.body.push_back({OpCode::Mul,
                          {{x, 0, 1}, {tmp, 0, 0}},
                          {x, 0, 1}});
    lp.loops.push_back(scale);
}

void
appendSoftmax(LoopProgram &lp, const std::string &label, ArrayId s,
              ArrayId tmp, std::uint64_t len)
{
    Loop mx;
    mx.label = label + "_max";
    mx.tripCount = len;
    LoopStmt m{OpCode::Max, {{s, 0, 1}}, {tmp, 0, 1}};
    m.reduction = true;
    mx.body.push_back(m);
    lp.loops.push_back(mx);

    Loop sub;
    sub.label = label + "_shift";
    sub.tripCount = len;
    sub.body.push_back({OpCode::Sub,
                        {{s, 0, 1}, {tmp, 0, 0}},
                        {s, 0, 1}});
    lp.loops.push_back(sub);

    // exp(): polynomial with data-dependent branching — scalar.
    Loop ex;
    ex.label = label + "_exp";
    ex.tripCount = len;
    ex.multipleExits = true;
    ex.body.push_back({OpCode::Exp, {{s, 0, 1}}, {s, 0, 1}});
    lp.loops.push_back(ex);

    Loop nrm;
    nrm.label = label + "_norm";
    nrm.tripCount = len;
    nrm.body.push_back({OpCode::Mul,
                        {{s, 0, 1}, {tmp, 0, 0}},
                        {s, 0, 1}});
    lp.loops.push_back(nrm);
}

LoopProgram
buildLlamaInference(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "LlaMA2 Inference";
    const std::uint64_t dim = scaled(96 * 1024, p.scale, 32768);
    const std::uint64_t layers = 8;
    const std::uint64_t tokens = 3;
    const std::uint64_t panels = 6;

    const ArrayId x = lp.addArray("activations", dim);
    const ArrayId tmp = lp.addArray("tmp", dim);
    const ArrayId att = lp.addArray("attn_scores", dim / 4);

    std::vector<ArrayId> wq, wk, wv, wo, w1, w2;
    for (std::uint64_t l = 0; l < layers; ++l) {
        const std::string ln = "L" + std::to_string(l);
        wq.push_back(lp.addArray(ln + ".wq", dim * 6));
        wk.push_back(lp.addArray(ln + ".wk", dim * 6));
        wv.push_back(lp.addArray(ln + ".wv", dim * 6));
        wo.push_back(lp.addArray(ln + ".wo", dim * 6));
        w1.push_back(lp.addArray(ln + ".w1", dim * 6));
        w2.push_back(lp.addArray(ln + ".w2", dim * 6));
    }

    for (std::uint64_t t = 0; t < tokens; ++t) {
        for (std::uint64_t l = 0; l < layers; ++l) {
            const std::string ln =
                "t" + std::to_string(t) + ".L" + std::to_string(l);
            appendNorm(lp, ln + ".rms1", x, tmp, dim);
            appendMatmul(lp, ln + ".wq", wq[l], x, tmp, dim, panels);
            appendMatmul(lp, ln + ".wk", wk[l], x, tmp, dim, panels);
            appendMatmul(lp, ln + ".wv", wv[l], x, tmp, dim, panels);
            appendSoftmax(lp, ln + ".attn", att, tmp, dim / 4);
            appendMatmul(lp, ln + ".wo", wo[l], tmp, x, dim, panels);
            appendNorm(lp, ln + ".rms2", x, tmp, dim);
            appendMatmul(lp, ln + ".w1", w1[l], x, tmp, dim, panels);
            appendMatmul(lp, ln + ".w2", w2[l], tmp, x, dim, panels);
        }
    }

    // Greedy sampling over the logits: argmax with early exit.
    Loop sample;
    sample.label = "sample";
    sample.tripCount = dim;
    sample.multipleExits = true;
    sample.body.push_back({OpCode::Max, {{x, 0, 1}}, {tmp, 0, 1}});
    lp.loops.push_back(sample);
    return lp;
}

LoopProgram
buildLlmTraining(const WorkloadParams &p)
{
    LoopProgram lp;
    lp.name = "LLM Training";
    const std::uint64_t dim = scaled(64 * 1024, p.scale, 32768);
    const std::uint64_t layers = 6;
    const std::uint64_t steps = 2;
    const std::uint64_t microbatches = 4;
    const std::uint64_t panels = 4;

    const ArrayId x = lp.addArray("activations", dim);
    const ArrayId g = lp.addArray("gradients", dim);
    const ArrayId tmp = lp.addArray("tmp", dim);

    std::vector<ArrayId> w, gw, m;
    for (std::uint64_t l = 0; l < layers; ++l) {
        const std::string ln = "L" + std::to_string(l);
        w.push_back(lp.addArray(ln + ".w", dim * 4));
        gw.push_back(lp.addArray(ln + ".gw", dim * 4));
        m.push_back(lp.addArray(ln + ".adam_m", dim * 4));
    }

    for (std::uint64_t s = 0; s < steps; ++s) {
        const std::string sn = "s" + std::to_string(s);
        for (std::uint64_t l = 0; l < layers; ++l) {
            const std::string ln = sn + ".L" + std::to_string(l);
            // Forward: one GEMM panel set.
            appendMatmul(lp, ln + ".fwd", w[l], x, tmp, dim, panels);
            // Backward: grad wrt input + grad wrt weights.
            appendMatmul(lp, ln + ".bwd_in", w[l], g, tmp, dim, panels);

            // Gradient accumulation over microbatches (adds).
            Loop acc;
            acc.label = ln + ".grad_acc";
            acc.tripCount = dim * 4;
            acc.repeat = microbatches;
            acc.body.push_back({OpCode::Add,
                                {{gw[l], 0, 1}, {g, 0, 0}},
                                {gw[l], 0, 1}});
            lp.loops.push_back(acc);

            // Optimizer update: m = b*m + g; w = w - lr*m (mostly
            // adds/sub with one scale multiply).
            Loop upd;
            upd.label = ln + ".adam";
            upd.tripCount = dim * 4;
            upd.body.push_back({OpCode::Add,
                                {{m[l], 0, 1}, {gw[l], 0, 1}},
                                {m[l], 0, 1}});
            upd.body.push_back({OpCode::Sub,
                                {{w[l], 0, 1}, {m[l], 0, 1}},
                                {w[l], 0, 1}});
            upd.body.push_back({OpCode::Sub,
                                {{gw[l], 0, 1}, {gw[l], 0, 1}},
                                {gw[l], 0, 1}});
            lp.loops.push_back(upd);
        }

        // Loss + metric pass with data-dependent control (scalar).
        Loop loss;
        loss.label = sn + ".loss";
        loss.tripCount = dim * 2;
        loss.multipleExits = true;
        loss.body.push_back({OpCode::Sub,
                             {{x, 0, 1}, {g, 0, 1}},
                             {tmp, 0, 1}});
        lp.loops.push_back(loss);
    }
    return lp;
}

} // namespace

std::vector<WorkloadId>
allWorkloads()
{
    return {WorkloadId::Aes, WorkloadId::XorFilter, WorkloadId::Heat3d,
            WorkloadId::Jacobi1d, WorkloadId::LlamaInference,
            WorkloadId::LlmTraining};
}

std::string
workloadName(WorkloadId id)
{
    switch (id) {
      case WorkloadId::Aes: return "AES";
      case WorkloadId::XorFilter: return "XOR Filter";
      case WorkloadId::Heat3d: return "heat-3d";
      case WorkloadId::Jacobi1d: return "jacobi-1d";
      case WorkloadId::LlamaInference: return "LlaMA2 Inference";
      case WorkloadId::LlmTraining: return "LLM Training";
    }
    return "?";
}

LoopProgram
buildWorkload(WorkloadId id, const WorkloadParams &p)
{
    switch (id) {
      case WorkloadId::Aes:
        return buildAes(p);
      case WorkloadId::XorFilter:
        return buildXorFilter(p);
      case WorkloadId::Heat3d:
        return buildHeat3d(p);
      case WorkloadId::Jacobi1d:
        return buildJacobi1d(p);
      case WorkloadId::LlamaInference:
        return buildLlamaInference(p);
      case WorkloadId::LlmTraining:
        return buildLlmTraining(p);
    }
    throw std::invalid_argument("buildWorkload: bad id");
}

std::string
caseStudyName(CaseStudyClass c)
{
    switch (c) {
      case CaseStudyClass::IoIntensive: return "I/O-Intensive";
      case CaseStudyClass::ComputeIntensive:
        return "More Compute-Intensive";
      case CaseStudyClass::Mixed: return "Mixed";
    }
    return "?";
}

LoopProgram
buildCaseStudy(CaseStudyClass c, const WorkloadParams &p)
{
    LoopProgram lp;
    switch (c) {
      case CaseStudyClass::IoIntensive: {
        // Bitmap-index scan: one pass of bulk bitwise predicates
        // over a large table (database scan / bitmap intersection).
        lp.name = "I/O-Intensive";
        const std::uint64_t n = scaled(1536 * 1024, p.scale);
        const ArrayId bits_a = lp.addArray("bitmap_a", n);
        const ArrayId bits_b = lp.addArray("bitmap_b", n);
        const ArrayId out = lp.addArray("out", n);
        Loop scan;
        scan.label = "bitmap_scan";
        scan.tripCount = n;
        scan.body.push_back({OpCode::And,
                             {{bits_a, 0, 1}, {bits_b, 0, 1}},
                             {out, 0, 1}});
        scan.body.push_back({OpCode::Or,
                             {{out, 0, 1}, {bits_a, 0, 1}},
                             {out, 0, 1}});
        lp.loops.push_back(scan);
        break;
      }
      case CaseStudyClass::ComputeIntensive: {
        // Encryption + GEMM blend with heavy per-byte compute and a
        // control-intensive key-schedule (scalar) region.
        lp.name = "More Compute-Intensive";
        const std::uint64_t n = scaled(256 * 1024, p.scale);
        const ArrayId a = lp.addArray("A", n);
        const ArrayId b = lp.addArray("B", n);
        const ArrayId o = lp.addArray("O", n);
        Loop k;
        k.label = "crypto_gemm";
        k.tripCount = n;
        k.repeat = 6;
        k.body.push_back({OpCode::Mul,
                          {{a, 0, 1}, {b, 0, 1}},
                          {o, 0, 1}});
        k.body.push_back({OpCode::Add,
                          {{o, 0, 1}, {a, 0, 1}},
                          {o, 0, 1}});
        k.body.push_back({OpCode::Xor,
                          {{o, 0, 1}, {b, 0, 1}},
                          {o, 0, 1}});
        lp.loops.push_back(k);
        Loop sched;
        sched.label = "key_schedule";
        sched.tripCount = n / 16;
        sched.carriedDependence = true;
        sched.repeat = 6;
        sched.body.push_back({OpCode::Xor,
                              {{a, 0, 1}, {a, 1, 1}},
                              {a, 0, 1}});
        lp.loops.push_back(sched);
        break;
      }
      case CaseStudyClass::Mixed: {
        // Aggregation: scan + predicate + grouped accumulate with a
        // scalar merge phase (database aggregation / sort flavor).
        lp.name = "Mixed";
        const std::uint64_t n = scaled(768 * 1024, p.scale);
        const ArrayId vals = lp.addArray("values", n);
        const ArrayId sel = lp.addArray("selected", n);
        const ArrayId agg = lp.addArray("aggregate", n / 8);
        Loop scan;
        scan.label = "agg_scan";
        scan.tripCount = n;
        scan.body.push_back({OpCode::CmpLt,
                             {{vals, 0, 1}, {vals, 0, 0}},
                             {sel, 0, 1}});
        scan.body.push_back({OpCode::And,
                             {{vals, 0, 1}, {sel, 0, 1}},
                             {sel, 0, 1}});
        LoopStmt fold{OpCode::Add, {{sel, 0, 1}}, {agg, 0, 1}};
        fold.reduction = true;
        scan.body.push_back(fold);
        lp.loops.push_back(scan);
        Loop merge;
        merge.label = "agg_merge";
        merge.tripCount = n / 8;
        merge.multipleExits = true;
        merge.body.push_back({OpCode::Add,
                              {{agg, 0, 1}, {agg, 1, 1}},
                              {agg, 0, 1}});
        lp.loops.push_back(merge);
        break;
      }
    }
    return lp;
}

} // namespace conduit
