/**
 * @file
 * Workload generators (§5.4, Table 3).
 *
 * Each generator expresses one of the paper's six data-intensive
 * applications as a loop program over INT8-quantized arrays (SSD
 * compute resources lack native floating point, §5.4). Kernels are
 * written so that, after auto-vectorization, the instruction stream
 * matches the workload's Table 3 characteristics: vectorizable code
 * fraction, operand reuse, and the low/medium/high-latency operation
 * mix. Dataset sizes are scaled so benches finish in seconds; ratios
 * that drive offloading behaviour (reuse, mix, dependence structure)
 * are preserved.
 *
 * Three extra kernels back the Fig. 4 case study: an I/O-intensive
 * bitmap scan, a compute-intensive encryption/GEMM blend, and a
 * mixed aggregation kernel.
 */

#ifndef CONDUIT_WORKLOADS_WORKLOADS_HH
#define CONDUIT_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "src/ir/loop_ir.hh"

namespace conduit
{

/** The six evaluated applications. */
enum class WorkloadId
{
    Aes,
    XorFilter,
    Heat3d,
    Jacobi1d,
    LlamaInference,
    LlmTraining,
};

/** Fig. 4 case-study categories. */
enum class CaseStudyClass
{
    IoIntensive,
    ComputeIntensive,
    Mixed,
};

/** Generator knobs. */
struct WorkloadParams
{
    /** Linear dataset-size multiplier (1.0 = default bench scale). */
    double scale = 1.0;
};

/** All six workloads in presentation order. */
std::vector<WorkloadId> allWorkloads();

/** Display name matching the paper's figures. */
std::string workloadName(WorkloadId id);

/** Build the loop program for a workload. */
LoopProgram buildWorkload(WorkloadId id, const WorkloadParams &p = {});

/** Build a Fig. 4 case-study kernel. */
LoopProgram buildCaseStudy(CaseStudyClass c, const WorkloadParams &p = {});

std::string caseStudyName(CaseStudyClass c);

} // namespace conduit

#endif // CONDUIT_WORKLOADS_WORKLOADS_HH
