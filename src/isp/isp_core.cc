#include "src/isp/isp_core.hh"

#include <algorithm>
#include <cmath>

namespace conduit
{

IspCore::IspCore(const IspConfig &cfg, const ComputeModelConfig &model,
                 StatSet *stats)
    : cfg_(cfg), model_(model), core_("isp.core"), stats_(stats)
{
    if (stats_) {
        statOps_ = &stats_->counter("isp.ops");
        statBusyPs_ = &stats_->counter("isp.busy_ps");
    }
}

double
IspCore::cyclesPerSimd(OpCode op) const
{
    switch (latencyClass(op)) {
      case LatencyClass::Low:
        return model_.ispCyclesPerSimdLow;
      case LatencyClass::Medium:
        return model_.ispCyclesPerSimdMed;
      case LatencyClass::High:
        return model_.ispCyclesPerSimdHigh;
    }
    return model_.ispCyclesPerSimdHigh;
}

Tick
IspCore::estimate(OpCode op, std::uint16_t elem_bits, std::uint32_t lanes,
                  std::uint32_t num_srcs, bool vectorized) const
{
    const double ps_per_cycle =
        static_cast<double>(kPsPerS) / cfg_.clockHz;
    if (!vectorized) {
        const double cycles =
            static_cast<double>(lanes) * model_.ispScalarCyclesPerElem;
        return static_cast<Tick>(cycles * ps_per_cycle) + 1;
    }
    const std::uint32_t ebytes =
        std::max<std::uint32_t>(1, elem_bits / 8);
    const std::uint32_t simd_lanes =
        std::max<std::uint32_t>(1, cfg_.simdBytes / ebytes);
    const std::uint64_t issues = (lanes + simd_lanes - 1) / simd_lanes;
    const double compute_ps =
        static_cast<double>(issues) * cyclesPerSimd(op) * ps_per_cycle;
    // Memory-bound floor: all operands and the result stream through
    // the core's load/store path. High-latency operations (multiply,
    // transcendental, permutation) produce widened intermediates and
    // requantization traffic, doubling the streamed volume.
    std::uint64_t bytes =
        static_cast<std::uint64_t>(lanes) * ebytes * (num_srcs + 1);
    if (latencyClass(op) == LatencyClass::High)
        bytes *= 2;
    const double stream_ps = static_cast<double>(
        transferTicks(bytes, cfg_.streamBytesPerSec));
    return static_cast<Tick>(std::max(compute_ps, stream_ps)) + 1;
}

ServiceInterval
IspCore::execute(OpCode op, std::uint16_t elem_bits, std::uint32_t lanes,
                 std::uint32_t num_srcs, bool vectorized, Tick earliest)
{
    const Tick dur = estimate(op, elem_bits, lanes, num_srcs, vectorized);
    auto iv = core_.acquire(earliest, dur);
    if (statOps_) {
        statOps_->inc();
        statBusyPs_->inc(dur);
    }
    return iv;
}

} // namespace conduit
