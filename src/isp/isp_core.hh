/**
 * @file
 * In-storage-processing compute model: the SSD controller's embedded
 * core repurposed for offloaded computation (§2.2).
 *
 * One ARM Cortex-R8-class core (of the controller's five; the rest
 * run the FTL, host protocol and Conduit's offloader, per the §4.3.2
 * footnote) executes vector work through its 32-byte MVE SIMD
 * datapath. For bulk vectors the core is memory-bound: sustained
 * throughput is capped by its streaming bandwidth to SSD DRAM.
 * Residual scalar instructions (non-vectorized code, §7) run on the
 * scalar pipeline at a configurable CPI.
 */

#ifndef CONDUIT_ISP_ISP_CORE_HH
#define CONDUIT_ISP_ISP_CORE_HH

#include <cstdint>

#include "src/ir/opcode.hh"
#include "src/sim/config.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"

namespace conduit
{

/**
 * Timing model for the controller compute core.
 */
class IspCore
{
  public:
    IspCore(const IspConfig &cfg, const ComputeModelConfig &model,
            StatSet *stats = nullptr);

    /** The general-purpose core executes the full opcode set. */
    static bool supports(OpCode) { return true; }

    /**
     * Execute a vector (or residual scalar) fragment on the core.
     *
     * @param op Operation.
     * @param elem_bits Element width.
     * @param lanes Element count.
     * @param num_srcs Source operand count (memory traffic model).
     * @param vectorized False for residual scalar code.
     * @param earliest Earliest start.
     */
    ServiceInterval execute(OpCode op, std::uint16_t elem_bits,
                            std::uint32_t lanes, std::uint32_t num_srcs,
                            bool vectorized, Tick earliest);

    /** Contention-free latency estimate for the cost function. */
    Tick estimate(OpCode op, std::uint16_t elem_bits,
                  std::uint32_t lanes, std::uint32_t num_srcs,
                  bool vectorized) const;

    /** Pending-work backlog (delay_queue input). */
    Tick backlog(Tick now) const { return core_.backlog(now); }

    Tick busyTime() const { return core_.busyTime(); }

    void reset() { core_.reset(); }

    /** Mutable calendar state for DeviceImage snapshots. */
    struct Image
    {
        Server core;
    };

    Image capture() const { return Image{core_}; }
    void restore(const Image &img) { core_ = img.core; }

  private:
    double cyclesPerSimd(OpCode op) const;

    // lint: transient-begin(immutable configs plus StatSet wiring, rebuilt/re-bound by the constructor on restore)
    IspConfig cfg_;
    ComputeModelConfig model_;
    // lint: transient-end
    Server core_;
    // lint: transient(wiring into the owning Engine's StatSet, re-bound on restore)
    StatSet *stats_;

    // Hot-path counters resolved once: a StatSet lookup per op costs
    // a string construction plus a map walk.
    // lint: transient-begin(cached StatSet pointers; the counters survive via StatSet::restoreFrom)
    Counter *statOps_ = nullptr;
    Counter *statBusyPs_ = nullptr;
    // lint: transient-end
};

} // namespace conduit

#endif // CONDUIT_ISP_ISP_CORE_HH
