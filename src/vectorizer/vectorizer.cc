#include "src/vectorizer/vectorizer.hh"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

namespace conduit
{

/**
 * Internal emission state: the output instruction stream, the
 * last-writer table used for dependence metadata, and the access
 * counters behind the reuse/op-mix statistics.
 */
struct Vectorizer::Emitter
{
    const VectorizeOptions &opts;
    const LoopProgram &lp;
    Layout layout;

    Program out;
    VectorizationReport report;

    /** page -> id of the last instruction that wrote it. */
    std::unordered_map<std::uint64_t, InstrId> lastWriter;

    /** page -> number of read touches (reuse statistic). */
    std::unordered_map<std::uint64_t, std::uint64_t> readTouches;

    double elemOpsVector = 0.0;
    double elemOpsScalar = 0.0;
    double elemOpsLow = 0.0;
    double elemOpsMed = 0.0;
    double elemOpsHigh = 0.0;

    Emitter(const VectorizeOptions &o, const LoopProgram &p)
        : opts(o), lp(p)
    {
    }

    /** Page span covered by @p ref over chunk iterations [lo, hi). */
    Operand
    operandFor(const ArrayRef &ref, std::uint64_t lo, std::uint64_t hi) const
    {
        const ArrayDecl &arr = lp.arrays[ref.array];
        const std::uint64_t ebytes = std::max<std::uint64_t>(
            1, arr.elemBits / 8);
        // First and last element indices touched by the chunk.
        const std::int64_t first = ref.offset +
            static_cast<std::int64_t>(lo) * ref.stride;
        const std::int64_t last = ref.offset +
            static_cast<std::int64_t>(hi - 1) * ref.stride;
        // Clamp to the array bounds: small arrays (lookup tables,
        // broadcast scalars) are referenced from any chunk offset.
        const auto last_elem =
            static_cast<std::int64_t>(arr.elems) - 1;
        const std::int64_t min_e = std::clamp<std::int64_t>(
            std::min(first, last), 0, last_elem);
        const std::int64_t max_e = std::clamp<std::int64_t>(
            std::max(first, last), min_e, last_elem);
        const std::uint64_t byte_lo =
            static_cast<std::uint64_t>(min_e) * ebytes;
        const std::uint64_t byte_hi =
            (static_cast<std::uint64_t>(max_e) + 1) * ebytes;
        const std::uint64_t page_lo = byte_lo / opts.pageBytes;
        const std::uint64_t page_hi =
            (byte_hi + opts.pageBytes - 1) / opts.pageBytes;
        Operand op;
        op.basePage = layout.basePage[ref.array] + page_lo;
        op.pageCount = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, page_hi - page_lo));
        return op;
    }

    /** Record RAW/WAW dependences and update the last-writer table. */
    void
    wireDeps(VecInstruction &vi)
    {
        std::unordered_set<InstrId> dep_set;
        auto scan = [&](const Operand &o) {
            for (std::uint64_t p = o.basePage;
                 p < o.basePage + o.pageCount; ++p) {
                auto it = lastWriter.find(p);
                if (it != lastWriter.end() && it->second != vi.id)
                    dep_set.insert(it->second);
                if (dep_set.size() >= opts.maxDeps)
                    return;
            }
        };
        for (const auto &s : vi.srcs)
            scan(s);
        scan(vi.dst); // WAW ordering
        // lint: allow(unordered-iter, copied then std::sort'ed on the next line; final order is value-determined)
        vi.deps.assign(dep_set.begin(), dep_set.end());
        std::sort(vi.deps.begin(), vi.deps.end());
        for (std::uint64_t p = vi.dst.basePage;
             p < vi.dst.basePage + vi.dst.pageCount; ++p) {
            lastWriter[p] = vi.id;
        }
    }

    /** Count read touches for the reuse statistic. */
    void
    touch(const VecInstruction &vi)
    {
        for (const auto &s : vi.srcs) {
            for (std::uint64_t p = s.basePage;
                 p < s.basePage + s.pageCount; ++p) {
                ++readTouches[p];
            }
        }
    }

    /** Account element-op mix statistics for an emitted instruction. */
    void
    account(const VecInstruction &vi)
    {
        const double ops = vi.lanes;
        if (vi.vectorized)
            elemOpsVector += ops;
        else
            elemOpsScalar += ops;
        switch (latencyClass(vi.op)) {
          case LatencyClass::Low:
            elemOpsLow += ops;
            break;
          case LatencyClass::Medium:
            elemOpsMed += ops;
            break;
          case LatencyClass::High:
            elemOpsHigh += ops;
            break;
        }
    }

    /** Emit one instruction; returns its id. */
    InstrId
    emit(OpCode op, std::uint16_t elem_bits, std::uint32_t lanes,
         std::vector<Operand> srcs, Operand dst, bool vectorized,
         bool indirect = false)
    {
        VecInstruction vi;
        vi.id = out.instrs.size();
        vi.op = op;
        vi.elemBits = elem_bits;
        vi.lanes = lanes;
        vi.srcs = std::move(srcs);
        vi.dst = dst;
        vi.vectorized = vectorized;
        vi.indirect = indirect;
        wireDeps(vi);
        touch(vi);
        account(vi);
        out.instrs.push_back(std::move(vi));
        return out.instrs.back().id;
    }
};

bool
Vectorizer::loopIllegal(const Loop &loop, std::string &why)
{
    if (loop.carriedDependence) {
        why = "loop-carried data dependence";
        return true;
    }
    if (loop.multipleExits) {
        why = "multiple exits / complex control flow";
        return true;
    }
    if (loop.atomics) {
        why = "atomic or synchronized operations";
        return true;
    }
    if (loop.tripCount == 0) {
        why = "unknown or zero trip count";
        return true;
    }
    return false;
}

bool
Vectorizer::stmtIllegal(const LoopStmt &stmt, std::string &why)
{
    for (const auto &s : stmt.srcs) {
        if (s.indirect) {
            why = "indirect (gathered) memory access";
            return true;
        }
    }
    if (stmt.dst.indirect) {
        why = "indirect (scattered) memory access";
        return true;
    }
    return false;
}

void
Vectorizer::emitReduction(Emitter &em, const Loop &loop,
                          const LoopStmt &stmt, std::uint16_t elem_bits)
{
    const auto &opts = em.opts;
    const std::uint64_t trip = loop.tripCount;
    const std::uint64_t width = opts.vectorLanes;
    const std::uint64_t chunks = (trip + width - 1) / width;
    const std::uint64_t partials =
        std::min<std::uint64_t>(opts.reductionPartials,
                                std::max<std::uint64_t>(1, chunks));

    // One page-sized partial accumulator per slot; chunk i folds into
    // slot i % partials, forming `partials` independent chains.
    std::vector<Operand> slot(partials);
    for (auto &s : slot) {
        s.basePage = em.layout.alloc(opts.pageBytes, opts.pageBytes);
        s.pageCount = 1;
    }

    for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t lo = c * width;
        const std::uint64_t hi = std::min(trip, lo + width);
        const auto lanes = static_cast<std::uint32_t>(hi - lo);
        std::vector<Operand> srcs;
        for (const auto &r : stmt.srcs)
            srcs.push_back(em.operandFor(r, lo, hi));
        Operand &acc = slot[c % partials];
        srcs.push_back(acc); // accumulate into the slot
        em.emit(stmt.op == OpCode::Mul ? OpCode::Mac : stmt.op,
                elem_bits, lanes, std::move(srcs), acc, true);
    }

    // Binary combine tree over the live slots, then fold the final
    // partial vector into the scalar destination.
    std::uint64_t live = partials;
    while (live > 1) {
        const std::uint64_t half = (live + 1) / 2;
        for (std::uint64_t i = 0; i + half < live; ++i) {
            em.emit(OpCode::Add, elem_bits,
                    static_cast<std::uint32_t>(
                        std::min<std::uint64_t>(width, trip)),
                    {slot[i], slot[i + half]}, slot[i], true);
        }
        live = half;
    }
    Operand dst = em.operandFor(stmt.dst, 0, 1);
    // Final lane-fold is a short serial step on the scalar core.
    em.emit(OpCode::Add, elem_bits,
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                opts.pageBytes, trip)),
            {slot[0]}, dst, false);
}

VectorizedProgram
Vectorizer::run(const LoopProgram &lp) const
{
    Emitter em(opts_, lp);
    em.out.name = lp.name;
    em.out.pageBytes = opts_.pageBytes;

    // Lay out all arrays page-aligned, in declaration order.
    em.layout.basePage.resize(lp.arrays.size());
    for (std::size_t a = 0; a < lp.arrays.size(); ++a) {
        em.layout.basePage[a] =
            em.layout.alloc(lp.arrays[a].bytes(), opts_.pageBytes);
    }

    for (const auto &loop : lp.loops) {
        std::string why;
        const bool illegal = loopIllegal(loop, why);
        if (illegal) {
            std::ostringstream os;
            os << "loop " << loop.label << ": not vectorized: " << why;
            em.report.remarks.push_back(os.str());
        } else {
            std::ostringstream os;
            os << "loop " << loop.label << ": vectorized, width "
               << opts_.vectorLanes;
            em.report.remarks.push_back(os.str());
        }

        for (std::uint64_t rep = 0; rep < loop.repeat; ++rep) {
            for (const auto &stmt : loop.body) {
                std::string stmt_why;
                const bool stmt_scalar = illegal ||
                    stmtIllegal(stmt, stmt_why) ||
                    (!opts_.partialVectorization &&
                     (stmt.conditional || stmt.reduction));
                if (!illegal && !stmt_why.empty() && rep == 0) {
                    std::ostringstream os;
                    os << "loop " << loop.label
                       << ": statement not vectorized: " << stmt_why;
                    em.report.remarks.push_back(os.str());
                }

                const ArrayDecl &dst_arr = lp.arrays[stmt.dst.array];
                const std::uint16_t ebits = dst_arr.elemBits;
                const std::uint64_t trip = loop.tripCount;
                const std::uint64_t width = opts_.vectorLanes;

                if (stmt.reduction && !stmt_scalar) {
                    emitReduction(em, loop, stmt, ebits);
                    continue;
                }

                for (std::uint64_t lo = 0; lo < trip; lo += width) {
                    const std::uint64_t hi = std::min(trip, lo + width);
                    const auto lanes =
                        static_cast<std::uint32_t>(hi - lo);
                    std::vector<Operand> srcs;
                    srcs.reserve(stmt.srcs.size());
                    for (const auto &r : stmt.srcs)
                        srcs.push_back(em.operandFor(r, lo, hi));
                    Operand dst = em.operandFor(stmt.dst, lo, hi);

                    if (stmt_scalar) {
                        bool has_indirect = stmt.dst.indirect;
                        for (const auto &r : stmt.srcs)
                            has_indirect |= r.indirect;
                        em.emit(stmt.op, ebits, lanes, std::move(srcs),
                                dst, false, has_indirect);
                        continue;
                    }

                    if (stmt.conditional) {
                        // If-conversion: mask = cmp(src0, dst);
                        // tmp = op(...); dst = select(mask, tmp, dst).
                        Operand mask;
                        mask.basePage = em.layout.alloc(
                            static_cast<std::uint64_t>(lanes) *
                                ebits / 8,
                            opts_.pageBytes);
                        mask.pageCount = std::max<std::uint32_t>(
                            1, lanes * ebits / 8 / opts_.pageBytes);
                        Operand tmp;
                        tmp.basePage = em.layout.alloc(
                            static_cast<std::uint64_t>(lanes) *
                                ebits / 8,
                            opts_.pageBytes);
                        tmp.pageCount = mask.pageCount;
                        em.emit(OpCode::CmpLt, ebits, lanes,
                                {srcs.front(), dst}, mask, true);
                        em.emit(stmt.op, ebits, lanes, srcs, tmp, true);
                        em.emit(OpCode::Select, ebits, lanes,
                                {mask, tmp, dst}, dst, true);
                        continue;
                    }

                    em.emit(stmt.op, ebits, lanes, std::move(srcs),
                            dst, true);
                }
            }
        }
    }

    // Finalize report. Static code coverage counts each loop-body
    // statement once (Table 3's "vectorizable code %"); the dynamic
    // fraction weights by executed element-operations.
    std::uint64_t static_total = 0;
    std::uint64_t static_vec = 0;
    for (const auto &loop : lp.loops) {
        std::string why;
        const bool illegal = loopIllegal(loop, why);
        for (const auto &stmt : loop.body) {
            ++static_total;
            if (!illegal && !stmtIllegal(stmt, why))
                ++static_vec;
        }
    }
    em.report.vectorizableFraction = static_total == 0
        ? 0.0
        : static_cast<double>(static_vec) /
            static_cast<double>(static_total);
    const double total = em.elemOpsVector + em.elemOpsScalar;
    em.report.dynamicVectorFraction =
        total > 0 ? em.elemOpsVector / total : 0.0;
    std::uint64_t touches = 0;
    // lint: allow(unordered-iter, integer sum over all values; commutative and exact in any order)
    for (const auto &[page, n] : em.readTouches)
        touches += n;
    em.report.avgReuse = em.readTouches.empty()
        ? 0.0
        : static_cast<double>(touches) /
            static_cast<double>(em.readTouches.size());
    if (total > 0) {
        em.report.lowFraction = em.elemOpsLow / total;
        em.report.medFraction = em.elemOpsMed / total;
        em.report.highFraction = em.elemOpsHigh / total;
    }
    for (const auto &vi : em.out.instrs) {
        if (vi.vectorized)
            ++em.report.vectorInstrs;
        else
            ++em.report.scalarInstrs;
    }
    em.out.footprintPages = em.layout.nextPage;

    return {std::move(em.out), std::move(em.report)};
}

} // namespace conduit
