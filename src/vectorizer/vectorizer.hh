/**
 * @file
 * Compile-time loop auto-vectorization (§4.3.1).
 *
 * This stage plays the role of the paper's custom LLVM pass invoked
 * with -force-vector-width=4096 -force-vector-interleave=1. It:
 *
 *  1. analyses each loop for vectorization legality (loop-carried
 *     dependences, multiple exits, atomics, indirect accesses — the
 *     §7 failure list),
 *  2. strip-mines legal loops into 4096-lane SIMD operations whose
 *     operands are page-aligned runs of logical pages (matching the
 *     FTL's L2P granularity),
 *  3. if-converts conditional statements into compare+select pairs
 *     (partial vectorization),
 *  4. vectorizes reductions via parallel partial accumulators plus a
 *     combine tree,
 *  5. emits residual scalar instructions for everything else (they
 *     will execute on the ISP core), and
 *  6. embeds the metadata (operation type, operand pages, element
 *     size, vector length, dependences) that the runtime offloader
 *     reads, plus -Rpass-style remarks for the user.
 */

#ifndef CONDUIT_VECTORIZER_VECTORIZER_HH
#define CONDUIT_VECTORIZER_VECTORIZER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/instruction.hh"
#include "src/ir/loop_ir.hh"

namespace conduit
{

/** Vectorizer tuning knobs. */
struct VectorizeOptions
{
    std::uint32_t vectorLanes = 4096;
    std::uint32_t pageBytes = 4096;

    /** Allow if-conversion / residual-scalar mixing inside a loop. */
    bool partialVectorization = true;

    /** Max parallel partial accumulators for reductions. */
    std::uint32_t reductionPartials = 64;

    /** Cap on recorded producer dependences per instruction. */
    std::uint32_t maxDeps = 12;
};

/** Vectorization summary (drives Table 3 and the -Rpass remarks). */
struct VectorizationReport
{
    std::uint64_t vectorInstrs = 0;
    std::uint64_t scalarInstrs = 0;

    /**
     * Fraction of static kernel code (loop-body statements) that was
     * vectorized — the "Vectorizable Code %" of Table 3.
     */
    double vectorizableFraction = 0.0;

    /** Dynamic element-operations executed as SIMD vs total. */
    double dynamicVectorFraction = 0.0;

    /** Mean times each touched operand page is read. */
    double avgReuse = 0.0;

    /** Element-op mix by latency class (fractions summing to 1). */
    double lowFraction = 0.0;
    double medFraction = 0.0;
    double highFraction = 0.0;

    /** Human-readable per-loop outcomes. */
    std::vector<std::string> remarks;
};

/** Result of running the compile-time stage on a kernel. */
struct VectorizedProgram
{
    Program program;
    VectorizationReport report;
};

/**
 * The auto-vectorizer.
 *
 * Deterministic: the same LoopProgram always lowers to the same
 * instruction stream.
 */
class Vectorizer
{
  public:
    explicit Vectorizer(VectorizeOptions opts = {}) : opts_(opts) {}

    /** Lower @p lp to a vectorized instruction stream. */
    VectorizedProgram run(const LoopProgram &lp) const;

  private:
    struct Layout
    {
        std::vector<std::uint64_t> basePage; // per array
        std::uint64_t nextPage = 0;

        std::uint64_t
        alloc(std::uint64_t bytes, std::uint32_t page_bytes)
        {
            const std::uint64_t pages =
                (bytes + page_bytes - 1) / page_bytes;
            const std::uint64_t base = nextPage;
            nextPage += pages == 0 ? 1 : pages;
            return base;
        }
    };

    struct Emitter;

    /** True if the loop as a whole can never be vectorized. */
    static bool loopIllegal(const Loop &loop, std::string &why);

    /** True if the statement must stay scalar inside a legal loop. */
    static bool stmtIllegal(const LoopStmt &stmt, std::string &why);

    /**
     * Vectorize a reduction statement via parallel partial
     * accumulators plus a binary combine tree.
     */
    static void emitReduction(Emitter &em, const Loop &loop,
                              const LoopStmt &stmt,
                              std::uint16_t elem_bits);

    VectorizeOptions opts_;
};

} // namespace conduit

#endif // CONDUIT_VECTORIZER_VECTORIZER_HH
