#include "src/reliability/ecc_engine.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace conduit::reliability
{

EccEngine::EccEngine(const ReliabilityConfig &cfg) : cfg_(cfg)
{
    if (!(cfg_.hardDecodeRber > 0.0))
        throw std::invalid_argument(
            "EccEngine: hardDecodeRber must be positive");
    if (!(cfg_.retryRberFactor > 1.0))
        throw std::invalid_argument(
            "EccEngine: retryRberFactor must exceed 1");
    logRetryFactor_ = std::log(cfg_.retryRberFactor);
}

ReadPlan
EccEngine::plan(double rber) const
{
    ReadPlan p;
    if (!(rber > cfg_.hardDecodeRber))
        return p;

    // Smallest k with rber <= hard * factor^k; the epsilon keeps an
    // exact tier boundary in the cheaper tier.
    const double need =
        std::log(rber / cfg_.hardDecodeRber) / logRetryFactor_;
    const auto k = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(need - 1e-12)));
    p.retries = std::min(k, cfg_.maxReadRetries);
    p.extraTicks = static_cast<Tick>(p.retries) * cfg_.retryTicks;
    if (k > cfg_.maxReadRetries) {
        p.soft = true;
        p.extraTicks += cfg_.softDecodeTicks;
    }
    if (rber > cfg_.uncorrectableRber)
        p.uncorrectable = true;
    return p;
}

} // namespace conduit::reliability
