#include "src/reliability/reliability.hh"

#include <algorithm>

namespace conduit::reliability
{

ReliabilityModel::ReliabilityModel(const NandConfig &nand,
                                   const ReliabilityConfig &cfg,
                                   std::uint64_t seed, StatSet *stats)
    : cfg_(cfg), rber_(cfg, seed, nand.totalBlocks()), ecc_(cfg)
{
    BlockWear init;
    init.eraseCount = cfg_.preWearCycles;
    init.retentionOffsetSeconds =
        std::max(0.0, cfg_.retentionDays) * 86400.0;
    wear_.assign(static_cast<std::size_t>(nand.totalBlocks()), init);
    if (stats) {
        statRetriedReads_ = &stats->counter("rel.retried_reads");
        statEccRetries_ = &stats->counter("rel.ecc_retries");
        statSoftDecodes_ = &stats->counter("rel.soft_decodes");
        statUncorrectable_ = &stats->counter("rel.uncorrectable_reads");
        statRetiredBlocks_ = &stats->counter("rel.retired_blocks");
        statScrubPasses_ = &stats->counter("rel.scrub_passes");
        statScrubRefreshes_ = &stats->counter("rel.scrub_refreshes");
    }
}

double
ReliabilityModel::retentionSecondsOf(std::uint64_t block,
                                     Tick now) const
{
    const BlockWear &w = wear_[block];
    const Tick since = now > w.programmedAt ? now - w.programmedAt : 0;
    return w.retentionOffsetSeconds + ticksToSeconds(since);
}

double
ReliabilityModel::rberOf(std::uint64_t block, Tick now) const
{
    const BlockWear &w = wear_[block];
    return rber_.rber(block, w.eraseCount,
                      retentionSecondsOf(block, now));
}

Tick
ReliabilityModel::onRead(std::uint64_t block, Tick now)
{
    BlockWear &w = wear_[block];
    // Memoized per (erase, retention bucket) — see BlockWear::plan.
    // Retention is evaluated at the bucket start, keeping exp/pow
    // off the per-read path; noteErase invalidates the memo.
    const Tick bucket = now / kPenaltyBucketTicks;
    if (w.planBucket != bucket) {
        w.plan = ecc_.plan(rberOf(block, bucket * kPenaltyBucketTicks));
        w.planBucket = bucket;
    }
    const ReadPlan plan = w.plan;
    // Anything beyond the free hard decode counts — with
    // maxReadRetries = 0 a plan can be soft-only (retries == 0).
    if (plan.retries == 0 && !plan.soft && !plan.uncorrectable)
        return 0;
    ++stats_.retriedReads;
    stats_.eccRetries += plan.retries;
    if (statRetriedReads_) {
        statRetriedReads_->inc();
        statEccRetries_->inc(plan.retries);
    }
    if (plan.soft) {
        ++stats_.softDecodes;
        if (statSoftDecodes_)
            statSoftDecodes_->inc();
        // Only ladder-exhausting reads vote for retirement: plain
        // retries are routine on a uniformly aged device, and
        // counting them would retire the entire pool.
        if (++w.softReads >= cfg_.retireSoftThreshold)
            w.retirePending = true;
    }
    if (plan.uncorrectable) {
        ++stats_.uncorrectableReads;
        w.retirePending = true;
        if (statUncorrectable_)
            statUncorrectable_->inc();
    }
    return plan.extraTicks;
}

void
ReliabilityModel::noteErase(std::uint64_t block, Tick now)
{
    BlockWear &w = wear_[block];
    ++w.eraseCount;
    ++totalErases_;
    w.programmedAt = now;
    w.retentionOffsetSeconds = 0.0;
    w.softReads = 0; // correction history restarts with fresh data
    w.planBucket = kMaxTick; // read-plan memo is stale
}

void
ReliabilityModel::markRetired(std::uint64_t block)
{
    BlockWear &w = wear_[block];
    if (w.retired)
        return;
    w.retired = true;
    w.retirePending = false;
    ++stats_.retiredBlocks;
    if (statRetiredBlocks_)
        statRetiredBlocks_->inc();
}

bool
ReliabilityModel::scrubDue(std::uint64_t block, Tick now) const
{
    const BlockWear &w = wear_[block];
    if (w.retired)
        return false;
    return rberOf(block, now) > cfg_.scrubRberThreshold;
}

void
ReliabilityModel::notePass()
{
    ++stats_.scrubPasses;
    if (statScrubPasses_)
        statScrubPasses_->inc();
}

void
ReliabilityModel::noteRefresh()
{
    ++stats_.scrubRefreshes;
    if (statScrubRefreshes_)
        statScrubRefreshes_->inc();
}

void
ReliabilityModel::noteLevelMigration()
{
    ++stats_.wearLevelMigrations;
}

Tick
ReliabilityModel::typicalReadPenalty(Tick now) const
{
    if (wear_.empty())
        return 0;
    // Memoized per (erase count, coarse time bucket): retention
    // moves on a days scale, so evaluating it at the bucket start
    // keeps the exp/pow off the per-instruction path without
    // visibly quantizing the estimate.
    const Tick bucket = now / kPenaltyBucketTicks;
    if (bucket == penaltyBucket_ && totalErases_ == penaltyErases_)
        return penalty_;
    const double avg_wear = static_cast<double>(cfg_.preWearCycles) +
        static_cast<double>(totalErases_) /
            static_cast<double>(wear_.size());
    // Average retention: the fast-forward offset plus elapsed run
    // time. Scrub refreshes lower individual blocks below this —
    // the table wants the expectation, not the per-block truth.
    const double retention_s =
        std::max(0.0, cfg_.retentionDays) * 86400.0 +
        ticksToSeconds(bucket * kPenaltyBucketTicks);
    penaltyBucket_ = bucket;
    penaltyErases_ = totalErases_;
    penalty_ = ecc_.plan(rber_.typicalRber(avg_wear, retention_s))
                   .extraTicks;
    return penalty_;
}

} // namespace conduit::reliability
