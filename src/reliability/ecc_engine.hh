/**
 * @file
 * ECC read-latency ladder.
 *
 * Converts a raw bit error rate into the extra die-busy time a read
 * pays for error correction, modelling the tiered decode pipeline of
 * modern LDPC controllers:
 *
 *   1. hard decode  — RBER within the fast path's budget: free.
 *   2. read retries — each step re-senses the wordline with shifted
 *      reference voltages, extending the correctable RBER by a
 *      constant factor and charging one re-sense latency.
 *   3. soft decode  — past the retry ladder, a multi-sense soft read
 *      plus soft-decision LDPC decode is charged on top.
 *
 * Beyond @ref ReliabilityConfig::uncorrectableRber the sector is
 * lost to the inline ECC: the full ladder latency is still charged
 * (the controller only learns of the failure after exhausting it)
 * and the caller is expected to retire the block. Recovery of the
 * data itself (outer RAID, host-level replication) is outside the
 * model; only the latency and the block's fate are simulated.
 *
 * plan() is a pure, monotone function of RBER — higher error rates
 * never decode faster — which is what makes aged-device latency
 * sweeps monotone in device age.
 */

#ifndef CONDUIT_RELIABILITY_ECC_ENGINE_HH
#define CONDUIT_RELIABILITY_ECC_ENGINE_HH

#include <cstdint>

#include "src/sim/config.hh"
#include "src/sim/types.hh"

namespace conduit::reliability
{

/** What one page read costs the decoder beyond the plain sense. */
struct ReadPlan
{
    /** Extra die-busy time (retries + soft decode). */
    Tick extraTicks = 0;

    /** Read-retry steps taken (0 = fast hard decode). */
    std::uint32_t retries = 0;

    /** Soft-decision decode was needed after the retry ladder. */
    bool soft = false;

    /** The sector exceeded the ECC's correction strength. */
    bool uncorrectable = false;
};

/** The tiered decoder: RBER -> ReadPlan. */
class EccEngine
{
  public:
    explicit EccEngine(const ReliabilityConfig &cfg);

    /** Decode plan for a read at @p rber (monotone in rber). */
    ReadPlan plan(double rber) const;

  private:
    ReliabilityConfig cfg_;
    double logRetryFactor_;
};

} // namespace conduit::reliability

#endif // CONDUIT_RELIABILITY_ECC_ENGINE_HH
