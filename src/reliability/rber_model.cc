#include "src/reliability/rber_model.hh"

#include <cmath>

#include "src/sim/rng.hh"

namespace conduit::reliability
{

RberModel::RberModel(const ReliabilityConfig &cfg, std::uint64_t seed,
                     std::uint64_t blocks)
    : cfg_(cfg)
{
    // One dedicated stream, decoupled from every other consumer of
    // the run seed: enabling reliability must not perturb workload
    // generation or fault injection.
    Rng rng(seed ^ 0x52454C4941424CULL); // "RELIABL"
    jitter_.reserve(blocks);
    const double j = cfg_.blockJitter;
    for (std::uint64_t b = 0; b < blocks; ++b)
        jitter_.push_back(1.0 + j * (2.0 * rng.uniform() - 1.0));
}

double
RberModel::ageFactor(double pe_cycles, double retention_seconds) const
{
    const double rated =
        std::max<double>(1.0, static_cast<double>(cfg_.ratedCycles));
    const double wear =
        std::exp(cfg_.wearAlpha * (pe_cycles / rated));
    const double nominal_s =
        std::max(1.0, cfg_.nominalRetentionDays * 86400.0);
    const double t = std::max(0.0, retention_seconds) / nominal_s;
    // shape fixed at 1.1: slightly super-linear retention loss, the
    // regime the nominal-retention constant is calibrated for.
    const double retention = 1.0 + cfg_.retentionBeta * std::pow(t, 1.1);
    return wear * retention;
}

double
RberModel::rber(std::uint64_t block, std::uint32_t pe_cycles,
                double retention_seconds) const
{
    return cfg_.rberFresh *
        ageFactor(static_cast<double>(pe_cycles), retention_seconds) *
        jitter_[block];
}

double
RberModel::typicalRber(double pe_cycles,
                       double retention_seconds) const
{
    return cfg_.rberFresh * ageFactor(pe_cycles, retention_seconds);
}

} // namespace conduit::reliability
