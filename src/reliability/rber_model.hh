/**
 * @file
 * Wear- and retention-dependent raw bit error rate.
 *
 * RBER follows the standard two-factor characterization of 3D NAND
 * error studies (Cai et al., Mielke et al.): an exponential growth
 * term in program/erase cycling and a power-law term in retention
 * age, combined multiplicatively:
 *
 *   RBER(pe, t) = rberFresh
 *               * exp(wearAlpha * pe / ratedCycles)
 *               * (1 + retentionBeta * (t / nominalDays)^shape)
 *               * jitter(block)
 *
 * jitter is a deterministic per-block factor in [1-j, 1+j] drawn
 * once from the run seed (src/sim/rng.hh), modelling block-to-block
 * process variation: the same seed always produces the same weak and
 * strong blocks, so aged-device runs are exactly reproducible.
 *
 * The model is strictly monotone in both wear and retention — more
 * cycles or longer retention never lowers the error rate — which the
 * ECC ladder turns into monotone read latency.
 */

#ifndef CONDUIT_RELIABILITY_RBER_MODEL_HH
#define CONDUIT_RELIABILITY_RBER_MODEL_HH

#include <cstdint>
#include <vector>

#include "src/sim/config.hh"

namespace conduit::reliability
{

/** RBER as a function of (wear, retention, block identity). */
class RberModel
{
  public:
    /**
     * @param cfg Model constants.
     * @param seed Run seed; the per-block jitter table derives from
     *             it alone, so equal seeds give equal devices.
     * @param blocks Number of physical blocks (jitter table size).
     */
    RberModel(const ReliabilityConfig &cfg, std::uint64_t seed,
              std::uint64_t blocks);

    /**
     * Error rate of @p block after @p peCycles erases with data
     * retained for @p retentionSeconds.
     */
    double rber(std::uint64_t block, std::uint32_t pe_cycles,
                double retention_seconds) const;

    /**
     * Device-typical RBER (jitter-free) at the given age; used for
     * the static cost tables the offloader consults (§4.3.2), which
     * model expected — not per-block — behaviour.
     */
    double typicalRber(double pe_cycles,
                       double retention_seconds) const;

    /** The block's jitter factor (tests and introspection). */
    double jitterOf(std::uint64_t block) const
    {
        return jitter_.at(block);
    }

  private:
    double ageFactor(double pe_cycles, double retention_seconds) const;

    ReliabilityConfig cfg_;
    std::vector<double> jitter_;
};

} // namespace conduit::reliability

#endif // CONDUIT_RELIABILITY_RBER_MODEL_HH
