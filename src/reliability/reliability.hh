/**
 * @file
 * Device reliability & aging state.
 *
 * ReliabilityModel is the one stateful object behind the subsystem:
 * it owns per-block wear (P/E cycles, last-erase tick, correction
 * history), composes the RberModel and EccEngine, and answers the
 * questions the rest of the simulator asks:
 *
 *  - NandArray::readPage: "what does ECC add to this sense?"
 *    (onRead — charges the retry ladder, tracks retirement votes)
 *  - Ftl: "has this block worn out?" (retirePending / markRetired —
 *    retired blocks leave the free pool for good, shrinking
 *    over-provisioning and accelerating GC)
 *  - Engine's scrub task: "which blocks need refreshing?" (scrubDue)
 *  - Engine's cost tables: "what read penalty should the offloader
 *    expect right now?" (typicalReadPenalty — feeds the §4.3.2
 *    data-movement estimates so offload decisions see device age)
 *
 * Fast-forward: preWearCycles and retentionDays initialize every
 * block as if the device had already served that history, so aging
 * sweeps start from an aged state without simulating years. The
 * equivalence contract (tested): fast-forwarding to N cycles leaves
 * the model in exactly the state N simulated erases per block would.
 *
 * Everything is deterministic — wear state advances only at defined
 * simulated-time points, and the only randomness is the per-block
 * jitter table derived from the run seed.
 */

#ifndef CONDUIT_RELIABILITY_RELIABILITY_HH
#define CONDUIT_RELIABILITY_RELIABILITY_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/reliability/ecc_engine.hh"
#include "src/reliability/rber_model.hh"
#include "src/sim/config.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit::reliability
{

/** Cumulative reliability counters (DeviceSnapshot reporting). */
struct ReliabilityStats
{
    /** Reads that needed at least one retry step. */
    std::uint64_t retriedReads = 0;

    /** Total retry steps across all reads. */
    std::uint64_t eccRetries = 0;

    /** Reads that fell through to soft-decision decode. */
    std::uint64_t softDecodes = 0;

    /** Reads beyond the ECC's correction strength. */
    std::uint64_t uncorrectableReads = 0;

    /** Blocks permanently removed from service. */
    std::uint64_t retiredBlocks = 0;

    /** Background scrub passes executed. */
    std::uint64_t scrubPasses = 0;

    /** Blocks the scrubber refreshed (migrated + erased). */
    std::uint64_t scrubRefreshes = 0;

    /** Cold blocks the wear-leveler migrated out of low wear. */
    std::uint64_t wearLevelMigrations = 0;
};

/** The device's aging state and reliability decision logic. */
class ReliabilityModel
{
  public:
    ReliabilityModel(const NandConfig &nand,
                     const ReliabilityConfig &cfg, std::uint64_t seed,
                     StatSet *stats = nullptr);

    /**
     * Account one page read of @p block at @p now.
     * @return Extra die-busy ticks the ECC ladder charges.
     */
    Tick onRead(std::uint64_t block, Tick now);

    /**
     * A block erase at @p now: wear advances, retention restarts
     * (the fast-forwarded retention offset clears — the block now
     * holds freshly programmed data).
     */
    void noteErase(std::uint64_t block, Tick now);

    /** @name Bad-block management @{ */
    /** True when the block's correction history demands retirement. */
    bool
    retirePending(std::uint64_t block) const
    {
        return wear_[block].retirePending && !wear_[block].retired;
    }

    /** Permanently retire @p block (FTL calls this at its erase). */
    void markRetired(std::uint64_t block);

    bool retired(std::uint64_t block) const
    {
        return wear_[block].retired;
    }
    /** @} */

    /** @name Background scrub support @{ */
    /** RBER high enough that the block's data should be rewritten. */
    bool scrubDue(std::uint64_t block, Tick now) const;

    void notePass();
    void noteRefresh();
    void noteLevelMigration();
    /** @} */

    /** Current error rate of @p block. */
    double rberOf(std::uint64_t block, Tick now) const;

    /**
     * Expected ECC latency of a read at the device's current average
     * wear and retention — the aging term of the offloader's static
     * data-movement table (jitter-free, monotone in device age).
     *
     * Called once per dispatched instruction, so the transcendental
     * RBER math is cached: the value only moves with erases and
     * (slowly, on a days scale) with retention, so it is recomputed
     * when the erase count changes or simulated time crosses a
     * coarse bucket — deterministic, since both inputs are pure
     * simulated state.
     */
    Tick typicalReadPenalty(Tick now) const;

    /** @name Introspection @{ */
    std::uint32_t wearOf(std::uint64_t block) const
    {
        return wear_[block].eraseCount;
    }

    double retentionSecondsOf(std::uint64_t block, Tick now) const;

    std::uint64_t blocks() const { return wear_.size(); }

    const ReliabilityStats &stats() const { return stats_; }

    const EccEngine &ecc() const { return ecc_; }
    const RberModel &rberModel() const { return rber_; }
    /** @} */

  private:
    struct BlockWear
    {
        std::uint32_t eraseCount = 0;
        std::uint32_t softReads = 0; // ladder-exhausting reads
        bool retirePending = false;
        bool retired = false;

        /** Tick the resident data was (re)programmed. */
        Tick programmedAt = 0;

        /** Fast-forwarded retention predating t = 0 (cleared by the
         *  first erase: the block then holds fresh data). */
        double retentionOffsetSeconds = 0.0;

        /**
         * Read-plan memo: the decode plan is constant between
         * erases within a coarse retention bucket, so the
         * transcendental RBER/ladder math runs once per
         * (erase, bucket) instead of once per read. kMaxTick marks
         * it stale (fresh block or just erased).
         */
        Tick planBucket = kMaxTick;
        ReadPlan plan;
    };

    // lint: transient-begin(config and the stateless models derived from it, rebuilt by the constructor on restore)
    ReliabilityConfig cfg_;
    RberModel rber_;
    EccEngine ecc_;
    // lint: transient-end
    std::vector<BlockWear> wear_;
    std::uint64_t totalErases_ = 0; // beyond pre-wear, all blocks

    /** typicalReadPenalty memo (see its doc comment). */
    static constexpr Tick kPenaltyBucketTicks = msToTicks(10);
    mutable Tick penaltyBucket_ = kMaxTick;
    mutable std::uint64_t penaltyErases_ = ~std::uint64_t{0};
    mutable Tick penalty_ = 0;

    ReliabilityStats stats_;

    /** StatSet mirrors (resolved once; see nand.hh's rationale). */
    // lint: transient-begin(cached StatSet pointers; the counters they mirror survive via StatSet::restoreFrom)
    Counter *statRetriedReads_ = nullptr;
    Counter *statEccRetries_ = nullptr;
    Counter *statSoftDecodes_ = nullptr;
    Counter *statUncorrectable_ = nullptr;
    Counter *statRetiredBlocks_ = nullptr;
    Counter *statScrubPasses_ = nullptr;
    Counter *statScrubRefreshes_ = nullptr;
    // lint: transient-end

  public:
    /**
     * Deep copy of the aging state for DeviceImage snapshots:
     * per-block wear (including the memoized read plans, which are
     * pure functions of wear + retention bucket), the device-total
     * erase count, and the cumulative ReliabilityStats. The
     * typicalReadPenalty memo is not captured — restore marks it
     * stale and the next query deterministically recomputes it from
     * the restored wear. RberModel/EccEngine are config+seed-derived
     * constants reproduced by construction.
     */
    struct Image
    {
        std::vector<BlockWear> wear;
        std::uint64_t totalErases = 0;
        ReliabilityStats stats;
    };

    Image
    capture() const
    {
        Image img;
        img.wear = wear_;
        img.totalErases = totalErases_;
        img.stats = stats_;
        return img;
    }

    void
    restore(const Image &img)
    {
        if (img.wear.size() != wear_.size())
            throw std::invalid_argument(
                "ReliabilityModel::restore: block count mismatch");
        wear_ = img.wear;
        totalErases_ = img.totalErases;
        stats_ = img.stats;
        penaltyBucket_ = kMaxTick;
        penaltyErases_ = ~std::uint64_t{0};
        penalty_ = 0;
    }
};

} // namespace conduit::reliability

#endif // CONDUIT_RELIABILITY_RELIABILITY_HH
