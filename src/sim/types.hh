/**
 * @file
 * Fundamental simulation types and time units.
 *
 * The simulator counts time in integer picoseconds. A picosecond base
 * unit lets us represent both sub-nanosecond controller-core cycles
 * (0.667 ns at 1.5 GHz) and millisecond-scale NAND erase operations in
 * the same 64-bit tick without rounding. 2^64 ps is roughly 213 days
 * of simulated time, far beyond any experiment in this repository.
 */

#ifndef CONDUIT_SIM_TYPES_HH
#define CONDUIT_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace conduit
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Sentinel for "never" / unscheduled. */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

constexpr Tick kPsPerNs = 1000;
constexpr Tick kPsPerUs = 1000 * kPsPerNs;
constexpr Tick kPsPerMs = 1000 * kPsPerUs;
constexpr Tick kPsPerS = 1000 * kPsPerMs;

/** Convert a duration in nanoseconds to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(kPsPerNs));
}

/** Convert a duration in microseconds to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(kPsPerUs));
}

/** Convert a duration in milliseconds to ticks. */
constexpr Tick
msToTicks(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(kPsPerMs));
}

/** Convert ticks to (floating point) nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerNs);
}

/** Convert ticks to (floating point) microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerUs);
}

/** Convert ticks to (floating point) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kPsPerS);
}

/**
 * Time needed to move @p bytes over a link of @p bytes_per_sec,
 * rounded up to a whole tick.
 */
constexpr Tick
transferTicks(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes == 0 || bytes_per_sec <= 0.0)
        return 0;
    const double seconds = static_cast<double>(bytes) / bytes_per_sec;
    return static_cast<Tick>(seconds * static_cast<double>(kPsPerS)) + 1;
}

} // namespace conduit

#endif // CONDUIT_SIM_TYPES_HH
