/**
 * @file
 * FCFS resource calendars for contention modelling.
 *
 * A Server represents a unit that processes one request at a time
 * (a flash die, a flash channel, a DRAM bank, a controller core).
 * Callers reserve a service interval; the server returns when the
 * request actually starts and completes, implicitly modelling FCFS
 * queueing delay. A ServerGroup models a pool of identical units with
 * least-loaded dispatch (e.g. the eight DRAM banks used by PuD).
 */

#ifndef CONDUIT_SIM_SERVER_HH
#define CONDUIT_SIM_SERVER_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace conduit
{

/** Start/completion pair returned by a reservation. */
struct ServiceInterval
{
    Tick start;
    Tick end;

    Tick queueDelay(Tick requested) const { return start - requested; }
};

/** A single FCFS service unit. */
class Server
{
  public:
    explicit Server(std::string name = "") : name_(std::move(name)) {}

    /**
     * Reserve @p duration ticks of service no earlier than @p earliest.
     * @return The interval actually granted.
     */
    ServiceInterval
    acquire(Tick earliest, Tick duration)
    {
        const Tick start = std::max(earliest, busyUntil_);
        busyUntil_ = start + duration;
        busyTime_ += duration;
        ++requests_;
        return {start, busyUntil_};
    }

    /** Earliest time a new request could start service. */
    Tick freeAt() const { return busyUntil_; }

    /** Pending work beyond @p now (the paper's delay_queue input). */
    Tick
    backlog(Tick now) const
    {
        return busyUntil_ > now ? busyUntil_ - now : 0;
    }

    /** Total busy time accumulated (for utilization stats). */
    Tick busyTime() const { return busyTime_; }

    std::uint64_t requests() const { return requests_; }

    const std::string &name() const { return name_; }

    void
    reset()
    {
        busyUntil_ = 0;
        busyTime_ = 0;
        requests_ = 0;
    }

  private:
    std::string name_;
    Tick busyUntil_ = 0;
    Tick busyTime_ = 0;
    std::uint64_t requests_ = 0;
};

/** A pool of identical servers with least-loaded dispatch. */
class ServerGroup
{
  public:
    ServerGroup(std::string name, std::size_t count)
    {
        units_.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            units_.emplace_back(name + "." + std::to_string(i));
    }

    /** Reserve on the unit that can start soonest. */
    ServiceInterval
    acquire(Tick earliest, Tick duration)
    {
        return pick()->acquire(earliest, duration);
    }

    /** Reserve on a specific unit (e.g. a bank selected by address). */
    ServiceInterval
    acquireOn(std::size_t index, Tick earliest, Tick duration)
    {
        return units_.at(index).acquire(earliest, duration);
    }

    /** Earliest start over all units. */
    Tick
    freeAt() const
    {
        Tick best = kMaxTick;
        for (const auto &u : units_)
            best = std::min(best, u.freeAt());
        return best;
    }

    /** Minimum backlog over units (group-level queueing delay). */
    Tick
    backlog(Tick now) const
    {
        Tick best = kMaxTick;
        for (const auto &u : units_)
            best = std::min(best, u.backlog(now));
        return best == kMaxTick ? 0 : best;
    }

    /** Sum of busy time over all units. */
    Tick
    busyTime() const
    {
        Tick total = 0;
        for (const auto &u : units_)
            total += u.busyTime();
        return total;
    }

    std::size_t size() const { return units_.size(); }

    Server &unit(std::size_t i) { return units_.at(i); }
    const Server &unit(std::size_t i) const { return units_.at(i); }

    void
    reset()
    {
        for (auto &u : units_)
            u.reset();
    }

  private:
    Server *
    pick()
    {
        Server *best = &units_.front();
        for (auto &u : units_) {
            if (u.freeAt() < best->freeAt())
                best = &u;
        }
        return best;
    }

    std::vector<Server> units_;
};

} // namespace conduit

#endif // CONDUIT_SIM_SERVER_HH
