/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue orders events by (tick, priority, sequence). Sequence
 * numbers make execution deterministic: two events scheduled for the
 * same tick and priority always fire in scheduling order, so repeated
 * runs of the same workload produce bit-identical results.
 *
 * Storage layout (the wall-clock hot path):
 *
 * - Callbacks live in a free-listed slab of generation-stamped
 *   slots. Firing or cancelling releases the slot for immediate
 *   reuse; an EventId encodes (slot, generation), so a stale handle
 *   can never cancel the slot's next occupant.
 * - The binary heap holds small POD entries (no callback), so sift
 *   operations move 32-byte records instead of std::function objects
 *   and schedule/fire perform no heap allocation (callbacks up to
 *   SmallFn::kInlineBytes, which covers every caller in-tree).
 * - cancel() is lazy: the heap entry stays behind and is discarded
 *   when it surfaces — but when cancelled entries outnumber half the
 *   heap, the heap is compacted in place, bounding memory growth
 *   under cancel-heavy open-loop workloads.
 */

#ifndef CONDUIT_SIM_EVENT_QUEUE_HH
#define CONDUIT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "src/sim/small_fn.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Callbacks may schedule further events (including for the current
 * tick). Scheduling in the past is a programming error and throws.
 */
class EventQueue
{
  public:
    using Callback = SmallFn;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback invoked when the event fires.
     * @param priority Lower values fire first within the same tick.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired, was cancelled, or never existed.
     */
    bool cancel(EventId id);

    /**
     * Fire the earliest pending event.
     * @retval true if an event fired, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed @p until.
     * @return Number of events fired.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_; }

    /** True if no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

    /** @name Slab/heap introspection (memory-bound regression tests) @{ */
    /** Slots ever allocated (bounds callback storage). */
    std::size_t slabSlots() const { return slots_.size(); }
    /** Heap entries, cancelled leftovers included. */
    std::size_t heapEntries() const { return heap_.size(); }
    /** Cancelled entries still awaiting discard/compaction. */
    std::size_t cancelledEntries() const { return cancelled_; }
    /** @} */

  private:
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
    /** Compaction only kicks in past this size (tiny heaps are cheap). */
    static constexpr std::size_t kCompactMinEntries = 64;

    /** Slab slot: callback storage + the liveness generation. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1; // bumped on release; 0 never issued
        std::uint32_t nextFree = kNoSlot;
    };

    /** Heap entry: POD ordering record referencing a slab slot. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        int priority;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    std::uint32_t acquireSlot(Callback cb);
    void releaseSlot(std::uint32_t slot);
    bool liveEntry(const Entry &e) const
    {
        return slots_[e.slot].gen == e.gen;
    }
    /** Drop cancelled entries in place and re-heapify. */
    void compact();
    /** Pop dead entries off the top; true if a live top remains. */
    bool skimCancelled();

    std::vector<Entry> heap_; // binary min-heap via Later
    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = kNoSlot;
    std::size_t live_ = 0;      // scheduled, not yet fired/cancelled
    std::size_t cancelled_ = 0; // dead entries still in heap_
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t fired_ = 0;
};

} // namespace conduit

#endif // CONDUIT_SIM_EVENT_QUEUE_HH
