/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue orders events by (tick, priority, sequence). Sequence
 * numbers make execution deterministic: two events scheduled for the
 * same tick and priority always fire in scheduling order, so repeated
 * runs of the same workload produce bit-identical results.
 *
 * Storage layout (the wall-clock hot path):
 *
 * - Callbacks live in a free-listed slab of generation-stamped
 *   slots. Firing or cancelling releases the slot for immediate
 *   reuse; an EventId encodes (slot, generation), so a stale handle
 *   can never cancel the slot's next occupant.
 * - Ordering records are small POD entries (no callback) in a
 *   two-tier calendar/ladder structure:
 *
 *     * The near-future tier is a bucketed calendar: a window of
 *       fixed-width tick ranges, one append-only vector per bucket.
 *       Scheduling into the window is an O(1) append; a bucket is
 *       sorted by (tick, priority, seq) once, lazily, when the drain
 *       front first reaches it, so a fan of N pre-populated events
 *       costs one scatter pass plus small per-bucket sorts instead
 *       of N O(log n) heap sifts over the full resident set.
 *     * Events beyond the window land in an unsorted far-future
 *       overflow tier (O(1) append, min/max tracked). When the
 *       calendar drains, the overflow is re-anchored: a new window
 *       is sized to the overflow's tick span and the entries are
 *       scattered into it in one pass, ladder-style. Every entry
 *       therefore moves at most twice (append, scatter) before the
 *       one sort that orders it.
 *
 *   The window adapts: re-anchoring a lone entry doubles the bucket
 *   width, so sparse self-scheduling chains settle into a window
 *   wide enough that successors schedule straight into the active
 *   bucket (an ordered insert into its undrained tail) and
 *   re-anchoring stops.
 * - cancel() is lazy: the entry stays behind and is discarded when
 *   the drain front surfaces it — but when cancelled entries
 *   outnumber half of all resident entries, every tier is compacted
 *   in place, bounding memory growth under cancel-heavy open-loop
 *   workloads.
 */

#ifndef CONDUIT_SIM_EVENT_QUEUE_HH
#define CONDUIT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/sim/small_fn.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Callbacks may schedule further events (including for the current
 * tick). Scheduling in the past is a programming error and throws.
 */
class EventQueue
{
  public:
    using Callback = SmallFn;

    EventQueue();
    /** Returns slab chunks and entry buffers to a thread-local pool
     *  so the next queue on this thread skips the page-fault cost of
     *  faulting in fresh memory (open-loop runs construct one queue
     *  per cell). */
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback invoked when the event fires.
     * @param priority Lower values fire first within the same tick.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired, was cancelled, or never existed.
     */
    bool cancel(EventId id);

    /**
     * Fire the earliest pending event.
     * @retval true if an event fired, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed @p until.
     * @return Number of events fired.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_; }

    /** True if no live events remain. */
    bool empty() const { return live_ == 0; }

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

    /**
     * Adopt a snapshot's clock on a fresh queue (DeviceImage
     * restore): sets now() and eventsFired() to the captured values
     * so a forked run's schedule() floors and fired counts continue
     * exactly where the captured run stood. Only valid on a queue
     * that has never scheduled or fired anything — a device image is
     * captured at quiescence, so the restored queue starts empty.
     * Sequence numbers deliberately restart: they only order events
     * that coexist, and no event survives the snapshot boundary.
     */
    void
    restore(Tick now, std::uint64_t fired)
    {
        if (live_ != 0 || fired_ != 0 || nextSeq_ != 1)
            throw std::logic_error(
                "EventQueue::restore: queue is not fresh");
        now_ = now;
        fired_ = fired;
    }

    /** @name Slab/tier introspection (memory-bound regression tests) @{ */
    /** Slots ever allocated (bounds callback storage). */
    std::size_t slabSlots() const { return slotCount_; }
    /** Resident ordering entries, cancelled leftovers included. */
    std::size_t heapEntries() const
    {
        return calEntries_ + overflow_.size();
    }
    /** Cancelled entries still awaiting discard/compaction. */
    std::size_t cancelledEntries() const { return cancelled_; }
    /** @} */

    /**
     * Audit the pending() conservation invariant: recount live
     * (generation-matching) entries across every tier and check the
     * result against pending(), and the per-tier resident counts
     * against heapEntries(). O(entries) — meant for tests and debug
     * builds, not the hot path.
     */
    bool auditPendingConservation() const;

  private:
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
    /** Compaction only kicks in past this size (tiny sets are cheap). */
    static constexpr std::size_t kCompactMinEntries = 64;
    /** Calendar windows use between kMinBuckets and kMaxBuckets. */
    static constexpr std::size_t kMinBuckets = 64;
    static constexpr std::size_t kMaxBuckets = 512;
    /** Drained-prefix trim threshold for the active bucket. */
    static constexpr std::size_t kTrimMinDrained = 64;
    /** Slab chunk: 512 slots x 64 bytes — slots never relocate. */
    static constexpr std::size_t kChunkShift = 9;
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
    static constexpr std::size_t kChunkMask = kChunkSize - 1;

    /** Slab slot: callback storage + the liveness generation. */
    struct Slot
    {
        Callback cb;
        std::uint32_t gen = 1; // bumped on release; 0 never issued
        std::uint32_t nextFree = kNoSlot;
    };

    /** Ordering entry: POD record referencing a slab slot. */
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
        std::uint32_t gen;
        int priority;
    };

    /** Strict (tick, priority, seq) fire order. */
    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        if (a.priority != b.priority)
            return a.priority < b.priority;
        return a.seq < b.seq;
    }

    /** Thread-local recycling pool shared by queues on one thread. */
    struct Recycler
    {
        std::vector<std::unique_ptr<Slot[]>> chunks;
        std::vector<std::vector<Entry>> vecs;
    };
    static Recycler &recycler();
    /** Pop a pooled entry buffer (empty, capacity retained). */
    static std::vector<Entry> takePooledVec();

    Slot &
    slotAt(std::uint32_t slot)
    {
        return chunks_[slot >> kChunkShift][slot & kChunkMask];
    }
    const Slot &
    slotAt(std::uint32_t slot) const
    {
        return chunks_[slot >> kChunkShift][slot & kChunkMask];
    }
    std::uint32_t acquireSlot(Callback &&cb);
    void releaseSlot(std::uint32_t slot);
    bool liveEntry(const Entry &e) const
    {
        return slotAt(e.slot).gen == e.gen;
    }

    /** True while @p when can be filed into the current window. */
    bool
    inWindow(Tick when) const
    {
        return curBucket_ < bucketCount_ &&
            (openEnded_ || when < winEnd_);
    }
    /** Bucket holding @p when (clamped into the window). */
    std::size_t bucketIndex(Tick when) const;
    /** File @p e into the calendar (window membership pre-checked). */
    void insertCalendar(const Entry &e);
    /** Sort a bucket into (when, priority, seq) fire order. */
    void sortBucket(std::vector<Entry> &vec);
    /** Size a fresh window to the overflow span and scatter it. */
    void reAnchor();
    /**
     * Advance the drain front to the earliest live entry: re-anchor
     * drained windows, lazily sort newly reached buckets, and skim
     * cancelled entries. False when no live events remain.
     */
    bool advanceToLive();
    /** Pop the entry at the drain front and invoke its callback. */
    void fireFront();
    /** Drop cancelled entries (and drained prefixes) in every tier. */
    void compactAll();

    // lint: transient-begin(restore() requires a freshly-constructed queue with zero live/fired events, so every structural member below provably holds its constructed value; only now_ and the fired_ total carry across a snapshot)
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::size_t slotCount_ = 0;
    std::uint32_t freeHead_ = kNoSlot;

    /** @name Near-future calendar tier @{ */
    std::vector<std::vector<Entry>> buckets_;
    std::size_t bucketCount_ = 0; // active buckets; 0 = no window yet
    Tick winStart_ = 0;
    Tick winEnd_ = 0;
    Tick lastWidth_ = 1;     // adaptive width memory across windows
    unsigned widthShift_ = 0; // widths are powers of two: index by shift
    bool openEnded_ = false; // window reaches kMaxTick
    std::size_t curBucket_ = 0;
    std::size_t drainPos_ = 0; // drained prefix of the active bucket
    bool curSorted_ = false;
    std::size_t calEntries_ = 0; // resident entries, drained excluded
    /** @} */

    /** @name Far-future overflow tier @{ */
    std::vector<Entry> overflow_; // unsorted, beyond the window
    Tick ovMin_ = kMaxTick;
    Tick ovMax_ = 0;
    /** @} */

    /** Reused scratch for sortBucket's counting passes. */
    std::vector<Entry> sortScratch_;
    std::vector<std::uint32_t> sortCounts_;

    std::size_t live_ = 0;      // scheduled, not yet fired/cancelled
    std::size_t cancelled_ = 0; // dead entries still resident
    // lint: transient-end
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t fired_ = 0;
};

} // namespace conduit

#endif // CONDUIT_SIM_EVENT_QUEUE_HH
