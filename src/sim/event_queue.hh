/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The queue orders events by (tick, priority, sequence). Sequence
 * numbers make execution deterministic: two events scheduled for the
 * same tick and priority always fire in scheduling order, so repeated
 * runs of the same workload produce bit-identical results.
 */

#ifndef CONDUIT_SIM_EVENT_QUEUE_HH
#define CONDUIT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/types.hh"

namespace conduit
{

/** Opaque handle identifying a scheduled event (for cancellation). */
using EventId = std::uint64_t;

/**
 * A deterministic discrete-event queue.
 *
 * Callbacks may schedule further events (including for the current
 * tick). Scheduling in the past is a programming error and throws.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute tick; must be >= now().
     * @param cb Callback invoked when the event fires.
     * @param priority Lower values fire first within the same tick.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb, int priority = 0);

    /** Schedule @p cb to run @p delay ticks from now. */
    EventId
    scheduleAfter(Tick delay, Callback cb, int priority = 0)
    {
        return schedule(now_ + delay, std::move(cb), priority);
    }

    /**
     * Cancel a pending event.
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired, was cancelled, or never existed.
     */
    bool cancel(EventId id);

    /**
     * Fire the earliest pending event.
     * @retval true if an event fired, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until the queue drains or simulated time would
     * exceed @p until.
     * @return Number of events fired.
     */
    std::uint64_t run(Tick until = kMaxTick);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return live_.size(); }

    /** True if no live events remain. */
    bool empty() const { return live_.empty(); }

    /** Total events fired since construction. */
    std::uint64_t eventsFired() const { return fired_; }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.id > b.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<EventId> live_; // scheduled, not yet fired or
                                       // cancelled; a heap entry
                                       // whose id is absent was
                                       // cancelled and is discarded
                                       // when it surfaces
    Tick now_ = 0;
    EventId nextId_ = 1;
    std::uint64_t fired_ = 0;
};

} // namespace conduit

#endif // CONDUIT_SIM_EVENT_QUEUE_HH
