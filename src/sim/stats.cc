#include "src/sim/stats.hh"

#include <cmath>
#include <sstream>

namespace conduit
{

double
Histogram::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        cache_ = samples_;
        std::sort(cache_.begin(), cache_.end());
        sorted_ = true;
    }
    if (p <= 0.0)
        return cache_.front();
    if (p >= 100.0)
        return cache_.back();
    // Nearest-rank: smallest value with at least ceil(p/100 * N)
    // samples at or below it.
    const auto n = static_cast<double>(cache_.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0)
        rank = 1;
    return cache_[rank - 1];
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, h] : hists_) {
        os << name << ".count " << h.count() << "\n";
        os << name << ".mean " << h.mean() << "\n";
    }
    return os.str();
}

} // namespace conduit
