/**
 * @file
 * Minimal leveled logging for simulator diagnostics.
 *
 * Logging is off by default so benches stay quiet; tests and debug
 * sessions raise the level. Messages go to stderr to keep bench table
 * output on stdout clean.
 */

#ifndef CONDUIT_SIM_LOG_HH
#define CONDUIT_SIM_LOG_HH

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>

namespace conduit
{

enum class LogLevel { None = 0, Warn = 1, Info = 2, Debug = 3 };

/**
 * Global log-level holder.
 *
 * The level is atomic and messages are emitted as a single stdio
 * call, so concurrent sweep workers can log without tearing lines
 * or racing on the filter.
 */
class Log
{
  public:
    static LogLevel level()
    {
        return levelRef().load(std::memory_order_relaxed);
    }

    static void setLevel(LogLevel lvl)
    {
        levelRef().store(lvl, std::memory_order_relaxed);
    }

    static bool
    enabled(LogLevel lvl)
    {
        return static_cast<int>(lvl) <= static_cast<int>(level());
    }

    static void
    write(LogLevel lvl, const std::string &tag, const std::string &msg)
    {
        if (!enabled(lvl))
            return;
        const std::string line = "[" + tag + "] " + msg + "\n";
        std::fputs(line.c_str(), stderr);
    }

  private:
    static std::atomic<LogLevel> &levelRef()
    {
        static std::atomic<LogLevel> lvl{LogLevel::Warn};
        return lvl;
    }
};

} // namespace conduit

#define CONDUIT_LOG(lvl, tag, expr)                                      \
    do {                                                                  \
        if (::conduit::Log::enabled(lvl)) {                               \
            std::ostringstream os__;                                      \
            os__ << expr;                                                 \
            ::conduit::Log::write(lvl, tag, os__.str());                  \
        }                                                                 \
    } while (0)

#define CONDUIT_WARN(tag, expr)                                           \
    CONDUIT_LOG(::conduit::LogLevel::Warn, tag, expr)
#define CONDUIT_INFO(tag, expr)                                           \
    CONDUIT_LOG(::conduit::LogLevel::Info, tag, expr)
#define CONDUIT_DEBUG(tag, expr)                                          \
    CONDUIT_LOG(::conduit::LogLevel::Debug, tag, expr)

#endif // CONDUIT_SIM_LOG_HH
