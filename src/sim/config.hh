/**
 * @file
 * Simulation configuration (Table 2 of the paper).
 *
 * All tunable parameters live here: SSD geometry, NAND/DRAM/core
 * timing and energy, host baseline roofline parameters, and the
 * Conduit runtime overhead constants from §4.5. Defaults reproduce
 * the evaluated configuration; experiments scale geometry down with
 * @ref SsdConfig::scaleFactor so benches finish in seconds while
 * preserving the ratios (channels, dies, footprint/capacity) that
 * drive contention behaviour.
 */

#ifndef CONDUIT_SIM_CONFIG_HH
#define CONDUIT_SIM_CONFIG_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace conduit
{

/** NAND flash geometry and timing (48-WL-layer 3D TLC in SLC mode). */
struct NandConfig
{
    std::uint32_t channels = 8;
    std::uint32_t diesPerChannel = 8;
    std::uint32_t planesPerDie = 2;
    std::uint32_t blocksPerPlane = 2048;
    std::uint32_t pagesPerBlock = 196;   // 4 x 48 WLs
    std::uint32_t pageBytes = 4096;

    double channelBytesPerSec = 1.2e9;   // 1.2 GB/s per channel

    Tick readTicks = usToTicks(22.5);    // tRead, SLC mode
    Tick programTicks = usToTicks(400);  // tProg, SLC mode
    Tick eraseTicks = usToTicks(3500);   // tBERS
    Tick cmdTicks = nsToTicks(200);      // command/address cycles
    Tick dmaTicks = usToTicks(3.3);      // tDMA page-buffer <-> controller

    // In-flash processing primitives (Flash-Cosmos / Ares-Flash).
    Tick andOrTicks = nsToTicks(20);     // MWS AND/OR
    Tick xorTicks = nsToTicks(30);       // latch XOR
    Tick latchTicks = nsToTicks(20);     // latch-to-latch transfer
    std::uint32_t maxAndOperands = 48;   // single-sensing AND fan-in
    std::uint32_t maxOrOperands = 4;     // single-sensing OR fan-in

    std::uint64_t
    totalBlocks() const
    {
        return static_cast<std::uint64_t>(channels) * diesPerChannel *
            planesPerDie * blocksPerPlane;
    }

    std::uint64_t
    totalPages() const
    {
        return totalBlocks() * pagesPerBlock;
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageBytes;
    }
};

/** SSD-internal DRAM (LPDDR4-1866, 1 channel, 1 rank, 8 banks). */
struct DramConfig
{
    std::uint32_t banks = 8;
    std::uint32_t rowBytes = 8192;       // one DRAM row (mat-spanning)
    double busBytesPerSec = 3.7e9;       // effective LPDDR4 x32 bus

    Tick tRcd = nsToTicks(18);
    Tick tRp = nsToTicks(18);
    Tick tRas = nsToTicks(42);
    Tick tCas = nsToTicks(15);

    Tick bbopTicks = nsToTicks(49);      // one bulk-bitwise row op
};

/** SSD controller embedded cores (ARM Cortex-R8 class). */
struct IspConfig
{
    std::uint32_t cores = 5;             // total embedded cores
    std::uint32_t computeCores = 1;      // cores used for offloaded work
    double clockHz = 1.5e9;
    std::uint32_t simdBytes = 32;        // MVE vector width
    /**
     * Effective streaming bandwidth of the compute core to SSD DRAM.
     * The core is memory-bound for bulk vector work; this bounds its
     * sustained throughput.
     */
    double streamBytesPerSec = 3.2e9;
};

/** Host system baselines (roofline models + PCIe link). */
struct HostConfig
{
    double pcieBytesPerSec = 8.0e9;      // PCIe 4.0 x4 effective

    // Element throughputs (lanes per second, INT8) per latency class.
    // Calibrated so CPU is the 1x anchor of Fig. 5/7 and GPU averages
    // ~2.3x CPU while remaining PCIe-bound on streaming workloads.
    double cpuLowOpsPerSec = 6.0e9;
    double cpuMedOpsPerSec = 3.5e9;
    double cpuHighOpsPerSec = 6.0e8;

    double gpuLowOpsPerSec = 6.0e11;
    double gpuMedOpsPerSec = 4.0e11;
    double gpuHighOpsPerSec = 2.0e11;

    /** Fraction of the working set the host DRAM can retain. */
    double cpuCacheFraction = 0.35;
    /** The A100's 40 GB HBM retains more of the working set. */
    double gpuCacheFraction = 0.55;

    /**
     * Host software + NVMe protocol overhead charged per page-sized
     * miss that must be fetched from the SSD (block layer, command
     * submission/completion, interrupt), amortized over queue-depth
     * parallelism. SSD-internal paths do not pay this, which is one
     * root of NDP's advantage for I/O-intensive workloads (§3.1).
     */
    Tick ioOverheadPerPage = nsToTicks(1000);

    double cpuWatts = 105.0;             // Xeon Gold 5118 TDP
    double gpuWatts = 250.0;             // A100 sustained
    double pcieJoulesPerByte = 15e-12;   // link + root-complex energy
};

/** Energy constants (Table 2 + DRAM/core power models). */
struct EnergyConfig
{
    double readJPerChannel = 20.5e-6;    // Eread (SLC) per channel op
    double andOrJPerKb = 10e-9;          // EAND/OR per KB
    double xorJPerKb = 20e-9;            // EXOR per KB
    double latchJPerKb = 10e-9;          // Elatch per KB
    double dmaJPerChannel = 7.656e-6;    // EDMA per channel transfer
    double programJPerChannel = 65e-6;   // SLC program energy
    double bbopJ = 0.864e-9;             // one PuD row op
    double dramJPerByte = 40e-12;        // DRAM access energy
    double ispWatts = 1.2;               // one Cortex-R8 @1.5GHz
    double channelJPerByte = 6e-12;      // ONFI bus transfer energy
};

/**
 * Conduit runtime overhead constants (§4.5).
 *
 * Feature collection + instruction transformation; charged on the
 * offloader core per instruction, pipelined with execution.
 */
struct OverheadConfig
{
    Tick l2pLookupDram = nsToTicks(100); // per operand, entry cached
    Tick l2pLookupFlash = usToTicks(30); // per operand, entry missed
    Tick depTrackPerQueue = usToTicks(1);
    Tick queueTrackPerResource = usToTicks(1);
    Tick dmTableLookup = nsToTicks(100);
    Tick compTableLookup = nsToTicks(150);
    Tick translationLookup = nsToTicks(300);

    /**
     * Offloader issue interval: the decision pipeline overlaps its
     * SSD-DRAM table lookups, so per-instruction *latency* is the
     * sum of the components above (~3.77 us on average) while
     * *throughput* is one instruction per issue interval.
     */
    Tick issueTicks = nsToTicks(400);
};

/**
 * Per-resource compute latency model parameters.
 *
 * Latencies are for one native-width sub-operation; the engine splits
 * 4096-lane vectors into sub-operations per resource (§4.3.2) and
 * exploits each resource's internal parallelism (DRAM banks, flash
 * dies). Values derive from the cited substrates: MVE issue rates for
 * ISP, SIMDRAM/MIMDRAM bbop sequences for PuD, Flash-Cosmos MWS and
 * Ares-Flash shift_and_add step counts for IFP.
 */
struct ComputeModelConfig
{
    // PuD: bbops (ACT/PRE sequences) per row-wide operation. The
    // SIMDRAM substrate stores data bit-sliced (vertical layout), so
    // even bitwise operations process one bit-row per step. Values
    // are calibrated for 8-bit elements.
    std::uint32_t pudBitwiseBbops = 24;  // 3 AAPs per bit x 8 bits
    std::uint32_t pudAddBbops = 58;      // bit-serial INT8 addition
    std::uint32_t pudMulBbops = 380;     // bit-serial INT8 multiply
    std::uint32_t pudPredBbops = 40;     // bit-serial compare+select
    std::uint32_t pudCopyBbops = 16;     // RowClone AAP per bit-row

    // ISP: cycles per SIMD issue beyond the streaming bound.
    double ispCyclesPerSimdLow = 1.0;
    double ispCyclesPerSimdMed = 1.5;
    double ispCyclesPerSimdHigh = 4.0;
    double ispScalarCyclesPerElem = 2.0; // non-vectorized fallback
                                         // (Helium gather/scatter)

    // IFP: Ares-Flash bit-serial latch steps per element bit.
    std::uint32_t ifpAddStepsPerBit = 3;
    std::uint32_t ifpMulStepsPerBit = 26;
    /** Controller<->chip operand shuttles per IFP multiply. */
    std::uint32_t ifpMulShuttles = 6;
};

/**
 * Reliability & device-aging model (src/reliability/).
 *
 * Off by default: with @ref enabled false no reliability object is
 * constructed, no RNG stream is consumed, and every existing bench
 * output is byte-identical to a build without the subsystem.
 *
 * When enabled, each block's raw bit error rate grows with program/
 * erase cycling and retention age; the ECC engine converts RBER into
 * a read-latency ladder (hard decode -> read retries -> soft decode),
 * blocks whose correction history crosses a threshold are retired by
 * the FTL (shrinking over-provisioning), and a background scrub task
 * refreshes high-RBER blocks on the event queue.
 */
struct ReliabilityConfig
{
    /** Master switch; everything below is inert when false. */
    bool enabled = false;

    /** @name Device fast-forward (aged initial state) @{ */
    /** P/E cycles every block has already absorbed at t = 0. */
    std::uint32_t preWearCycles = 0;
    /** Retention age of the resident data at t = 0, in days. */
    double retentionDays = 0.0;
    /** @} */

    /** @name RBER model: rberFresh * exp(wearAlpha * pe/rated)
     *        * (1 + retentionBeta * (days/nominal)^1.1)
     *        * per-block jitter
     *  (the 1.1 retention exponent is fixed in RberModel — the
     *  constants below are calibrated for it) @{ */
    double rberFresh = 2e-4;        // fresh device, zero retention
    std::uint32_t ratedCycles = 3000;
    double wearAlpha = 3.4;         // ~30x RBER at rated cycles
    double retentionBeta = 4.0;     // 5x RBER at nominal retention
    double nominalRetentionDays = 90.0;
    /** Deterministic per-block variation: jitter in [1-j, 1+j]. */
    double blockJitter = 0.15;
    /** @} */

    /** @name ECC retry ladder @{ */
    /** Highest RBER the fast hard-decode path corrects for free. */
    double hardDecodeRber = 1e-3;
    /** Each read-retry step extends the correctable RBER by this. */
    double retryRberFactor = 1.6;
    std::uint32_t maxReadRetries = 8;
    /** Extra die-busy time per read-retry step (one re-sense). */
    Tick retryTicks = usToTicks(24);
    /** Soft-decode stage beyond the retry ladder (LDPC soft read). */
    Tick softDecodeTicks = usToTicks(90);
    /** Beyond this the sector is uncorrectable: full-ladder latency
     *  is charged and the block is queued for retirement. */
    double uncorrectableRber = 0.08;
    /** @} */

    /** @name Bad-block management @{ */
    /**
     * Soft-decoded reads a block absorbs before it is retired at its
     * next erase. Only reads that exhaust the retry ladder vote for
     * retirement — ordinary retries are routine on an aged device
     * and must not retire the whole pool — and an uncorrectable read
     * queues the block immediately.
     */
    std::uint32_t retireSoftThreshold = 8;
    /** @} */

    /** @name Background scrub @{ */
    /** Spacing of scrub passes in simulated time (0 disables). */
    Tick scrubIntervalTicks = msToTicks(10);
    /** Blocks examined per pass (bounded so passes stay cheap). */
    std::uint32_t scrubBlocksPerPass = 64;
    /** Blocks whose RBER exceeds this are refreshed (rewritten). */
    double scrubRberThreshold = 2e-2;
    /**
     * Refreshes per pass. A refresh migrates a whole block, so this
     * rate-limits scrub media traffic: on a device aged past the
     * threshold everywhere, scrub becomes a steady background load
     * instead of a storm that starves the foreground.
     */
    std::uint32_t scrubMaxRefreshPerPass = 1;
    /** @} */

    /** @name Background wear-leveling (off by default) @{ */
    /**
     * Migrate cold data out of low-wear blocks during scrub passes.
     * Allocation-time min-erase selection only levels blocks that
     * get erased; data that never moves pins its block at low wear
     * while the rest of the pool cycles. When enabled, each scrub
     * pass additionally refreshes (migrates + erases) the coldest
     * full closed block whenever the pool's erase-count spread
     * exceeds @ref wearLevelGap, returning the young block to write
     * service. Inert when false: byte-identical outputs.
     */
    bool wearLevelEnabled = false;
    /** Erase-count spread (max - min over used blocks) that
     *  triggers a cold-block migration. */
    std::uint32_t wearLevelGap = 8;
    /** Cold-block migrations per scrub pass (rate limit, like
     *  scrubMaxRefreshPerPass). */
    std::uint32_t wearLevelMaxPerPass = 1;
    /** @} */
};

/** Top-level simulated-system configuration. */
struct SsdConfig
{
    NandConfig nand;
    DramConfig dram;
    IspConfig isp;
    HostConfig host;
    EnergyConfig energy;
    OverheadConfig overhead;
    ComputeModelConfig compute;
    ReliabilityConfig reliability;

    /**
     * Default SIMD width produced by the vectorizer (lanes).
     * The paper uses -force-vector-width=4096 for 32-bit operands
     * (16 KiB per vector); with INT8-quantized data the page-aligned
     * equivalent is 16384 lanes, still 16 KiB per operand.
     */
    std::uint32_t vectorLanes = 16384;

    /** Fraction of DRAM rows reserved for PuD operand staging. */
    double dramComputeFraction = 0.5;

    /** DFTL mapping-cache coverage (fraction of L2P entries cached). */
    double mappingCacheCoverage = 0.25;

    /** GC trigger: free-block fraction threshold. */
    double gcThreshold = 0.05;

    std::uint64_t seed = 42;

    /**
     * Scale geometry down for fast experiments while keeping the
     * channel/die/plane ratios. scale = 1 is the full Table 2 device.
     */
    static SsdConfig scaled(double blocks_fraction);
};

} // namespace conduit

#endif // CONDUIT_SIM_CONFIG_HH
