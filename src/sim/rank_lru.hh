/**
 * @file
 * Order-statistics LRU: recency tracking with O(log n) rank selection.
 *
 * The host baseline's page cache evicts the entry `skip` steps from
 * the LRU end (CLOCK-like randomized victim selection). A linked
 * list answers that query by walking `skip` nodes — O(capacity) per
 * eviction, and the dominant wall-clock cost of every CPU/GPU
 * baseline cell. RankLru keeps the same recency order as monotone
 * timestamps indexed by a Fenwick tree, so move-to-front is O(log n)
 * and "the k-th entry from the tail" is a single O(log n) tree
 * descent instead of a k-step walk.
 *
 * The structure is an exact drop-in for the list semantics: touches
 * preserve identical recency order, and keyAtRankFromTail(r) returns
 * precisely the node a r-step tail walk would reach — callers keep
 * their RNG draws and get bit-identical victim sequences.
 *
 * Timestamp space is bounded: when the window fills, timestamps are
 * compacted in recency order (O(window), amortized O(1) per touch).
 */

#ifndef CONDUIT_SIM_RANK_LRU_HH
#define CONDUIT_SIM_RANK_LRU_HH

#include <algorithm>
#include <cstdint>
#include <vector>

namespace conduit
{

/** LRU set over dense keys with logarithmic rank-from-tail queries. */
class RankLru
{
  public:
    static constexpr std::uint64_t kNone = ~std::uint64_t{0};

    /**
     * Drop all entries. @p key_space bounds the dense key range
     * (grown on demand); @p expected_capacity sizes the timestamp
     * window (4x capacity between compactions).
     */
    void
    reset(std::uint64_t key_space, std::uint64_t expected_capacity)
    {
        ts_.assign(key_space, kNone);
        window_ = std::max<std::uint64_t>(64, 4 * expected_capacity);
        topBit_ = 1;
        while (topBit_ * 2 <= window_)
            topBit_ *= 2;
        tsToKey_.assign(window_, kNone);
        bit_.assign(window_ + 1, 0);
        nextTs_ = 0;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /**
     * Touch @p key: refresh its recency (hit, returns true) or
     * insert it as most recent (miss, returns false). Never evicts —
     * capacity policy belongs to the caller.
     */
    bool
    touch(std::uint64_t key)
    {
        if (key >= ts_.size())
            ts_.resize(key + 1, kNone);
        const bool hit = ts_[key] != kNone;
        if (hit)
            release(ts_[key]);
        else
            ++size_;
        place(key);
        return hit;
    }

    /**
     * Key @p rank steps from the least-recent end: rank 0 is the LRU
     * entry, rank size()-1 the most recent. @p rank must be < size().
     */
    std::uint64_t
    keyAtRankFromTail(std::uint64_t rank) const
    {
        // Find the (rank+1)-th smallest alive timestamp: a Fenwick
        // prefix descent for the first index whose alive-count
        // prefix reaches rank+1.
        std::uint64_t remain = rank + 1;
        std::uint64_t pos = 0; // 1-based running BIT index
        for (std::uint64_t mask = topBit_; mask != 0; mask >>= 1) {
            const std::uint64_t next = pos + mask;
            if (next <= window_ && bit_[next] < remain) {
                pos = next;
                remain -= bit_[next];
            }
        }
        return tsToKey_[pos]; // 1-based answer pos+1 -> timestamp pos
    }

    /** Remove @p key; no-op when absent (like FlatLru::eraseKey). */
    void
    eraseKey(std::uint64_t key)
    {
        if (!contains(key))
            return;
        release(ts_[key]);
        ts_[key] = kNone;
        --size_;
    }

    bool
    contains(std::uint64_t key) const
    {
        return key < ts_.size() && ts_[key] != kNone;
    }

  private:
    void
    bitAdd(std::uint64_t ts, int delta)
    {
        for (std::uint64_t i = ts + 1; i <= window_; i += i & (~i + 1))
            bit_[i] = static_cast<std::uint32_t>(
                static_cast<std::int64_t>(bit_[i]) + delta);
    }

    void
    release(std::uint64_t ts)
    {
        bitAdd(ts, -1);
        tsToKey_[ts] = kNone;
    }

    void
    place(std::uint64_t key)
    {
        if (nextTs_ == window_) {
            // Compaction must reclaim at least half the window to
            // stay amortized O(1); if the live set has outgrown the
            // caller's capacity hint, grow the window instead of
            // overflowing it.
            if (size_ * 2 > window_)
                grow(window_ * 2);
            compact();
        }
        ts_[key] = nextTs_;
        tsToKey_[nextTs_] = key;
        bitAdd(nextTs_, +1);
        ++nextTs_;
    }

    /** Widen the timestamp window (compact() rebuilds the BIT). */
    void
    grow(std::uint64_t window)
    {
        window_ = window;
        topBit_ = 1;
        while (topBit_ * 2 <= window_)
            topBit_ *= 2;
        tsToKey_.resize(window_, kNone);
        bit_.assign(window_ + 1, 0);
    }

    /** Renumber alive timestamps 0..size-1 preserving order. */
    void
    compact()
    {
        std::uint64_t n = 0;
        for (std::uint64_t t = 0; t < nextTs_; ++t) {
            const std::uint64_t key = tsToKey_[t];
            if (key == kNone)
                continue;
            tsToKey_[n] = key;
            ts_[key] = n;
            ++n;
        }
        std::fill(tsToKey_.begin() + static_cast<std::ptrdiff_t>(n),
                  tsToKey_.end(), kNone);
        std::fill(bit_.begin(), bit_.end(), 0);
        for (std::uint64_t t = 0; t < n; ++t)
            bitAdd(t, +1);
        nextTs_ = n;
    }

    std::vector<std::uint64_t> ts_;      // key -> timestamp
    std::vector<std::uint64_t> tsToKey_; // timestamp -> key
    std::vector<std::uint32_t> bit_;     // Fenwick over alive stamps
    std::uint64_t window_ = 0;
    std::uint64_t topBit_ = 0;
    std::uint64_t nextTs_ = 0;
    std::size_t size_ = 0;
};

} // namespace conduit

#endif // CONDUIT_SIM_RANK_LRU_HH
