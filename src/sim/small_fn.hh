/**
 * @file
 * Small-buffer-optimized move-only callable holder.
 *
 * The event kernel stores one callback per scheduled event. Every
 * callback in this repository is a lambda capturing at most a few
 * pointers (`[this, &ctx, done]` is the largest), yet std::function's
 * small-object buffer on common ABIs is 16 bytes — so the hot
 * schedule/fire path paid one heap allocation and one deallocation
 * per event. SmallFn inlines captures up to kInlineBytes (48) and
 * only falls back to the heap beyond that, which no current caller
 * reaches.
 */

#ifndef CONDUIT_SIM_SMALL_FN_HH
#define CONDUIT_SIM_SMALL_FN_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace conduit
{

/** Move-only `void()` callable with a 48-byte inline buffer. */
class SmallFn
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn>>>
    SmallFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(buf_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<void **>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    void
    operator()()
    {
        ops_->invoke(buf_);
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        void (*relocate)(void *dst, void *src); // move + destroy src
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= kInlineBytes &&
            alignof(Fn) <= alignof(std::max_align_t) &&
            std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            ::new (dst) Fn(std::move(*static_cast<Fn *>(src)));
            static_cast<Fn *>(src)->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    // The buffer holds a void* object on the heap path; read it back
    // as void* and cast the value (not the storage) to Fn*, so no
    // object is accessed through a non-similar type.
    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) {
            (*static_cast<Fn *>(*static_cast<void **>(p)))();
        },
        [](void *dst, void *src) {
            *static_cast<void **>(dst) = *static_cast<void **>(src);
        },
        [](void *p) {
            delete static_cast<Fn *>(*static_cast<void **>(p));
        },
    };

    void
    moveFrom(SmallFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(buf_, other.buf_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace conduit

#endif // CONDUIT_SIM_SMALL_FN_HH
