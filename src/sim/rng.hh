/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generators and allocation policies use this instead of
 * std::mt19937 so that results are reproducible across standard
 * library implementations (the C++ standard fixes mersenne-twister
 * output but not distribution outputs).
 */

#ifndef CONDUIT_SIM_RNG_HH
#define CONDUIT_SIM_RNG_HH

#include <cstdint>

namespace conduit
{

/**
 * xoshiro256** generator seeded via splitmix64.
 *
 * Fast, high-quality, and fully specified here, so every platform
 * produces the same stream for the same seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) { reseed(seed); }

    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the 256-bit state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    /** Uniform 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Debiased multiply-shift (Lemire).
        unsigned __int128 m =
            static_cast<unsigned __int128>(next()) * bound;
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** @name Stream-position equality (DeviceImage fork tests) @{ */
    friend bool
    operator==(const Rng &a, const Rng &b)
    {
        return a.state_[0] == b.state_[0] && a.state_[1] == b.state_[1] &&
            a.state_[2] == b.state_[2] && a.state_[3] == b.state_[3];
    }
    friend bool operator!=(const Rng &a, const Rng &b) { return !(a == b); }
    /** @} */

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4] = {};
};

} // namespace conduit

#endif // CONDUIT_SIM_RNG_HH
