#include "src/sim/config.hh"

#include <algorithm>
#include <cmath>

namespace conduit
{

SsdConfig
SsdConfig::scaled(double blocks_fraction)
{
    SsdConfig cfg;
    if (blocks_fraction >= 1.0)
        return cfg;
    const double f = std::max(blocks_fraction, 1e-6);
    const auto blocks = static_cast<std::uint32_t>(
        std::max(4.0, std::round(cfg.nand.blocksPerPlane * f)));
    cfg.nand.blocksPerPlane = blocks;
    return cfg;
}

} // namespace conduit
