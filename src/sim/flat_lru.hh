/**
 * @file
 * Flat intrusive LRU list over preallocated nodes.
 *
 * Three hot paths in the simulator maintain recency lists keyed by
 * dense page numbers: the FTL's demand mapping cache, the engine's
 * DRAM staging buffer, and the host baseline's page cache. All three
 * previously used std::list + unordered_map, paying a node
 * allocation plus a hash per touch and chasing list pointers across
 * the heap on every eviction walk. FlatLru replaces both structures:
 * nodes live contiguously in a pooled vector linked by 32-bit
 * indices, and lookup is a direct-mapped index array over the dense
 * key space — no hashing, no per-touch allocation, and eviction
 * walks stay inside one compact allocation.
 *
 * The recency semantics are exactly those of the code it replaces
 * (move-to-front on hit, push-front on miss, walks from the tail),
 * so converting a caller is wall-clock-only: hit/miss and victim
 * sequences are bit-identical.
 */

#ifndef CONDUIT_SIM_FLAT_LRU_HH
#define CONDUIT_SIM_FLAT_LRU_HH

#include <cstdint>
#include <vector>

namespace conduit
{

/**
 * Intrusive most-recently-used list with direct-mapped lookup.
 *
 * Keys must be dense (bounded by the key-space size given to
 * reset()); keys at or beyond the bound grow the index on first
 * touch. Node handles are stable until the node is erased.
 */
class FlatLru
{
  public:
    using Node = std::uint32_t;
    static constexpr Node kNone = ~Node{0};

    /** Drop all entries and size the direct-mapped index. */
    void
    reset(std::uint64_t key_space)
    {
        nodes_.clear();
        index_.assign(key_space, kNone);
        head_ = tail_ = freeHead_ = kNone;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Most recently used node (or kNone). */
    Node head() const { return head_; }
    /** Least recently used node (or kNone). */
    Node tail() const { return tail_; }
    /** Neighbour toward the head (more recent), or kNone. */
    Node prev(Node n) const { return nodes_[n].prev; }
    /** Neighbour toward the tail (less recent), or kNone. */
    Node next(Node n) const { return nodes_[n].next; }
    std::uint64_t keyOf(Node n) const { return nodes_[n].key; }

    /** Node holding @p key, or kNone. */
    Node
    find(std::uint64_t key) const
    {
        return key < index_.size() ? index_[key] : kNone;
    }

    /**
     * Touch @p key: on hit move its node to the front and return
     * true; on miss insert a fresh front node and return false.
     * Never evicts — capacity policy belongs to the caller.
     */
    bool
    touch(std::uint64_t key)
    {
        const Node n = find(key);
        if (n != kNone) {
            moveToFront(n);
            return true;
        }
        insertFront(key);
        return false;
    }

    /** Unlink @p n and recycle it. */
    void
    erase(Node n)
    {
        unlink(n);
        index_[nodes_[n].key] = kNone;
        nodes_[n].next = freeHead_;
        freeHead_ = n;
        --size_;
    }

    /** Erase by key; no-op when absent. */
    void
    eraseKey(std::uint64_t key)
    {
        const Node n = find(key);
        if (n != kNone)
            erase(n);
    }

    /** Evict the least recently used entry and return its key. */
    std::uint64_t
    popTail()
    {
        const Node n = tail_;
        const std::uint64_t key = nodes_[n].key;
        erase(n);
        return key;
    }

  private:
    struct Entry
    {
        std::uint64_t key;
        Node prev;
        Node next;
    };

    void
    insertFront(std::uint64_t key)
    {
        Node n;
        if (freeHead_ != kNone) {
            n = freeHead_;
            freeHead_ = nodes_[n].next;
        } else {
            n = static_cast<Node>(nodes_.size());
            nodes_.emplace_back();
        }
        nodes_[n].key = key;
        nodes_[n].prev = kNone;
        nodes_[n].next = head_;
        if (head_ != kNone)
            nodes_[head_].prev = n;
        head_ = n;
        if (tail_ == kNone)
            tail_ = n;
        if (key >= index_.size())
            index_.resize(key + 1, kNone);
        index_[key] = n;
        ++size_;
    }

    void
    moveToFront(Node n)
    {
        if (n == head_)
            return;
        unlink(n);
        nodes_[n].prev = kNone;
        nodes_[n].next = head_;
        nodes_[head_].prev = n;
        head_ = n;
        if (tail_ == kNone)
            tail_ = n;
    }

    void
    unlink(Node n)
    {
        const Node p = nodes_[n].prev;
        const Node x = nodes_[n].next;
        if (p != kNone)
            nodes_[p].next = x;
        else
            head_ = x;
        if (x != kNone)
            nodes_[x].prev = p;
        else
            tail_ = p;
    }

    std::vector<Entry> nodes_;
    std::vector<Node> index_; // key -> node, direct-mapped
    Node head_ = kNone;
    Node tail_ = kNone;
    Node freeHead_ = kNone;
    std::size_t size_ = 0;
};

} // namespace conduit

#endif // CONDUIT_SIM_FLAT_LRU_HH
