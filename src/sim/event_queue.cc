#include "src/sim/event_queue.hh"

#include <stdexcept>

namespace conduit
{

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling event in the past");
    const EventId id = nextId_++;
    heap_.push(Entry{when, priority, id, std::move(cb)});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Lazy cancellation: we cannot remove from the middle of the heap,
    // so remember the id and discard the entry when it surfaces.
    if (id == 0 || id >= nextId_)
        return false;
    return cancelled_.insert(id).second;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        now_ = e.when;
        ++fired_;
        e.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        // Peek past cancelled entries to find the next live event time.
        while (!heap_.empty() &&
               cancelled_.count(heap_.top().id)) {
            cancelled_.erase(heap_.top().id);
            heap_.pop();
        }
        if (heap_.empty() || heap_.top().when > until)
            break;
        if (runOne())
            ++n;
    }
    return n;
}

} // namespace conduit
