#include "src/sim/event_queue.hh"

#include <algorithm>
#include <stdexcept>

namespace conduit
{

namespace
{

/** An EventId packs (generation << 32) | slot. */
constexpr EventId
packId(std::uint32_t slot, std::uint32_t gen)
{
    return (static_cast<EventId>(gen) << 32) | slot;
}

constexpr std::uint32_t
idSlot(EventId id)
{
    return static_cast<std::uint32_t>(id);
}

constexpr std::uint32_t
idGen(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

/** Firing a drained entry touches its (random) slab line; fetch it
 *  this many entries ahead of the drain front. */
constexpr std::size_t kPrefetchAhead = 8;

} // namespace

EventQueue::Recycler &
EventQueue::recycler()
{
    static thread_local Recycler r;
    return r;
}

std::vector<EventQueue::Entry>
EventQueue::takePooledVec()
{
    Recycler &r = recycler();
    if (r.vecs.empty())
        return {};
    std::vector<Entry> v = std::move(r.vecs.back());
    r.vecs.pop_back();
    v.clear();
    return v;
}

EventQueue::EventQueue() : overflow_(takePooledVec()) {}

EventQueue::~EventQueue()
{
    // Armed callbacks must still be destroyed (their captures own
    // resources); a drained queue has none, so the walk is skipped.
    if (live_ != 0) {
        for (auto &chunk : chunks_)
            for (std::size_t i = 0; i < kChunkSize; ++i)
                chunk[i].cb.reset();
    }
    Recycler &r = recycler();
    constexpr std::size_t kMaxPoolChunks = 4096; // 128 MiB of slots
    constexpr std::size_t kMaxPoolVecs = kMaxBuckets * 2 + 64;
    for (auto &chunk : chunks_) {
        if (r.chunks.size() >= kMaxPoolChunks)
            break;
        r.chunks.emplace_back(std::move(chunk));
    }
    const auto give = [&r](std::vector<Entry> &v) {
        if (v.capacity() != 0 && r.vecs.size() < kMaxPoolVecs) {
            v.clear();
            r.vecs.emplace_back(std::move(v));
        }
    };
    for (auto &v : buckets_)
        give(v);
    give(sortScratch_);
    give(overflow_); // biggest buffer last: the next ctor pops it first
}

std::uint32_t
EventQueue::acquireSlot(Callback &&cb)
{
    if (freeHead_ != kNoSlot) {
        const std::uint32_t slot = freeHead_;
        Slot &s = slotAt(slot);
        freeHead_ = s.nextFree;
        s.cb = std::move(cb);
        return slot;
    }
    if ((slotCount_ & kChunkMask) == 0) {
        Recycler &r = recycler();
        if (!r.chunks.empty()) {
            // Recycled slots carry arbitrary generations (still
            // unique per slot lifetime) and null callbacks.
            chunks_.emplace_back(std::move(r.chunks.back()));
            r.chunks.pop_back();
        } else {
            chunks_.emplace_back(new Slot[kChunkSize]);
        }
    }
    const std::uint32_t slot = static_cast<std::uint32_t>(slotCount_++);
    slotAt(slot).cb = std::move(cb);
    return slot;
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slotAt(slot);
    s.cb.reset();
    ++s.gen; // stale EventIds and resident entries stop matching
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

std::size_t
EventQueue::bucketIndex(Tick when) const
{
    // when may trail winStart_ (now_ can lag the window after a
    // re-anchor) or trail the drain front's bucket (now_ can lag the
    // active bucket's range); both clamp forward — within-bucket
    // sorting restores exact order.
    std::size_t b = 0;
    if (when > winStart_) {
        const Tick idx = (when - winStart_) >> widthShift_;
        b = idx >= bucketCount_ ? bucketCount_ - 1
                                : static_cast<std::size_t>(idx);
    }
    return b < curBucket_ ? curBucket_ : b;
}

void
EventQueue::insertCalendar(const Entry &e)
{
    const std::size_t b = bucketIndex(e.when);
    std::vector<Entry> &vec = buckets_[b];
    if (b == curBucket_ && curSorted_) {
        // The active bucket is mid-drain: keep its undrained tail
        // ordered. The insertion point can never precede drainPos_ —
        // everything already drained compares no later than the last
        // fired event, and a new entry always compares after it (its
        // tick is >= now_ and its sequence is the largest issued).
        vec.insert(std::lower_bound(
                       vec.begin() +
                           static_cast<std::ptrdiff_t>(drainPos_),
                       vec.end(), e,
                       [](const Entry &a, const Entry &b) {
                           return earlier(a, b);
                       }),
                   e);
    } else {
        vec.push_back(e);
    }
    ++calEntries_;
}

void
EventQueue::reAnchor()
{
    // Only a fully drained husk can remain in the old window.
    if (curBucket_ < bucketCount_)
        buckets_[curBucket_].clear();

    const std::size_t n = overflow_.size();
    const std::size_t k = std::clamp(n, kMinBuckets, kMaxBuckets);
    const Tick span = ovMax_ - ovMin_;
    Tick w;
    if (span == 0) {
        // A lone far-future entry means the window was too narrow for
        // the workload's inter-event gap: double the width so sparse
        // self-scheduling chains converge to a window they stay in.
        if (n == 1)
            w = lastWidth_ >= (Tick{1} << 62) ? lastWidth_
                                              : lastWidth_ * 2;
        else
            w = 1;
    } else {
        // Round up to a power of two: bucket lookup becomes a shift.
        const Tick w0 = span / k + 1;
        w = w0 <= 1 ? 1
                    : Tick{1} << (64 - __builtin_clzll(w0 - 1));
    }
    lastWidth_ = w;
    widthShift_ = static_cast<unsigned>(__builtin_ctzll(w));
    winStart_ = ovMin_;
    openEnded_ = w > (kMaxTick - winStart_) / k;
    winEnd_ = openEnded_ ? kMaxTick
                         : winStart_ + w * static_cast<Tick>(k);
    while (buckets_.size() < k)
        buckets_.push_back(takePooledVec());
    bucketCount_ = k;
    curBucket_ = 0;
    drainPos_ = 0;
    curSorted_ = false;

    // Counting pass first so each bucket is reserved exactly once —
    // the scatter then never reallocates mid-pass.
    std::vector<std::size_t> counts(k, 0);
    for (const Entry &e : overflow_)
        ++counts[bucketIndex(e.when)];
    for (std::size_t b = 0; b < k; ++b) {
        if (counts[b] > buckets_[b].capacity())
            buckets_[b].reserve(counts[b]);
    }
    for (const Entry &e : overflow_)
        buckets_[bucketIndex(e.when)].push_back(e);
    calEntries_ = n; // cancelled leftovers migrate with the rest
    overflow_.clear();
    ovMin_ = kMaxTick;
    ovMax_ = 0;
}

void
EventQueue::sortBucket(std::vector<Entry> &vec)
{
    const std::size_t n = vec.size();
    if (n < 2)
        return;
    // A bucket is filled strictly in sequence order (the re-anchor
    // scatter walks the overflow in push order; every later append
    // carries a larger sequence), so a *stable* sort by
    // (when, priority) alone yields full (when, priority, seq) fire
    // order. When the composite key range is small — it usually is:
    // bucket width is bounded and priorities cluster near zero — a
    // counting sort does it in O(n + range) with no comparisons.
    Tick minW = vec[0].when, maxW = minW;
    int minP = vec[0].priority, maxP = minP;
    for (std::size_t i = 1; i < n; ++i) {
        minW = std::min(minW, vec[i].when);
        maxW = std::max(maxW, vec[i].when);
        minP = std::min(minP, vec[i].priority);
        maxP = std::max(maxP, vec[i].priority);
    }
    const Tick wRange = maxW - minW + 1;
    const std::uint64_t pRange =
        static_cast<std::uint64_t>(maxP) - minP + 1;
    constexpr std::uint64_t kMaxKeys = 16384;
    if (wRange != 0 && pRange <= kMaxKeys &&
        wRange <= kMaxKeys / pRange) {
        const std::size_t keys =
            static_cast<std::size_t>(wRange * pRange);
        sortCounts_.assign(keys + 1, 0);
        const auto key = [&](const Entry &e) {
            return static_cast<std::size_t>(
                (e.when - minW) * pRange +
                static_cast<std::uint64_t>(e.priority - minP));
        };
        for (const Entry &e : vec)
            ++sortCounts_[key(e) + 1];
        for (std::size_t i = 1; i <= keys; ++i)
            sortCounts_[i] += sortCounts_[i - 1];
        if (sortScratch_.capacity() == 0)
            sortScratch_ = takePooledVec();
        sortScratch_.resize(n);
        for (const Entry &e : vec)
            sortScratch_[sortCounts_[key(e)]++] = e;
        vec.swap(sortScratch_); // scratch becomes the next scratch
    } else {
        std::sort(vec.begin(), vec.end(),
                  [](const Entry &a, const Entry &b) {
                      return earlier(a, b);
                  });
    }
}

bool
EventQueue::advanceToLive()
{
    for (;;) {
        if (calEntries_ == 0) {
            if (overflow_.empty())
                return false;
            reAnchor();
        }
        std::vector<Entry> &vec = buckets_[curBucket_];
        if (drainPos_ >= vec.size()) {
            vec.clear();
            ++curBucket_;
            drainPos_ = 0;
            curSorted_ = false;
            continue;
        }
        if (!curSorted_) {
            sortBucket(vec);
            curSorted_ = true;
        }
        while (drainPos_ < vec.size() && !liveEntry(vec[drainPos_])) {
            ++drainPos_;
            --cancelled_;
            --calEntries_;
        }
        if (drainPos_ >= vec.size())
            continue;
        // Trim the drained prefix once it dominates the bucket: in
        // the open-ended steady state one bucket hosts the whole run,
        // and without this the husk would grow without bound.
        if (drainPos_ >= kTrimMinDrained && drainPos_ * 2 >= vec.size()) {
            vec.erase(vec.begin(),
                      vec.begin() + static_cast<std::ptrdiff_t>(drainPos_));
            drainPos_ = 0;
        }
        return true;
    }
}

void
EventQueue::fireFront()
{
    const std::vector<Entry> &vec = buckets_[curBucket_];
    const Entry e = vec[drainPos_];
    if (drainPos_ + kPrefetchAhead < vec.size())
        __builtin_prefetch(&slotAt(vec[drainPos_ + kPrefetchAhead].slot),
                           1 /* for write */, 1);
    ++drainPos_;
    --calEntries_;
    // Release before invoking: the callback sees the event as fired
    // (its id is no longer cancellable) and may reuse the slot.
    Callback cb = std::move(slotAt(e.slot).cb);
    releaseSlot(e.slot);
    --live_;
    now_ = e.when;
    ++fired_;
    if (cb) // an empty callback fires as a no-op
        cb();
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling event in the past");
    const std::uint32_t slot = acquireSlot(std::move(cb));
    const std::uint32_t gen = slotAt(slot).gen;
    const Entry e{when, nextSeq_++, slot, gen, priority};
    if (inWindow(when)) {
        insertCalendar(e);
    } else {
        overflow_.push_back(e);
        if (when < ovMin_)
            ovMin_ = when;
        if (when > ovMax_)
            ovMax_ = when;
    }
    ++live_;
    return packId(slot, gen);
}

bool
EventQueue::cancel(EventId id)
{
    // Only still-pending ids are cancellable — fired, already-
    // cancelled, and never-issued ids report false: releasing a slot
    // bumps its generation, and a free slot's current generation is
    // only ever issued to its next occupant, so a generation match
    // proves the id is the slot's live occupant. The slot is
    // released immediately; the resident entry goes stale and is
    // discarded when the drain front surfaces it, or sooner by
    // compactAll() once dead entries outnumber the live half.
    const std::uint32_t slot = idSlot(id);
    if (slot >= slotCount_ || slotAt(slot).gen != idGen(id))
        return false;
    releaseSlot(slot);
    --live_;
    ++cancelled_;
    if (cancelled_ * 2 > heapEntries() &&
        heapEntries() >= kCompactMinEntries)
        compactAll();
    return true;
}

void
EventQueue::compactAll()
{
    const auto dead = [this](const Entry &e) { return !liveEntry(e); };

    overflow_.erase(
        std::remove_if(overflow_.begin(), overflow_.end(), dead),
        overflow_.end());
    ovMin_ = kMaxTick;
    ovMax_ = 0;
    for (const Entry &e : overflow_) {
        if (e.when < ovMin_)
            ovMin_ = e.when;
        if (e.when > ovMax_)
            ovMax_ = e.when;
    }

    calEntries_ = 0;
    for (std::size_t b = curBucket_; b < bucketCount_; ++b) {
        std::vector<Entry> &vec = buckets_[b];
        if (b == curBucket_ && drainPos_ > 0) {
            // Drop the drained prefix along with the dead entries;
            // the stable filter keeps a sorted bucket sorted.
            std::size_t out = 0;
            for (std::size_t i = drainPos_; i < vec.size(); ++i)
                if (liveEntry(vec[i]))
                    vec[out++] = vec[i];
            vec.resize(out);
            drainPos_ = 0;
        } else {
            vec.erase(std::remove_if(vec.begin(), vec.end(), dead),
                      vec.end());
        }
        calEntries_ += vec.size();
    }
    cancelled_ = 0;
}

bool
EventQueue::runOne()
{
    if (!advanceToLive())
        return false;
    fireFront();
    return true;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    while (advanceToLive()) {
        if (buckets_[curBucket_][drainPos_].when > until)
            break;
        fireFront();
        ++n;
    }
    return n;
}

bool
EventQueue::auditPendingConservation() const
{
    std::size_t resident = 0;
    std::size_t liveCount = 0;
    for (std::size_t b = 0; b < bucketCount_; ++b) {
        const std::vector<Entry> &vec = buckets_[b];
        if (b < curBucket_) {
            if (!vec.empty())
                return false; // passed buckets must be cleared
            continue;
        }
        const std::size_t start = b == curBucket_ ? drainPos_ : 0;
        for (std::size_t i = start; i < vec.size(); ++i) {
            ++resident;
            if (liveEntry(vec[i]))
                ++liveCount;
        }
    }
    if (resident != calEntries_)
        return false;
    for (const Entry &e : overflow_) {
        ++resident;
        if (liveEntry(e))
            ++liveCount;
    }
    return liveCount == live_ && resident - liveCount == cancelled_;
}

} // namespace conduit
