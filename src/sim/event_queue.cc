#include "src/sim/event_queue.hh"

#include <algorithm>
#include <stdexcept>

namespace conduit
{

namespace
{

/** An EventId packs (generation << 32) | slot. */
constexpr EventId
packId(std::uint32_t slot, std::uint32_t gen)
{
    return (static_cast<EventId>(gen) << 32) | slot;
}

constexpr std::uint32_t
idSlot(EventId id)
{
    return static_cast<std::uint32_t>(id);
}

constexpr std::uint32_t
idGen(EventId id)
{
    return static_cast<std::uint32_t>(id >> 32);
}

} // namespace

std::uint32_t
EventQueue::acquireSlot(Callback cb)
{
    if (freeHead_ != kNoSlot) {
        const std::uint32_t slot = freeHead_;
        freeHead_ = slots_[slot].nextFree;
        slots_[slot].cb = std::move(cb);
        return slot;
    }
    slots_.emplace_back();
    slots_.back().cb = std::move(cb);
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

void
EventQueue::releaseSlot(std::uint32_t slot)
{
    Slot &s = slots_[slot];
    s.cb.reset();
    ++s.gen; // stale EventIds and heap entries stop matching
    s.nextFree = freeHead_;
    freeHead_ = slot;
}

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling event in the past");
    const std::uint32_t slot = acquireSlot(std::move(cb));
    const std::uint32_t gen = slots_[slot].gen;
    heap_.push_back(Entry{when, nextSeq_++, slot, gen, priority});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_;
    return packId(slot, gen);
}

bool
EventQueue::cancel(EventId id)
{
    // Only still-pending ids are cancellable — fired, already-
    // cancelled, and never-issued ids report false: releasing a slot
    // bumps its generation, and a free slot's current generation is
    // only ever issued to its next occupant, so a generation match
    // proves the id is the slot's live occupant. The slot is
    // released immediately; the heap entry goes stale and is
    // discarded when it surfaces, or sooner by compact() once dead
    // entries outnumber the live half.
    const std::uint32_t slot = idSlot(id);
    if (slot >= slots_.size() || slots_[slot].gen != idGen(id))
        return false;
    releaseSlot(slot);
    --live_;
    ++cancelled_;
    if (cancelled_ * 2 > heap_.size() &&
        heap_.size() >= kCompactMinEntries)
        compact();
    return true;
}

void
EventQueue::compact()
{
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                               [this](const Entry &e) {
                                   return !liveEntry(e);
                               }),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    cancelled_ = 0;
}

bool
EventQueue::skimCancelled()
{
    while (!heap_.empty() && !liveEntry(heap_.front())) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();
        --cancelled_;
    }
    return !heap_.empty();
}

bool
EventQueue::runOne()
{
    if (!skimCancelled())
        return false;
    const Entry e = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    // Release before invoking: the callback sees the event as fired
    // (its id is no longer cancellable) and may reuse the slot.
    Callback cb = std::move(slots_[e.slot].cb);
    releaseSlot(e.slot);
    --live_;
    now_ = e.when;
    ++fired_;
    if (cb) // an empty callback fires as a no-op
        cb();
    return true;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    while (skimCancelled()) {
        if (heap_.front().when > until)
            break;
        if (runOne())
            ++n;
    }
    return n;
}

} // namespace conduit
