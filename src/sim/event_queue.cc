#include "src/sim/event_queue.hh"

#include <stdexcept>

namespace conduit
{

EventId
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling event in the past");
    const EventId id = nextId_++;
    heap_.push(Entry{when, priority, id, std::move(cb)});
    live_.insert(id);
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    // Lazy cancellation: we cannot remove from the middle of the
    // heap, so drop the id from the live set and discard the entry
    // when it surfaces. Only still-pending ids are cancellable —
    // fired, already-cancelled, and never-issued ids report false.
    return live_.erase(id) != 0;
}

bool
EventQueue::runOne()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        if (live_.erase(e.id) == 0)
            continue; // cancelled
        now_ = e.when;
        ++fired_;
        e.cb();
        return true;
    }
    return false;
}

std::uint64_t
EventQueue::run(Tick until)
{
    std::uint64_t n = 0;
    while (!heap_.empty()) {
        // Peek past cancelled entries to find the next live event time.
        while (!heap_.empty() && !live_.count(heap_.top().id))
            heap_.pop();
        if (heap_.empty() || heap_.top().when > until)
            break;
        if (runOne())
            ++n;
    }
    return n;
}

} // namespace conduit
