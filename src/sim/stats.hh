/**
 * @file
 * Statistics collection: counters, means, and full-sample histograms.
 *
 * Tail-latency experiments (Fig. 8 of the paper) need exact 99th and
 * 99.99th percentiles, so Histogram keeps every sample. Workloads in
 * this repository produce at most a few hundred thousand samples, so
 * the memory cost is negligible compared to quantile fidelity.
 */

#ifndef CONDUIT_SIM_STATS_HH
#define CONDUIT_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace conduit
{

/** A monotonically growing named counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Exact-quantile histogram over double-valued samples.
 *
 * Samples are stored verbatim; quantiles use the nearest-rank method
 * on a lazily sorted copy.
 */
class Histogram
{
  public:
    void
    add(double sample)
    {
        samples_.push_back(sample);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    double
    sum() const
    {
        double s = 0.0;
        for (double v : samples_)
            s += v;
        return s;
    }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum() / samples_.size();
    }

    double
    min() const
    {
        return samples_.empty()
            ? 0.0
            : *std::min_element(samples_.begin(), samples_.end());
    }

    double
    max() const
    {
        return samples_.empty()
            ? 0.0
            : *std::max_element(samples_.begin(), samples_.end());
    }

    /**
     * Nearest-rank percentile.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Append every sample of @p other (aggregate histograms). */
    void
    merge(const Histogram &other)
    {
        samples_.insert(samples_.end(), other.samples_.begin(),
                        other.samples_.end());
        sorted_ = false;
    }

    void
    clear()
    {
        samples_.clear();
        cache_.clear();
        sorted_ = false;
    }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> cache_;
    mutable bool sorted_ = false;
};

/**
 * A registry of named counters/histograms for a simulation run.
 *
 * Components look up their stats by dotted path (e.g.
 * "nand.reads", "conduit.instr_latency"). Lookup creates on demand.
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Histogram &histogram(const std::string &name) { return hists_[name]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    /** Render all counters as "name value" lines (for debugging). */
    std::string dump() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> hists_;
};

} // namespace conduit

#endif // CONDUIT_SIM_STATS_HH
