/**
 * @file
 * Statistics collection: counters, means, and full-sample histograms.
 *
 * Tail-latency experiments (Fig. 8 of the paper) need exact 99th and
 * 99.99th percentiles, so Histogram keeps every sample. Workloads in
 * this repository produce at most a few hundred thousand samples, so
 * the memory cost is negligible compared to quantile fidelity.
 */

#ifndef CONDUIT_SIM_STATS_HH
#define CONDUIT_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace conduit
{

/** A monotonically growing named counter. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Exact-quantile histogram over double-valued samples.
 *
 * Samples are stored verbatim; quantiles use the nearest-rank method
 * on a lazily sorted copy (sorted once per mutation epoch, so a
 * batch of percentile() calls pays one sort). Sum, min and max are
 * maintained as running values — reading them never re-scans the
 * sample vector.
 */
class Histogram
{
  public:
    void
    add(double sample)
    {
        samples_.push_back(sample);
        accumulate(sample);
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }

    double sum() const { return sum_; }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    double min() const { return samples_.empty() ? 0.0 : min_; }

    double max() const { return samples_.empty() ? 0.0 : max_; }

    /**
     * Nearest-rank percentile.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Append every sample of @p other (aggregate histograms). */
    void
    merge(const Histogram &other)
    {
        samples_.reserve(samples_.size() + other.samples_.size());
        // Fold sample by sample: the running sum then matches a
        // sequential re-scan of the concatenated vector bit for bit
        // (adding other.sum_ in one step would round differently).
        for (double v : other.samples_) {
            samples_.push_back(v);
            accumulate(v);
        }
        sorted_ = false;
    }

    void
    clear()
    {
        samples_.clear();
        cache_.clear();
        sorted_ = false;
        sum_ = 0.0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    void
    accumulate(double sample)
    {
        if (samples_.size() == 1) {
            min_ = max_ = sample;
        } else {
            min_ = std::min(min_, sample);
            max_ = std::max(max_, sample);
        }
        sum_ += sample;
    }

    std::vector<double> samples_;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    mutable std::vector<double> cache_;
    mutable bool sorted_ = false;
};

/**
 * A registry of named counters/histograms for a simulation run.
 *
 * Components look up their stats by dotted path (e.g.
 * "nand.reads", "conduit.instr_latency"). Lookup creates on demand.
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Histogram &histogram(const std::string &name) { return hists_[name]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    /** Render all counters as "name value" lines (for debugging). */
    std::string dump() const;

    /**
     * Overwrite this set's contents with @p src's (DeviceImage
     * restore). Plain assignment would discard the map nodes that
     * subsystems cached raw Counter pointers into at construction,
     * so instead every existing entry is zeroed in place and the
     * source values are folded in through find-or-create lookups —
     * addresses survive, entries absent from @p src reset to empty,
     * and Histogram's sample-by-sample merge reproduces the running
     * sum/min/max bit for bit.
     */
    void
    restoreFrom(const StatSet &src)
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : hists_)
            kv.second.clear();
        for (const auto &kv : src.counters_)
            counters_[kv.first].inc(kv.second.value());
        for (const auto &kv : src.hists_)
            hists_[kv.first].merge(kv.second);
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> hists_;
};

} // namespace conduit

#endif // CONDUIT_SIM_STATS_HH
