/**
 * @file
 * The vectorized instruction stream produced by compile-time
 * preprocessing (§4.3.1) and consumed by the runtime offloader.
 *
 * Each VecInstruction is one SIMD operation with the lightweight
 * metadata the compiler pass embeds in the optimized IR: operation
 * type, operand logical-page locations, element size, vector length
 * and producer dependences. The runtime never re-derives any of this;
 * keeping decisions cheap is what makes instruction-granularity
 * offloading viable (§4.5).
 */

#ifndef CONDUIT_IR_INSTRUCTION_HH
#define CONDUIT_IR_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/opcode.hh"

namespace conduit
{

/** Identifier of a vector instruction within a program. */
using InstrId = std::uint64_t;

/** Sentinel for "no instruction". */
constexpr InstrId kNoInstr = ~static_cast<InstrId>(0);

/**
 * A contiguous run of logical pages holding one vector operand.
 *
 * Operands are addressed at logical-page granularity because that is
 * the granularity of the FTL's L2P mapping and of Conduit's coherence
 * metadata (§4.4).
 */
struct Operand
{
    std::uint64_t basePage = 0;
    std::uint32_t pageCount = 0;

    bool
    overlaps(const Operand &o) const
    {
        return basePage < o.basePage + o.pageCount &&
            o.basePage < basePage + pageCount;
    }

    bool
    contains(std::uint64_t page) const
    {
        return page >= basePage && page < basePage + pageCount;
    }
};

/**
 * One vectorized (or residual scalar) instruction.
 */
struct VecInstruction
{
    InstrId id = 0;

    OpCode op = OpCode::Add;

    /** Element width in bits (workloads are INT8-quantized: 8). */
    std::uint16_t elemBits = 8;

    /** Number of SIMD lanes (4096 when fully vectorized). */
    std::uint32_t lanes = 4096;

    /** Source operands (0-3 of them). */
    std::vector<Operand> srcs;

    /** Destination operand. pageCount == 0 for pure reductions. */
    Operand dst;

    /**
     * Producer instructions whose results this instruction reads.
     * Filled by the vectorizer's last-writer analysis.
     */
    std::vector<InstrId> deps;

    /**
     * False for residual scalar code the vectorizer could not
     * transform; such instructions always execute on the ISP core
     * (general-purpose fallback, §7).
     */
    bool vectorized = true;

    /**
     * True when the statement gathers/scatters through a
     * data-dependent index: every lane is an independent random
     * access (drives the host baseline's random-I/O cost model).
     */
    bool indirect = false;

    /** Total bytes read by this instruction. */
    std::uint64_t
    srcBytes() const
    {
        std::uint64_t lane_bytes =
            static_cast<std::uint64_t>(lanes) * elemBits / 8;
        return lane_bytes * srcs.size();
    }

    /** Total bytes written by this instruction. */
    std::uint64_t
    dstBytes() const
    {
        return dst.pageCount == 0
            ? 0
            : static_cast<std::uint64_t>(lanes) * elemBits / 8;
    }

    LatencyClass latency() const { return latencyClass(op); }
    OpFamily family() const { return opFamily(op); }

    std::string toString() const;
};

/**
 * A full vectorized program: the instruction stream plus the array
 * footprint it touches.
 */
struct Program
{
    std::string name;

    std::vector<VecInstruction> instrs;

    /** Logical pages spanned by all arrays (the dataset footprint). */
    std::uint64_t footprintPages = 0;

    /** Bytes per logical page assumed at build time. */
    std::uint32_t pageBytes = 4096;

    std::uint64_t
    footprintBytes() const
    {
        return footprintPages * static_cast<std::uint64_t>(pageBytes);
    }
};

} // namespace conduit

#endif // CONDUIT_IR_INSTRUCTION_HH
