/**
 * @file
 * Loop-nest intermediate representation: the "application code" the
 * compile-time preprocessing stage (§4.3.1) consumes.
 *
 * This IR substitutes for LLVM IR in the paper's toolchain. Workload
 * generators express their kernels as loop nests over named arrays;
 * the auto-vectorizer (src/vectorizer) performs the same job as the
 * paper's custom LLVM pass: legality analysis, strip-mining into
 * 4096-lane SIMD operations aligned to NAND pages, partial
 * vectorization of loops with residual scalar statements, and
 * embedding of per-instruction metadata.
 */

#ifndef CONDUIT_IR_LOOP_IR_HH
#define CONDUIT_IR_LOOP_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/opcode.hh"

namespace conduit
{

/** Index into LoopProgram::arrays. */
using ArrayId = std::uint32_t;

/** A named dense array operand of a loop program. */
struct ArrayDecl
{
    std::string name;
    std::uint64_t elems = 0;
    std::uint16_t elemBits = 8;

    std::uint64_t bytes() const { return elems * elemBits / 8; }
};

/**
 * A reference to array elements inside a loop body, as an affine
 * function of the induction variable: array[i * stride + offset].
 *
 * @c indirect marks array[idx[i]]-style accesses, which defeat
 * auto-vectorization of the statement (§7).
 */
struct ArrayRef
{
    ArrayId array = 0;
    std::int64_t offset = 0;
    std::int64_t stride = 1;
    bool indirect = false;
};

/**
 * One statement of a loop body: dst[i] = op(srcs[i]...).
 */
struct LoopStmt
{
    OpCode op = OpCode::Add;
    std::vector<ArrayRef> srcs;
    ArrayRef dst;

    /**
     * Statement is guarded by a data-dependent branch. Vectorizable
     * only through if-conversion (predicated execution), which emits
     * an extra compare+select pair.
     */
    bool conditional = false;

    /**
     * Statement accumulates into a scalar (reduction). Vectorized via
     * parallel partial sums plus a combine tree.
     */
    bool reduction = false;
};

/**
 * A countable loop with a straight-line body.
 */
struct Loop
{
    std::string label;
    std::uint64_t tripCount = 0;
    std::vector<LoopStmt> body;

    /** Loop-carried flow dependence: not vectorizable at all (§7). */
    bool carriedDependence = false;

    /** Multiple exits / complex control flow: not vectorizable. */
    bool multipleExits = false;

    /** Contains atomic or synchronized operations: not vectorizable. */
    bool atomics = false;

    /** Outer repetition count (time steps, rounds, epochs). */
    std::uint64_t repeat = 1;
};

/**
 * A whole application kernel: arrays plus a sequence of loops.
 */
struct LoopProgram
{
    std::string name;
    std::vector<ArrayDecl> arrays;
    std::vector<Loop> loops;

    ArrayId
    addArray(std::string array_name, std::uint64_t elems,
             std::uint16_t elem_bits = 8)
    {
        arrays.push_back({std::move(array_name), elems, elem_bits});
        return static_cast<ArrayId>(arrays.size() - 1);
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &a : arrays)
            total += a.bytes();
        return total;
    }
};

} // namespace conduit

#endif // CONDUIT_IR_LOOP_IR_HH
