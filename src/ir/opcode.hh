/**
 * @file
 * Vector operation codes and their properties.
 *
 * The opcode set is the union of what the three SSD compute resources
 * support (§4.3.2): ISP executes everything (~300-instruction ARM/MVE
 * ISA, abstracted here), PuD-SSD supports 16 operations (bitwise,
 * arithmetic, predication, relational, copy; SIMDRAM/MIMDRAM/Proteus),
 * and IFP supports nine (six bitwise via Flash-Cosmos multi-wordline
 * sensing, three arithmetic via Ares-Flash latch shift_and_add).
 *
 * Each opcode carries a latency class (Table 3's low/medium/high
 * taxonomy) used by workload characterization and the cost function.
 */

#ifndef CONDUIT_IR_OPCODE_HH
#define CONDUIT_IR_OPCODE_HH

#include <cstdint>
#include <string_view>

namespace conduit
{

/** Vector operation kinds. */
enum class OpCode : std::uint8_t
{
    // Bulk-bitwise (low latency class).
    And,
    Or,
    Xor,
    Not,
    Nand,
    Nor,
    ShiftL,
    ShiftR,

    // Arithmetic / predication / relational (medium latency class).
    Add,
    Sub,
    CmpLt,
    CmpEq,
    Select,     // predicated merge: dst = mask ? a : b
    Min,
    Max,
    Copy,       // bulk copy / initialization (RowClone-style)

    // Expensive arithmetic and data-reorganization (high latency).
    Mul,
    Div,
    Mac,        // multiply-accumulate
    Shuffle,    // lane permutation
    Gather,     // indirect load
    Scatter,    // indirect store
    Exp,        // transcendental approximation (softmax)
    Rsqrt,      // reciprocal square root (rmsnorm)

    NumOpCodes,
};

constexpr std::size_t kNumOpCodes =
    static_cast<std::size_t>(OpCode::NumOpCodes);

/** Table 3 latency classes. */
enum class LatencyClass : std::uint8_t { Low, Medium, High };

/** Broad operation families used by the cost function metadata. */
enum class OpFamily : std::uint8_t
{
    Bitwise,
    Arithmetic,
    Predication,
    Reduction,
    Movement,
    Transcendental,
};

/** Latency class of an opcode (Table 3 taxonomy). */
constexpr LatencyClass
latencyClass(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Not:
      case OpCode::Nand:
      case OpCode::Nor:
      case OpCode::ShiftL:
      case OpCode::ShiftR:
        return LatencyClass::Low;
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::CmpLt:
      case OpCode::CmpEq:
      case OpCode::Select:
      case OpCode::Min:
      case OpCode::Max:
      case OpCode::Copy:
        return LatencyClass::Medium;
      default:
        return LatencyClass::High;
    }
}

/** Operation family (embedded as compile-time metadata, §4.3.1). */
constexpr OpFamily
opFamily(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Not:
      case OpCode::Nand:
      case OpCode::Nor:
      case OpCode::ShiftL:
      case OpCode::ShiftR:
        return OpFamily::Bitwise;
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::Mul:
      case OpCode::Div:
      case OpCode::Mac:
        return OpFamily::Arithmetic;
      case OpCode::CmpLt:
      case OpCode::CmpEq:
      case OpCode::Select:
      case OpCode::Min:
      case OpCode::Max:
        return OpFamily::Predication;
      case OpCode::Copy:
      case OpCode::Shuffle:
      case OpCode::Gather:
      case OpCode::Scatter:
        return OpFamily::Movement;
      default:
        return OpFamily::Transcendental;
    }
}

/**
 * True if PuD-SSD (SIMDRAM/MIMDRAM/Proteus substrate) supports the
 * opcode. 16 operations: arithmetic, predication, relational, bitwise
 * and bulk copy. No lane permutation or indirect access.
 */
constexpr bool
pudSupports(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Not:
      case OpCode::Nand:
      case OpCode::Nor:
      case OpCode::ShiftL:
      case OpCode::ShiftR:
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::CmpLt:
      case OpCode::CmpEq:
      case OpCode::Select:
      case OpCode::Min:
      case OpCode::Max:
      case OpCode::Copy:
      case OpCode::Mul:
      case OpCode::Mac:
        return true;
      default:
        return false;
    }
}

/**
 * True if IFP (Flash-Cosmos + Ares-Flash substrate) supports the
 * opcode: six bitwise operations via multi-wordline sensing, three
 * arithmetic operations (addition, subtraction and
 * shift_and_add-based multiplication), plus the latch-level shift
 * and page-buffer copy primitives that shift_and_add builds on.
 */
constexpr bool
ifpSupports(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Xor:
      case OpCode::Not:
      case OpCode::Nand:
      case OpCode::Nor:
      case OpCode::Add:
      case OpCode::Sub:
      case OpCode::Mul:
      case OpCode::ShiftL:
      case OpCode::ShiftR:
      case OpCode::Copy:
        return true;
      default:
        return false;
    }
}

/**
 * True for operations computed by multi-wordline sensing (MWS),
 * which read operands directly from the flash cells: such operands
 * must reside in the array, not in the page-buffer latches.
 * Latch-class IFP operations (XOR, NOT, shift, copy, Ares-Flash
 * arithmetic) can take latch-resident operands.
 */
constexpr bool
ifpRequiresArrayOperands(OpCode op)
{
    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Nand:
      case OpCode::Nor:
        return true;
      default:
        return false;
    }
}

/** ISP's general-purpose core supports every opcode. */
constexpr bool
ispSupports(OpCode)
{
    return true;
}

/** Short mnemonic for printing/traces. */
constexpr std::string_view
opName(OpCode op)
{
    switch (op) {
      case OpCode::And: return "and";
      case OpCode::Or: return "or";
      case OpCode::Xor: return "xor";
      case OpCode::Not: return "not";
      case OpCode::Nand: return "nand";
      case OpCode::Nor: return "nor";
      case OpCode::ShiftL: return "shl";
      case OpCode::ShiftR: return "shr";
      case OpCode::Add: return "add";
      case OpCode::Sub: return "sub";
      case OpCode::CmpLt: return "cmplt";
      case OpCode::CmpEq: return "cmpeq";
      case OpCode::Select: return "select";
      case OpCode::Min: return "min";
      case OpCode::Max: return "max";
      case OpCode::Copy: return "copy";
      case OpCode::Mul: return "mul";
      case OpCode::Div: return "div";
      case OpCode::Mac: return "mac";
      case OpCode::Shuffle: return "shuffle";
      case OpCode::Gather: return "gather";
      case OpCode::Scatter: return "scatter";
      case OpCode::Exp: return "exp";
      case OpCode::Rsqrt: return "rsqrt";
      default: return "invalid";
    }
}

} // namespace conduit

#endif // CONDUIT_IR_OPCODE_HH
