#include "src/ir/instruction.hh"

#include <sstream>

namespace conduit
{

std::string
VecInstruction::toString() const
{
    std::ostringstream os;
    os << "#" << id << " " << opName(op) << "<" << lanes << "x i"
       << elemBits << ">";
    for (const auto &s : srcs)
        os << " p" << s.basePage << "+" << s.pageCount;
    if (dst.pageCount > 0)
        os << " -> p" << dst.basePage << "+" << dst.pageCount;
    if (!vectorized)
        os << " [scalar]";
    if (!deps.empty()) {
        os << " deps{";
        for (std::size_t i = 0; i < deps.size(); ++i)
            os << (i ? "," : "") << deps[i];
        os << "}";
    }
    return os.str();
}

} // namespace conduit
