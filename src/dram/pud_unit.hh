/**
 * @file
 * Processing-using-DRAM unit (SIMDRAM / MIMDRAM / Proteus model).
 *
 * PuD executes bulk operations as sequences of carefully timed
 * ACT/PRE command pairs ("bbops") inside DRAM subarrays: AND/OR via
 * triple-row activation (Ambit), NOT via the sense amplifiers, and
 * multi-bit arithmetic as bit-serial majority/logic sequences
 * (SIMDRAM). One row operates on rowBytes of data across all bitlines
 * simultaneously; banks provide MIMD-style parallelism (MIMDRAM).
 *
 * Operands must reside in the DRAM compute region; the engine stages
 * them from flash via the channel + bus path before invoking this
 * unit (the PuD-SSD data-movement cost discussed in §2.2).
 */

#ifndef CONDUIT_DRAM_PUD_UNIT_HH
#define CONDUIT_DRAM_PUD_UNIT_HH

#include <cstdint>

#include "src/dram/dram.hh"
#include "src/ir/opcode.hh"
#include "src/sim/config.hh"

namespace conduit
{

/**
 * Timing model for in-DRAM computation.
 */
class PudUnit
{
  public:
    PudUnit(DramModel &dram, const ComputeModelConfig &model,
            StatSet *stats = nullptr);

    /** True if the 16-operation PuD ISA supports @p op. */
    static bool supports(OpCode op) { return pudSupports(op); }

    /**
     * Execute a vector fragment of @p lanes elements of
     * @p elem_bits, already resident in the compute region.
     * Rows are spread round-robin over banks starting at
     * @p home_bank; completion is the envelope over banks.
     */
    ServiceInterval execute(OpCode op, std::uint16_t elem_bits,
                            std::uint32_t lanes,
                            std::uint32_t home_bank, Tick earliest);

    /**
     * Contention-free latency estimate (cost-function table):
     * assumes all banks are idle and rows spread perfectly.
     */
    Tick estimate(OpCode op, std::uint16_t elem_bits,
                  std::uint32_t lanes) const;

    /** bbops needed for one row-wide operation of @p op. */
    std::uint32_t bbopCount(OpCode op, std::uint16_t elem_bits) const;

    /** Rows needed to hold @p lanes elements of @p elem_bits. */
    std::uint32_t
    rowsFor(std::uint16_t elem_bits, std::uint32_t lanes) const
    {
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(lanes) * elem_bits / 8;
        const std::uint32_t row = dram_.config().rowBytes;
        return static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, (bytes + row - 1) / row));
    }

  private:
    DramModel &dram_;
    ComputeModelConfig model_;
    StatSet *stats_;

    // Hot-path counters resolved once: a StatSet lookup per op costs
    // a string construction plus a map walk.
    Counter *statOps_ = nullptr;
    Counter *statBbops_ = nullptr;
};

} // namespace conduit

#endif // CONDUIT_DRAM_PUD_UNIT_HH
