#include "src/dram/pud_unit.hh"

#include <algorithm>
#include <stdexcept>

namespace conduit
{

PudUnit::PudUnit(DramModel &dram, const ComputeModelConfig &model,
                 StatSet *stats)
    : dram_(dram), model_(model), stats_(stats)
{
    if (stats_) {
        statOps_ = &stats_->counter("pud.ops");
        statBbops_ = &stats_->counter("pud.bbops");
    }
}

std::uint32_t
PudUnit::bbopCount(OpCode op, std::uint16_t elem_bits) const
{
    // Bit-serial sequences scale with element width; the config
    // constants are calibrated for 8-bit elements (the INT8
    // quantization of §5.4).
    const double width_scale = static_cast<double>(elem_bits) / 8.0;
    auto scaled = [&](std::uint32_t base, double exponent) {
        double v = static_cast<double>(base);
        if (exponent == 1.0)
            v *= width_scale;
        else
            v *= width_scale * width_scale; // multiplication: O(n^2)
        return static_cast<std::uint32_t>(std::max(1.0, v));
    };

    switch (op) {
      case OpCode::And:
      case OpCode::Or:
      case OpCode::Not:
      case OpCode::Nand:
      case OpCode::Nor:
      case OpCode::Xor:
        return scaled(model_.pudBitwiseBbops, 1.0);
      case OpCode::ShiftL:
      case OpCode::ShiftR:
      case OpCode::Copy:
        return scaled(model_.pudCopyBbops, 1.0);
      case OpCode::Add:
      case OpCode::Sub:
        return scaled(model_.pudAddBbops, 1.0);
      case OpCode::CmpLt:
      case OpCode::CmpEq:
      case OpCode::Select:
      case OpCode::Min:
      case OpCode::Max:
        return scaled(model_.pudPredBbops, 1.0);
      case OpCode::Mul:
      case OpCode::Mac:
        return scaled(model_.pudMulBbops, 2.0);
      default:
        throw std::invalid_argument(
            "PudUnit: unsupported opcode " + std::string(opName(op)));
    }
}

ServiceInterval
PudUnit::execute(OpCode op, std::uint16_t elem_bits, std::uint32_t lanes,
                 std::uint32_t home_bank, Tick earliest)
{
    if (!supports(op))
        throw std::invalid_argument(
            "PudUnit: unsupported opcode " + std::string(opName(op)));
    const std::uint32_t rows = rowsFor(elem_bits, lanes);
    const Tick per_row = static_cast<Tick>(bbopCount(op, elem_bits)) *
        dram_.config().bbopTicks;

    Tick start = kMaxTick;
    Tick end = 0;
    const std::uint32_t banks = dram_.numBanks();
    // Rows spread round-robin across banks: up to `banks` rows make
    // progress simultaneously (MIMDRAM's mat/bank-level MIMD).
    for (std::uint32_t r = 0; r < rows; ++r) {
        auto iv = dram_.occupyBank((home_bank + r) % banks, earliest,
                                   per_row);
        start = std::min(start, iv.start);
        end = std::max(end, iv.end);
    }
    if (statOps_) {
        statOps_->inc();
        statBbops_->inc(static_cast<std::uint64_t>(rows) *
                        bbopCount(op, elem_bits));
    }
    return {start == kMaxTick ? earliest : start, end};
}

Tick
PudUnit::estimate(OpCode op, std::uint16_t elem_bits,
                  std::uint32_t lanes) const
{
    if (!supports(op))
        return kMaxTick;
    const std::uint32_t rows = rowsFor(elem_bits, lanes);
    const std::uint32_t banks = dram_.numBanks();
    const std::uint32_t waves = (rows + banks - 1) / banks;
    return static_cast<Tick>(waves) * bbopCount(op, elem_bits) *
        dram_.config().bbopTicks;
}

} // namespace conduit
