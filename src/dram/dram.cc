#include "src/dram/dram.hh"

namespace conduit
{

DramModel::DramModel(const DramConfig &cfg, StatSet *stats)
    : cfg_(cfg), banks_("dram.bank", cfg.banks), bus_("dram.bus"),
      stats_(stats)
{
    if (stats_) {
        statAccesses_ = &stats_->counter("dram.accesses");
        statBytes_ = &stats_->counter("dram.bytes");
    }
}

ServiceInterval
DramModel::access(std::uint32_t bank, std::uint64_t bytes, Tick earliest)
{
    // Activate the row on the bank, then stream over the shared bus.
    const Tick act = cfg_.tRcd + cfg_.tCas;
    auto bank_iv =
        banks_.acquireOn(bank % banks_.size(), earliest, act + cfg_.tRp);
    const Tick burst = transferTicks(bytes, cfg_.busBytesPerSec);
    auto bus_iv = bus_.acquire(bank_iv.start + act, burst);
    if (statAccesses_) {
        statAccesses_->inc();
        statBytes_->inc(bytes);
    }
    return {bank_iv.start, bus_iv.end};
}

void
DramModel::reset()
{
    banks_.reset();
    bus_.reset();
}

} // namespace conduit
