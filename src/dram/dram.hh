/**
 * @file
 * SSD-internal DRAM model (Fig. 2).
 *
 * Models the LPDDR4 subsystem that stores FTL metadata and caches
 * pages: independent banks behind a shared data bus. Banks are FCFS
 * Servers with row activate/precharge timing; the bus serializes
 * data transfers at the configured effective bandwidth. Accuracy is
 * at the level the offloading study needs — bank-level parallelism,
 * row-granularity operations, and bus contention — following the
 * Ramulator-2.0-based extension described in §5.1.
 */

#ifndef CONDUIT_DRAM_DRAM_HH
#define CONDUIT_DRAM_DRAM_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/sim/config.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"

namespace conduit
{

/**
 * Bank-parallel DRAM timing model.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg, StatSet *stats = nullptr);

    const DramConfig &config() const { return cfg_; }

    /**
     * Transfer @p bytes over the DRAM bus (e.g. staging a page into
     * or out of the compute region). Includes one row activation on
     * the selected bank plus serialized bus time.
     *
     * @param bank Bank index (row address hash).
     * @param bytes Payload size.
     * @param earliest Earliest start.
     */
    ServiceInterval access(std::uint32_t bank, std::uint64_t bytes,
                           Tick earliest);

    /** Occupy a bank for an in-bank (PuD) operation sequence. */
    ServiceInterval
    occupyBank(std::uint32_t bank, Tick earliest, Tick duration)
    {
        return banks_.acquireOn(bank % banks_.size(), earliest,
                                duration);
    }

    /** Occupy the least-loaded bank. */
    ServiceInterval
    occupyAnyBank(Tick earliest, Tick duration)
    {
        return banks_.acquire(earliest, duration);
    }

    /** Least backlog over banks at @p now. */
    Tick bankBacklog(Tick now) const { return banks_.backlog(now); }

    /** Bus backlog at @p now. */
    Tick busBacklog(Tick now) const { return bus_.backlog(now); }

    /** Bus utilization in [0,1] up to @p now. */
    double
    busUtilization(Tick now) const
    {
        return now == 0
            ? 0.0
            : static_cast<double>(bus_.busyTime()) /
                static_cast<double>(now);
    }

    std::uint32_t numBanks() const
    {
        return static_cast<std::uint32_t>(banks_.size());
    }

    /** Row activate + restore + precharge time (one bank cycle). */
    Tick
    rowCycleTicks() const
    {
        return cfg_.tRas + cfg_.tRp;
    }

    void reset();

    /**
     * Mutable calendar state for DeviceImage snapshots: every bank
     * Server plus the shared bus. Stored as plain Servers (not a
     * ServerGroup) so the image stays default-constructible; restore
     * re-seats them into the existing group unit by unit.
     */
    struct Image
    {
        std::vector<Server> banks;
        Server bus;
    };

    Image
    capture() const
    {
        Image img;
        img.banks.reserve(banks_.size());
        for (std::size_t i = 0; i < banks_.size(); ++i)
            img.banks.push_back(banks_.unit(i));
        img.bus = bus_;
        return img;
    }

    void
    restore(const Image &img)
    {
        if (img.banks.size() != banks_.size())
            throw std::invalid_argument(
                "DramModel::restore: bank count mismatch");
        for (std::size_t i = 0; i < banks_.size(); ++i)
            banks_.unit(i) = img.banks[i];
        bus_ = img.bus;
    }

  private:
    // lint: transient(immutable config, rebuilt by the constructor on restore)
    DramConfig cfg_;
    ServerGroup banks_;
    Server bus_;
    // lint: transient(wiring into the owning Engine's StatSet, re-bound on restore)
    StatSet *stats_;

    // Hot-path counters resolved once: a StatSet lookup per access
    // costs a string construction plus a map walk.
    // lint: transient-begin(cached StatSet pointers; the counters survive via StatSet::restoreFrom)
    Counter *statAccesses_ = nullptr;
    Counter *statBytes_ = nullptr;
    // lint: transient-end
};

} // namespace conduit

#endif // CONDUIT_DRAM_DRAM_HH
