#include "src/nand/ifp_unit.hh"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace conduit
{

IfpUnit::IfpUnit(NandArray &nand, const ComputeModelConfig &model,
                 StatSet *stats)
    : nand_(nand), model_(model), stats_(stats)
{
    if (stats_) {
        statOps_ = &stats_->counter("ifp.ops");
        statBytes_ = &stats_->counter("ifp.bytes");
    }
}

Tick
IfpUnit::dieDuration(OpCode op, std::uint16_t elem_bits,
                     std::uint32_t num_operands,
                     std::uint32_t sensed_operands,
                     std::uint64_t bytes) const
{
    const NandConfig &cfg = nand_.config();
    const std::uint64_t pages =
        std::max<std::uint64_t>(1, (bytes + cfg.pageBytes - 1) /
                                       cfg.pageBytes);
    const Tick sense = cfg.cmdTicks + cfg.readTicks;
    const std::uint32_t sensed =
        std::min(sensed_operands, num_operands);

    switch (op) {
      case OpCode::And:
      case OpCode::Nand: {
        // MWS: one sensing covers up to maxAndOperands array-resident
        // operands; latch-resident operands fold in for free.
        const std::uint64_t sensings =
            (sensed + cfg.maxAndOperands - 1) /
            std::max<std::uint32_t>(1, cfg.maxAndOperands);
        return pages * (sensings * sense + cfg.andOrTicks +
                        cfg.latchTicks);
      }
      case OpCode::Or:
      case OpCode::Nor: {
        const std::uint64_t sensings =
            (sensed + cfg.maxOrOperands - 1) /
            std::max<std::uint32_t>(1, cfg.maxOrOperands);
        return pages * (sensings * sense + cfg.andOrTicks +
                        cfg.latchTicks);
      }
      case OpCode::Xor:
        // One sensing per array-resident operand, XOR in the latches.
        return pages * (sensed * sense + cfg.xorTicks +
                        cfg.latchTicks);
      case OpCode::Not:
        return pages * (sensed * sense + cfg.latchTicks);
      case OpCode::ShiftL:
      case OpCode::ShiftR:
        // Latch shift: one latch transfer per element bit.
        return pages * (sensed * sense +
                        static_cast<Tick>(elem_bits) * cfg.latchTicks);
      case OpCode::Copy:
        return pages * (sensed * sense + cfg.latchTicks);
      case OpCode::Add:
      case OpCode::Sub: {
        // Ares-Flash bit-serial addition in the S/D latches.
        const Tick serial = static_cast<Tick>(elem_bits) *
            model_.ifpAddStepsPerBit * cfg.latchTicks;
        return pages * (sensed * sense + serial);
      }
      case OpCode::Mul: {
        // shift_and_add: elem_bits partial products, each a latch
        // AND + shifted addition.
        const Tick serial = static_cast<Tick>(elem_bits) *
            model_.ifpMulStepsPerBit * cfg.latchTicks;
        return pages * (sensed * sense + serial);
      }
      default:
        throw std::invalid_argument(
            "IfpUnit: unsupported opcode " + std::string(opName(op)));
    }
}

Tick
IfpUnit::shuttleDuration(OpCode op, std::uint64_t bytes) const
{
    if (op != OpCode::Mul)
        return 0;
    const NandConfig &cfg = nand_.config();
    const Tick one = cfg.dmaTicks +
        transferTicks(std::min<std::uint64_t>(bytes, cfg.pageBytes),
                      cfg.channelBytesPerSec);
    return model_.ifpMulShuttles * one;
}

ServiceInterval
IfpUnit::execute(OpCode op, std::uint16_t elem_bits,
                 std::uint32_t num_operands,
                 std::uint32_t sensed_operands,
                 const std::vector<IfpFragment> &frags, Tick earliest)
{
    if (!supports(op))
        throw std::invalid_argument(
            "IfpUnit: unsupported opcode " + std::string(opName(op)));
    if (frags.empty())
        return {earliest, earliest};

    Tick start = kMaxTick;
    Tick end = 0;
    for (const auto &frag : frags) {
        const Tick dur = dieDuration(op, elem_bits, num_operands,
                                     sensed_operands, frag.bytes);
        auto iv = nand_.occupyDie(frag.dieIndex, earliest, dur);
        Tick frag_end = iv.end;
        const Tick shuttle = shuttleDuration(op, frag.bytes);
        if (shuttle > 0) {
            // Multiply shuttles occupy the fragment's channel after
            // the die-side compute, creating the channel contention
            // that penalizes IFP multiplication (§6.4).
            const std::uint32_t ch =
                frag.dieIndex / nand_.config().diesPerChannel;
            auto ch_iv = nand_.channel(ch).acquire(iv.end, shuttle);
            frag_end = ch_iv.end;
        }
        start = std::min(start, iv.start);
        end = std::max(end, frag_end);
    }
    if (statOps_) {
        statOps_->inc();
        std::uint64_t bytes = 0;
        for (const auto &f : frags)
            bytes += f.bytes;
        statBytes_->inc(bytes);
    }
    return {start == kMaxTick ? earliest : start, end};
}

Tick
IfpUnit::estimate(OpCode op, std::uint16_t elem_bits,
                  std::uint32_t num_operands,
                  std::uint32_t sensed_operands,
                  std::uint64_t bytes_per_die) const
{
    if (!supports(op))
        return kMaxTick;
    return dieDuration(op, elem_bits, num_operands, sensed_operands,
                       bytes_per_die) +
        shuttleDuration(op, bytes_per_die);
}

} // namespace conduit
