/**
 * @file
 * In-flash processing unit (Flash-Cosmos + Ares-Flash model, §2.2).
 *
 * Bulk bitwise operations use multi-wordline sensing (MWS): AND of up
 * to 48 operands resident in the same block completes in a single
 * sensing; OR activates up to 4 blocks simultaneously; XOR/NOT use
 * the page-buffer latches. Arithmetic (Ares-Flash) runs bit-serially
 * in the S/D latches; multiplication decomposes into shift_and_add
 * steps that shuttle partial operands between the flash controller
 * and the chip, consuming channel bandwidth — the property that makes
 * IFP multiplication unattractive in Fig. 9/10.
 *
 * Work parallelizes across the dies holding the operand pages; the
 * result stays in the page buffer latches until Conduit's coherence
 * mechanism commits or forwards it (§4.4).
 */

#ifndef CONDUIT_NAND_IFP_UNIT_HH
#define CONDUIT_NAND_IFP_UNIT_HH

#include <cstdint>
#include <vector>

#include "src/ir/opcode.hh"
#include "src/nand/nand.hh"
#include "src/sim/config.hh"

namespace conduit
{

/** One fragment of IFP work bound to a specific die. */
struct IfpFragment
{
    std::uint32_t dieIndex = 0;
    std::uint64_t bytes = 0;   // payload processed on that die
};

/**
 * Timing model for in-flash computation.
 */
class IfpUnit
{
  public:
    IfpUnit(NandArray &nand, const ComputeModelConfig &model,
            StatSet *stats = nullptr);

    /** True if the substrate supports @p op (nine-operation ISA). */
    static bool supports(OpCode op) { return ifpSupports(op); }

    /**
     * Execute an operation whose operands are already resident in
     * flash, spread over @p frags. Reserves die (and, for multiply,
     * channel) time; returns the overall [start, end] envelope.
     *
     * @param op Operation (must satisfy supports()).
     * @param elem_bits Element width in bits.
     * @param num_operands Source-operand count (MWS fan-in).
     * @param sensed_operands Operands that must be sensed from the
     *        array; latch-resident operands (previous IFP results)
     *        skip sensing entirely, which is what makes IFP shine on
     *        high-reuse bitwise workloads such as AES.
     * @param frags Dies touched and payload bytes per die.
     * @param earliest Earliest start time.
     */
    ServiceInterval execute(OpCode op, std::uint16_t elem_bits,
                            std::uint32_t num_operands,
                            std::uint32_t sensed_operands,
                            const std::vector<IfpFragment> &frags,
                            Tick earliest);

    /**
     * Contention-free latency estimate for the cost function's
     * latency_comp table (§4.3.2): the per-die duration assuming all
     * dies start immediately and work in parallel.
     */
    Tick estimate(OpCode op, std::uint16_t elem_bits,
                  std::uint32_t num_operands,
                  std::uint32_t sensed_operands,
                  std::uint64_t bytes_per_die) const;

  private:
    /** Duration of the in-die portion for one fragment. */
    Tick dieDuration(OpCode op, std::uint16_t elem_bits,
                     std::uint32_t num_operands,
                     std::uint32_t sensed_operands,
                     std::uint64_t bytes) const;

    /** Channel time consumed per fragment (multiply shuttles). */
    Tick shuttleDuration(OpCode op, std::uint64_t bytes) const;

    NandArray &nand_;
    ComputeModelConfig model_;
    StatSet *stats_;

    // Hot-path counters resolved once: a StatSet lookup per op costs
    // a string construction plus a map walk.
    Counter *statOps_ = nullptr;
    Counter *statBytes_ = nullptr;
};

} // namespace conduit

#endif // CONDUIT_NAND_IFP_UNIT_HH
