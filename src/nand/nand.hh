/**
 * @file
 * NAND flash array timing model.
 *
 * Models the device hierarchy of Fig. 1/3: channels shared by dies,
 * dies containing planes, planes containing blocks of pages. Dies
 * execute read/program/erase (and IFP sensing) operations and are
 * independently busy; channels are the shared command/data buses that
 * flash controllers arbitrate. Both are FCFS Servers, so queueing and
 * contention emerge from reservation order, as in MQSim.
 */

#ifndef CONDUIT_NAND_NAND_HH
#define CONDUIT_NAND_NAND_HH

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/sim/config.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit
{

namespace reliability
{
class ReliabilityModel;
}

namespace trace
{
class Tracer;
}

/** Physical page number (dense index over the whole device). */
using Ppn = std::uint64_t;

/** Decoded physical flash address. */
struct FlashAddress
{
    std::uint32_t channel = 0;
    std::uint32_t die = 0;     // within channel
    std::uint32_t plane = 0;
    std::uint32_t block = 0;   // within plane
    std::uint32_t page = 0;    // within block

    bool
    operator==(const FlashAddress &o) const
    {
        return channel == o.channel && die == o.die &&
            plane == o.plane && block == o.block && page == o.page;
    }
};

/**
 * The flash array: address codec, per-die and per-channel timing.
 */
class NandArray
{
  public:
    explicit NandArray(const NandConfig &cfg, StatSet *stats = nullptr);

    const NandConfig &config() const { return cfg_; }

    /** @name Address codec @{ */
    FlashAddress decode(Ppn ppn) const;
    Ppn encode(const FlashAddress &a) const;
    std::uint32_t
    dieIndex(const FlashAddress &a) const
    {
        return a.channel * cfg_.diesPerChannel + a.die;
    }

    /**
     * Die of @p ppn without materializing the full address: one
     * division (a shift for power-of-two geometries) instead of the
     * four mixed-radix splits of decode(). The hot feature-collection
     * path (Engine::fragmentsFor) only needs the die.
     */
    std::uint32_t
    dieOf(Ppn ppn) const
    {
        const std::uint64_t die = pagesPerDie_.pow2
            ? ppn >> pagesPerDie_.shift
            : ppn / pagesPerDie_.div;
        if (die >= numDies())
            throw std::out_of_range("NandArray::dieOf: ppn out of range");
        return static_cast<std::uint32_t>(die);
    }

    /** Dense block index over (channel, die, plane, block) — the
     *  same ordering the FTL's block table uses. */
    std::uint64_t
    blockIndexOf(const FlashAddress &a) const
    {
        std::uint64_t bi = dieIndex(a);
        bi = bi * cfg_.planesPerDie + a.plane;
        bi = bi * cfg_.blocksPerPlane + a.block;
        return bi;
    }
    /** @} */

    /**
     * Attach the reliability model (null detaches). When set, every
     * readPage charges the ECC retry ladder for the page's block on
     * top of tR, so worn and retention-aged blocks serve reads more
     * slowly and their die backlogs grow accordingly.
     */
    void setReliability(reliability::ReliabilityModel *rel)
    {
        rel_ = rel;
    }

    /**
     * Attach a tracer (null detaches). ECC-retry stalls charged by
     * readPage are recorded against @p device's per-die tracks.
     */
    void setTracer(trace::Tracer *t, std::uint32_t device)
    {
        tracer_ = t;
        traceDevice_ = device;
    }

    /**
     * Sense one page into the die's page buffer (tR). Does not
     * include channel transfer; see transferOut().
     */
    ServiceInterval readPage(const FlashAddress &a, Tick earliest);

    /** Program one page from the page buffer (tPROG). */
    ServiceInterval programPage(const FlashAddress &a, Tick earliest);

    /** Erase a block (tBERS). */
    ServiceInterval eraseBlock(const FlashAddress &a, Tick earliest);

    /**
     * Occupy a die for an arbitrary in-die operation (used by the
     * IFP unit for multi-wordline sensing and latch sequences).
     */
    ServiceInterval
    occupyDie(std::uint32_t die_index, Tick earliest, Tick duration)
    {
        return dies_[die_index].acquire(earliest, duration);
    }

    /**
     * Move @p bytes between a die's page buffer and the flash
     * controller over the channel bus (tDMA + serialization).
     */
    ServiceInterval transferOut(std::uint32_t channel, std::uint64_t bytes,
                                Tick earliest);

    /** Same cost/path as transferOut, kept separate for stats. */
    ServiceInterval transferIn(std::uint32_t channel, std::uint64_t bytes,
                               Tick earliest);

    /** Backlog (pending work) of the busiest resource class. @{ */
    Tick dieBacklog(std::uint32_t die_index, Tick now) const;
    Tick minDieBacklog(Tick now) const;
    Tick channelBacklog(std::uint32_t channel, Tick now) const;
    Tick minChannelBacklog(Tick now) const;
    /** @} */

    /** Aggregate channel utilization in [0,1] up to @p now. */
    double channelUtilization(Tick now) const;

    std::uint32_t numDies() const
    {
        return cfg_.channels * cfg_.diesPerChannel;
    }

    Server &die(std::uint32_t die_index) { return dies_.at(die_index); }
    Server &channel(std::uint32_t ch) { return channels_.at(ch); }

    void reset();

    /**
     * Mutable calendar state for DeviceImage snapshots: every die and
     * channel Server (free point, busy-time integral, request count)
     * plus the incremental min-die cache. The codec and config are
     * constructor-derived and not captured.
     */
    struct Image
    {
        std::vector<Server> dies;
        std::vector<Server> channels;
        std::uint32_t minDie = 0;
        Tick minDieFreeAt = 0;
    };

    Image
    capture() const
    {
        Image img;
        img.dies = dies_;
        img.channels = channels_;
        img.minDie = minDie_;
        img.minDieFreeAt = minDieFreeAt_;
        return img;
    }

    void
    restore(const Image &img)
    {
        dies_ = img.dies;
        channels_ = img.channels;
        minDie_ = img.minDie;
        minDieFreeAt_ = img.minDieFreeAt;
    }

  private:
    /**
     * One mixed-radix digit of the address codec, precomputed so
     * decode() performs no repeated config loads and power-of-two
     * digits split with shift/mask instead of div/mod.
     */
    struct Radix
    {
        std::uint64_t div = 1;
        std::uint64_t mask = 0;
        std::uint32_t shift = 0;
        bool pow2 = false;

        /** Extract the digit and advance @p ppn to the next level. */
        std::uint32_t
        split(Ppn &ppn) const
        {
            if (pow2) {
                const auto digit =
                    static_cast<std::uint32_t>(ppn & mask);
                ppn >>= shift;
                return digit;
            }
            const auto digit = static_cast<std::uint32_t>(ppn % div);
            ppn /= div;
            return digit;
        }
    };

    static Radix makeRadix(std::uint64_t value);

    // lint: transient(immutable config, rebuilt by the constructor on restore)
    NandConfig cfg_;
    std::vector<Server> dies_;
    std::vector<Server> channels_;
    // lint: transient-begin(wiring into the owning Engine, re-bound by its constructor on restore)
    StatSet *stats_;
    reliability::ReliabilityModel *rel_ = nullptr;
    trace::Tracer *tracer_ = nullptr;
    std::uint32_t traceDevice_ = 0;
    // lint: transient-end

    /** Cached strides (innermost first) and the pages-per-die span. */
    // lint: transient-begin(pure functions of config geometry, recomputed by the constructor)
    Radix rPage_, rBlock_, rPlane_, rDie_;
    Radix pagesPerDie_;
    // lint: transient-end

    /**
     * Incremental min-die tracker. Server free points only move
     * forward, so a cached minimizer stays minimal until that die is
     * acquired again; minDieBacklog() validates the cache against the
     * die's current free point and rescans only on mismatch, instead
     * of walking every die once per feature collection.
     */
    mutable std::uint32_t minDie_ = 0;
    mutable Tick minDieFreeAt_ = 0;

    // Hot-path counters resolved once: a StatSet lookup per media op
    // costs a string construction plus a map walk.
    // lint: transient-begin(cached StatSet pointers; the counters survive via StatSet::restoreFrom)
    Counter *statReads_ = nullptr;
    Counter *statPrograms_ = nullptr;
    Counter *statErases_ = nullptr;
    Counter *statXferOutBytes_ = nullptr;
    Counter *statXferInBytes_ = nullptr;
    Counter *statDmaOps_ = nullptr;
    // lint: transient-end
};

} // namespace conduit

#endif // CONDUIT_NAND_NAND_HH
