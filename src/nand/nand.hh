/**
 * @file
 * NAND flash array timing model.
 *
 * Models the device hierarchy of Fig. 1/3: channels shared by dies,
 * dies containing planes, planes containing blocks of pages. Dies
 * execute read/program/erase (and IFP sensing) operations and are
 * independently busy; channels are the shared command/data buses that
 * flash controllers arbitrate. Both are FCFS Servers, so queueing and
 * contention emerge from reservation order, as in MQSim.
 */

#ifndef CONDUIT_NAND_NAND_HH
#define CONDUIT_NAND_NAND_HH

#include <cstdint>
#include <vector>

#include "src/sim/config.hh"
#include "src/sim/server.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace conduit
{

/** Physical page number (dense index over the whole device). */
using Ppn = std::uint64_t;

/** Decoded physical flash address. */
struct FlashAddress
{
    std::uint32_t channel = 0;
    std::uint32_t die = 0;     // within channel
    std::uint32_t plane = 0;
    std::uint32_t block = 0;   // within plane
    std::uint32_t page = 0;    // within block

    bool
    operator==(const FlashAddress &o) const
    {
        return channel == o.channel && die == o.die &&
            plane == o.plane && block == o.block && page == o.page;
    }
};

/**
 * The flash array: address codec, per-die and per-channel timing.
 */
class NandArray
{
  public:
    explicit NandArray(const NandConfig &cfg, StatSet *stats = nullptr);

    const NandConfig &config() const { return cfg_; }

    /** @name Address codec @{ */
    FlashAddress decode(Ppn ppn) const;
    Ppn encode(const FlashAddress &a) const;
    std::uint32_t
    dieIndex(const FlashAddress &a) const
    {
        return a.channel * cfg_.diesPerChannel + a.die;
    }
    /** @} */

    /**
     * Sense one page into the die's page buffer (tR). Does not
     * include channel transfer; see transferOut().
     */
    ServiceInterval readPage(const FlashAddress &a, Tick earliest);

    /** Program one page from the page buffer (tPROG). */
    ServiceInterval programPage(const FlashAddress &a, Tick earliest);

    /** Erase a block (tBERS). */
    ServiceInterval eraseBlock(const FlashAddress &a, Tick earliest);

    /**
     * Occupy a die for an arbitrary in-die operation (used by the
     * IFP unit for multi-wordline sensing and latch sequences).
     */
    ServiceInterval
    occupyDie(std::uint32_t die_index, Tick earliest, Tick duration)
    {
        return dies_[die_index].acquire(earliest, duration);
    }

    /**
     * Move @p bytes between a die's page buffer and the flash
     * controller over the channel bus (tDMA + serialization).
     */
    ServiceInterval transferOut(std::uint32_t channel, std::uint64_t bytes,
                                Tick earliest);

    /** Same cost/path as transferOut, kept separate for stats. */
    ServiceInterval transferIn(std::uint32_t channel, std::uint64_t bytes,
                               Tick earliest);

    /** Backlog (pending work) of the busiest resource class. @{ */
    Tick dieBacklog(std::uint32_t die_index, Tick now) const;
    Tick minDieBacklog(Tick now) const;
    Tick channelBacklog(std::uint32_t channel, Tick now) const;
    Tick minChannelBacklog(Tick now) const;
    /** @} */

    /** Aggregate channel utilization in [0,1] up to @p now. */
    double channelUtilization(Tick now) const;

    std::uint32_t numDies() const
    {
        return cfg_.channels * cfg_.diesPerChannel;
    }

    Server &die(std::uint32_t die_index) { return dies_.at(die_index); }
    Server &channel(std::uint32_t ch) { return channels_.at(ch); }

    void reset();

  private:
    NandConfig cfg_;
    std::vector<Server> dies_;
    std::vector<Server> channels_;
    StatSet *stats_;

    // Hot-path counters resolved once: a StatSet lookup per media op
    // costs a string construction plus a map walk.
    Counter *statReads_ = nullptr;
    Counter *statPrograms_ = nullptr;
    Counter *statErases_ = nullptr;
    Counter *statXferOutBytes_ = nullptr;
    Counter *statXferInBytes_ = nullptr;
    Counter *statDmaOps_ = nullptr;
};

} // namespace conduit

#endif // CONDUIT_NAND_NAND_HH
