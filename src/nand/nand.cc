#include "src/nand/nand.hh"

#include <cassert>
#include <stdexcept>

#include "src/reliability/reliability.hh"
#include "src/trace/trace.hh"

namespace conduit
{

NandArray::Radix
NandArray::makeRadix(std::uint64_t value)
{
    Radix r;
    r.div = value == 0 ? 1 : value;
    if ((r.div & (r.div - 1)) == 0) {
        r.pow2 = true;
        r.mask = r.div - 1;
        while ((std::uint64_t{1} << r.shift) < r.div)
            ++r.shift;
    }
    return r;
}

NandArray::NandArray(const NandConfig &cfg, StatSet *stats)
    : cfg_(cfg), stats_(stats)
{
    dies_.reserve(numDies());
    for (std::uint32_t d = 0; d < numDies(); ++d)
        dies_.emplace_back("nand.die" + std::to_string(d));
    channels_.reserve(cfg_.channels);
    for (std::uint32_t c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back("nand.ch" + std::to_string(c));
    rPage_ = makeRadix(cfg_.pagesPerBlock);
    rBlock_ = makeRadix(cfg_.blocksPerPlane);
    rPlane_ = makeRadix(cfg_.planesPerDie);
    rDie_ = makeRadix(cfg_.diesPerChannel);
    pagesPerDie_ = makeRadix(static_cast<std::uint64_t>(
        cfg_.pagesPerBlock) * cfg_.blocksPerPlane * cfg_.planesPerDie);
    if (stats_) {
        statReads_ = &stats_->counter("nand.reads");
        statPrograms_ = &stats_->counter("nand.programs");
        statErases_ = &stats_->counter("nand.erases");
        statXferOutBytes_ = &stats_->counter("nand.xfer_out_bytes");
        statXferInBytes_ = &stats_->counter("nand.xfer_in_bytes");
        statDmaOps_ = &stats_->counter("nand.dma_ops");
    }
}

FlashAddress
NandArray::decode(Ppn ppn) const
{
    // Mixed-radix digits via the cached strides: for the default
    // geometry only the innermost (pagesPerBlock = 196) split is a
    // real division — every outer level is a shift/mask.
    FlashAddress a;
    a.page = rPage_.split(ppn);
    a.block = rBlock_.split(ppn);
    a.plane = rPlane_.split(ppn);
    a.die = rDie_.split(ppn);
    a.channel = static_cast<std::uint32_t>(ppn);
    if (a.channel >= cfg_.channels)
        throw std::out_of_range("NandArray::decode: ppn out of range");
    return a;
}

Ppn
NandArray::encode(const FlashAddress &a) const
{
    Ppn ppn = a.channel;
    ppn = ppn * cfg_.diesPerChannel + a.die;
    ppn = ppn * cfg_.planesPerDie + a.plane;
    ppn = ppn * cfg_.blocksPerPlane + a.block;
    ppn = ppn * cfg_.pagesPerBlock + a.page;
    return ppn;
}

ServiceInterval
NandArray::readPage(const FlashAddress &a, Tick earliest)
{
    Tick dur = cfg_.cmdTicks + cfg_.readTicks;
    // ECC retry ladder: worn / retention-aged blocks stretch the
    // sense. Charged as die-busy time, so it queues like tR and
    // co-run streams see it in the die backlogs.
    const Tick penalty =
        rel_ ? rel_->onRead(blockIndexOf(a), earliest) : 0;
    dur += penalty;
    auto iv = dies_[dieIndex(a)].acquire(earliest, dur);
    if (statReads_)
        statReads_->inc();
    if (tracer_ && penalty > 0 &&
        tracer_->wants(trace::Category::Reliability)) {
        trace::Event e;
        e.cat = trace::Category::Reliability;
        e.kind = trace::EventKind::EccStall;
        e.device = traceDevice_;
        e.lane = dieIndex(a);
        e.start = iv.start;
        e.end = iv.end;
        e.a = blockIndexOf(a);
        e.b = penalty;
        tracer_->record(e);
    }
    return iv;
}

ServiceInterval
NandArray::programPage(const FlashAddress &a, Tick earliest)
{
    auto iv = dies_[dieIndex(a)].acquire(
        earliest, cfg_.cmdTicks + cfg_.programTicks);
    if (statPrograms_)
        statPrograms_->inc();
    return iv;
}

ServiceInterval
NandArray::eraseBlock(const FlashAddress &a, Tick earliest)
{
    auto iv = dies_[dieIndex(a)].acquire(
        earliest, cfg_.cmdTicks + cfg_.eraseTicks);
    if (statErases_)
        statErases_->inc();
    return iv;
}

ServiceInterval
NandArray::transferOut(std::uint32_t channel, std::uint64_t bytes,
                       Tick earliest)
{
    const Tick dur = cfg_.dmaTicks +
        transferTicks(bytes, cfg_.channelBytesPerSec);
    auto iv = channels_.at(channel).acquire(earliest, dur);
    if (statXferOutBytes_) {
        statXferOutBytes_->inc(bytes);
        statDmaOps_->inc();
    }
    return iv;
}

ServiceInterval
NandArray::transferIn(std::uint32_t channel, std::uint64_t bytes,
                      Tick earliest)
{
    const Tick dur = cfg_.dmaTicks +
        transferTicks(bytes, cfg_.channelBytesPerSec);
    auto iv = channels_.at(channel).acquire(earliest, dur);
    if (statXferInBytes_) {
        statXferInBytes_->inc(bytes);
        statDmaOps_->inc();
    }
    return iv;
}

Tick
NandArray::dieBacklog(std::uint32_t die_index, Tick now) const
{
    return dies_.at(die_index).backlog(now);
}

Tick
NandArray::minDieBacklog(Tick now) const
{
    if (dies_.empty())
        return 0;
    // Free points only move forward, so the cached minimizer stays
    // minimal until *it* is acquired: every other die was >= it at
    // the last validation and can only have grown since. Rescan only
    // when the cached die's free point changed.
    if (dies_[minDie_].freeAt() != minDieFreeAt_) {
        Tick best = kMaxTick;
        std::uint32_t best_die = 0;
        for (std::uint32_t d = 0; d < dies_.size(); ++d) {
            const Tick f = dies_[d].freeAt();
            if (f < best) {
                best = f;
                best_die = d;
            }
        }
        minDie_ = best_die;
        minDieFreeAt_ = best;
    }
    return minDieFreeAt_ > now ? minDieFreeAt_ - now : 0;
}

Tick
NandArray::channelBacklog(std::uint32_t channel, Tick now) const
{
    return channels_.at(channel).backlog(now);
}

Tick
NandArray::minChannelBacklog(Tick now) const
{
    Tick best = kMaxTick;
    for (const auto &c : channels_)
        best = std::min(best, c.backlog(now));
    return best == kMaxTick ? 0 : best;
}

double
NandArray::channelUtilization(Tick now) const
{
    if (now == 0)
        return 0.0;
    Tick busy = 0;
    for (const auto &c : channels_)
        busy += c.busyTime();
    return static_cast<double>(busy) /
        (static_cast<double>(now) * channels_.size());
}

void
NandArray::reset()
{
    for (auto &d : dies_)
        d.reset();
    for (auto &c : channels_)
        c.reset();
    minDie_ = 0;
    minDieFreeAt_ = 0;
}

} // namespace conduit
