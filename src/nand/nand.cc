#include "src/nand/nand.hh"

#include <cassert>
#include <stdexcept>

namespace conduit
{

NandArray::NandArray(const NandConfig &cfg, StatSet *stats)
    : cfg_(cfg), stats_(stats)
{
    dies_.reserve(numDies());
    for (std::uint32_t d = 0; d < numDies(); ++d)
        dies_.emplace_back("nand.die" + std::to_string(d));
    channels_.reserve(cfg_.channels);
    for (std::uint32_t c = 0; c < cfg_.channels; ++c)
        channels_.emplace_back("nand.ch" + std::to_string(c));
    if (stats_) {
        statReads_ = &stats_->counter("nand.reads");
        statPrograms_ = &stats_->counter("nand.programs");
        statErases_ = &stats_->counter("nand.erases");
        statXferOutBytes_ = &stats_->counter("nand.xfer_out_bytes");
        statXferInBytes_ = &stats_->counter("nand.xfer_in_bytes");
        statDmaOps_ = &stats_->counter("nand.dma_ops");
    }
}

FlashAddress
NandArray::decode(Ppn ppn) const
{
    FlashAddress a;
    a.page = static_cast<std::uint32_t>(ppn % cfg_.pagesPerBlock);
    ppn /= cfg_.pagesPerBlock;
    a.block = static_cast<std::uint32_t>(ppn % cfg_.blocksPerPlane);
    ppn /= cfg_.blocksPerPlane;
    a.plane = static_cast<std::uint32_t>(ppn % cfg_.planesPerDie);
    ppn /= cfg_.planesPerDie;
    a.die = static_cast<std::uint32_t>(ppn % cfg_.diesPerChannel);
    ppn /= cfg_.diesPerChannel;
    a.channel = static_cast<std::uint32_t>(ppn);
    if (a.channel >= cfg_.channels)
        throw std::out_of_range("NandArray::decode: ppn out of range");
    return a;
}

Ppn
NandArray::encode(const FlashAddress &a) const
{
    Ppn ppn = a.channel;
    ppn = ppn * cfg_.diesPerChannel + a.die;
    ppn = ppn * cfg_.planesPerDie + a.plane;
    ppn = ppn * cfg_.blocksPerPlane + a.block;
    ppn = ppn * cfg_.pagesPerBlock + a.page;
    return ppn;
}

ServiceInterval
NandArray::readPage(const FlashAddress &a, Tick earliest)
{
    auto iv = dies_[dieIndex(a)].acquire(earliest,
                                         cfg_.cmdTicks + cfg_.readTicks);
    if (statReads_)
        statReads_->inc();
    return iv;
}

ServiceInterval
NandArray::programPage(const FlashAddress &a, Tick earliest)
{
    auto iv = dies_[dieIndex(a)].acquire(
        earliest, cfg_.cmdTicks + cfg_.programTicks);
    if (statPrograms_)
        statPrograms_->inc();
    return iv;
}

ServiceInterval
NandArray::eraseBlock(const FlashAddress &a, Tick earliest)
{
    auto iv = dies_[dieIndex(a)].acquire(
        earliest, cfg_.cmdTicks + cfg_.eraseTicks);
    if (statErases_)
        statErases_->inc();
    return iv;
}

ServiceInterval
NandArray::transferOut(std::uint32_t channel, std::uint64_t bytes,
                       Tick earliest)
{
    const Tick dur = cfg_.dmaTicks +
        transferTicks(bytes, cfg_.channelBytesPerSec);
    auto iv = channels_.at(channel).acquire(earliest, dur);
    if (statXferOutBytes_) {
        statXferOutBytes_->inc(bytes);
        statDmaOps_->inc();
    }
    return iv;
}

ServiceInterval
NandArray::transferIn(std::uint32_t channel, std::uint64_t bytes,
                      Tick earliest)
{
    const Tick dur = cfg_.dmaTicks +
        transferTicks(bytes, cfg_.channelBytesPerSec);
    auto iv = channels_.at(channel).acquire(earliest, dur);
    if (statXferInBytes_) {
        statXferInBytes_->inc(bytes);
        statDmaOps_->inc();
    }
    return iv;
}

Tick
NandArray::dieBacklog(std::uint32_t die_index, Tick now) const
{
    return dies_.at(die_index).backlog(now);
}

Tick
NandArray::minDieBacklog(Tick now) const
{
    Tick best = kMaxTick;
    for (const auto &d : dies_)
        best = std::min(best, d.backlog(now));
    return best == kMaxTick ? 0 : best;
}

Tick
NandArray::channelBacklog(std::uint32_t channel, Tick now) const
{
    return channels_.at(channel).backlog(now);
}

Tick
NandArray::minChannelBacklog(Tick now) const
{
    Tick best = kMaxTick;
    for (const auto &c : channels_)
        best = std::min(best, c.backlog(now));
    return best == kMaxTick ? 0 : best;
}

double
NandArray::channelUtilization(Tick now) const
{
    if (now == 0)
        return 0.0;
    Tick busy = 0;
    for (const auto &c : channels_)
        busy += c.busyTime();
    return static_cast<double>(busy) /
        (static_cast<double>(now) * channels_.size());
}

void
NandArray::reset()
{
    for (auto &d : dies_)
        d.reset();
    for (auto &c : channels_)
        c.reset();
}

} // namespace conduit
