// Fixture: wall-clock and entropy reads in a simulated path.
#include <chrono>
#include <ctime>
#include <random>

unsigned badEntropy() {
  std::random_device rd;
  return rd();
}

long badTime() {
  return time(nullptr);
}

double badChrono() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
