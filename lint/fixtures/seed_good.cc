// Fixture: seeds plumbed from configuration — safe.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() { return s_ += 0x9E3779B97F4A7C15ull; }
  std::uint64_t s_;
};

struct Config {
  std::uint64_t seed = 42;
};

std::uint64_t goodPlumbedSeed(const Config &cfg) {
  Rng rng(cfg.seed);
  return rng.next();
}

std::uint64_t goodDerivedStream(const Config &cfg,
                                std::uint64_t stream) {
  Rng rng(cfg.seed ^ (stream * 0x9E3779B97F4A7C15ull));
  return rng.next();
}
