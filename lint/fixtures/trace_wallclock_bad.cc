// Fixture: a wall-clock read inside tracing code. The tracer records
// simulated time only — a trace timestamped from std::chrono would
// differ run to run and break the trace bit-identity contract, so
// the wallclock check must flag src/trace/ like any simulated path
// (tracing has no wallclock-allowed carve-out).
#include <chrono>

namespace conduit::trace {

unsigned long long badTraceTimestamp() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<unsigned long long>(
      now.time_since_epoch().count());
}

} // namespace conduit::trace
