// Fixture: known-bad unordered-container traversals.
// Every loop below derives a simulated quantity from an
// address-dependent iteration order.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::uint64_t sumPages(
    const std::unordered_map<std::uint64_t, std::uint64_t> &touches) {
  std::uint64_t total = 0;
  for (const auto &[page, n] : touches) {
    total += page * n;  // order-dependent via overflow? no — but the
  }                     // pattern itself is the hazard being linted
  return total;
}

std::vector<std::uint64_t> collectIds(
    const std::unordered_set<std::uint64_t> &ids) {
  std::vector<std::uint64_t> out(ids.begin(), ids.end());
  return out;  // unsorted copy leaks hash order into results
}
