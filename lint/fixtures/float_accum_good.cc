// Fixture: order-safe reductions under parallelFor — integer
// accumulation per cell, then an index-ordered float merge outside.
#include <cstddef>
#include <cstdint>
#include <vector>

template <typename F> void parallelFor(std::size_t n, F &&f) {
  for (std::size_t i = 0; i < n; ++i) f(i);
}

double goodReduce(const std::vector<double> &xs) {
  std::vector<double> cells(xs.size(), 0.0);
  std::vector<std::uint64_t> counts(xs.size(), 0);
  parallelFor(xs.size(), [&](std::size_t i) {
    cells[i] = xs[i];   // plain store, no accumulation
    counts[i] += 1;     // integer += is exact in any order
  });
  double total = 0.0;
  for (std::size_t i = 0; i < cells.size(); ++i) total += cells[i];
  return total;
}
