// Fixture: containers and sorts ordered by raw pointer value.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct Job {
  int id;
};

std::map<Job *, int> badMap;       // key order follows addresses
std::set<const Job *> badSet;      // same hazard, const-qualified

void badSort(std::vector<Job *> &jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const Job *a, const Job *b) { return a < b; });
}
