// Fixture: a perf-attribution file on the wall-clock allowlist.
// Chrono reads here measure the simulator itself, never simulated
// quantities — the selftest allowlists this file by name.
#include <chrono>

double attributeCell() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}
