// Fixture: snapshot class with a member the capture forgot.
#pragma once
#include <cstdint>
#include <vector>

struct SnapBadImage {
  std::vector<std::uint64_t> table;
  std::uint64_t cursor = 0;
};

class SnapBad {
public:
  SnapBadImage capture() const {
    SnapBadImage img;
    img.table = table_;
    img.cursor = cursor_;
    return img;
  }
  void restore(const SnapBadImage &img) {
    table_ = img.table;
    cursor_ = img.cursor;
  }

private:
  std::vector<std::uint64_t> table_;
  std::uint64_t cursor_ = 0;
  std::uint64_t forgotten_ = 0;  // never captured, never annotated
};
