// Fixture: snapshot class with full coverage — every member either
// captured or annotated transient (single-line and block forms).
#pragma once
#include <cstdint>
#include <vector>

struct SnapGoodImage {
  std::vector<std::uint64_t> table;
  std::uint64_t cursor = 0;
};

struct SnapGoodConfig {
  std::uint64_t capacity = 0;
};

class SnapGood {
public:
  explicit SnapGood(const SnapGoodConfig &cfg) : cfg_(cfg) {}
  SnapGoodImage capture() const {
    SnapGoodImage img;
    img.table = table_;
    img.cursor = cursor_;
    return img;
  }
  void restore(const SnapGoodImage &img) {
    table_ = img.table;
    cursor_ = img.cursor;
  }

private:
  std::vector<std::uint64_t> table_;
  std::uint64_t cursor_ = 0;
  // lint: transient(config is immutable and shared by the fork)
  const SnapGoodConfig &cfg_;
  // lint: transient-begin(scratch rebuilt lazily on first use)
  std::vector<std::uint64_t> scratch_;
  std::uint64_t scratchHigh_ = 0;
  // lint: transient-end
};
