// Fixture: unordered containers used safely — lookup/insert only,
// plus one traversal made order-independent and suppressed.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

std::uint64_t lookupOnly(
    const std::unordered_map<std::uint64_t, std::uint64_t> &slots,
    std::uint64_t key) {
  auto it = slots.find(key);
  return it == slots.end() ? 0 : it->second;
}

std::vector<std::uint64_t> sortedCopy(
    const std::unordered_set<std::uint64_t> &deps) {
  // lint: allow(unordered-iter, copied then std::sort'ed below; final order is value-determined)
  std::vector<std::uint64_t> out(deps.begin(), deps.end());
  std::sort(out.begin(), out.end());
  return out;
}
