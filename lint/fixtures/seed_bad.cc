// Fixture: RNGs constructed outside the config plumbing.
#include <cstdint>
#include <random>

struct Rng {
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() { return s_ += 0x9E3779B97F4A7C15ull; }
  std::uint64_t s_;
};

std::uint64_t badLiteralSeed() {
  Rng rng(0xC0FFEEull);  // literal seed, not plumbed from config
  return rng.next();
}

std::uint64_t badStdEngine() {
  std::mt19937_64 eng;  // stdlib engine, unstable across platforms
  return eng();
}
