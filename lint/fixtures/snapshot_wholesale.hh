// Fixture: wholesale-copied snapshot class holding a raw pointer.
// The compiler-generated copy covers value members, but the pointer
// aliases instead of deep-copying — that member must be flagged.
#pragma once
#include <cstdint>

struct SnapWholesaleBad {
  std::uint64_t state[4] = {1, 2, 3, 4};
  std::uint64_t *shared = nullptr;  // aliases across forks
};
