// Fixture: value-keyed containers and field-keyed sorts — safe.
#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

struct Job {
  int id;
};

std::map<std::uint64_t, int> goodMap;  // integer keys, stable order
std::set<int> goodSet;

void goodSort(std::vector<Job *> &jobs) {
  std::sort(jobs.begin(), jobs.end(),
            [](const Job *a, const Job *b) { return a->id < b->id; });
}
