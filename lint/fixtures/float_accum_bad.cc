// Fixture: floating-point += inside a parallelFor body.
#include <cstddef>
#include <vector>

template <typename F> void parallelFor(std::size_t n, F &&f) {
  for (std::size_t i = 0; i < n; ++i) f(i);
}

double badReduce(const std::vector<double> &xs) {
  double total = 0.0;
  parallelFor(xs.size(), [&](std::size_t i) {
    total += xs[i];  // completion order changes the rounding
  });
  return total;
}
