#!/usr/bin/env python3
"""conduit-lint: determinism/snapshot static analysis for the conduit tree.

Every claim this reproduction makes rests on one invariant: simulated
outputs are byte-identical across thread counts, snapshot/fork,
replays, and disabled-knob configurations. This tool turns the common
ways that invariant silently rots into build-time errors:

  unordered-iter    Range-for / iterator traversal of an
                    std::unordered_map/set in simulation-affecting
                    code. Iteration order is address-dependent, so any
                    simulated quantity derived from it breaks replay.
  wallclock         std::random_device, rand()/srand(), time(),
                    clock(), gettimeofday, or std::chrono::*_clock in
                    simulated paths. Wall-clock reads are allowed only
                    in the perf-attribution files (SweepPerf in
                    sweep_runner.cc; the benches live outside src/).
  ptr-order         std::map/std::set keyed on a raw pointer type, or
                    std::sort with a comparator ordering raw pointer
                    values. Address order varies run to run.
  snapshot          A snapshot-participating class (Engine, Device,
                    Ftl, NandArray, DramModel, IspCore,
                    ReliabilityModel, EventQueue, StatSet, Rng) has a
                    non-static data member that is neither referenced
                    in its capture/restore/snapshot implementation nor
                    marked `// lint: transient(<why>)`. This is the
                    check that makes "the snapshot PR forgot a field"
                    structurally impossible.
  float-accum       `+=` on a float/double accumulator inside a
                    parallelFor lambda. Cross-cell reductions must use
                    the order-preserving Histogram merge (or integer
                    arithmetic); FP addition is not associative.
  seed-plumbing     An RNG constructed from a numeric literal or via a
                    std:: random engine outside the config structs.
                    Seeds must flow from SsdConfig/spec fields so
                    sweeps and forks replay.

Parsing uses the libclang Python bindings when they are importable and
a working libclang is found; otherwise (the common case — no new hard
dependency) a lightweight built-in C++ tokenizer handles everything.
Both paths share the same suppression and reporting machinery.

Suppressions
------------
  // lint: allow(<check>,<why>)      on the offending line or the
                                     line directly above it.
  // lint: transient(<why>)          on a snapshot-class member's
                                     declaration line (or directly
                                     above): the member is deliberately
                                     not captured.
  // lint: transient-begin(<why>)    block form of transient, closed
  // lint: transient-end             by transient-end.

Suppressions are themselves counted and listed in the report, so a
tree that drifts toward "annotate everything" is visible at a glance.

Output
------
Human-readable findings by default; `::error file=..` GitHub
annotations when --github is passed or GITHUB_ACTIONS is set; a JSON
report via --report. Exit status: 0 clean, 1 unsuppressed findings,
2 usage/internal error.

Usage
-----
  scripts/conduit_lint.py                  # lint src/ of the repo
  scripts/conduit_lint.py --root DIR       # lint DIR/src
  scripts/conduit_lint.py --selftest       # fixture suite (lint/)
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.abspath(__file__)))

CHECKS = (
    "unordered-iter",
    "wallclock",
    "ptr-order",
    "snapshot",
    "float-accum",
    "seed-plumbing",
)

# Directories under src/ whose code computes simulated quantities.
# Everything is scanned; this set only widens unordered-iter (pure
# lookup is fine anywhere, traversal is only a hazard where the
# result can feed simulated output — which is all of these).
SIM_DIRS = (
    "src/sim", "src/core", "src/ftl", "src/sched", "src/cluster",
    "src/reliability", "src/nand", "src/dram", "src/isp", "src/host",
    "src/offload", "src/vectorizer", "src/ir", "src/workloads",
    "src/energy", "src/runner", "src/trace",
)

# Files allowed to read the wall clock: per-cell SweepPerf
# attribution. Simulated results never depend on these reads — the
# CI thread-determinism diffs enforce that independently.
WALLCLOCK_ALLOWED_FILES = ("src/runner/sweep_runner.cc",)

# Files allowed to construct literal-seeded RNGs: the config structs
# define the default seeds every other site must plumb from.
SEED_ALLOWED_FILES = ("src/sim/config.hh", "src/sim/config.cc")


class SnapshotClass:
    """One snapshot-participating class and where its capture lives.

    impls: list of (file, [qualified function names]) whose bodies
    must reference every non-transient member. Functions named
    without '::' are looked up inline in the class body itself.
    wholesale: the object is captured by whole-object copy/assignment
    (e.g. `img.rng = rng_`), so value members are covered by the
    compiler-generated copy; raw pointer/reference members still
    require a transient annotation because they alias, not copy.
    """

    def __init__(self, name, header, impls=(), wholesale=False):
        self.name = name
        self.header = header
        self.impls = impls
        self.wholesale = wholesale


SNAPSHOT_CLASSES = (
    SnapshotClass("Engine", "src/core/engine.hh",
                  impls=[("src/core/engine.cc",
                          ["Engine::captureImage",
                           "Engine::restoreImage"])]),
    SnapshotClass("Device", "src/core/device.hh",
                  impls=[("src/core/device.cc",
                          ["Device::snapshot", "Device::Device"])]),
    SnapshotClass("Ftl", "src/ftl/ftl.hh",
                  impls=[("src/ftl/ftl.cc",
                          ["Ftl::capture", "Ftl::restore"])]),
    SnapshotClass("NandArray", "src/nand/nand.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("DramModel", "src/dram/dram.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("IspCore", "src/isp/isp_core.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("ReliabilityModel", "src/reliability/reliability.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("EventQueue", "src/sim/event_queue.hh",
                  impls=[(None, ["restore"])]),
    SnapshotClass("StatSet", "src/sim/stats.hh",
                  impls=[(None, ["restoreFrom"])]),
    SnapshotClass("Rng", "src/sim/rng.hh", wholesale=True),
)


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message
        self.suppressed = None  # (line, why) when allowed inline

    def key(self):
        return (self.path, self.line, self.check)


# --------------------------------------------------------------------
# Source model: comment/string stripping with line preservation.
# --------------------------------------------------------------------

class Source:
    """One file: raw lines, comment text, and stripped code lines.

    `code[i]` is line i with comments and string/char literal
    contents blanked (lengths preserved, so column arithmetic and
    regexes keep working). `comments[i]` holds the comment text of
    line i, where the `// lint:` directives live.
    """

    def __init__(self, path, text):
        self.path = path
        self.raw = text.split("\n")
        self.code = []
        self.comments = []
        self._strip(text)
        self.allows = self._directives("allow")
        self.transients = self._directives("transient")
        self.transient_blocks = self._transient_blocks()

    def _strip(self, text):
        code_lines, comment_lines = [], []
        code, comment = [], []
        state = "code"  # code | line-comment | block-comment | str | chr
        i, n = 0, len(text)
        while i < n:
            c = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "\n":
                code_lines.append("".join(code))
                comment_lines.append("".join(comment))
                code, comment = [], []
                if state == "line-comment":
                    state = "code"
                i += 1
                continue
            if state == "code":
                if c == "/" and nxt == "/":
                    state = "line-comment"
                    code.append("  ")
                    i += 2
                    continue
                if c == "/" and nxt == "*":
                    state = "block-comment"
                    code.append("  ")
                    i += 2
                    continue
                if c == '"':
                    state = "str"
                    code.append(c)
                    i += 1
                    continue
                if c == "'":
                    state = "chr"
                    code.append(c)
                    i += 1
                    continue
                code.append(c)
                i += 1
                continue
            if state in ("line-comment", "block-comment"):
                if state == "block-comment" and c == "*" and nxt == "/":
                    state = "code"
                    code.append("  ")
                    i += 2
                    continue
                comment.append(c)
                code.append(" ")
                i += 1
                continue
            # String/char literal: blank the contents.
            if c == "\\":
                code.append("  ")
                i += 2
                continue
            if (state == "str" and c == '"') or (
                    state == "chr" and c == "'"):
                state = "code"
                code.append(c)
                i += 1
                continue
            code.append(" ")
            i += 1
        code_lines.append("".join(code))
        comment_lines.append("".join(comment))
        self.code = code_lines
        self.comments = comment_lines

    def _directives(self, kind):
        """{line (1-based): why} for `lint: <kind>(check,why)` forms."""
        out = {}
        # Greedy body match: the reason text may itself contain
        # parentheses (e.g. "snapshot() drains..."), so capture up to
        # the last ')' on the line.
        pat = re.compile(
            r"lint:\s*" + kind + r"\((.*)\)")
        for idx, comment in enumerate(self.comments):
            m = pat.search(comment)
            if m:
                out[idx + 1] = m.group(1).strip()
        return out

    def _transient_blocks(self):
        """[(first, last, why)] line ranges of transient-begin/end."""
        blocks = []
        begin = re.compile(r"lint:\s*transient-begin\((.*)\)")
        end = re.compile(r"lint:\s*transient-end")
        open_at, why = None, None
        for idx, comment in enumerate(self.comments):
            m = begin.search(comment)
            if m:
                open_at, why = idx + 1, m.group(1).strip()
                continue
            if end.search(comment) and open_at is not None:
                blocks.append((open_at, idx + 1, why))
                open_at = None
        return blocks

    def allow_for(self, line):
        """allow() on the finding's line or the line above, if any."""
        for cand in (line, line - 1):
            if cand in self.allows:
                return cand, self.allows[cand]
        return None

    def transient_for(self, line):
        for cand in (line, line - 1):
            if cand in self.transients:
                return cand, self.transients[cand]
        for first, last, why in self.transient_blocks:
            if first <= line <= last:
                return first, why
        return None

    def line_of_offset(self, offset):
        """1-based line containing character offset into joined code."""
        joined = 0
        for idx, line in enumerate(self.code):
            joined += len(line) + 1
            if offset < joined:
                return idx + 1
        return len(self.code)

    def joined_code(self):
        return "\n".join(self.code)


def load_source(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        return Source(relpath, f.read())


# --------------------------------------------------------------------
# Lightweight C++ helpers (the fallback tokenizer's toolbox).
# --------------------------------------------------------------------

IDENT = r"[A-Za-z_]\w*"


def match_paren(text, open_pos, open_ch="(", close_ch=")"):
    """Offset one past the matching close bracket, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def find_function_body(text, qualified_name):
    """[(start, end)] body extents of definitions of qualified_name.

    Matches `name (args) [qualifiers] {` — good enough for this
    codebase's formatting, where definitions put the qualified name
    at the start of a line.
    """
    out = []
    pat = re.compile(re.escape(qualified_name) + r"\s*\(")
    for m in pat.finditer(text):
        close = match_paren(text, m.end() - 1)
        if close < 0:
            continue
        # Skip declarations (`...);`) and find the opening brace,
        # tolerating `const`, `noexcept`, `override`, init lists.
        i = close
        depth = 0
        while i < len(text):
            c = text[i]
            if c == ";" and depth == 0:
                break  # declaration, not a definition
            if c in "({[":
                if c == "{" and depth == 0:
                    end = match_paren(text, i, "{", "}")
                    if end > 0:
                        out.append((i, end))
                    break
                depth += 1
            elif c in ")}]":
                depth -= 1
            i += 1
    return out


def find_class_body(text, class_name):
    """(start, end) offsets of `class/struct name ... { ... }`."""
    pat = re.compile(
        r"\b(?:class|struct)\s+" + re.escape(class_name) +
        r"\b[^;{]*\{")
    m = pat.search(text)
    if not m:
        return None
    open_pos = m.end() - 1
    end = match_paren(text, open_pos, "{", "}")
    if end < 0:
        return None
    return open_pos, end


MEMBER_SKIP_PREFIX = re.compile(
    r"\s*(public|private|protected|using|typedef|friend|static|"
    r"template|enum|struct|class|union|return)\b")


def class_members(text, body_start, body_end):
    """[(name, decl_offset)] non-static data members of a class body.

    Walks the class body at nesting depth 1 (skipping nested type
    and inline function bodies), splits statements at top-level
    semicolons, filters out declarations with top-level parens
    (functions) and keyword-led statements, and takes the declarator
    name as the last identifier before the initializer.
    """
    members = []
    depth = 0
    stmt_start = body_start + 1
    i = body_start + 1
    while i < body_end - 1:
        c = text[i]
        if c in "{(":
            inner = match_paren(
                text, i, c, "}" if c == "{" else ")")
            if inner < 0:
                break
            if c == "(":
                # Remember the statement had top-level parens (it's
                # a function declaration/definition) by marking it.
                depth_paren_stmt.add(stmt_start)
            i = inner
            continue
        if c == ";":
            stmt = text[stmt_start:i]
            off = stmt_start
            name = _member_name(stmt)
            if name and stmt_start not in depth_paren_stmt:
                # Offset of the declarator itself, for line mapping.
                m = re.search(r"\b" + re.escape(name) + r"\b(?!.*\b" +
                              re.escape(name) + r"\b)", stmt,
                              re.DOTALL)
                members.append(
                    (name, off + (m.start() if m else 0)))
            stmt_start = i + 1
        i += 1
    return members


depth_paren_stmt = set()  # reset per class_members call site


def _member_name(stmt):
    s = stmt.strip()
    if not s or MEMBER_SKIP_PREFIX.match(s):
        return None
    if "(" in _outside_angles(s.split("=", 1)[0].split("{", 1)[0]):
        return None
    # Drop the initializer: split at the first top-level '=' or '{'.
    decl = _split_initializer(s)
    # Strip trailing array extents: `state_[4]` -> `state_`.
    decl = re.sub(r"\[[^\]]*\]\s*$", "", decl).rstrip()
    m = re.search(r"(" + IDENT + r")\s*$", decl)
    if not m:
        return None
    name = m.group(1)
    if name in ("const", "mutable", "volatile"):
        return None
    return name


def _split_initializer(s):
    depth_angle = 0
    for i, c in enumerate(s):
        if c == "<":
            depth_angle += 1
        elif c == ">":
            depth_angle = max(0, depth_angle - 1)
        elif c in "={" and depth_angle == 0:
            return s[:i]
    return s


def _outside_angles(s):
    out, depth = [], 0
    for c in s:
        if c == "<":
            depth += 1
        elif c == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(c)
    return "".join(out)


# --------------------------------------------------------------------
# Optional libclang front-end (refines unordered-iter when present).
# --------------------------------------------------------------------

def _try_libclang():
    try:
        from clang import cindex  # noqa: F401
        idx = cindex.Index.create()
        return cindex, idx
    except Exception:  # ImportError or LibclangError
        return None, None


LIBCLANG, LIBCLANG_INDEX = _try_libclang()


def libclang_unordered_loops(root, relpath):
    """Range-for statements whose range is an unordered container.

    Returns a set of 1-based lines, or None when libclang is
    unavailable or fails to parse (the tokenizer path then stands
    alone, which is the no-hard-dependency contract).
    """
    if LIBCLANG is None:
        return None
    try:
        tu = LIBCLANG_INDEX.parse(
            os.path.join(root, relpath),
            args=["-std=c++17", "-I", root])
    except Exception:
        return None
    lines = set()

    def visit(node):
        if node.kind == LIBCLANG.CursorKind.CXX_FOR_RANGE_STMT:
            for child in node.get_children():
                t = child.type.spelling
                if "unordered_map" in t or "unordered_set" in t:
                    lines.add(node.location.line)
                break
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return lines


# --------------------------------------------------------------------
# Check 1: unordered-iteration.
# --------------------------------------------------------------------

UNORDERED_DECL = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_VAR = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")


def collect_unordered_names(src):
    """Names declared (anywhere in the file) with an unordered type.

    Conservative: a name is tainted file-wide. That over-taints
    shadowed locals in principle, but those don't occur here and the
    failure mode is a spurious finding someone annotates, not a
    silently missed hazard.
    """
    names = set()
    text = src.joined_code()
    for m in UNORDERED_VAR.finditer(text):
        close = _match_angle(text, m.end() - 1)
        if close < 0:
            continue
        rest = text[close:]
        dm = re.match(r"\s*&?\s*(" + IDENT + r")\s*[;={(,)]", rest)
        if dm:
            names.add(dm.group(1))
        # Alias declarations: using Foo = std::unordered_map<...>;
        before = text[max(0, m.start() - 120):m.start()]
        am = re.search(r"using\s+(" + IDENT + r")\s*=\s*$", before)
        if am:
            names.add(am.group(1))
    return names


def _match_angle(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def check_unordered_iter(src, findings):
    if not any(src.path.startswith(d + "/") or
               os.path.dirname(src.path) == d for d in SIM_DIRS):
        return
    names = collect_unordered_names(src)
    text = src.joined_code()

    # Range-for over a tainted name: for (... : expr-with-name)
    for m in re.finditer(r"\bfor\s*\(", text):
        close = match_paren(text, m.end() - 1)
        if close < 0:
            continue
        header = text[m.end():close - 1]
        if ":" not in header:
            continue
        range_expr = header.rsplit(":", 1)[1]
        for name in names:
            if re.search(r"\b" + re.escape(name) + r"\b", range_expr):
                line = src.line_of_offset(m.start())
                findings.append(Finding(
                    "unordered-iter", src.path, line,
                    f"range-for over unordered container '{name}': "
                    "iteration order is address-dependent and breaks "
                    "replay determinism"))
                break

    # Iterator traversal / bulk copies: name.begin()/cbegin()/rbegin().
    for name in names:
        for m in re.finditer(
                r"\b" + re.escape(name) +
                r"\s*\.\s*(?:c?r?begin)\s*\(", text):
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                "unordered-iter", src.path, line,
                f"iterator traversal of unordered container "
                f"'{name}': iteration order is address-dependent "
                "and breaks replay determinism"))

    # libclang refinement: lines it proves are unordered range-fors
    # that the name-based pass missed (e.g. via member access off a
    # getter). Purely additive.
    clang_lines = libclang_unordered_loops(REPO_ROOT, src.path)
    if clang_lines:
        seen = {f.line for f in findings
                if f.path == src.path and f.check == "unordered-iter"}
        for line in sorted(clang_lines - seen):
            findings.append(Finding(
                "unordered-iter", src.path, line,
                "range-for over unordered container (libclang): "
                "iteration order is address-dependent"))


# --------------------------------------------------------------------
# Check 2: wall-clock / entropy.
# --------------------------------------------------------------------

WALLCLOCK_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*random_device\b"),
     "std::random_device is non-deterministic entropy"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("),
     "rand()/srand() is unseeded global entropy"),
    (re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
     "time() reads the wall clock"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\("),
     "wall-clock syscall"),
    (re.compile(r"\bstd\s*::\s*chrono\s*::\s*(?:steady_clock|"
                r"system_clock|high_resolution_clock)\b"),
     "std::chrono clock read in a simulated path"),
)


def check_wallclock(src, findings):
    if src.path in WALLCLOCK_ALLOWED_FILES:
        return
    text = src.joined_code()
    for pat, why in WALLCLOCK_PATTERNS:
        for m in pat.finditer(text):
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                "wallclock", src.path, line,
                f"{why}; simulated quantities must derive only from "
                "simulated time and plumbed seeds"))


# --------------------------------------------------------------------
# Check 3: pointer-ordered containers.
# --------------------------------------------------------------------

ORDERED_CONTAINER = re.compile(
    r"std\s*::\s*(?:multi)?(?:map|set)\s*<")


def check_ptr_order(src, findings):
    text = src.joined_code()
    for m in ORDERED_CONTAINER.finditer(text):
        # Exclude unordered_* (the regex can't look behind var-width).
        before = text[max(0, m.start() - 10):m.start()]
        if before.endswith("unordered_"):
            continue
        close = _match_angle(text, m.end() - 1)
        if close < 0:
            continue
        args = text[m.end():close - 1]
        key = _first_template_arg(args)
        if key.rstrip().endswith("*"):
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                "ptr-order", src.path, line,
                f"ordered container keyed on raw pointer "
                f"'{key.strip()}': iteration order follows addresses "
                "and varies run to run"))

    # std::sort with a comparator ordering raw pointers directly.
    for m in re.finditer(r"std\s*::\s*(?:stable_)?sort\s*\(", text):
        close = match_paren(text, m.end() - 1)
        if close < 0:
            continue
        call = text[m.end():close - 1]
        lam = re.search(
            r"\[[^\]]*\]\s*\(([^)]*\*[^)]*)\)\s*(?:->[^{]*)?\{",
            call)
        if not lam:
            continue
        params = [p.strip() for p in lam.group(1).split(",")]
        ptr_names = []
        for p in params:
            pm = re.search(r"\*\s*(?:const\s+)?(" + IDENT + r")\s*$",
                           p)
            if pm:
                ptr_names.append(pm.group(1))
        if len(ptr_names) < 2:
            continue
        body_open = call.find("{", lam.start())
        body_end = match_paren(call, body_open, "{", "}")
        body = call[body_open:body_end]
        a, b = ptr_names[0], ptr_names[1]
        direct = re.search(
            r"\b" + a + r"\s*[<>]=?\s*" + b + r"\b|\b" +
            b + r"\s*[<>]=?\s*" + a + r"\b", body)
        if direct:
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                "ptr-order", src.path, line,
                "std::sort comparator orders raw pointer values: "
                "address order varies run to run"))


def _first_template_arg(args):
    depth = 0
    for i, c in enumerate(args):
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif c == "," and depth == 0:
            return args[:i]
    return args


# --------------------------------------------------------------------
# Check 4: snapshot coverage.
# --------------------------------------------------------------------

def check_snapshot(root, classes, findings, missing_is_error=True):
    for sc in classes:
        header_path = os.path.join(root, sc.header)
        if not os.path.isfile(header_path):
            if missing_is_error:
                findings.append(Finding(
                    "snapshot", sc.header, 1,
                    f"snapshot class {sc.name}: header not found"))
            continue
        src = load_source(root, sc.header)
        text = src.joined_code()
        body = find_class_body(text, sc.name)
        if body is None:
            findings.append(Finding(
                "snapshot", sc.header, 1,
                f"snapshot class {sc.name}: class body not found"))
            continue
        depth_paren_stmt.clear()
        members = class_members(text, body[0], body[1])

        # Gather the capture/restore implementation text.
        impl_text = []
        for impl_file, fn_names in sc.impls:
            if impl_file is None:
                impl_src, impl_body_text = src, text[body[0]:body[1]]
            else:
                impl_src = load_source(root, impl_file)
                impl_body_text = impl_src.joined_code()
            for fn in fn_names:
                spans = find_function_body(impl_body_text, fn)
                for start, end in spans:
                    impl_text.append(impl_body_text[start:end])
        impl = "\n".join(impl_text)
        if sc.impls and not impl:
            findings.append(Finding(
                "snapshot", sc.header,
                src.line_of_offset(body[0]),
                f"snapshot class {sc.name}: no "
                "capture/restore/snapshot implementation found "
                f"({', '.join(fn for _, fns in sc.impls for fn in fns)})"))
            continue

        for name, decl_off in members:
            decl_line = src.line_of_offset(decl_off)
            if sc.wholesale:
                # Whole-object copy covers value members; aliasing
                # members (raw pointers/references) still need an
                # explicit transient annotation.
                decl_stmt = src.code[decl_line - 1]
                if "*" not in decl_stmt and "&" not in decl_stmt:
                    continue
                if src.transient_for(decl_line):
                    continue
                findings.append(Finding(
                    "snapshot", sc.header, decl_line,
                    f"{sc.name}::{name} is a pointer/reference in a "
                    "wholesale-copied snapshot class: the copy "
                    "aliases instead of deep-copying; mark it "
                    "`// lint: transient(<why>)` or restructure"))
                continue
            if re.search(r"\b" + re.escape(name) + r"\b", impl):
                continue
            if src.transient_for(decl_line):
                continue
            fns = ", ".join(
                fn for _, fn_list in sc.impls for fn in fn_list)
            findings.append(Finding(
                "snapshot", sc.header, decl_line,
                f"{sc.name}::{name} is neither referenced in "
                f"{fns or 'the snapshot implementation'} nor marked "
                "`// lint: transient(<why>)` — a forked device would "
                "silently lose this state"))


# --------------------------------------------------------------------
# Check 5: float accumulation order inside parallelFor.
# --------------------------------------------------------------------

FLOAT_DECL = re.compile(
    r"\b(?:double|float)\s+(" + IDENT + r")\s*[;={]")


def check_float_accum(src, findings):
    text = src.joined_code()
    float_names = {m.group(1) for m in FLOAT_DECL.finditer(text)}
    # References/pointers to float also accumulate float.
    for m in re.finditer(
            r"\b(?:double|float)\s*[&*]\s*(" + IDENT + r")", text):
        float_names.add(m.group(1))
    if not float_names:
        return
    for m in re.finditer(r"\bparallelFor\s*\(", text):
        close = match_paren(text, m.end() - 1)
        if close < 0:
            continue
        body = text[m.end():close - 1]
        for am in re.finditer(
                r"\b(" + IDENT + r")\s*(?:\[[^\]]*\]\s*)?\+=", body):
            name = am.group(1)
            if name in float_names:
                line = src.line_of_offset(m.end() + am.start())
                findings.append(Finding(
                    "float-accum", src.path, line,
                    f"float accumulator '{name}' updated with += "
                    "inside a parallelFor body: FP addition is not "
                    "associative — merge per-cell results in index "
                    "order (Histogram::merge) instead"))


# --------------------------------------------------------------------
# Check 6: seed plumbing.
# --------------------------------------------------------------------

SEED_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*(?:mt19937(?:_64)?|minstd_rand0?|"
                r"default_random_engine|knuth_b|ranlux\w+)\b"),
     "std:: random engine: distribution outputs are not fixed "
     "across standard libraries — use conduit::Rng with a plumbed "
     "seed"),
    (re.compile(r"\bRng\s+" + IDENT +
                r"\s*[({]\s*(?:0[xX][0-9a-fA-F']+|\d[\d']*)"
                r"\s*[uUlL]*\s*[)}]"),
     "RNG constructed from a numeric literal: seeds must flow from "
     "config/spec fields so sweeps and forks replay"),
    (re.compile(r"(?<![\w:.])srand\s*\("),
     "srand() seeds global state invisibly"),
)


def check_seed_plumbing(src, findings):
    if src.path in SEED_ALLOWED_FILES:
        return
    text = src.joined_code()
    for pat, why in SEED_PATTERNS:
        for m in pat.finditer(text):
            line = src.line_of_offset(m.start())
            findings.append(Finding(
                "seed-plumbing", src.path, line, why))


# --------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------

def scan_tree(root, paths=None, snapshot_classes=SNAPSHOT_CLASSES,
              checks=CHECKS):
    findings = []
    files = []
    if paths:
        files = sorted(paths)
    else:
        for dirpath, _, names in os.walk(os.path.join(root, "src")):
            for name in sorted(names):
                if name.endswith((".cc", ".hh")):
                    files.append(os.path.relpath(
                        os.path.join(dirpath, name), root))
        files.sort()

    sources = {}
    for rel in files:
        try:
            sources[rel] = load_source(root, rel)
        except OSError as e:
            findings.append(Finding(
                "internal", rel, 1, f"unreadable: {e}"))

    for rel, src in sources.items():
        if "unordered-iter" in checks:
            check_unordered_iter(src, findings)
        if "wallclock" in checks:
            check_wallclock(src, findings)
        if "ptr-order" in checks:
            check_ptr_order(src, findings)
        if "float-accum" in checks:
            check_float_accum(src, findings)
        if "seed-plumbing" in checks:
            check_seed_plumbing(src, findings)
    if "snapshot" in checks:
        check_snapshot(root, snapshot_classes, findings)

    # Apply inline suppressions.
    suppressed = []
    active = []
    dedup = set()
    for f in sorted(findings, key=Finding.key):
        if f.key() in dedup:
            continue
        dedup.add(f.key())
        src = sources.get(f.path)
        if src is None and os.path.isfile(os.path.join(root, f.path)):
            src = load_source(root, f.path)
            sources[f.path] = src
        allow = src.allow_for(f.line) if src else None
        if allow:
            why = allow[1]
            check_tag = why.split(",", 1)[0].strip()
            if check_tag == f.check or check_tag == "*":
                f.suppressed = allow
                suppressed.append(f)
                continue
        active.append(f)
    return active, suppressed, sources


def count_transients(sources):
    out = []
    for rel in sorted(sources):
        src = sources[rel]
        for line, why in sorted(src.transients.items()):
            out.append((rel, line, why))
        for first, _, why in src.transient_blocks:
            out.append((rel, first, f"[block] {why}"))
    return out


def emit(findings, suppressed, transients, github, report_path):
    for f in findings:
        if github:
            print(f"::error file={f.path},line={f.line},"
                  f"title=conduit-lint [{f.check}]::{f.message}")
        print(f"{f.path}:{f.line}: error: [{f.check}] {f.message}")
    if suppressed:
        print(f"\n{len(suppressed)} suppressed finding(s):")
        for f in suppressed:
            why = f.suppressed[1].split(",", 1)
            reason = why[1].strip() if len(why) > 1 else "(no reason)"
            print(f"  {f.path}:{f.line}: [{f.check}] "
                  f"allowed: {reason}")
    if transients:
        print(f"{len(transients)} transient member annotation(s):")
        for rel, line, why in transients:
            print(f"  {rel}:{line}: transient: {why}")
    by_check = {}
    for f in findings:
        by_check[f.check] = by_check.get(f.check, 0) + 1
    summary = ", ".join(f"{k}={v}" for k, v in sorted(
        by_check.items())) or "clean"
    print(f"\nconduit-lint: {len(findings)} unsuppressed finding(s) "
          f"({summary}), {len(suppressed)} suppressed, "
          f"{len(transients)} transient annotations "
          f"[{'libclang' if LIBCLANG else 'builtin tokenizer'}]")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as f:
            json.dump({
                "findings": [
                    {"check": x.check, "file": x.path,
                     "line": x.line, "message": x.message}
                    for x in findings],
                "suppressed": [
                    {"check": x.check, "file": x.path,
                     "line": x.line, "why": x.suppressed[1]}
                    for x in suppressed],
                "transients": [
                    {"file": rel, "line": line, "why": why}
                    for rel, line, why in transients],
                "frontend": ("libclang" if LIBCLANG
                             else "builtin tokenizer"),
            }, f, indent=2)
            f.write("\n")


# --------------------------------------------------------------------
# Selftest: fixture suite under lint/.
# --------------------------------------------------------------------

FIXTURE_SNAPSHOT_CLASSES = (
    SnapshotClass("SnapBad", "lint/fixtures/snapshot_bad.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("SnapGood", "lint/fixtures/snapshot_good.hh",
                  impls=[(None, ["capture", "restore"])]),
    SnapshotClass("SnapWholesaleBad",
                  "lint/fixtures/snapshot_wholesale.hh",
                  wholesale=True),
)


def selftest(root):
    fixture_dir = os.path.join(root, "lint", "fixtures")
    golden_path = os.path.join(root, "lint", "expected",
                               "findings.golden")
    if not os.path.isdir(fixture_dir):
        print(f"selftest: no fixture dir at {fixture_dir}")
        return 2
    fixtures = []
    for name in sorted(os.listdir(fixture_dir)):
        if name.endswith((".cc", ".hh")):
            fixtures.append(os.path.join("lint/fixtures", name))

    # Fixtures are linted as if they lived in a sim-affecting dir.
    global SIM_DIRS, WALLCLOCK_ALLOWED_FILES, SEED_ALLOWED_FILES
    saved = (SIM_DIRS, WALLCLOCK_ALLOWED_FILES, SEED_ALLOWED_FILES)
    SIM_DIRS = SIM_DIRS + ("lint/fixtures",)
    WALLCLOCK_ALLOWED_FILES = (
        "lint/fixtures/wallclock_allowed_file.cc",)
    SEED_ALLOWED_FILES = ()
    try:
        active, suppressed, _ = scan_tree(
            root, paths=fixtures,
            snapshot_classes=FIXTURE_SNAPSHOT_CLASSES)
    finally:
        SIM_DIRS, WALLCLOCK_ALLOWED_FILES, SEED_ALLOWED_FILES = saved

    got = sorted(f"{f.check} {f.path}:{f.line}" for f in active)
    got += sorted(f"suppressed {f.check} {f.path}:{f.line}"
                  for f in suppressed)
    with open(golden_path, encoding="utf-8") as f:
        want = [ln.rstrip() for ln in f
                if ln.strip() and not ln.startswith("#")]
    if got != want:
        print("lint selftest FAILED: findings differ from golden")
        for line in sorted(set(want) - set(got)):
            print(f"  missing: {line}")
        for line in sorted(set(got) - set(want)):
            print(f"  extra:   {line}")
        return 1
    print(f"lint selftest passed: {len(want)} golden findings "
          f"reproduced over {len(fixtures)} fixtures "
          f"[{'libclang' if LIBCLANG else 'builtin tokenizer'}]")
    return 0


def main():
    global REPO_ROOT
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: the tree "
                        "containing this script)")
    parser.add_argument("paths", nargs="*",
                        help="specific files (relative to root) "
                        "instead of all of src/")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub annotation lines "
                        "(auto-on under GITHUB_ACTIONS)")
    parser.add_argument("--report", metavar="FILE",
                        help="write a JSON report")
    parser.add_argument("--selftest", action="store_true",
                        help="run the fixture suite under lint/")
    parser.add_argument("--list-checks", action="store_true")
    args = parser.parse_args()

    if args.list_checks:
        for c in CHECKS:
            print(c)
        return 0
    REPO_ROOT = os.path.abspath(args.root)
    if args.selftest:
        return selftest(REPO_ROOT)

    github = args.github or os.environ.get("GITHUB_ACTIONS") == "true"
    active, suppressed, sources = scan_tree(
        REPO_ROOT, paths=args.paths or None)
    transients = count_transients(sources)
    emit(active, suppressed, transients, github, args.report)
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
