#!/usr/bin/env python3
"""Summarize a conduit trace file (--trace output, CSV or JSON).

Reads the deterministic trace that every bench emits under
``--trace PATH`` (Chrome trace-event JSON, or the compact CSV when
PATH ends in .csv) and prints:

  * per-resource utilization (ISP / PuD / IFP occupancy plus host
    drains) per sweep cell and device,
  * the top-N longest job spans,
  * ECC-retry-stall blame per die,
  * queue-depth percentiles from the admission-queue samples.

All arithmetic is integer picoseconds, so the report is exact and
byte-stable for a given trace file — which is what the golden
selftest (``--selftest``) relies on: it summarizes the committed
reduced trace at scripts/testdata/trace_small.csv and diffs the
output against scripts/testdata/trace_summary.golden.

``--validate`` instead checks the file's structure (trace-event JSON
schema or CSV shape) and exits non-zero on the first violation; CI
runs it over freshly-generated traces.

Regenerate the committed testdata with:

  bench_fleet --threads 1 --scale 0.002 --devices 2 --jobs 3 \
      --age-mix 0,0:6000 --workloads "XOR Filter" \
      --techniques least-backlog --trace scripts/testdata/trace_small.csv
  python3 scripts/trace_summary.py scripts/testdata/trace_small.csv \
      > scripts/testdata/trace_summary.golden
"""

import argparse
import json
import os
import sys
from collections import defaultdict, namedtuple

PS_PER_US = 1_000_000

CSV_HEADER = "cell,device,cat,kind,lane,start_ps,end_ps,a,b,c,tag"

KINDS = {
    "job",
    "instr",
    "host-drain",
    "ecc-stall",
    "scrub",
    "backlog",
    "job-queue",
    "placement",
}

CATS = {"job", "occupancy", "reliability", "queue", "placement"}

# Target enum order (src/sim/types.hh): Isp, Pud, Ifp.
RESOURCES = ("isp", "pud", "ifp")

Event = namedtuple(
    "Event",
    ["cell", "device", "cat", "kind", "lane", "start", "end",
     "a", "b", "c", "tag"],
)


def fmt_us(ps):
    """Exact decimal microseconds from integer picoseconds."""
    return "%d.%06d" % (ps // PS_PER_US, ps % PS_PER_US)


def fmt_pct(part, whole):
    """part/whole as a percentage with two exact decimals."""
    if whole == 0:
        return "0.00"
    scaled = part * 10000 // whole
    return "%d.%02d" % (scaled // 100, scaled % 100)


def percentile(sorted_vals, p):
    """Nearest-rank percentile of a pre-sorted list (deterministic)."""
    if not sorted_vals:
        return 0
    rank = max(1, -(-len(sorted_vals) * p // 100))  # ceil
    return sorted_vals[min(rank, len(sorted_vals)) - 1]


# ------------------------------------------------------------ parsing


def parse_csv(path):
    events = []
    with open(path, "r", encoding="utf-8") as f:
        header = f.readline().rstrip("\n")
        if header != CSV_HEADER:
            raise ValueError("bad CSV header: %r" % header)
        for lineno, line in enumerate(f, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split(",", 10)
            if len(parts) != 11:
                raise ValueError("line %d: expected 11 fields, got %d"
                                 % (lineno, len(parts)))
            (cell, device, cat, kind, lane, start, end, a, b, c,
             tag) = parts
            if kind not in KINDS:
                raise ValueError("line %d: unknown kind %r"
                                 % (lineno, kind))
            if cat not in CATS:
                raise ValueError("line %d: unknown cat %r"
                                 % (lineno, cat))
            events.append(Event(cell, int(device), cat, kind,
                                int(lane), int(start), int(end),
                                int(a), int(b), int(c), tag))
    return events


def _us_to_ps(val):
    """A trace-event us timestamp back to integer ps.

    The exporter prints exact six-fractional-digit decimals; going
    through the JSON parser loses exactness above 2^53 ps, which is
    fine for summarization (CSV is the exact format).
    """
    return int(round(float(val) * PS_PER_US))


# tid layout mirrored from src/trace/export.cc.
TRACKS_PER_DEVICE = 4096
TRACK_DIE_BASE = 16

INSTR_NAMES = {"isp": 0, "pud": 1, "ifp": 2}


def parse_json(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    events = []
    cell_of_pid = {}
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                cell_of_pid[ev["pid"]] = ev["args"]["name"]
            continue
        cell = cell_of_pid.get(ev.get("pid"), "?")
        args = ev.get("args", {})
        ts = _us_to_ps(ev.get("ts", 0))
        name = ev.get("name", "")
        if ph == "C":
            # "dev%u backlog" / "dev%u queue" counters.
            dev_str, _, what = name.partition(" ")
            device = int(dev_str[3:]) if dev_str.startswith("dev") else 0
            if what == "queue":
                events.append(Event(cell, device, "queue", "job-queue",
                                    0, ts, ts, int(args["pending"]),
                                    int(args["waiting"]),
                                    int(args["admitted_pages"]), ""))
            else:
                events.append(Event(cell, device, "queue", "backlog",
                                    int(args.get("busy_ppm", 0)),
                                    ts, ts, _us_to_ps(args["isp_us"]),
                                    _us_to_ps(args["pud_us"]),
                                    _us_to_ps(args["die_us"]), ""))
            continue
        tid = ev.get("tid", 0)
        local = tid % TRACKS_PER_DEVICE
        device = tid // TRACKS_PER_DEVICE
        lane = local - TRACK_DIE_BASE if local >= TRACK_DIE_BASE else 0
        if ph == "i":
            if name == "scrub":
                events.append(Event(cell, device, "reliability",
                                    "scrub", lane, ts, ts,
                                    int(args["refreshed"]),
                                    int(args["migrations"]), 0, ""))
            elif name == "place":
                events.append(Event(cell, device, "placement",
                                    "placement", 0, ts, ts,
                                    int(args["tenant"]),
                                    int(args["job"]),
                                    int(args["pending"]),
                                    args.get("probe", "")))
            continue
        if ph != "X":
            continue
        end = ts + _us_to_ps(ev.get("dur", 0))
        if name in INSTR_NAMES:
            events.append(Event(cell, device, "occupancy", "instr",
                                lane, ts, end, int(args["id"]),
                                int(args["op"]), INSTR_NAMES[name],
                                args.get("stream", "")))
        elif name == "drain":
            events.append(Event(cell, device, "occupancy",
                                "host-drain", 0, ts, end,
                                int(args["pages"]), 0, 0,
                                args.get("stream", "")))
        elif name == "ecc":
            events.append(Event(cell, device, "reliability",
                                "ecc-stall", lane, ts, end,
                                int(args["block"]),
                                _us_to_ps(args["penalty_us"]), 0, ""))
        else:
            # Job lifecycle span; the span name is the job tag.
            events.append(Event(cell, device, "job", "job", 0, ts,
                                end, int(args["job"]),
                                _us_to_ps(args["admitted_us"]),
                                int(args["pages"]), name))
    return events


def parse_trace(path):
    if path.endswith(".csv"):
        return parse_csv(path)
    return parse_json(path)


# --------------------------------------------------------- validation


def validate_json(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return "top-level object must carry a traceEvents array"
    evs = doc["traceEvents"]
    if not isinstance(evs, list):
        return "traceEvents is not an array"
    required = {
        "M": ("pid", "name", "args"),
        "X": ("pid", "tid", "name", "cat", "ts", "dur"),
        "i": ("pid", "tid", "name", "cat", "ts", "s"),
        "C": ("pid", "name", "ts", "args"),
    }
    for i, ev in enumerate(evs):
        if not isinstance(ev, dict):
            return "event %d is not an object" % i
        ph = ev.get("ph")
        if ph not in required:
            return "event %d: unknown ph %r" % (i, ph)
        for key in required[ph]:
            if key not in ev:
                return "event %d (ph=%s): missing %r" % (i, ph, key)
        if ph in ("X", "i") and ev["cat"] not in CATS:
            return "event %d: unknown cat %r" % (i, ev["cat"])
        if ph == "X" and (ev["ts"] < 0 or ev["dur"] < 0):
            return "event %d: negative ts/dur" % i
        if ph == "i" and ev["s"] != "t":
            return "event %d: instant scope must be \"t\"" % i
    return None


def validate(path):
    try:
        if path.endswith(".csv"):
            parse_csv(path)  # raises on any shape violation
            err = None
        else:
            err = validate_json(path)
    except (ValueError, KeyError, json.JSONDecodeError, OSError) as e:
        err = str(e)
    if err:
        print("%s: INVALID: %s" % (path, err), file=sys.stderr)
        return 1
    n = len(parse_trace(path))
    print("%s: OK (%d events)" % (path, n))
    return 0


# ---------------------------------------------------------- summaries


def summarize(events, top_n, out):
    w = out.write
    by_kind = defaultdict(int)
    for e in events:
        by_kind[e.kind] += 1
    w("trace summary: %d events\n" % len(events))
    for kind in sorted(by_kind):
        w("  %-11s %6d\n" % (kind, by_kind[kind]))

    cells = sorted({e.cell for e in events})

    # Per-resource utilization: instr busy per (cell, device,
    # resource) plus host drains, against the cell's traced span.
    # Aggregate busy over all lanes of a resource, so a cell running
    # concurrent streams/dies can legitimately exceed 100% of span.
    w("\nresource utilization (busy_us, % of cell span)\n")
    for cell in cells:
        cell_evs = [e for e in events if e.cell == cell]
        span_lo = min(e.start for e in cell_evs)
        span_hi = max(e.end for e in cell_evs)
        span = span_hi - span_lo
        w("  cell %s (span %s us)\n" % (cell, fmt_us(span)))
        busy = defaultdict(int)  # (device, resource) -> ps
        for e in cell_evs:
            if e.kind == "instr":
                busy[(e.device, RESOURCES[e.c % 3])] += e.end - e.start
            elif e.kind == "host-drain":
                busy[(e.device, "host")] += e.end - e.start
        for (device, res) in sorted(busy):
            ps = busy[(device, res)]
            w("    dev%d %-5s %14s us  %6s%%\n"
              % (device, res, fmt_us(ps), fmt_pct(ps, span)))

    # Longest job spans.
    jobs = [e for e in events if e.kind == "job"]
    jobs.sort(key=lambda e: (-(e.end - e.start), e.cell, e.a))
    w("\ntop %d job spans (dur_us, cell, job, pages, name)\n"
      % min(top_n, len(jobs)))
    for e in jobs[:top_n]:
        w("  %14s  %s  job%d  %d pages  %s\n"
          % (fmt_us(e.end - e.start), e.cell, e.a, e.c,
             e.tag or "-"))

    # ECC blame per die.
    stalls = defaultdict(lambda: [0, 0, 0])  # key -> [n, penalty, busy]
    for e in events:
        if e.kind != "ecc-stall":
            continue
        s = stalls[(e.cell, e.device, e.lane)]
        s[0] += 1
        s[1] += e.b
        s[2] += e.end - e.start
    w("\necc stalls per die (stalls, penalty_us, busy_us)\n")
    if not stalls:
        w("  none\n")
    for key in sorted(stalls):
        cell, device, die = key
        n, penalty, busy = stalls[key]
        w("  %s dev%d die%-3d %4d  %12s  %12s\n"
          % (cell, device, die, n, fmt_us(penalty), fmt_us(busy)))

    # Queue-depth percentiles from the admission-queue samples.
    depths = defaultdict(list)  # (cell, device) -> [pending]
    for e in events:
        if e.kind == "job-queue":
            depths[(e.cell, e.device)].append(e.a)
    w("\nqueue depth (samples, p50, p90, p99, max)\n")
    if not depths:
        w("  none\n")
    for key in sorted(depths):
        vals = sorted(depths[key])
        cell, device = key
        w("  %s dev%d  %4d  %4d  %4d  %4d  %4d\n"
          % (cell, device, len(vals), percentile(vals, 50),
             percentile(vals, 90), percentile(vals, 99), vals[-1]))
    return 0


# ----------------------------------------------------------- selftest


def selftest():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    trace = os.path.join(root, "scripts", "testdata",
                         "trace_small.csv")
    golden = os.path.join(root, "scripts", "testdata",
                          "trace_summary.golden")
    import io
    buf = io.StringIO()
    summarize(parse_trace(trace), 5, buf)
    got = buf.getvalue()
    with open(golden, "r", encoding="utf-8") as f:
        want = f.read()
    if got == want:
        print("trace_summary selftest passed: %d golden lines"
              % len(want.splitlines()))
        return 0
    import difflib
    sys.stderr.write("trace_summary selftest FAILED:\n")
    sys.stderr.writelines(difflib.unified_diff(
        want.splitlines(keepends=True), got.splitlines(keepends=True),
        fromfile="golden", tofile="got"))
    return 1


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", nargs="?", help="trace file (.csv or JSON)")
    ap.add_argument("--top", type=int, default=5,
                    help="job spans to list (default 5)")
    ap.add_argument("--validate", action="store_true",
                    help="check file structure instead of summarizing")
    ap.add_argument("--selftest", action="store_true",
                    help="summarize the committed reduced trace and "
                         "diff against the golden output")
    args = ap.parse_args(argv)
    if args.selftest:
        return selftest()
    if not args.trace:
        ap.error("a trace file is required (or --selftest)")
    if args.validate:
        return validate(args.trace)
    return summarize(parse_trace(args.trace), args.top, sys.stdout)


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
