#!/usr/bin/env python3
"""Perf-regression gate over bench_selfperf records.

Compares a freshly produced BENCH_selfperf JSON record against the
committed reference and fails when any events/sec figure dropped
below ``min_ratio`` of the reference. The margin is deliberately
generous: the reference numbers come from whatever machine produced
the committed record, while CI runners differ in CPU generation and
load, so the gate only catches order-of-magnitude regressions (an
accidentally quadratic hot path, a lost cache), not percent-level
noise. Byte-level correctness is covered separately by the digest
diffs — this gate is purely about wall-clock speed.

Every metric's per-metric ratio is printed, improvements included
(ratio >= 2 is flagged "improved"), and a geometric-mean summary
closes the report so a branch's overall trajectory is one number.
Metrics present only in the fresh record are reported as "new" —
adding a microbench must not fail the gate — while metrics missing
from the fresh record still fail it.

Usage:
  check_selfperf.py REFERENCE.json FRESH.json [--min-ratio 0.25]
"""

import argparse
import json
import math
import sys


def metrics(record):
    """Flatten a selfperf record into {metric_name: events_per_sec}."""
    out = {}
    for name, value in record.get("microbench", {}).items():
        if name.endswith("events_per_sec"):
            out[f"microbench.{name}"] = float(value)
    for scenario in record.get("scenarios", []):
        out[f"scenario.{scenario['name']}.events_per_sec"] = float(
            scenario["events_per_sec"]
        )
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reference")
    parser.add_argument("fresh")
    parser.add_argument("--min-ratio", type=float, default=0.25)
    args = parser.parse_args()

    with open(args.reference) as f:
        ref = metrics(json.load(f))
    with open(args.fresh) as f:
        new = metrics(json.load(f))

    if not ref:
        print("error: reference record has no events/sec metrics")
        return 2

    # A dropped metric fails the gate no matter its reference value:
    # checking after the ref_val filter would let a metric whose
    # committed figure is 0/absent disappear silently.
    missing = sorted(set(ref) - set(new))
    failures = [
        f"{name}: present in {args.reference} but missing from "
        f"{args.fresh} — a scenario or microbench was dropped"
        for name in missing
    ]
    ratios = []
    for name, ref_val in sorted(ref.items()):
        if name in missing:
            continue
        if ref_val <= 0:
            continue
        ratio = new[name] / ref_val
        ratios.append(ratio)
        if ratio < args.min_ratio:
            status = "REGRESSION"
        elif ratio >= 2.0:
            status = "ok (improved)"
        else:
            status = "ok"
        print(
            f"{name:48s} ref {ref_val:14.0f}  new {new[name]:14.0f}"
            f"  ratio {ratio:6.2f}  {status}"
        )
        if ratio < args.min_ratio:
            failures.append(
                f"{name}: {new[name]:.0f} < {args.min_ratio:.2f} * "
                f"{ref_val:.0f}"
            )
    for name in sorted(set(new) - set(ref)):
        print(
            f"{name:48s} ref {'-':>14s}  new {new[name]:14.0f}"
            f"  ratio {'-':>6s}  new metric"
        )

    if ratios:
        gm = math.exp(sum(math.log(r) for r in ratios if r > 0)
                      / len(ratios))
        print(f"\ngeometric-mean ratio over {len(ratios)} shared "
              f"metrics: {gm:.2f}")

    if failures:
        print("\nperf regression gate FAILED:")
        for f_msg in failures:
            print(f"  - {f_msg}")
        return 1
    print(f"perf gate passed (min ratio {args.min_ratio:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
