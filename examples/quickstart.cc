/**
 * @file
 * Quickstart: compile a kernel with Conduit's preprocessing stage
 * and execute it inside the simulated SSD under the Conduit
 * offloading policy, comparing against the host CPU.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "src/core/simulation.hh"

int
main()
{
    using namespace conduit;

    Simulation sim;

    // Compile-time preprocessing: auto-vectorize the AES kernel into
    // 4096-lane SIMD instructions with embedded metadata.
    const VectorizedProgram &vp = sim.compile(WorkloadId::Aes);
    std::printf("compiled %-16s: %llu vector + %llu scalar instrs, "
                "%.0f%% vectorized\n",
                vp.program.name.c_str(),
                static_cast<unsigned long long>(vp.report.vectorInstrs),
                static_cast<unsigned long long>(vp.report.scalarInstrs),
                100.0 * vp.report.vectorizableFraction);
    for (const auto &remark : vp.report.remarks)
        std::printf("  remark: %s\n", remark.c_str());

    // Runtime: execute under Conduit and on the host CPU.
    RunResult conduit_run = sim.run(WorkloadId::Aes, "Conduit");
    RunResult cpu_run = sim.runHost(WorkloadId::Aes, /*gpu=*/false);

    std::printf("\n%-10s %14s %12s %10s\n", "engine", "exec time (ms)",
                "energy (mJ)", "speedup");
    auto row = [&](const RunResult &r) {
        std::printf("%-10s %14.3f %12.3f %9.2fx\n", r.policy.c_str(),
                    ticksToSeconds(r.execTime) * 1e3,
                    r.energyJ() * 1e3,
                    static_cast<double>(cpu_run.execTime) /
                        static_cast<double>(r.execTime));
    };
    row(cpu_run);
    row(conduit_run);

    std::printf("\noffload split: ISP %llu, PuD %llu, IFP %llu\n",
                static_cast<unsigned long long>(
                    conduit_run.perResource[0]),
                static_cast<unsigned long long>(
                    conduit_run.perResource[1]),
                static_cast<unsigned long long>(
                    conduit_run.perResource[2]));
    return 0;
}
