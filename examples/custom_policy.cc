/**
 * @file
 * Extensibility example: plug a user-defined offloading policy into
 * the runtime (the §7 extensibility discussion).
 *
 * Implements a "static oracle" policy — a lookup from operation
 * family to resource, the kind of hand-tuned mapping a domain expert
 * might write — and a fault-tolerant run, then compares both with
 * Conduit's dynamic cost function.
 *
 *   ./build/examples/example_custom_policy
 */

#include <cstdio>

#include "src/core/simulation.hh"

namespace
{

using namespace conduit;

/**
 * Static expert mapping: bitwise to flash, arithmetic to DRAM,
 * everything else to the core. No runtime state consulted.
 */
class StaticOracle : public OffloadPolicy
{
  public:
    Target
    select(const VecInstruction &vi, const CostFeatures &f) override
    {
        if (!vi.vectorized)
            return Target::Isp;
        const auto ifp = static_cast<std::size_t>(Target::Ifp);
        const auto pud = static_cast<std::size_t>(Target::Pud);
        switch (opFamily(vi.op)) {
          case OpFamily::Bitwise:
            return f.supported[ifp] ? Target::Ifp : Target::Isp;
          case OpFamily::Arithmetic:
          case OpFamily::Predication:
            return f.supported[pud] ? Target::Pud : Target::Isp;
          default:
            return Target::Isp;
        }
    }

    std::string name() const override { return "StaticOracle"; }
};

} // namespace

int
main()
{
    using namespace conduit;

    Simulation sim;

    std::printf("custom policy vs Conduit's dynamic cost function\n\n");
    std::printf("%-18s %-14s %12s %14s\n", "workload", "policy",
                "time (ms)", "vs Conduit");
    for (WorkloadId id :
         {WorkloadId::Aes, WorkloadId::Heat3d,
          WorkloadId::LlamaInference}) {
        const RunResult conduit = sim.run(id, "Conduit");
        StaticOracle oracle;
        const RunResult st = sim.run(id, oracle);
        std::printf("%-18s %-14s %12.3f %13.2fx\n",
                    workloadName(id).c_str(), "Conduit",
                    ticksToSeconds(conduit.execTime) * 1e3, 1.0);
        std::printf("%-18s %-14s %12.3f %13.2fx\n", "",
                    oracle.name().c_str(),
                    ticksToSeconds(st.execTime) * 1e3,
                    static_cast<double>(st.execTime) /
                        static_cast<double>(conduit.execTime));
    }

    // Fault handling (§4.4): inject transient faults and observe the
    // replay mechanism keep the run correct at a latency cost.
    std::printf("\ntransient-fault injection on heat-3d (Conduit):\n");
    for (double rate : {0.0, 0.01, 0.05}) {
        SimOptions so;
        so.engine.transientFaultRate = rate;
        Simulation faulty(so);
        auto r = faulty.run(WorkloadId::Heat3d, "Conduit");
        std::printf("  fault rate %4.0f%%: %8.3f ms, %llu faults "
                    "replayed\n",
                    rate * 100.0, ticksToSeconds(r.execTime) * 1e3,
                    static_cast<unsigned long long>(r.replays));
    }
    return 0;
}
