/**
 * @file
 * Walkthrough: co-running two tenants on one simulated SSD.
 *
 * The facade's runMulti() hands N (workload, policy) tenants to the
 * event-driven engine: every stream keeps its own program counter,
 * completion vector and result attribution (an ExecContext), while
 * the StreamScheduler interleaves their dispatch pipelines on one
 * event queue. Contention is not configured anywhere — it emerges
 * because both streams reserve the same offloader, flash-die, DRAM-
 * bank and controller-core calendars, and every policy sees the
 * other tenant's backlog through the live queue/bandwidth features.
 */

#include <cstdio>

#include "src/core/simulation.hh"

int
main()
{
    using namespace conduit;

    Simulation sim;

    // First, the single-tenant world the paper evaluates: each
    // workload alone on the device.
    const RunResult llamaAlone =
        sim.run(WorkloadId::LlamaInference, "Conduit");
    const RunResult jacobiAlone =
        sim.run(WorkloadId::Jacobi1d, "Conduit");

    // Now the same two workloads as co-located tenants of one SSD.
    const sched::MultiRunResult co = sim.runMulti({
        {WorkloadId::LlamaInference, "Conduit"},
        {WorkloadId::Jacobi1d, "Conduit"},
    });

    std::printf("two tenants, one SSD (Conduit policy)\n\n");
    std::printf("%-20s %14s %14s %10s %12s\n", "stream", "alone (ms)",
                "co-run (ms)", "slowdown", "p99 (us)");
    for (std::size_t i = 0; i < co.streams.size(); ++i) {
        const RunResult &alone = i == 0 ? llamaAlone : jacobiAlone;
        const RunResult &r = co.streams[i];
        std::printf("%-20s %14.3f %14.3f %9.2fx %12.2f\n",
                    r.workload.c_str(),
                    ticksToUs(alone.execTime) / 1000.0,
                    ticksToUs(r.execTime) / 1000.0,
                    static_cast<double>(r.execTime) /
                        static_cast<double>(alone.execTime),
                    r.latencyUs.percentile(99));
    }

    std::printf("\ndevice aggregate: %llu instructions, makespan "
                "%.3f ms, %.3f J\n",
                static_cast<unsigned long long>(
                    co.aggregate.instrCount),
                ticksToUs(co.makespan) / 1000.0,
                co.aggregate.energyJ());
    std::printf("scheduler fired %llu events (dispatch + completion "
                "per instruction)\n",
                static_cast<unsigned long long>(co.eventsFired));

    // Consolidation: one shared device vs one device per tenant.
    const double shared = ticksToUs(co.makespan) / 1000.0;
    const double dedicated =
        ticksToUs(llamaAlone.execTime + jacobiAlone.execTime) / 1000.0;
    std::printf("\nco-location finishes both tenants in %.3f ms vs "
                "%.3f ms run back-to-back (%.2fx consolidation)\n",
                shared, dedicated, dedicated / shared);
    return 0;
}
