/**
 * @file
 * Domain example: offloading LLM inference to the SSD.
 *
 * Runs the INT8 LLaMA2-style inference workload under every
 * offloading technique, then inspects what the paper's §6.4 analysis
 * looks at: which resources each policy picked for the
 * multiplication-heavy phases, and the tail latency that results.
 *
 *   ./build/examples/example_llm_offload
 */

#include <cstdio>

#include "src/core/simulation.hh"

int
main()
{
    using namespace conduit;

    SimOptions so;
    so.engine.recordTimeline = true;
    Simulation sim(so);

    const auto &vp = sim.compile(WorkloadId::LlamaInference);
    std::printf("LlaMA2 Inference: %zu vectorized instructions, "
                "%.1f MiB footprint, %.0f%% of code vectorized\n\n",
                vp.program.instrs.size(),
                static_cast<double>(vp.program.footprintBytes()) /
                    (1024.0 * 1024.0),
                100.0 * vp.report.vectorizableFraction);

    const RunResult cpu = sim.runHost(WorkloadId::LlamaInference,
                                      /*gpu=*/false);

    std::printf("%-16s %10s %9s %8s | %6s %6s %6s | %10s\n", "policy",
                "time (ms)", "speedup", "mJ", "ISP%", "PuD%", "IFP%",
                "p99.99 us");
    auto row = [&](const RunResult &r) {
        const double n = static_cast<double>(
            r.instrCount ? r.instrCount : 1);
        std::printf(
            "%-16s %10.3f %8.2fx %8.1f | %5.1f%% %5.1f%% %5.1f%% "
            "| %10.1f\n",
            r.policy.c_str(), ticksToSeconds(r.execTime) * 1e3,
            static_cast<double>(cpu.execTime) /
                static_cast<double>(r.execTime),
            r.energyJ() * 1e3, 100.0 * r.perResource[0] / n,
            100.0 * r.perResource[1] / n, 100.0 * r.perResource[2] / n,
            r.latencyUs.count() ? r.latencyUs.percentile(99.99) : 0.0);
    };

    row(cpu);
    row(sim.runHost(WorkloadId::LlamaInference, /*gpu=*/true));
    for (const char *p :
         {"ISP", "Ares-Flash", "BW-Offloading", "DM-Offloading",
          "Conduit", "Ideal"}) {
        row(sim.run(WorkloadId::LlamaInference, p));
    }

    // The §6.4 observation: where did the multiplies go?
    auto conduit = sim.run(WorkloadId::LlamaInference, "Conduit");
    std::uint64_t mul_ifp = 0, mul_total = 0;
    for (std::size_t i = 0; i < conduit.opTrace.size(); ++i) {
        const auto op = static_cast<OpCode>(conduit.opTrace[i]);
        if (op == OpCode::Mul || op == OpCode::Mac) {
            ++mul_total;
            if (static_cast<Target>(conduit.resourceTrace[i]) ==
                Target::Ifp)
                ++mul_ifp;
        }
    }
    std::printf("\nConduit sends %.1f%% of multiplications to IFP "
                "(avoids the shift_and_add operand shuttles, Fig. 9)\n",
                mul_total ? 100.0 * mul_ifp / mul_total : 0.0);
    return 0;
}
