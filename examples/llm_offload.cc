/**
 * @file
 * Domain example: offloading LLM inference to the SSD.
 *
 * Declares the whole technique comparison as one SweepRunner matrix
 * (every technique row runs in parallel), then inspects what the
 * paper's §6.4 analysis looks at: which resources each policy picked
 * for the multiplication-heavy phases, and the tail latency that
 * results.
 *
 *   ./build/example_llm_offload [--threads N]
 */

#include <cstdio>

#include "src/core/simulation.hh"
#include "src/runner/sweep_cli.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::runner;

    const SweepCli cli = SweepCli::parse(argc, argv);

    RunMatrix matrix;
    matrix.workload(WorkloadId::LlamaInference)
        .techniques({"CPU", "GPU", "ISP", "Ares-Flash",
                     "BW-Offloading", "DM-Offloading", "Conduit",
                     "Ideal"});
    cli.configure(matrix, "CPU"); // rows are normalized to CPU

    // The §6.4 analysis below consumes the tracer's occupancy spans,
    // so that category is always on for this example's cells.
    SweepOptions opts = cli.runnerOptions();
    opts.trace.categories |=
        static_cast<std::uint32_t>(trace::Category::Occupancy);
    SweepRunner sweeprunner(opts);
    const SweepResult sweep = sweeprunner.run(matrix.build());

    const std::string llama = workloadName(WorkloadId::LlamaInference);
    WorkloadParams params;
    params.scale = cli.scale;
    const auto compiled = sweeprunner.cache().get(
        WorkloadId::LlamaInference, params, defaultSweepConfig());
    std::printf("LlaMA2 Inference: %zu vectorized instructions, "
                "%.1f MiB footprint, %.0f%% of code vectorized\n\n",
                compiled->program.instrs.size(),
                static_cast<double>(
                    compiled->program.footprintBytes()) /
                    (1024.0 * 1024.0),
                100.0 * compiled->report.vectorizableFraction);

    const RunResult *cpu_row = sweep.find(llama, "CPU");
    if (!cpu_row) {
        std::fprintf(stderr,
                     "no rows to report (did --workloads filter out "
                     "%s?)\n",
                     llama.c_str());
        return 1;
    }
    const RunResult &cpu = *cpu_row;

    std::printf("%-16s %10s %9s %8s | %6s %6s %6s | %10s\n", "policy",
                "time (ms)", "speedup", "mJ", "ISP%", "PuD%", "IFP%",
                "p99.99 us");
    for (const auto &technique : sweep.techniqueLabels()) {
        const RunResult &r = sweep.at(llama, technique);
        const double n = static_cast<double>(
            r.instrCount ? r.instrCount : 1);
        std::printf(
            "%-16s %10.3f %8.2fx %8.1f | %5.1f%% %5.1f%% %5.1f%% "
            "| %10.1f\n",
            r.policy.c_str(), ticksToSeconds(r.execTime) * 1e3,
            static_cast<double>(cpu.execTime) /
                static_cast<double>(r.execTime),
            r.energyJ() * 1e3, 100.0 * r.perResource[0] / n,
            100.0 * r.perResource[1] / n, 100.0 * r.perResource[2] / n,
            r.latencyUs.count() ? r.latencyUs.percentile(99.99) : 0.0);
    }

    // The §6.4 observation: where did the multiplies go? (No extra
    // run needed — the sweep already traced Conduit's occupancy.)
    const trace::Tracer *conduitTrace = nullptr;
    for (const trace::TraceCell &c : sweeprunner.lastTraces())
        if (c.label == llama + "/Conduit")
            conduitTrace = c.tracer.get();
    if (conduitTrace) {
        const trace::InstructionTimeline tl =
            trace::instructionTimeline(*conduitTrace);
        std::uint64_t mul_ifp = 0, mul_total = 0;
        for (std::size_t i = 0; i < tl.op.size(); ++i) {
            const auto op = static_cast<OpCode>(tl.op[i]);
            if (op == OpCode::Mul || op == OpCode::Mac) {
                ++mul_total;
                if (static_cast<Target>(tl.resource[i]) == Target::Ifp)
                    ++mul_ifp;
            }
        }
        std::printf(
            "\nConduit sends %.1f%% of multiplications to IFP "
            "(avoids the shift_and_add operand shuttles, Fig. 9)\n",
            mul_total ? 100.0 * mul_ifp / mul_total : 0.0);
    }

    return cli.finish(sweep, nullptr, &sweeprunner);
}
