/**
 * @file
 * Programmer-transparency example: bring your own kernel.
 *
 * Shows the full Conduit flow on a user-written application — a
 * database-style bitmap scan with a predicated aggregate — without
 * any offloading annotations: express the kernel as plain loops,
 * let the compile-time stage auto-vectorize it, and run it on the
 * simulated SSD.
 *
 *   ./build/examples/example_custom_kernel
 */

#include <cstdio>

#include "src/core/simulation.hh"

int
main()
{
    using namespace conduit;

    // --- 1. Write the application as ordinary loops. ---------------
    LoopProgram app;
    app.name = "bitmap-scan";
    const std::uint64_t rows = 2 * 1024 * 1024;
    const ArrayId price = app.addArray("price", rows);
    const ArrayId quantity = app.addArray("quantity", rows);
    const ArrayId bitmap = app.addArray("selected", rows);
    const ArrayId revenue = app.addArray("revenue", rows);
    const ArrayId total = app.addArray("total", 64);

    // SELECT sum(price * quantity) WHERE price < threshold
    Loop scan;
    scan.label = "predicate_scan";
    scan.tripCount = rows;
    scan.body.push_back({OpCode::CmpLt,
                         {{price, 0, 1}, {price, 0, 0}},
                         {bitmap, 0, 1}});
    scan.body.push_back({OpCode::Mul,
                         {{price, 0, 1}, {quantity, 0, 1}},
                         {revenue, 0, 1}});
    scan.body.push_back({OpCode::And,
                         {{revenue, 0, 1}, {bitmap, 0, 1}},
                         {revenue, 0, 1}});
    app.loops.push_back(scan);

    Loop fold;
    fold.label = "aggregate";
    fold.tripCount = rows;
    LoopStmt sum{OpCode::Add, {{revenue, 0, 1}}, {total, 0, 1}};
    sum.reduction = true;
    fold.body.push_back(sum);
    app.loops.push_back(fold);

    // --- 2. Compile-time preprocessing (the "LLVM pass"). ----------
    Simulation sim;
    const VectorizedProgram vp = sim.compileProgram(app);
    std::printf("compiled %s: %zu instructions (%llu scalar), "
                "footprint %.1f MiB\n",
                vp.program.name.c_str(), vp.program.instrs.size(),
                static_cast<unsigned long long>(
                    vp.report.scalarInstrs),
                static_cast<double>(vp.program.footprintBytes()) /
                    (1024.0 * 1024.0));
    for (const auto &r : vp.report.remarks)
        std::printf("  %s\n", r.c_str());

    // --- 3. Inspect the instruction transformation (§4.3.2). -------
    InstructionTransformer tx(
        sim.options().config.nand.pageBytes,
        sim.options().config.dram.rowBytes,
        sim.options().config.isp.simdBytes);
    const VecInstruction &first = vp.program.instrs.front();
    std::printf("\nfirst instruction %s lowers to:\n",
                first.toString().c_str());
    for (Target t : {Target::Isp, Target::Pud, Target::Ifp}) {
        auto native = tx.transform(first, t);
        std::printf("  %-8s %-18s x%u sub-ops (%u native lanes)\n",
                    std::string(targetName(t)).c_str(),
                    native.mnemonic.c_str(), native.subOps,
                    native.nativeLanes);
    }

    // --- 4. Run it under the runtime offloader. ---------------------
    std::printf("\n%-16s %12s %12s\n", "engine", "time (ms)",
                "energy (mJ)");
    const RunResult cpu = sim.runHostProgram(vp.program, false);
    std::printf("%-16s %12.3f %12.3f\n", "CPU",
                ticksToSeconds(cpu.execTime) * 1e3,
                cpu.energyJ() * 1e3);
    for (const char *p : {"DM-Offloading", "Conduit"}) {
        auto policy = makePolicy(p);
        const RunResult r = sim.runProgram(vp.program, *policy);
        std::printf("%-16s %12.3f %12.3f\n", p,
                    ticksToSeconds(r.execTime) * 1e3,
                    r.energyJ() * 1e3);
    }
    return 0;
}
