/**
 * @file
 * Cost-function feature ablation (design-choice study, DESIGN.md):
 * drops one Eqn. 1 feature at a time — resource queueing delay, data
 * movement latency, data dependence delay — and measures the impact
 * on the workloads most sensitive to contention. The variant matrix
 * runs as one parallel sweep with custom-policy columns.
 *
 * This quantifies why the *holistic* cost function matters (§6.1):
 * removing queue awareness degenerates toward DM-Offloading's
 * contention blindness; removing movement awareness degenerates
 * toward BW-Offloading's transfer storms.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);

    struct Variant
    {
        const char *label;
        ConduitPolicy::Ablation ab;
    };
    const Variant variants[] = {
        {"Conduit (full)", {}},
        {"no queue delay", {false, true, true}},
        {"no dm latency", {true, false, true}},
        {"no dep delay", {true, true, false}},
        {"comp only", {false, false, false}},
    };

    RunMatrix matrix;
    matrix.workloads({WorkloadId::LlamaInference, WorkloadId::Heat3d,
                      WorkloadId::LlmTraining, WorkloadId::Aes});
    for (const auto &v : variants) {
        const ConduitPolicy::Ablation ab = v.ab;
        matrix.technique(v.label, [ab] {
            return std::make_unique<ConduitPolicy>(ab);
        });
    }
    cli.configure(matrix, variants[0].label);

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Ablation: Conduit cost-function features "
                "(execution time normalized to full Conduit)\n\n");
    const auto columns = sweep.techniqueLabels();
    std::printf("%-18s", "workload");
    for (const auto &c : columns)
        std::printf(" %16s", c.c_str());
    std::printf("\n");

    for (const auto &w : sweep.workloadLabels()) {
        const double base = static_cast<double>(
            sweep.at(w, variants[0].label).execTime);
        std::printf("%-18s", w.c_str());
        for (const auto &c : columns) {
            const double t =
                static_cast<double>(sweep.at(w, c).execTime);
            std::printf(" %15.2fx", t / base);
        }
        std::printf("\n");
    }
    std::printf("\n(values > 1.0 mean the ablated variant is slower "
                "than full Conduit)\n");

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
