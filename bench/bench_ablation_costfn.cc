/**
 * @file
 * Cost-function feature ablation (design-choice study, DESIGN.md):
 * drops one Eqn. 1 feature at a time — resource queueing delay, data
 * movement latency, data dependence delay — and measures the impact
 * on the workloads most sensitive to contention.
 *
 * This quantifies why the *holistic* cost function matters (§6.1):
 * removing queue awareness degenerates toward DM-Offloading's
 * contention blindness; removing movement awareness degenerates
 * toward BW-Offloading's transfer storms.
 */

#include "bench/common.hh"

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;

    struct Variant
    {
        const char *label;
        ConduitPolicy::Ablation ab;
    };
    const Variant variants[] = {
        {"Conduit (full)", {}},
        {"no queue delay", {false, true, true}},
        {"no dm latency", {true, false, true}},
        {"no dep delay", {true, true, false}},
        {"comp only", {false, false, false}},
    };

    std::printf("Ablation: Conduit cost-function features "
                "(execution time normalized to full Conduit)\n\n");
    std::printf("%-18s", "workload");
    for (const auto &v : variants)
        std::printf(" %16s", v.label);
    std::printf("\n");

    for (WorkloadId id :
         {WorkloadId::LlamaInference, WorkloadId::Heat3d,
          WorkloadId::LlmTraining, WorkloadId::Aes}) {
        double base = 0.0;
        std::printf("%-18s", workloadName(id).c_str());
        for (const auto &v : variants) {
            ConduitPolicy policy(v.ab);
            auto r = sim.run(id, policy);
            const double t = static_cast<double>(r.execTime);
            if (base == 0.0)
                base = t;
            std::printf(" %15.2fx", t / base);
        }
        std::printf("\n");
    }
    std::printf("\n(values > 1.0 mean the ablated variant is slower "
                "than full Conduit)\n");
    return 0;
}
