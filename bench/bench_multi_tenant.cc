/**
 * @file
 * Multi-tenant co-location matrix: what the paper's tail-latency
 * evaluation (Fig. 8) only approximates with a single stream, run
 * properly — N instruction streams co-scheduled on ONE simulated SSD
 * by the event-driven engine, contending for the offloader, flash
 * dies, DRAM banks and the controller core through the shared FCFS
 * calendars.
 *
 * For every primary workload the bench reports its isolated run
 * (alone on the device) and its co-located runs against each
 * background tenant: the slowdown of the primary's makespan and the
 * inflation of its per-request latency tail. Every cell is one
 * deterministic engine run, so repeated executions (and any
 * --threads value) produce byte-identical output.
 *
 * Flags: the shared sweep CLI. --workloads filters the tenant set;
 * --techniques selects the one offloading policy every stream runs
 * under (a single entry, default Conduit). --via-device executes
 * every cell through the persistent-device job API instead of the
 * direct batch engine run — output is byte-identical by the Device
 * equivalence contract, and CI diffs the two paths.
 *
 * --age CYCLES runs the matrix on an aged device instead of a
 * factory-fresh one: a single pre-worn DeviceImage (reliability
 * subsystem enabled, fast-forwarded to the age, warmed with
 * --warmup-jobs jobs of traffic) is built once and forked for every
 * cell, so all cells share byte-identical initial wear, mappings and
 * staging state. On the aged device the ECC retry ladder stretches
 * every flash read, so a background tenant's die occupancy delays
 * the primary for whole retry ladders at a time — cross-tenant
 * interference tails amplify well beyond the fresh-device slowdown.
 *   --age CYCLES         P/E cycles pre-absorbed (0 = fresh matrix)
 *   --retention-days D   resident-data age (default: age * 30/1000,
 *                        the deployment-time coupling
 *                        bench_reliability uses)
 *   --warmup-jobs N      warm jobs baked into the pre-worn image
 *                        (default 4)
 */

#include <chrono>

#include "bench/common.hh"

namespace
{

using namespace conduit;
using namespace conduit::bench;
using conduit::runner::LoadRunSpec;
using conduit::runner::MultiRunSpec;
using conduit::runner::StreamSlot;
using conduit::runner::splitCsv;

StreamSlot
slotFor(WorkloadId id, const std::string &policy)
{
    StreamSlot s;
    s.workloadId = id;
    s.workload = workloadName(id);
    s.technique = policy;
    return s;
}

/**
 * One aged-matrix cell: fork the shared pre-worn image and co-run
 * the cell's streams as simultaneous jobs on the forked device. The
 * image is read-only (forking deep-copies), so every cell starts
 * from byte-identical wear/mapping/staging state and cells stay
 * order-independent and deterministic.
 */
sched::MultiRunResult
runAgedCell(const DeviceImage &img, const MultiRunSpec &cell,
            SweepRunner &runner)
{
    Device dev = Device::fromImage(img);
    const std::size_t warm = img.jobs.size();
    const Tick at = dev.now();
    for (const StreamSlot &slot : cell.streams) {
        auto vp = runner.cache().get(*slot.workloadId, cell.params,
                                     cell.config);
        JobSpec job;
        job.name = slot.workload;
        job.program =
            std::shared_ptr<const Program>(vp, &vp->program);
        job.policyObj =
            std::shared_ptr<OffloadPolicy>(makePolicy(slot.technique));
        job.arrival = at;
        dev.submit(job);
    }
    const DeviceSnapshot snap = dev.drain();

    sched::MultiRunResult mr;
    mr.eventsFired = snap.eventsFired;
    Tick maxEnd = at;
    for (std::size_t i = warm; i < snap.jobs.size(); ++i) {
        const JobResult &jr = snap.jobs[i];
        RunResult r = jr.result;
        r.workload = cell.streams[i - warm].workload;
        r.policy = cell.streams[i - warm].technique;
        mr.streams.push_back(std::move(r));
        maxEnd = std::max(maxEnd, jr.end);
    }
    mr.makespan = maxEnd - at;
    return mr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    bool viaDevice = false;
    std::uint32_t age = 0;
    double retentionDays = -1.0; // < 0: derive from the age
    std::size_t warmupJobs = 4;
    const auto extra = [&](const std::string &flag,
                           const std::function<std::string()> &value) {
        if (flag == "--via-device") {
            viaDevice = true;
        } else if (flag == "--age") {
            age = static_cast<std::uint32_t>(
                parseCount("--age", value(), /*allow_zero=*/true));
        } else if (flag == "--retention-days") {
            retentionDays = parsePositive("--retention-days", value(),
                                          /*allow_zero=*/true);
        } else if (flag == "--warmup-jobs") {
            warmupJobs = parseCount("--warmup-jobs", value());
        } else {
            return false;
        }
        return true;
    };
    const SweepCli cli = SweepCli::parse(
        argc, argv, extra,
        "          [--via-device] [--age CYCLES]\n"
        "          [--retention-days D] [--warmup-jobs N]\n");
    if (retentionDays < 0.0)
        retentionDays = static_cast<double>(age) * 30.0 / 1000.0;

    std::vector<std::string> names;
    for (WorkloadId id : allWorkloads())
        names.push_back(workloadName(id));
    if (cli.listWorkloads)
        runner::listAndExit(names);
    if (cli.listTechniques)
        runner::listAndExit(policyNames());

    // Tenant set: the two tail-sensitive workloads of Fig. 8 plus
    // the two cheapest Table 3 applications, so the default matrix
    // stays seconds-long. --workloads widens or narrows it.
    std::vector<WorkloadId> tenants = {
        WorkloadId::Aes, WorkloadId::XorFilter, WorkloadId::Jacobi1d,
        WorkloadId::LlamaInference};
    const auto keep = splitCsv(cli.workloadFilter);
    if (!runner::reportUnknown(keep, names, "workload"))
        return 2;
    if (!keep.empty()) {
        tenants.clear();
        for (WorkloadId id : allWorkloads()) {
            if (std::find(keep.begin(), keep.end(),
                          workloadName(id)) != keep.end())
                tenants.push_back(id);
        }
    }
    const auto policies = splitCsv(cli.techniqueFilter);
    if (policies.size() > 1) {
        std::fprintf(stderr,
                     "every stream runs the same policy; give a "
                     "single --techniques entry\n");
        return 2;
    }
    const std::string policy =
        policies.empty() ? std::string("Conduit") : policies.front();
    if (policy == "CPU" || policy == "GPU") {
        std::fprintf(stderr,
                     "streams run on the SSD engine; host baseline "
                     "'%s' cannot be a tenant policy\n",
                     policy.c_str());
        return 2;
    }
    if (!runner::reportUnknown({policy}, policyNames(), "policy"))
        return 2;

    WorkloadParams params;
    params.scale = cli.scale;

    // Aged mode: every cell forks one pre-worn device image, so all
    // cells share the aged (reliability-enabled) configuration.
    SsdConfig config = runner::defaultSweepConfig();
    if (age > 0) {
        config.reliability.enabled = true;
        config.reliability.preWearCycles = age;
        config.reliability.retentionDays = retentionDays;
    }

    // Cells: one isolated run per tenant, then every ordered pair
    // (primary, background) co-located. Cell order is the report
    // order; runMultiAll keeps results in spec order regardless of
    // the worker-thread count.
    std::vector<MultiRunSpec> cells;
    for (WorkloadId p : tenants) {
        MultiRunSpec iso;
        iso.label = workloadName(p);
        iso.config = config;
        iso.params = params;
        iso.streams = {slotFor(p, policy)};
        iso.viaDevice = viaDevice;
        cells.push_back(std::move(iso));
    }
    for (WorkloadId p : tenants) {
        for (WorkloadId b : tenants) {
            MultiRunSpec co;
            co.label = workloadName(p) + "+" + workloadName(b);
            co.config = config;
            co.params = params;
            co.streams = {slotFor(p, policy), slotFor(b, policy)};
            co.viaDevice = viaDevice;
            cells.push_back(std::move(co));
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner runner(cli.runnerOptions());
    std::vector<sched::MultiRunResult> results;
    if (age > 0) {
        // Build the shared pre-worn image once: the aged config
        // warmed with jobs of the first tenant, its page pool sized
        // for the largest co-location pair so both streams admit
        // simultaneously like the fresh matrix does. Cells then run
        // via the device job API (forking is a Device operation).
        LoadRunSpec warm;
        warm.workload = workloadName(tenants.front());
        warm.workloadId = tenants.front();
        warm.config = config;
        warm.params = params;
        warm.warmupJobs = warmupJobs;
        std::uint64_t maxFp = 0;
        for (WorkloadId id : tenants) {
            auto vp = runner.cache().get(id, params, config);
            maxFp = std::max(maxFp, vp->program.footprintPages);
        }
        warm.capacityPages = 2 * maxFp;
        const DeviceImage img = runner.buildWarmImage(warm);
        results.reserve(cells.size());
        for (const MultiRunSpec &cell : cells)
            results.push_back(runAgedCell(img, cell, runner));
    } else {
        results = runner.runMultiAll(cells);
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const std::size_t n = tenants.size();
    if (age > 0)
        std::printf("Multi-tenant co-location on one aged SSD "
                    "(policy: %s, %u P/E cycles, %.4g retention days, "
                    "%zu warm jobs)\n\n",
                    policy.c_str(), age, retentionDays, warmupJobs);
    else
        std::printf("Multi-tenant co-location on one SSD "
                    "(policy: %s)\n\n",
                    policy.c_str());

    // Per-stream rows for the machine-readable emission layer: the
    // primary stream of every cell, labelled by its company.
    std::vector<runner::RunSpec> rowSpecs;
    std::vector<RunResult> rowResults;

    for (std::size_t pi = 0; pi < n; ++pi) {
        const RunResult &alone = results[pi].streams.front();
        std::printf("%s\n", alone.workload.c_str());
        std::printf("  %-24s %10s %10s %12s %12s\n", "tenancy",
                    "exec (ms)", "slowdown", "p99 (us)",
                    "p99.99 (us)");
        std::printf("  %-24s %10.3f %10s %12.2f %12.2f\n", "isolated",
                    ticksToUs(alone.execTime) / 1000.0, "1.00x",
                    alone.latencyUs.percentile(99),
                    alone.latencyUs.percentile(99.99));
        {
            runner::RunSpec spec;
            spec.workload = alone.workload;
            spec.technique = "isolated";
            rowSpecs.push_back(spec);
            rowResults.push_back(alone);
        }
        for (std::size_t bi = 0; bi < n; ++bi) {
            const auto &cell = results[n + pi * n + bi];
            const RunResult &primary = cell.streams.front();
            const std::string company =
                "+" + cell.streams.back().workload;
            const double slowdown = alone.execTime == 0
                ? 0.0
                : static_cast<double>(primary.execTime) /
                    static_cast<double>(alone.execTime);
            std::printf("  %-24s %10.3f %9.2fx %12.2f %12.2f\n",
                        company.c_str(),
                        ticksToUs(primary.execTime) / 1000.0, slowdown,
                        primary.latencyUs.percentile(99),
                        primary.latencyUs.percentile(99.99));
            runner::RunSpec spec;
            spec.workload = primary.workload;
            spec.technique = company;
            rowSpecs.push_back(spec);
            rowResults.push_back(primary);
        }
        std::printf("\n");
    }

    // Consolidation view: co-running a pair on one device vs giving
    // each tenant its own SSD (the paper's single-stream world).
    std::printf("pairwise consolidation (makespan vs sum of "
                "isolated runs)\n");
    for (std::size_t pi = 0; pi < n; ++pi) {
        for (std::size_t bi = pi + 1; bi < n; ++bi) {
            const auto &cell = results[n + pi * n + bi];
            const Tick sum =
                results[pi].streams.front().execTime +
                results[bi].streams.front().execTime;
            std::printf(
                "  %-40s makespan %8.3f ms, serial-on-two-SSDs "
                "%8.3f ms (%.2fx)\n",
                cells[n + pi * n + bi].label.c_str(),
                ticksToUs(cell.makespan) / 1000.0,
                ticksToUs(sum) / 1000.0,
                cell.makespan == 0
                    ? 0.0
                    : static_cast<double>(sum) /
                        static_cast<double>(cell.makespan));
        }
    }

    const SweepResult rows(std::move(rowSpecs), std::move(rowResults),
                           wall, runner.workerCount(cells.size()));
    const auto perf = runner.lastPerf();
    return cli.finish(rows, &perf, &runner);
}
