/**
 * @file
 * Multi-tenant co-location matrix: what the paper's tail-latency
 * evaluation (Fig. 8) only approximates with a single stream, run
 * properly — N instruction streams co-scheduled on ONE simulated SSD
 * by the event-driven engine, contending for the offloader, flash
 * dies, DRAM banks and the controller core through the shared FCFS
 * calendars.
 *
 * For every primary workload the bench reports its isolated run
 * (alone on the device) and its co-located runs against each
 * background tenant: the slowdown of the primary's makespan and the
 * inflation of its per-request latency tail. Every cell is one
 * deterministic engine run, so repeated executions (and any
 * --threads value) produce byte-identical output.
 *
 * Flags: the shared sweep CLI. --workloads filters the tenant set;
 * --techniques selects the one offloading policy every stream runs
 * under (a single entry, default Conduit). --via-device executes
 * every cell through the persistent-device job API instead of the
 * direct batch engine run — output is byte-identical by the Device
 * equivalence contract, and CI diffs the two paths.
 */

#include <chrono>

#include "bench/common.hh"

namespace
{

using namespace conduit;
using namespace conduit::bench;
using conduit::runner::MultiRunSpec;
using conduit::runner::StreamSlot;
using conduit::runner::splitCsv;

StreamSlot
slotFor(WorkloadId id, const std::string &policy)
{
    StreamSlot s;
    s.workloadId = id;
    s.workload = workloadName(id);
    s.technique = policy;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    bool viaDevice = false;
    const auto extra = [&](const std::string &flag,
                           const std::function<std::string()> &) {
        if (flag != "--via-device")
            return false;
        viaDevice = true;
        return true;
    };
    const SweepCli cli =
        SweepCli::parse(argc, argv, extra, "          [--via-device]\n");

    std::vector<std::string> names;
    for (WorkloadId id : allWorkloads())
        names.push_back(workloadName(id));
    if (cli.listWorkloads)
        runner::listAndExit(names);
    if (cli.listTechniques)
        runner::listAndExit(policyNames());

    // Tenant set: the two tail-sensitive workloads of Fig. 8 plus
    // the two cheapest Table 3 applications, so the default matrix
    // stays seconds-long. --workloads widens or narrows it.
    std::vector<WorkloadId> tenants = {
        WorkloadId::Aes, WorkloadId::XorFilter, WorkloadId::Jacobi1d,
        WorkloadId::LlamaInference};
    const auto keep = splitCsv(cli.workloadFilter);
    if (!runner::reportUnknown(keep, names, "workload"))
        return 2;
    if (!keep.empty()) {
        tenants.clear();
        for (WorkloadId id : allWorkloads()) {
            if (std::find(keep.begin(), keep.end(),
                          workloadName(id)) != keep.end())
                tenants.push_back(id);
        }
    }
    const auto policies = splitCsv(cli.techniqueFilter);
    if (policies.size() > 1) {
        std::fprintf(stderr,
                     "every stream runs the same policy; give a "
                     "single --techniques entry\n");
        return 2;
    }
    const std::string policy =
        policies.empty() ? std::string("Conduit") : policies.front();
    if (policy == "CPU" || policy == "GPU") {
        std::fprintf(stderr,
                     "streams run on the SSD engine; host baseline "
                     "'%s' cannot be a tenant policy\n",
                     policy.c_str());
        return 2;
    }
    if (!runner::reportUnknown({policy}, policyNames(), "policy"))
        return 2;

    WorkloadParams params;
    params.scale = cli.scale;

    // Cells: one isolated run per tenant, then every ordered pair
    // (primary, background) co-located. Cell order is the report
    // order; runMultiAll keeps results in spec order regardless of
    // the worker-thread count.
    std::vector<MultiRunSpec> cells;
    for (WorkloadId p : tenants) {
        MultiRunSpec iso;
        iso.label = workloadName(p);
        iso.params = params;
        iso.streams = {slotFor(p, policy)};
        iso.viaDevice = viaDevice;
        cells.push_back(std::move(iso));
    }
    for (WorkloadId p : tenants) {
        for (WorkloadId b : tenants) {
            MultiRunSpec co;
            co.label = workloadName(p) + "+" + workloadName(b);
            co.params = params;
            co.streams = {slotFor(p, policy), slotFor(b, policy)};
            co.viaDevice = viaDevice;
            cells.push_back(std::move(co));
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    SweepRunner runner(cli.runnerOptions());
    const std::vector<sched::MultiRunResult> results =
        runner.runMultiAll(cells);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    const std::size_t n = tenants.size();
    std::printf("Multi-tenant co-location on one SSD (policy: %s)\n\n",
                policy.c_str());

    // Per-stream rows for the machine-readable emission layer: the
    // primary stream of every cell, labelled by its company.
    std::vector<runner::RunSpec> rowSpecs;
    std::vector<RunResult> rowResults;

    for (std::size_t pi = 0; pi < n; ++pi) {
        const RunResult &alone = results[pi].streams.front();
        std::printf("%s\n", alone.workload.c_str());
        std::printf("  %-24s %10s %10s %12s %12s\n", "tenancy",
                    "exec (ms)", "slowdown", "p99 (us)",
                    "p99.99 (us)");
        std::printf("  %-24s %10.3f %10s %12.2f %12.2f\n", "isolated",
                    ticksToUs(alone.execTime) / 1000.0, "1.00x",
                    alone.latencyUs.percentile(99),
                    alone.latencyUs.percentile(99.99));
        {
            runner::RunSpec spec;
            spec.workload = alone.workload;
            spec.technique = "isolated";
            rowSpecs.push_back(spec);
            rowResults.push_back(alone);
        }
        for (std::size_t bi = 0; bi < n; ++bi) {
            const auto &cell = results[n + pi * n + bi];
            const RunResult &primary = cell.streams.front();
            const std::string company =
                "+" + cell.streams.back().workload;
            const double slowdown = alone.execTime == 0
                ? 0.0
                : static_cast<double>(primary.execTime) /
                    static_cast<double>(alone.execTime);
            std::printf("  %-24s %10.3f %9.2fx %12.2f %12.2f\n",
                        company.c_str(),
                        ticksToUs(primary.execTime) / 1000.0, slowdown,
                        primary.latencyUs.percentile(99),
                        primary.latencyUs.percentile(99.99));
            runner::RunSpec spec;
            spec.workload = primary.workload;
            spec.technique = company;
            rowSpecs.push_back(spec);
            rowResults.push_back(primary);
        }
        std::printf("\n");
    }

    // Consolidation view: co-running a pair on one device vs giving
    // each tenant its own SSD (the paper's single-stream world).
    std::printf("pairwise consolidation (makespan vs sum of "
                "isolated runs)\n");
    for (std::size_t pi = 0; pi < n; ++pi) {
        for (std::size_t bi = pi + 1; bi < n; ++bi) {
            const auto &cell = results[n + pi * n + bi];
            const Tick sum =
                results[pi].streams.front().execTime +
                results[bi].streams.front().execTime;
            std::printf(
                "  %-40s makespan %8.3f ms, serial-on-two-SSDs "
                "%8.3f ms (%.2fx)\n",
                cells[n + pi * n + bi].label.c_str(),
                ticksToUs(cell.makespan) / 1000.0,
                ticksToUs(sum) / 1000.0,
                cell.makespan == 0
                    ? 0.0
                    : static_cast<double>(sum) /
                        static_cast<double>(cell.makespan));
        }
    }

    const SweepResult rows(std::move(rowSpecs), std::move(rowResults),
                           wall, runner.workerCount(cells.size()));
    const auto perf = runner.lastPerf();
    return cli.finish(rows, &perf);
}
