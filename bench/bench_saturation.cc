/**
 * @file
 * Saturation curves: throughput and tail latency vs offered load.
 *
 * The paper evaluates offloading policies one closed-form run at a
 * time; a deployed device instead faces an open-loop stream of
 * arriving jobs. This bench offers each workload to a persistent
 * Device at a ladder of arrival rates — for every policy — and
 * reports the achieved throughput, the mean job sojourn time, and
 * the per-request p99 / p99.99 latency at every operating point.
 * Each (workload, policy, rate) cell is one deterministic device
 * lifetime with pseudo-Poisson (or fixed / uniform) arrivals, eager
 * job retirement, and page-region recycling; cells are independent,
 * so the sweep parallelizes like every other bench while stdout and
 * CSV stay byte-identical across thread counts.
 *
 * The default rate ladder is self-calibrating: one isolated job's
 * makespan under the first selected policy anchors rate multipliers
 * {0.25, 0.5, 1, 2, 4}, so the sweep brackets the saturation knee at
 * any --scale. --rates overrides with absolute jobs/second (emitted
 * ascending — the offered-load column is monotone per policy).
 *
 * Flags: the shared sweep CLI (--techniques selects policies,
 * validated against the policy table) plus
 *   --jobs N            jobs offered per cell (default 8)
 *   --rates a,b         absolute offered loads, jobs/s
 *   --arrivals KIND     fixed | uniform | poisson (default)
 *   --arrival-seed N    arrival-schedule seed (default 1; the same
 *                       schedule is replayed for every policy)
 *   --warmup-jobs N     warm jobs before the measured phase (rows
 *                       then report the measured jobs only)
 *   --steady-state      build each rate rung's warm device once and
 *                       fork it per policy (DeviceImage snapshots)
 *                       instead of replaying the warm phase per
 *                       cell; outputs are byte-identical, only
 *                       wall-clock changes (reported on stderr)
 */

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "bench/common.hh"

namespace
{

using namespace conduit;
using namespace conduit::bench;
using conduit::runner::LoadRunSpec;
using conduit::runner::splitCsv;

std::vector<double>
parseRates(const std::string &csv)
{
    std::vector<double> rates;
    for (const std::string &tok : splitCsv(csv))
        rates.push_back(parsePositive("--rates", tok));
    // The offered-load axis is emitted ascending and deduplicated so
    // every policy's CSV block is strictly monotone in load.
    std::sort(rates.begin(), rates.end());
    rates.erase(std::unique(rates.begin(), rates.end()), rates.end());
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    std::size_t jobs = 8;
    std::vector<double> rates;
    ArrivalKind arrivals = ArrivalKind::Poisson;
    std::uint64_t arrivalSeed = 1;
    std::size_t warmupJobs = 0;
    bool steadyState = false;
    const auto extra = [&](const std::string &flag,
                           const std::function<std::string()> &value) {
        if (flag == "--jobs") {
            jobs = parseCount("--jobs", value());
        } else if (flag == "--warmup-jobs") {
            warmupJobs =
                parseCount("--warmup-jobs", value(), /*allow_zero=*/true);
        } else if (flag == "--steady-state") {
            steadyState = true;
        } else if (flag == "--rates") {
            rates = parseRates(value());
        } else if (flag == "--arrivals") {
            const std::string v = value();
            if (!parseArrivalKind(v, arrivals)) {
                std::fprintf(stderr,
                             "unknown --arrivals '%s'; accepted: %s\n",
                             v.c_str(),
                             runner::joinLabels(arrivalKindNames())
                                 .c_str());
                std::exit(2);
            }
        } else if (flag == "--arrival-seed") {
            arrivalSeed = parseCount("--arrival-seed", value());
        } else {
            return false;
        }
        return true;
    };
    const SweepCli cli = SweepCli::parse(
        argc, argv, extra,
        "          [--jobs N] [--rates a,b] [--arrivals KIND]\n"
        "          [--arrival-seed N] [--warmup-jobs N]\n"
        "          [--steady-state]\n");
    if (steadyState && warmupJobs == 0) {
        std::fprintf(stderr,
                     "--steady-state needs --warmup-jobs N (> 0)\n");
        return 2;
    }

    std::vector<std::string> names;
    for (WorkloadId id : allWorkloads())
        names.push_back(workloadName(id));
    if (cli.listWorkloads)
        runner::listAndExit(names);
    if (cli.listTechniques)
        runner::listAndExit(policyNames());

    // Workload rows: the tail-sensitive AES kernel by default;
    // --workloads widens to any Table 3 application.
    std::vector<WorkloadId> tenants = {WorkloadId::Aes};
    const auto keepW = splitCsv(cli.workloadFilter);
    if (!runner::reportUnknown(keepW, names, "workload"))
        return 2;
    if (!keepW.empty()) {
        tenants.clear();
        for (WorkloadId id : allWorkloads()) {
            if (std::find(keepW.begin(), keepW.end(),
                          workloadName(id)) != keepW.end())
                tenants.push_back(id);
        }
    }

    // Policy columns: validated against the policy table — an
    // unknown filter entry is rejected with the accepted names.
    std::vector<std::string> policies = {"Conduit", "DM-Offloading",
                                         "BW-Offloading"};
    const auto keepP = splitCsv(cli.techniqueFilter);
    for (const std::string &p : keepP) {
        if (p == "CPU" || p == "GPU") {
            std::fprintf(stderr,
                         "offered-load cells run on the SSD engine; "
                         "host baseline '%s' cannot serve jobs\n",
                         p.c_str());
            return 2;
        }
    }
    if (!runner::reportUnknown(keepP, policyNames(), "policy"))
        return 2;
    if (!keepP.empty())
        policies = keepP;

    WorkloadParams params;
    params.scale = cli.scale;

    SweepRunner runner(cli.runnerOptions());

    // Build the cell matrix: workload-major, policy, then rate
    // ascending. The same arrival schedule (kind, rate, seed) is
    // replayed for every policy so curves differ only by decisions.
    std::vector<LoadRunSpec> cells;
    std::vector<std::size_t> rateCounts; // per workload row
    for (WorkloadId w : tenants) {
        std::vector<double> wRates = rates;
        if (wRates.empty()) {
            // Self-calibrate: one isolated job under the first
            // policy anchors the rate ladder at its service rate.
            LoadRunSpec iso;
            iso.workload = workloadName(w);
            iso.technique = policies.front();
            iso.workloadId = w;
            iso.params = params;
            iso.jobs = 1;
            const DeviceSnapshot snap = runner.runLoad(iso);
            const double tIso = ticksToSeconds(snap.makespan);
            const double base = tIso > 0.0 ? 1.0 / tIso : 1.0;
            for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0})
                wRates.push_back(base * mult);
        }
        for (const std::string &policy : policies) {
            for (double rate : wRates) {
                LoadRunSpec cell;
                cell.workload = workloadName(w);
                cell.technique = policy;
                cell.workloadId = w;
                cell.params = params;
                cell.jobs = jobs;
                cell.jobsPerSec = rate;
                cell.arrivals = arrivals;
                cell.arrivalSeed = arrivalSeed;
                cell.warmupJobs = warmupJobs;
                cell.steadyState = steadyState;
                cells.push_back(std::move(cell));
            }
        }
        rateCounts.push_back(wRates.size());
    }

    const std::vector<DeviceSnapshot> snaps = runner.runLoadAll(cells);

    // Warm-phase cost is wall-clock (nondeterministic), so it goes
    // to stderr: stdout stays byte-identical between cold two-phase
    // and forked steady-state sweeps.
    const runner::SweepPerf perf = runner.lastPerf();
    if (perf.warmupImages > 0)
        std::fprintf(stderr,
                     "warmup: %zu image(s) built once in %.3f s, "
                     "forked across %zu cells\n",
                     perf.warmupImages, perf.warmupSeconds,
                     perf.cells);

    std::vector<runner::LoadRow> rows;
    rows.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        rows.push_back(runner::makeLoadRow(cells[i], snaps[i]));

    std::printf("Open-loop saturation sweep (%zu jobs/cell, %s "
                "arrivals)\n\n",
                jobs, arrivalKindName(arrivals).c_str());
    std::size_t r = 0;
    for (std::size_t wi = 0; wi < tenants.size(); ++wi) {
        std::printf("%s\n", workloadName(tenants[wi]).c_str());
        std::printf("  %-16s %12s %12s %14s %12s %12s\n", "policy",
                    "offered/s", "thpt/s", "sojourn (ms)", "p99 (us)",
                    "p99.99 (us)");
        for (const std::string &policy : policies) {
            (void)policy;
            for (std::size_t k = 0; k < rateCounts[wi]; ++k) {
                const runner::LoadRow &row = rows.at(r++);
                std::printf(
                    "  %-16s %12.2f %12.2f %14.3f %12.2f %12.2f\n",
                    row.technique.c_str(), row.jobsPerSec,
                    row.throughputJobsPerSec, row.meanSojournMs,
                    row.p99Us, row.p9999Us);
            }
        }
        std::printf("\n");
    }

    int status = 0;
    if (!cli.cellPerfPath.empty() &&
        !SweepCli::writeCellPerfCsv(cli.cellPerfPath,
                                    runner.lastPerf())) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.cellPerfPath.c_str());
        status = 1;
    }
    if (!cli.csvPath.empty() &&
        !runner::writeLoadCsvFile(cli.csvPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.csvPath.c_str());
        status = 1;
    }
    if (!cli.jsonPath.empty() &&
        !runner::writeLoadJsonFile(cli.jsonPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.jsonPath.c_str());
        status = 1;
    }
    status |= cli.writeTraces(runner);
    return status;
}
