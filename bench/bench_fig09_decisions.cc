/**
 * @file
 * Reproduces Fig. 9: the fraction of instructions offloaded to each
 * SSD computation resource (ISP, PuD-SSD, IFP) under BW-Offloading,
 * DM-Offloading, Conduit, and Ideal, for every workload, run as one
 * parallel sweep.
 *
 * Paper shape: Conduit's distribution tracks Ideal's; memory-bound
 * workloads use ISP very sparingly (0.4%/0.6% on AES/XOR Filter);
 * LlaMA2 Inference splits between PuD-SSD and ISP and avoids IFP
 * (multiplication shuttles); DM-Offloading over-concentrates on IFP.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    RunMatrix matrix;
    matrix.workloads(allWorkloads())
        .techniques(
            {"BW-Offloading", "DM-Offloading", "Conduit", "Ideal"});
    cli.configure(matrix);

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 9: fraction of instructions per computation "
                "resource\n\n");
    std::printf("%-18s %-16s %8s %8s %8s\n", "workload", "policy",
                "ISP", "PuD-SSD", "IFP");
    for (const auto &w : sweep.workloadLabels()) {
        bool first = true;
        for (const auto &p : sweep.techniqueLabels()) {
            const auto &r = sweep.at(w, p);
            const double n = static_cast<double>(r.instrCount);
            std::printf("%-18s %-16s %7.1f%% %7.1f%% %7.1f%%\n",
                        first ? w.c_str() : "", p.c_str(),
                        100.0 * r.perResource[0] / n,
                        100.0 * r.perResource[1] / n,
                        100.0 * r.perResource[2] / n);
            first = false;
        }
        std::printf("\n");
    }

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
