/**
 * @file
 * Reproduces Fig. 9: the fraction of instructions offloaded to each
 * SSD computation resource (ISP, PuD-SSD, IFP) under BW-Offloading,
 * DM-Offloading, Conduit, and Ideal, for every workload.
 *
 * Paper shape: Conduit's distribution tracks Ideal's; memory-bound
 * workloads use ISP very sparingly (0.4%/0.6% on AES/XOR Filter);
 * LlaMA2 Inference splits between PuD-SSD and ISP and avoids IFP
 * (multiplication shuttles); DM-Offloading over-concentrates on IFP.
 */

#include "bench/common.hh"

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;
    const char *policies[] = {"BW-Offloading", "DM-Offloading",
                              "Conduit", "Ideal"};

    std::printf("Fig. 9: fraction of instructions per computation "
                "resource\n\n");
    std::printf("%-18s %-16s %8s %8s %8s\n", "workload", "policy",
                "ISP", "PuD-SSD", "IFP");
    for (WorkloadId id : allWorkloads()) {
        bool first = true;
        for (const char *p : policies) {
            auto r = runTechnique(sim, id, p);
            const double n = static_cast<double>(r.instrCount);
            std::printf("%-18s %-16s %7.1f%% %7.1f%% %7.1f%%\n",
                        first ? workloadName(id).c_str() : "", p,
                        100.0 * r.perResource[0] / n,
                        100.0 * r.perResource[1] / n,
                        100.0 * r.perResource[2] / n);
            first = false;
        }
        std::printf("\n");
    }
    return 0;
}
