/**
 * @file
 * Reproduces Fig. 7(a): speedup of Conduit and all baselines over
 * the host CPU across the six workloads. The full workload x policy
 * matrix runs through the parallel SweepRunner.
 *
 * Paper shape: Conduit averages 4.2x over CPU, 1.8x over the best
 * prior offloading policy (DM-Offloading), 2.0x over BW-Offloading,
 * and reaches ~62% of the unrealizable Ideal policy; gains are
 * largest on the compute-intensive workloads and smallest on the
 * memory-bound AES / XOR Filter.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    RunMatrix matrix = workloadTechniqueMatrix(evaluationTechniques());
    cli.configure(matrix, "CPU");

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 7(a): speedup over CPU (evaluation)\n\n");
    const std::vector<std::string> columns = nonBaselineColumns(sweep);
    printHeader(columns);

    std::map<std::string, std::vector<double>> speedups;
    for (const auto &w : sweep.workloadLabels()) {
        const double cpu =
            static_cast<double>(sweep.at(w, "CPU").execTime);
        std::printf("%-18s", w.c_str());
        for (const auto &t : columns) {
            const double s =
                cpu / static_cast<double>(sweep.at(w, t).execTime);
            speedups[t].push_back(s);
            std::printf(" %13.2fx", s);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "GMEAN");
    for (const auto &t : columns)
        std::printf(" %13.2fx", gmean(speedups[t]));
    std::printf("\n\n");

    if (speedups.count("Conduit")) {
        const double conduit = gmean(speedups["Conduit"]);
        std::printf("key observations (paper values in brackets):\n");
        std::printf("  Conduit vs CPU:            %5.2fx  [4.2x]\n",
                    conduit);
        const struct
        {
            const char *name;
            const char *paper;
        } baselines[] = {
            {"GPU", "1.8x"},          {"ISP", "3.3x"},
            {"PuD-SSD", "2.2x"},      {"Flash-Cosmos", "3.3x"},
            {"Ares-Flash", "2.3x"},   {"BW-Offloading", "2.0x"},
            {"DM-Offloading", "1.8x"},
        };
        for (const auto &b : baselines) {
            if (!speedups.count(b.name))
                continue;
            std::printf("  Conduit vs %-15s %5.2fx  [%s]\n",
                        (std::string(b.name) + ":").c_str(),
                        conduit / gmean(speedups[b.name]), b.paper);
        }
        if (speedups.count("Ideal"))
            std::printf("  Conduit / Ideal:           %5.0f%%  [62%%]\n",
                        100.0 * conduit / gmean(speedups["Ideal"]));
    }

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
