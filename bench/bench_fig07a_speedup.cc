/**
 * @file
 * Reproduces Fig. 7(a): speedup of Conduit and all baselines over
 * the host CPU across the six workloads.
 *
 * Paper shape: Conduit averages 4.2x over CPU, 1.8x over the best
 * prior offloading policy (DM-Offloading), 2.0x over BW-Offloading,
 * and reaches ~62% of the unrealizable Ideal policy; gains are
 * largest on the compute-intensive workloads and smallest on the
 * memory-bound AES / XOR Filter.
 */

#include "bench/common.hh"

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;
    std::printf("Fig. 7(a): speedup over CPU (evaluation)\n\n");
    printHeader(evaluationTechniques());

    std::map<std::string, std::vector<double>> speedups;
    for (WorkloadId id : allWorkloads()) {
        const double cpu = static_cast<double>(
            runTechnique(sim, id, "CPU").execTime);
        std::printf("%-18s", workloadName(id).c_str());
        for (const auto &t : evaluationTechniques()) {
            const double s =
                cpu / static_cast<double>(
                          runTechnique(sim, id, t).execTime);
            speedups[t].push_back(s);
            std::printf(" %13.2fx", s);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "GMEAN");
    for (const auto &t : evaluationTechniques())
        std::printf(" %13.2fx", gmean(speedups[t]));
    std::printf("\n\n");

    const double conduit = gmean(speedups["Conduit"]);
    std::printf("key observations (paper values in brackets):\n");
    std::printf("  Conduit vs CPU:            %5.2fx  [4.2x]\n",
                conduit);
    std::printf("  Conduit vs GPU:            %5.2fx  [1.8x]\n",
                conduit / gmean(speedups["GPU"]));
    std::printf("  Conduit vs ISP:            %5.2fx  [3.3x]\n",
                conduit / gmean(speedups["ISP"]));
    std::printf("  Conduit vs PuD-SSD:        %5.2fx  [2.2x]\n",
                conduit / gmean(speedups["PuD-SSD"]));
    std::printf("  Conduit vs Flash-Cosmos:   %5.2fx  [3.3x]\n",
                conduit / gmean(speedups["Flash-Cosmos"]));
    std::printf("  Conduit vs Ares-Flash:     %5.2fx  [2.3x]\n",
                conduit / gmean(speedups["Ares-Flash"]));
    std::printf("  Conduit vs BW-Offloading:  %5.2fx  [2.0x]\n",
                conduit / gmean(speedups["BW-Offloading"]));
    std::printf("  Conduit vs DM-Offloading:  %5.2fx  [1.8x]\n",
                conduit / gmean(speedups["DM-Offloading"]));
    std::printf("  Conduit / Ideal:           %5.0f%%  [62%%]\n",
                100.0 * conduit / gmean(speedups["Ideal"]));
    return 0;
}
