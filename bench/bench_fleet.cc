/**
 * @file
 * Fleet-scale serving: rack-level saturation and SLO tails.
 *
 * One device serves one job stream; a deployment serves tenants from
 * a rack of mixed-age drives behind a host scheduler. This bench
 * sweeps fleet size x age mix x placement policy x offered load:
 * every cell is one deterministic cluster simulation (src/cluster) —
 * N devices, the merged open-loop tenant streams, and a placement
 * policy routing each arrival on host-visible backlog state. Rows
 * report fleet throughput, per-device utilization and routing
 * imbalance, the fleet p99 / p99.99 request tail, and per-tenant SLO
 * attainment. Cells are independent simulations, so the sweep
 * parallelizes like every other bench while stdout and CSV stay
 * byte-identical across thread counts.
 *
 * The technique axis is the placement policy (--techniques filters
 * round-robin / random / least-backlog / affinity). Tenants come
 * from --workloads (default AES + jacobi-1d, arrival weights 3:1 —
 * a deliberately skewed mix so balancing policies have something to
 * balance). Each tenant's SLO is its isolated one-job makespan times
 * --slo-mult.
 *
 * The default rate ladder is self-calibrating, like
 * bench_saturation: the tenants' isolated makespans anchor the
 * fleet's aggregate service rate, and multipliers {0.25..4} bracket
 * the saturation knee for every fleet size. --rates overrides with
 * absolute fleet-wide jobs/second.
 *
 * Flags: the shared sweep CLI plus
 *   --devices a,b         fleet sizes (default 4)
 *   --jobs N              jobs offered per cell, fleet-wide (64)
 *   --rates a,b           absolute fleet-wide loads, jobs/s
 *   --arrivals KIND       fixed | uniform | poisson (default)
 *   --arrival-seed N      arrival-schedule seed (default 1)
 *   --age-mix m1,m2       age mixes; each mix is colon-separated
 *                         P/E-cycle rungs assigned round-robin
 *                         across the fleet (e.g. 0:3000), default 0
 *   --retention-per-kcycle D  retention days per 1000 pre-wear
 *                         cycles for aged rungs (default 0)
 *   --warmup-jobs N       warm jobs per device before the measured
 *                         phase; warm devices fork shared per-rung
 *                         images (built once, reported on stderr)
 *   --slo-mult X          per-tenant SLO = isolated makespan * X
 *                         (default 3)
 *   --wear-level          enable the background wear-leveler on
 *                         every fleet device
 */

#include <algorithm>
#include <cstdlib>

#include "bench/common.hh"
#include "src/cluster/placement.hh"

namespace
{

using namespace conduit;
using namespace conduit::bench;
using conduit::runner::ClusterRunSpec;
using conduit::runner::ClusterTenant;
using conduit::runner::splitCsv;

std::vector<double>
parseRates(const std::string &csv)
{
    std::vector<double> rates;
    for (const std::string &tok : splitCsv(csv))
        rates.push_back(parsePositive("--rates", tok));
    std::sort(rates.begin(), rates.end());
    rates.erase(std::unique(rates.begin(), rates.end()), rates.end());
    return rates;
}

std::vector<std::size_t>
parseSizes(const std::string &csv)
{
    std::vector<std::size_t> sizes;
    for (const std::string &tok : splitCsv(csv))
        sizes.push_back(parseCount("--devices", tok));
    return sizes;
}

/** One --age-mix entry: colon-separated P/E-cycle rungs. */
std::vector<std::uint32_t>
parseMix(const std::string &entry)
{
    std::vector<std::uint32_t> mix;
    std::size_t pos = 0;
    while (pos <= entry.size()) {
        const std::size_t colon = entry.find(':', pos);
        const std::string tok = entry.substr(
            pos, colon == std::string::npos ? colon : colon - pos);
        mix.push_back(static_cast<std::uint32_t>(
            parseCount("--age-mix", tok, /*allow_zero=*/true)));
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    return mix;
}

/** Display suffix of an age mix ("" when fresh). */
std::string
mixLabel(const std::vector<std::uint32_t> &mix)
{
    bool aged = false;
    for (std::uint32_t m : mix)
        aged = aged || m > 0;
    if (!aged)
        return "";
    std::string out = "+w";
    for (std::size_t i = 0; i < mix.size(); ++i) {
        if (i)
            out += ":";
        out += std::to_string(mix[i]);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::size_t> sizes = {4};
    std::size_t jobs = 64;
    std::vector<double> rates;
    ArrivalKind arrivals = ArrivalKind::Poisson;
    std::uint64_t arrivalSeed = 1;
    std::vector<std::vector<std::uint32_t>> mixes;
    double retentionPerKCycle = 0.0;
    std::size_t warmupJobs = 0;
    double sloMult = 3.0;
    bool wearLevel = false;
    const auto extra = [&](const std::string &flag,
                           const std::function<std::string()> &value) {
        if (flag == "--devices") {
            sizes = parseSizes(value());
        } else if (flag == "--jobs") {
            jobs = parseCount("--jobs", value());
        } else if (flag == "--rates") {
            rates = parseRates(value());
        } else if (flag == "--arrivals") {
            const std::string v = value();
            if (!parseArrivalKind(v, arrivals)) {
                std::fprintf(stderr,
                             "unknown --arrivals '%s'; accepted: %s\n",
                             v.c_str(),
                             runner::joinLabels(arrivalKindNames())
                                 .c_str());
                std::exit(2);
            }
        } else if (flag == "--arrival-seed") {
            arrivalSeed = parseCount("--arrival-seed", value());
        } else if (flag == "--age-mix") {
            for (const std::string &entry : splitCsv(value()))
                mixes.push_back(parseMix(entry));
        } else if (flag == "--retention-per-kcycle") {
            retentionPerKCycle =
                parsePositive("--retention-per-kcycle", value());
        } else if (flag == "--warmup-jobs") {
            warmupJobs = parseCount("--warmup-jobs", value(),
                                    /*allow_zero=*/true);
        } else if (flag == "--slo-mult") {
            sloMult = parsePositive("--slo-mult", value());
        } else if (flag == "--wear-level") {
            wearLevel = true;
        } else {
            return false;
        }
        return true;
    };
    const SweepCli cli = SweepCli::parse(
        argc, argv, extra,
        "          [--devices a,b] [--jobs N] [--rates a,b]\n"
        "          [--arrivals KIND] [--arrival-seed N]\n"
        "          [--age-mix m1,m2] [--retention-per-kcycle D]\n"
        "          [--warmup-jobs N] [--slo-mult X] [--wear-level]\n");
    if (mixes.empty())
        mixes.push_back({0});

    std::vector<std::string> names;
    for (WorkloadId id : allWorkloads())
        names.push_back(workloadName(id));
    if (cli.listWorkloads)
        runner::listAndExit(names);
    if (cli.listTechniques)
        runner::listAndExit(cluster::placementNames());

    // Tenant rows: a skewed two-tenant mix by default (AES carries
    // 3x jacobi-1d's arrival weight); --workloads overrides with any
    // Table 3 applications, first listed carrying the heavy share.
    std::vector<WorkloadId> tenantIds = {WorkloadId::Aes,
                                         WorkloadId::Jacobi1d};
    const auto keepW = splitCsv(cli.workloadFilter);
    if (!runner::reportUnknown(keepW, names, "workload"))
        return 2;
    if (!keepW.empty()) {
        tenantIds.clear();
        for (WorkloadId id : allWorkloads()) {
            if (std::find(keepW.begin(), keepW.end(),
                          workloadName(id)) != keepW.end())
                tenantIds.push_back(id);
        }
    }

    // The technique axis is the placement policy.
    std::vector<std::string> policies = cluster::placementNames();
    const auto keepP = splitCsv(cli.techniqueFilter);
    if (!runner::reportUnknown(keepP, policies, "placement policy"))
        return 2;
    if (!keepP.empty())
        policies = keepP;

    WorkloadParams params;
    params.scale = cli.scale;

    SweepRunner runner(cli.runnerOptions());

    // Calibrate per-tenant service times once: the isolated one-job
    // makespan anchors both the SLO (x --slo-mult) and the default
    // rate ladder (aggregate service rate x fleet size).
    std::vector<ClusterTenant> tenants;
    double meanServiceSec = 0.0;
    {
        double weightSum = 0.0;
        for (std::size_t t = 0; t < tenantIds.size(); ++t)
            weightSum += t == 0 ? 3.0 : 1.0;
        for (std::size_t t = 0; t < tenantIds.size(); ++t) {
            runner::LoadRunSpec iso;
            iso.workload = workloadName(tenantIds[t]);
            iso.workloadId = tenantIds[t];
            iso.params = params;
            iso.jobs = 1;
            const DeviceSnapshot snap = runner.runLoad(iso);
            const double tIso = ticksToSeconds(snap.makespan);

            ClusterTenant ten;
            ten.name = workloadName(tenantIds[t]);
            ten.workloadId = tenantIds[t];
            ten.sloMs = tIso * 1000.0 * sloMult;
            ten.weight = t == 0 ? 3.0 : 1.0;
            meanServiceSec += tIso * ten.weight / weightSum;
            tenants.push_back(std::move(ten));
        }
    }

    SsdConfig cfg = runner::defaultSweepConfig();
    cfg.reliability.wearLevelEnabled = wearLevel;

    // Cell matrix: fleet size, then age mix, then policy, then rate
    // ascending. Every policy sees the identical arrival schedule,
    // so curves differ only by routing decisions.
    std::vector<ClusterRunSpec> cells;
    std::vector<std::vector<double>> sizeRates;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::vector<double> fRates = rates;
        if (fRates.empty()) {
            const double base = meanServiceSec > 0.0
                ? static_cast<double>(sizes[si]) / meanServiceSec
                : 1.0;
            for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0})
                fRates.push_back(base * mult);
        }
        for (const auto &mix : mixes) {
            for (const std::string &policy : policies) {
                for (double rate : fRates) {
                    ClusterRunSpec cell;
                    char label[128];
                    std::snprintf(label, sizeof label,
                                  "fleet%zu%s/%s@%gjobs/s", sizes[si],
                                  mixLabel(mix).c_str(),
                                  policy.c_str(), rate);
                    cell.label = label;
                    cell.placement = policy;
                    cell.config = cfg;
                    cell.params = params;
                    cell.tenants = tenants;
                    cell.devices = sizes[si];
                    cell.ageMix = mix;
                    cell.retentionDaysPerKCycle = retentionPerKCycle;
                    cell.jobs = jobs;
                    cell.jobsPerSec = rate;
                    cell.arrivals = arrivals;
                    cell.arrivalSeed = arrivalSeed;
                    cell.warmupJobs = warmupJobs;
                    cells.push_back(std::move(cell));
                }
            }
        }
        sizeRates.push_back(std::move(fRates));
    }

    const std::vector<cluster::ClusterSnapshot> snaps =
        runner.runClusterAll(cells);

    // Warm-phase cost is wall-clock (nondeterministic): stderr only.
    const runner::SweepPerf perf = runner.lastPerf();
    if (perf.warmupImages > 0)
        std::fprintf(stderr,
                     "warmup: %zu image(s) built once in %.3f s, "
                     "forked across %zu fleet cells\n",
                     perf.warmupImages, perf.warmupSeconds,
                     perf.cells);

    std::vector<runner::ClusterRow> rows;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const auto cellRows =
            runner::makeClusterRows(cells[i], snaps[i]);
        rows.insert(rows.end(), cellRows.begin(), cellRows.end());
    }

    std::printf("Fleet sweep (%zu jobs/cell fleet-wide, %s arrivals, "
                "%zu tenants)\n\n",
                jobs, arrivalKindName(arrivals).c_str(),
                tenants.size());
    std::size_t r = 0;
    for (std::size_t si = 0; si < sizes.size(); ++si) {
        for (const auto &mix : mixes) {
            std::printf("fleet of %zu%s\n", sizes[si],
                        mixLabel(mix).c_str());
            std::printf("  %-14s %10s %10s %9s %9s %8s %12s\n",
                        "placement", "offered/s", "thpt/s", "util",
                        "imbal", "slo", "p99.99 (us)");
            for (const std::string &policy : policies) {
                (void)policy;
                for (std::size_t k = 0; k < sizeRates[si].size();
                     ++k) {
                    // One fleet row then one row per tenant.
                    const runner::ClusterRow &row = rows.at(r);
                    r += 1 + tenants.size();
                    std::printf("  %-14s %10.2f %10.2f %9.3f %9.3f "
                                "%8.3f %12.2f\n",
                                row.placement.c_str(), row.jobsPerSec,
                                row.throughputJobsPerSec, row.utilMean,
                                row.imbalance, row.sloAttainment,
                                row.p9999Us);
                }
            }
            std::printf("\n");
        }
    }

    // Per-tenant SLO attainment at the highest offered load of the
    // first fleet block: the headline "who suffers at saturation".
    if (!rows.empty()) {
        const std::size_t stride = 1 + tenants.size();
        const std::size_t lastCell = sizeRates[0].size() - 1;
        std::printf("tenant SLO attainment at %.2f jobs/s (fleet of "
                    "%zu%s, first policy)\n",
                    rows[lastCell * stride].jobsPerSec, sizes[0],
                    mixLabel(mixes[0]).c_str());
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            const runner::ClusterRow &row =
                rows.at(lastCell * stride + 1 + t);
            std::printf("  %-14s slo %8.3f ms  attained %6.3f  "
                        "p99 sojourn %8.3f ms\n",
                        row.tenant.c_str(), row.sloMs,
                        row.sloAttainment, row.sojournP99Ms);
        }
        std::printf("\n");
    }

    int status = 0;
    if (!cli.cellPerfPath.empty() &&
        !SweepCli::writeCellPerfCsv(cli.cellPerfPath,
                                    runner.lastPerf())) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.cellPerfPath.c_str());
        status = 1;
    }
    if (!cli.csvPath.empty() &&
        !runner::writeClusterCsvFile(cli.csvPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.csvPath.c_str());
        status = 1;
    }
    if (!cli.jsonPath.empty() &&
        !runner::writeClusterJsonFile(cli.jsonPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.jsonPath.c_str());
        status = 1;
    }
    status |= cli.writeTraces(runner);
    return status;
}
