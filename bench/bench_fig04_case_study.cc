/**
 * @file
 * Reproduces the Fig. 4 case study: overall execution time of OSP
 * (host CPU), ISP, IFP, and naive IFP+ISP, normalized to OSP, for
 * three workload categories, with the stacked breakdown (compute,
 * host-SSD data movement, SSD-internal data movement, flash read).
 * The 3 categories x 4 execution models run as one parallel sweep
 * over custom-program rows.
 *
 * Paper shape: IFP wins the I/O-intensive category (~0.30 of OSP);
 * naively adding ISP to IFP *hurts* there (inter-resource movement);
 * IFP+ISP wins the compute-intensive and mixed categories.
 */

#include "bench/common.hh"

namespace
{

using namespace conduit;

/** Normalized stacked breakdown of one execution model. */
struct Bar
{
    double total;
    double compute, host_dm, internal_dm, flash_read;
};

Bar
toBar(const RunResult &r, double osp_time)
{
    Bar b{};
    b.total = static_cast<double>(r.execTime) / osp_time;
    // Decompose wall-clock proportionally to attributed busy time.
    const double busy = static_cast<double>(
        r.computeBusy + r.hostDmBusy + r.internalDmBusy +
        r.flashReadBusy);
    if (busy <= 0)
        return b;
    b.compute = b.total * static_cast<double>(r.computeBusy) / busy;
    b.host_dm = b.total * static_cast<double>(r.hostDmBusy) / busy;
    b.internal_dm =
        b.total * static_cast<double>(r.internalDmBusy) / busy;
    b.flash_read =
        b.total * static_cast<double>(r.flashReadBusy) / busy;
    return b;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);

    // Compile the three case-study kernels once, up front, and hang
    // them on the matrix as custom-program rows.
    const SsdConfig cfg = runner::defaultSweepConfig();
    VectorizeOptions vo;
    vo.vectorLanes = cfg.vectorLanes;
    vo.pageBytes = cfg.nand.pageBytes;
    const Vectorizer vec(vo);

    WorkloadParams params;
    params.scale = cli.scale;

    RunMatrix matrix;
    for (CaseStudyClass c :
         {CaseStudyClass::IoIntensive, CaseStudyClass::ComputeIntensive,
          CaseStudyClass::Mixed}) {
        auto vp = std::make_shared<const VectorizedProgram>(
            vec.run(buildCaseStudy(c, params)));
        matrix.program(
            caseStudyName(c),
            std::shared_ptr<const Program>(vp, &vp->program));
    }
    matrix.hostTechnique("OSP", /*gpu=*/false)
        .technique("ISP")
        .technique("IFP",
                   [] { return makePolicy("Flash-Cosmos"); })
        .technique("IFP+ISP",
                   [] { return makePolicy("Ares-Flash"); });
    cli.configure(matrix, "OSP");

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 4: case study — execution models normalized to "
                "OSP (lower is better)\n\n");
    std::printf("%-24s %-9s %7s %8s %8s %8s %8s\n", "category", "model",
                "total", "compute", "hostDM", "intDM", "flashRd");

    for (const auto &category : sweep.workloadLabels()) {
        const double osp_time = static_cast<double>(
            sweep.at(category, "OSP").execTime);
        bool first = true;
        for (const auto &model : sweep.techniqueLabels()) {
            const Bar bar = toBar(sweep.at(category, model), osp_time);
            std::printf("%-24s %-9s %7.2f %8.2f %8.2f %8.2f %8.2f\n",
                        first ? category.c_str() : "", model.c_str(),
                        bar.total, bar.compute, bar.host_dm,
                        bar.internal_dm, bar.flash_read);
            first = false;
        }
        std::printf("\n");
    }

    std::printf("paper shape: IFP ~0.30 of OSP on I/O-intensive "
                "(IFP+ISP ~15%% worse than IFP there);\n"
                "IFP+ISP best on compute-intensive (+28%% over IFP) "
                "and mixed (+40%% over IFP).\n");

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
