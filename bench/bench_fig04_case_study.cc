/**
 * @file
 * Reproduces the Fig. 4 case study: overall execution time of OSP
 * (host CPU), ISP, IFP, and naive IFP+ISP, normalized to OSP, for
 * three workload categories, with the stacked breakdown (compute,
 * host-SSD data movement, SSD-internal data movement, flash read).
 *
 * Paper shape: IFP wins the I/O-intensive category (~0.30 of OSP);
 * naively adding ISP to IFP *hurts* there (inter-resource movement);
 * IFP+ISP wins the compute-intensive and mixed categories.
 */

#include "bench/common.hh"

namespace
{

using namespace conduit;

/** Normalized stacked breakdown of one execution model. */
struct Bar
{
    double total;
    double compute, host_dm, internal_dm, flash_read;
};

Bar
toBar(const RunResult &r, double osp_time)
{
    Bar b{};
    b.total = static_cast<double>(r.execTime) / osp_time;
    // Decompose wall-clock proportionally to attributed busy time.
    const double busy = static_cast<double>(
        r.computeBusy + r.hostDmBusy + r.internalDmBusy +
        r.flashReadBusy);
    if (busy <= 0)
        return b;
    b.compute = b.total * static_cast<double>(r.computeBusy) / busy;
    b.host_dm = b.total * static_cast<double>(r.hostDmBusy) / busy;
    b.internal_dm =
        b.total * static_cast<double>(r.internalDmBusy) / busy;
    b.flash_read =
        b.total * static_cast<double>(r.flashReadBusy) / busy;
    return b;
}

} // namespace

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;
    const Vectorizer vec(
        [&] {
            VectorizeOptions vo;
            vo.vectorLanes = sim.options().config.vectorLanes;
            vo.pageBytes = sim.options().config.nand.pageBytes;
            return vo;
        }());

    std::printf("Fig. 4: case study — execution models normalized to "
                "OSP (lower is better)\n\n");
    std::printf("%-24s %-9s %7s %8s %8s %8s %8s\n", "category", "model",
                "total", "compute", "hostDM", "intDM", "flashRd");

    for (CaseStudyClass c :
         {CaseStudyClass::IoIntensive, CaseStudyClass::ComputeIntensive,
          CaseStudyClass::Mixed}) {
        const LoopProgram lp = buildCaseStudy(c, sim.options().workload);
        const VectorizedProgram vp = vec.run(lp);

        const RunResult osp = sim.runHostProgram(vp.program, false);
        const double osp_time = static_cast<double>(osp.execTime);

        struct Model
        {
            const char *name;
            const char *policy;
        };
        const Model models[] = {{"ISP", "ISP"},
                                {"IFP", "Flash-Cosmos"},
                                {"IFP+ISP", "Ares-Flash"}};

        Bar osp_bar = toBar(osp, osp_time);
        std::printf("%-24s %-9s %7.2f %8.2f %8.2f %8.2f %8.2f\n",
                    caseStudyName(c).c_str(), "OSP", osp_bar.total,
                    osp_bar.compute, osp_bar.host_dm,
                    osp_bar.internal_dm, osp_bar.flash_read);
        for (const auto &m : models) {
            auto policy = makePolicy(m.policy);
            const RunResult r = sim.runProgram(vp.program, *policy);
            Bar bar = toBar(r, osp_time);
            std::printf("%-24s %-9s %7.2f %8.2f %8.2f %8.2f %8.2f\n",
                        "", m.name, bar.total, bar.compute, bar.host_dm,
                        bar.internal_dm, bar.flash_read);
        }
        std::printf("\n");
    }

    std::printf("paper shape: IFP ~0.30 of OSP on I/O-intensive "
                "(IFP+ISP ~15%% worse than IFP there);\n"
                "IFP+ISP best on compute-intensive (+28%% over IFP) "
                "and mixed (+40%% over IFP).\n");
    return 0;
}
