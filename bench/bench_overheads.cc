/**
 * @file
 * Reproduces the §4.5 overhead analysis with google-benchmark
 * microbenchmarks of Conduit's runtime hot path, plus a model audit
 * of the simulated per-instruction overhead and metadata budgets.
 *
 * Paper values: feature collection + instruction transformation cost
 * 3.77 us on average (up to 33 us when an L2P lookup misses to
 * flash); the translation table consumes ~1.5 KiB of SSD DRAM.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"

namespace
{

using namespace conduit;

SsdConfig
benchCfg()
{
    return SsdConfig::scaled(1.0 / 128.0);
}

Program
benchProgram()
{
    runner::ProgramCache cache;
    return cache.get(WorkloadId::LlamaInference, {}, benchCfg())
        ->program;
}

/** Host-side cost of evaluating the cost function (Eqn. 1/2). */
void
BM_CostFunctionEvaluation(benchmark::State &state)
{
    Engine engine(benchCfg());
    Program prog = benchProgram();
    ConduitPolicy policy;
    engine.run(prog, policy); // populate device state
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &vi = prog.instrs[i++ % prog.instrs.size()];
        CostFeatures f = engine.features(vi, 0);
        benchmark::DoNotOptimize(policy.select(vi, f));
    }
}
BENCHMARK(BM_CostFunctionEvaluation);

/** Host-side cost of instruction transformation. */
void
BM_InstructionTransformation(benchmark::State &state)
{
    InstructionTransformer tx(4096, 8192, 32);
    Program prog = benchProgram();
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &vi = prog.instrs[i++ % prog.instrs.size()];
        benchmark::DoNotOptimize(
            tx.transform(vi, static_cast<Target>(i % 3)));
    }
}
BENCHMARK(BM_InstructionTransformation);

/** Full simulated run throughput (instructions per host second). */
void
BM_EngineRunLlama(benchmark::State &state)
{
    Program prog = benchProgram();
    for (auto _ : state) {
        Engine engine(benchCfg());
        ConduitPolicy policy;
        benchmark::DoNotOptimize(engine.run(prog, policy));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(prog.instrs.size()));
}
BENCHMARK(BM_EngineRunLlama);

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;

    // Model audit: simulated per-instruction offloader latency.
    {
        SsdConfig cfg;
        const OverheadConfig &o = cfg.overhead;
        const Tick typical = 2 * o.l2pLookupDram + o.depTrackPerQueue +
            o.queueTrackPerResource + o.dmTableLookup +
            o.compTableLookup + o.translationLookup;
        const Tick worst = 2 * o.l2pLookupFlash + o.depTrackPerQueue +
            o.queueTrackPerResource + o.dmTableLookup +
            o.compTableLookup + o.translationLookup;
        std::printf("S4.5 overhead audit (simulated model)\n");
        std::printf("  typical per-instruction overhead: %.2f us "
                    "[paper avg 3.77 us]\n",
                    ticksToUs(typical));
        std::printf("  worst-case (L2P misses to flash): %.2f us "
                    "[paper up to 33 us]\n",
                    ticksToUs(worst));
        std::printf("  translation table: %llu bytes "
                    "[paper ~1.5 KiB]\n",
                    static_cast<unsigned long long>(
                        InstructionTransformer::tableBytes()));
        std::printf("  cost-feature metadata per instruction: "
                    "2B op + 4b loc + 2B dep + 3x4B queue + 4B dm + "
                    "4B comp = 25B\n\n");
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
