/**
 * @file
 * Reproduces Fig. 5: speedup of GPU, ISP, PuD-SSD, Flash-Cosmos,
 * Ares-Flash, BW-Offloading, DM-Offloading and Ideal over the host
 * CPU, per workload plus the geometric mean.
 *
 * Paper shape: DM-Offloading is the best prior technique (~2.3x CPU
 * average), BW-Offloading trails it, the Ideal policy leads all
 * realizable techniques by ~2.5x over DM-Offloading, and the GPU
 * wins on the highly data-parallel stencils.
 */

#include "bench/common.hh"

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;
    std::printf("Fig. 5: speedup over CPU (motivation, prior "
                "techniques only)\n\n");
    printHeader(motivationTechniques());

    std::map<std::string, std::vector<double>> speedups;
    for (WorkloadId id : allWorkloads()) {
        const double cpu = static_cast<double>(
            runTechnique(sim, id, "CPU").execTime);
        std::printf("%-18s", workloadName(id).c_str());
        for (const auto &t : motivationTechniques()) {
            const double s =
                cpu / static_cast<double>(
                          runTechnique(sim, id, t).execTime);
            speedups[t].push_back(s);
            std::printf(" %13.2fx", s);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "GMEAN");
    for (const auto &t : motivationTechniques())
        std::printf(" %13.2fx", gmean(speedups[t]));
    std::printf("\n\n");

    const double dm = gmean(speedups["DM-Offloading"]);
    const double bw = gmean(speedups["BW-Offloading"]);
    const double ideal = gmean(speedups["Ideal"]);
    std::printf("key observations (paper values in brackets):\n");
    std::printf("  best prior technique: %s\n",
                dm >= bw ? "DM-Offloading [DM-Offloading]"
                         : "BW-Offloading [DM-Offloading]");
    std::printf("  DM-Offloading vs CPU:      %5.2fx  [2.3x]\n", dm);
    std::printf("  BW-Offloading vs CPU:      %5.2fx  [2.1x]\n", bw);
    std::printf("  Ideal gap over DM:         %5.2fx  [2.5x]\n",
                ideal / dm);
    return 0;
}
