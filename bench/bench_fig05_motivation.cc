/**
 * @file
 * Reproduces Fig. 5: speedup of GPU, ISP, PuD-SSD, Flash-Cosmos,
 * Ares-Flash, BW-Offloading, DM-Offloading and Ideal over the host
 * CPU, per workload plus the geometric mean, run as one parallel
 * sweep matrix.
 *
 * Paper shape: DM-Offloading is the best prior technique (~2.3x CPU
 * average), BW-Offloading trails it, the Ideal policy leads all
 * realizable techniques by ~2.5x over DM-Offloading, and the GPU
 * wins on the highly data-parallel stencils.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    RunMatrix matrix = workloadTechniqueMatrix(motivationTechniques());
    cli.configure(matrix, "CPU");

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 5: speedup over CPU (motivation, prior "
                "techniques only)\n\n");
    const std::vector<std::string> columns = nonBaselineColumns(sweep);
    printHeader(columns);

    std::map<std::string, std::vector<double>> speedups;
    for (const auto &w : sweep.workloadLabels()) {
        const double cpu =
            static_cast<double>(sweep.at(w, "CPU").execTime);
        std::printf("%-18s", w.c_str());
        for (const auto &t : columns) {
            const double s =
                cpu / static_cast<double>(sweep.at(w, t).execTime);
            speedups[t].push_back(s);
            std::printf(" %13.2fx", s);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "GMEAN");
    for (const auto &t : columns)
        std::printf(" %13.2fx", gmean(speedups[t]));
    std::printf("\n\n");

    if (speedups.count("DM-Offloading") &&
        speedups.count("BW-Offloading") && speedups.count("Ideal")) {
        const double dm = gmean(speedups["DM-Offloading"]);
        const double bw = gmean(speedups["BW-Offloading"]);
        const double ideal = gmean(speedups["Ideal"]);
        std::printf("key observations (paper values in brackets):\n");
        std::printf("  best prior technique: %s\n",
                    dm >= bw ? "DM-Offloading [DM-Offloading]"
                             : "BW-Offloading [DM-Offloading]");
        std::printf("  DM-Offloading vs CPU:      %5.2fx  [2.3x]\n",
                    dm);
        std::printf("  BW-Offloading vs CPU:      %5.2fx  [2.1x]\n",
                    bw);
        std::printf("  Ideal gap over DM:         %5.2fx  [2.5x]\n",
                    ideal / dm);
    }

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
