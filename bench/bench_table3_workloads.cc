/**
 * @file
 * Reproduces Table 3: characteristics of the evaluated workloads —
 * vectorizable-code percentage, average operand reuse, and the
 * low/medium/high-latency operation mix — as measured by running the
 * compile-time preprocessing stage on each kernel (through the
 * sweep runner's shared program cache; no simulation runs needed).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    if (cli.listWorkloads) {
        std::vector<std::string> names;
        for (WorkloadId id : allWorkloads())
            names.push_back(workloadName(id));
        runner::listAndExit(names);
    }
    if (cli.listTechniques)
        runner::listAndExit({}); // compile-only: no technique axis
    // Compile-time bench: no sweep runs, so the run-oriented flags
    // have nothing to act on — say so instead of silently ignoring.
    if (!cli.csvPath.empty() || !cli.jsonPath.empty() ||
        !cli.techniqueFilter.empty() || cli.threads != 0)
        std::fprintf(stderr,
                     "note: --csv/--json/--techniques/--threads have "
                     "no effect on this compile-only bench\n");

    struct PaperRow
    {
        double vect, reuse, low, med, high;
    };
    // Table 3 reference values.
    const std::map<std::string, PaperRow> paper = {
        {"AES", {65, 15.2, 87, 13, 0}},
        {"XOR Filter", {16, 2.0, 1, 98, 1}},
        {"heat-3d", {95, 16.0, 0, 60, 40}},
        {"jacobi-1d", {95, 3.0, 0, 67, 33}},
        {"LlaMA2 Inference", {70, 1.8, 0, 53, 47}},
        {"LLM Training", {60, 5.2, 0, 88, 12}},
    };

    const SsdConfig cfg = runner::defaultSweepConfig();
    WorkloadParams params;
    params.scale = cli.scale;
    runner::ProgramCache cache;

    // Honor --workloads like the sweep benches do.
    const auto keep = runner::splitCsv(cli.workloadFilter);
    std::vector<WorkloadId> workloads;
    for (WorkloadId id : allWorkloads())
        if (keep.empty() ||
            std::find(keep.begin(), keep.end(), workloadName(id)) !=
                keep.end())
            workloads.push_back(id);

    std::printf("Table 3: workload characteristics "
                "(measured vs [paper])\n\n");
    std::printf("%-18s %16s %14s %12s %12s %12s %8s %8s\n", "workload",
                "vectorizable%", "avg reuse", "low%", "med%", "high%",
                "instrs", "pages");
    for (WorkloadId id : workloads) {
        const auto vp = cache.get(id, params, cfg);
        const auto &r = vp->report;
        const auto &p = paper.at(workloadName(id));
        std::printf(
            "%-18s %8.0f%% [%3.0f%%] %6.1f [%4.1f] %4.0f%% [%3.0f%%] "
            "%4.0f%% [%3.0f%%] %4.0f%% [%3.0f%%] %8zu %8llu\n",
            workloadName(id).c_str(),
            100.0 * r.vectorizableFraction, p.vect, r.avgReuse,
            p.reuse, 100.0 * r.lowFraction, p.low,
            100.0 * r.medFraction, p.med, 100.0 * r.highFraction,
            p.high, vp->program.instrs.size(),
            static_cast<unsigned long long>(
                vp->program.footprintPages));
    }

    std::printf("\ncompile-time vectorization remarks "
                "(-Rpass=loop-vectorize style):\n");
    for (WorkloadId id : {WorkloadId::Aes, WorkloadId::XorFilter}) {
        if (std::find(workloads.begin(), workloads.end(), id) ==
            workloads.end())
            continue;
        std::printf("  %s:\n", workloadName(id).c_str());
        for (const auto &remark : cache.get(id, params, cfg)->report.remarks)
            std::printf("    %s\n", remark.c_str());
    }
    return 0;
}
