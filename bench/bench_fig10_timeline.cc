/**
 * @file
 * Reproduces Fig. 10: the instruction-to-resource mapping over the
 * execution of LlaMA2 Inference under BW-Offloading, DM-Offloading
 * and Conduit, alongside the operation stream, run as one parallel
 * sweep with occupancy tracing enabled.
 *
 * Rendered as a run-length-encoded strip per policy plus windowed
 * resource shares, exposing the paper's phases: BW-Offloading
 * thrashes between resources; DM-Offloading pins the arithmetic
 * phases to flash; Conduit executes locality-friendly additions in
 * flash, multiplications in DRAM, and control on the core.
 *
 * The strips are a consumer of the tracer's per-instruction
 * occupancy spans (src/trace): the bench forces the occupancy
 * category on for its own cells, then reconstructs each policy's
 * dispatch-ordered instruction timeline from the recorded events.
 */

#include "bench/common.hh"
#include "src/trace/trace.hh"

namespace
{

using namespace conduit;

char
resourceChar(std::uint8_t t)
{
    switch (static_cast<Target>(t)) {
      case Target::Isp: return 'C'; // controller core
      case Target::Pud: return 'D'; // DRAM
      case Target::Ifp: return 'F'; // flash
    }
    return '?';
}

/** The sweep cell's tracer, located by its attribution label. */
const trace::Tracer *
cellTracer(const std::vector<trace::TraceCell> &cells,
           const std::string &label)
{
    for (const trace::TraceCell &c : cells)
        if (c.label == label)
            return c.tracer.get();
    return nullptr;
}

void
printStrip(const trace::InstructionTimeline &tl, std::size_t buckets)
{
    // Majority resource per bucket of the instruction stream.
    const std::size_t n = tl.resource.size();
    std::printf("  ");
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t lo = b * n / buckets;
        const std::size_t hi = (b + 1) * n / buckets;
        int count[3] = {0, 0, 0};
        for (std::size_t i = lo; i < hi && i < n; ++i)
            ++count[tl.resource[i] % 3];
        int best = 0;
        for (int t = 1; t < 3; ++t)
            if (count[t] > count[best])
                best = t;
        std::printf("%c", resourceChar(static_cast<std::uint8_t>(best)));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    RunMatrix matrix;
    matrix.workload(WorkloadId::LlamaInference)
        .techniques({"BW-Offloading", "DM-Offloading", "Conduit"});
    cli.configure(matrix);

    // The strips consume occupancy spans, so that category is always
    // on here — --trace/--trace-filter only widen what gets exported.
    runner::SweepOptions opts = cli.runnerOptions();
    opts.trace.categories |=
        static_cast<std::uint32_t>(trace::Category::Occupancy);
    SweepRunner runner(opts);
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 10: instruction-to-resource mapping, LlaMA2 "
                "Inference\n");
    std::printf("legend: C = controller core (ISP), D = SSD DRAM "
                "(PuD), F = flash (IFP)\n\n");

    const std::string llama = workloadName(WorkloadId::LlamaInference);
    const std::size_t buckets = 96;

    // Operation stream (one strip: dominant op class per bucket).
    if (const trace::Tracer *t =
            cellTracer(runner.lastTraces(), llama + "/Conduit")) {
        const trace::InstructionTimeline tl =
            trace::instructionTimeline(*t);
        const std::size_t n = tl.op.size();
        std::printf("operations (a=add/sub, m=mul/mac, o=other), %zu "
                    "instructions:\n  ",
                    n);
        for (std::size_t b = 0; b < buckets; ++b) {
            const std::size_t lo = b * n / buckets;
            const std::size_t hi = (b + 1) * n / buckets;
            int add = 0, mul = 0, other = 0;
            for (std::size_t i = lo; i < hi && i < n; ++i) {
                const auto op = static_cast<OpCode>(tl.op[i]);
                if (op == OpCode::Add || op == OpCode::Sub)
                    ++add;
                else if (op == OpCode::Mul || op == OpCode::Mac)
                    ++mul;
                else
                    ++other;
            }
            std::printf("%c", add >= mul && add >= other ? 'a'
                              : mul >= other             ? 'm'
                                                         : 'o');
        }
        std::printf("\n\n");
    }

    for (const auto &p : sweep.techniqueLabels()) {
        const trace::Tracer *t =
            cellTracer(runner.lastTraces(), llama + "/" + p);
        const trace::InstructionTimeline tl = t
            ? trace::instructionTimeline(*t)
            : trace::InstructionTimeline{};
        std::printf("%s:\n", p.c_str());
        printStrip(tl, buckets);
        // Switch count: how often consecutive instructions change
        // resource (BW-Offloading's thrash signature).
        std::size_t switches = 0;
        for (std::size_t i = 1; i < tl.resource.size(); ++i)
            switches += tl.resource[i] != tl.resource[i - 1];
        std::printf("  resource switches: %zu of %zu instructions\n\n",
                    switches, tl.resource.size());
    }

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
