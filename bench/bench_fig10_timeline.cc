/**
 * @file
 * Reproduces Fig. 10: the instruction-to-resource mapping over the
 * execution of LlaMA2 Inference under BW-Offloading, DM-Offloading
 * and Conduit, alongside the operation stream, run as one parallel
 * sweep with per-instruction tracing enabled.
 *
 * Rendered as a run-length-encoded strip per policy plus windowed
 * resource shares, exposing the paper's phases: BW-Offloading
 * thrashes between resources; DM-Offloading pins the arithmetic
 * phases to flash; Conduit executes locality-friendly additions in
 * flash, multiplications in DRAM, and control on the core.
 */

#include "bench/common.hh"

namespace
{

using namespace conduit;

char
resourceChar(std::uint8_t t)
{
    switch (static_cast<Target>(t)) {
      case Target::Isp: return 'C'; // controller core
      case Target::Pud: return 'D'; // DRAM
      case Target::Ifp: return 'F'; // flash
    }
    return '?';
}

void
printStrip(const RunResult &r, std::size_t buckets)
{
    // Majority resource per bucket of the instruction stream.
    const std::size_t n = r.resourceTrace.size();
    std::printf("  ");
    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t lo = b * n / buckets;
        const std::size_t hi = (b + 1) * n / buckets;
        int count[3] = {0, 0, 0};
        for (std::size_t i = lo; i < hi && i < n; ++i)
            ++count[r.resourceTrace[i] % 3];
        int best = 0;
        for (int t = 1; t < 3; ++t)
            if (count[t] > count[best])
                best = t;
        std::printf("%c", resourceChar(static_cast<std::uint8_t>(best)));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    EngineOptions eo;
    eo.recordTimeline = true;
    RunMatrix matrix;
    matrix.engine(eo)
        .workload(WorkloadId::LlamaInference)
        .techniques({"BW-Offloading", "DM-Offloading", "Conduit"});
    cli.configure(matrix);

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 10: instruction-to-resource mapping, LlaMA2 "
                "Inference\n");
    std::printf("legend: C = controller core (ISP), D = SSD DRAM "
                "(PuD), F = flash (IFP)\n\n");

    const std::string llama = workloadName(WorkloadId::LlamaInference);
    const std::size_t buckets = 96;

    // Operation stream (one strip: dominant op class per bucket).
    if (const RunResult *r = sweep.find(llama, "Conduit")) {
        const std::size_t n = r->opTrace.size();
        std::printf("operations (a=add/sub, m=mul/mac, o=other), %zu "
                    "instructions:\n  ",
                    n);
        for (std::size_t b = 0; b < buckets; ++b) {
            const std::size_t lo = b * n / buckets;
            const std::size_t hi = (b + 1) * n / buckets;
            int add = 0, mul = 0, other = 0;
            for (std::size_t i = lo; i < hi && i < n; ++i) {
                const auto op = static_cast<OpCode>(r->opTrace[i]);
                if (op == OpCode::Add || op == OpCode::Sub)
                    ++add;
                else if (op == OpCode::Mul || op == OpCode::Mac)
                    ++mul;
                else
                    ++other;
            }
            std::printf("%c", add >= mul && add >= other ? 'a'
                              : mul >= other             ? 'm'
                                                         : 'o');
        }
        std::printf("\n\n");
    }

    for (const auto &p : sweep.techniqueLabels()) {
        const RunResult &r = sweep.at(llama, p);
        std::printf("%s:\n", p.c_str());
        printStrip(r, buckets);
        // Switch count: how often consecutive instructions change
        // resource (BW-Offloading's thrash signature).
        std::size_t switches = 0;
        for (std::size_t i = 1; i < r.resourceTrace.size(); ++i)
            switches += r.resourceTrace[i] != r.resourceTrace[i - 1];
        std::printf("  resource switches: %zu of %zu instructions\n\n",
                    switches, r.resourceTrace.size());
    }

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf);
}
