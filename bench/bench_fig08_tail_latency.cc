/**
 * @file
 * Reproduces Fig. 8: 99th and 99.99th percentile per-instruction
 * latencies of Ideal, Conduit, BW-Offloading and DM-Offloading on
 * LlaMA2 Inference and jacobi-1d, run as one parallel sweep.
 *
 * Paper shape: Conduit's contention-aware offloading shortens both
 * tails dramatically on LlaMA2 Inference (1.8x/10.7x vs
 * BW-Offloading, 5.6x/22.3x vs DM-Offloading) and moderately on
 * jacobi-1d (1.7x/1.9x and 1.1x/1.3x).
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    const SweepCli cli = SweepCli::parse(argc, argv);
    RunMatrix matrix;
    matrix
        .workloads({WorkloadId::LlamaInference, WorkloadId::Jacobi1d})
        .techniques(
            {"Ideal", "Conduit", "BW-Offloading", "DM-Offloading"});
    cli.configure(matrix);

    SweepRunner runner(cli.runnerOptions());
    const SweepResult sweep = runner.run(matrix.build());

    std::printf("Fig. 8: tail latency of per-instruction requests "
                "(us)\n\n");
    for (const auto &w : sweep.workloadLabels()) {
        std::printf("%s\n", w.c_str());
        std::printf("  %-16s %12s %12s %12s %12s\n", "policy",
                    "p50 (us)", "p99 (us)", "p99.99 (us)", "max (us)");
        double conduit_p99 = 0.0, conduit_p9999 = 0.0;
        std::map<std::string, std::pair<double, double>> tails;
        for (const auto &p : sweep.techniqueLabels()) {
            const auto &r = sweep.at(w, p);
            const double p50 = r.latencyUs.percentile(50);
            const double p99 = r.latencyUs.percentile(99);
            const double p9999 = r.latencyUs.percentile(99.99);
            tails[p] = {p99, p9999};
            if (p == "Conduit") {
                conduit_p99 = p99;
                conduit_p9999 = p9999;
            }
            std::printf("  %-16s %12.2f %12.2f %12.2f %12.2f\n",
                        p.c_str(), p50, p99, p9999, r.latencyUs.max());
        }
        if (conduit_p99 > 0 && tails.count("BW-Offloading") &&
            tails.count("DM-Offloading"))
            std::printf(
                "  Conduit tail improvement: p99 %0.1fx/%0.1fx, "
                "p99.99 %0.1fx/%0.1fx vs BW/DM\n\n",
                tails["BW-Offloading"].first / conduit_p99,
                tails["DM-Offloading"].first / conduit_p99,
                tails["BW-Offloading"].second / conduit_p9999,
                tails["DM-Offloading"].second / conduit_p9999);
    }
    std::printf("paper: LlaMA2 p99 1.8x/5.6x, p99.99 10.7x/22.3x; "
                "jacobi-1d p99 1.7x/1.1x, p99.99 1.9x/1.3x\n");

    const auto perf = runner.lastPerf();
    return cli.finish(sweep, &perf, &runner);
}
