/**
 * @file
 * Shared helpers for the reproduction benches: each bench binary
 * regenerates one table or figure of the paper, printing the same
 * rows/series the paper reports (normalized to the CPU baseline).
 */

#ifndef CONDUIT_BENCH_COMMON_HH
#define CONDUIT_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/core/simulation.hh"

namespace conduit::bench
{

/** Techniques in the paper's presentation order (Fig. 5 / Fig. 7). */
inline const std::vector<std::string> &
motivationTechniques()
{
    static const std::vector<std::string> t = {
        "GPU",           "ISP",        "PuD-SSD",
        "Flash-Cosmos",  "Ares-Flash", "BW-Offloading",
        "DM-Offloading", "Ideal"};
    return t;
}

inline const std::vector<std::string> &
evaluationTechniques()
{
    static const std::vector<std::string> t = {
        "GPU",           "ISP",           "PuD-SSD",
        "Flash-Cosmos",  "Ares-Flash",    "BW-Offloading",
        "DM-Offloading", "Conduit",       "Ideal"};
    return t;
}

/** Run a technique ("CPU"/"GPU" or a policy name) on a workload. */
inline RunResult
runTechnique(Simulation &sim, WorkloadId id, const std::string &name)
{
    if (name == "CPU")
        return sim.runHost(id, false);
    if (name == "GPU")
        return sim.runHost(id, true);
    return sim.run(id, name);
}

/** Geometric mean of a vector of ratios. */
inline double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Print a header row for a workload-major table. */
inline void
printHeader(const std::vector<std::string> &columns)
{
    std::printf("%-18s", "workload");
    for (const auto &c : columns)
        std::printf(" %14s", c.c_str());
    std::printf("\n");
}

} // namespace conduit::bench

#endif // CONDUIT_BENCH_COMMON_HH
