/**
 * @file
 * Shared definitions for the reproduction benches: the paper's
 * technique orderings, re-exported from the sweep-runner subsystem
 * that executes every bench's evaluation matrix.
 *
 * All formatting/emission helpers live in src/runner (sweep_result,
 * sweep_cli); benches carry no private output code.
 */

#ifndef CONDUIT_BENCH_COMMON_HH
#define CONDUIT_BENCH_COMMON_HH

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/core/simulation.hh"
#include "src/runner/sweep_cli.hh"

namespace conduit::bench
{

/** @name Shared numeric flag parsing (SweepCli extra-flag hooks) @{ */

[[noreturn]] inline void
badFlagValue(const char *flag, const std::string &value)
{
    std::fprintf(stderr, "invalid value for %s: '%s'\n", flag,
                 value.c_str());
    std::exit(2);
}

/** Non-negative integer (> 0 unless @p allow_zero), or usage-exit. */
inline unsigned long
parseCount(const char *flag, const std::string &value,
           bool allow_zero = false)
{
    char *end = nullptr;
    errno = 0;
    const unsigned long v = std::strtoul(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0' ||
        value[0] == '-' || (v == 0 && !allow_zero))
        badFlagValue(flag, value);
    return v;
}

/** Non-negative double (> 0 unless @p allow_zero), or usage-exit. */
inline double
parsePositive(const char *flag, const std::string &value,
              bool allow_zero = false)
{
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == value.c_str() || *end != '\0' ||
        !(allow_zero ? v >= 0.0 : v > 0.0))
        badFlagValue(flag, value);
    return v;
}

/** @} */

using runner::RunMatrix;
using runner::RunSpec;
using runner::SweepCli;
using runner::SweepResult;
using runner::SweepRunner;
using runner::gmean;
using runner::printHeader;

/** Techniques in the paper's presentation order (Fig. 5 / Fig. 7). */
inline const std::vector<std::string> &
motivationTechniques()
{
    static const std::vector<std::string> t = {
        "GPU",           "ISP",        "PuD-SSD",
        "Flash-Cosmos",  "Ares-Flash", "BW-Offloading",
        "DM-Offloading", "Ideal"};
    return t;
}

inline const std::vector<std::string> &
evaluationTechniques()
{
    static const std::vector<std::string> t = {
        "GPU",           "ISP",           "PuD-SSD",
        "Flash-Cosmos",  "Ares-Flash",    "BW-Offloading",
        "DM-Offloading", "Conduit",       "Ideal"};
    return t;
}

/**
 * The standard speedup-table matrix: every workload under the CPU
 * baseline plus @p techniques, on the default device.
 */
inline RunMatrix
workloadTechniqueMatrix(const std::vector<std::string> &techniques)
{
    RunMatrix m;
    m.workloads(allWorkloads());
    m.technique("CPU");
    m.techniques(techniques);
    return m;
}

/** Technique columns of a sweep, minus the CPU baseline. */
inline std::vector<std::string>
nonBaselineColumns(const SweepResult &sweep)
{
    std::vector<std::string> columns = sweep.techniqueLabels();
    columns.erase(std::remove(columns.begin(), columns.end(),
                              std::string("CPU")),
                  columns.end());
    return columns;
}

} // namespace conduit::bench

#endif // CONDUIT_BENCH_COMMON_HH
