/**
 * @file
 * Reliability & device-aging sweep: tails vs device age, per policy.
 *
 * Every other bench runs a factory-fresh SSD. This one fast-forwards
 * the device to a ladder of ages — P/E cycles pre-absorbed by every
 * block, plus retention age of the resident data — and offers the
 * same open-loop traffic at each age, for each offload policy. As
 * the device ages, the ECC retry ladder stretches flash reads, the
 * background scrubber starts refreshing high-RBER blocks, and worn-
 * out blocks retire and shrink over-provisioning: throughput decays
 * and p99/p99.99 request latency grows monotonically with age.
 *
 * Each (workload, policy, age) cell is one deterministic device
 * lifetime (SweepRunner aging cells); the same arrival schedule is
 * replayed at every age and for every policy, so rows differ only by
 * device age and offload decisions. stdout carries only simulated
 * values and is byte-identical across thread counts; CI enforces
 * both that and monotone p99 growth along the age ladder.
 *
 * Flags: the shared sweep CLI plus
 *   --jobs N               jobs offered per cell (default 6)
 *   --ages a,b,c           pre-wear ladder in P/E cycles
 *                          (default 0,1000,2000,3000; emitted
 *                          ascending)
 *   --retention-per-kcycle D  retention days coupled to each rung:
 *                          days = cycles * D / 1000 (default 30 —
 *                          a device that cycled more has also been
 *                          deployed longer)
 *   --rate-mult M          offered load as a multiple of the fresh
 *                          device's isolated service rate (default
 *                          2.0: past the knee, where aging shows in
 *                          the tails)
 *   --arrivals KIND        fixed | uniform | poisson (default)
 *   --arrival-seed N       arrival-schedule seed (default 1)
 *   --warmup-jobs N        warm jobs before the measured phase (rows
 *                          then report the measured jobs only)
 *   --steady-state         build each age rung's warm device once
 *                          and fork it per policy (DeviceImage
 *                          snapshots) instead of replaying the warm
 *                          phase per cell; outputs byte-identical,
 *                          only wall-clock changes (on stderr)
 */

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "bench/common.hh"

namespace
{

using namespace conduit;
using namespace conduit::bench;
using conduit::runner::AgingRunSpec;
using conduit::runner::LoadRunSpec;
using conduit::runner::splitCsv;

std::vector<std::uint32_t>
parseAges(const std::string &csv)
{
    std::vector<std::uint32_t> ages;
    for (const std::string &tok : splitCsv(csv)) {
        const unsigned long v =
            parseCount("--ages", tok, /*allow_zero=*/true);
        if (v > std::numeric_limits<std::uint32_t>::max())
            badFlagValue("--ages", tok);
        ages.push_back(static_cast<std::uint32_t>(v));
    }
    // The age axis is emitted ascending and deduplicated: every
    // (workload, policy) CSV block is strictly monotone in age,
    // which is what the CI monotonicity check keys on.
    std::sort(ages.begin(), ages.end());
    ages.erase(std::unique(ages.begin(), ages.end()), ages.end());
    return ages;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace conduit;
    using namespace conduit::bench;

    std::size_t jobs = 6;
    std::vector<std::uint32_t> ages = {0, 1000, 2000, 3000};
    double retentionPerKcycle = 30.0;
    double rateMult = 2.0;
    ArrivalKind arrivals = ArrivalKind::Poisson;
    std::uint64_t arrivalSeed = 1;
    std::size_t warmupJobs = 0;
    bool steadyState = false;
    const auto extra = [&](const std::string &flag,
                           const std::function<std::string()> &value) {
        if (flag == "--jobs") {
            jobs = parseCount("--jobs", value());
        } else if (flag == "--warmup-jobs") {
            warmupJobs =
                parseCount("--warmup-jobs", value(), /*allow_zero=*/true);
        } else if (flag == "--steady-state") {
            steadyState = true;
        } else if (flag == "--ages") {
            ages = parseAges(value());
            if (ages.empty())
                badFlagValue("--ages", "");
        } else if (flag == "--retention-per-kcycle") {
            // 0 decouples retention from the ladder: a pure
            // P/E-cycle aging sweep.
            retentionPerKcycle = parsePositive(
                "--retention-per-kcycle", value(), /*allow_zero=*/true);
        } else if (flag == "--rate-mult") {
            rateMult = parsePositive("--rate-mult", value());
        } else if (flag == "--arrivals") {
            const std::string v = value();
            if (!parseArrivalKind(v, arrivals)) {
                std::fprintf(stderr,
                             "unknown --arrivals '%s'; accepted: %s\n",
                             v.c_str(),
                             runner::joinLabels(arrivalKindNames())
                                 .c_str());
                std::exit(2);
            }
        } else if (flag == "--arrival-seed") {
            arrivalSeed = parseCount("--arrival-seed", value());
        } else {
            return false;
        }
        return true;
    };
    const SweepCli cli = SweepCli::parse(
        argc, argv,
        extra,
        "          [--jobs N] [--ages a,b,c]\n"
        "          [--retention-per-kcycle D] [--rate-mult M]\n"
        "          [--arrivals KIND] [--arrival-seed N]\n"
        "          [--warmup-jobs N] [--steady-state]\n");
    if (steadyState && warmupJobs == 0) {
        std::fprintf(stderr,
                     "--steady-state needs --warmup-jobs N (> 0)\n");
        return 2;
    }

    std::vector<std::string> names;
    for (WorkloadId id : allWorkloads())
        names.push_back(workloadName(id));
    if (cli.listWorkloads)
        runner::listAndExit(names);
    if (cli.listTechniques)
        runner::listAndExit(policyNames());

    // Workload rows: AES by default (flash-read heavy, so the ECC
    // ladder dominates its service time); --workloads widens.
    std::vector<WorkloadId> tenants = {WorkloadId::Aes};
    const auto keepW = splitCsv(cli.workloadFilter);
    if (!runner::reportUnknown(keepW, names, "workload"))
        return 2;
    if (!keepW.empty()) {
        tenants.clear();
        for (WorkloadId id : allWorkloads()) {
            if (std::find(keepW.begin(), keepW.end(),
                          workloadName(id)) != keepW.end())
                tenants.push_back(id);
        }
    }

    std::vector<std::string> policies = {"Conduit", "DM-Offloading"};
    const auto keepP = splitCsv(cli.techniqueFilter);
    for (const std::string &p : keepP) {
        if (p == "CPU" || p == "GPU") {
            std::fprintf(stderr,
                         "aging cells run on the SSD engine; host "
                         "baseline '%s' cannot serve jobs\n",
                         p.c_str());
            return 2;
        }
    }
    if (!runner::reportUnknown(keepP, policyNames(), "policy"))
        return 2;
    if (!keepP.empty())
        policies = keepP;

    WorkloadParams params;
    params.scale = cli.scale;

    SweepRunner runner(cli.runnerOptions());

    // Build the cell matrix: workload-major, policy, age ascending.
    // One fresh-device calibration per workload anchors the offered
    // rate, which is then held fixed across ages and policies so
    // rows differ only by device age and offload decisions.
    std::vector<AgingRunSpec> cells;
    for (WorkloadId w : tenants) {
        LoadRunSpec iso;
        iso.workload = workloadName(w);
        iso.technique = policies.front();
        iso.workloadId = w;
        iso.params = params;
        iso.jobs = 1;
        const DeviceSnapshot snap = runner.runLoad(iso);
        const double tIso = ticksToSeconds(snap.makespan);
        const double rate = (tIso > 0.0 ? 1.0 / tIso : 1.0) * rateMult;

        for (const std::string &policy : policies) {
            for (std::uint32_t age : ages) {
                AgingRunSpec cell;
                cell.load.workload = workloadName(w);
                cell.load.technique = policy;
                cell.load.workloadId = w;
                cell.load.params = params;
                cell.load.jobs = jobs;
                cell.load.jobsPerSec = rate;
                cell.load.arrivals = arrivals;
                cell.load.arrivalSeed = arrivalSeed;
                cell.load.warmupJobs = warmupJobs;
                cell.load.steadyState = steadyState;
                cell.preWearCycles = age;
                cell.retentionDays = static_cast<double>(age) *
                    retentionPerKcycle / 1000.0;
                cells.push_back(std::move(cell));
            }
        }
    }

    const std::vector<DeviceSnapshot> snaps = runner.runAgingAll(cells);

    // Warm-phase cost is wall-clock (nondeterministic), so it goes
    // to stderr: stdout stays byte-identical between cold two-phase
    // and forked steady-state sweeps.
    const runner::SweepPerf perf = runner.lastPerf();
    if (perf.warmupImages > 0)
        std::fprintf(stderr,
                     "warmup: %zu image(s) built once in %.3f s, "
                     "forked across %zu cells\n",
                     perf.warmupImages, perf.warmupSeconds,
                     perf.cells);

    std::vector<runner::AgingRow> rows;
    rows.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        rows.push_back(runner::makeAgingRow(cells[i], snaps[i]));

    std::printf("Reliability & device-aging sweep (%zu jobs/cell, %s "
                "arrivals, %.3gx offered load)\n\n",
                jobs, arrivalKindName(arrivals).c_str(), rateMult);
    std::size_t r = 0;
    for (WorkloadId w : tenants) {
        std::printf("%s\n", workloadName(w).c_str());
        std::printf("  %-16s %9s %8s %9s %11s %13s %9s %8s %8s %8s\n",
                    "policy", "age(P/E)", "ret(d)", "thpt/s",
                    "p99 (us)", "p99.99 (us)", "retries", "soft",
                    "retired", "scrubbed");
        for (const std::string &policy : policies) {
            (void)policy;
            for (std::size_t k = 0; k < ages.size(); ++k) {
                const runner::AgingRow &row = rows.at(r++);
                std::printf("  %-16s %9u %8.1f %9.2f %11.2f %13.2f "
                            "%9llu %8llu %8llu %8llu\n",
                            row.load.technique.c_str(),
                            row.preWearCycles, row.retentionDays,
                            row.load.throughputJobsPerSec,
                            row.load.p99Us, row.load.p9999Us,
                            static_cast<unsigned long long>(
                                row.rel.eccRetries),
                            static_cast<unsigned long long>(
                                row.rel.softDecodes),
                            static_cast<unsigned long long>(
                                row.rel.retiredBlocks),
                            static_cast<unsigned long long>(
                                row.rel.scrubRefreshes));
            }
        }
        std::printf("\n");
    }

    int status = 0;
    if (!cli.cellPerfPath.empty() &&
        !SweepCli::writeCellPerfCsv(cli.cellPerfPath,
                                    runner.lastPerf())) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.cellPerfPath.c_str());
        status = 1;
    }
    if (!cli.csvPath.empty() &&
        !runner::writeAgingCsvFile(cli.csvPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.csvPath.c_str());
        status = 1;
    }
    if (!cli.jsonPath.empty() &&
        !runner::writeAgingJsonFile(cli.jsonPath, rows)) {
        std::fprintf(stderr, "error: could not write %s\n",
                     cli.jsonPath.c_str());
        status = 1;
    }
    status |= cli.writeTraces(runner);
    return status;
}
