/**
 * @file
 * Reproduces Fig. 7(b): energy consumption normalized to CPU, with
 * the data-movement vs computation breakdown per technique.
 *
 * Paper shape: Conduit reduces energy by 78.2% vs CPU, 58.2% vs GPU,
 * 46.8% vs DM-Offloading (the most energy-efficient prior policy),
 * and reaches ~68% of Ideal's efficiency.
 */

#include "bench/common.hh"

int
main()
{
    using namespace conduit;
    using namespace conduit::bench;

    Simulation sim;
    std::printf("Fig. 7(b): energy normalized to CPU "
                "(dm = data movement share)\n\n");

    std::map<std::string, std::vector<double>> ratio;
    printHeader(evaluationTechniques());
    for (WorkloadId id : allWorkloads()) {
        const double cpu = runTechnique(sim, id, "CPU").energyJ();
        std::printf("%-18s", workloadName(id).c_str());
        for (const auto &t : evaluationTechniques()) {
            auto r = runTechnique(sim, id, t);
            const double norm = r.energyJ() / cpu;
            const double dm_share =
                r.energyJ() > 0 ? r.dmEnergyJ / r.energyJ() : 0.0;
            ratio[t].push_back(norm);
            std::printf(" %6.3f(dm%3.0f%%)", norm, 100.0 * dm_share);
        }
        std::printf("\n");
    }
    std::printf("%-18s", "GMEAN");
    for (const auto &t : evaluationTechniques())
        std::printf(" %14.3f", gmean(ratio[t]));
    std::printf("\n\n");

    const double conduit = gmean(ratio["Conduit"]);
    auto saving = [&](const char *t) {
        return 100.0 * (1.0 - conduit / gmean(ratio[t]));
    };
    std::printf("key observations (paper values in brackets):\n");
    std::printf("  Conduit energy saving vs CPU:   %5.1f%%  [78.2%%]\n",
                100.0 * (1.0 - conduit));
    std::printf("  Conduit energy saving vs GPU:   %5.1f%%  [58.2%%]\n",
                saving("GPU"));
    std::printf("  Conduit energy saving vs ISP:   %5.1f%%  [67.3%%]\n",
                saving("ISP"));
    std::printf("  Conduit energy saving vs PuD:   %5.1f%%  [60.6%%]\n",
                saving("PuD-SSD"));
    std::printf("  Conduit saving vs Flash-Cosmos: %5.1f%%  [68.0%%]\n",
                saving("Flash-Cosmos"));
    std::printf("  Conduit saving vs Ares-Flash:   %5.1f%%  [57.4%%]\n",
                saving("Ares-Flash"));
    std::printf("  Conduit saving vs BW-Offload:   %5.1f%%  [47.8%%]\n",
                saving("BW-Offloading"));
    std::printf("  Conduit saving vs DM-Offload:   %5.1f%%  [46.8%%]\n",
                saving("DM-Offloading"));
    std::printf("  Ideal efficiency reached:       %5.0f%%  [68%%]\n",
                100.0 * gmean(ratio["Ideal"]) / conduit);
    return 0;
}
